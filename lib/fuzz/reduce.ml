(** Delta-debugging reducer.

    Greedy fixpoint minimization over the same slot numbering the
    mutator uses: try dropping each statement, splicing each compound
    statement's body in its place, hoisting each subexpression over its
    parent operator, and collapsing each expression to a literal —
    accepting a candidate only when it is strictly smaller (statement
    count first, expression nodes second — strict decrease is what
    guarantees termination) {e and} the caller's [check] still fails the
    same way.  Every accepted candidate restarts the scan, so the result
    is 1-minimal with respect to the candidate set, bounded by
    [max_checks] oracle replays. *)

open Lf_lang

let with_body (i : Input.t) b =
  { i with Input.prog = { i.Input.prog with Ast.p_body = b } }

let measure (i : Input.t) =
  ( Mutate.count_stmts i.Input.prog.Ast.p_body,
    Mutate.count_exprs i.Input.prog.Ast.p_body )

(* Candidate blocks, cheapest-win first: statement deletions shed the
   most weight, then body splices, then expression surgery. *)
let candidates (i : Input.t) : Ast.block Seq.t =
  let b = i.Input.prog.Ast.p_body in
  let ns = Mutate.count_stmts b in
  let ne = Mutate.count_exprs b in
  let deletions = Seq.init ns (fun k -> Mutate.edit_nth k (fun _ -> []) b) in
  let splices =
    Seq.init ns (fun k ->
        Mutate.edit_nth k
          (fun s ->
            match Mutate.unwrap_stmt s with Some body -> body | None -> [ s ])
          b)
  in
  let hoists =
    Seq.init ne (fun k ->
        Mutate.map_nth_expr k
          (fun e ->
            match e with
            | Ast.EBin (_, a, _) | Ast.EUn (_, a) | Ast.ERange (a, _)
            | Ast.ECall (_, a :: _)
            | Ast.EIdx (_, a :: _) ->
                a
            | e -> e)
          b)
  in
  let literals =
    Seq.concat_map
      (fun lit -> Seq.init ne (fun k -> Mutate.map_nth_expr k (fun _ -> lit) b))
      (List.to_seq [ Ast.EInt 1; Ast.EBool true ])
  in
  Seq.concat
    (List.to_seq [ deletions; splices; hoists; literals ])

(** [minimize ~check i] returns the smallest input found such that
    [check] still holds (the caller's "fails the same oracle"
    predicate).  [check i] itself is assumed true on entry. *)
let minimize ?(max_checks = 800) ~(check : Input.t -> bool) (i0 : Input.t) :
    Input.t =
  let checks = ref 0 in
  let rec improve cur =
    let mcur = measure cur in
    let rec scan seq =
      if !checks >= max_checks then None
      else
        match Seq.uncons seq with
        | None -> None
        | Some (b, rest) ->
            let cand = with_body cur b in
            if measure cand < mcur then begin
              incr checks;
              if check cand then Some cand else scan rest
            end
            else scan rest
    in
    match scan (candidates cur) with
    | Some better -> improve better
    | None -> cur
  in
  improve i0
