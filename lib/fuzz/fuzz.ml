(** The coverage-guided campaign driver.

    A campaign is fully determined by its seed: one [Random.State]
    drives generation, mutation-operator choice and corpus picks, the
    oracle battery is deterministic, and so is the reducer — so
    [--fuzz N --seed S] replays bit-identically.

    Coverage guidance: the corpus keeps every input whose
    [Oracle.outcome] lit a coverage key (stats counter + value bucket,
    lint rule, error class) no earlier input lit.  Each campaign step
    either mutates a kept input (3 out of 4 steps, once the corpus is
    non-empty) or generates a fresh random program, so the fuzzer keeps
    probing the neighborhoods that found new behavior while still
    sampling the whole space.  [mutate = false] disables the feedback
    loop (pure random generation at the same budget) — the baseline the
    EXPERIMENTS study compares against. *)

module Gen = Lf_testgen.Gen
module Cov = Oracle.Cov

type config = {
  seed : int;
  count : int;  (** campaign inputs, excluding replayed corpus seeds *)
  fuel : int;
  dialects : Input.dialect list;
  mutate : bool;  (** coverage-guided mutation vs pure random *)
  minimize : bool;
  max_mutations : int;  (** mutation operators stacked per mutant *)
  max_shrink_checks : int;  (** oracle replays the reducer may spend *)
}

let default_config =
  {
    seed = 0;
    count = 100;
    fuel = Oracle.default_fuel;
    dialects = [ Input.Simd; Input.Nest ];
    mutate = true;
    minimize = false;
    max_mutations = 3;
    max_shrink_checks = 800;
  }

type failure = {
  f_input : Input.t;
  f_oracle : string;
  f_detail : string;
  f_minimized : Input.t option;
}

type report = {
  r_executed : int;  (** oracle runs: corpus seeds + campaign inputs *)
  r_failures : failure list;  (** in discovery order *)
  r_corpus : Input.t list;  (** coverage-increasing inputs, in order *)
  r_coverage : int;  (** final coverage key count *)
  r_fuel_outs : int;
  r_coverage_log : (int * int) list;
      (** (campaign input index, cumulative coverage) per step — the
          coverage-growth curve of the EXPERIMENTS study *)
}

let fresh_input rand = function
  | Input.Simd ->
      Input.make Input.Simd
        (QCheck.Gen.generate1 ~rand
           (QCheck.Gen.frequency
              [ (3, Gen.simd_prog_gen); (2, Gen.simd_prog_ext_gen) ]))
  | Input.Nest ->
      let en = QCheck.Gen.generate1 ~rand Gen.exec_nest_ext_gen in
      Input.make Input.Nest (Lf_lang.Ast.program "nest" en.Gen.src_block)

let run ?(seeds = []) (cfg : config) : report =
  let rand = Random.State.make [| cfg.seed |] in
  let coverage = ref Cov.empty in
  let corpus = ref [] (* reversed *) in
  let failures = ref [] (* reversed *) in
  let executed = ref 0 in
  let fuel_outs = ref 0 in
  let log = ref [] (* reversed *) in
  let process input =
    incr executed;
    let o = Oracle.run ~fuel:cfg.fuel input in
    match o.Oracle.verdict with
    | Oracle.Fail { oracle; detail } ->
        let minimized =
          if not cfg.minimize then None
          else
            let check i' =
              match (Oracle.run ~fuel:cfg.fuel i').Oracle.verdict with
              | Oracle.Fail { oracle = o'; _ } -> o' = oracle
              | _ -> false
            in
            Some
              (Reduce.minimize ~max_checks:cfg.max_shrink_checks ~check input)
        in
        failures :=
          { f_input = input; f_oracle = oracle; f_detail = detail;
            f_minimized = minimized }
          :: !failures
    | (Oracle.Pass | Oracle.Fuel) as v ->
        if v = Oracle.Fuel then incr fuel_outs;
        if not (Cov.subset o.Oracle.coverage !coverage) then begin
          coverage := Cov.union !coverage o.Oracle.coverage;
          corpus := input :: !corpus
        end
  in
  List.iter process seeds;
  for i = 1 to cfg.count do
    let input =
      match !corpus with
      | base :: _ :: _ | [ base ]
        when cfg.mutate && Random.State.int rand 4 > 0 ->
          let picks = Array.of_list !corpus in
          let base =
            if Array.length picks = 1 then base
            else picks.(Random.State.int rand (Array.length picks))
          in
          Mutate.mutate
            ~n:(1 + Random.State.int rand cfg.max_mutations)
            ~rand base
      | _ ->
          let ds = Array.of_list cfg.dialects in
          fresh_input rand ds.(Random.State.int rand (Array.length ds))
    in
    process input;
    log := (i, Cov.cardinal !coverage) :: !log
  done;
  {
    r_executed = !executed;
    r_failures = List.rev !failures;
    r_corpus = List.rev !corpus;
    r_coverage = Cov.cardinal !coverage;
    r_fuel_outs = !fuel_outs;
    r_coverage_log = List.rev !log;
  }

(* ------------------------------------------------------------------ *)
(* Fault injection for the smoke suite                                 *)
(* ------------------------------------------------------------------ *)

(** The deliberately broken oracle ([--chaos oracle]): it flags every
    program containing a WHERE statement as a failure.  The smoke suite
    installs it via [Oracle.extra_oracle] to prove a bad verdict — from
    any oracle, even a wrong one — is found, minimized (to a single
    WHERE statement) and reported through the standard path. *)
let broken_where_oracle (i : Input.t) : Oracle.verdict =
  let open Lf_lang.Ast in
  let rec block_has b = List.exists stmt_has b
  and stmt_has s =
    match strip_loc s with
    | SWhere _ -> true
    | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b) ->
        block_has b
    | SIf (_, t, f) -> block_has t || block_has f
    | _ -> false
  in
  if block_has i.Input.prog.p_body then
    Oracle.Fail
      {
        oracle = "chaos-oracle";
        detail = "deliberately broken oracle flagged a WHERE statement";
      }
  else Oracle.Pass

(** Install the named fault: a phase name from [Lf_simd.Opt.phases]
    mis-annotates the optimizer's output after that phase; ["oracle"]
    installs [broken_where_oracle].  Returns an uninstaller. *)
let install_chaos = function
  | "oracle" ->
      Oracle.extra_oracle := Some broken_where_oracle;
      fun () -> Oracle.extra_oracle := None
  | phase when List.mem phase Lf_simd.Opt.phases ->
      Lf_simd.Opt.chaos_phase := Some phase;
      fun () -> Lf_simd.Opt.chaos_phase := None
  | other -> invalid_arg ("unknown chaos target: " ^ other)
