(** One fuzz input: a mini-Fortran program tagged with the dialect it
    belongs to, which decides the oracle battery and the runtime
    environment it executes in.

    - [Simd]: the F90simd dialect of [Lf_testgen.Gen.simd_prog_gen] —
      plural arithmetic over [iproc] in the standard environment bound
      by [Gen.simd_prog_setup] (globals [g]/[h], per-lane [f], scalar
      [n]).  Checked by the cross-engine/-O/jobs differential oracles.
    - [Nest]: front-end loop nests over the standard [k]/[l]/[x]/[acc]
      environment (see [Oracle.nest_setup]).  Checked by the
      flatten/coalesce translation-validation oracles.

    Inputs persist as plain source files; the first line is a header
    comment (skipped by the lexer, so the file body parses as-is):

    {v ! simdfuzz dialect=simd v} *)

open Lf_lang

type dialect = Simd | Nest

type t = {
  dialect : dialect;
  prog : Ast.program;
}

let dialect_to_string = function Simd -> "simd" | Nest -> "nest"

let make dialect prog = { dialect; prog = Ast.strip_locs_program prog }

(** Number of statements, at every nesting level (comments and labels
    excluded — they carry no behaviour).  This is the measure the
    reducer shrinks and the acceptance bound ("<= 10 statements") is
    stated in. *)
let rec block_stmts (b : Ast.block) =
  List.fold_left (fun n s -> n + stmt_stmts s) 0 b

and stmt_stmts s =
  match Ast.strip_loc s with
  | Ast.SComment _ | Ast.SLabel _ -> 0
  | Ast.SDo (_, b) | Ast.SWhile (_, b) | Ast.SDoWhile (b, _)
  | Ast.SForall (_, b) ->
      1 + block_stmts b
  | Ast.SIf (_, t, f) | Ast.SWhere (_, t, f) ->
      1 + block_stmts t + block_stmts f
  | _ -> 1

let stmt_count i = block_stmts i.prog.Ast.p_body

let to_string i =
  Fmt.str "! simdfuzz dialect=%s@\n%s"
    (dialect_to_string i.dialect)
    (Pretty.program_to_string i.prog)

let parse_header line =
  let fields = String.split_on_char ' ' line in
  let find key =
    List.find_map
      (fun f ->
        match String.index_opt f '=' with
        | Some eq when String.sub f 0 eq = key ->
            Some (String.sub f (eq + 1) (String.length f - eq - 1))
        | _ -> None)
      fields
  in
  match find "dialect" with
  | Some "nest" -> Nest
  | _ -> Simd

let of_string ?(name = "<string>") src : (t, string) result =
  let dialect =
    match String.index_opt src '\n' with
    | Some nl when String.length src > 10 && String.sub src 0 10 = "! simdfuzz"
      ->
        parse_header (String.sub src 0 nl)
    | _ -> Simd
  in
  (* the header is a comment: the lexer skips it, so the whole file
     parses unchanged *)
  match Parser.program_of_string src with
  | prog -> Ok (make dialect prog)
  | exception e -> Error (Fmt.str "%s: %s" name (Errors.to_message e))

let of_file path : (t, string) result =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  of_string ~name:path src

let to_file path i =
  let oc = open_out path in
  output_string oc (to_string i);
  close_out oc
