(** The differential oracle battery.

    One fuzz input is judged by every cheap correctness contract the
    engine exports:

    [Simd] inputs (cross-engine differential testing):
    - pretty-print / re-parse round-trip is the identity (modulo
      locations and comments);
    - tree-walk, compiled [-O0]/[-O1]/[-O2]+verify and parallel
      [-O1]/[-O2] legs agree on final state, [Metrics] and error
      strings at every lane count in the sweep;
    - the [-O2] leg runs under [--verify-ir]: the optimizer must never
      emit IR the verifier rejects;
    - the [Counters] section of the stats registry is identical on
      every leg (the engine-invariance contract), and the [opt.*]
      counters are identical between compiled and parallel legs at the
      same [-O] level (the jobs-invariance contract);
    - replaying one leg twice yields the identical snapshot (stats
      determinism).

    [Nest] inputs (translation validation):
    - round-trip, as above;
    - lint runs to completion (its rule hits become coverage);
    - when the original nest executes successfully, the flattened
      program ([Lf_core.Pipeline]) and the coalesced program
      ([Lf_core.Coalesce]) must run to the same [x]/[acc] state and the
      same external-call observation trace.

    Engine-identical fuel exhaustion is the distinct [Fuel] verdict —
    the guard that makes infinite GOTO loops fail fast instead of
    hanging the campaign — and is not a failure.

    The coverage signal is the set of stats-registry counters the input
    lit up (name plus log2 value bucket), the lint rules it fired, and
    the normalized error classes it provoked — see [Fuzz] for how the
    corpus uses it. *)

open Lf_lang
module Stats = Lf_obs.Stats
module Vm = Lf_simd.Vm
module Metrics = Lf_simd.Metrics
module Gen = Lf_testgen.Gen

module Cov = Set.Make (String)

type verdict =
  | Pass
  | Fuel  (** engine-identical fuel exhaustion: distinct, not a failure *)
  | Fail of { oracle : string; detail : string }

type outcome = {
  verdict : verdict;
  coverage : Cov.t;
}

let default_fuel = 20_000
let simd_ps = [ 1; 5; 64 ]

exception Failed of string * string

let failf oracle fmt = Fmt.kstr (fun d -> raise (Failed (oracle, d))) fmt

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let is_fuel_msg m = contains m "fuel exhausted"

(* coverage keys ---------------------------------------------------- *)

let normalize_error m =
  String.map (fun c -> if c >= '0' && c <= '9' then '#' else c) m

let rec bucket v = if v <= 1 then 0 else 1 + bucket (v / 2)

let add_snapshot cov snap =
  List.fold_left
    (fun cov (name, v) ->
      if v = 0 then cov
      else Cov.add name (Cov.add (Fmt.str "%s#b%d" name (bucket v)) cov))
    cov snap

let add_error cov m = Cov.add ("error:" ^ normalize_error m) cov

(* stats management ------------------------------------------------- *)

let with_stats f =
  let was = Stats.enabled () in
  if not was then Stats.enable ();
  Fun.protect
    ~finally:(fun () ->
      if not was then begin
        Stats.disable ();
        Stats.reset ()
      end)
    f

(* ------------------------------------------------------------------ *)
(* Simd dialect: cross-engine differential legs                        *)
(* ------------------------------------------------------------------ *)

type leg_run = LOk of Vm.t | LErr of string

type leg = {
  what : string;
  run : leg_run;
  counters : (string * int) list;
  optc : (string * int) list;  (** the [opt.*] counters only *)
}

let diags_text diags =
  let n = List.length diags in
  let shown = List.filteri (fun i _ -> i < 3) diags in
  String.concat "; "
    (List.map
       (fun d -> d.Lf_analysis.Lint.d_rule ^ ": " ^ d.Lf_analysis.Lint.d_msg)
       shown)
  ^ if n > 3 then Fmt.str " (and %d more)" (n - 3) else ""

let run_leg ~fuel ~p ?jobs ?opt ?verify ~what engine prog =
  Stats.reset ();
  let run =
    match
      Vm.run ~fuel ~engine ?jobs ?opt ?verify ~p
        ~setup:(Gen.simd_prog_setup ~p)
        prog
    with
    | vm -> LOk vm
    | exception ((Errors.Runtime_error _ | Errors.Runtime_error_at _) as e) ->
        LErr (Errors.to_message e)
    | exception Lf_simd.Verify.Error diags ->
        failf "verify-ir" "%s, p=%d: optimizer emitted IR the verifier rejects: %s"
          what p (diags_text diags)
  in
  let counters = Stats.snapshot ~sections:[ Stats.Counters ] () in
  let optc =
    List.filter
      (fun (n, _) -> String.length n >= 4 && String.sub n 0 4 = "opt.")
      (Stats.snapshot ~sections:[ Stats.Opt ] ())
  in
  { what; run; counters; optc }

let legs_agree ~p a b =
  match (a.run, b.run) with
  | LOk va, LOk vb ->
      if not (Vm.state_equal va vb && Metrics.equal va.Vm.metrics vb.Vm.metrics)
      then failf "engine-diff" "%s vs %s, p=%d: state/metrics diverged" a.what b.what p
  | LErr ma, LErr mb ->
      if ma <> mb then
        failf "engine-diff" "%s vs %s, p=%d: errors differ (%S vs %S)" a.what
          b.what p ma mb
  | LOk _, LErr m ->
      failf "engine-diff" "%s vs %s, p=%d: only %s failed (%S)" a.what b.what p
        b.what m
  | LErr m, LOk _ ->
      failf "engine-diff" "%s vs %s, p=%d: only %s failed (%S)" a.what b.what p
        a.what m

let check_simd ~fuel prog =
  let cov = ref Cov.empty in
  let fueled = ref false in
  List.iter
    (fun p ->
      let leg = run_leg ~fuel ~p ~what:"tree" `Tree_walk prog in
      let others =
        [
          run_leg ~fuel ~p ~opt:0 ~what:"compiled -O0" `Compiled prog;
          run_leg ~fuel ~p ~opt:1 ~what:"compiled -O1" `Compiled prog;
          run_leg ~fuel ~p ~opt:2 ~verify:true ~what:"compiled -O2+verify"
            `Compiled prog;
          run_leg ~fuel ~p ~jobs:2 ~opt:1 ~what:"parallel -O1 j2" `Parallel prog;
          run_leg ~fuel ~p ~jobs:3 ~opt:2 ~what:"parallel -O2 j3" `Parallel prog;
        ]
      in
      List.iter (legs_agree ~p leg) others;
      (* engine-invariance of the stable counter section *)
      List.iter
        (fun o ->
          if o.counters <> leg.counters then
            failf "stats-counters" "%s vs %s, p=%d: Counters section diverged"
              leg.what o.what p)
        others;
      (* jobs-invariance of the opt.* counters at matching -O levels *)
      (match others with
      | [ _o0; o1; o2v; p1; p2 ] ->
          if p1.optc <> o1.optc then
            failf "stats-opt" "p=%d: opt.* counters differ, compiled vs parallel -O1" p;
          ignore o2v;
          ignore p2
          (* -O2 compiled ran under the verifier and -O2 parallel did
             not; verify.* lives in the Opt section but is excluded by
             the opt.* filter, so this comparison is meaningful too *)
      | _ -> assert false);
      (match others with
      | [ _; _; o2v; _; p2 ] ->
          if p2.optc <> o2v.optc then
            failf "stats-opt" "p=%d: opt.* counters differ, compiled vs parallel -O2" p
      | _ -> assert false);
      (* stats determinism: the same leg replayed is bit-identical *)
      let again = run_leg ~fuel ~p ~opt:1 ~what:"compiled -O1 (replay)" `Compiled prog in
      (match others with
      | _ :: o1 :: _ ->
          if again.counters <> o1.counters || again.optc <> o1.optc then
            failf "stats-determinism" "p=%d: replaying compiled -O1 changed the snapshot" p
      | _ -> assert false);
      (* fuel exhaustion must be engine-identical (checked by
         [legs_agree] above); record it as the distinct verdict *)
      (match leg.run with
      | LErr m when is_fuel_msg m -> fueled := true
      | LErr m -> cov := add_error !cov m
      | LOk _ -> ());
      List.iter
        (fun l ->
          cov := add_snapshot (add_snapshot !cov l.counters) l.optc)
        (leg :: others))
    simd_ps;
  (!cov, !fueled)

(* ------------------------------------------------------------------ *)
(* Nest dialect: translation validation                                *)
(* ------------------------------------------------------------------ *)

(* Every nest input runs in one fixed environment (rather than the
   per-input environments of the property tests) so corpus files are
   self-contained: k = 4, l = [4; 1; 3; 2] (note the l(2) = 1 inner
   extent: single-trip inner loops are where flattening variants
   disagree when they are wrong). *)
let nest_env =
  { Gen.src_block = []; k = 4; l = [| 4; 1; 3; 2 |]; inner_nonempty = false }

let nest_setup ctx = Gen.exec_setup nest_env ctx

let nest_opts =
  {
    Lf_core.Pipeline.default_options with
    Lf_core.Pipeline.pure_subroutines = [ "tick" ];
  }

let run_nest ~fuel prog : (Interp.t, string) result =
  match Interp.run ~fuel ~setup:nest_setup prog with
  | ctx -> Ok ctx
  | exception ((Errors.Runtime_error _ | Errors.Runtime_error_at _) as e) ->
      Error (Errors.to_message e)

let obs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun oa ob ->
         oa.Interp.ob_proc = ob.Interp.ob_proc
         && List.length oa.Interp.ob_args = List.length ob.Interp.ob_args
         && List.for_all2 Values.equal_value oa.Interp.ob_args
              ob.Interp.ob_args)
       a b

(* Compare a transformed program against the original's successful run.
   The transformed leg gets a 4x fuel margin: the rewrites add
   bookkeeping statements, but a terminating nest must still terminate
   — exhausting even the margin is a divergence, not a fuel verdict. *)
let validate_transform ~fuel ~what ctx0 prog' cov =
  match run_nest ~fuel:(4 * fuel) prog' with
  | Error m when is_fuel_msg m ->
      failf what "transformed program exhausted 4x fuel where the original terminated"
  | Error m -> failf what "only the transformed program failed (%S)" m
  | Ok ctx' ->
      if not (Env.equal_on Gen.exec_observables ctx0.Interp.env ctx'.Interp.env)
      then failf what "final x/acc state diverged";
      if not (obs_equal (Interp.observations ctx0) (Interp.observations ctx'))
      then failf what "external-call observation traces diverged";
      cov

let check_nest ~fuel prog =
  let cov = ref Cov.empty in
  let fueled = ref false in
  (* lint: rule hits are coverage; lint crashing is a failure *)
  let lint_cov pure_subroutines =
    match Lf_analysis.Lint.check_program ~pure_subroutines prog with
    | report ->
        List.iter
          (fun d -> cov := Cov.add ("lint:" ^ d.Lf_analysis.Lint.d_rule) !cov)
          report.Lf_analysis.Lint.diags
    | exception e -> failf "lint-crash" "%s" (Printexc.to_string e)
  in
  lint_cov [];
  lint_cov [ "tick" ];
  Stats.reset ();
  (match run_nest ~fuel prog with
  | Error m when is_fuel_msg m -> fueled := true
  | Error m -> cov := add_error !cov m
  | Ok ctx0 ->
      cov := add_snapshot !cov (Stats.snapshot ~sections:[ Stats.Counters ] ());
      (* flatten validation *)
      (match Lf_core.Pipeline.flatten_program ~opts:nest_opts prog with
      | Error _ -> cov := Cov.add "flatten:rejected" !cov
      | Ok o ->
          cov :=
            validate_transform ~fuel ~what:"flatten" ctx0
              o.Lf_core.Pipeline.program
              (Cov.add "flatten:ok" !cov)
      | exception ((Errors.Runtime_error _ | Errors.Runtime_error_at _) as e)
        ->
          failf "flatten-crash" "%s" (Errors.to_message e));
      (* coalesce validation *)
      match Lf_core.Pipeline.split_first_loop prog.Ast.p_body with
      | None -> ()
      | Some (pre, loop, post) -> (
          let fresh = Lf_core.Fresh.of_program prog in
          match Lf_core.Coalesce.coalesce ~fresh loop with
          | Error _ -> cov := Cov.add "coalesce:rejected" !cov
          | Ok flat ->
              let prog' = { prog with Ast.p_body = pre @ flat @ post } in
              cov :=
                validate_transform ~fuel ~what:"coalesce" ctx0 prog'
                  (Cov.add "coalesce:ok" !cov)));
  (!cov, !fueled)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Test-only hook: an extra oracle consulted after the standard
    battery.  The fuzz-smoke suite installs a deliberately broken one
    here to prove a bad oracle verdict is caught, minimized and
    reported like any engine bug.  Must be [None] outside tests. *)
let extra_oracle : (Input.t -> verdict) option ref = ref None

(* Two semantically-identical shape differences are allowed across
   print/parse, so both sides are normalized before comparing:
   - [EBin (Mod, a, b)] prints as [mod(a, b)] (Fortran has no modulo
     operator) and re-parses as the intrinsic [ECall ("mod", ...)];
   - a registered pure function like [sq] parses as [EIdx] (the parser
     only knows intrinsics), while generators build [ECall] — both
     engines resolve an unbound [EIdx] name through the function table,
     so the application forms are interchangeable. *)
let rec normalize_mod_expr e =
  match e with
  | Ast.EBin (Ast.Mod, a, b) ->
      Ast.ECall ("mod", [ normalize_mod_expr a; normalize_mod_expr b ])
  | Ast.EInt _ | Ast.EReal _ | Ast.EBool _ | Ast.EVar _ -> e
  | Ast.EUn (u, a) -> Ast.EUn (u, normalize_mod_expr a)
  | Ast.EBin (op, a, b) ->
      Ast.EBin (op, normalize_mod_expr a, normalize_mod_expr b)
  | Ast.ERange (a, b) -> Ast.ERange (normalize_mod_expr a, normalize_mod_expr b)
  | Ast.EIdx (v, es) -> Ast.EIdx (v, List.map normalize_mod_expr es)
  | Ast.ECall (v, es) when not (Intrinsics.is_intrinsic v) ->
      Ast.EIdx (v, List.map normalize_mod_expr es)
  | Ast.ECall (v, es) -> Ast.ECall (v, List.map normalize_mod_expr es)

let normalize_mod_program (p : Ast.program) =
  let e = normalize_mod_expr in
  let ctl c =
    {
      c with
      Ast.d_lo = e c.Ast.d_lo;
      d_hi = e c.Ast.d_hi;
      d_step = Option.map e c.Ast.d_step;
    }
  in
  let rec s st =
    match Ast.strip_loc st with
    | Ast.SAssign (lv, rhs) ->
        Ast.SAssign ({ lv with Ast.lv_index = List.map e lv.Ast.lv_index }, e rhs)
    | Ast.SDo (c, b) -> Ast.SDo (ctl c, blk b)
    | Ast.SForall (c, b) -> Ast.SForall (ctl c, blk b)
    | Ast.SWhile (c, b) -> Ast.SWhile (e c, blk b)
    | Ast.SDoWhile (b, c) -> Ast.SDoWhile (blk b, e c)
    | Ast.SIf (c, t, f) -> Ast.SIf (e c, blk t, blk f)
    | Ast.SWhere (c, t, f) -> Ast.SWhere (e c, blk t, blk f)
    | Ast.SCall (n, args) -> Ast.SCall (n, List.map e args)
    | Ast.SCondGoto (c, l) -> Ast.SCondGoto (e c, l)
    | (Ast.SGoto _ | Ast.SLabel _ | Ast.SComment _) as st -> st
    | Ast.SLoc _ -> assert false
  and blk b = List.map s b in
  { p with Ast.p_body = blk p.Ast.p_body }

let roundtrip (i : Input.t) =
  let src = Pretty.program_to_string i.Input.prog in
  match Parser.program_of_string src with
  | p ->
      if
        not
          (Ast.equal_program (normalize_mod_program p)
             (normalize_mod_program i.Input.prog))
      then failf "roundtrip" "pretty-printed program re-parsed differently"
  | exception e ->
      failf "roundtrip" "pretty-printed program does not re-parse: %s"
        (Errors.to_message e)

let run ?(fuel = default_fuel) (i : Input.t) : outcome =
  match
    with_stats (fun () ->
        roundtrip i;
        let cov, fueled =
          match i.Input.dialect with
          | Input.Simd -> check_simd ~fuel i.Input.prog
          | Input.Nest -> check_nest ~fuel i.Input.prog
        in
        let verdict =
          match !extra_oracle with
          | Some f -> (
              match f i with
              | Fail _ as v -> v
              | _ -> if fueled then Fuel else Pass)
          | None -> if fueled then Fuel else Pass
        in
        let cov =
          Cov.add
            (match verdict with
            | Fuel -> "verdict:fuel"
            | _ -> "verdict:pass")
            cov
        in
        { verdict; coverage = cov })
  with
  | outcome -> outcome
  | exception Failed (oracle, detail) ->
      { verdict = Fail { oracle; detail }; coverage = Cov.empty }
  | exception e ->
      (* an escaped exception from any layer is itself a finding *)
      {
        verdict = Fail { oracle = "crash"; detail = Printexc.to_string e };
        coverage = Cov.empty;
      }
