(** Well-formedness-preserving AST mutations.

    Mutation works at the AST level, never on source text, so every
    mutant parses by construction.  The operators preserve the
    round-trip invariants the oracle relies on:

    - integer constants stay in [0, 9] and real constants stay
      non-negative multiples of 0.125 (a leading minus would reparse as
      [EUn (Neg, _)] and trip the pretty-print/parse round-trip oracle);
    - operator swaps stay inside their type class (arith -> arith,
      comparison -> comparison, logic -> logic);
    - inserted statements and replacement expressions draw from the
      dialect's own vocabulary ([Lf_testgen.Gen]), so names stay bound
      by the standard environment.

    Mutants are allowed to *error* at runtime (out-of-bounds subscripts,
    division by zero, dropped labels): error paths must agree across
    engines too, and the oracle treats identical failures as agreement. *)

open Lf_lang
open Ast

(* ------------------------------------------------------------------ *)
(* Statement slots                                                     *)
(* ------------------------------------------------------------------ *)

(* Every non-comment statement, at every nesting level, is a numbered
   slot.  [edit_nth k f b] applies [f] to slot [k]; [f] returns the
   replacement list (deletion, rewrite, or insertion-before). *)

let rec count_stmts (b : block) = List.fold_left (fun n s -> n + stmt_slots s) 0 b

and stmt_slots s =
  match strip_loc s with
  | SComment _ -> 0
  | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b) ->
      1 + count_stmts b
  | SIf (_, t, f) | SWhere (_, t, f) -> 1 + count_stmts t + count_stmts f
  | _ -> 1

let edit_nth k (f : stmt -> stmt list) (b : block) : block =
  let i = ref (-1) in
  let rec go_block b = List.concat_map go_stmt b
  and go_stmt s =
    match strip_loc s with
    | SComment _ as s -> [ s ]
    | s ->
        incr i;
        if !i = k then f s
        else
          [
            (match s with
            | SDo (c, b) -> SDo (c, go_block b)
            | SWhile (e, b) -> SWhile (e, go_block b)
            | SDoWhile (b, e) -> SDoWhile (go_block b, e)
            | SForall (c, b) -> SForall (c, go_block b)
            | SIf (e, t, fb) -> SIf (e, go_block t, go_block fb)
            | SWhere (e, t, fb) -> SWhere (e, go_block t, go_block fb)
            | s -> s);
          ]
  in
  go_block b

(* ------------------------------------------------------------------ *)
(* Expression slots                                                    *)
(* ------------------------------------------------------------------ *)

(* Every expression node (including subexpressions) anywhere in the
   block is a numbered slot. *)

let rec expr_nodes e =
  match e with
  | EInt _ | EReal _ | EBool _ | EVar _ -> 1
  | EUn (_, a) -> 1 + expr_nodes a
  | EBin (_, a, b) | ERange (a, b) -> 1 + expr_nodes a + expr_nodes b
  | EIdx (_, es) | ECall (_, es) ->
      1 + List.fold_left (fun n e -> n + expr_nodes e) 0 es

let stmt_exprs s =
  let rec go s =
    match strip_loc s with
    | SAssign (lv, e) -> lv.lv_index @ [ e ]
    | SDo (c, b) | SForall (c, b) ->
        (c.d_lo :: c.d_hi :: Option.to_list c.d_step) @ block_exprs b
    | SWhile (e, b) -> e :: block_exprs b
    | SDoWhile (b, e) -> block_exprs b @ [ e ]
    | SIf (e, t, f) | SWhere (e, t, f) ->
        (e :: block_exprs t) @ block_exprs f
    | SCall (_, args) -> args
    | SCondGoto (e, _) -> [ e ]
    | SGoto _ | SLabel _ | SComment _ | SLoc _ -> []
  and block_exprs b = List.concat_map go b
  in
  go s

let count_exprs (b : block) =
  List.fold_left
    (fun n s ->
      n + List.fold_left (fun n e -> n + expr_nodes e) 0 (stmt_exprs s))
    0 b

(* Rewrite expression slot [k] with [f], threading a counter through the
   whole block in the same (pre-order) numbering [count_exprs] uses. *)
let map_nth_expr k (f : expr -> expr) (b : block) : block =
  let i = ref (-1) in
  let rec go_e e =
    incr i;
    if !i = k then f e
    else if !i > k then e
    else
      match e with
      | EInt _ | EReal _ | EBool _ | EVar _ -> e
      | EUn (u, a) -> EUn (u, go_e a)
      | EBin (op, a, b) ->
          let a = go_e a in
          EBin (op, a, go_e b)
      | ERange (a, b) ->
          let a = go_e a in
          ERange (a, go_e b)
      | EIdx (v, es) -> EIdx (v, List.map go_e es)
      | ECall (v, es) -> ECall (v, List.map go_e es)
  in
  let go_ctl c =
    let lo = go_e c.d_lo in
    let hi = go_e c.d_hi in
    { c with d_lo = lo; d_hi = hi; d_step = Option.map go_e c.d_step }
  in
  let rec go_s s =
    match strip_loc s with
    | SAssign (lv, e) ->
        let index = List.map go_e lv.lv_index in
        SAssign ({ lv with lv_index = index }, go_e e)
    | SDo (c, b) ->
        let c = go_ctl c in
        SDo (c, go_b b)
    | SForall (c, b) ->
        let c = go_ctl c in
        SForall (c, go_b b)
    | SWhile (e, b) ->
        let e = go_e e in
        SWhile (e, go_b b)
    | SDoWhile (b, e) ->
        let b = go_b b in
        SDoWhile (b, go_e e)
    | SIf (e, t, f) ->
        let e = go_e e in
        let t = go_b t in
        SIf (e, t, go_b f)
    | SWhere (e, t, f) ->
        let e = go_e e in
        let t = go_b t in
        SWhere (e, t, go_b f)
    | SCall (n, args) -> SCall (n, List.map go_e args)
    | SCondGoto (e, l) -> SCondGoto (go_e e, l)
    | (SGoto _ | SLabel _ | SComment _) as s -> s
    | SLoc _ -> assert false
  and go_b b = List.map go_s b in
  go_b b

(* ------------------------------------------------------------------ *)
(* The operators                                                       *)
(* ------------------------------------------------------------------ *)

let swap_binop = function
  | Add -> Sub
  | Sub -> Add
  | Mul -> Add
  | Div -> Mul
  | Mod -> Add
  | Pow -> Mul
  | Lt -> Le
  | Le -> Gt
  | Gt -> Ge
  | Ge -> Eq
  | Eq -> Ne
  | Ne -> Lt
  | And -> Or
  | Or -> And

let tweak_const rand e =
  match e with
  | EInt n -> EInt ((n + 1 + Random.State.int rand 9) mod 10)
  | EReal x ->
      let x = if Random.State.bool rand then x +. 0.25 else x -. 0.25 in
      EReal (Float.max 0.0 x)
  | EBool b -> EBool (not b)
  | e -> e

let swap_op e = match e with EBin (op, a, b) -> EBin (swap_binop op, a, b) | e -> e

(* Dialect vocabularies: replacement leaves, guard conditions for
   wrapping, and fresh statements for insertion.  Guards test variables
   the standard environments always bind ([iproc] / [k]), so a wrap
   never introduces an unbound name. *)

let gen1 rand g = QCheck.Gen.generate1 ~rand g

let leaf_expr rand = function
  | Input.Simd ->
      gen1 rand
        QCheck.Gen.(
          frequency
            [
              (3, map (fun n -> EInt n) (0 -- 9));
              (2, map (fun v -> EVar v) Lf_testgen.Gen.simd_ivar);
              (1, return (EVar "iproc"));
              (1, return (EVar "n"));
            ])
  | Input.Nest ->
      gen1 rand
        QCheck.Gen.(
          frequency
            [
              (3, map (fun n -> EInt n) (0 -- 9));
              (2, oneofl [ EVar "i"; EVar "j"; EVar "k"; EVar "acc" ]);
              (1, return (EIdx ("l", [ EVar "i" ])));
            ])

let guard_cond rand = function
  | Input.Simd ->
      EBin (Lt, EVar "iproc", EInt (Random.State.int rand 10))
  | Input.Nest -> EBin (Lt, EVar "k", EInt (Random.State.int rand 10))

let fresh_stmt rand = function
  | Input.Simd -> gen1 rand (Lf_testgen.Gen.simd_stmt_ext_sized 1)
  | Input.Nest -> gen1 rand Lf_testgen.Gen.nest_leaf_stmt

let wrap_stmt rand dialect s =
  match dialect with
  | Input.Simd -> SWhere (guard_cond rand dialect, [ s ], [])
  | Input.Nest -> SIf (guard_cond rand dialect, [ s ], [])

let unwrap_stmt s =
  match s with
  | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b) -> Some b
  | SIf (_, t, f) | SWhere (_, t, f) -> Some (t @ f)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* One mutation                                                        *)
(* ------------------------------------------------------------------ *)

type op =
  | Delete
  | Duplicate
  | Insert
  | Wrap
  | Unwrap
  | TweakConst
  | SwapOp
  | ReplaceExpr
  | GrowExpr

let ops =
  [|
    Delete; Duplicate; Insert; Wrap; Unwrap; TweakConst; SwapOp; ReplaceExpr;
    GrowExpr;
  |]

let pick_stmt rand b =
  let n = count_stmts b in
  if n = 0 then None else Some (Random.State.int rand n)

let pick_expr rand b =
  let n = count_exprs b in
  if n = 0 then None else Some (Random.State.int rand n)

(* Apply one operator; [None] when it does not apply to this program
   (empty body, no compound to unwrap, ...), in which case the driver
   falls through to [Insert], which always applies. *)
let apply_op rand dialect op (b : block) : block option =
  match op with
  | Delete ->
      (* keep at least one statement: the empty program is legal but a
         coverage dead end *)
      if count_stmts b <= 1 then None
      else
        Option.map (fun k -> edit_nth k (fun _ -> []) b) (pick_stmt rand b)
  | Duplicate ->
      Option.map (fun k -> edit_nth k (fun s -> [ s; s ]) b) (pick_stmt rand b)
  | Insert -> (
      let s = fresh_stmt rand dialect in
      match pick_stmt rand b with
      | None -> Some [ s ]
      | Some k -> Some (edit_nth k (fun s0 -> [ s; s0 ]) b))
  | Wrap ->
      Option.map
        (fun k -> edit_nth k (fun s -> [ wrap_stmt rand dialect s ]) b)
        (pick_stmt rand b)
  | Unwrap -> (
      match pick_stmt rand b with
      | None -> None
      | Some k ->
          let hit = ref false in
          let b' =
            edit_nth k
              (fun s ->
                match unwrap_stmt s with
                | Some body ->
                    hit := true;
                    body
                | None -> [ s ])
              b
          in
          if !hit then Some b' else None)
  | TweakConst | SwapOp | ReplaceExpr | GrowExpr -> (
      match pick_expr rand b with
      | None -> None
      | Some k ->
          let f =
            match op with
            | TweakConst -> tweak_const rand
            | SwapOp -> swap_op
            | ReplaceExpr -> fun _ -> leaf_expr rand dialect
            | _ -> fun e -> EBin (Add, e, leaf_expr rand dialect)
          in
          Some (map_nth_expr k f b))

let mutate_block rand dialect b =
  let op = ops.(Random.State.int rand (Array.length ops)) in
  match apply_op rand dialect op b with
  | Some b' -> b'
  | None -> (
      match apply_op rand dialect Insert b with Some b' -> b' | None -> b)

(** Apply [n] random mutation operators (default 1). *)
let mutate ?(n = 1) ~rand (i : Input.t) : Input.t =
  let body = ref i.Input.prog.p_body in
  for _ = 1 to n do
    body := mutate_block rand i.Input.dialect !body
  done;
  { i with Input.prog = { i.Input.prog with p_body = !body } }
