(** QCheck generators for random AST terms.

    Two flavours:
    - [expr] / [stmt] / [block]: arbitrary well-formed syntax, for
      parser/printer round-trip properties;
    - [int_expr_closed] and [nest]: {e executable} terms over a known
      environment, for semantic-preservation properties (simplifier,
      normalization, flattening). *)

open Lf_lang
open Lf_lang.Ast
open QCheck.Gen

let ident = oneofl [ "a"; "b"; "c"; "i"; "j"; "k"; "n"; "x"; "l" ]
let label = map string_of_int (1 -- 99)

let rec expr_sized n =
  if n <= 0 then
    oneof
      [
        map (fun i -> EInt i) (0 -- 9);
        map (fun v -> EVar v) ident;
        return (EBool true);
        return (EBool false);
      ]
  else
    let sub = expr_sized (n / 2) in
    frequency
      [
        (3, map2 (fun a b -> EBin (Add, a, b)) sub sub);
        (2, map2 (fun a b -> EBin (Mul, a, b)) sub sub);
        (2, map2 (fun a b -> EBin (Sub, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (Le, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (Lt, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (Eq, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (And, EBin (Le, a, b), EBin (Ge, a, b))) sub sub);
        (1, map (fun a -> EUn (Neg, a)) sub);
        (1, map2 (fun v a -> EIdx (v, [ a ])) ident sub);
        (1, map2 (fun v (a, b) -> EIdx (v, [ a; b ])) ident (pair sub sub));
        (1, map2 (fun a b -> ECall ("max", [ a; b ])) sub sub);
      ]

let expr = expr_sized 4

let lvalue =
  oneof
    [
      map (fun v -> { lv_name = v; lv_index = [] }) ident;
      map2 (fun v e -> { lv_name = v; lv_index = [ e ] }) ident expr;
    ]

let rec stmt_sized n =
  if n <= 0 then map2 (fun l e -> SAssign (l, e)) lvalue expr
  else
    let blk = block_sized (n / 2) in
    frequency
      [
        (4, map2 (fun l e -> SAssign (l, e)) lvalue expr);
        (2, map3 (fun c t f -> SIf (c, t, f)) expr blk blk);
        (1, map3 (fun c t f -> SWhere (c, t, f)) expr blk blk);
        ( 1,
          map3
            (fun v (lo, hi) b -> SDo (do_control v lo hi, b))
            ident (pair expr expr) blk );
        ( 1,
          map3
            (fun v (lo, hi) b -> SForall (do_control v lo hi, b))
            ident (pair expr expr) blk );
        (1, map2 (fun c b -> SWhile (c, b)) expr blk);
        (1, map2 (fun c b -> SDoWhile (b, c)) expr blk);
        (1, map2 (fun f args -> SCall (f, args)) ident (list_size (0 -- 2) expr));
      ]

and block_sized n = list_size (0 -- 3) (stmt_sized n)

let stmt = stmt_sized 3
let block = block_sized 3

(* ------------------------------------------------------------------ *)
(* Executable nests for semantic properties                            *)
(* ------------------------------------------------------------------ *)

(** A random two-level loop nest in the supported class, together with the
    environment setup and the list of observable variables.  The inner
    bound reads the [l] array (indexed by the outer variable), the body
    writes [x(i, j)] and a scalar accumulator [acc]. *)
type exec_nest = {
  src_block : block;
  k : int;
  l : int array;
  inner_nonempty : bool;
}

let exec_nest_gen =
  let* k = 1 -- 6 in
  let* l = array_size (return k) (0 -- 4) in
  let* nonempty = bool in
  let l = if nonempty then Array.map (max 1) l else l in
  let* body_kind = 0 -- 2 in
  let body =
    match body_kind with
    | 0 ->
        [ SAssign ({ lv_name = "x"; lv_index = [ EVar "i"; EVar "j" ] },
             EBin (Mul, EVar "i", EVar "j")) ]
    | 1 ->
        [
          SAssign ({ lv_name = "acc"; lv_index = [] },
            EBin (Add, EVar "acc", EBin (Add, EVar "i", EVar "j")));
          SAssign ({ lv_name = "x"; lv_index = [ EVar "i"; EVar "j" ] },
            EVar "acc");
        ]
    | _ ->
        [
          SIf
            ( EBin (Eq, EBin (Mod, EBin (Add, EVar "i", EVar "j"), EInt 2), EInt 0),
              [ SAssign ({ lv_name = "x"; lv_index = [ EVar "i"; EVar "j" ] },
                  EBin (Add, EVar "i", EVar "j")) ],
              [ SAssign ({ lv_name = "acc"; lv_index = [] },
                  EBin (Add, EVar "acc", EInt 1)) ] );
        ]
  in
  let* outer_while = bool in
  let* inner_while = bool in
  let inner =
    if inner_while then
      [ Ast.assign "j" (EInt 1);
        SWhile
          ( EBin (Le, EVar "j", EIdx ("l", [ EVar "i" ])),
            body @ [ Ast.assign "j" (EBin (Add, EVar "j", EInt 1)) ] ) ]
    else
      [ SDo (do_control "j" (EInt 1) (EIdx ("l", [ EVar "i" ])), body) ]
  in
  let nest =
    if outer_while then
      [ Ast.assign "i" (EInt 1);
        SWhile
          ( EBin (Le, EVar "i", EVar "k"),
            inner @ [ Ast.assign "i" (EBin (Add, EVar "i", EInt 1)) ] ) ]
    else [ SDo (do_control "i" (EInt 1) (EVar "k"), inner) ]
  in
  return { src_block = nest; k; l; inner_nonempty = nonempty }

(* ------------------------------------------------------------------ *)
(* Random SIMD programs for the engine-differential harness            *)
(* ------------------------------------------------------------------ *)

(** Random programs in the SIMD dialect itself: plural arithmetic over
    [iproc], nested WHERE, reductions (including REAL sums, which
    exercise the chunked merge tree), gathers and scatters on globals
    and per-lane arrays, bounded while-any loops, and division for the
    error paths.  Nothing in a generated program depends on the lane
    count, so the differential harness can replay the same program at
    any [p] and any [jobs] — the environment is bound by
    [simd_prog_setup ~p].

    Termination is by construction (DO bounds are constants, while-any
    counters strictly increase and are touched nowhere else), so a modest
    fuel is only a backstop — and fuel exhaustion, like any runtime
    error, must itself be identical across engines. *)

let simd_global_n = 8

(** Plural integer variables, seeded from [iproc] by the prologue. *)
let simd_ivar = oneofl [ "u"; "v"; "w" ]

let rec iexpr_sized n =
  if n <= 0 then
    frequency
      [
        (3, map (fun v -> EVar v) simd_ivar);
        (2, return (EVar "iproc"));
        (2, map (fun i -> EInt i) (0 -- 9));
      ]
  else
    let sub = iexpr_sized (n / 2) in
    frequency
      [
        (3, map2 (fun a b -> EBin (Add, a, b)) sub sub);
        (2, map2 (fun a b -> EBin (Sub, a, b)) sub sub);
        (2, map2 (fun a b -> EBin (Mul, a, b)) sub sub);
        (1, map2 (fun a c -> EBin (Mod, a, EInt (1 + c))) sub (0 -- 4));
        (* may divide by zero: an error-path generator *)
        (1, map2 (fun a b -> EBin (Div, a, b)) sub sub);
        (1, map2 (fun a b -> ECall ("max", [ a; b ])) sub sub);
        (1, map (fun a -> ECall ("abs", [ a ])) sub);
      ]

(** Mostly in-bounds subscript into a size-[simd_global_n] global;
    occasionally arbitrary, to exercise the bounds-error path. *)
let simd_idx =
  frequency
    [
      ( 4,
        map
          (fun c ->
            EBin
              ( Add,
                EBin (Mod, EBin (Add, EVar "iproc", EInt c), EInt simd_global_n),
                EInt 1 ))
          (0 -- 9) );
      (1, iexpr_sized 1);
    ]

(** Subscript into the 3-element per-lane array [f]. *)
let simd_idx_f =
  frequency
    [ (4, map (fun c -> EInt (1 + (c mod 3))) (0 -- 9)); (1, iexpr_sized 1) ]

let simd_bexpr =
  let* op = oneofl [ Le; Lt; Eq; Ge ] in
  map2 (fun a b -> EBin (op, a, b)) (iexpr_sized 2) (iexpr_sized 2)

let rec rexpr_sized n =
  if n <= 0 then
    frequency
      [
        (3, return (EVar "r"));
        (2, map (fun c -> EReal (0.25 *. float_of_int c)) (0 -- 9));
        (1, map (fun c -> EBin (Mul, EVar "iproc", EReal (0.5 *. float_of_int (1 + c)))) (0 -- 4));
      ]
  else
    let sub = rexpr_sized (n / 2) in
    frequency
      [
        (3, map2 (fun a b -> EBin (Add, a, b)) sub sub);
        (2, map2 (fun a b -> EBin (Mul, a, b)) sub sub);
        (2, map2 (fun a b -> EBin (Sub, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (Div, a, b)) sub sub);
      ]

let simd_lv name index = { lv_name = name; lv_index = index }

(** A reduction into the front-end scalar [s]: the boolean forms, the
    integer folds, and — crucially for the shard merge tree — REAL sums. *)
let simd_reduction =
  frequency
    [
      ( 2,
        let* name = oneofl [ "any"; "all"; "count" ] in
        map (fun c -> SAssign (simd_lv "s" [], ECall (name, [ c ]))) simd_bexpr
      );
      ( 2,
        let* name = oneofl [ "sum"; "maxval"; "minval" ] in
        map
          (fun e -> SAssign (simd_lv "s" [], ECall (name, [ e ])))
          (iexpr_sized 2) );
      ( 2,
        let* name = oneofl [ "sum"; "maxval"; "minval" ] in
        map
          (fun e -> SAssign (simd_lv "s" [], ECall (name, [ e ])))
          (rexpr_sized 2) );
    ]

(** One statement; [n] bounds the WHERE/DO nesting depth.  WHILE loops
    are generated separately (top level only) so their counters cannot
    be clobbered by a surrounding loop. *)
let rec simd_stmt_sized n =
  let leaf =
    frequency
      [
        (3, map2 (fun v e -> SAssign (simd_lv v [], e)) simd_ivar (iexpr_sized 2));
        (2, map (fun e -> SAssign (simd_lv "r" [], e)) (rexpr_sized 2));
        (2, simd_reduction);
        (* gathers *)
        (2, map2 (fun v i -> SAssign (simd_lv v [], EIdx ("g", [ i ]))) simd_ivar simd_idx);
        (1, map (fun i -> SAssign (simd_lv "r" [], EIdx ("h", [ i ]))) simd_idx);
        (1, map2 (fun v i -> SAssign (simd_lv v [], EIdx ("f", [ i ]))) simd_ivar simd_idx_f);
        (* scatters *)
        (2, map2 (fun i e -> SAssign (simd_lv "g" [ i ], e)) simd_idx (iexpr_sized 2));
        (1, map2 (fun i e -> SAssign (simd_lv "h" [ i ], e)) simd_idx (rexpr_sized 2));
        (1, map2 (fun i e -> SAssign (simd_lv "f" [ i ], e)) simd_idx_f (iexpr_sized 2));
        (* a lane-indexed divisor: fails on exactly one lane when p is
           large enough, so the first-failing-lane contract is exercised
           at some sweep widths and not others *)
        ( 1,
          map
            (fun c ->
              SAssign
                ( simd_lv "u" [],
                  EBin (Div, EVar "v", EBin (Sub, EVar "iproc", EInt c)) ))
            (1 -- 9) );
      ]
  in
  if n <= 0 then leaf
  else
    let blk = list_size (1 -- 3) (simd_stmt_sized (n - 1)) in
    frequency
      [
        (5, leaf);
        (2, map3 (fun c t f -> SWhere (c, t, f)) simd_bexpr blk blk);
        (1, map3 (fun c t f -> SIf (c, t, f)) simd_bexpr blk blk);
        ( 1,
          map2
            (fun c b -> SDo (do_control "d" (EInt 1) (EInt (1 + c)), b))
            (0 -- 3) blk );
      ]

(** The while-any idiom with a private, strictly increasing counter. *)
let simd_while_any idx =
  let wc = Printf.sprintf "wc%d" idx in
  let* bound = 1 -- 5 in
  let* step = 1 -- 2 in
  let* body = list_size (1 -- 2) (simd_stmt_sized 1) in
  let cond = EBin (Le, EVar wc, EInt bound) in
  return
    [
      SAssign (simd_lv wc [], EVar "iproc");
      SWhile
        ( ECall ("any", [ cond ]),
          [
            SWhere
              ( cond,
                body @ [ SAssign (simd_lv wc [], EBin (Add, EVar wc, EInt step)) ],
                [] );
          ] );
    ]

let simd_prog_gen =
  let* c1 = 0 -- 9 in
  let* c2 = 1 -- 4 in
  let* c3 = 0 -- 9 in
  let prologue =
    [
      SAssign (simd_lv "u" [], EVar "iproc");
      SAssign (simd_lv "v" [], EBin (Mul, EVar "iproc", EInt c2));
      SAssign (simd_lv "w" [], EBin (Sub, EVar "iproc", EInt c1));
      SAssign (simd_lv "r" [], EBin (Mul, EVar "iproc", EReal (0.5 +. (0.125 *. float_of_int c3))));
      SAssign (simd_lv "s" [], EInt 0);
    ]
  in
  let* body = list_size (2 -- 5) (simd_stmt_sized 2) in
  let* nloops = 0 -- 2 in
  let rec loops i acc =
    if i >= nloops then return (List.concat (List.rev acc))
    else
      let* l = simd_while_any i in
      loops (i + 1) (l :: acc)
  in
  let* loop_stmts = loops 0 [] in
  return (Ast.program "diff" (prologue @ body @ loop_stmts))

(** Bind the environment every generated program runs in, at width [p]:
    the size-[simd_global_n] globals [g] (INTEGER) and [h] (REAL), the
    3-slot per-lane array [f], and the scalar [n]. *)
let simd_prog_setup ~p:_ vm =
  Lf_simd.Vm.bind_scalar vm "n" (Values.VInt simd_global_n);
  Lf_simd.Vm.bind_global vm "g"
    (Values.AInt (Nd.of_array (Array.init simd_global_n (fun i -> 10 * (i + 1)))));
  Lf_simd.Vm.bind_global vm "h"
    (Values.AReal
       (Nd.of_array (Array.init simd_global_n (fun i -> 0.5 *. float_of_int (i + 1)))));
  Lf_simd.Vm.bind_plural_arr vm "f" Ast.TInt [| 3 |];
  (* the extended generators' external subroutine and pure function:
     [tally] exercises the LScall path (kept serial by the parallel
     engine), [sq] the pure per-lane call path *)
  Lf_simd.Vm.register_proc vm "tally" (fun _vm ~mask:_ _args -> ());
  Lf_simd.Vm.register_func vm ~pure:true "sq" (fun vs ->
      match vs with
      | [ Values.VInt n ] -> Values.VInt (n * n)
      | [ v ] -> v
      | _ -> Values.VInt 0)

let exec_setup (en : exec_nest) ctx =
  let maxl = Array.fold_left max 1 en.l in
  Env.set ctx.Interp.env "k" (Values.VInt en.k);
  Env.set ctx.Interp.env "acc" (Values.VInt 0);
  Env.set ctx.Interp.env "l" (Values.VArr (Values.AInt (Nd.of_array en.l)));
  Env.set ctx.Interp.env "x"
    (Values.VArr (Values.AInt (Nd.create [| en.k; maxl |] 0)));
  (* external subroutine used by CALL-bearing nests; its invocations are
     recorded in the interpreter's observation trace *)
  Interp.register_proc ctx "tick" (fun _ctx _args -> ())

let exec_observables = [ "x"; "acc" ]

(* ------------------------------------------------------------------ *)
(* Extended front-end nests: GOTO loops and CALLs                      *)
(* ------------------------------------------------------------------ *)

(** The dusty-deck GOTO-loop rendering of the outer counted loop, in the
    exact shape [Lf_analysis.Loop_info.restructure_gotos] recognizes:

    {v
      i = 1
      10 IF (i > k) GOTO 20
        <inner>
        i = i + 1
        GOTO 10
      20 CONTINUE
    v}

    The current [exec_nest_gen] never emits labels, so GOTO programs
    exercise the restructuring front of the pipeline (and the lint's
    irregular-control rules) only through this generator. *)
let goto_outer inner =
  [
    Ast.assign "i" (EInt 1);
    SLabel "10";
    SCondGoto (EBin (Gt, EVar "i", EVar "k"), "20");
  ]
  @ inner
  @ [
      Ast.assign "i" (EBin (Add, EVar "i", EInt 1));
      SGoto "10";
      SLabel "20";
    ]

(** A statement the plain generator never produces: an external CALL.
    [exec_setup] registers the subroutine, and the interpreter records
    every invocation in the observation trace, so translation validation
    compares call sequences too. *)
let call_stmt =
  let* nargs = 0 -- 2 in
  let args =
    match nargs with
    | 0 -> []
    | 1 -> [ EVar "i" ]
    | _ -> [ EVar "i"; EVar "j" ]
  in
  return (SCall ("tick", args))

(** Leaf statements over the nest vocabulary (used by mutation inserts
    as well as the extended bodies below). *)
let nest_leaf_stmt =
  frequency
    [
      ( 3,
        return
          (SAssign
             ( { lv_name = "x"; lv_index = [ EVar "i"; EVar "j" ] },
               EBin (Add, EVar "i", EVar "j") )) );
      ( 2,
        return
          (SAssign
             ( { lv_name = "acc"; lv_index = [] },
               EBin (Add, EVar "acc", EVar "i") )) );
      (1, call_stmt);
    ]

(** Extended executable nests: the [exec_nest_gen] class plus GOTO-loop
    outer renderings and CALL-bearing bodies. *)
let exec_nest_ext_gen =
  let* en = exec_nest_gen in
  let* style = 0 -- 2 in
  match style with
  | 0 -> return en (* plain, as before *)
  | 1 ->
      (* reroll the outer loop as a dusty-deck GOTO loop *)
      let inner =
        match en.src_block with
        | [ SDo (_, inner) ] -> inner
        | [ _; SWhile (_, body) ] ->
            (* drop the explicit counter bump: the GOTO shape has its own *)
            List.filter
              (fun s ->
                match s with
                | SAssign ({ lv_name = "i"; _ }, _) -> false
                | _ -> true)
              body
        | b -> b
      in
      return { en with src_block = goto_outer inner }
  | _ ->
      (* sprinkle a CALL into the innermost body *)
      let* call = call_stmt in
      let rec add_call = function
        | SDo (c, b) -> SDo (c, inject b)
        | SWhile (c, b) -> SWhile (c, inject b)
        | SForall (c, b) -> SForall (c, inject b)
        | s -> s
      and inject b =
        if List.exists (function SDo _ | SWhile _ | SForall _ -> true | _ -> false) b
        then List.map add_call b
        else call :: b
      in
      return { en with src_block = List.map add_call en.src_block }

(* ------------------------------------------------------------------ *)
(* Extended SIMD programs: CALLs, FORALL, deeper WHERE nesting         *)
(* ------------------------------------------------------------------ *)

(** Integer expressions that may also apply the registered pure function
    [sq] (see [simd_prog_setup]). *)
let iexpr_ext_sized n =
  if n <= 0 then iexpr_sized 0
  else
    frequency
      [
        (4, iexpr_sized n);
        (1, map (fun a -> ECall ("sq", [ a ])) (iexpr_sized (n - 1)));
      ]

(** One extended statement: everything [simd_stmt_sized] produces, plus
    subroutine CALLs (the [LScall] path, serialized by the parallel
    engine) and FORALL loops over a small constant range — constructs
    the plain generator never emits. *)
let rec simd_stmt_ext_sized n =
  let leaf =
    frequency
      [
        (6, simd_stmt_sized 0);
        (1, map (fun e -> SCall ("tally", [ e ])) (iexpr_ext_sized 1));
        (1, map2 (fun v e -> SAssign (simd_lv v [], e)) simd_ivar
             (iexpr_ext_sized 2));
      ]
  in
  if n <= 0 then leaf
  else
    let blk = list_size (1 -- 3) (simd_stmt_ext_sized (n - 1)) in
    frequency
      [
        (4, leaf);
        (2, map3 (fun c t f -> SWhere (c, t, f)) simd_bexpr blk blk);
        (1, map3 (fun c t f -> SIf (c, t, f)) simd_bexpr blk blk);
        ( 1,
          map2
            (fun c b -> SForall (do_control "e" (EInt 1) (EInt (1 + c)), b))
            (0 -- 2) blk );
        ( 1,
          map2
            (fun c b -> SDo (do_control "d" (EInt 1) (EInt (1 + c)), b))
            (0 -- 3) blk );
      ]

(** Extended SIMD programs: the [simd_prog_gen] prologue and while-any
    loops, with deeper ([<= 3] level) FORALL/WHERE nesting, CALLs and
    [sq] applications mixed in. *)
let simd_prog_ext_gen =
  let* base = simd_prog_gen in
  let* extra = list_size (1 -- 3) (simd_stmt_ext_sized 3) in
  (* appended after the while-any epilogue: the extended statements never
     touch the wcN counters, so loop termination is preserved *)
  return { base with Ast.p_body = base.Ast.p_body @ extra }
