(** MIMD execution model (paper §3, Figure 3): P processors run the same
    program asynchronously over separate name spaces; time is the maximum
    over per-processor times (Eq. 1 when the unit is one inner
    iteration). *)

open Lf_lang

type result = {
  contexts : Interp.t array;
  steps : int array;  (** interpreter steps per processor *)
  time : int;  (** max over processors *)
  calls : int array;  (** external-subroutine calls per processor *)
  call_time : int;  (** max over processors of external calls (Eq. 1) *)
  line_steps : (int * int array) list;
      (** with [~profile:true]: per source line, the steps each processor
          spent there; a line's MIMD time is the max over its array.
          Line 0 collects unlocated statements.  Empty when profiling was
          off. *)
}

(** [run ~p ~setup prog]: processor [i] (0-based) gets a fresh sequential
    context prepared by [setup i] — typically its block or cyclic slice of
    the global arrays, per the owner-computes rule.  [procs] registers
    external subroutines on every processor.  [profile] turns on per-line
    step attribution ([line_steps]). *)
val run :
  ?fuel:int ->
  p:int ->
  ?procs:(string * Interp.proc) list ->
  ?profile:bool ->
  setup:(int -> Interp.t -> unit) ->
  Ast.program ->
  result

val run_block :
  ?fuel:int ->
  p:int ->
  ?procs:(string * Interp.proc) list ->
  ?profile:bool ->
  setup:(int -> Interp.t -> unit) ->
  Ast.block ->
  result
