(** MIMD execution model (paper §3, Figure 3): each of the P processors
    runs its own copy of the program asynchronously on its own partition,
    with a separate name space.  The running time is the maximum over the
    per-processor times — Equation 1's [max_p Σ_i L_p^i] when the unit of
    time is one inner-loop iteration.

    Each processor gets an independent sequential [Lf_lang.Interp] context;
    [setup] seeds processor [p]'s name space (its partition of the data,
    per the owner-computes rule). *)

open Lf_lang

type result = {
  contexts : Interp.t array;
  steps : int array;  (** interpreter steps per processor *)
  time : int;  (** max over processors *)
  calls : int array;  (** external-subroutine calls per processor *)
  call_time : int;  (** max over processors of external calls — Eq. 1 when
                        each call is one inner iteration *)
  line_steps : (int * int array) list;
      (** with [~profile:true]: per source line, the interpreter steps
          each processor spent on that line.  A line's MIMD time is the
          max over its array (the slowest processor); summing the maxima
          per region gives TIME_MIMD for that region, the asynchronous
          counterpart of the SIMD per-line profile.  Line 0 collects
          statements without a source location.  Empty when profiling
          was off. *)
}

(** Run [prog] on [p] processors.  [setup proc ctx] prepares processor
    [proc] (0-based) — typically binding its block or cyclic slice of the
    global arrays; [procs] registers external subroutines available on all
    processors.  [profile] turns on per-line step attribution (a per-step
    hook in each interpreter; off by default so the plain path pays
    nothing beyond a [None] check). *)
let run ?fuel ~p ?(procs = []) ?(profile = false)
    ~(setup : int -> Interp.t -> unit) (prog : Ast.program) : result =
  let tables = Array.init p (fun _ -> Hashtbl.create 16) in
  let contexts =
    Array.init p (fun proc ->
        let ctx = Interp.create ?fuel () in
        if profile then begin
          let tbl = tables.(proc) in
          ctx.Interp.step_hook <-
            Some
              (fun loc ->
                let line = loc.Errors.line in
                Hashtbl.replace tbl line
                  (1 + Option.value ~default:0 (Hashtbl.find_opt tbl line)))
        end;
        List.iter (fun (name, f) -> Interp.register_proc ctx name f) procs;
        setup proc ctx;
        Interp.declare ctx prog.Ast.p_decls;
        Interp.exec_block ctx prog.Ast.p_body;
        ctx)
  in
  let steps = Array.map (fun c -> c.Interp.steps) contexts in
  let calls =
    Array.map (fun c -> List.length (Interp.observations c)) contexts
  in
  let line_steps =
    if not profile then []
    else begin
      let lines = Hashtbl.create 16 in
      Array.iter
        (fun tbl -> Hashtbl.iter (fun l _ -> Hashtbl.replace lines l ()) tbl)
        tables;
      Hashtbl.fold
        (fun l () acc ->
          ( l,
            Array.map
              (fun tbl ->
                Option.value ~default:0 (Hashtbl.find_opt tbl l))
              tables )
          :: acc)
        lines []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    end
  in
  {
    contexts;
    steps;
    time = Array.fold_left max 0 steps;
    calls;
    call_time = Array.fold_left max 0 calls;
    line_steps;
  }

(** Run a bare block per processor. *)
let run_block ?fuel ~p ?(procs = []) ?profile
    ~(setup : int -> Interp.t -> unit) (b : Ast.block) : result =
  run ?fuel ~p ~procs ?profile ~setup (Ast.program "mimd" b)
