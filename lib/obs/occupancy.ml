(** Lane-occupancy timeline: which lanes did useful work at which vector
    step (the paper's Figures 18/19, lanes on one axis, time on the
    other).

    Total step counts are unknown up front and can run to millions, so
    the timeline is accumulated with streaming downsampling: time is
    bucketed, and whenever the run outgrows the bucket array adjacent
    buckets are merged and the bucket width doubles.  Memory is bounded
    by [2 * width * p] counters regardless of run length; each cell ends
    up holding the number of busy (lane, step) slots that fell into its
    bucket, from which the renderer recovers a 0..1 occupancy shade. *)

type t = {
  p : int;
  width : int;  (** maximum number of time buckets kept *)
  mutable bucket_steps : int;  (** vector steps per bucket *)
  mutable busy : int array array;  (** [bucket].[lane] = busy slots *)
  mutable steps_in_bucket : int array;  (** vector steps per bucket so far *)
  mutable nbuckets : int;  (** buckets in use *)
  mutable steps : int;  (** total vector steps seen *)
}

let create ?(width = 72) ~p () =
  if width <= 0 then invalid_arg "Occupancy.create: width <= 0";
  {
    p;
    width;
    bucket_steps = 1;
    busy = Array.init (2 * width) (fun _ -> Array.make p 0);
    steps_in_bucket = Array.make (2 * width) 0;
    nbuckets = 0;
    steps = 0;
  }

(* Merge bucket pairs in place and double the bucket width. *)
let compact t =
  let n = t.nbuckets in
  let half = (n + 1) / 2 in
  for i = 0 to half - 1 do
    let a = t.busy.(2 * i) in
    let b = if (2 * i) + 1 < n then t.busy.((2 * i) + 1) else Array.make t.p 0
    in
    let dst = Array.make t.p 0 in
    for lane = 0 to t.p - 1 do
      dst.(lane) <- a.(lane) + b.(lane)
    done;
    t.busy.(i) <- dst;
    t.steps_in_bucket.(i) <-
      t.steps_in_bucket.(2 * i)
      + (if (2 * i) + 1 < n then t.steps_in_bucket.((2 * i) + 1) else 0)
  done;
  for i = half to (2 * t.width) - 1 do
    t.busy.(i) <- Array.make t.p 0;
    t.steps_in_bucket.(i) <- 0
  done;
  t.nbuckets <- half;
  t.bucket_steps <- t.bucket_steps * 2

(** Record one vector step's activity mask.  Reduction events should not
    be recorded here — they do not occupy a time slot. *)
let record t (ev : Trace.event) =
  if Trace.is_step ev then begin
    let bucket = t.steps / t.bucket_steps in
    if bucket >= 2 * t.width then compact t;
    let bucket = t.steps / t.bucket_steps in
    let row = t.busy.(bucket) in
    let mask = ev.Trace.mask in
    let lanes = min t.p (Array.length mask) in
    for lane = 0 to lanes - 1 do
      if mask.(lane) then row.(lane) <- row.(lane) + 1
    done;
    t.steps_in_bucket.(bucket) <- t.steps_in_bucket.(bucket) + 1;
    if bucket >= t.nbuckets then t.nbuckets <- bucket + 1;
    t.steps <- t.steps + 1
  end

let sink t : Trace.sink = record t

(** [lanes x buckets] matrix of occupancy fractions in [0, 1]:
    cell [(lane, b)] is the fraction of bucket [b]'s vector steps in
    which [lane] was active. *)
let matrix t =
  Array.init t.p (fun lane ->
      Array.init t.nbuckets (fun b ->
          let steps = t.steps_in_bucket.(b) in
          if steps = 0 then 0.0
          else float_of_int t.busy.(b).(lane) /. float_of_int steps))

let to_json t : Json.t =
  Json.Obj
    [
      ("p", Json.Int t.p);
      ("steps", Json.Int t.steps);
      ("bucket_steps", Json.Int t.bucket_steps);
      ("buckets", Json.Int t.nbuckets);
      ( "busy",
        Json.List
          (List.init t.nbuckets (fun b ->
               Json.List
                 (List.init t.p (fun lane -> Json.Int t.busy.(b).(lane))))) );
      ( "steps_per_bucket",
        Json.List
          (List.init t.nbuckets (fun b -> Json.Int t.steps_in_bucket.(b))) );
    ]
