(** Chrome trace-event export: one track (tid) per SIMD lane, one slice
    per maximal run of consecutive vector steps in which the lane stayed
    active on the same source line.  The resulting JSON file loads
    directly into Perfetto / chrome://tracing; the time unit is one
    vector step (reported as microseconds, which the viewers require).

    The builder is streaming — it holds one open interval per lane, so
    memory is O(p) plus the rendered output, and it coalesces adjacent
    steps instead of emitting steps * p individual events. *)

open Lf_lang

type interval = {
  i_line : int;
  i_kind : Trace.kind;
  i_start : int;  (** first step of the run *)
  mutable i_end : int;  (** last step of the run, inclusive *)
}

type t = {
  p : int;
  open_ : interval option array;  (** per-lane open run *)
  buf : Buffer.t;
  mutable count : int;
  mutable steps : int;
}

let create ~p =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  { p; open_ = Array.make p None; buf; count = 0; steps = 0 }

let flush_interval t ~lane (iv : interval) =
  if t.count > 0 then Buffer.add_char t.buf ',';
  t.count <- t.count + 1;
  let name =
    if iv.i_line = 0 then Trace.kind_to_string iv.i_kind
    else Printf.sprintf "line %d" iv.i_line
  in
  Buffer.add_string t.buf
    (Json.to_string
       (Json.Obj
          [
            ("name", Json.Str name);
            ("cat", Json.Str (Trace.kind_to_string iv.i_kind));
            ("ph", Json.Str "X");
            ("ts", Json.Int iv.i_start);
            ("dur", Json.Int (iv.i_end - iv.i_start + 1));
            ("pid", Json.Int 0);
            ("tid", Json.Int lane);
            ("args", Json.Obj [ ("line", Json.Int iv.i_line) ]);
          ]))

let record t (ev : Trace.event) =
  if Trace.is_step ev then begin
    t.steps <- t.steps + 1;
    let line = ev.Trace.loc.Errors.line in
    let mask = ev.Trace.mask in
    let lanes = min t.p (Array.length mask) in
    for lane = 0 to lanes - 1 do
      let active = mask.(lane) in
      match t.open_.(lane) with
      | Some iv
        when active && iv.i_line = line && iv.i_kind = ev.Trace.kind
             && iv.i_end = ev.Trace.step - 1 ->
          iv.i_end <- ev.Trace.step
      | Some iv ->
          flush_interval t ~lane iv;
          t.open_.(lane) <-
            (if active then
               Some
                 {
                   i_line = line;
                   i_kind = ev.Trace.kind;
                   i_start = ev.Trace.step;
                   i_end = ev.Trace.step;
                 }
             else None)
      | None ->
          if active then
            t.open_.(lane) <-
              Some
                {
                  i_line = line;
                  i_kind = ev.Trace.kind;
                  i_start = ev.Trace.step;
                  i_end = ev.Trace.step;
                }
    done
  end

let sink t : Trace.sink = record t

(** Close all open intervals and return the complete JSON document. *)
let contents t =
  Array.iteri
    (fun lane iv ->
      match iv with
      | Some iv ->
          flush_interval t ~lane iv;
          t.open_.(lane) <- None
      | None -> ())
    t.open_;
  Buffer.contents t.buf ^ "]}"

let write_file t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc
