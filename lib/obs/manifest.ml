(** Run manifests: one jsonlint-clean JSON artifact per VM run, tying a
    result to the exact inputs that produced it — program identity
    (path, MD5, size), engine, [-O] level, jobs, lane count, wall/CPU
    time, the [Metrics] counters and the full [Stats] registry dump.

    The point is auditability of performance claims: a BENCH_*.json
    number or an EXPERIMENTS.md table row can cite the manifest instead
    of relying on CHANGES.md prose to recall which flags were used.
    [of_json] restores every scalar field (the [metrics]/[stats]
    payloads are carried verbatim), so manifests round-trip — the test
    suite checks [of_json (to_json m) = m]. *)

type t = {
  schema : int;
  program : string;  (** source path as given on the command line *)
  program_md5 : string;  (** MD5 of the source bytes, hex *)
  program_bytes : int;
  engine : string;  (** "tree-walk" | "compiled" | "parallel" | "seq" *)
  opt : int;  (** [-O] level (0 when the engine ignores it) *)
  jobs : int;  (** shard bound; 1 for the serial engines *)
  p : int;  (** lane count *)
  wall_ns : int64;  (** monotonic wall time of the run *)
  cpu_s : float;  (** [Sys.time] delta of the run *)
  metrics : Json.t;  (** [Metrics.to_json] payload *)
  stats : Json.t;  (** [Stats.to_json] payload *)
}

let schema_version = 1

let make ~program ~source ~engine ~opt ~jobs ~p ~wall_ns ~cpu_s ~metrics
    ~stats =
  {
    schema = schema_version;
    program;
    program_md5 = Digest.to_hex (Digest.string source);
    program_bytes = String.length source;
    engine;
    opt;
    jobs;
    p;
    wall_ns;
    cpu_s;
    metrics;
    stats;
  }

let to_json m =
  Json.Obj
    [
      ("schema", Json.Int m.schema);
      ("program", Json.Str m.program);
      ("program_md5", Json.Str m.program_md5);
      ("program_bytes", Json.Int m.program_bytes);
      ("engine", Json.Str m.engine);
      ("opt", Json.Int m.opt);
      ("jobs", Json.Int m.jobs);
      ("p", Json.Int m.p);
      ("wall_ns", Json.Int (Int64.to_int m.wall_ns));
      ("cpu_s", Json.Float m.cpu_s);
      ("metrics", m.metrics);
      ("stats", m.stats);
    ]

let of_json (j : Json.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "manifest: missing field %S" name)
  in
  let int name =
    let* v = field name in
    match v with
    | Json.Int n -> Ok n
    | _ -> Error (Printf.sprintf "manifest: field %S is not an integer" name)
  in
  let str name =
    let* v = field name in
    match v with
    | Json.Str s -> Ok s
    | _ -> Error (Printf.sprintf "manifest: field %S is not a string" name)
  in
  let num name =
    let* v = field name in
    match v with
    | Json.Float f -> Ok f
    | Json.Int n -> Ok (float_of_int n)
    | _ -> Error (Printf.sprintf "manifest: field %S is not a number" name)
  in
  let* schema = int "schema" in
  if schema <> schema_version then
    Error (Printf.sprintf "manifest: unsupported schema version %d" schema)
  else
    let* program = str "program" in
    let* program_md5 = str "program_md5" in
    let* program_bytes = int "program_bytes" in
    let* engine = str "engine" in
    let* opt = int "opt" in
    let* jobs = int "jobs" in
    let* p = int "p" in
    let* wall_ns = int "wall_ns" in
    let* cpu_s = num "cpu_s" in
    let* metrics = field "metrics" in
    let* stats = field "stats" in
    Ok
      {
        schema;
        program;
        program_md5;
        program_bytes;
        engine;
        opt;
        jobs;
        p;
        wall_ns = Int64.of_int wall_ns;
        cpu_s;
        metrics;
        stats;
      }

let write path m =
  let oc = open_out path in
  Json.to_channel oc (to_json m);
  output_char oc '\n';
  close_out oc
