(** Process-wide telemetry registry (see stats.mli for the contract).

    The off state mirrors [Trace]: one global [bool], loaded and
    branched on by every recording entry point, nothing else.  Handles
    are interned in a hashtable guarded by a mutex — registration is
    cold (module init, compile time, CLI setup); recording through a
    handle touches only the handle's own mutable fields and never locks.

    Sharded accumulators give pool workers a place to record without
    races: each participant of a dispatch owns one cell (the control
    thread is cell 0), and the pool's join supplies the happens-before
    edge before anyone reads, so plain (non-atomic) cell writes are
    sound.  The merge folds cells in ascending order, making the merged
    value deterministic for a fixed cell assignment — though which
    participant drained which shard is scheduler-dependent, which is
    exactly why everything sharded lives in the [volatile] section. *)

type section = Counters | Opt | Volatile

let section_key = function
  | Counters -> "counters"
  | Opt -> "opt"
  | Volatile -> "volatile"

(* ------------------------------------------------------------------ *)
(* Global switch                                                       *)
(* ------------------------------------------------------------------ *)

let on = ref false
let enabled () = !on

(* ------------------------------------------------------------------ *)
(* Metric handles                                                      *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_section : section; mutable c_v : int }
type gauge = { g_name : string; g_section : section; mutable g_v : float }

type timer = {
  t_name : string;
  t_section : section;
  mutable t_count : int;
  mutable t_total_ns : int64;
  mutable t_max_ns : int64;
}

(* Enough cells for every possible pool participant: the control thread
   plus [Pool.max_jobs] workers; out-of-range indices fold into the last
   cell rather than racing or raising off the hot path. *)
let max_cells = 65

type sharded = { s_name : string; s_section : section; s_cells : int array }

type metric =
  | MCounter of counter
  | MGauge of gauge
  | MTimer of timer
  | MSharded of sharded

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_mu = Mutex.create ()

let intern name make classify =
  Mutex.lock reg_mu;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock reg_mu;
  match classify m with
  | Some h -> h
  | None -> invalid_arg ("Stats: " ^ name ^ " already registered with another kind")

let counter ?(section = Counters) name =
  intern name
    (fun () -> MCounter { c_name = name; c_section = section; c_v = 0 })
    (function MCounter c -> Some c | _ -> None)

let incr c = if !on then c.c_v <- c.c_v + 1
let add c n = if !on then c.c_v <- c.c_v + n
let counter_value c = c.c_v

let gauge ?(section = Volatile) name =
  intern name
    (fun () -> MGauge { g_name = name; g_section = section; g_v = 0.0 })
    (function MGauge g -> Some g | _ -> None)

let set_gauge g v = if !on then g.g_v <- v
let add_gauge g v = if !on then g.g_v <- g.g_v +. v
let gauge_value g = g.g_v

let timer ?(section = Volatile) name =
  intern name
    (fun () ->
      MTimer
        {
          t_name = name;
          t_section = section;
          t_count = 0;
          t_total_ns = 0L;
          t_max_ns = 0L;
        })
    (function MTimer t -> Some t | _ -> None)

let now_ns () = Monotonic_clock.now ()

let add_span_ns t ns =
  if !on then begin
    t.t_count <- t.t_count + 1;
    t.t_total_ns <- Int64.add t.t_total_ns ns;
    if Int64.compare ns t.t_max_ns > 0 then t.t_max_ns <- ns
  end

let span t f =
  if not !on then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> add_span_ns t (Int64.sub (now_ns ()) t0)) f
  end

let sharded ?(section = Volatile) name =
  intern name
    (fun () ->
      MSharded
        { s_name = name; s_section = section; s_cells = Array.make max_cells 0 })
    (function MSharded s -> Some s | _ -> None)

let cell_add s ~cell n =
  if !on then begin
    let cell = if cell < 0 then 0 else min cell (max_cells - 1) in
    s.s_cells.(cell) <- s.s_cells.(cell) + n
  end

let merged_value s = Array.fold_left ( + ) 0 s.s_cells

(* ------------------------------------------------------------------ *)
(* Reset / enable                                                      *)
(* ------------------------------------------------------------------ *)

let reset () =
  Mutex.lock reg_mu;
  Hashtbl.iter
    (fun _ -> function
      | MCounter c -> c.c_v <- 0
      | MGauge g -> g.g_v <- 0.0
      | MTimer t ->
          t.t_count <- 0;
          t.t_total_ns <- 0L;
          t.t_max_ns <- 0L
      | MSharded s -> Array.fill s.s_cells 0 max_cells 0)
    registry;
  Mutex.unlock reg_mu

(* The sequential interpreter cannot reference this module (Lf_lang
   sits below Lf_obs), so its per-statement dispatch counts arrive
   through [Interp.dispatch_hook]; the hook is installed only while the
   registry is enabled, keeping the interpreter at its usual one-branch
   cost otherwise. *)

let interp_counters : (string, counter) Hashtbl.t = Hashtbl.create 16

let interp_hook kind =
  let c =
    match Hashtbl.find_opt interp_counters kind with
    | Some c -> c
    | None ->
        let c = counter ("interp." ^ kind) in
        Hashtbl.replace interp_counters kind c;
        c
  in
  incr c

let enable () =
  on := true;
  Lf_lang.Interp.dispatch_hook := Some interp_hook

let disable () =
  on := false;
  Lf_lang.Interp.dispatch_hook := None

(* ------------------------------------------------------------------ *)
(* Shared key helpers                                                  *)
(* ------------------------------------------------------------------ *)

let c_assign = counter "dispatch.assign"
let c_call = counter "dispatch.call"
let c_where = counter "dispatch.where"
let c_while = counter "dispatch.while"
let c_reduce = counter "dispatch.reduce"
let frontend_counter = counter "dispatch.frontend"

let dispatch_counter = function
  | Trace.Assign -> c_assign
  | Trace.Call -> c_call
  | Trace.Where -> c_where
  | Trace.While -> c_while
  | Trace.Reduce -> c_reduce

let mask_counters =
  [|
    counter "mask.empty";
    counter "mask.q1";
    counter "mask.q2";
    counter "mask.q3";
    counter "mask.q4";
    counter "mask.full";
  |]

let mask_bucket ~active ~p =
  if active >= p then 5
  else if active <= 0 then 0
  else ((4 * active) + p - 1) / p

let mask_counter ~active ~p = mask_counters.(mask_bucket ~active ~p)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let metric_name = function
  | MCounter c -> c.c_name
  | MGauge g -> g.g_name
  | MTimer t -> t.t_name
  | MSharded s -> s.s_name

let metric_section = function
  | MCounter c -> c.c_section
  | MGauge g -> g.g_section
  | MTimer t -> t.t_section
  | MSharded s -> s.s_section

(* Trim trailing zero cells so the dump stays readable at small jobs
   counts; the merged value is what consumers should read anyway. *)
let cells_json (s : sharded) =
  let last = ref (-1) in
  Array.iteri (fun i v -> if v <> 0 then last := i) s.s_cells;
  Json.List
    (List.init (!last + 1) (fun i -> Json.Int s.s_cells.(i)))

let metric_json = function
  | MCounter c -> Json.Int c.c_v
  | MGauge g -> Json.Float g.g_v
  | MTimer t ->
      Json.Obj
        [
          ("count", Json.Int t.t_count);
          ("total_ns", Json.Int (Int64.to_int t.t_total_ns));
          ("max_ns", Json.Int (Int64.to_int t.t_max_ns));
        ]
  | MSharded s ->
      Json.Obj [ ("merged", Json.Int (merged_value s)); ("cells", cells_json s) ]

let section_members sec =
  Mutex.lock reg_mu;
  let ms =
    Hashtbl.fold
      (fun _ m acc -> if metric_section m = sec then m :: acc else acc)
      registry []
  in
  Mutex.unlock reg_mu;
  List.sort (fun a b -> compare (metric_name a) (metric_name b)) ms

let metric_int_value = function
  | MCounter c -> c.c_v
  | MGauge g -> int_of_float g.g_v
  | MTimer t -> t.t_count
  | MSharded s -> merged_value s

let snapshot ?(sections = [ Counters; Opt ]) () =
  List.concat_map
    (fun sec ->
      List.map (fun m -> (metric_name m, metric_int_value m))
        (section_members sec))
    sections

let schema_version = 1

let to_json () =
  let section sec =
    ( section_key sec,
      Json.Obj (List.map (fun m -> (metric_name m, metric_json m)) (section_members sec)) )
  in
  Json.Obj
    [
      ("version", Json.Int schema_version);
      ( "stability",
        Json.Obj
          [
            ("counters", Json.Str "stable");
            ("opt", Json.Str "jobs-invariant, varies with -O");
            ("volatile", Json.Str "exempt (GC, pool health, timers)");
          ] );
      section Counters;
      section Opt;
      section Volatile;
    ]

let pp ppf () =
  let pp_metric ppf m =
    match m with
    | MCounter c -> Format.fprintf ppf "  %-28s %12d" c.c_name c.c_v
    | MGauge g -> Format.fprintf ppf "  %-28s %12.3f" g.g_name g.g_v
    | MTimer t ->
        Format.fprintf ppf "  %-28s %12d spans  total %Ld ns  max %Ld ns"
          t.t_name t.t_count t.t_total_ns t.t_max_ns
    | MSharded s ->
        Format.fprintf ppf "  %-28s %12d (merged)" s.s_name (merged_value s)
  in
  List.iter
    (fun sec ->
      match section_members sec with
      | [] -> ()
      | ms ->
          Format.fprintf ppf "%s:@." (section_key sec);
          List.iter (fun m -> Format.fprintf ppf "%a@." pp_metric m) ms)
    [ Counters; Opt; Volatile ]
