(** Process-wide telemetry registry: named monotonic counters, gauges,
    timers and per-shard accumulators, shared by all three SIMD engines,
    the optimizer, the Domain pool and the sequential interpreter.

    {b Cost model.}  The registry mirrors the trace-sink design
    ([Trace.enabled]): every recording entry point loads one global
    [bool] and branches — a disabled registry performs no allocation, no
    hashing, no clock reads, so instrumentation can stay compiled into
    the hot paths permanently.  Metric handles are interned once (by
    name) at module-initialization or call-site-setup time; recording
    through a handle is a field update.

    {b Determinism contract.}  Metrics live in one of three sections,
    declared at registration and embedded in the JSON schema:

    - {!Counters} — {e stable}: identical (byte-for-byte in the JSON
      dump) across engines, [--jobs] and [-O] levels for the same
      program, because every tick fires on the control thread per
      {e source} operation (the [Metrics] fusion-invariance contract).
      Per-opcode dispatch counts and mask-density buckets live here.
    - {!Opt} — {e jobs-invariant} but optimizer-dependent: compile-time
      annotation counts and control-thread runtime counts of optimized
      paths taken.  Identical across [--jobs]; expected to differ
      between [-O0] and [-O1].
    - {!Volatile} — exempt from determinism: GC deltas, pool health,
      wall-clock timers.  Anything recorded from worker domains or from
      clocks belongs here.

    {b Domain-safety.}  Counters, gauges and timers must only be
    recorded from the control thread.  Worker domains record through
    {!sharded} accumulators: one cell per pool participant, written
    exclusively by that participant during a dispatch (the pool's join
    provides the happens-before edge), merged in ascending cell order at
    read time so the merged value is deterministic for a fixed cell
    assignment. *)

type section =
  | Counters  (** stable across engines, jobs and opt levels *)
  | Opt  (** jobs-invariant, varies with [-O] *)
  | Volatile  (** exempt: GC, pool health, timers *)

(* ------------------------------------------------------------------ *)
(* Global switch                                                       *)
(* ------------------------------------------------------------------ *)

val enabled : unit -> bool
(** One global flag; when [false] every recording call is a single flat
    branch. *)

val enable : unit -> unit
(** Arm recording and install the sequential interpreter's dispatch
    hook ([Lf_lang.Interp.dispatch_hook]). *)

val disable : unit -> unit
(** Disarm recording and remove the interpreter hook.  Values are
    retained (read them with {!to_json} / {!pp}); use {!reset} to
    clear. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

(* ------------------------------------------------------------------ *)
(* Metric handles                                                      *)
(* ------------------------------------------------------------------ *)

type counter
type gauge
type timer
type sharded

val counter : ?section:section -> string -> counter
(** Intern (find or create) the named monotonic counter.  The section
    defaults to {!Counters} and is fixed by the first registration. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?section:section -> string -> gauge
(** Gauges default to {!Volatile}. *)

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val timer : ?section:section -> string -> timer
(** Monotonic-clock span accumulators ([count], [total_ns], [max_ns]);
    default section {!Volatile}. *)

val span : timer -> (unit -> 'a) -> 'a
(** Time the thunk (monotonic clock) and record the span — when the
    registry is enabled; otherwise the thunk runs with zero overhead
    beyond the flag branch.  Exceptions propagate; the span is still
    recorded. *)

val add_span_ns : timer -> int64 -> unit

val sharded : ?section:section -> string -> sharded
(** A per-participant cell array (one cell per pool participant, index 0
    = the control thread); default section {!Volatile}. *)

val cell_add : sharded -> cell:int -> int -> unit
(** Add into one participant's cell.  Safe to call concurrently from
    distinct participants; out-of-range cells fold into the last cell. *)

val merged_value : sharded -> int
(** Sum of the cells in ascending cell order. *)

val now_ns : unit -> int64
(** The monotonic clock (ns); usable even when disabled. *)

(* ------------------------------------------------------------------ *)
(* Shared key helpers (both engines must bucket identically)           *)
(* ------------------------------------------------------------------ *)

val dispatch_counter : Trace.kind -> counter
(** The per-opcode dispatch counter for a vector-step kind
    ([dispatch.assign], [dispatch.call], ...); interned statically so
    tick sites pay no lookup. *)

val frontend_counter : counter
(** [dispatch.frontend]: scalar control-unit steps. *)

val mask_bucket : active:int -> p:int -> int
(** Density bucket of an activity mask: 0 = empty, 1-4 = quartiles
    ((0,25%], (25,50%], (50,75%], (75,100%)), 5 = full.  [p = 0] masks
    count as full. *)

val mask_counter : active:int -> p:int -> counter
(** The interned counter for {!mask_bucket} ([mask.empty], [mask.q1],
    ..., [mask.full]). *)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

val snapshot : ?sections:section list -> unit -> (string * int) list
(** A flat, name-sorted [(name, value)] view of the registry restricted
    to [sections] (default [[Counters; Opt]], i.e. the deterministic
    sections).  Values are the natural integer reading of each metric:
    counter value, timer span count, sharded merged value, truncated
    gauge.  This is the fuzzer's coverage signal: an input is
    "interesting" when it makes a counter nonzero that no earlier input
    reached (new opcode dispatched, new mask-density bucket, new
    optimizer annotation or optimized path). *)

val to_json : unit -> Json.t
(** The full registry as one JSON object:
    [{"version": 1, "stability": {...}, "counters": {...},
      "opt": {...}, "volatile": {...}}].
    Keys within each section are sorted, so the dump is byte-stable
    under registration order; the [stability] object marks the
    determinism contract of each section (the [volatile] section — and
    it alone — is exempt from cross-jobs byte identity). *)

val pp : Format.formatter -> unit -> unit
(** Human-readable table, one section per block, keys sorted. *)
