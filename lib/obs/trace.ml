(** Per-vector-step trace events and pluggable sinks.

    Every vector instruction the SIMD control unit issues — and every
    global reduction tree it fires — can be reported as one {!event}
    carrying the source location of the statement that issued it, the
    ordinal of the vector step, and the activity mask.  Aggregating the
    events reproduces the [Metrics] counters exactly (one [is_step] event
    per [Metrics.steps], one [Reduce] event per [Metrics.reductions]),
    which is what lets the per-line divergence profile tie out against
    the aggregate counters.

    The collector is designed for a zero-overhead off state: the engines
    guard every emission site with a single flat [bool] ([enabled]), so a
    VM with no sinks attached pays one predictable branch per vector step
    and allocates nothing. *)

open Lf_lang

(** What kind of control-unit action produced the event.  [Assign] is a
    plural assignment, [Call] an external subroutine step, [Where] a mask
    split (WHERE, or the plural IF that executes as WHERE), [While] a
    vector-controlled WHILE condition test, [Reduce] a global reduction
    tree (ANY/ALL/MAXVAL/MINVAL/SUM/COUNT).  [Reduce] events do not
    consume a vector step. *)
type kind =
  | Assign
  | Call
  | Where
  | While
  | Reduce

let kind_to_string = function
  | Assign -> "assign"
  | Call -> "call"
  | Where -> "where"
  | While -> "while"
  | Reduce -> "reduce"

type event = {
  loc : Errors.pos;  (** source position of the issuing statement *)
  step : int;  (** value of [Metrics.steps] after this event *)
  active : int;  (** lanes doing useful work *)
  p : int;  (** machine width *)
  kind : kind;
  mask : bool array;  (** per-lane activity (length [p]) *)
}

(** [true] for events that consumed a vector step (everything except
    reductions, which piggyback on the step of their statement). *)
let is_step ev = ev.kind <> Reduce

type sink = event -> unit

type t = {
  mutable enabled : bool;
  mutable sinks : sink list;
}

let create () = { enabled = false; sinks = [] }

(** Attach a sink and arm the collector. *)
let attach t sink =
  t.sinks <- t.sinks @ [ sink ];
  t.enabled <- true

let detach_all t =
  t.sinks <- [];
  t.enabled <- false

let emit t ev = List.iter (fun sink -> sink ev) t.sinks

(* ------------------------------------------------------------------ *)
(* Ring-buffer sink                                                    *)
(* ------------------------------------------------------------------ *)

(** Bounded in-memory trace: keeps the last [capacity] events, dropping
    the oldest.  Useful for post-mortems on long runs where a full trace
    would not fit. *)
module Ring = struct
  type ring = {
    capacity : int;
    buf : event option array;
    mutable next : int;  (** total events ever written *)
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity <= 0";
    { capacity; buf = Array.make capacity None; next = 0 }

  let sink r : sink =
   fun ev ->
    r.buf.(r.next mod r.capacity) <- Some ev;
    r.next <- r.next + 1

  let length r = min r.next r.capacity
  let dropped r = max 0 (r.next - r.capacity)

  (** Events still in the buffer, oldest first. *)
  let to_list r =
    let n = length r in
    let first = r.next - n in
    List.init n (fun i ->
        match r.buf.((first + i) mod r.capacity) with
        | Some ev -> ev
        | None -> assert false)
end

(* ------------------------------------------------------------------ *)
(* Streaming sinks                                                     *)
(* ------------------------------------------------------------------ *)

(** Accumulate every event, in order.  The differential engine tests use
    this to compare the exact event streams of the two SIMD engines. *)
module Log = struct
  type log = { mutable events : event list (* reversed *) }

  let create () = { events = [] }
  let sink l : sink = fun ev -> l.events <- ev :: l.events
  let to_list l = List.rev l.events
end

(* ------------------------------------------------------------------ *)
(* Shard-buffered sink (concurrent emission)                           *)
(* ------------------------------------------------------------------ *)

(** Deterministic tracing under concurrent emission: each shard (Domain)
    appends to its own private buffer — no locks, no cross-shard
    traffic — and [flush] replays the buffered events into a downstream
    sink in ascending shard order, then ascending emission order within
    each shard.  As long as the shard partition is deterministic (the
    lane-sharded engine's is: contiguous ascending lane ranges), the
    flushed stream is identical run over run, so JSONL/Chrome traces
    written through a [Sharded] buffer are byte-stable at any jobs
    count.

    The parallel SIMD engine itself emits all events from its control
    thread (emission is sequenced with [Metrics] accounting), so it
    never {e needs} this buffer; it exists for sinks that genuinely
    receive events from several domains — custom per-shard
    instrumentation, or future SPMD engines. *)
module Sharded = struct
  type buffer = {
    shards : event list array;  (** per-shard reversed event lists *)
  }

  let create ~shards =
    if shards < 1 then invalid_arg "Trace.Sharded.create: shards < 1";
    { shards = Array.make shards [] }

  let n_shards b = Array.length b.shards

  (** The emitting side for one shard: safe to call concurrently with
      other shards' sinks (each writes only its own slot). *)
  let sink b ~shard : sink =
    if shard < 0 || shard >= Array.length b.shards then
      invalid_arg "Trace.Sharded.sink: shard out of range";
    fun ev -> b.shards.(shard) <- ev :: b.shards.(shard)

  (** Replay everything into [out] (shard order, then emission order)
      and clear the buffers.  Call only after the emitting domains have
      been joined or synchronized. *)
  let flush b (out : sink) =
    Array.iteri
      (fun s evs ->
        List.iter out (List.rev evs);
        b.shards.(s) <- [])
      b.shards

  (** Buffered events without flushing, in flush order. *)
  let to_list b =
    List.concat_map List.rev (Array.to_list b.shards)
end

let event_to_json ev : Json.t =
  Json.Obj
    [
      ("line", Json.Int ev.loc.Errors.line);
      ("col", Json.Int ev.loc.Errors.col);
      ("step", Json.Int ev.step);
      ("active", Json.Int ev.active);
      ("p", Json.Int ev.p);
      ("kind", Json.Str (kind_to_string ev.kind));
    ]

(** Stream events to a channel as JSON lines (one object per event). *)
let jsonl_sink oc : sink =
 fun ev ->
  output_string oc (Json.to_string (event_to_json ev));
  output_char oc '\n'

let equal_event a b =
  a.loc = b.loc && a.step = b.step && a.active = b.active && a.p = b.p
  && a.kind = b.kind && a.mask = b.mask

let pp_event ppf ev =
  Fmt.pf ppf "[%a] step=%d %s active=%d/%d" Errors.pp_pos ev.loc ev.step
    (kind_to_string ev.kind) ev.active ev.p
