(** Per-source-line divergence profile.

    Consumes the per-vector-step event stream and attributes each step's
    lane-slots to the source line that issued it: [steps] vector
    instructions, [busy] active lane-slots, [slots = steps * p] total
    lane-slots, plus the reduction count.  Summing any column over all
    lines reproduces the corresponding aggregate [Metrics] counter
    exactly — the acceptance check for the whole observability layer.

    Line 0 collects events from statements without a source location
    (programs built in OCaml rather than parsed). *)

type line_stat = {
  line : int;
  mutable steps : int;  (** vector instructions issued from this line *)
  mutable busy : int;  (** active lane-slots *)
  mutable slots : int;  (** total lane-slots (steps * p) *)
  mutable reductions : int;
}

type t = {
  lines : (int, line_stat) Hashtbl.t;
  mutable events : int;  (** all events seen, reductions included *)
}

let create () = { lines = Hashtbl.create 32; events = 0 }

let stat_for t line =
  match Hashtbl.find_opt t.lines line with
  | Some s -> s
  | None ->
      let s = { line; steps = 0; busy = 0; slots = 0; reductions = 0 } in
      Hashtbl.replace t.lines line s;
      s

let record t (ev : Trace.event) =
  t.events <- t.events + 1;
  let s = stat_for t ev.Trace.loc.Lf_lang.Errors.line in
  if Trace.is_step ev then begin
    s.steps <- s.steps + 1;
    s.busy <- s.busy + ev.Trace.active;
    s.slots <- s.slots + ev.Trace.p
  end
  else s.reductions <- s.reductions + 1

let sink t : Trace.sink = record t

let utilization (s : line_stat) =
  if s.slots = 0 then 1.0 else float_of_int s.busy /. float_of_int s.slots

let idle (s : line_stat) = s.slots - s.busy

(** Per-line stats, worst first: most idle lane-slots, then line order. *)
let rows t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.lines []
  |> List.sort (fun a b ->
         match compare (idle b) (idle a) with
         | 0 -> compare a.line b.line
         | c -> c)

(** Same stats in source order. *)
let rows_by_line t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.lines []
  |> List.sort (fun a b -> compare a.line b.line)

type totals = {
  t_steps : int;
  t_busy : int;
  t_slots : int;
  t_reductions : int;
}

let totals t =
  Hashtbl.fold
    (fun _ s acc ->
      {
        t_steps = acc.t_steps + s.steps;
        t_busy = acc.t_busy + s.busy;
        t_slots = acc.t_slots + s.slots;
        t_reductions = acc.t_reductions + s.reductions;
      })
    t.lines
    { t_steps = 0; t_busy = 0; t_slots = 0; t_reductions = 0 }

let to_json t : Json.t =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("line", Json.Int s.line);
             ("steps", Json.Int s.steps);
             ("busy", Json.Int s.busy);
             ("slots", Json.Int s.slots);
             ("idle", Json.Int (idle s));
             ("utilization", Json.Float (utilization s));
             ("reductions", Json.Int s.reductions);
           ])
       (rows_by_line t))
