(** A minimal JSON tree, printer and parser.

    The observability layer emits JSON (metrics dumps, occupancy
    timelines, Chrome trace events) and the smoke tests validate that the
    emitted files parse back; the sealed environment has no JSON library,
    so this module provides just enough of one.  Printing is
    deterministic (object fields keep insertion order) and the parser
    accepts exactly the JSON this printer can produce plus ordinary
    whitespace, which is all the validation needs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no NaN/infinity literals.  Mapping them to null (the old
   behavior) is lossy: the empty-mask reduction identities (minval =
   +inf, maxval = -inf) stopped round-tripping through Manifest.of_json
   and broke jsonlint --cmp-ignoring equality.  Encode them as the
   string forms "inf"/"-inf"/"nan" instead; the parser maps exactly
   those three strings back to Float. *)
let float_literal f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_literal f)
  | Str s -> escape_string b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  write b j;
  Buffer.contents b

let to_channel oc j =
  let b = Buffer.create 4096 in
  write b j;
  Buffer.output_buffer oc b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; incr pos
               | '\\' -> Buffer.add_char b '\\'; incr pos
               | '/' -> Buffer.add_char b '/'; incr pos
               | 'n' -> Buffer.add_char b '\n'; incr pos
               | 'r' -> Buffer.add_char b '\r'; incr pos
               | 't' -> Buffer.add_char b '\t'; incr pos
               | 'b' -> Buffer.add_char b '\b'; incr pos
               | 'f' -> Buffer.add_char b '\012'; incr pos
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       (* ASCII only; anything else round-trips as '?' *)
                       Buffer.add_char b
                         (if code < 0x80 then Char.chr code else '?');
                       pos := !pos + 5)
               | c -> fail (Printf.sprintf "bad escape \\%C" c));
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "malformed number";
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; fields_loop ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; List [] end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; items_loop ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> (
        (* The string spellings of the non-finite floats parse back to
           [Float], inverting [float_literal]; every other string stays
           [Str].  A field whose value is genuinely the text "inf" is
           indistinguishable by design — the encoding trades that corner
           for lossless numeric round-trips. *)
        match parse_string () with
        | "inf" -> Float Float.infinity
        | "-inf" -> Float Float.neg_infinity
        | "nan" -> Float Float.nan
        | s -> Str s)
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* Accessors used by the tests and report code. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_list = function List l -> Some l | _ -> None
