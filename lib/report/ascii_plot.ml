(** Minimal ASCII scatter plots with optional log scales — enough to
    render Figure 19's log-log running-time curves in a terminal. *)

type series = {
  label : string;
  mark : char;
  points : (float * float) list;
}

let series ~label ~mark points = { label; mark; points }

let transform log v = if log then Float.log10 v else v

(** Render the series into a [width] × [height] character grid with simple
    min/max axis annotations.  Points outside a degenerate range collapse
    to the center.  Later series overwrite earlier marks on collisions. *)
let render ?(width = 60) ?(height = 20) ?(logx = true) ?(logy = true) ppf
    (ss : series list) =
  (* Only finite strictly-positive points are plottable: a NaN/±inf
     coordinate would survive the positivity filter, poison the min/max
     folds below into infinite bounds and turn [place]'s scale into
     garbage (int_of_float nan/inf is unspecified). *)
  let plottable (x, y) =
    Float.is_finite x && Float.is_finite y && x > 0.0 && y > 0.0
  in
  let pts = List.concat_map (fun s -> List.filter plottable s.points) ss in
  if pts = [] then Fmt.pf ppf "(empty)@."
  else begin
    let xs = List.map (fun (x, _) -> transform logx x) pts in
    let ys = List.map (fun (_, y) -> transform logy y) pts in
    let fmin = List.fold_left Float.min Float.infinity in
    let fmax = List.fold_left Float.max Float.neg_infinity in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = fmin ys and y1 = fmax ys in
    let place v lo hi extent =
      if hi -. lo < 1e-12 then extent / 2
      else
        let t = (v -. lo) /. (hi -. lo) in
        min (extent - 1) (max 0 (int_of_float (t *. float_of_int (extent - 1))))
    in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        List.iter
          (fun (x, y) ->
            if plottable (x, y) then begin
              let cx = place (transform logx x) x0 x1 width in
              let cy = place (transform logy y) y0 y1 height in
              grid.(height - 1 - cy).(cx) <- s.mark
            end)
          s.points)
      ss;
    let back lo v log = if log then Float.pow 10.0 (lo +. v) else lo +. v in
    Fmt.pf ppf "%8.3g +%s@." (back y1 0.0 logy) (String.make width '-');
    Array.iteri
      (fun row line ->
        if row = height - 1 then
          Fmt.pf ppf "%8.3g |%s@." (back y0 0.0 logy)
            (String.init width (Array.get line))
        else Fmt.pf ppf "         |%s@." (String.init width (Array.get line)))
      grid;
    Fmt.pf ppf "          %-10.5g%*s%10.5g@." (back x0 0.0 logx)
      (width - 20) "" (back x1 0.0 logx);
    List.iter (fun s -> Fmt.pf ppf "    %c = %s@." s.mark s.label) ss
  end
