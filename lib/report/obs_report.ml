(** Rendering for the observability layer: the per-line divergence
    profile as a table, the lane-occupancy timeline as a Figure 18/19
    style ASCII heatmap, and the per-line TIME_SIMD vs TIME_MIMD
    comparison.

    The profile table's totals row is computed from the per-line rows
    and must reproduce the aggregate [Lf_simd.Metrics] counters exactly
    ([check_totals]); the CLI asserts this on every [--profile] run. *)

open Lf_obs

(* ------------------------------------------------------------------ *)
(* Per-line divergence profile                                         *)
(* ------------------------------------------------------------------ *)

let pct f = Printf.sprintf "%5.1f%%" (100.0 *. f)

(** Render the profile as a table, one row per source line (worst
    divergence first), plus a totals row.  [source] supplies the program
    text so each row can show its statement. *)
let profile_table ?source ?(by_line = false) ppf (prof : Profile.t) =
  let src_lines =
    match source with
    | None -> [||]
    | Some text -> Array.of_list (String.split_on_char '\n' text)
  in
  let text_of line =
    if line >= 1 && line <= Array.length src_lines then
      String.trim src_lines.(line - 1)
    else if line = 0 then "(no location)"
    else ""
  in
  let snippet line =
    let t = text_of line in
    if String.length t > 32 then String.sub t 0 29 ^ "..." else t
  in
  let rows = if by_line then Profile.rows_by_line prof else Profile.rows prof in
  let header =
    [ "line"; "source"; "steps"; "busy"; "idle"; "util"; "reduce" ]
  in
  let row (s : Profile.line_stat) =
    [
      string_of_int s.Profile.line;
      snippet s.Profile.line;
      string_of_int s.Profile.steps;
      string_of_int s.Profile.busy;
      string_of_int (Profile.idle s);
      pct (Profile.utilization s);
      string_of_int s.Profile.reductions;
    ]
  in
  let t = Profile.totals prof in
  let total_row =
    [
      "total";
      "";
      string_of_int t.Profile.t_steps;
      string_of_int t.Profile.t_busy;
      string_of_int (t.Profile.t_slots - t.Profile.t_busy);
      pct
        (if t.Profile.t_slots = 0 then 1.0
         else float_of_int t.Profile.t_busy /. float_of_int t.Profile.t_slots);
      string_of_int t.Profile.t_reductions;
    ]
  in
  Table.render ppf (Table.make ~header (List.map row rows @ [ total_row ]))

(** Do the profile's totals reproduce the aggregate metrics exactly?
    Vector steps, busy and total lane-slots, and reductions must all tie
    out — the acceptance check of the observability layer. *)
let check_totals (prof : Profile.t) (m : Lf_simd.Metrics.t) : bool =
  let t = Profile.totals prof in
  t.Profile.t_steps = m.Lf_simd.Metrics.steps
  && t.Profile.t_busy = m.Lf_simd.Metrics.busy_lanes
  && t.Profile.t_slots = m.Lf_simd.Metrics.lane_slots
  && t.Profile.t_reductions = m.Lf_simd.Metrics.reductions

(* ------------------------------------------------------------------ *)
(* Lane-occupancy heatmap (Figures 18/19)                              *)
(* ------------------------------------------------------------------ *)

let shades = " .:-=+*#%@"

let shade_of frac =
  let n = String.length shades in
  let i = int_of_float (frac *. float_of_int n) in
  shades.[min (n - 1) (max 0 i)]

(** Render the occupancy timeline: one row per lane, time left to right,
    each cell shaded by the fraction of that bucket's vector steps in
    which the lane was active — the ASCII analogue of the paper's
    Figures 18/19 utilization graphs. *)
let heatmap ppf (occ : Occupancy.t) =
  let m = Occupancy.matrix occ in
  let p = Array.length m in
  let buckets = if p = 0 then 0 else Array.length m.(0) in
  if buckets = 0 then Fmt.pf ppf "(no vector steps recorded)@."
  else begin
    Fmt.pf ppf "lane occupancy: %d vector steps, %d buckets x %d steps@."
      occ.Occupancy.steps buckets occ.Occupancy.bucket_steps;
    Fmt.pf ppf "      +%s+@." (String.make buckets '-');
    Array.iteri
      (fun lane row ->
        Fmt.pf ppf "%5d |%s|@." (lane + 1)
          (String.init buckets (fun b -> shade_of row.(b))))
      m;
    Fmt.pf ppf "      +%s+@." (String.make buckets '-');
    Fmt.pf ppf "      time ->   shade: '%c' idle ... '%c' always active@."
      shades.[0]
      shades.[String.length shades - 1]
  end

(* ------------------------------------------------------------------ *)
(* MIMD per-line attribution                                           *)
(* ------------------------------------------------------------------ *)

(** Per-line step attribution of a MIMD run
    ([Lf_mimd.Mimd_vm.result.line_steps]): for each source line, the
    slowest and fastest processor and the total across processors.  The
    "max" column is the line's contribution to TIME_MIMD (Eq. 1: the
    machine waits for the slowest processor). *)
let mimd_line_table ?source ppf (line_steps : (int * int array) list) =
  let src_lines =
    match source with
    | None -> [||]
    | Some text -> Array.of_list (String.split_on_char '\n' text)
  in
  let text_of line =
    if line >= 1 && line <= Array.length src_lines then
      let t = String.trim src_lines.(line - 1) in
      if String.length t > 32 then String.sub t 0 29 ^ "..." else t
    else if line = 0 then "(no location)"
    else ""
  in
  let header = [ "line"; "source"; "max"; "min"; "total" ] in
  let rows =
    List.map
      (fun (l, a) ->
        [
          string_of_int l;
          text_of l;
          string_of_int (Array.fold_left max 0 a);
          string_of_int (Array.fold_left min max_int a);
          string_of_int (Array.fold_left ( + ) 0 a);
        ])
      line_steps
  in
  let t_max =
    List.fold_left
      (fun acc (_, a) -> acc + Array.fold_left max 0 a)
      0 line_steps
  in
  let t_sum =
    List.fold_left
      (fun acc (_, a) -> acc + Array.fold_left ( + ) 0 a)
      0 line_steps
  in
  Table.render ppf
    (Table.make ~header
       (rows @ [ [ "total"; ""; string_of_int t_max; ""; string_of_int t_sum ] ]))

(** Does the source text of [line] mention [needle] (case-insensitive)?
    The region classifier behind the TIME_SIMD vs TIME_MIMD per-region
    report: e.g. lines mentioning "force" form NBFORCE's physics region. *)
let line_mentions ~source needle =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let needle = String.lowercase_ascii needle in
  let nl = String.length needle in
  let contains hay =
    let hay = String.lowercase_ascii hay in
    let n = String.length hay in
    let rec go i = i + nl <= n && (String.sub hay i nl = needle || go (i + 1)) in
    nl > 0 && go 0
  in
  fun line ->
    line >= 1 && line <= Array.length lines && contains lines.(line - 1)

(* ------------------------------------------------------------------ *)
(* NBFORCE on the MIMD model, with per-line attribution                *)
(* ------------------------------------------------------------------ *)

module Src = Lf_kernels.Nbforce_src

(** Run the original Figure 13 NBFORCE on the MIMD model: [p] processors,
    block decomposition of the atoms, each with its own name space holding
    its slice of pcnt/partners/f (owner-computes).  Local atom [at1] on
    processor [proc] is global atom [lo + at1], so the force function
    translates its first argument; partner ids are global already.
    Per-line profiling is on, giving the per-region TIME_MIMD.  Returns
    the MIMD result and the gathered global force array. *)
let run_nbforce_mimd (mol, pl) ~p =
  let open Lf_lang in
  let n, maxp = Src.params pl in
  let bounds = Array.init (p + 1) (fun i -> i * n / p) in
  let prog = Parser.program_of_string Src.source in
  let res =
    Lf_mimd.Mimd_vm.run ~p ~profile:true
      ~setup:(fun proc ctx ->
        let lo = bounds.(proc) and hi = bounds.(proc + 1) in
        let nloc = hi - lo in
        Interp.register_func ctx "force" (function
          | Values.VInt a :: rest ->
              Src.force_fn mol (Values.VInt (lo + a) :: rest)
          | args -> Src.force_fn mol args);
        Env.set ctx.Interp.env "n" (Values.VInt nloc);
        Env.set ctx.Interp.env "maxp" (Values.VInt maxp);
        let dim = max 1 nloc in
        let pcnt = Nd.create [| dim |] 0 in
        let partners = Nd.create [| dim; maxp |] 0 in
        for i = 0 to nloc - 1 do
          let ps = pl.Lf_md.Pairlist.partners.(lo + i) in
          Nd.set pcnt [| i + 1 |] (Array.length ps);
          Array.iteri
            (fun k j -> Nd.set partners [| i + 1; k + 1 |] (j + 1))
            ps
        done;
        Env.set ctx.Interp.env "pcnt" (Values.VArr (Values.AInt pcnt));
        Env.set ctx.Interp.env "partners" (Values.VArr (Values.AInt partners));
        Env.set ctx.Interp.env "f"
          (Values.VArr (Values.AReal (Nd.create [| dim |] 0.0))))
      prog
  in
  (* gather the per-processor force slices back into one global array *)
  let f = Array.make n 0.0 in
  Array.iteri
    (fun proc ctx ->
      let lo = bounds.(proc) and hi = bounds.(proc + 1) in
      match Env.find ctx.Interp.env "f" with
      | Values.VArr (Values.AReal a) ->
          for i = lo to hi - 1 do
            f.(i) <- Nd.get a [| i - lo + 1 |]
          done
      | _ -> Errors.runtime_error "f is not a REAL array")
    res.Lf_mimd.Mimd_vm.contexts;
  (res, f)

(** TIME_SIMD vs TIME_MIMD per source region.  Both programs are split
    into the force-computation region (lines mentioning "force") and the
    control/bookkeeping rest; the line numberings differ between the
    flattened SIMD program and the original MIMD source, so the split is
    computed per side and compared at region granularity.  A region's
    MIMD time is the max over processors of the steps they spent in it
    (Eq. 1); its SIMD time is the vector steps issued from it (Eq. 2). *)
let region_table ppf ~simd_src ~(prof : Profile.t)
    ~(metrics : Lf_simd.Metrics.t) ~(mimd : Lf_mimd.Mimd_vm.result) =
  let simd_force = line_mentions ~source:simd_src "force" in
  let mimd_force = line_mentions ~source:Src.source "force" in
  let simd_steps pred =
    List.fold_left
      (fun acc (s : Profile.line_stat) ->
        if pred s.Profile.line then acc + s.Profile.steps else acc)
      0
      (Profile.rows_by_line prof)
  in
  let mimd_time pred =
    let p = Array.length mimd.Lf_mimd.Mimd_vm.steps in
    let per_proc = Array.make p 0 in
    List.iter
      (fun (l, a) ->
        if pred l then
          Array.iteri (fun i s -> per_proc.(i) <- per_proc.(i) + s) a)
      mimd.Lf_mimd.Mimd_vm.line_steps;
    Array.fold_left max 0 per_proc
  in
  let row name sp mp = [ name; string_of_int sp; string_of_int mp ] in
  Table.render ppf
    (Table.make
       ~header:[ "region"; "TIME_SIMD (Eq. 2)"; "TIME_MIMD (Eq. 1)" ]
       [
         row "force computation" (simd_steps simd_force)
           (mimd_time mimd_force);
         row "control & bookkeeping"
           (simd_steps (fun l -> not (simd_force l)))
           (mimd_time (fun l -> not (mimd_force l)));
         row "total" metrics.Lf_simd.Metrics.steps
           mimd.Lf_mimd.Mimd_vm.time;
       ])
