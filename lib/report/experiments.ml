(** The experiment drivers: one per table/figure of the paper (the E1–E10
    index of DESIGN.md).  Each driver prints the regenerated artifact,
    side by side with the paper's published numbers where available. *)

open Lf_lang

let section ppf title =
  Fmt.pf ppf "@.=== %s ===@.@." title

let opt_f = function Some v -> Printf.sprintf "%.2f" v | None -> "-"

(* ------------------------------------------------------------------ *)
(* E1 / E2: execution traces (Figures 4 and 6)                         *)
(* ------------------------------------------------------------------ *)

let fig4 ppf =
  section ppf "E1 (Figure 4): MIMD execution trace of EXAMPLE";
  let t = Lf_kernels.Example_kernel.paper_mimd () in
  Fmt.pf ppf "%a@." Lf_kernels.Example_kernel.pp t;
  Fmt.pf ppf "paper: 8 steps; measured: %d steps@." t.Lf_kernels.Example_kernel.time

let fig6 ppf =
  section ppf "E2 (Figure 6): unflattened SIMD trace of EXAMPLE";
  let t = Lf_kernels.Example_kernel.paper_simd () in
  Fmt.pf ppf "%a@." Lf_kernels.Example_kernel.pp t;
  Fmt.pf ppf "paper: 12 steps; measured: %d steps@."
    t.Lf_kernels.Example_kernel.time;
  let f = Lf_kernels.Example_kernel.paper_flattened () in
  Fmt.pf ppf "@.flattened SIMD recovers the MIMD schedule:@.%a@."
    Lf_kernels.Example_kernel.pp f

(* ------------------------------------------------------------------ *)
(* E3: the time-bound equations                                        *)
(* ------------------------------------------------------------------ *)

let bounds ppf =
  section ppf "E3 (Equations 1, 2, 1', 2'): time bounds";
  let l = Lf_kernels.Example_kernel.paper_l in
  let trips = Lf_core.Bounds.distribute ~p:2 `Block l in
  Fmt.pf ppf "EXAMPLE (K=8, L=4,1,2,1,1,3,1,3, P=2, block):@.";
  Fmt.pf ppf "  TIME_MIMD (Eq. 1)  = %d   (paper: 8)@."
    (Lf_core.Bounds.time_mimd trips);
  Fmt.pf ppf "  TIME_SIMD (Eq. 2)  = %d   (paper: 12)@."
    (Lf_core.Bounds.time_simd trips);
  Fmt.pf ppf "  flattened = MIMD bound = %d@."
    (Lf_core.Bounds.flattened_time trips);
  (* NBFORCE bound sanity on a small workload *)
  let mol = Lf_md.Workload.sod ~n:512 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  let m = Lf_simd.Machine.decmpp ~p:64 in
  let flat = Lf_kernels.Nbforce.run ~compute_forces:false Flat m mol pl ~nmax:512 in
  Fmt.pf ppf
    "@.NBFORCE (N=512, 8 A, Gran=64): flattened kernel steps = %d, Eq. 1' \
     bound = %d (equal: %b)@."
    flat.Lf_kernels.Nbforce.force_steps
    (Lf_kernels.Nbforce.flat_steps_bound m pl)
    (flat.Lf_kernels.Nbforce.force_steps
    = Lf_kernels.Nbforce.flat_steps_bound m pl)

(* ------------------------------------------------------------------ *)
(* E4: the program versions (Figures 1-12)                             *)
(* ------------------------------------------------------------------ *)

let example_source =
  {|
PROGRAM example
  INTEGER k, x(8,4), l(8)
  DO i = 1, k
    DO j = 1, l(i)
      x(i,j) = i * j
    ENDDO
  ENDDO
END
|}

let example_nest_fragment =
  "DO i = 1, k\n  DO j = 1, l(i)\n    x(i,j) = i * j\n  ENDDO\nENDDO"

let transforms ppf =
  section ppf "E4 (Figures 1-12): program versions derived by the compiler";
  let p = Parser.program_of_string example_source in
  Fmt.pf ppf "--- P1: original F77 (Figure 1) ---@.%s@."
    (Pretty.program_to_string p);
  let fresh = Lf_core.Fresh.of_program p in
  let body = p.Ast.p_body in
  let loop = List.hd body in
  (match Lf_core.Normalize.of_nest ~fresh loop with
  | Error e -> Fmt.pf ppf "normalization failed: %s@." e
  | Ok nest ->
      let guarded, _, _ = Lf_core.Flatten.with_guards ~fresh nest in
      Fmt.pf ppf "--- GENNEST with guard flags (Figure 9) ---@.%s@.@."
        (Pretty.block_to_string guarded);
      List.iter
        (fun (variant, fig) ->
          let fresh = Lf_core.Fresh.of_program p in
          match
            Lf_core.Flatten.flatten ~fresh ~assume_inner_nonempty:true variant
              nest
          with
          | Ok b ->
              Fmt.pf ppf "--- flattened, %s (%s) ---@.%s@.@."
                (Lf_core.Flatten.variant_to_string variant)
                fig
                (Pretty.block_to_string b)
          | Error r ->
              Fmt.pf ppf "%a@." Lf_core.Flatten.pp_rejection r)
        [
          (Lf_core.Flatten.General, "Figure 10");
          (Lf_core.Flatten.Optimized, "Figure 11");
          (Lf_core.Flatten.DoneTest, "Figure 12");
        ]);
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Block; p = Ast.EVar "p" };
    }
  in
  (match Lf_core.Pipeline.simdize_program_naive ~opts p with
  | Ok o ->
      Fmt.pf ppf "--- naive SIMD version (Figure 5) ---@.%s@."
        (Pretty.program_to_string o.Lf_core.Pipeline.program)
  | Error e -> Fmt.pf ppf "naive SIMDization failed: %s@." e);
  (match Lf_core.Pipeline.flatten_program ~opts p with
  | Ok o ->
      Fmt.pf ppf "--- flattened SIMD version (Figure 7) ---@.%s@."
        (Pretty.program_to_string o.Lf_core.Pipeline.program)
  | Error e -> Fmt.pf ppf "flattened SIMDization failed: %s@." e);
  (* the MIMD path of Figure 3 needs the Fortran D mapping of Figure 2 *)
  let f77d =
    Parser.program_of_string
      {|
PROGRAM example
  INTEGER k, lmax, x(k, lmax), l(k)
  DECOMPOSITION xd(k, lmax)
  DECOMPOSITION ld(k)
  ALIGN x WITH xd
  ALIGN l WITH ld
  DISTRIBUTE xd(BLOCK, *)
  DISTRIBUTE ld(BLOCK)
  DO i = 1, k
    DO j = 1, l(i)
      x(i, j) = i * j
    ENDDO
  ENDDO
END
|}
  in
  Fmt.pf ppf "--- P2: Fortran D version (Figure 2) ---@.%s@."
    (Pretty.program_to_string f77d);
  let fresh_m = Lf_core.Fresh.of_program f77d in
  match Lf_core.Mimdize.mimdize ~fresh:fresh_m ~p:(Ast.EInt 2) f77d with
  | Ok r ->
      Fmt.pf ppf "--- P3: per-processor MIMD version (Figure 3) ---@.%s@."
        (Pretty.program_to_string r.Lf_core.Mimdize.program)
  | Error e -> Fmt.pf ppf "MIMD derivation failed: %s@." e

(* ------------------------------------------------------------------ *)
(* E5: Figure 18                                                       *)
(* ------------------------------------------------------------------ *)

let fig18 ppf =
  section ppf
    "E5 (Figure 18): nonbonded interaction partners per atom, synthetic SOD";
  let mol = Lf_md.Workload.sod () in
  let stats =
    List.map
      (fun c -> Lf_md.Stats.of_pairlist (Lf_md.Workload.pairlist mol ~cutoff:c))
      Lf_md.Workload.fig18_cutoffs
  in
  let paper_ratio c =
    List.assoc_opt c Paper_data.pcnt_ratios
    |> Option.fold ~none:"-" ~some:(Printf.sprintf "%.3f")
  in
  let paper_max c =
    List.assoc_opt c Paper_data.pcnt_max
    |> Option.fold ~none:"-" ~some:string_of_int
  in
  Table.make
    ~header:
      [ "cutoff (A)"; "pCnt_max"; "paper max"; "pCnt_avg"; "max/avg";
        "paper max/avg" ]
    (List.map
       (fun (s : Lf_md.Stats.t) ->
         [
           Printf.sprintf "%.0f" s.Lf_md.Stats.cutoff;
           string_of_int s.Lf_md.Stats.pcnt_max;
           paper_max s.Lf_md.Stats.cutoff;
           Printf.sprintf "%.2f" s.Lf_md.Stats.pcnt_avg;
           Printf.sprintf "%.3f" s.Lf_md.Stats.ratio;
           paper_ratio s.Lf_md.Stats.cutoff;
         ])
       stats)
  |> Table.render ppf;
  Fmt.pf ppf
    "Both values increase cubicly with the cutoff radius (paper §5.4); the \
     max/avg ratio bounds the flattening speedup.@.";
  Fmt.pf ppf "@.pairs per atom vs cutoff (x = maximum, o = average):@.";
  Ascii_plot.render ~logx:false ~logy:false ppf
    [
      Ascii_plot.series ~label:"pCnt_max" ~mark:'x'
        (List.map
           (fun (st : Lf_md.Stats.t) ->
             (st.Lf_md.Stats.cutoff, float_of_int st.Lf_md.Stats.pcnt_max))
           stats);
      Ascii_plot.series ~label:"pCnt_avg" ~mark:'o'
        (List.map
           (fun (st : Lf_md.Stats.t) ->
             (st.Lf_md.Stats.cutoff, st.Lf_md.Stats.pcnt_avg))
           stats);
    ]

(* ------------------------------------------------------------------ *)
(* Machine rows of Tables 1 and 2                                      *)
(* ------------------------------------------------------------------ *)

let cm2_rows = [ 1024; 2048; 4096; 8192 ]
let decmpp_rows = [ 1024; 2048; 4096; 8192 ]

let machines () =
  List.map (fun p -> Lf_simd.Machine.cm2 ~p) cm2_rows
  @ List.map (fun p -> Lf_simd.Machine.decmpp ~p) decmpp_rows

let nmax = 8192

let run_cell ?(compute_forces = false) variant m mol pl =
  Lf_kernels.Nbforce.run ~compute_forces variant m mol pl ~nmax

(* ------------------------------------------------------------------ *)
(* E6: Table 2                                                         *)
(* ------------------------------------------------------------------ *)

let table2 ppf =
  section ppf "E6 (Table 2): force-routine calls, flattened vs unflattened";
  let mol = Lf_md.Workload.sod () in
  let header =
    "Gran"
    :: List.concat_map
         (fun c ->
           [
             Printf.sprintf "%.0fA Lu" c;
             "Lf";
             "Lu/Lf";
             "paper Lu/Lf";
           ])
         (Array.to_list Paper_data.cutoffs)
  in
  let grans = [ 128; 256; 512; 1024; 2048; 4096; 8192 ] in
  let rows =
    List.map
      (fun gran ->
        (* Gran determines the lane count; CM-2 for Gran = P/8 < 1024,
           either machine beyond — the counts depend only on Gran and
           layout; we use the cut-and-stack layout rows like the paper's
           DECmpp column and note layout effects in the ablation bench *)
        let m =
          if gran <= 512 then Lf_simd.Machine.cm2 ~p:(gran * 8)
          else Lf_simd.Machine.decmpp ~p:gran
        in
        string_of_int gran
        :: List.concat_map
             (fun c ->
               let pl = Lf_md.Workload.pairlist mol ~cutoff:c in
               let lu = run_cell Lf_kernels.Nbforce.L1 m mol pl in
               let lf = run_cell Lf_kernels.Nbforce.Flat m mol pl in
               let ratio =
                 float_of_int lu.Lf_kernels.Nbforce.table2_count
                 /. float_of_int (max 1 lf.Lf_kernels.Nbforce.table2_count)
               in
               let paper =
                 List.find_opt (fun r -> r.Paper_data.gran2 = gran)
                   Paper_data.table2
                 |> Option.map (fun r ->
                        let i =
                          match c with
                          | 4.0 -> 0 | 8.0 -> 1 | 12.0 -> 2 | _ -> 3
                        in
                        r.Paper_data.counts.(i))
               in
               let paper_ratio =
                 match paper with
                 | Some (Some lu, Some lf) ->
                     Printf.sprintf "%.3f" (float_of_int lu /. float_of_int lf)
                 | _ -> "-"
               in
               [
                 string_of_int lu.Lf_kernels.Nbforce.table2_count;
                 string_of_int lf.Lf_kernels.Nbforce.table2_count;
                 Printf.sprintf "%.3f" ratio;
                 paper_ratio;
               ])
             (Array.to_list Paper_data.cutoffs))
      grans
  in
  Table.render ppf (Table.make ~header rows);
  Fmt.pf ppf
    "Lu = maxPCnt x Lrs; Lf = flattened loop iterations (Eq. 1').  The \
     Lu/Lf ratio grows as Gran shrinks and is bounded by pCnt_max/pCnt_avg \
     (paper §5.5); at Gran = 8192 every lane holds at most one atom and \
     the ratio is 1.@."

(* ------------------------------------------------------------------ *)
(* E7: Table 1                                                         *)
(* ------------------------------------------------------------------ *)

let table1 ppf =
  section ppf "E7 (Table 1): modeled running times (seconds)";
  let mol = Lf_md.Workload.sod () in
  let header =
    "P/Gran (machine)"
    :: List.concat_map
         (fun c ->
           [
             Printf.sprintf "%.0fA Lu1" c; "Lu2"; "Lf";
             "paper Lu1"; "Lu2"; "Lf";
           ])
         [ 4.0; 8.0 ]
  in
  let row_of m paper_times =
    Fmt.str "%d/%d (%s)" m.Lf_simd.Machine.processors m.Lf_simd.Machine.gran
      m.Lf_simd.Machine.name
    :: List.concat
         (List.mapi
            (fun i c ->
              let pl = Lf_md.Workload.pairlist mol ~cutoff:c in
              let t v =
                (run_cell v m mol pl).Lf_kernels.Nbforce.time
              in
              let p1, p2, p3 =
                match paper_times with
                | Some (times : (float option * float option * float option) array) -> times.(i)
                | None -> (None, None, None)
              in
              [
                Printf.sprintf "%.2f" (t Lf_kernels.Nbforce.L1);
                Printf.sprintf "%.2f" (t Lf_kernels.Nbforce.L2);
                Printf.sprintf "%.2f" (t Lf_kernels.Nbforce.Flat);
                opt_f p1; opt_f p2; opt_f p3;
              ])
            [ 4.0; 8.0 ])
  in
  let rows =
    List.map
      (fun m ->
        let paper =
          List.find_opt
            (fun r ->
              r.Paper_data.p = m.Lf_simd.Machine.processors
              && r.Paper_data.gran = m.Lf_simd.Machine.gran)
            Paper_data.table1
        in
        row_of m (Option.map (fun r -> r.Paper_data.times) paper))
      (machines ())
  in
  Table.render ppf (Table.make ~header rows);
  (* the 12 and 16 A columns, separately to keep lines readable *)
  let header2 =
    "P/Gran (machine)"
    :: List.concat_map
         (fun c ->
           [ Printf.sprintf "%.0fA Lu1" c; "Lu2"; "Lf";
             "paper Lu1"; "Lu2"; "Lf" ])
         [ 12.0; 16.0 ]
  in
  let rows2 =
    List.map
      (fun m ->
        let paper =
          List.find_opt
            (fun r ->
              r.Paper_data.p = m.Lf_simd.Machine.processors
              && r.Paper_data.gran = m.Lf_simd.Machine.gran)
            Paper_data.table1
        in
        let paper_times = Option.map (fun r -> r.Paper_data.times) paper in
        Fmt.str "%d/%d (%s)" m.Lf_simd.Machine.processors
          m.Lf_simd.Machine.gran m.Lf_simd.Machine.name
        :: List.concat
             (List.mapi
                (fun i c ->
                  let pl = Lf_md.Workload.pairlist mol ~cutoff:c in
                  let t v = (run_cell v m mol pl).Lf_kernels.Nbforce.time in
                  let p1, p2, p3 =
                    match paper_times with
                    | Some times -> times.(i + 2)
                    | None -> (None, None, None)
                  in
                  [
                    Printf.sprintf "%.2f" (t Lf_kernels.Nbforce.L1);
                    Printf.sprintf "%.2f" (t Lf_kernels.Nbforce.L2);
                    Printf.sprintf "%.2f" (t Lf_kernels.Nbforce.Flat);
                    opt_f p1; opt_f p2; opt_f p3;
                  ])
                [ 12.0; 16.0 ])
      )
      (machines ())
  in
  Table.render ppf (Table.make ~header:header2 rows2);
  Fmt.pf ppf
    "Shape checks: Lf < Lu2 < Lu1 on the CM-2; Lf fastest everywhere except \
     Gran=8192 where all three converge (paper §5.6); halving Gran roughly \
     doubles unflattened time.@."

(* ------------------------------------------------------------------ *)
(* E8: Figure 19 (series form of Table 1)                              *)
(* ------------------------------------------------------------------ *)

let fig19 ppf =
  section ppf
    "E8 (Figure 19): running time vs processors (log-log; dashes in the \
     paper = Lu1 '1', dots = Lu2 '2', solid = Lf 'f')";
  let mol = Lf_md.Workload.sod () in
  List.iter
    (fun (label, ms) ->
      Fmt.pf ppf "%s:@." label;
      (* the raw series, then the plot the paper draws *)
      let series variant cutoff =
        let pl = Lf_md.Workload.pairlist mol ~cutoff in
        List.map
          (fun m ->
            let r = run_cell variant m mol pl in
            ( float_of_int m.Lf_simd.Machine.processors,
              r.Lf_kernels.Nbforce.time ))
          ms
      in
      List.iter
        (fun cutoff ->
          Fmt.pf ppf "  cutoff %2.0f A:@." cutoff;
          List.iter
            (fun variant ->
              Fmt.pf ppf "    %-4s: %s@."
                (Lf_kernels.Nbforce.variant_to_string variant)
                (String.concat " "
                   (List.map
                      (fun (x, y) -> Fmt.str "(%.0f, %.3f)" x y)
                      (series variant cutoff))))
            [ Lf_kernels.Nbforce.L1; Lf_kernels.Nbforce.L2;
              Lf_kernels.Nbforce.Flat ])
        [ 4.0; 8.0; 12.0; 16.0 ];
      let plot_series =
        List.concat_map
          (fun cutoff ->
            [
              Ascii_plot.series
                ~label:(Fmt.str "Lu1 at %.0f A" cutoff)
                ~mark:'1' (series Lf_kernels.Nbforce.L1 cutoff);
              Ascii_plot.series
                ~label:(Fmt.str "Lu2 at %.0f A" cutoff)
                ~mark:'2' (series Lf_kernels.Nbforce.L2 cutoff);
              Ascii_plot.series
                ~label:(Fmt.str "Lf at %.0f A" cutoff)
                ~mark:'f'
                (series Lf_kernels.Nbforce.Flat cutoff);
            ])
          [ 4.0; 16.0 ]
      in
      Fmt.pf ppf "@.  seconds vs processors (log-log), cutoffs 4 and 16 A:@.";
      Ascii_plot.render ppf plot_series)
    [
      ("CM-2", List.map (fun p -> Lf_simd.Machine.cm2 ~p) cm2_rows);
      ("DECmpp 12000", List.map (fun p -> Lf_simd.Machine.decmpp ~p) decmpp_rows);
    ]

(* ------------------------------------------------------------------ *)
(* E9: the Sparc baseline                                              *)
(* ------------------------------------------------------------------ *)

let sparc ppf =
  section ppf "E9 (§5.5): Sparc 2 sequential baseline";
  let mol = Lf_md.Workload.sod () in
  List.iter
    (fun (c, paper) ->
      let pl = Lf_md.Workload.pairlist mol ~cutoff:c in
      let r =
        Lf_kernels.Nbforce.run_sequential Lf_simd.Machine.sparc mol pl
      in
      Fmt.pf ppf
        "cutoff %2.0f A: %d pairs, modeled %.2f s (paper: %.2f s)@." c
        r.Lf_kernels.Nbforce.useful_pairs r.Lf_kernels.Nbforce.time paper)
    Paper_data.sparc_times

(* ------------------------------------------------------------------ *)
(* E10: the Nmax-doubling observation (§5.3)                           *)
(* ------------------------------------------------------------------ *)

let nmax_effect ppf =
  section ppf
    "E10 (§5.3): effect of doubling Nmax (compiled-for maximum) at fixed N";
  let mol = Lf_md.Workload.sod () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  List.iter
    (fun (label, m) ->
      Fmt.pf ppf "%s:@." label;
      List.iter
        (fun variant ->
          let t nm =
            (Lf_kernels.Nbforce.run ~compute_forces:false variant m mol pl
               ~nmax:nm)
              .Lf_kernels.Nbforce.time
          in
          let t1 = t 8192 and t2 = t 16384 in
          Fmt.pf ppf "  %-4s: Nmax=8192 %.3f s, Nmax=16384 %.3f s (x%.2f)@."
            (Lf_kernels.Nbforce.variant_to_string variant)
            t1 t2 (t2 /. t1))
        [ Lf_kernels.Nbforce.L1; Lf_kernels.Nbforce.L2;
          Lf_kernels.Nbforce.Flat ])
    [
      ("CM-2 (P=8192)", Lf_simd.Machine.cm2 ~p:8192);
      ("DECmpp (P=1024)", Lf_simd.Machine.decmpp ~p:1024);
    ];
  Fmt.pf ppf
    "Paper: doubling Nmax doubles Lu2 on both machines and Lu1 on the \
     CM-2; DECmpp Lu1 grows ~5%%; Lf is unaffected — \"a nice side effect \
     of loop flattening\".@."

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let layered ppf =
  section ppf
    "E11 (§5.3 implementation experience): the Figure 16/17 kernels on \
     the SIMD VM (mini-Fortran, memory layers, PLURAL arrays)";
  let mol = Lf_md.Workload.sod ~n:256 ~seed:31 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  let p = 16 and nmax = 512 in
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let lrs = 1 + ((n - 1) / p) and maxlrs = 1 + ((nmax - 1) / p) in
  Fmt.pf ppf "N=%d atoms on %d lanes: Lrs=%d, maxLrs=%d, maxPCnt=%d@.@." n p
    lrs maxlrs
    (Lf_md.Pairlist.max_pcnt pl);
  (* the compiled engine is a drop-in: identical forces and metrics,
     less wall-clock per run *)
  let flat =
    Lf_kernels.Layered_src.run_kernel ~engine:`Compiled
      (Lf_kernels.Layered_src.flattened ())
      mol pl ~p ~nmax
  in
  let l1 =
    Lf_kernels.Layered_src.run_kernel ~sweep:`Lrs ~engine:`Compiled
      (Lf_kernels.Layered_src.unflattened ())
      mol pl ~p ~nmax
  in
  let l2 =
    Lf_kernels.Layered_src.run_kernel ~sweep:`MaxLrs ~engine:`Compiled
      (Lf_kernels.Layered_src.unflattened ())
      mol pl ~p ~nmax
  in
  Fmt.pf ppf "  Lu1 (Fig. 17, 1:Lrs)   : %6d onef vector calls@."
    l1.Lf_kernels.Layered_src.onef_calls;
  Fmt.pf ppf "  Lu2 (Fig. 17, all)     : %6d onef vector calls@."
    l2.Lf_kernels.Layered_src.onef_calls;
  Fmt.pf ppf "  Lf  (Fig. 16, indirect): %6d onef vector calls@."
    flat.Lf_kernels.Layered_src.onef_calls;
  Fmt.pf ppf
    "  Lu1/Lf = %.2f — the kernels the paper actually ran, reproduced as \
     executable mini-Fortran on the lockstep VM.@."
    (float_of_int l1.Lf_kernels.Layered_src.onef_calls
    /. float_of_int flat.Lf_kernels.Layered_src.onef_calls)

let ablation_variants ppf =
  section ppf "Ablation: flattening variants (Figs. 10/11/12) step counts";
  let l = Lf_kernels.Example_kernel.paper_l in
  let setup k_val l_arr ctx =
    Env.set ctx.Interp.env "k" (Values.VInt k_val);
    Env.set ctx.Interp.env "l"
      (Values.VArr (Values.AInt (Nd.of_array l_arr)));
    Env.set ctx.Interp.env "x"
      (Values.VArr
         (Values.AInt
            (Nd.create [| Array.length l_arr; 1 + Array.fold_left max 0 l_arr |] 0)))
  in
  let p = Parser.program_of_string example_source in
  let body = p.Ast.p_body in
  let loop = List.hd body in
  let fresh0 = Lf_core.Fresh.of_program p in
  match Lf_core.Normalize.of_nest ~fresh:fresh0 loop with
  | Error e -> Fmt.pf ppf "error: %s@." e
  | Ok nest ->
      List.iter
        (fun variant ->
          let fresh = Lf_core.Fresh.of_program p in
          match
            Lf_core.Flatten.flatten ~fresh ~assume_inner_nonempty:true variant
              nest
          with
          | Error r -> Fmt.pf ppf "%a@." Lf_core.Flatten.pp_rejection r
          | Ok b ->
              let ctx = Interp.run_block ~setup:(setup 8 l) b in
              Fmt.pf ppf "  %-22s: %4d interpreter steps@."
                (Lf_core.Flatten.variant_to_string variant)
                ctx.Interp.steps)
        [ Lf_core.Flatten.General; Lf_core.Flatten.Optimized;
          Lf_core.Flatten.DoneTest ];
      let ctx0 = Interp.run_block ~setup:(setup 8 l) body in
      Fmt.pf ppf "  %-22s: %4d interpreter steps@." "original nest"
        ctx0.Interp.steps

let ablation_layout ppf =
  section ppf
    "Ablation: atom-to-lane assignment under Lf (Fig. 16 indirection vs \
     physical layout)";
  let mol = Lf_md.Workload.sod () in
  List.iter
    (fun cutoff ->
      let pl = Lf_md.Workload.pairlist mol ~cutoff in
      List.iter
        (fun gran ->
          let mk layout =
            { (Lf_simd.Machine.decmpp ~p:gran) with Lf_simd.Machine.layout }
          in
          let steps ~indirect layout =
            (Lf_kernels.Nbforce.run_flat ~compute_forces:false ~indirect
               (mk layout) mol pl ~nmax)
              .Lf_kernels.Nbforce.force_steps
          in
          let ind = steps ~indirect:true Lf_simd.Machine.Cut_and_stack in
          let cs = steps ~indirect:false Lf_simd.Machine.Cut_and_stack in
          let bw = steps ~indirect:false Lf_simd.Machine.Blockwise in
          Fmt.pf ppf
            "  cutoff %2.0f A, Gran %5d: indirect %6d  cut-and-stack %6d  \
             blockwise %6d (blockwise penalty x%.2f)@."
            cutoff gran ind cs bw
            (float_of_int bw /. float_of_int ind))
        [ 512; 2048 ])
    [ 4.0; 16.0 ];
  Fmt.pf ppf
    "Blockwise lanes inherit the owner-side (j > i) storage trend: the \
     lowest-index block keeps nearly all its pairs.  Figure 16's indirect \
     addressing sidesteps the physical layout entirely (§7).@." 

let ablation_workloads ppf =
  section ppf "Ablation: workload shape (does flattening always pay?)";
  List.iter
    (fun ((mol : Lf_md.Molecule.t), box) ->
      let pl =
        match box with
        | Some box ->
            (* periodic boundaries: genuinely uniform density *)
            Lf_md.Pairlist.ensure_nonempty mol
              (Lf_md.Pairlist.brute_force_periodic mol ~box ~cutoff:8.0)
        | None -> Lf_md.Workload.pairlist mol ~cutoff:8.0
      in
      let m = Lf_simd.Machine.decmpp ~p:256 in
      let lu =
        Lf_kernels.Nbforce.run ~compute_forces:false L1 m mol pl ~nmax:4096
      in
      let lf =
        Lf_kernels.Nbforce.run ~compute_forces:false Flat m mol pl ~nmax:4096
      in
      let s = Lf_md.Stats.of_pairlist pl in
      Fmt.pf ppf
        "  %-28s: max/avg %5.2f  Lu %6d  Lf %6d  speedup x%.2f@."
        mol.Lf_md.Molecule.name s.Lf_md.Stats.ratio
        lu.Lf_kernels.Nbforce.force_steps lf.Lf_kernels.Nbforce.force_steps
        (float_of_int lu.Lf_kernels.Nbforce.force_steps
        /. float_of_int (max 1 lf.Lf_kernels.Nbforce.force_steps)))
    [
      (Lf_md.Workload.sod ~n:2048 (), None);
      ( Lf_md.Molecule.uniform_gas ~n:2048 ~density:0.05 (),
        Some (Float.cbrt (2048.0 /. 0.05)) );
      (Lf_md.Molecule.droplet ~n:2048 (), None);
    ];
  Fmt.pf ppf
    "The flattening profit tracks the workload skew: the periodic uniform \
     gas (Poisson fluctuations only) gains least, the two-phase droplet \
     most, and each speedup stays below its max/avg bound.@."

let ablation_decomp ppf =
  section ppf
    "Ablation: decomposition quality under Lf (Eq. 1'' is \"only limited \
     by the quality of our workload distribution\")";
  let mol = Lf_md.Workload.sod () in
  List.iter
    (fun cutoff ->
      let pl = Lf_md.Workload.pairlist mol ~cutoff in
      let n = Array.length pl.Lf_md.Pairlist.pcnt in
      List.iter
        (fun gran ->
          let m = Lf_simd.Machine.decmpp ~p:gran in
          let steps partition =
            (Lf_kernels.Nbforce.run_flat ~compute_forces:false ~partition m
               mol pl ~nmax)
              .Lf_kernels.Nbforce.force_steps
          in
          let ideal =
            (Lf_md.Pairlist.n_pairs pl + gran - 1) / gran
          in
          let block = steps (Lf_md.Decomp.block ~gran ~n) in
          let cyclic = steps (Lf_md.Decomp.cyclic ~gran ~n) in
          let balanced = steps (Lf_md.Decomp.balanced ~gran pl) in
          Fmt.pf ppf
            "  cutoff %2.0f A, Gran %5d: block %6d  cyclic %6d  balanced \
             %6d  (ideal %6d)@."
            cutoff gran block cyclic balanced ideal)
        [ 256; 1024 ])
    [ 4.0; 16.0 ];
  Fmt.pf ppf
    "Balanced (greedy LPT over pCnt) closes most of the gap between the \
     cyclic layout and the perfect-balance floor; block suffers the \
     owner-side storage trend.@."

let ablation_coalesce ppf =
  section ppf
    "Ablation: loop flattening vs loop coalescing (the §7 comparison)";
  (* rectangular nest: both transformations apply and produce the same
     iteration count *)
  let rect =
    Parser.block_of_string
      "DO i = 1, n\n  DO j = 1, m\n    x(i, j) = i * 10 + j\n  ENDDO\nENDDO"
  in
  let fresh = Lf_core.Fresh.of_block rect in
  (match Lf_core.Coalesce.coalesce ~fresh (List.hd rect) with
  | Ok b ->
      Fmt.pf ppf "rectangular nest, coalesced (single N*M space):@.%s@.@."
        (Pretty.block_to_string b)
  | Error r -> Fmt.pf ppf "%a@." Lf_core.Coalesce.pp_rejection r);
  (* the paper's EXAMPLE: coalescing is inapplicable, flattening is not *)
  let ex = Parser.block_of_string example_nest_fragment in
  let fresh2 = Lf_core.Fresh.of_block ex in
  (match Lf_core.Coalesce.coalesce ~fresh:fresh2 (List.hd ex) with
  | Error r ->
      Fmt.pf ppf "EXAMPLE: %a@." Lf_core.Coalesce.pp_rejection r
  | Ok _ -> Fmt.pf ppf "EXAMPLE: unexpectedly coalesced?!@.");
  let fresh3 = Lf_core.Fresh.of_block ex in
  (match Lf_core.Normalize.of_nest ~fresh:fresh3 (List.hd ex) with
  | Ok nest ->
      let _, v =
        Lf_core.Flatten.flatten_auto ~fresh:fresh3
          ~assume_inner_nonempty:true nest
      in
      Fmt.pf ppf "EXAMPLE: flattening applies (%s)@."
        (Lf_core.Flatten.variant_to_string v)
  | Error e -> Fmt.pf ppf "EXAMPLE: %s@." e);
  Fmt.pf ppf
    "Coalescing needs a rectangular iteration space and rewrites which \
     iterations a processor gets; flattening handles varying inner bounds \
     and only changes when iterations run (paper §7).@."

(* ------------------------------------------------------------------ *)
(* Observability: per-line divergence + lane occupancy (Figs 18/19)    *)
(* ------------------------------------------------------------------ *)

let obs_nbforce ppf =
  section ppf
    "Observability: NBFORCE per-line divergence profile, lane occupancy, \
     and TIME_SIMD vs TIME_MIMD per source region";
  let module P = Lf_core.Pipeline in
  let mol = Lf_md.Workload.sod ~n:96 ~seed:13 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:7.0 in
  let p_lanes = 8 in
  let opts =
    {
      P.default_options with
      assume_inner_nonempty = true;
      target =
        P.Simd { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p_lanes };
    }
  in
  match P.flatten_program ~opts (Lf_kernels.Nbforce_src.program ()) with
  | Error e -> Fmt.pf ppf "flattening failed: %s@." e
  | Ok o ->
      (* pretty-print and re-parse so every statement of the transformed
         program carries a source location for the profile to bill to *)
      let src = Pretty.program_to_string o.P.program in
      let prog = Parser.program_of_string src in
      let prof = Lf_obs.Profile.create () in
      let occ = Lf_obs.Occupancy.create ~p:p_lanes () in
      let n, maxp = Lf_kernels.Nbforce_src.params pl in
      let vm =
        Lf_simd.Vm.run ~engine:`Compiled ~p:p_lanes
          ~setup:(fun vm ->
            Lf_simd.Vm.register_func vm ~pure:true "force"
              (Lf_kernels.Nbforce_src.force_fn mol);
            Lf_simd.Vm.bind_scalar vm "n" (Values.VInt n);
            Lf_simd.Vm.bind_scalar vm "maxp" (Values.VInt maxp);
            Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p_lanes);
            Lf_kernels.Nbforce_src.bind_arrays pl ~n ~maxp
              ~set_global:(fun name a -> Lf_simd.Vm.bind_global vm name a);
            Lf_simd.Vm.add_trace_sink vm (Lf_obs.Profile.sink prof);
            Lf_simd.Vm.add_trace_sink vm (Lf_obs.Occupancy.sink occ))
          prog
      in
      Fmt.pf ppf "flattened SIMD (%d lanes, cyclic): %a@.@." p_lanes
        Lf_simd.Metrics.pp vm.Lf_simd.Vm.metrics;
      Obs_report.profile_table ~source:src ppf prof;
      Fmt.pf ppf "@.";
      Obs_report.heatmap ppf occ;
      Fmt.pf ppf "profile ties out with metrics: %b@."
        (Obs_report.check_totals prof vm.Lf_simd.Vm.metrics);
      let mimd, _f = Obs_report.run_nbforce_mimd (mol, pl) ~p:p_lanes in
      Fmt.pf ppf
        "@.MIMD (%d processors, block): %d steps (max over processors)@.@."
        p_lanes mimd.Lf_mimd.Mimd_vm.time;
      Obs_report.mimd_line_table ~source:Lf_kernels.Nbforce_src.source ppf
        mimd.Lf_mimd.Mimd_vm.line_steps;
      Fmt.pf ppf "@.";
      Obs_report.region_table ppf ~simd_src:src ~prof
        ~metrics:vm.Lf_simd.Vm.metrics ~mimd;
      Fmt.pf ppf
        "@.Flattening keeps the lanes on their own pair streams, so the \
         occupancy graph stays dense until the heaviest atoms drain — the \
         shape of the paper's Figure 19, with the per-line table showing \
         where the residual idle slots are billed.@."

(* ------------------------------------------------------------------ *)
(* Everything                                                          *)
(* ------------------------------------------------------------------ *)

let all ppf =
  fig4 ppf;
  fig6 ppf;
  bounds ppf;
  transforms ppf;
  fig18 ppf;
  table2 ppf;
  table1 ppf;
  fig19 ppf;
  sparc ppf;
  nmax_effect ppf;
  layered ppf;
  ablation_variants ppf;
  ablation_layout ppf;
  ablation_workloads ppf;
  ablation_decomp ppf;
  ablation_coalesce ppf;
  obs_nbforce ppf

let by_name =
  [
    ("fig4", fig4); ("fig6", fig6); ("bounds", bounds);
    ("transforms", transforms); ("fig18", fig18); ("table2", table2);
    ("table1", table1); ("fig19", fig19); ("sparc", sparc);
    ("nmax", nmax_effect); ("layered", layered);
    ("ablation-variants", ablation_variants);
    ("ablation-layout", ablation_layout);
    ("ablation-workloads", ablation_workloads);
    ("ablation-decomp", ablation_decomp);
    ("ablation-coalesce", ablation_coalesce); ("obs-nbforce", obs_nbforce);
    ("all", all);
  ]

(* ------------------------------------------------------------------ *)
(* CSV export (for external plotting of Tables 1-2 and Figs. 18-19)    *)
(* ------------------------------------------------------------------ *)

let csv_fig18 () =
  let mol = Lf_md.Workload.sod () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "cutoff_A,pcnt_max,pcnt_avg,ratio\n";
  List.iter
    (fun c ->
      let s = Lf_md.Stats.of_pairlist (Lf_md.Workload.pairlist mol ~cutoff:c) in
      Buffer.add_string buf
        (Printf.sprintf "%.1f,%d,%.3f,%.4f\n" c s.Lf_md.Stats.pcnt_max
           s.Lf_md.Stats.pcnt_avg s.Lf_md.Stats.ratio))
    Lf_md.Workload.fig18_cutoffs;
  Buffer.contents buf

let csv_table2 () =
  let mol = Lf_md.Workload.sod () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "gran,cutoff_A,lu,lf,ratio\n";
  List.iter
    (fun gran ->
      let m =
        if gran <= 512 then Lf_simd.Machine.cm2 ~p:(gran * 8)
        else Lf_simd.Machine.decmpp ~p:gran
      in
      Array.iter
        (fun c ->
          let pl = Lf_md.Workload.pairlist mol ~cutoff:c in
          let lu = run_cell Lf_kernels.Nbforce.L1 m mol pl in
          let lf = run_cell Lf_kernels.Nbforce.Flat m mol pl in
          Buffer.add_string buf
            (Printf.sprintf "%d,%.1f,%d,%d,%.4f\n" gran c
               lu.Lf_kernels.Nbforce.table2_count
               lf.Lf_kernels.Nbforce.table2_count
               (float_of_int lu.Lf_kernels.Nbforce.table2_count
               /. float_of_int (max 1 lf.Lf_kernels.Nbforce.table2_count))))
        Paper_data.cutoffs)
    [ 128; 256; 512; 1024; 2048; 4096; 8192 ];
  Buffer.contents buf

let csv_table1 () =
  (* one row per (machine, P, cutoff, variant): the Fig. 19 series too *)
  let mol = Lf_md.Workload.sod () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "machine,processors,gran,cutoff_A,variant,seconds\n";
  List.iter
    (fun m ->
      Array.iter
        (fun c ->
          let pl = Lf_md.Workload.pairlist mol ~cutoff:c in
          List.iter
            (fun v ->
              let r = run_cell v m mol pl in
              Buffer.add_string buf
                (Printf.sprintf "%s,%d,%d,%.1f,%s,%.4f\n"
                   m.Lf_simd.Machine.name m.Lf_simd.Machine.processors
                   m.Lf_simd.Machine.gran c
                   (Lf_kernels.Nbforce.variant_to_string v)
                   r.Lf_kernels.Nbforce.time))
            [ Lf_kernels.Nbforce.L1; Lf_kernels.Nbforce.L2;
              Lf_kernels.Nbforce.Flat ])
        Paper_data.cutoffs)
    (machines ());
  Buffer.contents buf

(** Write table1.csv, table2.csv and fig18.csv into [dir]. *)
let write_csvs ~dir =
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "fig18.csv" (csv_fig18 ());
  write "table2.csv" (csv_table2 ());
  write "table1.csv" (csv_table1 ())
