(** The paper's actual CM/MP-Fortran kernels (Figures 16 and 17) as
    mini-Fortran F90simd source with explicit {e memory layers}: atoms are
    laid out cut-and-stack over P lanes × Lrs layers, data lives in PLURAL
    arrays with a per-lane layer dimension, and the unflattened kernel
    sweeps layers per partner rank while the flattened one walks per-lane
    (layer, rank) cursors via indirect addressing.

    Running these on the SIMD VM reproduces §5.3's implementation
    experience directly: the onef call count equals Table 2's
    [maxPCnt × layers] for the unflattened kernels (maxLrs for L², Lrs for
    L¹) and [max_q Σ pCnt] (Eq. 1′) for the flattened one. *)

open Lf_lang

(** Figure 17 analogue (unflattened).  [sweep] is [lrs] for the
    layer-selecting L¹ version and [maxlrs] for the all-layers L²
    version — passed as the upper bound of the layer loop. *)
let unflattened_source =
  {|
PROGRAM allf
  INTEGER p, maxlrs, lrs, maxpcnt, sweep, pr, ly
  PLURAL INTEGER at1l(maxlrs), pcntl(maxlrs)
  PLURAL REAL fl(maxlrs)
  DO pr = 1, maxpcnt
    DO ly = 1, sweep
      WHERE (ly <= lrs .AND. pr <= pcntl(ly))
        CALL onefl(ly, pr)
      ENDWHERE
    ENDDO
  ENDDO
END
|}

(** Figure 16 analogue (flattened): per-lane cursors [l] (layer) and [pr]
    (partner rank); [at1 = iproc; at1 = at1 + p] realizes the cut-and-stack
    indirection of the paper's [at1 = \[1:P\]] ... [at1 = at1 + P]. *)
let flattened_source =
  {|
PROGRAM allfflat
  INTEGER p, maxlrs, lrs, maxpcnt
  PLURAL INTEGER l, pr, at1
  PLURAL INTEGER at1l(maxlrs), pcntl(maxlrs)
  PLURAL REAL fl(maxlrs)
  l = 1
  pr = 1
  at1 = iproc
  WHILE (any(l <= lrs))
    WHERE (l <= lrs)
      CALL onefl(l, pr)
      WHERE (pr >= pcntl(l))
        pr = 1
        l = l + 1
        at1 = at1 + p
      ELSEWHERE
        pr = pr + 1
      ENDWHERE
    ENDWHERE
  ENDWHILE
END
|}

let unflattened () = Parser.program_of_string unflattened_source
let flattened () = Parser.program_of_string flattened_source

(** Cut-and-stack atom id for (0-based lane, 1-based layer): the atom in
    lane [q], layer [ly] is [q + (ly-1)*P], or [None] past the end. *)
let atom_of ~p ~n ~lane ~ly =
  let a = lane + ((ly - 1) * p) in
  if a < n then Some a else None

(** Bind the layered PLURAL data: per-lane pcnt and atom-id layers, plus a
    zeroed per-lane force accumulator. *)
let bind_layered vm (pl : Lf_md.Pairlist.t) ~p ~maxlrs =
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  Lf_simd.Vm.bind_plural_arr vm "pcntl" Ast.TInt [| maxlrs |];
  Lf_simd.Vm.bind_plural_arr vm "at1l" Ast.TInt [| maxlrs |];
  Lf_simd.Vm.bind_plural_arr vm "fl" Ast.TReal [| maxlrs |];
  let pcntl = Lf_simd.Vm.read_global vm "pcntl" in
  let at1l = Lf_simd.Vm.read_global vm "at1l" in
  for lane = 0 to p - 1 do
    for ly = 1 to maxlrs do
      match atom_of ~p ~n ~lane ~ly with
      | Some a ->
          Values.arr_set pcntl [| lane + 1; ly |]
            (Values.VInt pl.Lf_md.Pairlist.pcnt.(a));
          Values.arr_set at1l [| lane + 1; ly |] (Values.VInt (a + 1))
      | None ->
          Values.arr_set pcntl [| lane + 1; ly |] (Values.VInt 0);
          Values.arr_set at1l [| lane + 1; ly |] (Values.VInt 0)
    done
  done

(** The layered force subroutine: [onefl(ly, pr)] accumulates, per active
    lane, the force between its layer-[ly] atom and that atom's [pr]-th
    partner into [fl(ly)]. *)
let onefl (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) :
    Lf_simd.Vm.proc =
 fun vm ~mask args ->
  match args with
  | [ ly; pr ] ->
      let fl = Lf_simd.Vm.read_global vm "fl" in
      let n = Array.length pl.Lf_md.Pairlist.pcnt in
      Array.iteri
        (fun lane active ->
          if active then begin
            let ly = Values.as_int (Lf_simd.Pval.lane ly lane) in
            let pr = Values.as_int (Lf_simd.Pval.lane pr lane) in
            match atom_of ~p:vm.Lf_simd.Vm.p ~n ~lane ~ly with
            | Some a when pr <= pl.Lf_md.Pairlist.pcnt.(a) ->
                let b = pl.Lf_md.Pairlist.partners.(a).(pr - 1) in
                let v =
                  Lf_md.Force.norm
                    (Lf_md.Force.pair
                       mol.Lf_md.Molecule.atoms.(a)
                       mol.Lf_md.Molecule.atoms.(b))
                in
                Values.arr_set fl [| lane + 1; ly |]
                  (Values.VReal
                     (Values.as_float
                        (Values.arr_get fl [| lane + 1; ly |])
                     +. v))
            | _ -> ()
          end)
        mask
  | _ -> Errors.runtime_error "onefl expects two arguments"

type run = {
  forces : float array;  (** per-atom scalar force magnitudes *)
  onef_calls : int;  (** vector invocations of the layered force routine *)
  metrics : Lf_simd.Metrics.t;
}

(** Run one of the layered kernels.  [sweep] selects L¹ ([`Lrs]) vs L²
    ([`MaxLrs]) for the unflattened program and is ignored by the
    flattened one. *)
let run_kernel ?(sweep = `MaxLrs) ?(engine = `Compiled) (prog : Ast.program)
    (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) ~p ~nmax : run =
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let lrs = 1 + ((n - 1) / p) in
  let maxlrs = 1 + ((nmax - 1) / p) in
  let maxpcnt = max 1 (Lf_md.Pairlist.max_pcnt pl) in
  let vm =
    Lf_simd.Vm.run ~engine ~p
      ~setup:(fun vm ->
        Lf_simd.Vm.register_proc vm "onefl" (onefl mol pl);
        Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p);
        Lf_simd.Vm.bind_scalar vm "lrs" (Values.VInt lrs);
        Lf_simd.Vm.bind_scalar vm "maxlrs" (Values.VInt maxlrs);
        Lf_simd.Vm.bind_scalar vm "maxpcnt" (Values.VInt maxpcnt);
        Lf_simd.Vm.bind_scalar vm "sweep"
          (Values.VInt (match sweep with `Lrs -> lrs | `MaxLrs -> maxlrs));
        bind_layered vm pl ~p ~maxlrs)
      prog
  in
  (* gather per-lane layered accumulators back to per-atom forces *)
  let fl = Lf_simd.Vm.read_global vm "fl" in
  let forces = Array.make n 0.0 in
  for lane = 0 to p - 1 do
    for ly = 1 to maxlrs do
      match atom_of ~p ~n ~lane ~ly with
      | Some a ->
          forces.(a) <- Values.as_float (Values.arr_get fl [| lane + 1; ly |])
      | None -> ()
    done
  done;
  {
    forces;
    onef_calls = Lf_simd.Metrics.call_count vm.Lf_simd.Vm.metrics "onefl";
    metrics = vm.Lf_simd.Vm.metrics;
  }
