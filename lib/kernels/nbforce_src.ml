(** The NBFORCE kernel as mini-Fortran source (the paper's Figure 13), plus
    helpers to run it — original, flattened, and SIMDized — through the
    interpreters against a real pairlist.  This is the end-to-end
    demonstration that the {e compiler} path (parse → analyze → flatten →
    SIMDize → execute) agrees with the native kernel simulations. *)

open Lf_lang

(** Figure 13.  [force] is registered as a pure external function; [f]
    accumulates the (scalar) force magnitudes per atom.  Declarations use
    the parameters [n] and [maxp] seeded by the driver. *)
let source =
  {|
PROGRAM nbforce
  INTEGER n, maxp, at1, at2, pr
  REAL f(n)
  INTEGER pcnt(n)
  INTEGER partners(n, maxp)
  DO at1 = 1, n
    DO pr = 1, pcnt(at1)
      at2 = partners(at1, pr)
      f(at1) = f(at1) + force(at1, at2)
    ENDDO
  ENDDO
END
|}

let program () = Parser.program_of_string source

(** Scalar stand-in for the force routine: the magnitude of the LJ +
    Coulomb pair force.  Registered under the name [force]. *)
let force_fn (mol : Lf_md.Molecule.t) (args : Values.value list) :
    Values.value =
  match args with
  | [ a; b ] ->
      let i = Values.as_int a - 1 and j = Values.as_int b - 1 in
      Values.VReal
        (Lf_md.Force.norm
           (Lf_md.Force.pair
              mol.Lf_md.Molecule.atoms.(i)
              mol.Lf_md.Molecule.atoms.(j)))
  | _ -> Errors.runtime_error "force expects two arguments"

let params (pl : Lf_md.Pairlist.t) =
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let maxp = max 1 (Lf_md.Pairlist.max_pcnt pl) in
  (n, maxp)

(** Bind [pcnt], [partners] (1-based contents) and a zeroed [f]. *)
let bind_arrays (pl : Lf_md.Pairlist.t) ~n ~maxp ~set_global =
  let pcnt = Nd.create [| n |] 0 in
  let partners = Nd.create [| n; maxp |] 0 in
  Array.iteri
    (fun i ps ->
      Nd.set pcnt [| i + 1 |] (Array.length ps);
      Array.iteri (fun k j -> Nd.set partners [| i + 1; k + 1 |] (j + 1)) ps)
    pl.Lf_md.Pairlist.partners;
  set_global "pcnt" (Values.AInt pcnt);
  set_global "partners" (Values.AInt partners);
  set_global "f" (Values.AReal (Nd.create [| n |] 0.0))

(** Run a (possibly transformed) sequential version and return the force
    array and step count. *)
let run_sequential (prog : Ast.program) (mol : Lf_md.Molecule.t)
    (pl : Lf_md.Pairlist.t) : float array * int =
  let n, maxp = params pl in
  let ctx =
    Interp.run
      ~params:[ ("n", Values.VInt n); ("maxp", Values.VInt maxp) ]
      ~setup:(fun ctx ->
        Interp.register_func ctx "force" (force_fn mol);
        bind_arrays pl ~n ~maxp ~set_global:(fun name a ->
            Env.set ctx.Interp.env name (Values.VArr a)))
      prog
  in
  match Env.find ctx.Interp.env "f" with
  | Values.VArr (Values.AReal f) -> (Nd.to_array f, ctx.Interp.steps)
  | _ -> Errors.runtime_error "f is not a REAL array"

(** Run a SIMDized version on the SIMD VM with [p] lanes; returns the
    force array and the VM metrics.  [engine] defaults to the compiled
    engine (every engine, optimizer level and [verify] setting produces
    identical results). *)
let run_simd ?(engine = `Compiled) ?jobs ?opt ?verify (prog : Ast.program)
    (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) ~p :
    float array * Lf_simd.Metrics.t =
  let n, maxp = params pl in
  let vm =
    Lf_simd.Vm.run ~engine ?jobs ?opt ?verify ~p
      ~setup:(fun vm ->
        Lf_simd.Vm.register_func vm ~pure:true "force" (force_fn mol);
        Lf_simd.Vm.bind_scalar vm "n" (Values.VInt n);
        Lf_simd.Vm.bind_scalar vm "maxp" (Values.VInt maxp);
        Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p);
        bind_arrays pl ~n ~maxp ~set_global:(fun name a ->
            Lf_simd.Vm.bind_global vm name a))
      prog
  in
  match Lf_simd.Vm.read_global vm "f" with
  | Values.AReal f -> (Nd.to_array f, vm.Lf_simd.Vm.metrics)
  | _ -> Errors.runtime_error "f is not a REAL array"

(** Owner-side scalar force magnitudes, the oracle for both paths. *)
let reference (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) : float array =
  Array.mapi
    (fun i ps ->
      Array.fold_left
        (fun acc j ->
          acc
          +. Lf_md.Force.norm
               (Lf_md.Force.pair
                  mol.Lf_md.Molecule.atoms.(i)
                  mol.Lf_md.Molecule.atoms.(j)))
        0.0 ps)
    pl.Lf_md.Pairlist.partners

(* ------------------------------------------------------------------ *)
(* CALL-based variant (Figures 16/17 use CALL OneF)                    *)
(* ------------------------------------------------------------------ *)

(** NBFORCE with the force routine as a subroutine call, like the paper's
    actual CM/MP-Fortran kernels.  The number of executions of the CALL
    statement is exactly the "number of calls to Force routine" of
    Table 2 — one per vector step on the SIMD VM, regardless of masking. *)
let source_call =
  {|
PROGRAM nbforce
  INTEGER n, maxp, at1, at2, pr
  REAL f(n)
  INTEGER pcnt(n)
  INTEGER partners(n, maxp)
  DO at1 = 1, n
    DO pr = 1, pcnt(at1)
      at2 = partners(at1, pr)
      CALL onef(at1, at2)
    ENDDO
  ENDDO
END
|}

let program_call () = Parser.program_of_string source_call

(** The [onef] subroutine for the sequential interpreter: accumulates the
    scalar force magnitude into [f]. *)
let onef_seq (mol : Lf_md.Molecule.t) : Interp.proc =
 fun ctx args ->
  match args with
  | [ a; _b ] ->
      let i = Values.as_int a in
      let v = Values.as_float (force_fn mol args) in
      (match Env.find ctx.Interp.env "f" with
      | Values.VArr (Values.AReal f) ->
          Nd.set f [| i |] (Nd.get f [| i |] +. v)
      | _ -> Errors.runtime_error "f is not a REAL array")
  | _ -> Errors.runtime_error "onef expects two arguments"

(** The [onef] subroutine for the SIMD VM: one vector step; accumulates
    per active lane. *)
let onef_simd (mol : Lf_md.Molecule.t) : Lf_simd.Vm.proc =
 fun vm ~mask args ->
  match args with
  | [ a; b ] ->
      (match Lf_simd.Vm.read_global vm "f" with
      | Values.AReal f ->
          Array.iteri
            (fun lane active ->
              if active then begin
                let i = Values.as_int (Lf_simd.Pval.lane a lane) in
                let v =
                  Values.as_float
                    (force_fn mol
                       [ Lf_simd.Pval.lane a lane; Lf_simd.Pval.lane b lane ])
                in
                Nd.set f [| i |] (Nd.get f [| i |] +. v)
              end)
            mask
      | _ -> Errors.runtime_error "f is not a REAL array")
  | _ -> Errors.runtime_error "onef expects two arguments"

(** Run a CALL-based (possibly transformed) program on the SIMD VM and
    return (forces, metrics); the "onef" call count in the metrics is the
    Table 2 quantity. *)
let run_simd_call ?(engine = `Compiled) ?jobs (prog : Ast.program)
    (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) ~p :
    float array * Lf_simd.Metrics.t =
  let n, maxp = params pl in
  let vm =
    Lf_simd.Vm.run ~engine ?jobs ~p
      ~setup:(fun vm ->
        Lf_simd.Vm.register_proc vm "onef" (onef_simd mol);
        Lf_simd.Vm.register_func vm ~pure:true "force" (force_fn mol);
        Lf_simd.Vm.bind_scalar vm "n" (Values.VInt n);
        Lf_simd.Vm.bind_scalar vm "maxp" (Values.VInt maxp);
        Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p);
        bind_arrays pl ~n ~maxp ~set_global:(fun name a ->
            Lf_simd.Vm.bind_global vm name a))
      prog
  in
  match Lf_simd.Vm.read_global vm "f" with
  | Values.AReal f -> (Nd.to_array f, vm.Lf_simd.Vm.metrics)
  | _ -> Errors.runtime_error "f is not a REAL array"

(** Sequential analogue for the CALL-based program. *)
let run_sequential_call (prog : Ast.program) (mol : Lf_md.Molecule.t)
    (pl : Lf_md.Pairlist.t) : float array * int =
  let n, maxp = params pl in
  let ctx =
    Interp.run
      ~params:[ ("n", Values.VInt n); ("maxp", Values.VInt maxp) ]
      ~setup:(fun ctx ->
        Interp.register_proc ctx "onef" (onef_seq mol);
        Interp.register_func ctx "force" (force_fn mol);
        bind_arrays pl ~n ~maxp ~set_global:(fun name a ->
            Env.set ctx.Interp.env name (Values.VArr a)))
      prog
  in
  match Env.find ctx.Interp.env "f" with
  | Values.VArr (Values.AReal f) -> (Nd.to_array f, ctx.Interp.steps)
  | _ -> Errors.runtime_error "f is not a REAL array"
