(** Sequential (F77) interpreter with GOTO support, Fortran-90 whole-array
    assignment and contiguous sections, and caller-registered external
    subroutines/functions.

    The interpreter records an {e observation trace} — the sequence of
    external subroutine calls with their arguments — which
    [Lf_core.Validate] compares across transformed program versions. *)

open Ast

type observation = {
  ob_proc : string;
  ob_args : Values.value list;
}

type proc = t -> Values.value list -> unit

and t = {
  env : Env.t;
  mutable fuel : int;
  mutable steps : int;  (** statements executed (comments excluded) *)
  mutable obs : observation list;  (** reversed; use [observations] *)
  procs : (string, proc) Hashtbl.t;
  funcs : (string, Values.value list -> Values.value) Hashtbl.t;
  mutable cur_loc : Errors.pos;
      (** location of the innermost [SLoc]-wrapped statement being
          executed; [Errors.no_pos] outside located code *)
  mutable step_hook : (Errors.pos -> unit) option;
      (** called once per counted step with the current source location;
          used for per-line time attribution (e.g. by [Lf_mimd]) *)
}

exception Jump of string
(** Unresolved GOTO (label not found in any enclosing block). *)

val dispatch_hook : (string -> unit) option ref
(** Process-wide statement-dispatch hook: when set, called once per
    executed statement (before it runs) with the statement kind —
    "assign", "call", "goto", "cond_goto", "if", "while", "do_while",
    "do", "forall" or "where".  Installed by the observability layer's
    telemetry registry while enabled; [None] (the default) costs one
    load and branch per statement. *)

val default_fuel : int
val create : ?fuel:int -> unit -> t
val register_proc : t -> string -> proc -> unit
val register_func : t -> string -> (Values.value list -> Values.value) -> unit

(** The external-call trace, in execution order. *)
val observations : t -> observation list

(** Scalar binary/unary operator semantics (shared with the SIMD VM). *)
val apply_binop : binop -> Values.value -> Values.value -> Values.value

val apply_unop : unop -> Values.value -> Values.value

val eval : t -> expr -> Values.value
val exec_stmt : t -> stmt -> unit
val exec_block : t -> block -> unit

(** Allocate declared variables; pre-seeded bindings are kept, and array
    dimensions may reference earlier bindings. *)
val declare : t -> decl list -> unit

(** Run a program: seed [params], run [setup], process declarations,
    execute the body.  Raises [Errors.Runtime_error] on fuel exhaustion
    or dynamic errors — [Errors.Runtime_error_at] when the failing
    statement carries a source location. *)
val run :
  ?params:(string * Values.value) list ->
  ?fuel:int ->
  ?setup:(t -> unit) ->
  program ->
  t

val run_block :
  ?params:(string * Values.value) list ->
  ?fuel:int ->
  ?setup:(t -> unit) ->
  block ->
  t
