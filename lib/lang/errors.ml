(** Error reporting shared by the front end, the checkers, and the
    interpreters. *)

type pos = {
  line : int;
  col : int;
}

let pos line col = { line; col }
let no_pos = { line = 0; col = 0 }

let pp_pos ppf p =
  if p.line = 0 then Fmt.string ppf "<builtin>"
  else Fmt.pf ppf "%d:%d" p.line p.col

exception Lex_error of pos * string
exception Parse_error of pos * string
exception Type_error of string
exception Runtime_error of string

(** A runtime error attributed to a source statement.  The interpreters
    annotate plain [Runtime_error]s with the location of the statement
    being executed as the exception crosses its [Ast.SLoc] wrapper, so
    the innermost located statement wins and errors from programs built
    in OCaml (no locations) are unaffected. *)
exception Runtime_error_at of pos * string

let lex_error p fmt = Fmt.kstr (fun m -> raise (Lex_error (p, m))) fmt
let parse_error p fmt = Fmt.kstr (fun m -> raise (Parse_error (p, m))) fmt
let type_error fmt = Fmt.kstr (fun m -> raise (Type_error m)) fmt
let runtime_error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

(** Re-raise [Runtime_error] as [Runtime_error_at loc]; used by the
    execution engines at statement-location boundaries. *)
let locate_runtime_error loc = function
  | Runtime_error m -> raise (Runtime_error_at (loc, m))
  | e -> raise e

(* Source-context rendering for located diagnostics (the static checkers
   and flattenlint print the offending line under the message). *)

(** [source_line src n] — the [n]th line (1-based) of [src], if any. *)
let source_line src n =
  if n <= 0 then None
  else
    let rec nth i = function
      | [] -> None
      | l :: rest -> if i = n then Some l else nth (i + 1) rest
    in
    nth 1 (String.split_on_char '\n' src)

(** Print the source line at [p] with its number and a caret under the
    column, gutter-aligned:

    {v
       7 |     x(i) = x(i - 1) + j
         |     ^
    v}

    Prints nothing when [p] is [no_pos] or past the end of [source]. *)
let pp_context ~source ppf p =
  match source_line source p.line with
  | None -> ()
  | Some text ->
      let gutter = String.length (string_of_int p.line) in
      Fmt.pf ppf "%d | %s@.%s | %s^@." p.line text (String.make gutter ' ')
        (String.make (max 0 (p.col - 1)) ' ')

(** Render any of the above exceptions as a one-line message; re-raises
    anything else. *)
let to_message = function
  | Lex_error (p, m) -> Fmt.str "lexical error at %a: %s" pp_pos p m
  | Parse_error (p, m) -> Fmt.str "parse error at %a: %s" pp_pos p m
  | Type_error m -> Fmt.str "type error: %s" m
  | Runtime_error m -> Fmt.str "runtime error: %s" m
  | Runtime_error_at (p, m) -> Fmt.str "runtime error at %a: %s" pp_pos p m
  | e -> raise e
