(** Static checking of pseudo-Fortran programs: types, array ranks, and —
    for F90simd programs — the plural/front-end discipline of Section 2.

    The checker validates three layers:
    - {b types}: numeric vs logical operands, condition types, assignment
      compatibility (INTEGER widens to REAL, nothing narrows);
    - {b shapes}: every array reference has the declared rank; scalars are
      never indexed; whole-array references appear only where the
      evaluation rules support them;
    - {b plurality} (when the program declares PLURAL variables): a
      front-end scalar is never assigned a plural value, reductions
      collapse plurality, DO bounds are front-end, and plural control flow
      uses WHERE / WHILE ANY rather than IF/plain WHILE.

    Undeclared scalars follow Fortran's implicit rule (names starting with
    i..n are INTEGER, others REAL) and are reported as warnings, matching
    the dusty-deck inputs the paper targets.  The pipeline checks its own
    output with this module (see the test suite): flattening and
    SIMDization preserve well-typedness. *)

open Ast

type ty =
  | Int
  | Real
  | Logical

let ty_of_dtype = function
  | TInt -> Int
  | TReal -> Real
  | TLogical -> Logical

let ty_to_string = function
  | Int -> "INTEGER"
  | Real -> "REAL"
  | Logical -> "LOGICAL"

(** What the checker knows about one name. *)
type info = {
  ty : ty;
  rank : int;  (** 0 for scalars *)
  plural : bool;
  declared : bool;  (** false: invented by the implicit rule *)
}

type severity =
  | Error
  | Warning

type diagnostic = {
  severity : severity;
  message : string;
}

let pp_diagnostic ppf d =
  Fmt.pf ppf "%s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.message

type t = {
  vars : (string, info) Hashtbl.t;
  mutable diags : diagnostic list;  (** reversed *)
  known_funcs : (string, ty) Hashtbl.t;
      (** registered external functions and their result types *)
  simd : bool;  (** enforce the plural discipline *)
}

let error ctx fmt =
  Fmt.kstr
    (fun message -> ctx.diags <- { severity = Error; message } :: ctx.diags)
    fmt

let warn ctx fmt =
  Fmt.kstr
    (fun message -> ctx.diags <- { severity = Warning; message } :: ctx.diags)
    fmt

let implicit_ty name =
  if name = "" then Real
  else if name.[0] >= 'i' && name.[0] <= 'n' then Int
  else Real

(** Look a name up, inventing it by the implicit rule on first sight. *)
let lookup ctx name =
  match Hashtbl.find_opt ctx.vars name with
  | Some i -> i
  | None ->
      let i =
        { ty = implicit_ty name; rank = 0; plural = false; declared = false }
      in
      Hashtbl.replace ctx.vars name i;
      warn ctx "%s is not declared; implicitly %s" name
        (ty_to_string i.ty);
      i

let numeric = function Int | Real -> true | Logical -> false

let join_numeric a b =
  match (a, b) with Real, _ | _, Real -> Real | _ -> Int

(** Result of checking an expression. *)
type value_kind = {
  vty : ty;
  vrank : int;  (** 0 = scalar; > 0 = whole-array value *)
  vplural : bool;
}

let scalar_kind ?(plural = false) vty = { vty; vrank = 0; vplural = plural }

let rec check_expr ctx (e : expr) : value_kind =
  match e with
  | EInt _ -> scalar_kind Int
  | EReal _ -> scalar_kind Real
  | EBool _ -> scalar_kind Logical
  | ERange (lo, hi) ->
      expect_index ctx "range bound" lo;
      expect_index ctx "range bound" hi;
      { vty = Int; vrank = 1; vplural = false }
  | EVar v ->
      let i = lookup ctx v in
      { vty = i.ty; vrank = i.rank; vplural = i.plural }
  | EUn (Not, a) ->
      let k = check_expr ctx a in
      if k.vty <> Logical then
        error ctx ".NOT. applied to %s" (ty_to_string k.vty);
      k
  | EUn (Neg, a) ->
      let k = check_expr ctx a in
      if not (numeric k.vty) then
        error ctx "unary minus applied to %s" (ty_to_string k.vty);
      k
  | EBin (op, a, b) -> check_binop ctx op a b
  | ECall (f, args) -> check_call ctx f args
  | EIdx (name, idxs) -> (
      match Hashtbl.find_opt ctx.known_funcs name with
      | Some rty ->
          (* function result is plural iff any argument is *)
          let plural =
            List.exists (fun a -> (check_expr ctx a).vplural) idxs
          in
          { vty = rty; vrank = 0; vplural = plural }
      | None when not (Hashtbl.mem ctx.vars name) ->
          (* neither a declared array nor a registered function: assume an
             external REAL function, once *)
          warn ctx "unknown function or array %s (assumed REAL function)"
            name;
          Hashtbl.replace ctx.known_funcs name Real;
          let plural =
            List.exists (fun a -> (check_expr ctx a).vplural) idxs
          in
          { vty = Real; vrank = 0; vplural = plural }
      | None ->
          let i = lookup ctx name in
          if i.rank = 0 then begin
            error ctx "%s is a scalar but is indexed" name;
            scalar_kind i.ty
          end
          else begin
            if List.length idxs <> i.rank then
              error ctx "%s has rank %d but %d subscript(s)" name i.rank
                (List.length idxs);
            let section = ref false in
            let plural = ref i.plural in
            List.iter
              (fun ix ->
                match ix with
                | ERange _ ->
                    section := true;
                    ignore (check_expr ctx ix)
                | ix ->
                    let k = check_expr ctx ix in
                    if k.vty <> Int then
                      error ctx "subscript of %s is %s, expected INTEGER"
                        name (ty_to_string k.vty);
                    if k.vrank > 0 then
                      error ctx "array-valued subscript of %s" name;
                    if k.vplural then plural := true)
              idxs;
            { vty = i.ty; vrank = (if !section then 1 else 0);
              vplural = !plural }
          end)

and check_binop ctx op a b =
  let ka = check_expr ctx a and kb = check_expr ctx b in
  let plural = ka.vplural || kb.vplural in
  let rank =
    (* elementwise lifting: ranks must agree or one side is scalar *)
    if ka.vrank <> kb.vrank && ka.vrank > 0 && kb.vrank > 0 then begin
      error ctx "rank mismatch in binary operation (%d vs %d)" ka.vrank
        kb.vrank;
      max ka.vrank kb.vrank
    end
    else max ka.vrank kb.vrank
  in
  match op with
  | Add | Sub | Mul | Div | Mod | Pow ->
      if not (numeric ka.vty && numeric kb.vty) then
        error ctx "arithmetic on %s and %s" (ty_to_string ka.vty)
          (ty_to_string kb.vty);
      { vty = join_numeric ka.vty kb.vty; vrank = rank; vplural = plural }
  | Eq | Ne | Lt | Le | Gt | Ge ->
      if numeric ka.vty <> numeric kb.vty then
        error ctx "comparison of %s and %s" (ty_to_string ka.vty)
          (ty_to_string kb.vty);
      { vty = Logical; vrank = rank; vplural = plural }
  | And | Or ->
      if ka.vty <> Logical || kb.vty <> Logical then
        error ctx "logical operation on %s and %s" (ty_to_string ka.vty)
          (ty_to_string kb.vty);
      { vty = Logical; vrank = rank; vplural = plural }

and check_call ctx f args =
  let kinds = List.map (check_expr ctx) args in
  let plural_in = List.exists (fun k -> k.vplural) kinds in
  let f = String.lowercase_ascii f in
  match f with
  | "any" | "all" ->
      (match kinds with
      | [ k ] when k.vty = Logical -> ()
      | _ -> error ctx "%s expects one LOGICAL operand" f);
      scalar_kind Logical
  | "count" -> scalar_kind Int
  | "maxval" | "minval" | "sum" ->
      (match kinds with
      | [ k ] when numeric k.vty -> ()
      | _ -> error ctx "%s expects one numeric operand" f);
      scalar_kind (match kinds with [ k ] -> k.vty | _ -> Int)
  | "max" | "min" ->
      if kinds = [] then error ctx "%s needs arguments" f;
      List.iter
        (fun k ->
          if not (numeric k.vty) then
            error ctx "%s on %s" f (ty_to_string k.vty))
        kinds;
      {
        vty = List.fold_left (fun t k -> join_numeric t k.vty) Int kinds;
        vrank = 0;
        vplural = plural_in;
      }
  | "abs" | "mod" | "nint" | "int" ->
      { vty = (match kinds with k :: _ -> k.vty | [] -> Int);
        vrank = 0; vplural = plural_in }
  | "sqrt" | "exp" | "real" -> { vty = Real; vrank = 0; vplural = plural_in }
  | "size" -> scalar_kind Int
  | "vector" -> { vty = Int; vrank = 1; vplural = false }
  | "merge" ->
      { vty = (match kinds with k :: _ -> k.vty | [] -> Int);
        vrank = 0; vplural = plural_in }
  | _ -> (
      match Hashtbl.find_opt ctx.known_funcs f with
      | Some rty -> { vty = rty; vrank = 0; vplural = plural_in }
      | None ->
          warn ctx "unknown function %s (assumed REAL)" f;
          { vty = Real; vrank = 0; vplural = plural_in })

and expect_index ctx what e =
  let k = check_expr ctx e in
  if k.vty <> Int then
    error ctx "%s is %s, expected INTEGER" what (ty_to_string k.vty)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let assignable ~(to_ : ty) ~(from : ty) =
  match (to_, from) with
  | Real, Int -> true  (* implicit widening *)
  | a, b -> a = b

let rec check_stmt ctx (s : stmt) : unit =
  match s with
  | SLoc (_, s) -> check_stmt ctx s
  | SComment _ | SLabel _ | SGoto _ -> ()
  | SCondGoto (e, _) ->
      let k = check_expr ctx e in
      if k.vty <> Logical then
        error ctx "IF-GOTO condition is %s" (ty_to_string k.vty)
  | SAssign (l, e) -> (
      let kr = check_expr ctx e in
      let i = lookup ctx l.lv_name in
      match l.lv_index with
      | [] ->
          if i.rank = 0 then begin
            if not (assignable ~to_:i.ty ~from:kr.vty) then
              error ctx "assigning %s to %s %s" (ty_to_string kr.vty)
                (ty_to_string i.ty) l.lv_name;
            if ctx.simd && (not i.plural) && kr.vplural then
              error ctx
                "plural value assigned to front-end scalar %s (declare it \
                 PLURAL)"
                l.lv_name
          end
          else if kr.vrank = 0 || kr.vrank = i.rank then begin
            (* whole-array fill or copy *)
            if not (assignable ~to_:i.ty ~from:kr.vty) then
              error ctx "assigning %s into %s array %s"
                (ty_to_string kr.vty) (ty_to_string i.ty) l.lv_name
          end
          else
            error ctx "rank mismatch assigning to whole array %s" l.lv_name
      | idxs ->
          ignore
            (check_expr ctx (EIdx (l.lv_name, idxs)) : value_kind);
          if not (assignable ~to_:i.ty ~from:kr.vty) then
            error ctx "assigning %s to element of %s array %s"
              (ty_to_string kr.vty) (ty_to_string i.ty) l.lv_name)
  | SCall (_, args) -> List.iter (fun a -> ignore (check_expr ctx a)) args
  | SIf (c, t, f) ->
      let k = check_expr ctx c in
      if k.vty <> Logical then
        error ctx "IF condition is %s" (ty_to_string k.vty);
      if ctx.simd && k.vplural then
        error ctx "IF over a plural condition; use WHERE";
      check_block ctx t;
      check_block ctx f
  | SWhere (c, t, f) ->
      let k = check_expr ctx c in
      if k.vty <> Logical then
        error ctx "WHERE condition is %s" (ty_to_string k.vty);
      if ctx.simd && not k.vplural then
        warn ctx "WHERE over a front-end condition (behaves as IF)";
      check_block ctx t;
      check_block ctx f
  | SWhile (c, b) ->
      let k = check_expr ctx c in
      if k.vty <> Logical then
        error ctx "WHILE condition is %s" (ty_to_string k.vty);
      if ctx.simd && k.vplural then
        error ctx
          "WHILE over a plural condition; reduce it (WHILE ANY(...)) and \
           guard the body with WHERE";
      check_block ctx b
  | SDoWhile (b, c) ->
      check_block ctx b;
      let k = check_expr ctx c in
      if k.vty <> Logical then
        error ctx "UNTIL condition is %s" (ty_to_string k.vty)
  | SDo (c, b) | SForall (c, b) ->
      let i = lookup ctx c.d_var in
      if i.ty <> Int then
        error ctx "loop variable %s is %s" c.d_var (ty_to_string i.ty);
      if i.rank > 0 then error ctx "loop variable %s is an array" c.d_var;
      let bound what e =
        let k = check_expr ctx e in
        if k.vty <> Int then
          error ctx "%s of DO %s is %s" what c.d_var (ty_to_string k.vty);
        if ctx.simd && k.vplural && not i.plural then
          error ctx
            "front-end DO %s has a plural %s; reduce it (MAXVAL/MINVAL)"
            c.d_var what
      in
      bound "lower bound" c.d_lo;
      bound "upper bound" c.d_hi;
      Option.iter (bound "stride") c.d_step;
      check_block ctx b

and check_block ctx b = List.iter (check_stmt ctx) b

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

type report = {
  errors : diagnostic list;
  warnings : diagnostic list;
}

let ok r = r.errors = []

let pp_report ppf r =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any "@.") pp_diagnostic)
    (r.errors @ r.warnings)

(** Check a program.  [funcs] declares external functions and their result
    types; [params] pre-declares driver-seeded scalars; [simd] enforces
    the plural discipline (defaults to true iff the program declares any
    PLURAL variable). *)
let check_program ?(funcs = []) ?(params = []) ?simd (p : program) : report =
  let simd =
    match simd with
    | Some b -> b
    | None -> List.exists (fun d -> d.dc_plural) p.p_decls
  in
  let ctx =
    {
      vars = Hashtbl.create 32;
      diags = [];
      known_funcs = Hashtbl.create 8;
      simd;
    }
  in
  List.iter
    (fun (name, ty) ->
      Hashtbl.replace ctx.known_funcs (String.lowercase_ascii name) ty)
    funcs;
  List.iter
    (fun (name, ty) ->
      Hashtbl.replace ctx.vars name
        { ty; rank = 0; plural = false; declared = true })
    params;
  (* the predefined plural processor index *)
  Hashtbl.replace ctx.vars "iproc"
    { ty = Int; rank = 0; plural = true; declared = true };
  List.iter
    (fun d ->
      if Hashtbl.mem ctx.vars d.dc_name && d.dc_name <> "iproc" then
        warn ctx "%s declared more than once" d.dc_name;
      List.iter (fun e -> expect_index ctx "array dimension" e) d.dc_dims;
      Hashtbl.replace ctx.vars d.dc_name
        {
          ty = ty_of_dtype d.dc_type;
          rank = List.length d.dc_dims;
          plural = d.dc_plural;
          declared = true;
        })
    p.p_decls;
  check_block ctx p.p_body;
  let diags = List.rev ctx.diags in
  {
    errors = List.filter (fun d -> d.severity = Error) diags;
    warnings = List.filter (fun d -> d.severity = Warning) diags;
  }

(** Check a bare block (everything implicit). *)
let check_block_standalone ?(funcs = []) ?(simd = false) (b : block) : report
    =
  check_program ~funcs ~simd (Ast.program "fragment" b)
