(** Abstract syntax for the pseudo-Fortran dialects of the paper (Section 2).

    One AST covers all four dialects:
    - F77: [SDo], [SWhile], [SDoWhile], [SIf], [SGoto]/[SLabel] loops;
    - F77D: F77 plus the Fortran D directives ([DDecomposition], [DAlign],
      [DDistribute]);
    - F77_MIMD: F77 with a per-processor name space (produced by the
      decomposition pass, executed by [Lf_mimd]);
    - F90_SIMD: adds [SForall], [SWhere], plural variables and the
      vector-controlled [SWhile] of Section 2 ("WHILE loops can be
      controlled by an array of booleans"). *)

type dtype =
  | TInt
  | TReal
  | TLogical

type unop =
  | Neg
  | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Pow
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

(** Expressions.  Intrinsic function calls ([ECall]) cover MAX, MIN, ABS,
    MOD, ANY, ALL, MAXVAL, MINVAL, SUM, SIZE and user-registered pure
    functions.  [ERange] is the Fortran 90 section [lo:hi], used in
    vector-literal positions such as [at1 = [1:P]]. *)
type expr =
  | EInt of int
  | EReal of float
  | EBool of bool
  | EVar of string
  | EIdx of string * expr list
  | EUn of unop * expr
  | EBin of binop * expr * expr
  | ECall of string * expr list
  | ERange of expr * expr

(** Left-hand sides: a scalar variable or an array element / section.  An
    empty index list on an array variable denotes the whole array (Fortran 90
    convention of Section 2). *)
type lvalue = {
  lv_name : string;
  lv_index : expr list;
}

(** DO-loop control: [DO var = lo, hi, step]; [step] defaults to 1. *)
type do_control = {
  d_var : string;
  d_lo : expr;
  d_hi : expr;
  d_step : expr option;
}

type stmt =
  | SAssign of lvalue * expr
  | SDo of do_control * block
  | SWhile of expr * block  (** pre-test loop; in F90simd the test may be a reduction such as ANY(...) *)
  | SDoWhile of block * expr  (** post-test loop: body runs, repeats while the condition holds *)
  | SIf of expr * block * block
  | SForall of do_control * block  (** parallel loop; iterations are independent by assertion *)
  | SWhere of expr * block * block  (** masked execution; second block is ELSEWHERE *)
  | SCall of string * expr list  (** subroutine call (may have side effects) *)
  | SGoto of string
  | SCondGoto of expr * string  (** IF (e) GOTO label *)
  | SLabel of string
  | SComment of string
  | SLoc of Errors.pos * stmt
      (** source-location wrapper added by the parser; transparent to
          pretty-printing and structural equality *)

and block = stmt list

(** Fortran D data-mapping directives (Figure 2). *)
type distribution =
  | DistBlock
  | DistCyclic
  | DistSerial  (** the ["*"] / [:serial] dimension: laid out in local memory *)

type directive =
  | DDecomposition of string * expr list
  | DAlign of string * string  (** ALIGN array WITH decomposition *)
  | DDistribute of string * distribution list

(** A declaration; [dc_plural] marks F90simd replicated variables (declared
    per-processor, Section 2: "scalars of the F77 version will be replicated
    in the F90simd version"). *)
type decl = {
  dc_name : string;
  dc_type : dtype;
  dc_dims : expr list;  (** empty for scalars *)
  dc_plural : bool;
}

type program = {
  p_name : string;
  p_decls : decl list;
  p_directives : directive list;
  p_body : block;
}

(* Constructors used pervasively by the transformation passes. *)

let int_ n = EInt n
let var v = EVar v
let idx v es = EIdx (v, es)
let ( +: ) a b = EBin (Add, a, b)
let ( -: ) a b = EBin (Sub, a, b)
let ( *: ) a b = EBin (Mul, a, b)
let ( <=: ) a b = EBin (Le, a, b)
let ( <: ) a b = EBin (Lt, a, b)
let ( =: ) a b = EBin (Eq, a, b)
let ( &&: ) a b = EBin (And, a, b)
let ( ||: ) a b = EBin (Or, a, b)
let not_ e = EUn (Not, e)

let lv ?(index = []) name = { lv_name = name; lv_index = index }
let assign ?(index = []) name e = SAssign (lv ~index name, e)

let do_control ?step d_var d_lo d_hi = { d_var; d_lo; d_hi; d_step = step }

let scalar ?(plural = false) dc_type dc_name =
  { dc_name; dc_type; dc_dims = []; dc_plural = plural }

let array ?(plural = false) dc_type dc_name dc_dims =
  { dc_name; dc_type; dc_dims; dc_plural = plural }

let program ?(decls = []) ?(directives = []) name body =
  { p_name = name; p_decls = decls; p_directives = directives; p_body = body }

(* Source locations.  The parser wraps every statement it produces in
   [SLoc]; everything that treats programs structurally (equality, the
   transformation passes, the pretty-printer) looks through the wrapper. *)

let with_loc loc s = if loc = Errors.no_pos then s else SLoc (loc, s)

(** Innermost location of a statement, if any. *)
let rec loc_of = function
  | SLoc (loc, s) -> (
      match loc_of s with Some _ as l -> l | None -> Some loc)
  | _ -> None

(** First source location appearing in a block, if any. *)
let rec block_loc = function
  | [] -> None
  | s :: rest -> ( match loc_of s with Some _ as l -> l | None -> block_loc rest)

(** Remove the [SLoc] wrappers on one statement (not its sub-blocks). *)
let rec strip_loc = function SLoc (_, s) -> strip_loc s | s -> s

(** Remove every [SLoc] wrapper, recursively.  The transformation passes
    pattern-match deeply on statement shapes, so [Pipeline] strips
    locations before running them. *)
let rec strip_locs_stmt s =
  match strip_loc s with
  | SDo (c, b) -> SDo (c, strip_locs_block b)
  | SWhile (e, b) -> SWhile (e, strip_locs_block b)
  | SDoWhile (b, e) -> SDoWhile (strip_locs_block b, e)
  | SIf (e, t, f) -> SIf (e, strip_locs_block t, strip_locs_block f)
  | SForall (c, b) -> SForall (c, strip_locs_block b)
  | SWhere (e, t, f) -> SWhere (e, strip_locs_block t, strip_locs_block f)
  | (SAssign _ | SCall _ | SGoto _ | SCondGoto _ | SLabel _ | SComment _) as s
    ->
      s
  | SLoc _ -> assert false

and strip_locs_block b = List.map strip_locs_stmt b

let strip_locs_program (p : program) =
  { p with p_body = strip_locs_block p.p_body }

(** Structural equality, ignoring comments and source locations. *)
let rec equal_block (a : block) (b : block) =
  let strip =
    List.filter (fun s ->
        match strip_loc s with SComment _ -> false | _ -> true)
  in
  let a = strip a and b = strip b in
  List.length a = List.length b && List.for_all2 equal_stmt a b

and equal_stmt (a : stmt) (b : stmt) =
  match (strip_loc a, strip_loc b) with
  | SAssign (l1, e1), SAssign (l2, e2) -> l1 = l2 && e1 = e2
  | SDo (c1, b1), SDo (c2, b2) -> c1 = c2 && equal_block b1 b2
  | SWhile (e1, b1), SWhile (e2, b2) -> e1 = e2 && equal_block b1 b2
  | SDoWhile (b1, e1), SDoWhile (b2, e2) -> e1 = e2 && equal_block b1 b2
  | SIf (e1, t1, f1), SIf (e2, t2, f2) ->
      e1 = e2 && equal_block t1 t2 && equal_block f1 f2
  | SForall (c1, b1), SForall (c2, b2) -> c1 = c2 && equal_block b1 b2
  | SWhere (e1, t1, f1), SWhere (e2, t2, f2) ->
      e1 = e2 && equal_block t1 t2 && equal_block f1 f2
  | SCall (n1, a1), SCall (n2, a2) -> n1 = n2 && a1 = a2
  | SGoto l1, SGoto l2 | SLabel l1, SLabel l2 -> l1 = l2
  | SCondGoto (e1, l1), SCondGoto (e2, l2) -> e1 = e2 && l1 = l2
  | SComment _, SComment _ -> true
  | _ -> false

let equal_program (a : program) (b : program) =
  a.p_name = b.p_name && a.p_decls = b.p_decls
  && a.p_directives = b.p_directives
  && equal_block a.p_body b.p_body
