(** Scalar operator semantics shared by the sequential interpreter and
    both SIMD engines — the single definition of what each [Ast.binop] /
    [Ast.unop] means on runtime values (promotion, division by zero,
    integer vs real [Pow]). *)

(** Numeric promotion combinator: int×int, bool×bool, and mixed
    numeric-to-real cases; raises on any other pairing. *)
val promote2 :
  (int -> int -> 'a) ->
  (float -> float -> 'a) ->
  (bool -> bool -> 'a) ->
  Values.value ->
  Values.value ->
  'a

val apply_binop : Ast.binop -> Values.value -> Values.value -> Values.value
val apply_unop : Ast.unop -> Values.value -> Values.value
