(** Scalar operator semantics shared by every execution engine.

    Both the sequential interpreter ([Interp]) and the two SIMD engines
    (the tree-walking [Lf_simd.Vm] and the compiled [Lf_simd.Compile])
    must agree exactly on what [a + b] means for every value pair —
    promotion rules, division-by-zero behaviour, the integer/real [Pow]
    split.  Keeping a single definition here is what makes the engines
    provably interchangeable: there is one [apply_binop], not three. *)

open Values

let promote2 fi fr fc a b =
  match (a, b) with
  | VInt x, VInt y -> fi x y
  | VBool x, VBool y -> fc x y
  | (VInt _ | VReal _), (VInt _ | VReal _) -> fr (as_float a) (as_float b)
  | _ ->
      Errors.runtime_error "type mismatch in binary operation: %s vs %s"
        (type_name a) (type_name b)

let apply_binop op a b =
  let arith fi fr =
    promote2
      (fun x y -> VInt (fi x y))
      (fun x y -> VReal (fr x y))
      (fun _ _ -> Errors.runtime_error "arithmetic on LOGICAL")
      a b
  in
  let cmp fi fr =
    promote2
      (fun x y -> VBool (fi (compare x y) 0))
      (fun x y -> VBool (fr (compare x y) 0))
      (fun x y -> VBool (fi (compare x y) 0))
      a b
  in
  match op with
  | Ast.Add -> arith ( + ) ( +. )
  | Ast.Sub -> arith ( - ) ( -. )
  | Ast.Mul -> arith ( * ) ( *. )
  | Ast.Div -> (
      match (a, b) with
      | VInt x, VInt y ->
          if y = 0 then Errors.runtime_error "integer division by zero"
          else VInt (x / y)
      | _ -> VReal (as_float a /. as_float b))
  | Ast.Mod -> (
      match (a, b) with
      | VInt x, VInt y ->
          if y = 0 then Errors.runtime_error "MOD by zero" else VInt (x mod y)
      | _ -> VReal (Float.rem (as_float a) (as_float b)))
  | Ast.Pow -> (
      match (a, b) with
      | VInt x, VInt y when y >= 0 ->
          let rec go acc n = if n = 0 then acc else go (acc * x) (n - 1) in
          VInt (go 1 y)
      | _ -> VReal (Float.pow (as_float a) (as_float b)))
  | Ast.Eq -> cmp ( = ) ( = )
  | Ast.Ne -> cmp ( <> ) ( <> )
  | Ast.Lt -> cmp ( < ) ( < )
  | Ast.Le -> cmp ( <= ) ( <= )
  | Ast.Gt -> cmp ( > ) ( > )
  | Ast.Ge -> cmp ( >= ) ( >= )
  | Ast.And -> VBool (as_bool a && as_bool b)
  | Ast.Or -> VBool (as_bool a || as_bool b)

let apply_unop op v =
  match (op, v) with
  | Ast.Neg, VInt n -> VInt (-n)
  | Ast.Neg, VReal f -> VReal (-.f)
  | Ast.Not, VBool b -> VBool (not b)
  | _, VArr _ -> Errors.runtime_error "unlifted unary op on array"
  | _ ->
      Errors.runtime_error "bad operand %s for unary operation" (type_name v)
