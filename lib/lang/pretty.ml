(** Pretty-printer for [Ast] terms, producing parseable pseudo-Fortran.

    The printer and [Parser] form a round-trip: [parse (print ast)]
    re-produces [ast] up to comments (property-tested in the test suite). *)

open Ast

let dtype_to_string = function
  | TInt -> "INTEGER"
  | TReal -> "REAL"
  | TLogical -> "LOGICAL"

let binop_info = function
  | Or -> (".OR.", 1)
  | And -> (".AND.", 2)
  | Eq -> ("==", 4)
  | Ne -> ("/=", 4)
  | Lt -> ("<", 4)
  | Le -> ("<=", 4)
  | Gt -> (">", 4)
  | Ge -> (">=", 4)
  | Add -> ("+", 5)
  | Sub -> ("-", 5)
  | Mul -> ("*", 6)
  | Div -> ("/", 6)
  | Mod -> ("MOD", 6)
  | Pow -> ("**", 8)

let rec pp_expr_prec prec ppf e =
  match e with
  | EInt n -> Fmt.int ppf n
  | EReal f ->
      if Float.is_integer f && Float.abs f < 1e16 then
        Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%g" f
  | EBool true -> Fmt.string ppf ".TRUE."
  | EBool false -> Fmt.string ppf ".FALSE."
  | EVar v -> Fmt.string ppf v
  | EIdx (v, idxs) -> Fmt.pf ppf "%s(%a)" v pp_index_list idxs
  | ECall ("vector", [ (ERange _ as r) ]) -> Fmt.pf ppf "[%a]" pp_range r
  | ECall ("vector", items) ->
      Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") (pp_expr_prec 0)) items
  | ECall (f, args) -> Fmt.pf ppf "%s(%a)" f pp_index_list args
  | EUn (Neg, a) ->
      if prec > 7 then Fmt.pf ppf "(-%a)" (pp_expr_prec 7) a
      else Fmt.pf ppf "-%a" (pp_expr_prec 7) a
  | EUn (Not, a) ->
      if prec > 3 then Fmt.pf ppf "(.NOT. %a)" (pp_expr_prec 3) a
      else Fmt.pf ppf ".NOT. %a" (pp_expr_prec 3) a
  | EBin (Mod, a, b) -> Fmt.pf ppf "mod(%a, %a)" (pp_expr_prec 0) a (pp_expr_prec 0) b
  | EBin (op, a, b) ->
      let sym, p = binop_info op in
      let lhs, rhs =
        match op with
        | Pow -> (p + 1, p)  (* right-associative *)
        | Eq | Ne | Lt | Le | Gt | Ge -> (p + 1, p + 1)  (* non-associative *)
        | _ -> (p, p + 1)  (* left-associative *)
      in
      if prec > p then
        Fmt.pf ppf "(%a %s %a)" (pp_expr_prec lhs) a sym (pp_expr_prec rhs) b
      else Fmt.pf ppf "%a %s %a" (pp_expr_prec lhs) a sym (pp_expr_prec rhs) b
  | ERange (lo, hi) ->
      Fmt.pf ppf "%a:%a" (pp_expr_prec 0) lo (pp_expr_prec 0) hi

and pp_range ppf = function
  | ERange (lo, hi) -> Fmt.pf ppf "%a:%a" (pp_expr_prec 0) lo (pp_expr_prec 0) hi
  | e -> pp_expr_prec 0 ppf e

and pp_index_list ppf idxs =
  Fmt.(list ~sep:(any ", ") pp_range) ppf idxs

let pp_expr = pp_expr_prec 0
let expr_to_string e = Fmt.str "%a" pp_expr e

let pp_lvalue ppf (l : lvalue) =
  match l.lv_index with
  | [] -> Fmt.string ppf l.lv_name
  | idxs -> Fmt.pf ppf "%s(%a)" l.lv_name pp_index_list idxs

let pp_do_control ppf (c : do_control) =
  Fmt.pf ppf "%s = %a, %a" c.d_var pp_expr c.d_lo pp_expr c.d_hi;
  match c.d_step with
  | Some s -> Fmt.pf ppf ", %a" pp_expr s
  | None -> ()

let pp_forall_control ppf (c : do_control) =
  Fmt.pf ppf "(%s = %a:%a" c.d_var pp_expr c.d_lo pp_expr c.d_hi;
  (match c.d_step with
  | Some s -> Fmt.pf ppf ", %a" pp_expr s
  | None -> ());
  Fmt.string ppf ")"

let rec pp_stmt ind ppf s =
  let pad = String.make (2 * ind) ' ' in
  let block = pp_block (ind + 1) in
  match s with
  | SLoc (_, s) -> pp_stmt ind ppf s
  | SAssign (l, e) -> Fmt.pf ppf "%s%a = %a" pad pp_lvalue l pp_range e
  | SDo (c, b) ->
      Fmt.pf ppf "%sDO %a@\n%a@\n%sENDDO" pad pp_do_control c block b pad
  | SWhile (e, b) ->
      Fmt.pf ppf "%sWHILE (%a)@\n%a@\n%sENDWHILE" pad pp_expr e block b pad
  | SDoWhile (b, e) ->
      Fmt.pf ppf "%sREPEAT@\n%a@\n%sUNTIL (%a)" pad block b pad pp_expr e
  | SIf (e, t, []) ->
      Fmt.pf ppf "%sIF (%a) THEN@\n%a@\n%sENDIF" pad pp_expr e block t pad
  | SIf (e, t, f) ->
      Fmt.pf ppf "%sIF (%a) THEN@\n%a@\n%sELSE@\n%a@\n%sENDIF" pad pp_expr e
        block t pad block f pad
  | SForall (c, b) ->
      Fmt.pf ppf "%sFORALL %a@\n%a@\n%sENDFORALL" pad pp_forall_control c
        block b pad
  | SWhere (e, t, []) ->
      Fmt.pf ppf "%sWHERE (%a)@\n%a@\n%sENDWHERE" pad pp_expr e block t pad
  | SWhere (e, t, f) ->
      Fmt.pf ppf "%sWHERE (%a)@\n%a@\n%sELSEWHERE@\n%a@\n%sENDWHERE" pad
        pp_expr e block t pad block f pad
  | SCall (n, []) -> Fmt.pf ppf "%sCALL %s" pad n
  | SCall (n, args) -> Fmt.pf ppf "%sCALL %s(%a)" pad n pp_index_list args
  | SGoto l -> Fmt.pf ppf "%sGOTO %s" pad l
  | SCondGoto (e, l) -> Fmt.pf ppf "%sIF (%a) GOTO %s" pad pp_expr e l
  | SLabel l -> Fmt.pf ppf "%s CONTINUE" l
  | SComment c -> Fmt.pf ppf "%s! %s" pad c

and pp_block ind ppf (b : block) =
  (* a label is printed fused with the following statement when possible *)
  let rec go ppf = function
    | [] -> ()
    | [ s ] -> pp_stmt ind ppf s
    | a :: (b :: rest as tail) -> (
        (* look through SLoc so labels still fuse with located statements *)
        match (strip_loc a, strip_loc b) with
        | SLabel l, (SAssign _ | SCall _ | SGoto _ | SCondGoto _) ->
            let body = Fmt.str "%a" (pp_stmt 0) b in
            Fmt.pf ppf "%s %s@\n%a" l (String.trim body) go rest
        | _ -> Fmt.pf ppf "%a@\n%a" (pp_stmt ind) a go tail)
  in
  go ppf b

let pp_decl ppf (d : decl) =
  let plural = if d.dc_plural then "PLURAL " else "" in
  match d.dc_dims with
  | [] -> Fmt.pf ppf "%s%s %s" plural (dtype_to_string d.dc_type) d.dc_name
  | dims ->
      Fmt.pf ppf "%s%s %s(%a)" plural (dtype_to_string d.dc_type) d.dc_name
        pp_index_list dims

let distribution_to_string = function
  | DistBlock -> "BLOCK"
  | DistCyclic -> "CYCLIC"
  | DistSerial -> "*"

let pp_directive ppf = function
  | DDecomposition (n, dims) ->
      Fmt.pf ppf "DECOMPOSITION %s(%a)" n pp_index_list dims
  | DAlign (a, d) -> Fmt.pf ppf "ALIGN %s WITH %s" a d
  | DDistribute (d, dists) ->
      Fmt.pf ppf "DISTRIBUTE %s(%s)" d
        (String.concat ", " (List.map distribution_to_string dists))

let pp_program ppf (p : program) =
  Fmt.pf ppf "PROGRAM %s@\n" p.p_name;
  List.iter (fun d -> Fmt.pf ppf "  %a@\n" pp_decl d) p.p_decls;
  List.iter (fun d -> Fmt.pf ppf "  %a@\n" pp_directive d) p.p_directives;
  Fmt.pf ppf "%a@\nEND@\n" (pp_block 1) p.p_body

let program_to_string p = Fmt.str "%a" pp_program p
let block_to_string b = Fmt.str "%a" (pp_block 0) b
let stmt_to_string s = Fmt.str "%a" (pp_stmt 0) s
