(** Sequential (F77 / F90 scalar) interpreter.

    Executes a [Ast.program] or [Ast.block] against a mutable environment.
    Supports the full statement set including GOTO loops (labels are scoped
    to the block that contains them), Fortran-90 whole-array assignment and
    contiguous sections, and external subroutines registered by the caller.

    The interpreter records an *observation trace* — the sequence of external
    subroutine calls with their (scalarized) arguments — which the
    translation-validation pass in [Lf_core.Validate] compares across
    transformed program versions. *)

open Ast
open Values

type observation = {
  ob_proc : string;
  ob_args : value list;
}

type proc = t -> value list -> unit

and t = {
  env : Env.t;
  mutable fuel : int;
  mutable steps : int;  (** statements executed, comments excluded *)
  mutable obs : observation list;  (** reversed *)
  procs : (string, proc) Hashtbl.t;
  funcs : (string, value list -> value) Hashtbl.t;
  mutable cur_loc : Errors.pos;
      (** location of the innermost [SLoc]-wrapped statement being executed *)
  mutable step_hook : (Errors.pos -> unit) option;
      (** called once per counted step with the current source location;
          used by [Lf_mimd] for per-line time attribution.  [None] costs
          one branch per step. *)
}

exception Jump of string

(** Process-wide statement-dispatch hook: called once per executed
    statement with its kind ("assign", "if", "do", ...), before the
    statement runs.  The observability layer (which sits above this
    library and therefore cannot be referenced here) installs a counter
    here while telemetry is enabled; [None] — the default — costs one
    load and branch per statement. *)
let dispatch_hook : (string -> unit) option ref = ref None

let dispatched kind =
  match !dispatch_hook with None -> () | Some h -> h kind

let default_fuel = 10_000_000

let create ?(fuel = default_fuel) () =
  {
    env = Env.create ();
    fuel;
    steps = 0;
    obs = [];
    procs = Hashtbl.create 8;
    funcs = Hashtbl.create 8;
    cur_loc = Errors.no_pos;
    step_hook = None;
  }

let register_proc ctx name f = Hashtbl.replace ctx.procs (String.lowercase_ascii name) f
let register_func ctx name f = Hashtbl.replace ctx.funcs (String.lowercase_ascii name) f
let observations ctx = List.rev ctx.obs

let tick ctx =
  ctx.steps <- ctx.steps + 1;
  (match ctx.step_hook with None -> () | Some h -> h ctx.cur_loc);
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then Errors.runtime_error "fuel exhausted (infinite loop?)"

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

(* The scalar operator semantics live in [Scalar_ops], shared with the
   SIMD engines; the historical names are kept as aliases. *)
let apply_binop = Scalar_ops.apply_binop

(** Elementwise lifting of a binary operation over arrays / scalars. *)
let rec lift_binop op a b =
  match (a, b) with
  | VArr x, VArr y ->
      let n = arr_size x in
      if n <> arr_size y then
        Errors.runtime_error "shape mismatch in elementwise operation";
      let elems =
        Array.init n (fun i ->
            apply_binop op (arr_get_flat x i) (arr_get_flat y i))
      in
      pack_array (arr_dims x) elems
  | VArr x, y ->
      let n = arr_size x in
      let elems = Array.init n (fun i -> apply_binop op (arr_get_flat x i) y) in
      pack_array (arr_dims x) elems
  | x, VArr y ->
      let n = arr_size y in
      let elems = Array.init n (fun i -> apply_binop op x (arr_get_flat y i)) in
      pack_array (arr_dims y) elems
  | _ -> apply_binop op a b

and pack_array dims (elems : value array) : value =
  if Array.length elems = 0 then VArr (AInt (Nd.create dims 0))
  else
    match elems.(0) with
    | VInt _ ->
        VArr (AInt { Nd.dims; data = Array.map as_int elems })
    | VReal _ ->
        VArr (AReal { Nd.dims; data = Array.map as_float elems })
    | VBool _ ->
        VArr (ABool { Nd.dims; data = Array.map as_bool elems })
    | VArr _ -> Errors.runtime_error "nested array value"

let apply_unop = Scalar_ops.apply_unop

let lift_unop op = function
  | VArr x ->
      let elems =
        Array.init (arr_size x) (fun i -> apply_unop op (arr_get_flat x i))
      in
      pack_array (arr_dims x) elems
  | v -> apply_unop op v

type index_sel = [ `One of int | `Range of int * int ]

let rec eval ctx (e : expr) : value =
  match e with
  | EInt n -> VInt n
  | EReal f -> VReal f
  | EBool b -> VBool b
  | EVar v -> Env.find ctx.env v
  | EUn (op, a) -> lift_unop op (eval ctx a)
  | EBin (op, a, b) ->
      (* operands evaluate left to right on every engine: error order
         (e.g. which undefined variable is reported) is observable *)
      let va = eval ctx a in
      let vb = eval ctx b in
      lift_binop op va vb
  | ERange (lo, hi) ->
      let lo = as_int (eval ctx lo) in
      let hi = as_int (eval ctx hi) in
      VArr (AInt (Nd.of_array (Array.init (max 0 (hi - lo + 1)) (fun i -> lo + i))))
  | ECall (name, args) -> eval_call ctx name args
  | EIdx (name, args) -> (
      match Env.find_opt ctx.env name with
      | Some (VArr a) -> eval_index ctx a args
      | Some v ->
          Errors.runtime_error "%s is a scalar (%s) but is indexed" name
            (type_name v)
      | None -> eval_call ctx name args)

and eval_call ctx name args =
  let key = String.lowercase_ascii name in
  match Hashtbl.find_opt ctx.funcs key with
  | Some f -> f (List.map (eval ctx) args)
  | None -> (
      let vargs = List.map (eval ctx) args in
      match Intrinsics.apply name vargs with
      | Some v -> v
      | None -> Errors.runtime_error "unknown function or array %s" name)

and eval_index ctx a args : value =
  let sels = List.map (eval_sel ctx) args in
  if List.for_all (function `One _ -> true | _ -> false) sels then
    arr_get a (Array.of_list (List.map (function `One i -> i | _ -> 0) sels))
  else
    match a with
    | AInt x -> VArr (AInt (Nd.slice x sels))
    | AReal x -> VArr (AReal (Nd.slice x sels))
    | ABool x -> VArr (ABool (Nd.slice x sels))

and eval_sel ctx (e : expr) : index_sel =
  match e with
  | ERange (lo, hi) ->
      let lo = as_int (eval ctx lo) in
      `Range (lo, as_int (eval ctx hi))
  | e -> `One (as_int (eval ctx e))

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let assign ctx (l : lvalue) (v : value) =
  match (Env.find_opt ctx.env l.lv_name, l.lv_index) with
  | (None | Some (VInt _ | VReal _ | VBool _)), [] ->
      Env.set ctx.env l.lv_name v
  | Some (VArr a), [] -> (
      (* whole-array assignment: scalar broadcast or matching copy *)
      match v with
      | VArr src ->
          if arr_size src <> arr_size a then
            Errors.runtime_error "shape mismatch assigning to %s" l.lv_name;
          for i = 0 to arr_size a - 1 do
            arr_set_flat a i (arr_get_flat src i)
          done
      | v -> arr_fill a v)
  | Some (VArr a), idxs -> (
      let sels = List.map (eval_sel ctx) idxs in
      if List.for_all (function `One _ -> true | _ -> false) sels then
        arr_set a
          (Array.of_list (List.map (function `One i -> i | _ -> 0) sels))
          v
      else
        let spec = sels in
        match (a, v) with
        | AInt d, VArr (AInt s) -> Nd.blit_slice d spec (`Array s)
        | AReal d, VArr (AReal s) -> Nd.blit_slice d spec (`Array s)
        | ABool d, VArr (ABool s) -> Nd.blit_slice d spec (`Array s)
        | AInt d, (VInt _ as s) -> Nd.blit_slice d spec (`Scalar (as_int s))
        | AReal d, s -> Nd.blit_slice d spec (`Scalar (as_float s))
        | ABool d, (VBool _ as s) -> Nd.blit_slice d spec (`Scalar (as_bool s))
        | _ ->
            Errors.runtime_error "type mismatch in section assignment to %s"
              l.lv_name)
  | None, _ :: _ ->
      Errors.runtime_error "assignment to undeclared array %s" l.lv_name
  | Some v', _ :: _ ->
      Errors.runtime_error "%s is a scalar (%s) but is indexed" l.lv_name
        (type_name v')

let rec exec_block ctx (b : block) =
  let stmts = Array.of_list b in
  let n = Array.length stmts in
  let label_at lbl =
    let found = ref (-1) in
    Array.iteri
      (fun i s -> if strip_loc s = SLabel lbl && !found < 0 then found := i)
      stmts;
    !found
  in
  let pc = ref 0 in
  while !pc < n do
    (try
       exec_stmt ctx stmts.(!pc);
       incr pc
     with Jump lbl ->
       let target = label_at lbl in
       if target >= 0 then pc := target + 1 else raise (Jump lbl))
  done

and exec_stmt ctx (s : stmt) =
  match s with
  | SLoc (loc, s) ->
      (* Runtime errors from within [s] are attributed to [loc]; the
         innermost located statement wins because already-located errors
         pass through unchanged.  [Jump] is ordinary control flow and is
         re-raised untouched. *)
      let saved = ctx.cur_loc in
      ctx.cur_loc <- loc;
      (try exec_stmt ctx s
       with e -> (
         ctx.cur_loc <- saved;
         match e with
         | Errors.Runtime_error m -> raise (Errors.Runtime_error_at (loc, m))
         | e -> raise e));
      ctx.cur_loc <- saved
  | SComment _ | SLabel _ -> ()
  | SAssign (l, e) ->
      dispatched "assign";
      tick ctx;
      assign ctx l (eval ctx e)
  | SCall (name, args) -> (
      dispatched "call";
      tick ctx;
      let key = String.lowercase_ascii name in
      match Hashtbl.find_opt ctx.procs key with
      | Some f ->
          let vargs = List.map (eval ctx) args in
          ctx.obs <- { ob_proc = key; ob_args = vargs } :: ctx.obs;
          f ctx vargs
      | None -> Errors.runtime_error "unknown subroutine %s" name)
  | SGoto l ->
      dispatched "goto";
      tick ctx;
      raise (Jump l)
  | SCondGoto (e, l) ->
      dispatched "cond_goto";
      tick ctx;
      if as_bool (eval ctx e) then raise (Jump l)
  | SIf (e, t, f) ->
      dispatched "if";
      tick ctx;
      if as_bool (eval ctx e) then exec_block ctx t else exec_block ctx f
  | SWhile (e, b) ->
      dispatched "while";
      tick ctx;
      while as_bool (eval ctx e) do
        exec_block ctx b;
        tick ctx
      done
  | SDoWhile (b, e) ->
      dispatched "do_while";
      let continue_ = ref true in
      while !continue_ do
        exec_block ctx b;
        tick ctx;
        continue_ := as_bool (eval ctx e)
      done
  | SDo (c, b) ->
      dispatched "do";
      exec_counted ctx c b
  | SForall (c, b) ->
      (* sequential semantics; independence of iterations is the
         transformation passes' responsibility to check *)
      dispatched "forall";
      exec_counted ctx c b
  | SWhere (e, t, f) ->
      (* scalar WHERE behaves as IF; the vector semantics lives in the
         SIMD VM *)
      dispatched "where";
      tick ctx;
      if as_bool (eval ctx e) then exec_block ctx t else exec_block ctx f

and exec_counted ctx (c : do_control) (b : block) =
  tick ctx;
  let lo = as_int (eval ctx c.d_lo) in
  let hi = as_int (eval ctx c.d_hi) in
  let step =
    match c.d_step with Some s -> as_int (eval ctx s) | None -> 1
  in
  if step = 0 then Errors.runtime_error "DO loop with zero step";
  let i = ref lo in
  let continue_ () = if step > 0 then !i <= hi else !i >= hi in
  while continue_ () do
    Env.set ctx.env c.d_var (VInt !i);
    exec_block ctx b;
    tick ctx;
    i := !i + step
  done;
  (* Fortran: the DO variable retains the first value that fails the test *)
  Env.set ctx.env c.d_var (VInt !i)

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)
(* ------------------------------------------------------------------ *)

(** Allocate declared variables.  Array dimensions are evaluated against
    the bindings already present in the context (e.g. problem-size
    parameters seeded by the caller). *)
let declare ctx (decls : decl list) =
  List.iter
    (fun d ->
      if not (Env.mem ctx.env d.dc_name) then
        if d.dc_dims = [] then Env.set ctx.env d.dc_name (zero_of d.dc_type)
        else
          let dims =
            Array.of_list (List.map (fun e -> as_int (eval ctx e)) d.dc_dims)
          in
          Env.set ctx.env d.dc_name (VArr (alloc_arr d.dc_type dims)))
    decls

(** Run a program.  [params] are seeded into the environment before
    declaration processing, so they can appear in array bounds. *)
(* A [Jump] that reaches the program's outermost block names a label
   that is not visible from the GOTO (labels resolve in the executing
   block and its enclosing blocks only); surface it as an ordinary
   runtime error rather than leaking the internal control exception. *)
let exec_top ctx (b : block) =
  try exec_block ctx b
  with Jump lbl ->
    Errors.runtime_error "GOTO %s: label not visible from this statement" lbl

let run ?(params = []) ?fuel ?(setup = fun _ -> ()) (p : program) =
  let ctx = create ?fuel () in
  List.iter (fun (k, v) -> Env.set ctx.env k v) params;
  setup ctx;
  declare ctx p.p_decls;
  exec_top ctx p.p_body;
  ctx

(** Run a bare block against a fresh context. *)
let run_block ?(params = []) ?fuel ?(setup = fun _ -> ()) (b : block) =
  let ctx = create ?fuel () in
  List.iter (fun (k, v) -> Env.set ctx.env k v) params;
  setup ctx;
  exec_top ctx b;
  ctx
