(** Runtime values of the sequential (F77) interpreter. *)

type arr =
  | AInt of int Nd.t
  | AReal of float Nd.t
  | ABool of bool Nd.t

type value =
  | VInt of int
  | VReal of float
  | VBool of bool
  | VArr of arr

let rec pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VReal f -> Fmt.float ppf f
  | VBool b -> Fmt.string ppf (if b then ".TRUE." else ".FALSE.")
  | VArr (AInt a) -> pp_arr ppf (Nd.map (fun n -> VInt n) a)
  | VArr (AReal a) -> pp_arr ppf (Nd.map (fun f -> VReal f) a)
  | VArr (ABool a) -> pp_arr ppf (Nd.map (fun b -> VBool b) a)

and pp_arr ppf a =
  Fmt.pf ppf "[|%a|]" Fmt.(list ~sep:(any "; ") pp) (Array.to_list (Nd.to_array a))

let to_string v = Fmt.str "%a" pp v

let type_name = function
  | VInt _ -> "INTEGER"
  | VReal _ -> "REAL"
  | VBool _ -> "LOGICAL"
  | VArr (AInt _) -> "INTEGER array"
  | VArr (AReal _) -> "REAL array"
  | VArr (ABool _) -> "LOGICAL array"

let as_int = function
  | VInt n -> n
  | VReal f when Float.is_integer f -> int_of_float f
  | v -> Errors.runtime_error "expected INTEGER, got %s" (type_name v)

let as_float = function
  | VInt n -> float_of_int n
  | VReal f -> f
  | v -> Errors.runtime_error "expected REAL, got %s" (type_name v)

let as_bool = function
  | VBool b -> b
  | v -> Errors.runtime_error "expected LOGICAL, got %s" (type_name v)

let as_arr = function
  | VArr a -> a
  | v -> Errors.runtime_error "expected array, got %s" (type_name v)

let arr_size = function
  | AInt a -> Nd.size a
  | AReal a -> Nd.size a
  | ABool a -> Nd.size a

let arr_dims = function
  | AInt a -> Nd.dims a
  | AReal a -> Nd.dims a
  | ABool a -> Nd.dims a

(** Element access as a scalar value. *)
let arr_get a idx =
  match a with
  | AInt a -> VInt (Nd.get a idx)
  | AReal a -> VReal (Nd.get a idx)
  | ABool a -> VBool (Nd.get a idx)

let arr_set a idx v =
  match a with
  | AInt a -> Nd.set a idx (as_int v)
  | AReal a -> Nd.set a idx (as_float v)
  | ABool a -> Nd.set a idx (as_bool v)

let arr_get_flat a i =
  match a with
  | AInt a -> VInt (Nd.get_flat a i)
  | AReal a -> VReal (Nd.get_flat a i)
  | ABool a -> VBool (Nd.get_flat a i)

let arr_set_flat a i v =
  match a with
  | AInt a -> Nd.set_flat a i (as_int v)
  | AReal a -> Nd.set_flat a i (as_float v)
  | ABool a -> Nd.set_flat a i (as_bool v)

let arr_fill a v =
  match a with
  | AInt a -> Nd.fill a (as_int v)
  | AReal a -> Nd.fill a (as_float v)
  | ABool a -> Nd.fill a (as_bool v)

let arr_copy = function
  | AInt a -> AInt (Nd.copy a)
  | AReal a -> AReal (Nd.copy a)
  | ABool a -> ABool (Nd.copy a)

let alloc_arr (ty : Ast.dtype) dims : arr =
  match ty with
  | Ast.TInt -> AInt (Nd.create dims 0)
  | Ast.TReal -> AReal (Nd.create dims 0.0)
  | Ast.TLogical -> ABool (Nd.create dims false)

let zero_of (ty : Ast.dtype) : value =
  match ty with
  | Ast.TInt -> VInt 0
  | Ast.TReal -> VReal 0.0
  | Ast.TLogical -> VBool false

let equal_value a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VReal x, VReal y -> Float.equal x y || Float.abs (x -. y) < 1e-12
  | VBool x, VBool y -> x = y
  | VArr (AInt x), VArr (AInt y) -> Nd.equal Int.equal x y
  | VArr (AReal x), VArr (AReal y) ->
      (* Float.equal first: identical non-finite elements (inf, nan)
         must compare equal even though their difference is nan *)
      Nd.equal (fun a b -> Float.equal a b || Float.abs (a -. b) < 1e-9) x y
  | VArr (ABool x), VArr (ABool y) -> Nd.equal Bool.equal x y
  | _ -> false
