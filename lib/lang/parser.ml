(** Recursive-descent parser for the pseudo-Fortran surface syntax.

    The grammar is small and LL(2); Menhir is deliberately not used (it is
    not available in the sealed environment, see DESIGN.md).  Statements are
    newline-terminated.  Numeric statement labels are parsed into [SLabel]
    statements preceding the labeled statement, and [CONTINUE] parses to a
    no-op, so classic GOTO loops round-trip. *)

open Ast
open Token

type t = {
  toks : (Errors.pos * Token.t) array;
  mutable cur : int;
}

let make toks = { toks = Array.of_list toks; cur = 0 }

let peek p = snd p.toks.(p.cur)
let peek_pos p = fst p.toks.(p.cur)

let advance p = if p.cur < Array.length p.toks - 1 then p.cur <- p.cur + 1

let error p fmt = Errors.parse_error (peek_pos p) fmt

let expect p tok =
  if peek p = tok then advance p
  else
    error p "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek p))

let expect_keyword p kw =
  match peek p with
  | KEYWORD k when k = kw -> advance p
  | t -> error p "expected %s but found %s" kw (Token.to_string t)

let accept p tok = if peek p = tok then (advance p; true) else false

let accept_keyword p kw =
  match peek p with
  | KEYWORD k when k = kw ->
      advance p;
      true
  | _ -> false

let ident p =
  match peek p with
  | IDENT s ->
      advance p;
      s
  | t -> error p "expected identifier, found %s" (Token.to_string t)

let skip_newlines p = while peek p = NEWLINE do advance p done

let end_of_stmt p =
  match peek p with
  | NEWLINE -> skip_newlines p
  | EOF -> ()
  | t -> error p "expected end of statement, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr p = parse_or p

and parse_or p =
  let lhs = parse_and p in
  if accept p OR then EBin (Or, lhs, parse_or p) else lhs

and parse_and p =
  let lhs = parse_not p in
  if accept p AND then EBin (And, lhs, parse_and p) else lhs

and parse_not p =
  if accept p NOT then EUn (Not, parse_not p) else parse_cmp p

and parse_cmp p =
  let lhs = parse_add p in
  let bin op = EBin (op, lhs, parse_add p) in
  match peek p with
  | EQ -> advance p; bin Eq
  | NE -> advance p; bin Ne
  | LT -> advance p; bin Lt
  | LE -> advance p; bin Le
  | GT -> advance p; bin Gt
  | GE -> advance p; bin Ge
  | _ -> lhs

and parse_add p =
  let rec go lhs =
    match peek p with
    | PLUS -> advance p; go (EBin (Add, lhs, parse_mul p))
    | MINUS -> advance p; go (EBin (Sub, lhs, parse_mul p))
    | _ -> lhs
  in
  go (parse_mul p)

and parse_mul p =
  let rec go lhs =
    match peek p with
    | STAR -> advance p; go (EBin (Mul, lhs, parse_unary p))
    | SLASH -> advance p; go (EBin (Div, lhs, parse_unary p))
    | _ -> lhs
  in
  go (parse_unary p)

and parse_unary p =
  match peek p with
  | MINUS -> advance p; EUn (Neg, parse_unary p)
  | PLUS -> advance p; parse_unary p
  | _ -> parse_pow p

and parse_pow p =
  let base = parse_atom p in
  if accept p POW then EBin (Pow, base, parse_unary p) else base

and parse_atom p =
  match peek p with
  | INT n -> advance p; EInt n
  | FLOAT f -> advance p; EReal f
  | TRUE -> advance p; EBool true
  | FALSE -> advance p; EBool false
  | LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p RPAREN;
      e
  | LBRACKET ->
      (* vector literal: [lo:hi] or [e, e, ...] as a MERGE-style pack;
         only the range form appears in the paper's codes *)
      advance p;
      let e = parse_range p in
      if peek p = COMMA then begin
        let items = ref [ e ] in
        while accept p COMMA do items := parse_range p :: !items done;
        expect p RBRACKET;
        ECall ("vector", List.rev !items)
      end
      else begin
        expect p RBRACKET;
        match e with
        | ERange _ -> e
        | e -> ECall ("vector", [ e ])
      end
  | IDENT name ->
      advance p;
      if peek p = LPAREN then begin
        advance p;
        let args = parse_index_list p in
        expect p RPAREN;
        (* known intrinsics parse as calls; other applications are array
           references until the interpreter resolves registered functions *)
        if Intrinsics.is_intrinsic name then ECall (name, args)
        else EIdx (name, args)
      end
      else EVar name
  | t -> error p "expected expression, found %s" (Token.to_string t)

and parse_range p =
  let lo = parse_expr p in
  if accept p COLON then ERange (lo, parse_expr p) else lo

and parse_index_list p =
  if peek p = RPAREN then []
  else
    let items = ref [ parse_range p ] in
    while accept p COMMA do items := parse_range p :: !items done;
    List.rev !items

(* ------------------------------------------------------------------ *)
(* Declarations and directives                                         *)
(* ------------------------------------------------------------------ *)

let parse_dtype p =
  if accept_keyword p "INTEGER" then TInt
  else if accept_keyword p "REAL" then TReal
  else if accept_keyword p "LOGICAL" then TLogical
  else error p "expected a type keyword"

let parse_declarators p plural ty =
  let one () =
    let name = ident p in
    let dims =
      if accept p LPAREN then begin
        let ds = parse_index_list p in
        expect p RPAREN;
        ds
      end
      else []
    in
    if dims = [] then { (scalar ~plural ty name) with dc_dims = [] }
    else array ~plural ty name dims
  in
  let ds = ref [ one () ] in
  while accept p COMMA do ds := one () :: !ds done;
  List.rev !ds

let parse_distribution p =
  if accept_keyword p "BLOCK" then DistBlock
  else if accept_keyword p "CYCLIC" then DistCyclic
  else if accept p STAR then DistSerial
  else error p "expected BLOCK, CYCLIC or *"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_lvalue_from_ident p name =
  let index =
    if accept p LPAREN then begin
      let idxs = parse_index_list p in
      expect p RPAREN;
      idxs
    end
    else []
  in
  { lv_name = name; lv_index = index }

let parse_do_control p =
  let v = ident p in
  expect p ASSIGN;
  let lo = parse_expr p in
  expect p COMMA;
  let hi = parse_expr p in
  let step = if accept p COMMA then Some (parse_expr p) else None in
  do_control ?step v lo hi

(* FORALL headers use (i = lo : hi [, stride]) per Fortran 90 *)
let parse_forall_control p =
  expect p LPAREN;
  let v = ident p in
  expect p ASSIGN;
  let lo = parse_expr p in
  expect p COLON;
  let hi = parse_expr p in
  let step = if accept p COMMA then Some (parse_expr p) else None in
  expect p RPAREN;
  do_control ?step v lo hi

let goto_label p =
  match peek p with
  | INT n ->
      advance p;
      string_of_int n
  | IDENT s ->
      advance p;
      s
  | t -> error p "expected a statement label, found %s" (Token.to_string t)

(** Parse one statement (a list because labels expand to [SLabel; stmt])
    and wrap each resulting statement with its source position.  Nested
    statements are wrapped by the recursive calls, so already-wrapped
    results are left alone. *)
let rec parse_stmt p : stmt list =
  let loc = peek_pos p in
  List.map
    (function Ast.SLoc _ as s -> s | s -> Ast.with_loc loc s)
    (parse_stmt_raw p)

and parse_stmt_raw p : stmt list =
  match peek p with
  | INT n ->
      (* numeric statement label *)
      advance p;
      let rest =
        if accept_keyword p "CONTINUE" then []
        else parse_stmt p
      in
      SLabel (string_of_int n) :: rest
  | KEYWORD "DO" -> (
      advance p;
      match peek p with
      | KEYWORD "WHILE" ->
          advance p;
          expect p LPAREN;
          let cond = parse_expr p in
          expect p RPAREN;
          end_of_stmt p;
          let body = parse_block p [ "ENDDO"; "ENDWHILE" ] in
          [ SWhile (cond, body) ]
      | _ ->
          let c = parse_do_control p in
          end_of_stmt p;
          let body = parse_block p [ "ENDDO" ] in
          [ SDo (c, body) ])
  | KEYWORD "WHILE" ->
      advance p;
      expect p LPAREN;
      let cond = parse_expr p in
      expect p RPAREN;
      end_of_stmt p;
      let body = parse_block p [ "ENDWHILE"; "ENDDO" ] in
      [ SWhile (cond, body) ]
  | KEYWORD "REPEAT" ->
      advance p;
      end_of_stmt p;
      let body = parse_block p [ "UNTIL" ] in
      expect p LPAREN;
      let cond = parse_expr p in
      expect p RPAREN;
      [ SDoWhile (body, cond) ]
  | KEYWORD "IF" -> (
      advance p;
      expect p LPAREN;
      let cond = parse_expr p in
      expect p RPAREN;
      match peek p with
      | KEYWORD "THEN" ->
          advance p;
          end_of_stmt p;
          let t, closed_by = parse_block_until p [ "ELSE"; "ENDIF" ] in
          let f =
            if closed_by = "ELSE" then begin
              end_of_stmt p;
              parse_block p [ "ENDIF" ]
            end
            else []
          in
          [ SIf (cond, t, f) ]
      | KEYWORD "GOTO" ->
          advance p;
          [ SCondGoto (cond, goto_label p) ]
      | _ ->
          (* one-line logical IF *)
          let body = parse_stmt p in
          [ SIf (cond, body, []) ])
  | KEYWORD "FORALL" -> (
      advance p;
      let c = parse_forall_control p in
      match peek p with
      | NEWLINE ->
          end_of_stmt p;
          let body = parse_block p [ "ENDFORALL" ] in
          [ SForall (c, body) ]
      | _ ->
          let body = parse_stmt p in
          [ SForall (c, body) ])
  | KEYWORD "WHERE" -> (
      advance p;
      expect p LPAREN;
      let cond = parse_expr p in
      expect p RPAREN;
      match peek p with
      | NEWLINE ->
          end_of_stmt p;
          let t, closed_by = parse_block_until p [ "ELSEWHERE"; "ENDWHERE" ] in
          let f =
            if closed_by = "ELSEWHERE" then begin
              end_of_stmt p;
              parse_block p [ "ENDWHERE" ]
            end
            else []
          in
          [ SWhere (cond, t, f) ]
      | _ ->
          let body = parse_stmt p in
          [ SWhere (cond, body, []) ])
  | KEYWORD "CALL" ->
      advance p;
      let name = ident p in
      let args =
        if accept p LPAREN then begin
          let a = parse_index_list p in
          expect p RPAREN;
          a
        end
        else []
      in
      [ SCall (name, args) ]
  | KEYWORD "GOTO" ->
      advance p;
      [ SGoto (goto_label p) ]
  | KEYWORD "CONTINUE" ->
      advance p;
      []
  | IDENT name ->
      advance p;
      let lv = parse_lvalue_from_ident p name in
      expect p ASSIGN;
      let rhs = parse_range p in
      [ SAssign (lv, rhs) ]
  | t -> error p "expected a statement, found %s" (Token.to_string t)

(** Parse statements until one of the closing keywords, consume it. *)
and parse_block p closers = fst (parse_block_until p closers)

and parse_block_until p closers =
  skip_newlines p;
  let stmts = ref [] in
  let closed = ref None in
  while !closed = None do
    match peek p with
    | KEYWORD k when List.mem k closers ->
        advance p;
        closed := Some k
    | EOF -> error p "unexpected end of input, expected %s" (String.concat "/" closers)
    | _ ->
        let ss = parse_stmt p in
        end_of_stmt p;
        stmts := List.rev_append ss !stmts
  done;
  (List.rev !stmts, Option.get !closed)

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let parse_program_items p =
  let decls = ref [] and dirs = ref [] and stmts = ref [] in
  let rec go () =
    skip_newlines p;
    match peek p with
    | EOF | KEYWORD "END" -> ()
    | KEYWORD ("INTEGER" | "REAL" | "LOGICAL") ->
        let ty = parse_dtype p in
        decls := List.rev_append (parse_declarators p false ty) !decls;
        end_of_stmt p;
        go ()
    | KEYWORD "PLURAL" ->
        advance p;
        let ty = parse_dtype p in
        decls := List.rev_append (parse_declarators p true ty) !decls;
        end_of_stmt p;
        go ()
    | KEYWORD "DECOMPOSITION" ->
        advance p;
        let name = ident p in
        expect p LPAREN;
        let dims = parse_index_list p in
        expect p RPAREN;
        dirs := DDecomposition (name, dims) :: !dirs;
        end_of_stmt p;
        go ()
    | KEYWORD "ALIGN" ->
        advance p;
        let a = ident p in
        expect_keyword p "WITH";
        let d = ident p in
        dirs := DAlign (a, d) :: !dirs;
        end_of_stmt p;
        go ()
    | KEYWORD "DISTRIBUTE" ->
        advance p;
        let d = ident p in
        expect p LPAREN;
        let one = parse_distribution p in
        let dists = ref [ one ] in
        while accept p COMMA do dists := parse_distribution p :: !dists done;
        expect p RPAREN;
        dirs := DDistribute (d, List.rev !dists) :: !dirs;
        end_of_stmt p;
        go ()
    | _ ->
        let ss = parse_stmt p in
        end_of_stmt p;
        stmts := List.rev_append ss !stmts;
        go ()
  in
  go ();
  (List.rev !decls, List.rev !dirs, List.rev !stmts)

let parse_program p =
  skip_newlines p;
  let name =
    if accept_keyword p "PROGRAM" then begin
      let n = ident p in
      end_of_stmt p;
      n
    end
    else "main"
  in
  let decls, dirs, body = parse_program_items p in
  if accept_keyword p "END" then skip_newlines p;
  (match peek p with
  | EOF -> ()
  | t -> error p "trailing input: %s" (Token.to_string t));
  { p_name = name; p_decls = decls; p_directives = dirs; p_body = body }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Parse a complete program (with or without a PROGRAM header). *)
let program_of_string src = parse_program (make (Lexer.tokenize src))

(** Parse a statement block (no declarations), e.g. a test snippet. *)
let block_of_string src =
  let p = make (Lexer.tokenize src) in
  let stmts = ref [] in
  skip_newlines p;
  while peek p <> EOF do
    let ss = parse_stmt p in
    end_of_stmt p;
    stmts := List.rev_append ss !stmts
  done;
  List.rev !stmts

(** Parse a single expression. *)
let expr_of_string src =
  let p = make (Lexer.tokenize src) in
  let e = parse_expr p in
  skip_newlines p;
  (match peek p with
  | EOF -> ()
  | t -> error p "trailing input after expression: %s" (Token.to_string t));
  e
