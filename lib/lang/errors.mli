(** Error reporting shared by the front end, checkers, and interpreters. *)

type pos = {
  line : int;
  col : int;
}

val pos : int -> int -> pos
val no_pos : pos
val pp_pos : pos Fmt.t

exception Lex_error of pos * string
exception Parse_error of pos * string
exception Type_error of string
exception Runtime_error of string

(** A runtime error attributed to the source statement being executed
    when it was raised. *)
exception Runtime_error_at of pos * string

(** The raising helpers take format strings. *)

val lex_error : pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val parse_error : pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val runtime_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [locate_runtime_error loc e] re-raises [Runtime_error m] as
    [Runtime_error_at (loc, m)] and every other exception unchanged. *)
val locate_runtime_error : pos -> exn -> 'a

(** Render any of the above exceptions as a one-line message; re-raises
    anything else. *)
val to_message : exn -> string

(** [source_line src n] — the [n]th line (1-based) of [src], if any. *)
val source_line : string -> int -> string option

(** Print the source line at a position with its number and a caret under
    the column; prints nothing for [no_pos] or out-of-range lines.  Used
    by the static checkers for located diagnostics. *)
val pp_context : source:string -> pos Fmt.t
