(** Generic traversals and queries over [Ast] terms. *)

open Ast

(** Fold [f] over every sub-expression of [e], outside-in. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | EInt _ | EReal _ | EBool _ | EVar _ -> acc
  | EIdx (_, es) | ECall (_, es) -> List.fold_left (fold_expr f) acc es
  | EUn (_, a) -> fold_expr f acc a
  | EBin (_, a, b) | ERange (a, b) -> fold_expr f (fold_expr f acc a) b

(** Apply [f] bottom-up to every sub-expression. *)
let rec map_expr f e =
  let e' =
    match e with
    | EInt _ | EReal _ | EBool _ | EVar _ -> e
    | EIdx (v, es) -> EIdx (v, List.map (map_expr f) es)
    | ECall (n, es) -> ECall (n, List.map (map_expr f) es)
    | EUn (op, a) -> EUn (op, map_expr f a)
    | EBin (op, a, b) -> EBin (op, map_expr f a, map_expr f b)
    | ERange (a, b) -> ERange (map_expr f a, map_expr f b)
  in
  f e'

(** All variable names read by [e] (array names included). *)
let expr_vars e =
  fold_expr
    (fun acc -> function
      | EVar v | EIdx (v, _) -> v :: acc
      | _ -> acc)
    [] e
  |> List.sort_uniq String.compare

let lvalue_vars (l : lvalue) =
  l.lv_name :: List.concat_map expr_vars l.lv_index
  |> List.sort_uniq String.compare

(** Fold [f] over every statement in a block, visiting nested blocks. *)
let rec fold_stmts f acc (b : block) =
  List.fold_left (fold_stmt f) acc b

and fold_stmt f acc s =
  (* [f] always sees the bare statement, never an [SLoc] wrapper *)
  let s = strip_loc s in
  let acc = f acc s in
  match s with
  | SAssign _ | SCall _ | SGoto _ | SCondGoto _ | SLabel _ | SComment _ -> acc
  | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b) ->
      fold_stmts f acc b
  | SIf (_, t, e) | SWhere (_, t, e) -> fold_stmts f (fold_stmts f acc t) e
  | SLoc _ -> assert false

(** Apply [g] to every expression occurring in [s] (conditions, bounds,
    right-hand sides, index expressions, call arguments). *)
let rec map_stmt_exprs g s =
  let mb = List.map (map_stmt_exprs g) in
  match s with
  | SLoc (loc, s) -> SLoc (loc, map_stmt_exprs g s)
  | SAssign (l, e) ->
      SAssign ({ l with lv_index = List.map g l.lv_index }, g e)
  | SDo (c, b) ->
      SDo
        ( { c with d_lo = g c.d_lo; d_hi = g c.d_hi;
            d_step = Option.map g c.d_step },
          mb b )
  | SWhile (e, b) -> SWhile (g e, mb b)
  | SDoWhile (b, e) -> SDoWhile (mb b, g e)
  | SIf (e, t, f) -> SIf (g e, mb t, mb f)
  | SForall (c, b) ->
      SForall
        ( { c with d_lo = g c.d_lo; d_hi = g c.d_hi;
            d_step = Option.map g c.d_step },
          mb b )
  | SWhere (e, t, f) -> SWhere (g e, mb t, mb f)
  | SCall (n, args) -> SCall (n, List.map g args)
  | SCondGoto (e, l) -> SCondGoto (g e, l)
  | SGoto _ | SLabel _ | SComment _ -> s

let map_block_exprs g b = List.map (map_stmt_exprs g) b

(** Substitute expression [by] for every occurrence of variable [v]. *)
let subst_var v by e =
  map_expr (function EVar x when x = v -> by | e -> e) e

let subst_stmt v by s = map_stmt_exprs (subst_var v by) s
let subst_block v by b = List.map (subst_stmt v by) b

(** Rename variable [v] to [v'] everywhere, including in binding and
    assignment positions. *)
let rec rename_stmt v v' s =
  let re = subst_var v (EVar v') in
  let rb = List.map (rename_stmt v v') in
  match s with
  | SLoc (loc, s) -> SLoc (loc, rename_stmt v v' s)
  | SAssign (l, e) ->
      let name = if l.lv_name = v then v' else l.lv_name in
      SAssign ({ lv_name = name; lv_index = List.map re l.lv_index }, re e)
  | SDo (c, b) ->
      let c =
        { d_var = (if c.d_var = v then v' else c.d_var);
          d_lo = re c.d_lo; d_hi = re c.d_hi;
          d_step = Option.map re c.d_step }
      in
      SDo (c, rb b)
  | SForall (c, b) ->
      let c =
        { d_var = (if c.d_var = v then v' else c.d_var);
          d_lo = re c.d_lo; d_hi = re c.d_hi;
          d_step = Option.map re c.d_step }
      in
      SForall (c, rb b)
  | SWhile (e, b) -> SWhile (re e, rb b)
  | SDoWhile (b, e) -> SDoWhile (rb b, re e)
  | SIf (e, t, f) -> SIf (re e, rb t, rb f)
  | SWhere (e, t, f) -> SWhere (re e, rb t, rb f)
  | SCall (n, args) -> SCall (n, List.map re args)
  | SCondGoto (e, l) -> SCondGoto (re e, l)
  | SGoto _ | SLabel _ | SComment _ -> s

let rename_block v v' b = List.map (rename_stmt v v') b

(** Variables assigned (directly or via array element) anywhere in a block,
    including loop induction variables. *)
let assigned_vars b =
  fold_stmts
    (fun acc -> function
      | SAssign (l, _) -> l.lv_name :: acc
      | SDo (c, _) | SForall (c, _) -> c.d_var :: acc
      | _ -> acc)
    [] b
  |> List.sort_uniq String.compare

(** Variables read anywhere in a block. *)
let read_vars b =
  fold_stmts
    (fun acc -> function
      | SAssign (l, e) ->
          expr_vars e @ List.concat_map expr_vars l.lv_index @ acc
      | SDo (c, _) | SForall (c, _) ->
          expr_vars c.d_lo @ expr_vars c.d_hi
          @ (match c.d_step with Some s -> expr_vars s | None -> [])
          @ acc
      | SWhile (e, _) | SDoWhile (_, e) | SIf (e, _, _) | SWhere (e, _, _)
      | SCondGoto (e, _) ->
          expr_vars e @ acc
      | SCall (_, args) -> List.concat_map expr_vars args @ acc
      | SGoto _ | SLabel _ | SComment _ | SLoc _ -> acc)
    [] b
  |> List.sort_uniq String.compare

(** Subroutines invoked anywhere in a block. *)
let called_subroutines b =
  fold_stmts
    (fun acc -> function SCall (n, _) -> n :: acc | _ -> acc)
    [] b
  |> List.sort_uniq String.compare

(** Names applied to arguments in an expression: resolved intrinsic calls
    plus unresolved applications ([EIdx]), which may be either array
    references or calls to registered functions.  Purity analysis treats
    both conservatively. *)
let expr_calls e =
  fold_expr
    (fun acc -> function
      | ECall (n, _) | EIdx (n, _) -> n :: acc
      | _ -> acc)
    [] e
  |> List.sort_uniq String.compare

let rec stmt_count (b : block) =
  List.fold_left
    (fun n s ->
      n
      +
      match strip_loc s with
      | SComment _ -> 0
      | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b) ->
          1 + stmt_count b
      | SIf (_, t, f) | SWhere (_, t, f) -> 1 + stmt_count t + stmt_count f
      | _ -> 1)
    0 b

(** Maximum loop-nesting depth of a block. *)
let rec loop_depth (b : block) =
  List.fold_left
    (fun d s ->
      max d
        (match strip_loc s with
        | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b) ->
            1 + loop_depth b
        | SIf (_, t, f) | SWhere (_, t, f) -> max (loop_depth t) (loop_depth f)
        | _ -> 0))
    0 b
