(** Loop coalescing (Polychronopoulos 1987) — the related transformation
    the paper contrasts with in §7: "Loop coalescing merges iteration
    variables to achieve a higher degree of parallelism ... Although loop
    flattening can also simplify load balancing, the transformation per se
    does not change which loop iterations a processor executes.  Instead,
    it gives it more freedom as to when it executes them."

    Coalescing rewrites a {e rectangular} two-level nest

    {v DO i = 1, N { DO j = 1, M { BODY } } v}

    into the single loop

    {v DO t = 0, N*M - 1 { i = t/M + 1; j = MOD(t, M) + 1; BODY } v}

    exposing N×M-way parallelism in one iteration space.  Unlike
    flattening it {e requires} the inner bound to be loop-invariant —
    exactly what the paper's irregular workloads violate — so this module
    also serves as the executable half of the §7 comparison: the benches
    show coalescing matching flattening on rectangular nests and being
    inapplicable on EXAMPLE/NBFORCE. *)

open Lf_lang
open Lf_lang.Ast

type rejection = { reason : string }

let pp_rejection ppf r = Fmt.pf ppf "coalescing rejected: %s" r.reason

(** A two-level nest is rectangular when both loops are unit-stride counted
    loops with lower bound 1 and the inner bounds do not depend on
    anything the outer loop changes. *)
let rectangular (s : stmt) : (do_control * do_control * block, rejection) result
    =
  let reject reason = Error { reason } in
  match strip_locs_stmt s with
  | SDo (outer, body) | SForall (outer, body) -> (
      if not (outer.d_step = None || outer.d_step = Some (EInt 1)) then
        reject "outer loop must have unit stride"
      else if outer.d_lo <> EInt 1 then
        reject "outer loop must start at 1"
      else
        match body with
        | [ (SDo (inner, ibody) | SForall (inner, ibody)) ] ->
            if not (inner.d_step = None || inner.d_step = Some (EInt 1))
            then reject "inner loop must have unit stride"
            else if inner.d_lo <> EInt 1 then
              reject "inner loop must start at 1"
            else if
              List.mem outer.d_var (Ast_util.expr_vars inner.d_hi)
              || List.exists
                   (fun v -> List.mem v (Ast_util.expr_vars inner.d_hi))
                   (Ast_util.assigned_vars ibody)
            then
              reject
                "inner bound varies with the outer iteration (the nest is \
                 not rectangular); use loop flattening"
            else Ok (outer, inner, ibody)
        | _ -> reject "outer body must contain exactly the inner loop")
  | _ -> reject "not a counted loop"

(** Coalesce a rectangular nest into a single loop over the product space.
    The result is a FORALL when both input loops were FORALLs (independence
    of the product space follows). *)
let coalesce ~(fresh : Fresh.t) (s : stmt) : (block, rejection) result =
  let s = strip_locs_stmt s in
  match rectangular s with
  | Error r -> Error r
  | Ok (outer, inner, ibody) ->
      let t = Fresh.fresh fresh "t" in
      let m = inner.d_hi in
      let recover =
        [
          Ast.assign outer.d_var
            (EBin (Add, EBin (Div, EVar t, m), EInt 1));
          Ast.assign inner.d_var
            (EBin (Add, EBin (Mod, EVar t, m), EInt 1));
        ]
      in
      let total = EBin (Sub, EBin (Mul, outer.d_hi, m), EInt 1) in
      let control = Ast.do_control t (EInt 0) (Simplify.simplify total) in
      let body = recover @ ibody in
      let loop =
        match s with
        | SForall _ -> SForall (control, body)
        | _ -> SDo (control, body)
      in
      Ok [ loop ]
