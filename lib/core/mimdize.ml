(** MIMD code generation (paper §3, Figure 3): derive the per-processor
    F77_MIMD program from an F77D program — the baseline the paper's
    Fortran D compiler produces for message-passing machines.

    Each processor executes the same program over its own name space: the
    outer parallel loop shrinks to the local iteration count, arrays
    DISTRIBUTEd (dim 1) by the program's Fortran D directives are accessed
    through the {e local} index, and every other occurrence of the
    induction variable is replaced by the reconstructed {e global} index
    (Figure 3's "L'(i) corresponds to L(i + 4(p-1))").

    References into a distributed array whose first subscript is anything
    but the plain induction variable would require communication, which
    the paper excludes (§5.2) — they are rejected.

    The runtime contract: [Lf_mimd.Mimd_vm]'s per-processor setup binds
    the local array slices under the original names and the 1-based
    processor id under [myproc]. *)

open Lf_lang
open Lf_lang.Ast

(** The per-processor id variable the generated program reads. *)
let myproc = "myproc"

type result = {
  program : program;
  distributed : string list;  (** arrays accessed through local indices *)
  local_count : expr;  (** iterations per processor (K/P) *)
  decomp : Simdize.decomp;
}

(** Arrays distributed in their first dimension, per the F77D directives:
    ALIGNed to a DECOMPOSITION whose first distribution is BLOCK/CYCLIC,
    or directly DISTRIBUTEd under their own name. *)
let distributed_arrays (p : program) : (string * Simdize.decomp) list =
  let dist_of = function
    | DistBlock -> Some Simdize.Block
    | DistCyclic -> Some Simdize.Cyclic
    | DistSerial -> None
  in
  let decomp_dist =
    List.filter_map
      (function
        | DDistribute (d, first :: _) ->
            Option.map (fun k -> (d, k)) (dist_of first)
        | _ -> None)
      p.p_directives
  in
  let aligned =
    List.filter_map
      (function
        | DAlign (a, d) ->
            Option.map (fun k -> (a, k)) (List.assoc_opt d decomp_dist)
        | _ -> None)
      p.p_directives
  in
  (* DISTRIBUTE directly naming a declared array *)
  let direct =
    List.filter
      (fun (d, _) -> List.exists (fun dc -> dc.dc_name = d) p.p_decls)
      decomp_dist
  in
  aligned @ direct

(** Rewrite the loop body for processor-local execution: distributed
    arrays keep the plain [var] in dimension 1; every other occurrence of
    [var] becomes the global-index variable [gvar]. *)
let localize_body ~var ~gvar ~(distributed : string list) (b : block) :
    (block, string) Stdlib.result =
  let bad = ref None in
  let rec fix_expr (e : expr) : expr =
    match e with
    | EIdx (a, d1 :: rest) when List.mem a distributed ->
        (match d1 with
        | EVar v when v = var -> ()
        | d1 when not (List.mem var (Ast_util.expr_vars d1)) ->
            (* loop-invariant subscript into a distributed dimension:
               owned by some other processor in general *)
            bad := Some (Fmt.str "%s(%s, ...)" a (Pretty.expr_to_string d1))
        | d1 ->
            bad := Some (Fmt.str "%s(%s, ...)" a (Pretty.expr_to_string d1)));
        EIdx (a, d1 :: List.map fix_expr rest)
    | EIdx (a, idxs) -> EIdx (a, List.map fix_expr idxs)
    | ECall (f, args) -> ECall (f, List.map fix_expr args)
    | EUn (op, a) -> EUn (op, fix_expr a)
    | EBin (op, a, b) -> EBin (op, fix_expr a, fix_expr b)
    | ERange (a, b) -> ERange (fix_expr a, fix_expr b)
    | EVar v when v = var -> EVar gvar
    | e -> e
  in
  (* assignment targets need the same dimension-1 treatment as reads:
     a distributed array keeps the local index, everything else is fixed
     expression-wise *)
  let fix_lvalue (l : lvalue) : lvalue =
    if List.mem l.lv_name distributed then
      match l.lv_index with
      | d1 :: rest ->
          (match d1 with
          | EVar v when v = var -> ()
          | d1 ->
              bad :=
                Some
                  (Fmt.str "%s(%s, ...)" l.lv_name (Pretty.expr_to_string d1)));
          { l with lv_index = d1 :: List.map fix_expr rest }
      | [] -> l
    else { l with lv_index = List.map fix_expr l.lv_index }
  in
  let rec walk (s : stmt) : stmt =
    match s with
    | SLoc (loc, s) -> SLoc (loc, walk s)
    | SAssign (l, e) -> SAssign (fix_lvalue l, fix_expr e)
    | SDo (c, b) ->
        SDo
          ( { c with d_lo = fix_expr c.d_lo; d_hi = fix_expr c.d_hi;
              d_step = Option.map fix_expr c.d_step },
            List.map walk b )
    | SForall (c, b) ->
        SForall
          ( { c with d_lo = fix_expr c.d_lo; d_hi = fix_expr c.d_hi;
              d_step = Option.map fix_expr c.d_step },
            List.map walk b )
    | SWhile (e, b) -> SWhile (fix_expr e, List.map walk b)
    | SDoWhile (b, e) -> SDoWhile (List.map walk b, fix_expr e)
    | SIf (e, t, f) -> SIf (fix_expr e, List.map walk t, List.map walk f)
    | SWhere (e, t, f) ->
        SWhere (fix_expr e, List.map walk t, List.map walk f)
    | SCall (n, args) -> SCall (n, List.map fix_expr args)
    | SCondGoto (e, lbl) -> SCondGoto (fix_expr e, lbl)
    | SGoto _ | SLabel _ | SComment _ -> s
  in
  let fixed = List.map walk b in
  match !bad with
  | Some r ->
      Error
        (Fmt.str
           "reference %s needs communication (non-local subscript into a \
            distributed dimension)"
           r)
  | None -> Ok fixed

(** Derive the F77_MIMD program.  The program body must start (after any
    straight-line prelude) with the counted parallel loop; [p] is the
    processor-count expression; divisibility of the extent by [p] is
    assumed, as in the paper. *)
let mimdize ~(fresh : Fresh.t) ~(p : expr) (prog : program) :
    (result, string) Stdlib.result =
  let dists = distributed_arrays prog in
  match Pipeline.split_first_loop prog.p_body with
  | None -> Error "no loop found in program body"
  | Some (pre, loop_stmt, post) -> (
      match loop_stmt with
      | SDo (c, body) | SForall (c, body) ->
          if not (c.d_step = None || c.d_step = Some (EInt 1)) then
            Error "outer loop must have unit stride"
          else
            let decomp =
              match dists with
              | (_, k) :: _ -> k
              | [] -> Simdize.Block
            in
            if
              List.exists (fun (_, k) -> k <> decomp) dists
            then Error "mixed block/cyclic distributions are not supported"
            else
              let gvar = Fresh.fresh fresh (c.d_var ^ "_g") in
              let extent =
                Simplify.simplify
                  (EBin (Add, EBin (Sub, c.d_hi, c.d_lo), EInt 1))
              in
              let local_count = Simplify.simplify (EBin (Div, extent, p)) in
              let global_index =
                match decomp with
                | Simdize.Block ->
                    (* g = lo + (i-1) + (myproc-1) * (extent/P) *)
                    EBin
                      ( Add,
                        EBin (Add, c.d_lo, EBin (Sub, EVar c.d_var, EInt 1)),
                        EBin
                          (Mul, EBin (Sub, EVar myproc, EInt 1), local_count)
                      )
                | Simdize.Cyclic ->
                    (* g = lo + (i-1)*P + (myproc-1) *)
                    EBin
                      ( Add,
                        EBin
                          ( Add,
                            c.d_lo,
                            EBin (Mul, EBin (Sub, EVar c.d_var, EInt 1), p) ),
                        EBin (Sub, EVar myproc, EInt 1) )
              in
              (match
                 localize_body ~var:c.d_var ~gvar
                   ~distributed:(List.map fst dists)
                   body
               with
              | Error e -> Error e
              | Ok body ->
                  let body =
                    Ast.assign gvar (Simplify.simplify global_index) :: body
                  in
                  let loop =
                    SDo (Ast.do_control c.d_var (EInt 1) local_count, body)
                  in
                  let decls =
                    prog.p_decls
                    @ [ Ast.scalar TInt gvar; Ast.scalar TInt myproc ]
                  in
                  Ok
                    {
                      program =
                        {
                          prog with
                          p_decls = decls;
                          p_body = pre @ [ loop ] @ post;
                        };
                      distributed = List.map fst dists;
                      local_count;
                      decomp;
                    })
      | _ -> Error "outer loop must be a counted DO/FORALL")
