(** Loop flattening (paper §4, Figures 9–12) — the paper's contribution.

    Input: a normalized two-level nest ([Normalize.nest], GENNEST of
    Figure 8).  Output: a block in which BODY has been lifted out of the
    inner loop, so that (after SIMDization, [Simdize]) each processor can
    advance independently to its next iteration containing useful work.

    Three variants, in increasing order of required preconditions:

    - {b General} (Figure 10): always semantics-preserving — the same
      instructions execute in the same order the same number of times; loop
      guards are first latched into flags ([with_guards], Figure 9) so that
      even side-effecting tests are evaluated exactly as often as before.
    - {b Optimized} (Figure 11): requires [test_1], [test_2] and [init_2]
      side-effect free (condition 1) and every inner loop to execute at
      least once per outer iteration (condition 2).
    - {b Done-test} (Figure 12): additionally requires a
      "last-inner-iteration" test [done_2] (condition 3, derivable for
      counted loops), saving the final [increment_2]. *)

open Lf_lang
open Lf_lang.Ast
open Normalize

type variant =
  | General
  | Optimized
  | DoneTest

let variant_to_string = function
  | General -> "general (Fig. 10)"
  | Optimized -> "optimized (Fig. 11)"
  | DoneTest -> "done-test (Fig. 12)"

(** The guard-flag form of Figure 9: control flow still unchanged, but
    every [test_l] result is latched into a flag [t_l].  Returns the block
    together with the two flag names. *)
let with_guards ~(fresh : Fresh.t) (n : nest) : block * string * string =
  let t1 = Fresh.fresh fresh "t1" and t2 = Fresh.fresh fresh "t2" in
  let latch1 = Ast.assign t1 n.outer.n_test in
  let latch2 = Ast.assign t2 n.inner.n_test in
  let blk =
    n.outer.n_init
    @ [ latch1 ]
    @ [
        SWhile
          ( EVar t1,
            n.inner.n_init
            @ [ latch2 ]
            @ [
                SWhile
                  (EVar t2, n.body @ n.inner.n_increment @ [ latch2 ]);
              ]
            @ n.outer.n_increment
            @ [ latch1 ] );
      ]
  in
  (blk, t1, t2)

(** Figure 10: the general, conservative flattening. *)
let flatten_general ~(fresh : Fresh.t) (n : nest) : block =
  let t1 = Fresh.fresh fresh "t1" and t2 = Fresh.fresh fresh "t2" in
  let latch1 = Ast.assign t1 n.outer.n_test in
  let latch2 = Ast.assign t2 n.inner.n_test in
  n.outer.n_init
  @ [ latch1 ]
  @ [ SIf (EVar t1, n.inner.n_init, []) ]
  @ [
      SWhile
        ( EVar t1,
          [ latch2 ]
          @ [
              SWhile
                ( EBin (And, EVar t1, EUn (Not, EVar t2)),
                  n.outer.n_increment
                  @ [ latch1 ]
                  @ [ SIf (EVar t1, n.inner.n_init @ [ latch2 ], []) ] );
            ]
          @ [ SIf (EVar t1, n.body @ n.inner.n_increment, []) ] );
    ]

(** Figure 11: optimized flattening (see preconditions in [check]). *)
let flatten_optimized (n : nest) : block =
  n.outer.n_init @ n.inner.n_init
  @ [
      SWhile
        ( n.outer.n_test,
          n.body @ n.inner.n_increment
          @ [
              SIf
                ( EUn (Not, n.inner.n_test),
                  n.outer.n_increment @ n.inner.n_init,
                  [] );
            ] );
    ]

(** Figure 12: done-test flattening; [done_] must be the inner loop's
    "currently in the last iteration" predicate. *)
let flatten_done_test (n : nest) (done_ : expr) : block =
  n.outer.n_init @ n.inner.n_init
  @ [
      SWhile
        ( n.outer.n_test,
          n.body
          @ [
              SIf
                ( done_,
                  n.outer.n_increment @ n.inner.n_init,
                  n.inner.n_increment );
            ] );
    ]

(* ------------------------------------------------------------------ *)
(* Precondition checking                                               *)
(* ------------------------------------------------------------------ *)

type rejection = {
  rej_variant : variant;
  rej_reason : string;
}

let pp_rejection ppf r =
  Fmt.pf ppf "%s rejected: %s" (variant_to_string r.rej_variant) r.rej_reason

(** Is [init_2] side-effect free in the sense of condition 1?

    The optimized variants run [init_2] once more than the original (after
    the final outer iteration, and once before the loop even when it never
    runs), so its writes must be unobservable there: plain assignments to
    {e scalars} with pure right-hand sides, targeting only variables that
    are not read after the nest ([live_out]).  Array writes are excluded —
    a degenerate extra run would store through control variables that have
    already run off the iteration space.  Induction variables and other
    nest-local control scalars (whatever the flattening composition
    introduced) qualify automatically since they are dead after the nest. *)
let init2_harmless purity ~live_out (n : nest) =
  List.for_all
    (fun s ->
      match s with
      | SComment _ | SLabel _ -> true
      | SAssign ({ lv_index = []; lv_name = v }, e) ->
          Lf_analysis.Side_effects.expr_pure purity e
          && not (List.mem v live_out)
      | _ -> false)
    n.inner.n_init

(** Check the preconditions of [variant] (paper §4, conditions 1–3).
    [assume_inner_nonempty] is the user assertion that every outer
    iteration runs the inner loop at least once (condition 2), e.g. the
    paper's "each atom has at least one interaction partner".  [live_out]
    lists variables read after the nest (see [init2_harmless]). *)
let check ?(purity = Lf_analysis.Side_effects.default_env)
    ?(assume_inner_nonempty = false) ?(live_out = []) (variant : variant)
    (n : nest) : (unit, rejection) result =
  let reject reason = Error { rej_variant = variant; rej_reason = reason } in
  match variant with
  | General -> Ok ()
  | Optimized | DoneTest ->
      let pure_tests =
        Lf_analysis.Side_effects.expr_pure purity n.outer.n_test
        && Lf_analysis.Side_effects.expr_pure purity n.inner.n_test
      in
      if not pure_tests then
        reject "loop tests may have side effects (condition 1)"
      else if not (init2_harmless purity ~live_out n) then
        reject
          "inner initialization has observable effects (condition 1); use \
           the general variant"
      else if not assume_inner_nonempty then
        reject
          "cannot prove the inner loop executes at least once per outer \
           iteration (condition 2); assert it or use the general variant"
      else if variant = DoneTest && n.inner.n_done = None then
        reject "no last-iteration test derivable for the inner loop \
                (condition 3)"
      else Ok ()

(** Flatten with an explicitly chosen variant, after checking its
    preconditions. *)
let flatten ~(fresh : Fresh.t) ?purity ?assume_inner_nonempty ?live_out
    (variant : variant) (n : nest) : (block, rejection) result =
  match check ?purity ?assume_inner_nonempty ?live_out variant n with
  | Error r -> Error r
  | Ok () -> (
      match variant with
      | General -> Ok (flatten_general ~fresh n)
      | Optimized -> Ok (flatten_optimized n)
      | DoneTest -> Ok (flatten_done_test n (Option.get n.inner.n_done)))

(** Choose the most optimized applicable variant (Fig. 12 ≻ Fig. 11 ≻
    Fig. 10) and flatten.  Never fails: the general variant is always
    applicable. *)
let flatten_auto ~(fresh : Fresh.t) ?purity ?assume_inner_nonempty ?live_out
    (n : nest) : block * variant =
  match flatten ~fresh ?purity ?assume_inner_nonempty ?live_out DoneTest n with
  | Ok b -> (b, DoneTest)
  | Error _ -> (
      match
        flatten ~fresh ?purity ?assume_inner_nonempty ?live_out Optimized n
      with
      | Ok b -> (b, Optimized)
      | Error _ -> (flatten_general ~fresh n, General))

(* ------------------------------------------------------------------ *)
(* Deeper nests (§4: "an extension ... to deeper loop nests is          *)
(* straightforward")                                                    *)
(* ------------------------------------------------------------------ *)

(** Flatten a loop tower of any depth, innermost pair first.  Each
    flattening step leaves exactly one loop at the top level of the
    produced block (all three variants have this shape), so the next
    outer level again sees a perfect two-level nest whose inner-loop
    initialization absorbs the synthetic control-variable setup.

    Returns the flattened block and the variants used, outermost first.
    A depth-1 "tower" is returned unchanged. *)
let rec flatten_deep ~(fresh : Fresh.t) ?purity ?assume_inner_nonempty
    ?(variant : variant option) (s : stmt) :
    (block * variant list, rejection) result =
  let s = strip_locs_stmt s in
  let body_of = function
    | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b) -> Some b
    | _ -> None
  in
  let with_body s b =
    match s with
    | SDo (c, _) -> SDo (c, b)
    | SWhile (e, _) -> SWhile (e, b)
    | SDoWhile (_, e) -> SDoWhile (b, e)
    | SForall (c, _) -> SForall (c, b)
    | s -> s
  in
  match body_of s with
  | None ->
      Error
        { rej_variant = General; rej_reason = "not a loop statement" }
  | Some body -> (
      match Lf_analysis.Loop_info.split_around_loop body with
      | None -> Ok ([ s ], [])  (* innermost level: nothing to flatten *)
      | Some (pre, inner, post) -> (
          let inner_stmt =
            match inner.Lf_analysis.Loop_info.kind with
            | Lf_analysis.Loop_info.KDo c ->
                SDo (c, inner.Lf_analysis.Loop_info.body)
            | Lf_analysis.Loop_info.KWhile e ->
                SWhile (e, inner.Lf_analysis.Loop_info.body)
            | Lf_analysis.Loop_info.KDoWhile e ->
                SDoWhile (inner.Lf_analysis.Loop_info.body, e)
            | Lf_analysis.Loop_info.KForall c ->
                SForall (c, inner.Lf_analysis.Loop_info.body)
          in
          (* flatten the deeper levels inside the inner loop first *)
          match
            flatten_deep ~fresh ?purity ?assume_inner_nonempty ?variant
              inner_stmt
          with
          | Error r -> Error r
          | Ok (inner_block, inner_variants) -> (
              let s' = with_body s (pre @ inner_block @ post) in
              match Normalize.of_nest ~fresh s' with
              | Error e ->
                  Error { rej_variant = General; rej_reason = e }
              | Ok nest -> (
                  match variant with
                  | Some v -> (
                      match
                        flatten ~fresh ?purity ?assume_inner_nonempty v nest
                      with
                      | Ok b -> Ok (b, v :: inner_variants)
                      | Error r -> Error r)
                  | None ->
                      let b, v =
                        flatten_auto ~fresh ?purity ?assume_inner_nonempty
                          nest
                      in
                      Ok (b, v :: inner_variants)))))
