(** Loop SIMDization (paper §3): deriving F90simd programs from F77/F77D.

    "To make sure that each processor can perform all of its iterations,
    the upper bound L(i') had to be changed into the maximum of L(i') over
    all processors.  This in turn necessitated a guard for the loop body."

    Two entry points mirror the paper:
    - [simdize_nest] produces the naive SIMD version of an unflattened
      two-level nest (Figure 5 / Figure 14);
    - [simdize_flattened] SIMDizes a flattened loop (output of [Flatten]),
      yielding the Figure 7 / Figure 15 form: the outer WHILE becomes
      [WHILE ANY(test)] with a [WHERE (test)] guard, and IFs over plural
      state become WHERE/ELSEWHERE.

    Plural variables (replicated per processor, §2) are inferred by a fixed
    point: the partitioned induction variable is plural; any variable
    assigned from a plural expression or under a plural condition is
    plural.  The predefined plural variable [iproc] holds each processor's
    1-based index (the vector [1:P]). *)

open Lf_lang
open Lf_lang.Ast

(** Data decomposition of the parallel iteration space (paper §5.2:
    cyclic "cut-and-stack" on the DECmpp, blockwise on the CM-2). *)
type decomp =
  | Block
  | Cyclic

let decomp_to_string = function Block -> "block" | Cyclic -> "cyclic"

(** The predefined plural processor-index variable: iproc = [1:P]. *)
let iproc = "iproc"

module SS = Set.Make (String)

(** Reductions collapse a plural operand to a front-end scalar. *)
let is_reduction f =
  List.mem (String.lowercase_ascii f)
    [ "any"; "all"; "maxval"; "minval"; "sum"; "count" ]

(** Is the value of [e] plural (per-processor), given the set of plural
    variables?  A gather [a(i)] through a plural subscript is plural; a
    reduction over a plural operand is not. *)
let rec expr_is_plural set (e : expr) : bool =
  match e with
  | EInt _ | EReal _ | EBool _ -> false
  | EVar v -> SS.mem v set
  | EIdx (v, idxs) -> SS.mem v set || List.exists (expr_is_plural set) idxs
  | ECall (f, _) when is_reduction f -> false
  | ECall (_, args) -> List.exists (expr_is_plural set) args
  | EUn (_, a) -> expr_is_plural set a
  | EBin (_, a, b) | ERange (a, b) ->
      expr_is_plural set a || expr_is_plural set b

(** Fixed-point inference of plural variables.  [seeds] are known-plural
    variables; a scalar assignment makes its target plural if the RHS reads
    a plural variable or the assignment sits under a plural condition. *)
let infer_plural ~(seeds : string list) (b : block) : SS.t =
  let plural = ref (SS.of_list (iproc :: seeds)) in
  let is_plural_expr e = expr_is_plural !plural e in
  let changed = ref true in
  let add v =
    if not (SS.mem v !plural) then begin
      plural := SS.add v !plural;
      changed := true
    end
  in
  let rec scan under_plural (b : block) =
    List.iter
      (fun s ->
        match strip_loc s with
        | SAssign ({ lv_name = v; lv_index = [] }, e) ->
            if under_plural || is_plural_expr e then add v
        | SAssign ({ lv_index = _ :: _; _ }, _) ->
            (* arrays stay global (distributed) storage: a write through a
               plural subscript is a scatter, not a replication of the
               array — Figure 7 keeps X a distributed array *)
            ()
        | SIf (c, t, f) | SWhere (c, t, f) ->
            let up = under_plural || is_plural_expr c in
            scan up t;
            scan up f
        | SWhile (c, body) ->
            scan (under_plural || is_plural_expr c) body
        | SDoWhile (body, c) ->
            scan (under_plural || is_plural_expr c) body
        | SDo (c, body) | SForall (c, body) ->
            if
              is_plural_expr c.d_lo || is_plural_expr c.d_hi
              || Option.fold ~none:false ~some:is_plural_expr c.d_step
            then add c.d_var;
            scan under_plural body
        | SCall _ | SGoto _ | SCondGoto _ | SLabel _ | SComment _ -> ()
        | SLoc _ -> assert false)
      b
  in
  while !changed do
    changed := false;
    scan false b
  done;
  !plural

(* ------------------------------------------------------------------ *)
(* Control-flow vectorization                                          *)
(* ------------------------------------------------------------------ *)

(** Rewrite control flow over plural state: IF → WHERE, WHILE over a plural
    condition → [WHILE ANY(c) { WHERE (c) ... }].  Control flow over
    front-end scalars is left untouched. *)
let rec vectorize_control plural (b : block) : block =
  let is_plural_expr e = expr_is_plural plural e in
  List.map
    (fun s ->
      match strip_loc s with
      | SIf (c, t, f) when is_plural_expr c ->
          SWhere (c, vectorize_control plural t, vectorize_control plural f)
      | SIf (c, t, f) ->
          SIf (c, vectorize_control plural t, vectorize_control plural f)
      | SWhere (c, t, f) ->
          SWhere (c, vectorize_control plural t, vectorize_control plural f)
      | SWhile (c, body) when is_plural_expr c ->
          SWhile
            ( ECall ("any", [ c ]),
              [ SWhere (c, vectorize_control plural body, []) ] )
      | SWhile (c, body) -> SWhile (c, vectorize_control plural body)
      | SDoWhile (body, c) when is_plural_expr c ->
          SDoWhile
            ( [ SWhere (c, vectorize_control plural body, []) ],
              ECall ("any", [ c ]) )
      | SDoWhile (body, c) -> SDoWhile (vectorize_control plural body, c)
      | SDo (c, body) -> SDo (c, vectorize_control plural body)
      | SForall (c, body) -> SForall (c, vectorize_control plural body)
      | s -> s)
    b

(* ------------------------------------------------------------------ *)
(* Iteration-space partitioning                                        *)
(* ------------------------------------------------------------------ *)

(** [partition_init decomp ~p ~lo ~hi var] — the plural initialization of
    [var] and its per-processor last value:
    - cyclic: [var = lo + iproc - 1], last = [hi], step becomes P;
    - block:  [var = lo + (iproc-1)*chunk], last = [lo + iproc*chunk - 1]
      with [chunk = (hi - lo + 1) / P] (P must divide the extent, as the
      paper assumes for simplicity in §5.1). *)
let partition_init (decomp : decomp) ~(p : expr) ~(lo : expr) ~(hi : expr)
    (var : string) : block * expr * expr =
  match decomp with
  | Cyclic ->
      let init =
        Ast.assign var (EBin (Add, lo, EBin (Sub, EVar iproc, EInt 1)))
      in
      ([ init ], hi, p)
  | Block ->
      let chunk =
        EBin (Div, EBin (Add, EBin (Sub, hi, lo), EInt 1), p)
      in
      let init =
        Ast.assign var
          (EBin (Add, lo, EBin (Mul, EBin (Sub, EVar iproc, EInt 1), chunk)))
      in
      let last =
        EBin (Sub, EBin (Add, lo, EBin (Mul, EVar iproc, chunk)), EInt 1)
      in
      ([ init ], last, EInt 1)

(* ------------------------------------------------------------------ *)
(* Flattened path (Figures 7 and 15)                                   *)
(* ------------------------------------------------------------------ *)

type flattened_simd = {
  fs_block : block;
  fs_plural : string list;  (** variables that must be declared plural *)
  fs_decomp : decomp;
}

(** SIMDize a flattened loop.  [block] must be the output of [Flatten] for
    a nest whose outer loop was counted: [var] its induction variable,
    [lo]/[hi] its original bounds, [p] the processor-count expression.

    The pass (matching the Figure 7 derivation):
    + replaces the scalar init [var = lo] with the plural partitioned init;
    + for block decomposition, latches the per-processor last index into a
      fresh plural variable and substitutes it for [hi] in the loop's
      control expressions (Figure 7's [K = \[4,8\]]);
    + for cyclic decomposition, rewrites [var = var + 1] to
      [var = var + P] (Figure 15's [At1 = At1 + P]);
    + infers plural variables and vectorizes control flow. *)
let simdize_flattened ~(fresh : Fresh.t) ~(decomp : decomp) ~(p : expr)
    ~(var : string) ~(lo : expr) ~(hi : expr) (b : block) : flattened_simd =
  (* the rewrites below match statement shapes deeply: drop source
     locations up front (idempotent) *)
  let b = strip_locs_block b in
  let part_init, last, step = partition_init decomp ~p ~lo ~hi var in
  (* replace the init assignment [var = lo] *)
  let replaced = ref false in
  let b =
    List.map
      (fun s ->
        match s with
        | SAssign ({ lv_name = v; lv_index = [] }, e)
          when v = var && e = lo && not !replaced ->
            replaced := true;
            SComment "partitioned init follows"
        | s -> s)
      b
  in
  if not !replaced then
    Errors.type_error "simdize_flattened: init %s = %s not found" var
      (Pretty.expr_to_string lo);
  let b = part_init @ List.filter (function SComment _ -> false | _ -> true) b in
  (* per-processor upper bound *)
  let b, bound_vars =
    match decomp with
    | Cyclic ->
        (* increment becomes var = var + P *)
        let fix_incr =
          List.map (function
            | SAssign (({ lv_name = v; lv_index = [] } as l), rhs)
              when v = var -> (
                match rhs with
                | EBin (Add, EVar v', EInt 1) when v' = var ->
                    SAssign (l, EBin (Add, EVar var, step))
                | rhs -> SAssign (l, rhs))
            | s -> s)
        in
        let rec deep b =
          fix_incr
            (List.map
               (function
                 | SIf (c, t, f) -> SIf (c, deep t, deep f)
                 | SWhere (c, t, f) -> SWhere (c, deep t, deep f)
                 | SWhile (c, body) -> SWhile (c, deep body)
                 | SDoWhile (body, c) -> SDoWhile (deep body, c)
                 | SDo (c, body) -> SDo (c, deep body)
                 | SForall (c, body) -> SForall (c, deep body)
                 | s -> s)
               b)
        in
        (deep b, [])
    | Block ->
        let lastv = Fresh.fresh fresh (var ^ "_last") in
        let latch = Ast.assign lastv last in
        (* substitute hi by the plural per-processor bound in control
           expressions (comparisons against var) *)
        let subst =
          Ast_util.map_block_exprs
            (Ast_util.map_expr (fun e ->
                 match e with
                 | EBin (((Le | Lt | Ge | Gt | Eq | Ne) as op), l, r)
                   when r = hi && List.mem var (Ast_util.expr_vars l) ->
                     EBin (op, l, EVar lastv)
                 | EBin (((Le | Lt | Ge | Gt | Eq | Ne) as op), l, r)
                   when l = hi && List.mem var (Ast_util.expr_vars r) ->
                     EBin (op, EVar lastv, r)
                 | e -> e))
        in
        (* place the latch right after the partitioned init *)
        let rec insert = function
          | (SAssign ({ lv_name = v; lv_index = [] }, _) as s) :: rest
            when v = var ->
              s :: latch :: rest
          | s :: rest -> s :: insert rest
          | [] -> [ latch ]
        in
        (insert (subst b), [ lastv ])
  in
  let plural = infer_plural ~seeds:(var :: bound_vars) b in
  let b = vectorize_control plural b in
  let b = Simplify.simplify_block b in
  { fs_block = b; fs_plural = SS.elements (SS.remove iproc plural);
    fs_decomp = decomp }

(* ------------------------------------------------------------------ *)
(* Unflattened path (Figures 5 and 14)                                 *)
(* ------------------------------------------------------------------ *)

type nest_simd = {
  ns_block : block;
  ns_plural : string list;
  ns_decomp : decomp;
}

(** SIMDize an unflattened two-level nest whose outer loop is the counted
    parallel loop [DO var = lo, hi] (Figure 5's derivation):

    {v
    DO i = 1, (hi-lo+1)/P                      ! uniform front-end count
      i' = <partitioned index>                 ! plural auxiliary induction
      DO j = lo2, MAXVAL(hi2[i->i'])           ! SIMDized inner loop
        WHERE (j <= hi2[i->i'])  BODY[i->i']
      ENDDO
    ENDDO
    v}

    The outer loop itself needs no guard when P divides the extent (the
    paper's assumption); otherwise a [WHERE (i' <= hi)] guard wraps the
    whole outer body. *)
let simdize_nest ~(fresh : Fresh.t) ~(decomp : decomp) ~(p : expr)
    ?(divisible = true) (s : stmt) : (nest_simd, string) result =
  let outer =
    match strip_locs_stmt s with
    | SDo (c, body) when c.d_step = None || c.d_step = Some (EInt 1) ->
        Some (c, body)
    | SForall (c, body) when c.d_step = None || c.d_step = Some (EInt 1) ->
        Some (c, body)
    | _ -> None
  in
  match outer with
  | None -> Error "outer loop must be DO/FORALL with unit stride"
  | Some (c, body) ->
      let var = c.d_var and lo = c.d_lo and hi = c.d_hi in
      let var' = Fresh.fresh fresh (var ^ "_p") in
      let extent = EBin (Add, EBin (Sub, hi, lo), EInt 1) in
      let trips =
        (* ceiling division when P may not divide the extent *)
        if divisible then EBin (Div, extent, p)
        else
          EBin
            (Div, EBin (Sub, EBin (Add, extent, p), EInt 1), p)
      in
      let index =
        match decomp with
        | Block ->
            (* i' = lo + (i-1) + (iproc-1)*chunk *)
            EBin
              ( Add,
                EBin (Add, lo, EBin (Sub, EVar var, EInt 1)),
                EBin (Mul, EBin (Sub, EVar iproc, EInt 1), trips) )
        | Cyclic ->
            (* i' = lo + (i-1)*P + (iproc-1) *)
            EBin
              ( Add,
                EBin (Add, lo, EBin (Mul, EBin (Sub, EVar var, EInt 1), p)),
                EBin (Sub, EVar iproc, EInt 1) )
      in
      (* substitute i -> i' in the body (non-control occurrences; the body
         no longer uses i for control) *)
      let body' = Ast_util.subst_block var (EVar var') body in
      (* SIMDize every inner loop whose bounds became plural *)
      let plural0 = SS.of_list [ var'; iproc ] in
      let rec simdize_inner (b : block) : block =
        List.map
          (fun s ->
            match s with
            | SDo (ic, ib) ->
                let ib = simdize_inner ib in
                let plural_bound e = expr_is_plural plural0 e in
                if plural_bound ic.d_hi || plural_bound ic.d_lo then
                  let guard =
                    let lo_ok =
                      if plural_bound ic.d_lo then
                        Some (EBin (Le, ic.d_lo, EVar ic.d_var))
                      else None
                    in
                    let hi_ok = EBin (Le, EVar ic.d_var, ic.d_hi) in
                    match lo_ok with
                    | Some l -> EBin (And, l, hi_ok)
                    | None -> hi_ok
                  in
                  let new_lo =
                    if plural_bound ic.d_lo then
                      ECall ("minval", [ ic.d_lo ])
                    else ic.d_lo
                  in
                  let new_hi =
                    if plural_bound ic.d_hi then
                      ECall ("maxval", [ ic.d_hi ])
                    else ic.d_hi
                  in
                  SDo
                    ( { ic with d_lo = new_lo; d_hi = new_hi },
                      [ SWhere (guard, ib, []) ] )
                else SDo (ic, ib)
            | SWhile (cond, ib) ->
                let ib = simdize_inner ib in
                if expr_is_plural plural0 cond then
                  SWhile (ECall ("any", [ cond ]), [ SWhere (cond, ib, []) ])
                else SWhile (cond, ib)
            | SIf (cond, t, f) ->
                SIf (cond, simdize_inner t, simdize_inner f)
            | SWhere (cond, t, f) ->
                SWhere (cond, simdize_inner t, simdize_inner f)
            | s -> s)
          b
      in
      let body' = simdize_inner body' in
      let guarded_body =
        if divisible then body'
        else [ SWhere (EBin (Le, EVar var', hi), body', []) ]
      in
      let outer_body = Ast.assign var' index :: guarded_body in
      let blk = [ SDo (Ast.do_control var (EInt 1) trips, outer_body) ] in
      let plural = infer_plural ~seeds:[ var' ] blk in
      let blk = vectorize_control plural blk in
      let blk = Simplify.simplify_block blk in
      Ok
        {
          ns_block = blk;
          ns_plural = SS.elements (SS.remove iproc plural);
          ns_decomp = decomp;
        }

(* ------------------------------------------------------------------ *)
(* Sum reductions (extension)                                          *)
(* ------------------------------------------------------------------ *)

(** Scalars accumulated with [v = v + e] and used for nothing else inside
    the block.  Such a scalar cannot be replicated naively (each lane
    would accumulate a private copy); the standard treatment is a per-lane
    partial sum combined after the loop.  This extension is not in the
    paper — its §6 safety condition simply rejects reductions — but it is
    what production vectorizers do, and it lets kernels like the
    region-statistics example keep their accumulators. *)
let sum_reduction_candidates ~(exclude : string list) (b : block) :
    string list =
  let b = strip_locs_block b in
  let assigns = Hashtbl.create 4 in
  let disqualified = Hashtbl.create 4 in
  let note_ok v = 
    Hashtbl.replace assigns v (1 + Option.value ~default:0 (Hashtbl.find_opt assigns v))
  in
  let rec scan (b : block) =
    List.iter
      (fun s ->
        match s with
        | SAssign ({ lv_name = v; lv_index = [] }, EBin (Add, EVar v', e))
          when v = v' && not (List.mem v (Ast_util.expr_vars e)) ->
            note_ok v
        | SAssign ({ lv_name = v; lv_index = [] }, EBin (Add, e, EVar v'))
          when v = v' && not (List.mem v (Ast_util.expr_vars e)) ->
            note_ok v
        | SAssign ({ lv_name = v; lv_index = [] }, _) ->
            Hashtbl.replace disqualified v ()
        | SIf (_, t, f) | SWhere (_, t, f) ->
            scan t;
            scan f
        | SDo (_, body) | SForall (_, body) | SWhile (_, body)
        | SDoWhile (body, _) ->
            scan body
        | _ -> ())
      b
  in
  scan b;
  (* a candidate's only *other* appearances may be inside its own update
     right-hand sides, which the pattern already excludes; check reads *)
  let reads = Hashtbl.create 4 in
  let rec scan_reads (b : block) =
    List.iter
      (fun s ->
        match s with
        | SAssign ({ lv_name = v; lv_index = [] }, EBin (Add, EVar v', e))
          when v = v' ->
            List.iter
              (fun r -> Hashtbl.replace reads r ())
              (Ast_util.expr_vars e)
        | SAssign ({ lv_name = v; lv_index = [] }, EBin (Add, e, EVar v'))
          when v = v' ->
            List.iter
              (fun r -> Hashtbl.replace reads r ())
              (Ast_util.expr_vars e)
        | SAssign (l, e) ->
            List.iter
              (fun r -> Hashtbl.replace reads r ())
              (Ast_util.expr_vars e
              @ List.concat_map Ast_util.expr_vars l.lv_index)
        | SIf (c, t, f) | SWhere (c, t, f) ->
            List.iter (fun r -> Hashtbl.replace reads r ()) (Ast_util.expr_vars c);
            scan_reads t;
            scan_reads f
        | SDo (c, body) | SForall (c, body) ->
            List.iter
              (fun r -> Hashtbl.replace reads r ())
              (Ast_util.expr_vars c.d_lo @ Ast_util.expr_vars c.d_hi
              @ Option.fold ~none:[] ~some:Ast_util.expr_vars c.d_step);
            scan_reads body
        | SWhile (c, body) | SDoWhile (body, c) ->
            List.iter (fun r -> Hashtbl.replace reads r ()) (Ast_util.expr_vars c);
            scan_reads body
        | SCall (_, args) ->
            List.iter
              (fun r -> Hashtbl.replace reads r ())
              (List.concat_map Ast_util.expr_vars args)
        | SCondGoto (c, _) ->
            List.iter (fun r -> Hashtbl.replace reads r ()) (Ast_util.expr_vars c)
        | _ -> ())
      b
  in
  scan_reads b;
  Hashtbl.fold
    (fun v _ acc ->
      if
        Hashtbl.mem disqualified v
        || Hashtbl.mem reads v
        || List.mem v exclude
      then acc
      else v :: acc)
    assigns []
  |> List.sort String.compare

(** Rewrite each reduction scalar [v] to a per-lane partial accumulator:
    [vp = 0] before the block, [v -> vp] inside it, [v = v + SUM(vp)]
    after.  Returns the rewritten block and the (v, vp) pairs. *)
let lower_sum_reductions ~(fresh : Fresh.t) (vs : string list) (b : block) :
    block * (string * string) list =
  List.fold_left
    (fun (b, acc) v ->
      let vp = Fresh.fresh fresh (v ^ "_p") in
      let b = Ast_util.rename_block v vp b in
      let b =
        (Ast.assign vp (EInt 0) :: b)
        @ [ Ast.assign v (EBin (Add, EVar v, ECall ("sum", [ EVar vp ]))) ]
      in
      (b, (v, vp) :: acc))
    (b, []) vs
