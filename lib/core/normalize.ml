(** Loop normalization (paper §4, Figure 8).

    Every supported loop form is broken into three phases per nesting
    level l:

    - an initialization phase [init_l],
    - a guard [test_l] (evaluated *before* the body — "GENNEST conservatively
      tests for loop completion before entering the loop body, [so] all loops
      can be brought into this normal form"), and
    - an incrementing step [increment_l].

    For [DO var = lo, hi, stride] the phases are [var = lo],
    [var <= hi] and [var = var + stride] (§6).  WHILE loops keep their
    increment fused with the body ("since increment_l and BODY stay together
    throughout the transformation, we actually do not need to separate these
    two phases"), except that a trailing basic-induction update is peeled
    when recognizable, which enables the Fig. 12 done-test optimization.
    GOTO loops are first restructured into WHILEs by
    [Lf_analysis.Loop_info.restructure_gotos]. *)

open Lf_lang
open Lf_lang.Ast

(** A loop in normal form. *)
type norm = {
  n_init : block;
  n_test : expr;
  n_increment : block;
  n_body : block;
  n_var : string option;  (** induction variable for counted loops *)
  n_done : expr option;
      (** "currently in the last iteration" test, when derivable (§4,
          condition 3: for [DO var = lo, hi, 1] this is [var = hi]) *)
  n_parallel : bool;  (** loop was a FORALL (user-asserted parallel) *)
}

(** A normalized two-level nest: GENNEST of Figure 8.  [outer.n_body] is
    *not* used — the structure between the loops is folded into the phases:
    statements before the inner loop extend [inner.n_init] and statements
    after it extend [outer.n_increment] (they run exactly when the inner
    loop has completed). *)
type nest = {
  outer : norm;
  inner : norm;
  body : block;  (** BODY of Figure 8 *)
}

let counted_norm (c : do_control) (body : block) ~parallel : norm =
  let step =
    Simplify.simplify (Option.value ~default:(EInt 1) c.d_step)
  in
  let v = EVar c.d_var in
  let test, done_ =
    match step with
    | EInt 1 -> (EBin (Le, v, c.d_hi), Some (EBin (Eq, v, c.d_hi)))
    | EInt n when n > 1 ->
        (EBin (Le, v, c.d_hi), Some (EBin (Gt, EBin (Add, v, step), c.d_hi)))
    | EInt n when n < 0 ->
        (EBin (Ge, v, c.d_hi), Some (EBin (Lt, EBin (Add, v, step), c.d_hi)))
    | _ ->
        (* symbolic stride: assume positive, no done-test *)
        (EBin (Le, v, c.d_hi), None)
  in
  {
    n_init = [ Ast.assign c.d_var c.d_lo ];
    n_test = test;
    n_increment = [ Ast.assign c.d_var (EBin (Add, v, step)) ];
    n_body = body;
    n_var = Some c.d_var;
    n_done = done_;
    n_parallel = parallel;
  }

(** Peel a trailing [v = v + c] / [v = v - c] update off a WHILE body when
    [v] occurs in the test and is updated nowhere else in the body; the
    peeled statement becomes the increment phase. *)
let peel_increment (test : expr) (body : block) : block * block * string option
    =
  match List.rev body with
  | SAssign (({ lv_name = v; lv_index = [] } as lvx), EBin ((Add | Sub), EVar v', _))
    :: rev_rest
    when v = v'
         && List.mem v (Ast_util.expr_vars test)
         && not
              (List.exists
                 (fun s ->
                   List.mem v
                     (Ast_util.assigned_vars [ s ]))
                 rev_rest) ->
      let incr_stmt =
        match List.rev body with s :: _ -> s | [] -> assert false
      in
      ignore (lvx : lvalue);
      (List.rev rev_rest, [ incr_stmt ], Some v)
  | _ -> (body, [], None)

(** Normalize one loop statement.  [fresh] supplies names for synthetic
    control variables (needed for post-test loops). *)
let of_loop ~(fresh : Fresh.t) (s : stmt) : norm option =
  (* the phase recognizers below match statement shapes deeply: drop
     source locations up front (idempotent) *)
  match strip_locs_stmt s with
  | SDo (c, body) -> Some (counted_norm c body ~parallel:false)
  | SForall (c, body) -> Some (counted_norm c body ~parallel:true)
  | SWhile (test, body) ->
      let body, increment, var = peel_increment test body in
      Some
        {
          n_init = [];
          n_test = test;
          n_increment = increment;
          n_body = body;
          n_var = var;
          n_done = None;
          n_parallel = false;
        }
  | SDoWhile (body, test) ->
      (* post-test loop: the pre-test normal form needs a first-iteration
         flag:  first = .TRUE.; WHILE (first .OR. test) { first = .FALSE.;
         body }.  Requires [test] to be evaluable before the first
         iteration (Fortran's eager .OR.). *)
      let first = Fresh.fresh fresh "first" in
      Some
        {
          n_init = [ Ast.assign first (EBool true) ];
          n_test = EBin (Or, EVar first, test);
          n_increment = [];
          n_body = Ast.assign first (EBool false) :: body;
          n_var = None;
          n_done = None;
          n_parallel = false;
        }
  | _ -> None

(** Reconstruct an executable loop from a normal form:
    [init; WHILE test { body; increment }] — Figure 8's right-hand shape. *)
let to_while (n : norm) : block =
  n.n_init @ [ SWhile (n.n_test, n.n_body @ n.n_increment) ]

(** Normalize a perfect two-level nest.  [stmt] must be a loop whose body
    contains exactly one loop; statements before the inner loop join
    [inner.n_init], statements after it join [outer.n_increment] (Figure 8's
    GENNEST shape, see the module comment). *)
let of_nest ~(fresh : Fresh.t) (s : stmt) : (nest, string) result =
  match of_loop ~fresh s with
  | None -> Error "not a loop statement"
  | Some outer0 -> (
      match Lf_analysis.Loop_info.split_around_loop outer0.n_body with
      | None -> Error "outer loop body must contain exactly one inner loop"
      | Some (pre, inner_loop, post) -> (
          let inner_stmt =
            match inner_loop.Lf_analysis.Loop_info.kind with
            | Lf_analysis.Loop_info.KDo c ->
                SDo (c, inner_loop.Lf_analysis.Loop_info.body)
            | Lf_analysis.Loop_info.KWhile e ->
                SWhile (e, inner_loop.Lf_analysis.Loop_info.body)
            | Lf_analysis.Loop_info.KDoWhile e ->
                SDoWhile (inner_loop.Lf_analysis.Loop_info.body, e)
            | Lf_analysis.Loop_info.KForall c ->
                SForall (c, inner_loop.Lf_analysis.Loop_info.body)
          in
          match of_loop ~fresh inner_stmt with
          | None -> Error "unsupported inner loop form"
          | Some inner ->
              let inner = { inner with n_init = pre @ inner.n_init } in
              let outer =
                {
                  outer0 with
                  n_increment = post @ outer0.n_increment;
                  n_body = [];
                }
              in
              Ok { outer; inner; body = inner.n_body }))

(** Recognize a WHILE loop that is really a counted loop — the shape the
    GOTO restructurer produces: the preceding block ends with [var = lo],
    the test simplifies to [var <= hi] (or [var < hi]), and the body's
    trailing update is [var = var + 1].  Returns the shortened prefix and
    the equivalent [DO] statement, enabling the counted-loop-only passes
    (SIMD partitioning, coalescing) on dusty-deck inputs. *)
let recognize_counted ~(pre : block) (s : stmt) : (block * stmt) option =
  let pre = strip_locs_block pre in
  match strip_locs_stmt s with
  | SWhile (test, body) -> (
      match peel_increment test body with
      | body', [ SAssign (_, EBin (Add, EVar v', EInt 1)) ], Some v
        when v = v' -> (
          let hi =
            match Simplify.simplify test with
            | EBin (Le, EVar x, hi) when x = v -> Some hi
            | EBin (Lt, EVar x, hi) when x = v ->
                Some (Simplify.simplify (EBin (Sub, hi, EInt 1)))
            | EBin (Ge, hi, EVar x) when x = v -> Some hi
            | EBin (Gt, hi, EVar x) when x = v ->
                Some (Simplify.simplify (EBin (Sub, hi, EInt 1)))
            | _ -> None
          in
          match (hi, List.rev pre) with
          | Some hi, SAssign ({ lv_name = v''; lv_index = [] }, lo) :: rest
            when v'' = v
                 && not (List.mem v (Ast_util.expr_vars hi))
                 && not (List.mem v (Ast_util.expr_vars lo)) ->
              Some (List.rev rest, SDo (Ast.do_control v lo hi, body'))
          | _ -> None)
      | _ -> None)
  | _ -> None

(** Reconstruct GENNEST (Figure 8's left column) from a normalized nest:
    the original program up to loop-form normalization. *)
let nest_to_block (n : nest) : block =
  n.outer.n_init
  @ [
      SWhile
        ( n.outer.n_test,
          n.inner.n_init
          @ [ SWhile (n.inner.n_test, n.body @ n.inner.n_increment) ]
          @ n.outer.n_increment );
    ]
