(** The compiler pipeline (paper §6, "Loop Flattening from the Compiler's
    Perspective"): applicability, safety, profitability, and the program-
    level driver that rewrites a whole [Ast.program].

    - {b Applicability}: "ensured whenever there are multiple loops fully
      contained in each other" — checked structurally on the AST
      ([Lf_analysis.Loop_info]); GOTO loops are restructured first.
    - {b Safety}: "a sufficient condition is that the loop into which we
      lift an inner loop body can be parallelized" — via
      [Lf_analysis.Parallel], or by user assertion (FORALL / [trusted]).
    - {b Profitability}: "we can relatively safely assume profitability
      whenever the inner loop bounds may vary across the processors" —
      checked by testing whether the inner guard depends on the outer
      induction variable. *)

open Lf_lang
open Lf_lang.Ast

type target =
  | Sequential  (** flatten only, stay at the F77 level *)
  | Simd of {
      decomp : Simdize.decomp;
      p : expr;  (** processor-count expression *)
    }

type options = {
  variant : Flatten.variant option;  (** [None] = choose automatically *)
  assume_inner_nonempty : bool;
  trusted_parallel : bool;  (** user asserts outer-loop independence *)
  pure_subroutines : string list;
  impure_funcs : string list;
  deep : bool;  (** flatten towers deeper than two levels (§4) *)
  target : target;
}

let default_options =
  {
    variant = None;
    assume_inner_nonempty = false;
    trusted_parallel = false;
    pure_subroutines = [];
    impure_funcs = [];
    deep = false;
    target = Sequential;
  }

type outcome = {
  program : program;
  variant_used : Flatten.variant;
  safety : Lf_analysis.Parallel.result;
  profitable : bool;
  plural_vars : string list;
  notes : string list;
}

(** Split a block around its first top-level loop statement.  Strips
    [SLoc] wrappers first (the split pieces feed shape-matching
    transforms, which operate on bare statements). *)
let split_first_loop (b : block) : (block * stmt * block) option =
  let b = strip_locs_block b in
  let is_loop = function
    | SDo _ | SWhile _ | SDoWhile _ | SForall _ -> true
    | _ -> false
  in
  let rec go pre = function
    | [] -> None
    | s :: rest when is_loop s -> Some (List.rev pre, s, rest)
    | s :: rest -> go (s :: pre) rest
  in
  go [] b

(** Profitability: do the inner loop's trip counts vary with the outer
    iteration (and hence, after partitioning, across processors)? *)
let profitable (n : Normalize.nest) : bool =
  match n.Normalize.outer.Normalize.n_var with
  | None -> true  (* non-counted outer loop: assume variation *)
  | Some v ->
      let inner_control_vars =
        Ast_util.expr_vars n.Normalize.inner.Normalize.n_test
        @ Ast_util.read_vars n.Normalize.inner.Normalize.n_init
      in
      List.mem v inner_control_vars
      (* bounds like L(i): indexed through the outer variable *)
      || List.exists
           (fun e -> List.mem v (Ast_util.expr_vars e))
           (Ast_util.fold_stmts
              (fun acc s ->
                match s with
                | SAssign (_, e) -> e :: acc
                | _ -> acc)
              []
              n.Normalize.inner.Normalize.n_init)

(** Flatten the first loop nest of [p]'s body.  Returns the transformed
    program plus diagnostics.  Fails (with an explanatory message) when the
    nest is not applicable or not safe. *)
let flatten_program ?(opts = default_options) (p : program) :
    (outcome, string) result =
  let fresh = Fresh.of_program p in
  let body = Lf_analysis.Loop_info.restructure_gotos p.p_body in
  match split_first_loop body with
  | None -> Error "no loop found in program body"
  | Some (pre, loop_stmt, post) -> (
      (* dusty-deck recovery: a restructured GOTO loop is a WHILE that is
         really counted; reroll it so the counted-only passes apply *)
      let pre, loop_stmt =
        match Normalize.recognize_counted ~pre loop_stmt with
        | Some (pre', s') -> (pre', s')
        | None -> (pre, loop_stmt)
      in
      (* applicability: perfect tower (two levels, or deeper with
         [opts.deep]) *)
      let deep_collapse () =
        (* pre-flatten levels below the outermost pair, leaving a
           two-level nest for the main path *)
        if not opts.deep then Ok loop_stmt
        else
          let purity =
            Lf_analysis.Side_effects.env ~impure_funcs:opts.impure_funcs ()
          in
          match
            Lf_analysis.Loop_info.split_around_loop
              (match loop_stmt with
              | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b)
                ->
                  b
              | _ -> [])
          with
          | None -> Ok loop_stmt
          | Some (pre, inner, post) -> (
              let inner_stmt =
                match inner.Lf_analysis.Loop_info.kind with
                | Lf_analysis.Loop_info.KDo c ->
                    SDo (c, inner.Lf_analysis.Loop_info.body)
                | Lf_analysis.Loop_info.KWhile e ->
                    SWhile (e, inner.Lf_analysis.Loop_info.body)
                | Lf_analysis.Loop_info.KDoWhile e ->
                    SDoWhile (inner.Lf_analysis.Loop_info.body, e)
                | Lf_analysis.Loop_info.KForall c ->
                    SForall (c, inner.Lf_analysis.Loop_info.body)
              in
              match
                Flatten.flatten_deep ~fresh ~purity
                  ~assume_inner_nonempty:opts.assume_inner_nonempty
                  ?variant:opts.variant inner_stmt
              with
              | Error r -> Error (Fmt.str "%a" Flatten.pp_rejection r)
              | Ok (inner_block, _) -> (
                  match loop_stmt with
                  | SDo (c, _) -> Ok (SDo (c, pre @ inner_block @ post))
                  | SWhile (e, _) -> Ok (SWhile (e, pre @ inner_block @ post))
                  | SDoWhile (_, e) ->
                      Ok (SDoWhile (pre @ inner_block @ post, e))
                  | SForall (c, _) -> Ok (SForall (c, pre @ inner_block @ post))
                  | s -> Ok s))
      in
      match deep_collapse () with
      | Error e -> Error ("deep flattening failed: " ^ e)
      | Ok loop_stmt -> (
      match Normalize.of_nest ~fresh loop_stmt with
      | Error e -> Error ("not applicable: " ^ e)
      | Ok nest -> (
          (* sum reductions: acceptable carried scalars, lowered to
             per-lane partials on the SIMD path *)
          let reduction_candidates =
            let exclude =
              List.filter_map Fun.id
                [ nest.Normalize.outer.Normalize.n_var;
                  nest.Normalize.inner.Normalize.n_var ]
            in
            match loop_stmt with
            | SDo (_, body) | SForall (_, body) | SWhile (_, body)
            | SDoWhile (body, _) ->
                Simdize.sum_reduction_candidates ~exclude body
            | _ -> []
          in
          (* safety *)
          let safety =
            Lf_analysis.Parallel.check_loop
              ~pure_subroutines:opts.pure_subroutines
              ~reductions:reduction_candidates
              ~trusted:opts.trusted_parallel loop_stmt
          in
          if not safety.Lf_analysis.Parallel.parallel then
            (* cite the lint rule and source line for the refusal; the
               lint re-analyzes the original (located) body, so the
               citation points into the user's source *)
            let citation =
              let report =
                Lf_analysis.Lint.check_program
                  ~pure_subroutines:opts.pure_subroutines
                  ~impure_funcs:opts.impure_funcs p
              in
              match Lf_analysis.Lint.first_error report with
              | Some d -> Fmt.str " [%s]" (Lf_analysis.Lint.cite d)
              | None -> ""
            in
            Error
              (Fmt.str "not safe: %a%s"
                 Fmt.(
                   list ~sep:(any "; ") Lf_analysis.Parallel.pp_obstacle)
                 safety.Lf_analysis.Parallel.obstacles citation)
          else
            let purity =
              Lf_analysis.Side_effects.env ~impure_funcs:opts.impure_funcs ()
            in
            let flat, variant_used =
              match opts.variant with
              | Some v -> (
                  match
                    Flatten.flatten ~fresh ~purity
                      ~assume_inner_nonempty:opts.assume_inner_nonempty v nest
                  with
                  | Ok b -> (Some b, v)
                  | Error _ -> (None, v))
              | None ->
                  let b, v =
                    Flatten.flatten_auto ~fresh ~purity
                      ~assume_inner_nonempty:opts.assume_inner_nonempty nest
                  in
                  (Some b, v)
            in
            match flat with
            | None ->
                Error
                  (Fmt.str "variant %s not applicable to this nest"
                     (Flatten.variant_to_string variant_used))
            | Some flat_block -> (
                let new_vars =
                  List.filter
                    (fun v ->
                      not
                        (List.exists (fun d -> d.dc_name = v) p.p_decls
                        || List.mem v (Ast_util.assigned_vars p.p_body)
                        || List.mem v (Ast_util.read_vars p.p_body)))
                    (Ast_util.assigned_vars flat_block)
                in
                let decl_of v =
                  (* guard flags are logical; everything else integer *)
                  if String.length v >= 1 && v.[0] = 't' then
                    Ast.scalar TLogical v
                  else Ast.scalar TInt v
                in
                match opts.target with
                | Sequential ->
                    let program =
                      {
                        p with
                        p_decls = p.p_decls @ List.map decl_of new_vars;
                        p_body = pre @ flat_block @ post;
                      }
                    in
                    Ok
                      {
                        program;
                        variant_used;
                        safety;
                        profitable = profitable nest;
                        plural_vars = [];
                        notes = [];
                      }
                | Simd { decomp; p = pexpr } -> (
                    match
                      ( nest.Normalize.outer.Normalize.n_var,
                        loop_stmt )
                    with
                    | Some var, (SDo (c, _) | SForall (c, _)) ->
                        let flat_block, _red =
                          Simdize.lower_sum_reductions ~fresh
                            reduction_candidates flat_block
                        in
                        let fs =
                          Simdize.simdize_flattened ~fresh ~decomp ~p:pexpr
                            ~var ~lo:c.d_lo ~hi:c.d_hi flat_block
                        in
                        let plural = fs.Simdize.fs_plural in
                        let decls =
                          p.p_decls
                          @ List.filter_map
                              (fun v ->
                                if List.exists (fun d -> d.dc_name = v) p.p_decls
                                then None
                                else
                                  Some
                                    { (decl_of v) with dc_plural =
                                        List.mem v plural })
                              (Ast_util.assigned_vars fs.Simdize.fs_block)
                        in
                        let decls =
                          List.map
                            (fun d ->
                              if List.mem d.dc_name plural then
                                { d with dc_plural = true }
                              else d)
                            decls
                        in
                        let program =
                          {
                            p with
                            p_decls = decls;
                            p_body = pre @ fs.Simdize.fs_block @ post;
                          }
                        in
                        Ok
                          {
                            program;
                            variant_used;
                            safety;
                            profitable = profitable nest;
                            plural_vars = plural;
                            notes =
                              [
                                Fmt.str "%s decomposition over P = %s"
                                  (Simdize.decomp_to_string decomp)
                                  (Pretty.expr_to_string pexpr);
                              ];
                          }
                    | _ ->
                        Error
                          "SIMD target requires a counted (DO/FORALL) outer \
                           loop")))))

(** SIMDize the first nest of a program {e without} flattening — the naive
    SIMD version the paper's Figures 5 and 14 start from.  Used as the
    baseline in the evaluation. *)
let simdize_program_naive ?(opts = default_options) (p : program) :
    (outcome, string) result =
  match opts.target with
  | Sequential -> Error "naive SIMDization needs a SIMD target"
  | Simd { decomp; p = pexpr } -> (
      let fresh = Fresh.of_program p in
      let body = Lf_analysis.Loop_info.restructure_gotos p.p_body in
      match split_first_loop body with
      | None -> Error "no loop found in program body"
      | Some (pre, loop_stmt, post) -> (
          match Simdize.simdize_nest ~fresh ~decomp ~p:pexpr loop_stmt with
          | Error e -> Error e
          | Ok ns ->
              let plural = ns.Simdize.ns_plural in
              let new_vars =
                List.filter
                  (fun v ->
                    not (List.exists (fun d -> d.dc_name = v) p.p_decls))
                  (Ast_util.assigned_vars ns.Simdize.ns_block)
              in
              let decls =
                List.map
                  (fun d ->
                    if List.mem d.dc_name plural then
                      { d with dc_plural = true }
                    else d)
                  p.p_decls
                @ List.map
                    (fun v ->
                      { (Ast.scalar TInt v) with dc_plural = List.mem v plural })
                    new_vars
              in
              Ok
                {
                  program =
                    { p with p_decls = decls;
                      p_body = pre @ ns.Simdize.ns_block @ post };
                  variant_used = Flatten.General;
                  safety = { Lf_analysis.Parallel.parallel = true; obstacles = [] };
                  profitable = true;
                  plural_vars = plural;
                  notes = [ "naive (unflattened) SIMDization" ];
                }))
