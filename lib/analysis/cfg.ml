(** Control-flow graphs for the mini-Fortran AST, including GOTO edges.

    The syntactic analyses in this library ([Loop_info], [Parallel]) walk
    statement trees, so GOTO control flow has to be restructured away
    before they apply.  The dataflow framework ([Dataflow], [Chains])
    instead works on an explicit statement-grained CFG in which structured
    statements and GOTO/label jumps are both just edges: one node per
    simple statement, plus test/header nodes for branches and loops, so
    every node has a well-defined gen/kill set and (when the parser
    produced the program) a source location for diagnostics.

    WHERE is modeled by its vector semantics: both branches execute in
    order under complementary masks, so they are {e sequential} in the
    CFG, and assignments inside them are flagged [masked] — a masked
    definition may not commit on every lane and therefore never kills. *)

open Lf_lang
open Lf_lang.Ast

type kind =
  | Entry
  | Exit
  | Stmt of stmt
      (** bare simple statement: assignment, call, GOTO, label, comment *)
  | Test of expr  (** IF / WHILE / DO WHILE / WHERE condition *)
  | Head of do_control * bool
      (** DO / FORALL header ([true] for FORALL): defines the induction
          variable, reads the bounds, re-tested on the back edge *)
  | Join  (** merge point after a branch; also the DO WHILE loop head *)

type node = {
  id : int;
  kind : kind;
  loc : Errors.pos option;
  masked : bool;  (** inside a WHERE branch (definitions do not kill) *)
  mutable succ : int list;
  mutable pred : int list;
}

type t = {
  nodes : node array;  (** indexed by [id] *)
  entry : int;
  exit_ : int;
}

(** A definition performed by a node.  [def_must] marks certain, whole
    definitions (scalar assignment outside any mask, loop-header binding);
    array-element stores, masked stores and by-reference subroutine
    arguments are may-definitions and never kill. *)
type def = {
  def_var : string;
  def_must : bool;
}

let defs (n : node) : def list =
  match n.kind with
  | Stmt (SAssign (l, _)) ->
      [ { def_var = l.lv_name; def_must = l.lv_index = [] && not n.masked } ]
  | Stmt (SCall (_, args)) ->
      (* by-reference argument passing: a subroutine with unknown effects
         may write any variable mentioned in its arguments *)
      List.concat_map Ast_util.expr_vars args
      |> List.sort_uniq String.compare
      |> List.map (fun v -> { def_var = v; def_must = false })
  | Head (c, _) -> [ { def_var = c.d_var; def_must = not n.masked } ]
  | _ -> []

let uses (n : node) : string list =
  (match n.kind with
  | Stmt (SAssign (l, e)) ->
      (* an element store reads the rest of the array: it survives *)
      Ast_util.expr_vars e
      @ List.concat_map Ast_util.expr_vars l.lv_index
      @ (if l.lv_index <> [] then [ l.lv_name ] else [])
  | Stmt (SCall (_, args)) -> List.concat_map Ast_util.expr_vars args
  | Stmt (SCondGoto (e, _)) -> Ast_util.expr_vars e
  | Test e -> Ast_util.expr_vars e
  | Head (c, _) ->
      Ast_util.expr_vars c.d_lo @ Ast_util.expr_vars c.d_hi
      @ (match c.d_step with Some e -> Ast_util.expr_vars e | None -> [])
  | Entry | Exit | Join | Stmt _ -> [])
  |> List.sort_uniq String.compare

(** Build the CFG of a block.  GOTOs to labels that never appear simply
    flow to the exit (the interpreters raise at run time; the CFG stays
    conservative). *)
let build (b : block) : t =
  let rev_nodes = ref [] in
  let count = ref 0 in
  let mk ?loc ?(masked = false) kind =
    let n = { id = !count; kind; loc; masked; succ = []; pred = [] } in
    incr count;
    rev_nodes := n :: !rev_nodes;
    n
  in
  let edge a b =
    if not (List.mem b.id a.succ) then begin
      a.succ <- a.succ @ [ b.id ];
      b.pred <- b.pred @ [ a.id ]
    end
  in
  let link ins n = List.iter (fun f -> edge f n) ins in
  let labels = Hashtbl.create 8 in
  let label_node ?loc l =
    match Hashtbl.find_opt labels l with
    | Some n -> n
    | None ->
        let n = mk ?loc (Stmt (SLabel l)) in
        Hashtbl.add labels l n;
        n
  in
  let entry = mk Entry in
  (* [ins] is the running frontier of dangling exits; each statement links
     the frontier to its entry and returns the new frontier *)
  let rec block_ ~masked ~loc ins b =
    List.fold_left (fun ins s -> stmt_ ~masked ~loc ins s) ins b
  and stmt_ ~masked ~loc ins s =
    match s with
    | SLoc (p, s) -> stmt_ ~masked ~loc:(Some p) ins s
    | SComment _ -> ins
    | (SAssign _ | SCall _) as s ->
        let n = mk ?loc ~masked (Stmt s) in
        link ins n;
        [ n ]
    | SLabel l ->
        let n = label_node ?loc l in
        link ins n;
        [ n ]
    | SGoto l as s ->
        let n = mk ?loc ~masked (Stmt s) in
        link ins n;
        edge n (label_node l);
        []
    | SCondGoto (_, l) as s ->
        let n = mk ?loc ~masked (Stmt s) in
        link ins n;
        edge n (label_node l);
        [ n ]
    | SIf (e, t, f) ->
        let tn = mk ?loc ~masked (Test e) in
        link ins tn;
        let o1 = block_ ~masked ~loc [ tn ] t in
        let o2 = block_ ~masked ~loc [ tn ] f in
        let j = mk ?loc ~masked Join in
        link (o1 @ o2) j;
        [ j ]
    | SWhere (e, t, f) ->
        (* both branches run, in order, under complementary masks *)
        let tn = mk ?loc ~masked (Test e) in
        link ins tn;
        let o1 = block_ ~masked:true ~loc [ tn ] t in
        block_ ~masked:true ~loc o1 f
    | SDo (c, body) ->
        let h = mk ?loc ~masked (Head (c, false)) in
        link ins h;
        let outs = block_ ~masked ~loc [ h ] body in
        link outs h;
        [ h ]
    | SForall (c, body) ->
        let h = mk ?loc ~masked (Head (c, true)) in
        link ins h;
        let outs = block_ ~masked ~loc [ h ] body in
        link outs h;
        [ h ]
    | SWhile (e, body) ->
        let tn = mk ?loc ~masked (Test e) in
        link ins tn;
        let outs = block_ ~masked ~loc [ tn ] body in
        link outs tn;
        [ tn ]
    | SDoWhile (body, e) ->
        let h = mk ?loc ~masked Join in
        link ins h;
        let outs = block_ ~masked ~loc [ h ] body in
        let tn = mk ?loc ~masked (Test e) in
        link outs tn;
        edge tn h;
        [ tn ]
  in
  let outs = block_ ~masked:false ~loc:None [ entry ] b in
  let exit_ = mk Exit in
  link outs exit_;
  let nodes = Array.of_list (List.rev !rev_nodes) in
  (* flow that dies (a GOTO whose label never appears) falls to the exit *)
  Array.iter
    (fun n -> if n.succ = [] && n.id <> exit_.id then edge n exit_)
    nodes;
  { nodes; entry = entry.id; exit_ = exit_.id }

let node (cfg : t) id = cfg.nodes.(id)
let size (cfg : t) = Array.length cfg.nodes

let kind_to_string = function
  | Entry -> "entry"
  | Exit -> "exit"
  | Join -> "join"
  | Test e -> "test " ^ Pretty.expr_to_string e
  | Head (c, forall) ->
      Fmt.str "%s %s" (if forall then "forall" else "do") c.d_var
  | Stmt s -> String.trim (Pretty.stmt_to_string s)

let pp ppf (cfg : t) =
  Array.iter
    (fun n ->
      Fmt.pf ppf "%d [%s] -> %a@." n.id (kind_to_string n.kind)
        Fmt.(list ~sep:(any ",") int)
        n.succ)
    cfg.nodes

(** Nodes whose statements perform a subroutine call, with locations —
    used by the lint's unknown-effects rule. *)
let calls (cfg : t) : (string * Errors.pos option) list =
  Array.to_list cfg.nodes
  |> List.filter_map (fun n ->
         match n.kind with
         | Stmt (SCall (name, _)) -> Some (name, n.loc)
         | _ -> None)
