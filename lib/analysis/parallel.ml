(** Parallelizability check for the loop that receives the flattened body.

    A loop is parallelizable when
    - it carries no array dependence ([Depend]),
    - every scalar it writes is privatizable (defined before use in each
      iteration) or is the loop's own induction variable, and
    - it calls no subroutine with unknown effects.

    A [FORALL] header is a user assertion of independence (paper §6:
    safety "ensured ... by user information (like a FORALL loop header)"),
    so it is accepted without analysis. *)

open Lf_lang
open Lf_lang.Ast

module SS = Set.Make (String)

(** Scalars read in [b] before being (certainly) assigned, per standard
    forward may/must dataflow.  Branches expose the union of their exposed
    reads; a variable is defined after a branch only if both sides define
    it; a loop body may execute zero times, so definitions inside do not
    count as definitions after the loop, while exposed reads do. *)
let upward_exposed (b : block) : SS.t =
  let exposed = ref SS.empty in
  let note defined vars =
    List.iter
      (fun v -> if not (SS.mem v defined) then exposed := SS.add v !exposed)
      vars
  in
  let rec go defined (b : block) : SS.t =
    List.fold_left stmt defined b
  and stmt defined s =
    match s with
    | SLoc (_, s) -> stmt defined s
    | SComment _ | SLabel _ | SGoto _ -> defined
    | SCondGoto (e, _) ->
        note defined (Ast_util.expr_vars e);
        defined
    | SAssign (l, e) ->
        note defined (Ast_util.expr_vars e);
        note defined (List.concat_map Ast_util.expr_vars l.lv_index);
        if l.lv_index = [] then SS.add l.lv_name defined
        else (
          (* writing one element does not define the whole array *)
          note defined [];
          defined)
    | SCall (_, args) ->
        note defined (List.concat_map Ast_util.expr_vars args);
        defined
    | SIf (e, t, f) | SWhere (e, t, f) ->
        note defined (Ast_util.expr_vars e);
        let dt = go defined t and df = go defined f in
        SS.inter dt df
    | SDo (c, body) | SForall (c, body) ->
        note defined (Ast_util.expr_vars c.d_lo);
        note defined (Ast_util.expr_vars c.d_hi);
        Option.iter (fun e -> note defined (Ast_util.expr_vars e)) c.d_step;
        let defined = SS.add c.d_var defined in
        ignore (go defined body);
        (* body may run zero times, but the DO statement always defines
           the induction variable *)
        defined
    | SWhile (e, body) ->
        note defined (Ast_util.expr_vars e);
        ignore (go defined body);
        defined
    | SDoWhile (body, e) ->
        (* post-test loop: the body runs at least once *)
        let d = go defined body in
        note d (Ast_util.expr_vars e);
        d
  in
  ignore (go SS.empty b);
  !exposed

type obstacle =
  | CarriedScalar of string
      (** scalar live across iterations (read before written) *)
  | CarriedArray
  | UnknownCall of string
  | IrregularControl  (** GOTO in or out of the loop body *)

let pp_obstacle ppf = function
  | CarriedScalar v -> Fmt.pf ppf "loop-carried scalar %s" v
  | CarriedArray -> Fmt.string ppf "possible loop-carried array dependence"
  | UnknownCall s -> Fmt.pf ppf "call to subroutine %s with unknown effects" s
  | IrregularControl -> Fmt.string ppf "unstructured control flow in body"

type result = {
  parallel : bool;
  obstacles : obstacle list;
}

let has_gotos (b : block) =
  Ast_util.fold_stmts
    (fun acc s ->
      match s with SGoto _ | SCondGoto _ | SLabel _ -> true | _ -> acc)
    false b

(** [check ?pure_subroutines ?invariants var body] decides whether the loop
    [DO var = ... body] can run in parallel.  [invariants] are extra
    variables known not to change inside the loop (problem-size parameters,
    lookup tables); variables not assigned in the body are inferred
    invariant automatically.  [pure_subroutines] are calls the caller
    certifies as side-effect free on shared state; [reductions] are
    scalars the caller will lower to per-processor partials (their carried
    dependence is therefore acceptable). *)
let check ?bounds ?(pure_subroutines = []) ?(invariants = [])
    ?(reductions = []) (var : string) (body : block) : result =
  let assigned = Ast_util.assigned_vars body in
  let invariant v =
    v <> var && (List.mem v invariants || not (List.mem v assigned))
  in
  let obstacles = ref [] in
  if has_gotos body then obstacles := IrregularControl :: !obstacles;
  List.iter
    (fun s ->
      if not (List.mem s pure_subroutines) then
        obstacles := UnknownCall s :: !obstacles)
    (Ast_util.called_subroutines body);
  (* privatizable scalars: written scalars must not be upward-exposed *)
  let exposed = upward_exposed body in
  let written_scalars =
    Ast_util.fold_stmts
      (fun acc s ->
        match s with
        | SAssign ({ lv_name = v; lv_index = [] }, _) -> v :: acc
        | SDo (c, _) | SForall (c, _) -> c.d_var :: acc
        | _ -> acc)
      [] body
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun v ->
      if v <> var && SS.mem v exposed && not (List.mem v reductions) then
        obstacles := CarriedScalar v :: !obstacles)
    written_scalars;
  if Depend.loop_carried_array_dependence ?bounds var invariant body then
    obstacles := CarriedArray :: !obstacles;
  { parallel = !obstacles = []; obstacles = List.rev !obstacles }

(** Constant iteration range of a DO control, when both bounds are integer
    literals and the step is 1 — feeds the weak SIV tests in [Depend]. *)
let const_bounds (c : do_control) : (int * int) option =
  match (c.d_lo, c.d_hi, c.d_step) with
  | EInt lo, EInt hi, (None | Some (EInt 1)) -> Some (lo, hi)
  | _ -> None

(** Decide parallelizability of a loop statement.  FORALL is accepted by
    assertion; DO loops are analyzed directly; WHILE loops are analyzed
    through their basic induction variable when one is recognizable
    (covering restructured GOTO loops), and rejected otherwise unless
    asserted via [trusted]. *)
let check_loop ?pure_subroutines ?invariants ?reductions ?(trusted = false)
    (s : stmt) : result =
  match strip_loc s with
  | SForall _ -> { parallel = true; obstacles = [] }
  | _ when trusted -> { parallel = true; obstacles = [] }
  | SDo (c, body) ->
      check ?bounds:(const_bounds c) ?pure_subroutines ?invariants ?reductions
        c.d_var body
  | SWhile (test, body) -> (
      match Loop_info.induction_candidates test body with
      | [ var ] -> check ?pure_subroutines ?invariants ?reductions var body
      | _ -> { parallel = false; obstacles = [ IrregularControl ] })
  | SDoWhile _ -> { parallel = false; obstacles = [ IrregularControl ] }
  | _ -> { parallel = false; obstacles = [ IrregularControl ] }
