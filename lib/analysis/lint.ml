(** flattenlint: static checking of the paper's loop-flattening
    preconditions, with located diagnostics.

    The check mirrors the pipeline's decision procedure — applicability
    (§6: a perfect two-level nest), safety (§6: the receiving loop can be
    parallelized), and the §4 purity conditions that select between the
    general and optimized variants — but runs it over the dataflow layer
    ([Cfg], [Dataflow], [Chains]) on the {e located} AST, so every refusal
    can cite the offending source line and a stable rule id.

    Rules:
    - LF001 (warning): flattening not applicable — no perfect two-level
      nest to flatten.
    - LF002 (error): irregular control flow in the receiving loop —
      unstructured GOTO, unrecognizable induction variable, or post-test
      loop.
    - LF003 (error): scalar carried across iterations of the receiving
      loop (live on entry to the body and written inside it).
    - LF004 (error): possible loop-carried array dependence in the
      receiving loop (ZIV/SIV analysis, [Depend]).
    - LF005 (error): call to a subroutine with unknown effects in the
      receiving loop.
    - LF006 (warning): impure test/init phase — only the general variant
      (Figs. 9/10) applies, not the optimized ones (Figs. 11/12).
    - LF007 (error/warning): FORALL asserts independent iterations, but a
      cross-lane array dependence exists (error), or a scalar assigned in
      the body must be privatized per lane (warning).
    - LF008 (warning): a masked (WHERE) assignment reads the array it
      writes at different elements.

    A program is {e lint-safe} when it produces no [Error] diagnostics. *)

open Lf_lang
open Lf_lang.Ast

type severity =
  | Error
  | Warning

type diag = {
  d_rule : string;
  d_severity : severity;
  d_loc : Errors.pos option;
  d_msg : string;
}

type report = {
  diags : diag list;
  applicable : bool;  (** a flattenable two-level nest was found *)
  safe : bool;  (** no [Error] diagnostics *)
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

(** Every rule with its one-line description, in rule order — the
    [--rules] listing. *)
let rules =
  [
    ( "LF001",
      "applicability: flattening needs a perfect two-level loop nest (§6)" );
    ( "LF002",
      "irregular control flow in the receiving loop prevents \
       parallelization" );
    ( "LF003",
      "a scalar carried across iterations of the receiving loop prevents \
       parallelization (§6)" );
    ( "LF004",
      "a loop-carried array dependence in the receiving loop prevents \
       parallelization (§6)" );
    ( "LF005",
      "a call with unknown side effects prevents parallelizing the \
       receiving loop" );
    ( "LF006",
      "an impure test/init phase restricts flattening to the general \
       variant (§4, Figs. 9/10)" );
    ("LF007", "FORALL asserts independent iterations; the body violates it");
    ( "LF008",
      "a masked (WHERE) assignment reads the array it writes at different \
       elements" );
  ]

(** One-line description of each rule, for [--explain]-style output. *)
let rule_doc r =
  match List.assoc_opt r rules with
  | Some doc -> doc
  | None -> "unknown rule " ^ r

let diag ~loc d_rule d_severity fmt =
  Fmt.kstr (fun d_msg -> { d_rule; d_severity; d_loc = loc; d_msg }) fmt

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let is_loop s =
  match strip_loc s with
  | SDo _ | SWhile _ | SDoWhile _ | SForall _ -> true
  | _ -> false

let contains_loop b = List.exists is_loop b

(** Split a block around its first top-level loop statement, preserving
    [SLoc] wrappers (unlike [Pipeline.split_first_loop], which strips
    them: the lint needs the locations for diagnostics). *)
let split_located (b : block) : (block * stmt * block) option =
  let rec go pre = function
    | [] -> None
    | s :: rest when is_loop s -> Some (List.rev pre, s, rest)
    | s :: rest -> go (s :: pre) rest
  in
  go [] b

(** Fold [f acc loc s] over every (bare) statement with its innermost
    enclosing source location. *)
let rec fold_located f acc ~loc (b : block) =
  List.fold_left (fun acc s -> fold_located_stmt f acc ~loc s) acc b

and fold_located_stmt f acc ~loc s =
  match s with
  | SLoc (p, s) -> fold_located_stmt f acc ~loc:(Some p) s
  | s -> (
      let acc = f acc loc s in
      match s with
      | SDo (_, b) | SWhile (_, b) | SDoWhile (b, _) | SForall (_, b) ->
          fold_located f acc ~loc b
      | SIf (_, t, e) | SWhere (_, t, e) ->
          fold_located f (fold_located f acc ~loc t) ~loc e
      | _ -> acc)

(** Mirror of [Simdize.sum_reduction_candidates] (lib/core): scalars only
    accumulated with [v = v + e] and read nowhere else.  The pipeline
    tolerates their carried dependence (it lowers them to per-lane
    partials), so the lint must accept exactly the same set. *)
let sum_reductions ~(exclude : string list) (b : block) : string list =
  let upd = Hashtbl.create 4 in
  let bad = Hashtbl.create 4 in
  let reads = Hashtbl.create 8 in
  let note_reads vs = List.iter (fun r -> Hashtbl.replace reads r ()) vs in
  Ast_util.fold_stmts
    (fun () s ->
      match s with
      | SAssign ({ lv_name = v; lv_index = [] }, EBin (Add, EVar v', e))
        when v = v' ->
          if List.mem v (Ast_util.expr_vars e) then Hashtbl.replace bad v ()
          else Hashtbl.replace upd v ();
          note_reads (Ast_util.expr_vars e)
      | SAssign ({ lv_name = v; lv_index = [] }, EBin (Add, e, EVar v'))
        when v = v' ->
          if List.mem v (Ast_util.expr_vars e) then Hashtbl.replace bad v ()
          else Hashtbl.replace upd v ();
          note_reads (Ast_util.expr_vars e)
      | SAssign (l, e) ->
          if l.lv_index = [] then Hashtbl.replace bad l.lv_name ();
          note_reads
            (Ast_util.expr_vars e
            @ List.concat_map Ast_util.expr_vars l.lv_index)
      | SDo (c, _) | SForall (c, _) ->
          note_reads
            (Ast_util.expr_vars c.d_lo @ Ast_util.expr_vars c.d_hi
            @ Option.fold ~none:[] ~some:Ast_util.expr_vars c.d_step)
      | SWhile (e, _) | SDoWhile (_, e) | SIf (e, _, _) | SWhere (e, _, _)
      | SCondGoto (e, _) ->
          note_reads (Ast_util.expr_vars e)
      | SCall (_, args) -> note_reads (List.concat_map Ast_util.expr_vars args)
      | _ -> ())
    () b;
  Hashtbl.fold
    (fun v () acc ->
      if Hashtbl.mem bad v || Hashtbl.mem reads v || List.mem v exclude then
        acc
      else v :: acc)
    upd []
  |> List.sort String.compare

(** Array references appearing in each CFG node, with the node's source
    location — the located counterpart of [Depend.references]. *)
let located_refs (cfg : Cfg.t) : (Depend.ref_info * Errors.pos option) list =
  Array.to_list cfg.Cfg.nodes
  |> List.concat_map (fun n ->
         let reads es = List.concat_map Depend.expr_references es in
         let refs =
           match n.Cfg.kind with
           | Cfg.Stmt (SAssign (l, e)) ->
               (if l.lv_index <> [] then
                  [
                    {
                      Depend.r_array = l.lv_name;
                      r_subs = l.lv_index;
                      r_is_write = true;
                    };
                  ]
                else [])
               @ reads (l.lv_index @ [ e ])
           | Cfg.Stmt (SCall (_, args)) -> reads args
           | Cfg.Stmt (SCondGoto (e, _)) | Cfg.Test e -> reads [ e ]
           | Cfg.Head (c, _) ->
               reads ([ c.d_lo; c.d_hi ] @ Option.to_list c.d_step)
           | _ -> []
         in
         List.map (fun r -> (r, n.Cfg.loc)) refs)

(* ------------------------------------------------------------------ *)
(* Safety of the receiving loop (LF002-LF005)                          *)
(* ------------------------------------------------------------------ *)

(** Loop-carried array dependences, one diagnostic per offending array
    (LF004).  The verdicts come from the same ZIV/SIV machinery the
    pipeline uses, fed with the loop bounds when they are constant. *)
let carried_array_diags ?bounds ~rule ~severity ~what var invariant cfg :
    diag list =
  let refs = located_refs cfg in
  let conflict (r1, _) (r2, _) =
    Depend.refs_conflict ?bounds var invariant r1 r2
  in
  let rec scan seen acc = function
    | [] -> List.rev acc
    | ((r, loc) as rf) :: rest ->
        let hit =
          if List.mem r.Depend.r_array seen then None
          else
            let self =
              if r.Depend.r_is_write then conflict rf rf else None
            in
            match self with
            | Some v -> Some (v, loc)
            | None ->
                List.find_map
                  (fun ((r2, loc2) as rf2) ->
                    match conflict rf rf2 with
                    | Some v ->
                        (* cite the write side of the pair *)
                        let loc =
                          if r.Depend.r_is_write then loc
                          else if r2.Depend.r_is_write then loc2
                          else loc
                        in
                        Some (v, loc)
                    | None -> None)
                  rest
        in
        (match hit with
        | Some (v, loc) ->
            scan
              (r.Depend.r_array :: seen)
              (diag ~loc rule severity
                 "%s: references to %s may touch the same element in \
                  different iterations of the %s loop (%a)"
                 what r.Depend.r_array var Depend.pp_verdict v
              :: acc)
              rest
        | None -> scan seen acc rest)
  in
  scan [] [] refs

(** Scalars carried around the back edge of the receiving loop (LF003):
    written in the body yet live on entry to it — the chain-driven
    replacement for the syntactic [Parallel.upward_exposed] walk. *)
let carried_scalar_diags var reductions cfg body : diag list =
  let live = Dataflow.live_at_entry (Dataflow.liveness cfg) in
  let written =
    Ast_util.fold_stmts
      (fun acc -> function
        | SAssign ({ lv_name = v; lv_index = [] }, _) -> v :: acc
        | SDo (c, _) | SForall (c, _) -> c.d_var :: acc
        | _ -> acc)
      [] body
    |> List.sort_uniq String.compare
  in
  let chains = lazy (Chains.build cfg) in
  List.filter_map
    (fun v ->
      if v <> var && List.mem v live && not (List.mem v reductions) then
        let loc =
          match Chains.upward_exposed (Lazy.force chains) v with
          | u :: _ -> u.Chains.us_loc
          | [] -> (
              match Chains.defs_of_var (Lazy.force chains) v with
              | d :: _ -> d.Dataflow.ds_loc
              | [] -> None)
        in
        Some
          (diag ~loc "LF003" Error
             "scalar %s is carried across iterations of the %s loop (read \
              before it is written)"
             v var)
      else None)
    written

(** Calls with unknown effects inside the receiving loop (LF005). *)
let call_diags pure_subroutines cfg : diag list =
  Cfg.calls cfg
  |> List.filter_map (fun (name, loc) ->
         if List.mem name pure_subroutines then None
         else
           Some
             (diag ~loc "LF005" Error
                "call to subroutine %s with unknown effects in the \
                 receiving loop"
                name))

(** All safety rules for the receiving loop [DO var = ... body]. *)
let receiving_loop_diags ~pure_subroutines ?bounds ~inner_var var body :
    diag list =
  let cfg = Cfg.build body in
  let goto_diags =
    if Parallel.has_gotos body then
      [
        diag ~loc:(block_loc body) "LF002" Error
          "unstructured control flow (GOTO) in the receiving loop body";
      ]
    else []
  in
  let exclude = var :: Option.to_list inner_var in
  let reductions = sum_reductions ~exclude body in
  let assigned = Ast_util.assigned_vars body in
  let invariant v = v <> var && not (List.mem v assigned) in
  goto_diags
  @ call_diags pure_subroutines cfg
  @ carried_scalar_diags var reductions cfg body
  @ carried_array_diags ?bounds ~rule:"LF004" ~severity:Error
      ~what:"loop-carried dependence" var invariant cfg

(* ------------------------------------------------------------------ *)
(* Phase purity (LF006)                                                *)
(* ------------------------------------------------------------------ *)

(** §4 purity of the [init_2]/[test] phases: the optimized variants
    (Figs. 11/12) re-evaluate them under different control flow, so calls
    with side effects downgrade flattening to the general variant. *)
let phase_diags ~impure_funcs (outer_body : block) : diag list =
  match split_located outer_body with
  | None -> []
  | Some (pre, inner_stmt, _post) ->
      let penv = Side_effects.env ~impure_funcs () in
      let impure_block b =
        b <> []
        && not
             (Side_effects.block_writes_only penv (Ast_util.assigned_vars b)
                b)
      in
      let guard_exprs =
        match strip_loc inner_stmt with
        | SDo (c, _) | SForall (c, _) ->
            [ c.d_lo; c.d_hi ] @ Option.to_list c.d_step
        | SWhile (e, _) | SDoWhile (_, e) -> [ e ]
        | _ -> []
      in
      (if impure_block pre then
         [
           diag ~loc:(block_loc pre) "LF006" Warning
             "the init phase before the inner loop has side effects; only \
              the general variant (Figs. 9/10) applies";
         ]
       else [])
      @
      if
        List.exists
          (fun e -> not (Side_effects.expr_pure penv e))
          guard_exprs
      then
        [
          diag ~loc:(loc_of inner_stmt) "LF006" Warning
            "the inner loop guard has side effects; only the general \
             variant (Figs. 9/10) applies";
        ]
      else []

(* ------------------------------------------------------------------ *)
(* Plural races: FORALL (LF007) and WHERE (LF008)                      *)
(* ------------------------------------------------------------------ *)

let forall_diags ~loc (c : do_control) (fbody : block) : diag list =
  let cfg = Cfg.build fbody in
  let assigned = Ast_util.assigned_vars fbody in
  let invariant v = v <> c.d_var && not (List.mem v assigned) in
  let array_races =
    carried_array_diags
      ?bounds:(Parallel.const_bounds c)
      ~rule:"LF007" ~severity:Error ~what:"FORALL race" c.d_var invariant cfg
  in
  let scalar_warns =
    Ast_util.fold_stmts
      (fun acc -> function
        | SAssign ({ lv_name = v; lv_index = [] }, _) -> v :: acc
        | SDo (dc, _) | SForall (dc, _) -> dc.d_var :: acc
        | _ -> acc)
      [] fbody
    |> List.sort_uniq String.compare
    |> List.filter (fun v -> v <> c.d_var)
    |> List.map (fun v ->
           diag ~loc:(Option.fold ~none:loc ~some:Option.some
                        (block_loc fbody))
             "LF007" Warning
             "scalar %s assigned inside FORALL (%s) must be private per \
              iteration"
             v c.d_var)
  in
  array_races @ scalar_warns

let where_diags (t : block) (f : block) : diag list =
  let masked_assigns b =
    fold_located
      (fun acc loc s ->
        match s with
        | SAssign (l, e) when l.lv_index <> [] ->
            let bad =
              Depend.expr_references e
              |> List.exists (fun (r : Depend.ref_info) ->
                     r.Depend.r_array = l.lv_name
                     && r.Depend.r_subs <> l.lv_index)
            in
            if bad then
              diag ~loc "LF008" Warning
                "masked assignment to %s reads %s at different elements; \
                 the WHERE mask applies to stores, not to the loads"
                l.lv_name l.lv_name
              :: acc
            else acc
        | _ -> acc)
      [] ~loc:None b
    |> List.rev
  in
  masked_assigns t @ masked_assigns f

(** LF007/LF008 anywhere in the body (FORALL and WHERE may appear at any
    nesting level and independently of the flattenable nest). *)
let plural_diags (b : block) : diag list =
  fold_located
    (fun acc loc s ->
      match s with
      | SForall (c, fbody) -> acc @ forall_diags ~loc c fbody
      | SWhere (_, t, f) -> acc @ where_diags t f
      | _ -> acc)
    [] ~loc:None b

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Lint a statement block (a program body).  GOTO loops are restructured
    first when present, exactly as the pipeline does — at the cost of the
    source locations, which restructuring discards. *)
let check_block ?(pure_subroutines = []) ?(impure_funcs = []) (b : block) :
    report =
  let b =
    if Parallel.has_gotos b then Loop_info.restructure_gotos b else b
  in
  let plural = plural_diags b in
  let nest_diags, applicable =
    match split_located b with
    | None ->
        ( [
            diag ~loc:None "LF001" Warning
              "nothing to flatten: the program body contains no loop";
          ],
          false )
    | Some (_pre, outer_stmt, _post) -> (
        let oloc = loc_of outer_stmt in
        let receiving var ?bounds ~inner_var obody =
          let applicable =
            match split_located obody with
            | Some (_, _, post) when not (contains_loop post) -> true
            | _ -> false
          in
          let app_diags =
            if applicable then phase_diags ~impure_funcs obody
            else
              [
                diag ~loc:oloc "LF001" Warning
                  "flattening is not applicable: the %s loop does not \
                   contain exactly one inner loop (§6)"
                  var;
              ]
          in
          ( app_diags
            @ receiving_loop_diags ~pure_subroutines ?bounds ~inner_var var
                obody,
            applicable )
        in
        let inner_var_of obody =
          match split_located obody with
          | Some (_, s, _) -> (
              match strip_loc s with
              | SDo (c, _) | SForall (c, _) -> Some c.d_var
              | SWhile (test, ibody) -> (
                  match Loop_info.induction_candidates test ibody with
                  | [ v ] -> Some v
                  | _ -> None)
              | _ -> None)
          | None -> None
        in
        match strip_loc outer_stmt with
        | SDo (c, obody) ->
            receiving c.d_var
              ?bounds:(Parallel.const_bounds c)
              ~inner_var:(inner_var_of obody) obody
        | SForall (c, obody) ->
            (* user assertion of independence (§6); LF007 above checks it,
               so only applicability remains *)
            let applicable =
              match split_located obody with
              | Some (_, _, post) when not (contains_loop post) -> true
              | _ -> false
            in
            ( (if applicable then phase_diags ~impure_funcs obody
               else
                 [
                   diag ~loc:oloc "LF001" Warning
                     "flattening is not applicable: the %s FORALL does \
                      not contain exactly one inner loop (§6)"
                     c.d_var;
                 ]),
              applicable )
        | SWhile (test, obody) -> (
            match Loop_info.induction_candidates test obody with
            | [ v ] -> receiving v ~inner_var:(inner_var_of obody) obody
            | _ ->
                ( [
                    diag ~loc:oloc "LF002" Error
                      "cannot identify the induction variable of the \
                       receiving WHILE loop";
                  ],
                  false ))
        | SDoWhile _ ->
            ( [
                diag ~loc:oloc "LF002" Error
                  "a post-test receiving loop cannot be parallelized";
              ],
              false )
        | _ -> (* unreachable: split_located only returns loops *) ([], false)
        )
  in
  let diags = nest_diags @ plural in
  let diags =
    List.stable_sort
      (fun a b ->
        let line d =
          match d.d_loc with Some p -> p.Errors.line | None -> max_int
        in
        compare (line a, a.d_rule) (line b, b.d_rule))
      diags
  in
  {
    diags;
    applicable;
    safe = not (List.exists (fun d -> d.d_severity = Error) diags);
  }

let check_program ?pure_subroutines ?impure_funcs (p : program) : report =
  check_block ?pure_subroutines ?impure_funcs p.p_body

let first_error (r : report) : diag option =
  List.find_opt (fun d -> d.d_severity = Error) r.diags

let errors (r : report) = List.filter (fun d -> d.d_severity = Error) r.diags

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** One-line rendering: [file:line:col: severity[rule]: message]. *)
let pp_diag ?file () ppf d =
  Option.iter (fun f -> Fmt.pf ppf "%s:" f) file;
  (match d.d_loc with
  | Some p -> Fmt.pf ppf "%a: " Errors.pp_pos p
  | None -> if file <> None then Fmt.pf ppf " " else ());
  Fmt.pf ppf "%s[%s]: %s" (severity_to_string d.d_severity) d.d_rule d.d_msg

(** Full rendering with the offending source line and a caret. *)
let pp_diag_with_context ?file ~source () ppf d =
  pp_diag ?file () ppf d;
  Fmt.pf ppf "@.";
  Option.iter (fun p -> Errors.pp_context ~source ppf p) d.d_loc

(** Short citation for pipeline refusal messages: ["LF004 at 7:5"]. *)
let cite (d : diag) : string =
  match d.d_loc with
  | Some p -> Fmt.str "%s at %a" d.d_rule Errors.pp_pos p
  | None -> d.d_rule
