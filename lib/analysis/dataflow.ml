(** Generic iterative gen-kill dataflow over [Cfg], instantiated below as
    reaching definitions (forward) and liveness (backward).

    Both are union ("may") problems over finite fact sets, so the solver
    works with integer-indexed facts ([IntSet]) and a per-node gen/kill
    pair; transfer is the usual [out = gen ∪ (in \ kill)].  A simple
    round-robin worklist converges quickly on these statement-grained
    CFGs (tens of nodes). *)

open Lf_lang

module IntSet = Set.Make (Int)

type direction =
  | Forward
  | Backward

(** A gen-kill problem instance: per-node [gen]/[kill] sets over facts
    numbered [0 .. nfacts-1]. *)
type problem = {
  dir : direction;
  nfacts : int;
  gen : int -> IntSet.t;
  kill : int -> IntSet.t;
}

(** Per-node fixpoint solution. *)
type solution = {
  in_ : IntSet.t array;  (** facts on entry to the node *)
  out : IntSet.t array;  (** facts on exit from the node *)
}

let solve (cfg : Cfg.t) (p : problem) : solution =
  let n = Cfg.size cfg in
  let in_ = Array.make n IntSet.empty in
  let out = Array.make n IntSet.empty in
  let preds i = (Cfg.node cfg i).Cfg.pred in
  let succs i = (Cfg.node cfg i).Cfg.succ in
  (* [sources] feeds a node's input set; [into]/[from] select which of
     in_/out each equation updates, so one loop serves both directions. *)
  let sources, into, from =
    match p.dir with
    | Forward -> (preds, in_, out)
    | Backward -> (succs, out, in_)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let meet =
        List.fold_left
          (fun acc j -> IntSet.union acc from.(j))
          IntSet.empty (sources i)
      in
      into.(i) <- meet;
      let next = IntSet.union (p.gen i) (IntSet.diff meet (p.kill i)) in
      if not (IntSet.equal next from.(i)) then begin
        from.(i) <- next;
        changed := true
      end
    done
  done;
  { in_; out }

(* ------------------------------------------------------------------ *)
(* Reaching definitions                                                *)
(* ------------------------------------------------------------------ *)

(** A definition site: node [ds_node] defines [ds_var].  [ds_must] is
    false for array-element stores, masked (WHERE) stores, and potential
    writes through subroutine arguments — those never kill other
    definitions of the same variable. *)
type def_site = {
  ds_id : int;
  ds_node : int;
  ds_var : string;
  ds_must : bool;
  ds_loc : Errors.pos option;
}

type reaching = {
  rd_cfg : Cfg.t;
  rd_defs : def_site array;  (** indexed by [ds_id] *)
  rd_sol : solution;  (** fact [i] = definition [rd_defs.(i)] reaches *)
}

let reaching_definitions (cfg : Cfg.t) : reaching =
  let defs = ref [] in
  let count = ref 0 in
  for i = 0 to Cfg.size cfg - 1 do
    let nd = Cfg.node cfg i in
    List.iter
      (fun (d : Cfg.def) ->
        defs :=
          {
            ds_id = !count;
            ds_node = i;
            ds_var = d.Cfg.def_var;
            ds_must = d.Cfg.def_must;
            ds_loc = nd.Cfg.loc;
          }
          :: !defs;
        incr count)
      (Cfg.defs nd)
  done;
  let defs = Array.of_list (List.rev !defs) in
  let by_var = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      let prev =
        Option.value (Hashtbl.find_opt by_var d.ds_var) ~default:IntSet.empty
      in
      Hashtbl.replace by_var d.ds_var (IntSet.add d.ds_id prev))
    defs;
  let gens = Array.make (Cfg.size cfg) IntSet.empty in
  let kills = Array.make (Cfg.size cfg) IntSet.empty in
  Array.iter
    (fun d ->
      gens.(d.ds_node) <- IntSet.add d.ds_id gens.(d.ds_node);
      if d.ds_must then
        (* a must-definition kills every other def of the same variable *)
        kills.(d.ds_node) <-
          IntSet.union kills.(d.ds_node)
            (IntSet.remove d.ds_id (Hashtbl.find by_var d.ds_var)))
    defs;
  let sol =
    solve cfg
      {
        dir = Forward;
        nfacts = Array.length defs;
        gen = (fun i -> gens.(i));
        kill = (fun i -> kills.(i));
      }
  in
  { rd_cfg = cfg; rd_defs = defs; rd_sol = sol }

(** Definitions of [var] that reach the entry of node [node]. *)
let reaching_defs_of (r : reaching) ~node ~var : def_site list =
  IntSet.fold
    (fun i acc ->
      let d = r.rd_defs.(i) in
      if d.ds_var = var then d :: acc else acc)
    r.rd_sol.in_.(node) []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

type liveness = {
  lv_cfg : Cfg.t;
  lv_vars : string array;  (** fact [i] = variable [lv_vars.(i)] is live *)
  lv_sol : solution;
}

let liveness (cfg : Cfg.t) : liveness =
  let tbl = Hashtbl.create 16 in
  let rev = ref [] in
  let id v =
    match Hashtbl.find_opt tbl v with
    | Some i -> i
    | None ->
        let i = Hashtbl.length tbl in
        Hashtbl.add tbl v i;
        rev := v :: !rev;
        i
  in
  let n = Cfg.size cfg in
  let gens = Array.make n IntSet.empty in
  let kills = Array.make n IntSet.empty in
  for i = 0 to n - 1 do
    let nd = Cfg.node cfg i in
    gens.(i) <- IntSet.of_list (List.map id (Cfg.uses nd));
    kills.(i) <-
      List.filter_map
        (fun (d : Cfg.def) ->
          if d.Cfg.def_must then Some (id d.Cfg.def_var) else None)
        (Cfg.defs nd)
      |> IntSet.of_list
  done;
  let vars = Array.of_list (List.rev !rev) in
  let sol =
    solve cfg
      {
        dir = Backward;
        nfacts = Array.length vars;
        gen = (fun i -> gens.(i));
        kill = (fun i -> kills.(i));
      }
  in
  { lv_cfg = cfg; lv_vars = vars; lv_sol = sol }

let to_vars (l : liveness) (s : IntSet.t) : string list =
  IntSet.fold (fun i acc -> l.lv_vars.(i) :: acc) s []
  |> List.sort String.compare

(** Variables live on entry to node [node]. *)
let live_in (l : liveness) node : string list = to_vars l l.lv_sol.in_.(node)

(** Variables live on exit from node [node]. *)
let live_out (l : liveness) node : string list = to_vars l l.lv_sol.out.(node)

(** Variables live on entry to the whole block (at the CFG entry node). *)
let live_at_entry (l : liveness) : string list =
  live_out l l.lv_cfg.Cfg.entry

(* ------------------------------------------------------------------ *)
(* Generic lattice fixpoint                                            *)
(* ------------------------------------------------------------------ *)

(** Forward fixpoint over an arbitrary (join-semi)lattice — the general
    monotone framework behind the gen-kill instances above, used by the
    value-range analysis ([Range]) whose facts are abstract environments
    rather than bit sets.

    The graph is given as successor lists over nodes [0 .. nnodes-1].
    [init] seeds the entry node; unreachable nodes keep [bottom].
    Outputs are accumulated with [join] (chaotic iteration ascends the
    lattice even when [transfer] is not monotone, e.g. under strong
    updates), and after a node has been visited more than [widen_after]
    times its accumulated output is additionally passed through [widen]
    — for lattices of infinite height the widening must force
    stabilization (intervals jump to ±infinity).

    Returns per-node input and output facts; a node's input is the join
    of its predecessors' outputs. *)
type 'a fixpoint = {
  fp_in : 'a array;
  fp_out : 'a array;
}

let solve_fix (type a) ~(nnodes : int) ~(succs : int list array)
    ~(entry : int) ~(init : a) ~(bottom : a) ~(join : a -> a -> a)
    ~(equal : a -> a -> bool) ~(transfer : int -> a -> a)
    ?(widen : (a -> a -> a) option) ?(widen_after = 3) () : a fixpoint =
  if nnodes = 0 then { fp_in = [||]; fp_out = [||] }
  else begin
    let preds = Array.make nnodes [] in
    Array.iteri
      (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
      succs;
    let fp_in = Array.make nnodes bottom in
    let fp_out = Array.make nnodes bottom in
    let visits = Array.make nnodes 0 in
    let queue = Queue.create () in
    let inq = Array.make nnodes false in
    let push i =
      if not inq.(i) then begin
        inq.(i) <- true;
        Queue.add i queue
      end
    in
    push entry;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      inq.(i) <- false;
      let input =
        List.fold_left
          (fun acc p -> join acc fp_out.(p))
          (if i = entry then init else bottom)
          preds.(i)
      in
      fp_in.(i) <- input;
      visits.(i) <- visits.(i) + 1;
      let out = join fp_out.(i) (transfer i input) in
      let out =
        match widen with
        | Some w when visits.(i) > widen_after -> w fp_out.(i) out
        | _ -> out
      in
      if not (equal out fp_out.(i)) then begin
        fp_out.(i) <- out;
        List.iter push succs.(i)
      end
    done;
    { fp_in; fp_out }
  end
