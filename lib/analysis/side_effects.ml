(** Side-effect analysis.

    The general flattening transformation (paper Fig. 10) re-evaluates the
    loop guards [test_l] and re-runs [init_2] under different control flow
    than the original nest; this is only an *optimization-enabling* question
    — the general transformation is safe because it stores guard results in
    flags first (Fig. 9) — but the optimized variants (Figs. 11–12) need
    [test_1], [test_2] and [init_2] to be side-effect free (§4, condition 1).

    A *function* (used in expressions) is pure unless registered otherwise;
    a *subroutine* call is always treated as effectful. *)

open Lf_lang
open Lf_lang.Ast

type purity_env = {
  impure_funcs : string list;  (** functions known to have side effects *)
}

let default_env = { impure_funcs = [] }

let env ?(impure_funcs = []) () = { impure_funcs }

(** [expr_pure env e] — true when evaluating [e] cannot modify any state.
    Intrinsics and unregistered functions are pure; array references are
    pure reads. *)
let expr_pure penv (e : expr) =
  Ast_util.expr_calls e
  |> List.for_all (fun f -> not (List.mem f penv.impure_funcs))

(** Variables an expression evaluation may modify: none, if pure. *)
let expr_writes penv e = if expr_pure penv e then [] else [ "*" ]

(** [stmt_pure env s] — true when [s] neither assigns any variable nor
    calls a subroutine; used for classifying guard phases. *)
let rec stmt_pure penv (s : stmt) =
  match s with
  | SLoc (_, s) -> stmt_pure penv s
  | SComment _ | SLabel _ -> true
  | SGoto _ | SCondGoto _ -> true
  | SAssign _ | SCall _ -> false
  | SIf (e, t, f) | SWhere (e, t, f) ->
      expr_pure penv e && block_pure penv t && block_pure penv f
  | SDo (_, _) | SForall (_, _) -> false
  | SWhile (e, b) -> expr_pure penv e && block_pure penv b
  | SDoWhile (b, e) -> expr_pure penv e && block_pure penv b

and block_pure penv b = List.for_all (stmt_pure penv) b

(** A block is *observably pure up to* [vars]: it writes only variables in
    [vars] and performs no subroutine calls.  Used to accept [init]/
    [increment] phases that only touch their own control variables. *)
let block_writes_only penv vars (b : block) =
  Ast_util.called_subroutines b = []
  && List.for_all (fun v -> List.mem v vars) (Ast_util.assigned_vars b)
  && List.for_all
       (fun f -> not (List.mem f penv.impure_funcs))
       (Ast_util.fold_stmts
          (fun acc s ->
            match s with
            | SAssign (_, e) -> Ast_util.expr_calls e @ acc
            | SWhile (e, _) | SDoWhile (_, e) | SIf (e, _, _)
            | SWhere (e, _, _) | SCondGoto (e, _) ->
                Ast_util.expr_calls e @ acc
            | _ -> acc)
          [] b)
