(** Loop-nest discovery and classification.

    The applicability condition of the paper (§6): loop flattening applies
    "whenever there are multiple loops fully contained in each other, i.e.,
    there are not several loops on the same nesting level."  This module
    walks the AST, finds loops, and classifies nests as *perfect towers*
    (each level contains exactly one loop, the innermost holds the body).

    It also recognizes the classic F77 GOTO-loop idiom

    {v
        i = 1
    10  IF (.NOT. test) GOTO 20     ! or IF (exit-test) GOTO 20
          body
          i = i + 1
          GOTO 10
    20  CONTINUE
    v}

    and restructures it into a [SWhile], so that all later passes need to
    handle only structured loops (§6, "GOTO loops: ... we can identify the
    phases by their position between labels and jumps"). *)

open Lf_lang
open Lf_lang.Ast

type loop_kind =
  | KDo of do_control
  | KWhile of expr
  | KDoWhile of expr
  | KForall of do_control

type loop = {
  kind : loop_kind;
  body : block;
}

(* The classification and restructuring passes below pattern-match deeply
   on statement shapes, so every public entry strips [SLoc] wrappers from
   its input first (stripping is idempotent).  Restructured code therefore
   carries no source locations; callers that need located programs
   re-parse the pretty-printed result. *)

(** The loops appearing at the top level of a block (not inside other
    loops), together with the statements around them. *)
let top_level_loops (b : block) : loop list =
  let b = strip_locs_block b in
  List.filter_map
    (function
      | SDo (c, body) -> Some { kind = KDo c; body }
      | SWhile (e, body) -> Some { kind = KWhile e; body }
      | SDoWhile (body, e) -> Some { kind = KDoWhile e; body }
      | SForall (c, body) -> Some { kind = KForall c; body }
      | _ -> None)
    b

(** A nest tower: the outermost loop plus the chain of single inner loops.
    [tower b] returns the longest chain [l1; l2; ...] such that each [l_i]'s
    body contains exactly one loop [l_{i+1}] (plus possibly straight-line
    statements), and no loops beside it. *)
let rec tower (l : loop) : loop list =
  match top_level_loops l.body with
  | [ inner ] -> l :: tower inner
  | _ -> [ l ]

(** Depth of the perfect tower rooted at the unique top-level loop of [b],
    or [None] if [b] does not contain exactly one top-level loop. *)
let tower_of_block (b : block) : loop list option =
  match top_level_loops b with
  | [ l ] -> Some (tower l)
  | _ -> None

(** Split an inner-loop body around the unique nested loop:
    [pre, inner, post].  [None] when there is not exactly one loop. *)
let split_around_loop (b : block) : (block * loop * block) option =
  let b = strip_locs_block b in
  let is_loop = function
    | SDo _ | SWhile _ | SDoWhile _ | SForall _ -> true
    | _ -> false
  in
  match List.filter is_loop b with
  | [ _ ] ->
      let rec go pre = function
        | [] -> None
        | s :: rest when is_loop s ->
            let l =
              match s with
              | SDo (c, body) -> { kind = KDo c; body }
              | SWhile (e, body) -> { kind = KWhile e; body }
              | SDoWhile (body, e) -> { kind = KDoWhile e; body }
              | SForall (c, body) -> { kind = KForall c; body }
              | _ -> assert false
            in
            Some (List.rev pre, l, rest)
        | s :: rest -> go (s :: pre) rest
      in
      go [] b
  | _ -> None

(* ------------------------------------------------------------------ *)
(* GOTO-loop restructuring                                             *)
(* ------------------------------------------------------------------ *)

(** Recognize, within a statement list, the pattern

    [SLabel top; IF (c) GOTO exit; body...; GOTO top; SLabel exit]

    where [body] contains neither jumps out of the region nor other labels,
    and rewrite it to [WHILE (.NOT. c) body].  Applied repeatedly, innermost
    first, until no pattern remains. *)
let rec restructure_gotos (b : block) : block =
  let b = List.map restructure_in_stmt (strip_locs_block b) in
  match find_goto_loop b with
  | Some (pre, cond, body, post) ->
      restructure_gotos (pre @ [ SWhile (EUn (Not, cond), body) ] @ post)
  | None -> b

and restructure_in_stmt = function
  | SDo (c, b) -> SDo (c, restructure_gotos b)
  | SWhile (e, b) -> SWhile (e, restructure_gotos b)
  | SDoWhile (b, e) -> SDoWhile (restructure_gotos b, e)
  | SForall (c, b) -> SForall (c, restructure_gotos b)
  | SIf (e, t, f) -> SIf (e, restructure_gotos t, restructure_gotos f)
  | SWhere (e, t, f) -> SWhere (e, restructure_gotos t, restructure_gotos f)
  | s -> s

and find_goto_loop (b : block) =
  let arr = Array.of_list b in
  let n = Array.length arr in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i < n - 3 do
    (match (arr.(!i), arr.(!i + 1)) with
    | SLabel top, SCondGoto (cond, exit_lbl) ->
        (* find [GOTO top] followed directly by [SLabel exit] *)
        let j = ref (!i + 2) in
        let found = ref None in
        while !found = None && !j < n - 1 do
          (match (arr.(!j), arr.(!j + 1)) with
          | SGoto t, SLabel e when t = top && e = exit_lbl ->
              found := Some !j
          | _ -> ());
          incr j
        done;
        (match !found with
        | Some j ->
            let body = Array.to_list (Array.sub arr (!i + 2) (j - !i - 2)) in
            let clean =
              List.for_all
                (fun s ->
                  match s with
                  | SLabel _ | SGoto _ | SCondGoto _ -> false
                  | _ ->
                      Ast_util.fold_stmt
                        (fun ok -> function
                          | SGoto _ | SCondGoto _ | SLabel _ -> false
                          | _ -> ok)
                        true s)
                body
            in
            if clean then
              result :=
                Some
                  ( Array.to_list (Array.sub arr 0 !i),
                    cond,
                    body,
                    Array.to_list (Array.sub arr (j + 2) (n - j - 2)) )
        | None -> ())
    | _ -> ());
    incr i
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Induction variables                                                 *)
(* ------------------------------------------------------------------ *)

(** For a WHILE loop, detect the basic induction variable: a variable [v]
    updated exactly once in the body as [v = v + c] or [v = v - c], where
    [c] is loop-invariant, and appearing in the loop test. *)
let induction_candidates (test : expr) (body : block) : string list =
  let test_vars = Ast_util.expr_vars test in
  let updates = Hashtbl.create 4 in
  List.iter
    (fun s ->
      match strip_loc s with
      | SAssign ({ lv_name = v; lv_index = [] }, EBin ((Add | Sub), EVar v', _))
        when v = v' ->
          Hashtbl.replace updates v (1 + Option.value ~default:0 (Hashtbl.find_opt updates v))
      | _ -> ())
    body;
  List.filter (fun v -> Hashtbl.find_opt updates v = Some 1) test_vars
