(** Use-def and def-use chains, derived from reaching definitions.

    A {e use} is (node, variable); its use-def chain is the set of
    definition sites that reach the node and define the variable.  The
    def-use chains are the inverse map.  [Lint] uses these to answer
    "which statements feed this test?" (purity of the test/init phases)
    and "is this scalar's value carried around the loop back edge?"
    without the textual scans of [Side_effects]/[Parallel]. *)

open Lf_lang

type use_site = {
  us_node : int;
  us_var : string;
  us_loc : Errors.pos option;
}

type t = {
  ch_reaching : Dataflow.reaching;
  ch_uses : use_site array;
  ch_ud : Dataflow.def_site list array;
      (** use-def: for use [i], the definitions that may reach it *)
  ch_du : (int * use_site list) list;
      (** def-use: for each [ds_id], the uses it may feed *)
}

let build (cfg : Cfg.t) : t =
  let r = Dataflow.reaching_definitions cfg in
  let uses = ref [] in
  for i = 0 to Cfg.size cfg - 1 do
    let nd = Cfg.node cfg i in
    List.iter
      (fun v ->
        uses := { us_node = i; us_var = v; us_loc = nd.Cfg.loc } :: !uses)
      (Cfg.uses nd)
  done;
  let uses = Array.of_list (List.rev !uses) in
  let ud =
    Array.map
      (fun u -> Dataflow.reaching_defs_of r ~node:u.us_node ~var:u.us_var)
      uses
  in
  let du = Hashtbl.create 16 in
  Array.iteri
    (fun i ds ->
      List.iter
        (fun (d : Dataflow.def_site) ->
          let prev =
            Option.value (Hashtbl.find_opt du d.Dataflow.ds_id) ~default:[]
          in
          Hashtbl.replace du d.Dataflow.ds_id (uses.(i) :: prev))
        ds)
    ud;
  let du =
    Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) du []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { ch_reaching = r; ch_uses = uses; ch_ud = ud; ch_du = du }

(** Definitions that may feed the given use of [var] at [node]. *)
let defs_reaching (t : t) ~node ~var : Dataflow.def_site list =
  Dataflow.reaching_defs_of t.ch_reaching ~node ~var

(** Uses that definition [ds_id] may feed. *)
let uses_of_def (t : t) ds_id : use_site list =
  Option.value (List.assoc_opt ds_id t.ch_du) ~default:[]

(** All uses of [var], in node order. *)
let uses_of_var (t : t) var : use_site list =
  Array.to_list t.ch_uses |> List.filter (fun u -> u.us_var = var)

(** A use of [var] at [node] is {e upward exposed} if some definition
    from outside the region (i.e. none at all in this CFG, or one at the
    entry) may reach it.  With a CFG built from a loop body alone, a use
    reached by zero definitions reads the value from before the body —
    exactly the loop-carried-scalar situation [Lint] looks for. *)
let upward_exposed (t : t) var : use_site list =
  uses_of_var t var
  |> List.filter (fun u -> defs_reaching t ~node:u.us_node ~var = [])

(** Definition sites of [var] anywhere in the CFG. *)
let defs_of_var (t : t) var : Dataflow.def_site list =
  Array.to_list t.ch_reaching.Dataflow.rd_defs
  |> List.filter (fun (d : Dataflow.def_site) -> d.Dataflow.ds_var = var)
