(** Data-dependence testing for loop parallelization.

    Loop flattening is safe when the loop receiving the inner body can be
    run in parallel (paper §6: "A sufficient condition is that the loop into
    which we lift an inner loop body can be parallelized").  This module
    provides the classical subscript tests used to decide that condition:
    affine-subscript extraction, the ZIV test, and the strong-SIV test with
    dependence distances; everything else is answered conservatively.

    The reference point is the Fortran D / ParaScope analysis the paper
    cites [13, 14]; we implement the standard single-subscript fragment. *)

open Lf_lang
open Lf_lang.Ast

(** A subscript expression in canonical affine form with respect to one
    loop variable: [coeff * var + const + sym], where [sym] is an optional
    loop-invariant symbolic remainder (kept as an expression and compared
    structurally). *)
type affine = {
  coeff : int;
  const : int;
  sym : expr option;
}

let pp_affine ppf a =
  Fmt.pf ppf "%d*i + %d%a" a.coeff a.const
    (Fmt.option (fun ppf e -> Fmt.pf ppf " + %s" (Pretty.expr_to_string e)))
    a.sym

let affine_const c = { coeff = 0; const = c; sym = None }

let add_sym s1 s2 =
  match (s1, s2) with
  | None, s | s, None -> (s, true)
  | Some a, Some b -> (Some (EBin (Add, a, b)), true)

(** [extract var invariants e] puts [e] into affine form with respect to
    [var].  Variables listed in [invariants] (and any variable other than
    [var] that is not assigned in the loop — the caller decides) may appear
    in the symbolic part.  Returns [None] for non-affine forms (products of
    [var], indexing through [var], calls involving [var]...). *)
let rec extract var (invariant : string -> bool) (e : expr) : affine option =
  match e with
  | EInt n -> Some (affine_const n)
  | EVar v when v = var -> Some { coeff = 1; const = 0; sym = None }
  | EVar v when invariant v -> Some { coeff = 0; const = 0; sym = Some e }
  | EUn (Neg, a) ->
      Option.map
        (fun x ->
          {
            coeff = -x.coeff;
            const = -x.const;
            sym = Option.map (fun s -> EUn (Neg, s)) x.sym;
          })
        (extract var invariant a)
  | EBin (Add, a, b) -> (
      match (extract var invariant a, extract var invariant b) with
      | Some x, Some y ->
          let sym, _ = add_sym x.sym y.sym in
          Some { coeff = x.coeff + y.coeff; const = x.const + y.const; sym }
      | _ -> None)
  | EBin (Sub, a, b) ->
      extract var invariant (EBin (Add, a, EUn (Neg, b)))
  | EBin (Mul, EInt n, b) | EBin (Mul, b, EInt n) ->
      Option.map
        (fun x ->
          {
            coeff = n * x.coeff;
            const = n * x.const;
            sym = Option.map (fun s -> EBin (Mul, EInt n, s)) x.sym;
          })
        (extract var invariant b)
  | EIdx _ | ECall _ ->
      (* loop-invariant lookup tables are allowed in the symbolic part *)
      let vars = Ast_util.expr_vars e in
      if List.mem var vars then None
      else if List.for_all invariant vars then
        Some { coeff = 0; const = 0; sym = Some e }
      else None
  | e ->
      let vars = Ast_util.expr_vars e in
      if List.mem var vars then None
      else if List.for_all invariant vars then
        Some { coeff = 0; const = 0; sym = Some e }
      else None

let sym_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x = y
  | Some _, None | None, Some _ -> false

(** Result of a dependence test between two subscripts of the same array
    dimension. *)
type verdict =
  | Independent  (** never the same element across different iterations *)
  | Distance of int  (** dependence with this constant iteration distance *)
  | Unknown  (** assume dependence *)

let pp_verdict ppf = function
  | Independent -> Fmt.string ppf "independent"
  | Distance d -> Fmt.pf ppf "distance %d" d
  | Unknown -> Fmt.string ppf "unknown"

(** Test one subscript pair in one dimension.  [a] is the subscript of the
    first reference, [b] of the second, both affine in the shared loop
    variable.  [bounds], when known, is the constant iteration range
    [(lo, hi)] of the loop; the weak SIV tests use it to discard solutions
    outside the iteration space. *)
let siv_test ?bounds (a : affine) (b : affine) : verdict =
  let in_bounds i =
    match bounds with Some (lo, hi) -> lo <= i && i <= hi | None -> true
  in
  if not (sym_equal a.sym b.sym) then Unknown
  else if a.coeff = 0 && b.coeff = 0 then
    (* ZIV: constants — equal constants touch the same element in every
       iteration (distance unconstrained), different never collide *)
    if a.const = b.const then Unknown else Independent
  else if a.coeff = b.coeff then begin
    (* strong SIV: a*i1 + c1 = a*i2 + c2  =>  i1 - i2 = (c2 - c1)/a *)
    let diff = b.const - a.const in
    if diff mod a.coeff = 0 then Distance (diff / a.coeff) else Independent
  end
  else if a.coeff = 0 || b.coeff = 0 then begin
    (* weak-zero SIV: c*i + c1 = c2 — the invariant reference collides
       with exactly one iteration, i = (c2 - c1)/c; independent when that
       solution is fractional or outside the iteration space *)
    let c, c1, c2 =
      if b.coeff = 0 then (a.coeff, a.const, b.const)
      else (b.coeff, b.const, a.const)
    in
    let diff = c2 - c1 in
    if diff mod c <> 0 then Independent
    else if not (in_bounds (diff / c)) then Independent
    else Unknown
  end
  else if a.coeff = -b.coeff then begin
    (* weak-crossing SIV: a*i1 + c1 = -a*i2 + c2  =>  i1 + i2 = (c2-c1)/a;
       independent when the required sum is fractional or cannot be formed
       by two iterations, i.e. lies outside [2*lo, 2*hi] *)
    let diff = b.const - a.const in
    if diff mod a.coeff <> 0 then Independent
    else
      let sum = diff / a.coeff in
      match bounds with
      | Some (lo, hi) when sum < (2 * lo) || sum > (2 * hi) -> Independent
      | _ -> Unknown
  end
  else begin
    (* general MIV territory: fall back to a GCD feasibility test *)
    let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
    let g = gcd a.coeff b.coeff in
    if g <> 0 && (b.const - a.const) mod g <> 0 then Independent else Unknown
  end

(** Combine per-dimension verdicts for one reference pair: the pair is
    independent if any dimension proves independence; otherwise the most
    precise common distance is reported. *)
let combine (vs : verdict list) : verdict =
  if List.mem Independent vs then Independent
  else
    let distances =
      List.filter_map (function Distance d -> Some d | _ -> None) vs
    in
    match distances with
    | [] -> Unknown
    | d :: rest ->
        if List.for_all (( = ) d) rest then Distance d
        else if List.exists (fun d' -> d' <> d) rest then
          (* contradictory required distances: no common solution *)
          Independent
        else Unknown

(** An array reference: name, subscripts, and whether it writes. *)
type ref_info = {
  r_array : string;
  r_subs : expr list;
  r_is_write : bool;
}

(** Array references read by one expression. *)
let expr_references (e : expr) : ref_info list =
  Ast_util.fold_expr
    (fun acc -> function
      | EIdx (a, subs) ->
          { r_array = a; r_subs = subs; r_is_write = false } :: acc
      | _ -> acc)
    [] e
  |> List.rev

(** Collect all array references in a block (reads and writes). *)
let references (b : block) : ref_info list =
  let refs = ref [] in
  let expr_refs (e : expr) =
    Ast_util.fold_expr
      (fun () -> function
        | EIdx (a, subs) ->
            refs := { r_array = a; r_subs = subs; r_is_write = false } :: !refs
        | _ -> ())
      () e
  in
  let stmt_collect _ s =
    match s with
    | SAssign (l, e) ->
        if l.lv_index <> [] then
          refs :=
            { r_array = l.lv_name; r_subs = l.lv_index; r_is_write = true }
            :: !refs;
        List.iter expr_refs l.lv_index;
        expr_refs e
    | SDo (c, _) | SForall (c, _) ->
        expr_refs c.d_lo;
        expr_refs c.d_hi;
        Option.iter expr_refs c.d_step
    | SWhile (e, _) | SDoWhile (_, e) | SIf (e, _, _) | SWhere (e, _, _)
    | SCondGoto (e, _) ->
        expr_refs e
    | SCall (_, args) -> List.iter expr_refs args
    | SGoto _ | SLabel _ | SComment _ | SLoc _ -> ()
  in
  Ast_util.fold_stmts stmt_collect () b;
  List.rev !refs

(** [refs_conflict ?bounds var invariant r1 r2] — the loop-carried verdict
    for one pair of references: [None] when the pair cannot touch the same
    element in different iterations of the loop over [var] (different
    arrays, no write, proven independent, or dependence distance 0), and
    [Some v] with the offending verdict otherwise. *)
let refs_conflict ?bounds var invariant (r1 : ref_info) (r2 : ref_info) :
    verdict option =
  if not (r1.r_array = r2.r_array && (r1.r_is_write || r2.r_is_write)) then
    None
  else if List.length r1.r_subs <> List.length r2.r_subs then Some Unknown
  else
    let verdicts =
      List.map2
        (fun s1 s2 ->
          match (extract var invariant s1, extract var invariant s2) with
          | Some a, Some b -> siv_test ?bounds a b
          | _ -> Unknown)
        r1.r_subs r2.r_subs
    in
    match combine verdicts with
    | Independent -> None
    | Distance 0 -> None (* same iteration only *)
    | (Distance _ | Unknown) as v -> Some v

(** [loop_carried_array_dependence var invariant body] — true when some
    pair of references to the same array (at least one a write) may touch
    the same element in *different* iterations of the loop over [var]. *)
let loop_carried_array_dependence ?bounds var invariant (body : block) : bool =
  let refs = references body in
  let pairs_conflict r1 r2 =
    refs_conflict ?bounds var invariant r1 r2 <> None
  in
  let rec any_pair = function
    | [] -> false
    | r :: rest ->
        (* compare r with itself too: a single write ref can conflict with
           itself across iterations (e.g. A(1) = ... every iteration) *)
        pairs_conflict r r && r.r_is_write
        || List.exists (pairs_conflict r) rest
        || any_pair rest
  in
  any_pair refs
