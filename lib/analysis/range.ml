(** Value-range and lane-affine congruence analysis over the SIMD
    dialect, instantiated on [Dataflow.solve_fix].

    The analysis runs on the original AST (the slot-resolved IR shares
    its statements physically, so results are keyed by statement
    identity) and computes, for every statement, an abstract environment
    mapping variable names to:

    - an {b integer interval} with symbolic bounds: a bound is either a
      constant, ±infinity, or [Sym (v, c)] = "the value of the front-end
      integer scalar [v] at this point, plus [c]".  Symbolic bounds are
      what flattened programs need — the guard the flattener emits is
      [WHERE (at1 <= n)] against a runtime-bound dimension [n], so the
      provable upper bound of [at1] inside the branch is [n], not a
      literal.  When the named variable is not bound to a front-end
      integer scalar at run time, a symbolic bound is vacuous (reads as
      ±infinity); consumers resolve bounds against the live frame and
      fall back to checked execution when resolution fails.
    - a {b lane-affine congruence} [coeff*lane + base + mod*Z] where
      [lane] is the 1-based lane index (the canonical value of [iproc]).
      This is the fact that proves scatter index sets pairwise-disjoint
      across lanes: flattening strides induction vectors by P, so
      [at1 = iproc + P*k] gives [{coeff = 1; mod = P}], disjoint at any
      lane count.  Congruence facts seeded from [iproc] are valid only
      when the entry binding of [iproc] is canonical ([1..p]); the
      compiled engine validates that once per run before trusting any
      claim ([Compile]'s prologue).

    Interval semantics are over the {e active lanes} of the statement's
    mask context: WHERE / plural-IF branch entries refine the written
    condition into the branch environment (the ELSEWHERE branch meets
    the negation onto the join of the pre-branch environment and the
    THEN exit, since its lanes never executed the THEN branch but do see
    its front-end scalar writes), masked assignments join old and new
    values instead of replacing them, and branch exits re-join the
    pre-branch environment so refinements never leak past the
    construct.  Procedure calls havoc everything (callees can rebind any
    variable through the frame flush/import cycle); registered
    {e functions} cannot write variables, so expression evaluation never
    havocs.  Programs containing GOTO are not analyzed (no facts). *)

open Lf_lang
open Lf_lang.Ast
module SMap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)
(* ------------------------------------------------------------------ *)

type bound =
  | NegInf
  | Fin of int
  | Sym of string * int  (** value of scalar [v] at this point, plus c *)
  | PosInf

type iv = {
  lo : bound;
  hi : bound;
}

(** Lane-affine congruence: value ∈ coeff*lane + base + mod*Z, lane the
    1-based lane index.  [co_mod = 0] means the value is exactly
    [coeff*lane + base]. *)
type cong = {
  co_coeff : int;
  co_base : int;
  co_mod : int;
}

type av = {
  a_iv : iv;
  a_cg : cong option;
}

(** Abstract environment: [Bot] = unreachable; in [Env m] an absent
    binding is top (unconstrained). *)
type env =
  | Bot
  | Env of av SMap.t

let top_iv = { lo = NegInf; hi = PosInf }
let top_av = { a_iv = top_iv; a_cg = None }
let is_top_av a = a.a_iv = top_iv && a.a_cg = None

(* ------------------------------------------------------------------ *)
(* Bound arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

let sat_add a b =
  let s = a + b in
  if a > 0 && b > 0 && s < 0 then max_int
  else if a < 0 && b < 0 && s >= 0 then min_int
  else s

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / a <> b then if (a > 0) = (b > 0) then max_int else min_int
    else p

(** [b + k] for constant [k]; infinities absorb. *)
let bound_add_k b k =
  match b with
  | NegInf -> NegInf
  | PosInf -> PosInf
  | Fin n -> Fin (sat_add n k)
  | Sym (v, c) -> Sym (v, sat_add c k)

(** Lower-bound addition: [Sym + Sym] is not representable, so it drops
    to -infinity (sound for a lower bound). *)
let add_lo a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin x, Fin y -> Fin (sat_add x y)
  | Sym (v, c), Fin k | Fin k, Sym (v, c) -> Sym (v, sat_add c k)
  | Sym _, Sym _ -> NegInf

let add_hi a b =
  match (a, b) with
  | PosInf, _ | _, PosInf -> PosInf
  | NegInf, _ | _, NegInf -> NegInf
  | Fin x, Fin y -> Fin (sat_add x y)
  | Sym (v, c), Fin k | Fin k, Sym (v, c) -> Sym (v, sat_add c k)
  | Sym _, Sym _ -> PosInf

(** Negation swaps the roles of the two bounds; a negated symbol is not
    representable. *)
let neg_as_lo = function
  | PosInf -> NegInf
  | NegInf -> PosInf
  | Fin n -> Fin (-n)
  | Sym _ -> NegInf

let neg_as_hi = function
  | PosInf -> NegInf
  | NegInf -> PosInf
  | Fin n -> Fin (-n)
  | Sym _ -> PosInf

(* Join: lower bounds move down, upper bounds move up; incomparable
   bounds (different symbols, or symbol vs constant) drop to infinity. *)
let join_lo a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, x | x, PosInf -> x
  | Fin x, Fin y -> Fin (min x y)
  | Sym (v, c), Sym (w, d) when v = w -> Sym (v, min c d)
  | _ -> NegInf

let join_hi a b =
  match (a, b) with
  | PosInf, _ | _, PosInf -> PosInf
  | NegInf, x | x, NegInf -> x
  | Fin x, Fin y -> Fin (max x y)
  | Sym (v, c), Sym (w, d) when v = w -> Sym (v, max c d)
  | _ -> PosInf

(* Refinement meet: keep the tighter bound when comparable; when
   incomparable both are individually sound, keep the {e established}
   bound.  Preferring the fresh fact would let a branch refinement
   (e.g. the [x > n] else-arm of a [x <= n] WHERE) clobber a constant
   bound the other arm still carries, and the branch join — which can
   only compare like against like — would then drop to infinity.  The
   symbolic dimension guards bounds-check elimination needs still land:
   a loop-widened bound is infinite by the time the WHERE refinement
   applies, and anything refines an infinity. *)
let meet_lo cur nu =
  match (cur, nu) with
  | _, NegInf -> cur
  | NegInf, _ -> nu
  | Fin a, Fin b -> Fin (max a b)
  | Sym (v, a), Sym (w, b) when v = w -> Sym (v, max a b)
  | _ -> cur

let meet_hi cur nu =
  match (cur, nu) with
  | _, PosInf -> cur
  | PosInf, _ -> nu
  | Fin a, Fin b -> Fin (min a b)
  | Sym (v, a), Sym (w, b) when v = w -> Sym (v, min a b)
  | _ -> cur

let bound_mentions v = function Sym (w, _) -> w = v | _ -> false

let bound_to_string = function
  | NegInf -> "-inf"
  | PosInf -> "+inf"
  | Fin n -> string_of_int n
  | Sym (v, 0) -> v
  | Sym (v, c) -> Printf.sprintf "%s%+d" v c

let iv_to_string i =
  Printf.sprintf "[%s, %s]" (bound_to_string i.lo) (bound_to_string i.hi)

let cong_to_string c =
  Printf.sprintf "%d*lane%+d mod %d" c.co_coeff c.co_base c.co_mod

(** [subsumes a b]: interval [a] contains interval [b] (decidable only
    bound-wise; incomparable bounds answer [false]). *)
let lo_le a b =
  (* a <= b as lower bounds *)
  match (a, b) with
  | NegInf, _ -> true
  | _, PosInf -> true
  | Fin x, Fin y -> x <= y
  | Sym (v, c), Sym (w, d) -> v = w && c <= d
  | _ -> false

let hi_ge a b =
  match (a, b) with
  | PosInf, _ -> true
  | _, NegInf -> true
  | Fin x, Fin y -> x >= y
  | Sym (v, c), Sym (w, d) -> v = w && c >= d
  | _ -> false

let subsumes a b = lo_le a.lo b.lo && hi_ge a.hi b.hi

(** Concrete membership of [n], resolving symbolic bounds through
    [resolve] (the current front-end scalar value of a name, when it is
    one); unresolvable and infinite bounds are vacuous. *)
let mem ~(resolve : string -> int option) n i =
  let lo_ok =
    match i.lo with
    | NegInf | PosInf -> true
    | Fin k -> n >= k
    | Sym (v, c) -> (
        match resolve v with Some s -> n >= sat_add s c | None -> true)
  in
  let hi_ok =
    match i.hi with
    | NegInf | PosInf -> true
    | Fin k -> n <= k
    | Sym (v, c) -> (
        match resolve v with Some s -> n <= sat_add s c | None -> true)
  in
  lo_ok && hi_ok

(* ------------------------------------------------------------------ *)
(* Congruence arithmetic                                               *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let cg_norm c =
  if c.co_mod = 0 then c
  else
    let b = c.co_base mod c.co_mod in
    { c with co_base = (if b < 0 then b + c.co_mod else b) }

let cg_join a b =
  if a.co_coeff <> b.co_coeff then None
  else
    let m = gcd (gcd a.co_mod b.co_mod) (abs (a.co_base - b.co_base)) in
    Some (cg_norm { co_coeff = a.co_coeff; co_base = a.co_base; co_mod = m })

let cg_add a b =
  cg_norm
    {
      co_coeff = sat_add a.co_coeff b.co_coeff;
      co_base = sat_add a.co_base b.co_base;
      co_mod = gcd a.co_mod b.co_mod;
    }

let cg_neg a =
  cg_norm
    { co_coeff = -a.co_coeff; co_base = -a.co_base; co_mod = a.co_mod }

let cg_scale a k =
  cg_norm
    {
      co_coeff = sat_mul a.co_coeff k;
      co_base = sat_mul a.co_base k;
      co_mod = abs (sat_mul a.co_mod k);
    }

(** Pairwise lane-disjointness of a congruence class over [p] lanes:
    lanes [i <> j] get values differing by [coeff*(i-j) (mod m)], so the
    class is disjoint iff no distance [d] in [1..p-1] has
    [coeff*d ≡ 0 (mod m)] ([m = 0]: exact values, [coeff <> 0]
    suffices). *)
let cg_lane_disjoint ~p c =
  p <= 1
  || c.co_coeff <> 0
     && (c.co_mod = 0
        ||
        let m = c.co_mod in
        let rec chk d =
          d >= p || (sat_mul c.co_coeff d mod m <> 0 && chk (d + 1))
        in
        chk 1)

(* ------------------------------------------------------------------ *)
(* Abstract evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let singleton a =
  match (a.a_iv.lo, a.a_iv.hi) with
  | Fin x, Fin y when x = y -> Some x
  | _ -> None

let av_join a b =
  {
    a_iv = { lo = join_lo a.a_iv.lo b.a_iv.lo; hi = join_hi a.a_iv.hi b.a_iv.hi };
    a_cg =
      (match (a.a_cg, b.a_cg) with
      | Some x, Some y -> cg_join x y
      | _ -> None);
  }

let rec eval (m : av SMap.t) (e : expr) : av =
  match e with
  | EInt n ->
      {
        a_iv = { lo = Fin n; hi = Fin n };
        a_cg = Some { co_coeff = 0; co_base = n; co_mod = 0 };
      }
  | EVar v ->
      (* missing interval sides fall back to the variable's own symbolic
         value: an unconstrained scalar [n] still evaluates to [n, n],
         which is exactly the handle dimension guards resolve later *)
      let a = Option.value (SMap.find_opt v m) ~default:top_av in
      let lo = match a.a_iv.lo with NegInf -> Sym (v, 0) | b -> b in
      let hi = match a.a_iv.hi with PosInf -> Sym (v, 0) | b -> b in
      { a_iv = { lo; hi }; a_cg = a.a_cg }
  | EUn (Neg, a) ->
      let x = eval m a in
      {
        a_iv = { lo = neg_as_lo x.a_iv.hi; hi = neg_as_hi x.a_iv.lo };
        a_cg = Option.map cg_neg x.a_cg;
      }
  | EBin (Add, a, b) ->
      let x = eval m a and y = eval m b in
      {
        a_iv =
          { lo = add_lo x.a_iv.lo y.a_iv.lo; hi = add_hi x.a_iv.hi y.a_iv.hi };
        a_cg =
          (match (x.a_cg, y.a_cg) with
          | Some p, Some q -> Some (cg_add p q)
          | _ -> None);
      }
  | EBin (Sub, a, b) -> eval m (EBin (Add, a, EUn (Neg, b)))
  | EBin (Mul, a, b) -> (
      let x = eval m a and y = eval m b in
      match (singleton x, singleton y) with
      | Some k, _ -> scale y k
      | _, Some k -> scale x k
      | _ -> top_av)
  | EBin (Mod, a, b) -> (
      let x = eval m a in
      match singleton (eval m b) with
      | Some mm when mm > 0 ->
          let nonneg = match x.a_iv.lo with Fin l -> l >= 0 | _ -> false in
          let hi =
            match x.a_iv.hi with
            | Fin h when nonneg && h < mm -> Fin h
            | _ -> Fin (mm - 1)
          in
          let lo = if nonneg then Fin 0 else Fin (-(mm - 1)) in
          {
            a_iv = { lo; hi };
            a_cg =
              (* OCaml rem keeps the residue class: x mod m ≡ x (mod m) *)
              Option.map
                (fun c -> cg_norm { c with co_mod = gcd c.co_mod mm })
                x.a_cg;
          }
      | _ -> top_av)
  | ECall (f, [ a ]) when String.lowercase_ascii f = "abs" -> (
      let x = eval m a in
      match (x.a_iv.lo, x.a_iv.hi) with
      | Fin l, Fin h when l >= 0 -> { a_iv = { lo = Fin l; hi = Fin h }; a_cg = None }
      | Fin l, Fin h when h <= 0 ->
          { a_iv = { lo = Fin (-h); hi = Fin (-l) }; a_cg = None }
      | Fin l, Fin h ->
          { a_iv = { lo = Fin 0; hi = Fin (max (-l) h) }; a_cg = None }
      | _ -> { a_iv = { lo = Fin 0; hi = PosInf }; a_cg = None })
  | ECall (f, [ a; b ]) when String.lowercase_ascii f = "max" ->
      let x = eval m a and y = eval m b in
      (* lower bound of max: either operand's lower bound is sound; the
         upper bound needs the comparable maximum *)
      let lo =
        match (x.a_iv.lo, y.a_iv.lo) with
        | Fin p, Fin q -> Fin (max p q)
        | NegInf, o | o, NegInf -> o
        | o, _ -> o
      in
      { a_iv = { lo; hi = join_hi x.a_iv.hi y.a_iv.hi }; a_cg = None }
  | ECall (f, [ a; b ]) when String.lowercase_ascii f = "min" ->
      let x = eval m a and y = eval m b in
      let hi =
        match (x.a_iv.hi, y.a_iv.hi) with
        | Fin p, Fin q -> Fin (min p q)
        | PosInf, o | o, PosInf -> o
        | o, _ -> o
      in
      { a_iv = { lo = join_lo x.a_iv.lo y.a_iv.lo; hi }; a_cg = None }
  | ERange (a, b) -> (
      (* a [lo:hi] section of exactly P elements is a plural vector whose
         lane i (1-based) holds lo + i - 1; other lengths build front-end
         arrays, for which per-lane facts are vacuous *)
      let x = eval m a and y = eval m b in
      let a_iv = { lo = x.a_iv.lo; hi = y.a_iv.hi } in
      match singleton x with
      | Some la ->
          {
            a_iv;
            a_cg = Some { co_coeff = 1; co_base = la - 1; co_mod = 0 };
          }
      | None -> { a_iv; a_cg = None })
  | EReal _ | EBool _ | EUn (Not, _) | EBin _ | ECall _ | EIdx _ -> top_av

and scale a k =
  if k = 0 then
    {
      a_iv = { lo = Fin 0; hi = Fin 0 };
      a_cg = Some { co_coeff = 0; co_base = 0; co_mod = 0 };
    }
  else
    (* negative factors swap which source bound feeds which result
       bound; an unrepresentable product (Sym * k, k <> 1) must drop
       toward the infinity of the {e result} role — a symbolic lower
       bound scaled up is still a lower bound, so it weakens to -inf,
       never +inf *)
    let lo_src, hi_src =
      if k > 0 then (a.a_iv.lo, a.a_iv.hi) else (a.a_iv.hi, a.a_iv.lo)
    in
    let exact = function
      | Fin n -> Some (Fin (sat_mul n k))
      | Sym _ as b when k = 1 -> Some b
      | NegInf -> Some (if k > 0 then NegInf else PosInf)
      | PosInf -> Some (if k > 0 then PosInf else NegInf)
      | Sym _ -> None
    in
    let lo = match exact lo_src with Some b -> b | None -> NegInf in
    let hi = match exact hi_src with Some b -> b | None -> PosInf in
    { a_iv = { lo; hi }; a_cg = Option.map (fun c -> cg_scale c k) a.a_cg }

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

let av_eq (a : av) (b : av) = a = b

let map_join m1 m2 =
  SMap.merge
    (fun _ a b ->
      match (a, b) with
      | Some x, Some y ->
          let j = av_join x y in
          if is_top_av j then None else Some j
      | _ -> None (* absent = top; top joins to top *))
    m1 m2

let env_join e1 e2 =
  match (e1, e2) with
  | Bot, e | e, Bot -> e
  | Env m1, Env m2 -> Env (map_join m1 m2)

let env_equal e1 e2 =
  match (e1, e2) with
  | Bot, Bot -> true
  | Env m1, Env m2 -> SMap.equal av_eq m1 m2
  | _ -> false

let widen_bound_lo old nu = if old = nu then nu else NegInf
let widen_bound_hi old nu = if old = nu then nu else PosInf

(* Widening: any interval bound still moving after the visit budget
   jumps to infinity; congruence facts descend a finite divisor chain
   and need no widening. *)
let env_widen old nu =
  match (old, nu) with
  | Bot, e | e, Bot -> e
  | Env mo, Env mn ->
      Env
        (SMap.merge
           (fun _ a b ->
             match (a, b) with
             | Some x, Some y ->
                 let w =
                   {
                     a_iv =
                       {
                         lo = widen_bound_lo x.a_iv.lo y.a_iv.lo;
                         hi = widen_bound_hi x.a_iv.hi y.a_iv.hi;
                       };
                     a_cg = y.a_cg;
                   }
                 in
                 if is_top_av w then None else Some w
             | _ -> None)
           mo mn)

(** Drop every symbolic bound that mentions [v]: its recorded value is
    about to change, so bounds naming it would silently shift meaning. *)
let kill_sym v m =
  SMap.filter_map
    (fun _ a ->
      let lo = if bound_mentions v a.a_iv.lo then NegInf else a.a_iv.lo in
      let hi = if bound_mentions v a.a_iv.hi then PosInf else a.a_iv.hi in
      let a = { a with a_iv = { lo; hi } } in
      if is_top_av a then None else Some a)
    m

let strip_self v a =
  {
    a with
    a_iv =
      {
        lo = (if bound_mentions v a.a_iv.lo then NegInf else a.a_iv.lo);
        hi = (if bound_mentions v a.a_iv.hi then PosInf else a.a_iv.hi);
      };
  }

let set_var m v a =
  if is_top_av a then SMap.remove v m else SMap.add v a m

(* ------------------------------------------------------------------ *)
(* Condition refinement                                                *)
(* ------------------------------------------------------------------ *)

let negate_rel = function
  | Le -> Some Gt
  | Lt -> Some Ge
  | Ge -> Some Lt
  | Gt -> Some Le
  | Ne -> Some Eq
  | Eq -> None (* != gives no interval *)
  | _ -> None

let flip_rel = function
  | Le -> Ge
  | Lt -> Gt
  | Ge -> Le
  | Gt -> Lt
  | r -> r

(* Refine [v rel e] into the environment.  Bounds are taken from the
   abstract value of [e]; self-referential symbolic bounds are skipped
   (they would change meaning when [v] is next written). *)
let refine_var m v rel e =
  let x = eval m e in
  let cur = Option.value (SMap.find_opt v m) ~default:top_av in
  let keep b = if bound_mentions v b then None else Some b in
  let refined =
    match rel with
    | Le | Lt ->
        let hi = if rel = Lt then bound_add_k x.a_iv.hi (-1) else x.a_iv.hi in
        Option.map
          (fun h -> { cur with a_iv = { cur.a_iv with hi = meet_hi cur.a_iv.hi h } })
          (keep hi)
    | Ge | Gt ->
        let lo = if rel = Gt then bound_add_k x.a_iv.lo 1 else x.a_iv.lo in
        Option.map
          (fun l -> { cur with a_iv = { cur.a_iv with lo = meet_lo cur.a_iv.lo l } })
          (keep lo)
    | Eq ->
        let lo = keep x.a_iv.lo and hi = keep x.a_iv.hi in
        Some
          {
            a_iv =
              {
                lo = (match lo with Some l -> meet_lo cur.a_iv.lo l | None -> cur.a_iv.lo);
                hi = (match hi with Some h -> meet_hi cur.a_iv.hi h | None -> cur.a_iv.hi);
              };
            a_cg = (match cur.a_cg with None -> x.a_cg | c -> c);
          }
    | _ -> None
  in
  match refined with Some a -> set_var m v a | None -> m

let rec assume m cond neg =
  match cond with
  | EUn (Not, c) -> assume m c (not neg)
  | EBin (And, a, b) when not neg -> assume (assume m a false) b false
  | EBin (Or, a, b) when neg -> assume (assume m a true) b true
  | EBin (rel, a, b) -> (
      let rel = if neg then negate_rel rel else Some rel in
      match rel with
      | None -> m
      | Some rel ->
          let m =
            match a with EVar v -> refine_var m v rel b | _ -> m
          in
          (match b with EVar v -> refine_var m v (flip_rel rel) a | _ -> m))
  | _ -> m

(* ------------------------------------------------------------------ *)
(* Transfer functions and graph construction                           *)
(* ------------------------------------------------------------------ *)

type tr =
  | TNone
  | TAssign of lvalue * expr * bool  (** masked context *)
  | TAssume of expr * bool  (** negated *)
  | THavoc
  | THead of do_control

let transfer_assign m lv e masked =
  let v = lv.lv_name in
  if lv.lv_index <> [] then
    (* array-element store: the name's scalar binding is untouched, but
       recorded symbolic bounds naming it are dropped for safety *)
    kill_sym v m
  else
    let nu = strip_self v (eval m e) in
    let nu =
      if masked then av_join (Option.value (SMap.find_opt v m) ~default:top_av) nu
      else nu
    in
    set_var (kill_sym v m) v nu

(* DO var = lo, hi [, step]: over all iterations the variable spans the
   hull of the bounds, including the final overshoot value (the compiled
   engine leaves [first value past the limit] in the variable; a loop
   whose range is empty leaves [lo]). *)
let transfer_head m (dc : do_control) =
  let v = dc.d_var in
  let m' = kill_sym v m in
  let lo = eval m dc.d_lo and hi = eval m dc.d_hi in
  let step =
    match dc.d_step with
    | None -> Some 1
    | Some se -> singleton (eval m se)
  in
  let a =
    match step with
    | Some k when k > 0 ->
        {
          a_iv =
            {
              lo = lo.a_iv.lo;
              hi = join_hi (bound_add_k hi.a_iv.hi k) lo.a_iv.hi;
            };
          a_cg = None;
        }
    | Some k when k < 0 ->
        {
          a_iv =
            {
              lo = join_lo (bound_add_k hi.a_iv.lo k) lo.a_iv.lo;
              hi = lo.a_iv.hi;
            };
          a_cg = None;
        }
    | _ -> top_av
  in
  set_var m' v (strip_self v a)

let apply_tr t e =
  match e with
  | Bot -> Bot
  | Env m -> (
      match t with
      | TNone -> e
      | TAssign (lv, rhs, masked) -> Env (transfer_assign m lv rhs masked)
      | TAssume (c, neg) -> Env (assume m c neg)
      | THavoc -> Env SMap.empty
      | THead dc -> Env (transfer_head m dc))

(* ------------------------------------------------------------------ *)
(* Analysis driver                                                     *)
(* ------------------------------------------------------------------ *)

type result = {
  r_p : int;
  r_envs : (stmt * env) list;
      (** IN-environment per statement, keyed by physical identity *)
}

let rec has_goto_stmt = function
  | SGoto _ | SCondGoto _ | SLabel _ -> true
  | SLoc (_, s) -> has_goto_stmt s
  | SIf (_, t, f) | SWhere (_, t, f) -> has_goto t || has_goto f
  | SWhile (_, b) | SDoWhile (b, _) | SDo (_, b) | SForall (_, b) ->
      has_goto b
  | SAssign _ | SCall _ | SComment _ -> false

and has_goto b = List.exists has_goto_stmt b

let analyze ~p (block : Ast.block) : result =
  if has_goto block then { r_p = p; r_envs = [] }
  else begin
    let trs = ref [] and nn = ref 0 in
    let edges = ref [] in
    let keyed = ref [] in
    let add t =
      let id = !nn in
      incr nn;
      trs := t :: !trs;
      id
    in
    let edge a b = edges := (a, b) :: !edges in
    let connect ins n = List.iter (fun i -> edge i n) ins in
    let record s n = keyed := (s, n) :: !keyed in
    let rec walk_block ~masked ins b =
      List.fold_left (fun ins s -> walk_stmt ~masked ins s) ins b
    and walk_stmt ~masked ins s =
      match s with
      | SLoc (_, inner) -> walk_stmt ~masked ins inner
      | SComment _ -> ins
      | SGoto _ | SCondGoto _ | SLabel _ -> assert false
      | SAssign (lv, e) ->
          let n = add (TAssign (lv, e, masked)) in
          connect ins n;
          record s n;
          [ n ]
      | SCall _ ->
          let n = add THavoc in
          connect ins n;
          record s n;
          [ n ]
      | SIf (c, t, f) | SWhere (c, t, f) ->
          let tst = add TNone in
          connect ins tst;
          record s tst;
          (* THEN lanes satisfy the condition *)
          let at = add (TAssume (c, false)) in
          edge tst at;
          let touts = walk_block ~masked:true [ at ] t in
          (* ELSEWHERE lanes satisfy the negation, never executed the
             THEN branch (join with the pre-branch environment), but do
             see its front-end scalar writes (join with the THEN exit) *)
          let af = add (TAssume (c, true)) in
          edge tst af;
          connect touts af;
          let fouts = walk_block ~masked:true [ af ] f in
          (* exit: refinements cancel against the pre-branch state *)
          let j = add TNone in
          connect (tst :: fouts) j;
          [ j ]
      | SWhile (c, body) ->
          let tst = add TNone in
          connect ins tst;
          record s tst;
          (* the vector-controlled WHILE requires active lanes to agree
             on the condition, so on entry it holds on all of them *)
          let at = add (TAssume (c, false)) in
          edge tst at;
          let bouts = walk_block ~masked [ at ] body in
          connect bouts tst;
          let ax = add (TAssume (c, true)) in
          edge tst ax;
          [ ax ]
      | SDoWhile (body, c) ->
          let h = add TNone in
          connect ins h;
          let bouts = walk_block ~masked [ h ] body in
          (* the condition is evaluated after the body, so the recorded
             environment joins the body exits, not the loop head *)
          let cn = add TNone in
          connect bouts cn;
          record s cn;
          let at = add (TAssume (c, false)) in
          edge cn at;
          edge at h;
          let ax = add (TAssume (c, true)) in
          edge cn ax;
          [ ax ]
      | SDo (dc, body) | SForall (dc, body) ->
          let h = add (THead dc) in
          connect ins h;
          record s h;
          let bouts = walk_block ~masked [ h ] body in
          connect bouts h;
          [ h ]
    in
    let entry = add TNone in
    let _outs = walk_block ~masked:false [ entry ] block in
    let nnodes = !nn in
    let trs = Array.of_list (List.rev !trs) in
    let succs = Array.make nnodes [] in
    List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) !edges;
    let init =
      Env
        (SMap.singleton "iproc"
           {
             a_iv = { lo = Fin 1; hi = Fin p };
             a_cg = Some { co_coeff = 1; co_base = 0; co_mod = 0 };
           })
    in
    let fp =
      Dataflow.solve_fix ~nnodes ~succs ~entry ~init ~bottom:Bot
        ~join:env_join ~equal:env_equal
        ~transfer:(fun i e -> apply_tr trs.(i) e)
        ~widen:env_widen ~widen_after:3 ()
    in
    (* Decreasing iteration.  Chaotic iteration join-accumulates each
       node's output across loop visits, so a guard refinement that
       only becomes available after widening (e.g. [at1 <= n] giving
       [hi = Sym n]) is merged with the finite bounds of earlier
       visits — incomparable, hence infinity — and lost.  Re-running
       the transfers a few bounded rounds from the converged solution,
       without accumulation, recovers those refinements.  Every round
       remains a sound over-approximation of the reachable states:
       the previous round's outputs cover all predecessor exit states
       and each transfer is sound, so stopping after any round
       (converged or not) is safe. *)
    let preds = Array.make nnodes [] in
    Array.iteri
      (fun a bs -> List.iter (fun b -> preds.(b) <- a :: preds.(b)) bs)
      succs;
    let out = Array.copy fp.fp_out in
    let fin = Array.make nnodes Bot in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < 8 do
      incr rounds;
      changed := false;
      for i = 0 to nnodes - 1 do
        let input =
          List.fold_left
            (fun acc q -> env_join acc out.(q))
            (if i = entry then init else Bot)
            preds.(i)
        in
        fin.(i) <- input;
        let o = apply_tr trs.(i) input in
        if not (env_equal o out.(i)) then begin
          out.(i) <- o;
          changed := true
        end
      done
    done;
    { r_p = p; r_envs = List.map (fun (s, n) -> (s, fin.(n))) !keyed }
  end

(** Abstract value of [e] at the program point just before [stmt]
    (physical identity); [None] when the statement is unknown to the
    analysis or unreachable. *)
let eval_at (r : result) (stmt : Ast.stmt) (e : expr) : av option =
  let rec find = function
    | [] -> None
    | (s, env) :: rest -> if s == stmt then Some env else find rest
  in
  match find r.r_envs with
  | Some (Env m) -> Some (eval m e)
  | Some Bot | None -> None

(* ------------------------------------------------------------------ *)
(* Scatter disjointness                                                *)
(* ------------------------------------------------------------------ *)

(** Syntactic prover reusing the SIV machinery: a subscript affine in
    [iproc] with no symbolic residue collides across lanes only at
    dependence distance 0 (the same lane). *)
let affine_disjoint ~p (e : expr) : bool =
  match Depend.extract "iproc" (fun _ -> false) e with
  | Some af when af.Depend.sym = None -> (
      match Depend.siv_test ~bounds:(1, p) af af with
      | Depend.Independent -> true
      | Depend.Distance 0 -> af.Depend.coeff <> 0
      | _ -> false)
  | _ -> false

(** Can two distinct active lanes evaluate [ix] (at [stmt]) to the same
    value?  [false] = possibly; [true] = provably not, by either the
    syntactic SIV prover or the flow-sensitive congruence domain. *)
let scatter_disjoint (r : result) ~p (stmt : Ast.stmt) (ix : expr) : bool =
  p <= 1 || affine_disjoint ~p ix
  ||
  match eval_at r stmt ix with
  | Some { a_cg = Some c; _ } -> cg_lane_disjoint ~p c
  | _ -> false
