(** Execution frame of the compiled SIMD engine.

    The tree-walking VM resolves every variable access through a
    [(string, entry) Hashtbl.t] and represents plural scalars as boxed
    [Values.value array]s.  The compiled engine instead resolves each
    name {e once}, at compile time, to a dense integer slot in a frame,
    and stores plural int/real/logical scalars unboxed as [int array] /
    [float array] / [bool array] lane vectors.  A boxed [LBox] fallback
    keeps the data model exactly as permissive as the tree-walker's: a
    plural scalar whose lanes hold mixed types (e.g. a REAL written under
    a partial mask over an INTEGER-initialized variable) degrades to the
    boxed representation and re-specializes when it becomes uniform
    again.

    [Mask] is the activity mask of the lockstep machine: a reusable
    byte-per-lane bitset with a cached active count, so WHERE nesting and
    [tick_vector] accounting allocate nothing per step. *)

open Lf_lang

(** Unboxed plural-scalar storage; the boxed view of lane [i] of [LInt a]
    is [VInt a.(i)], etc. — conversions are value-preserving, so frame
    state is always bit-identical to the tree-walker's [value array]s. *)
type lanes =
  | LInt of int array
  | LReal of float array
  | LBool of bool array
  | LBox of Values.value array  (** mixed-type fallback *)

type slot =
  | Unbound  (** name seen in the program but not (yet) bound *)
  | Scalar of Values.value ref  (** front-end scalar (ref shared with the VM) *)
  | Plural of lanes  (** plural scalar, one component per lane *)
  | Global of Values.arr  (** global (distributed) array; storage shared *)
  | PluralArr of Values.arr  (** per-lane array; leading dim is the lane *)

type t = {
  p : int;
  names : string array;  (** slot index -> variable name *)
  slots : slot array;  (** mutable per-element; kinds may change at run time *)
  index : (string, int) Hashtbl.t;  (** compile-time name resolution *)
  mutable scr_i : int array array;  (** scratch pool, one lane vector per group *)
  mutable scr_r : float array array;
  mutable scr_b : bool array array;
}

let create ~p names =
  let names = Array.of_list names in
  let index = Hashtbl.create (Array.length names * 2) in
  Array.iteri (fun i n -> Hashtbl.replace index n i) names;
  {
    p;
    names;
    slots = Array.make (Array.length names) Unbound;
    index;
    scr_i = [||];
    scr_r = [||];
    scr_b = [||];
  }

(* Return a frame to its just-created slot state while keeping the name
   table and the lazily-grown scratch pools.  The program cache reuses
   frames across warm runs: slots must be re-imported per run (they
   alias VM storage), but scratch lane vectors may keep stale garbage —
   the engine's documented relaxation already allows computed-temporary
   lanes to hold garbage until (re)written, so reuse cannot change
   observable results. *)
let reset f = Array.fill f.slots 0 (Array.length f.slots) Unbound

let slot_index f name = Hashtbl.find_opt f.index name
let name_of f i = f.names.(i)
let n_slots f = Array.length f.slots
let get f i = f.slots.(i)
let set f i s = f.slots.(i) <- s

(* ------------------------------------------------------------------ *)
(* Scratch pool                                                        *)
(* ------------------------------------------------------------------ *)

(* The optimizer's liveness pass ([Opt.plan_scratch]) proves which
   operator result buffers are never simultaneously live and colors them
   into groups; sites in the same group share one lane vector per
   element type.  Vectors are allocated on first demand and live for the
   frame's lifetime, so steady-state execution allocates nothing.
   Shards of the parallel engine write disjoint lane ranges, so sharing
   the vectors across shards is race-free. *)

let scr_int f g =
  let n = Array.length f.scr_i in
  if g >= n then begin
    let t = Array.make (g + 1) [||] in
    Array.blit f.scr_i 0 t 0 n;
    f.scr_i <- t
  end;
  if Array.length f.scr_i.(g) <> f.p then f.scr_i.(g) <- Array.make f.p 0;
  f.scr_i.(g)

let scr_real f g =
  let n = Array.length f.scr_r in
  if g >= n then begin
    let t = Array.make (g + 1) [||] in
    Array.blit f.scr_r 0 t 0 n;
    f.scr_r <- t
  end;
  if Array.length f.scr_r.(g) <> f.p then f.scr_r.(g) <- Array.make f.p 0.0;
  f.scr_r.(g)

let scr_bool f g =
  let n = Array.length f.scr_b in
  if g >= n then begin
    let t = Array.make (g + 1) [||] in
    Array.blit f.scr_b 0 t 0 n;
    f.scr_b <- t
  end;
  if Array.length f.scr_b.(g) <> f.p then f.scr_b.(g) <- Array.make f.p false;
  f.scr_b.(g)

(* ------------------------------------------------------------------ *)
(* Lane-vector conversions                                             *)
(* ------------------------------------------------------------------ *)

(** Unbox a [value array] when its lanes are type-uniform; keep the boxed
    array (shared, not copied) otherwise. *)
let lanes_of_values (vs : Values.value array) : lanes =
  let n = Array.length vs in
  if n = 0 then LBox vs
  else
    let uniform tag =
      let ok = ref true in
      for i = 0 to n - 1 do
        ok := !ok && tag vs.(i)
      done;
      !ok
    in
    match vs.(0) with
    | Values.VInt _ when uniform (function Values.VInt _ -> true | _ -> false)
      ->
        LInt (Array.map (function Values.VInt x -> x | _ -> 0) vs)
    | Values.VReal _
      when uniform (function Values.VReal _ -> true | _ -> false) ->
        LReal (Array.map (function Values.VReal x -> x | _ -> 0.0) vs)
    | Values.VBool _
      when uniform (function Values.VBool _ -> true | _ -> false) ->
        LBool (Array.map (function Values.VBool x -> x | _ -> false) vs)
    | _ -> LBox vs

(** Boxed view of a lane vector (fresh array). *)
let values_of_lanes (l : lanes) : Values.value array =
  match l with
  | LInt a -> Array.map (fun x -> Values.VInt x) a
  | LReal a -> Array.map (fun x -> Values.VReal x) a
  | LBool a -> Array.map (fun x -> Values.VBool x) a
  | LBox a -> Array.copy a

(** Boxed view of one lane (allocates for int/real). *)
let lane_value (l : lanes) i : Values.value =
  match l with
  | LInt a -> Values.VInt a.(i)
  | LReal a -> Values.VReal a.(i)
  | LBool a -> Values.VBool a.(i)
  | LBox a -> a.(i)

(* ------------------------------------------------------------------ *)
(* Activity masks                                                      *)
(* ------------------------------------------------------------------ *)

module Mask = struct
  (** One byte per lane plus a cached population count: reading
      [active m] is O(1) (the tree-walker folds over the whole mask on
      every [tick_vector]), and WHERE nesting reuses per-site buffers, so
      masking allocates nothing per step. *)
  type t = {
    bits : Bytes.t;
    mutable active_n : int;
  }

  let create_full p = { bits = Bytes.make p '\001'; active_n = p }
  let create_empty p = { bits = Bytes.make p '\000'; active_n = 0 }
  let length m = Bytes.length m.bits
  let active m = m.active_n
  let get m i = Bytes.unsafe_get m.bits i <> '\000'

  let set m i b =
    let old = get m i in
    if old <> b then begin
      Bytes.unsafe_set m.bits i (if b then '\001' else '\000');
      m.active_n <- (m.active_n + if b then 1 else -1)
    end

  (** Reset to all-inactive without reallocating. *)
  let clear m =
    Bytes.fill m.bits 0 (Bytes.length m.bits) '\000';
    m.active_n <- 0

  let to_bool_array m = Array.init (length m) (fun i -> get m i)

  let of_bool_array (a : bool array) =
    let m = create_empty (Array.length a) in
    Array.iteri (fun i b -> set m i b) a;
    m
end
