(** The SIMD virtual machine: a lockstep interpreter for F90simd programs.

    One control unit issues every instruction; [p] lanes execute it under
    the current WHERE mask.  A masked-out processor still steps through
    each operation, which is why [Metrics.steps] counts every vector
    instruction once regardless of active lanes — reproducing the paper's
    execution model and its Eq. 2 vs Eq. 1′ step counts.

    The predefined plural variable [iproc] holds 1..P. *)

open Lf_lang

type entry =
  | VScalar of Values.value ref  (** front-end scalar *)
  | VPlural of Values.value array  (** plural scalar, one slot per lane *)
  | VGlobal of Values.arr  (** global (distributed) array *)
  | VPluralArr of Values.arr  (** per-lane array; leading dim is the lane *)

type proc = t -> mask:bool array -> Pval.t list -> unit
(** External subroutine: receives the VM, the activity mask, and the
    evaluated arguments; one invocation = one vector step. *)

and t = {
  p : int;  (** number of lanes *)
  vars : (string, entry) Hashtbl.t;
  metrics : Metrics.t;
  mutable fuel : int;
  procs : (string, proc) Hashtbl.t;
  funcs : (string, (Values.value list -> Values.value) * bool) Hashtbl.t;
      (** per-lane functions with their purity flag *)
  mutable observer : (t -> mask:bool array -> Ast.stmt -> unit) option;
  trace : Lf_obs.Trace.t;
      (** per-vector-step event collector; off (one flat branch per
          step, no allocation) until a sink is attached *)
  mutable cur_loc : Errors.pos;
      (** location of the innermost [SLoc]-wrapped statement executing *)
}

val default_fuel : int
val create : ?fuel:int -> p:int -> unit -> t
val register_proc : t -> string -> proc -> unit

(** Install a per-statement observer, called before each assignment or
    CALL with the activity mask — the hook behind occupancy traces. *)
val set_observer : t -> (t -> mask:bool array -> Ast.stmt -> unit) -> unit

(** Attach a per-vector-step trace sink; both engines then emit one
    [Lf_obs.Trace] event per vector step (and per reduction), carrying
    the issuing statement's source location and activity mask. *)
val add_trace_sink : t -> Lf_obs.Trace.sink -> unit

(** Register a per-lane function (applied pointwise under the mask when
    any argument is plural).  [pure] (default [false]) promises the
    function has no observable side effects and no dependence on
    application order, which lets the parallel engine apply it
    lane-parallel; impure functions always see the serial ascending
    per-lane order, on every engine. *)
val register_func :
  t -> ?pure:bool -> string -> (Values.value list -> Values.value) -> unit

val full_mask : t -> bool array
val active_count : bool array -> int

(* variable binding *)

val bind_scalar : t -> string -> Values.value -> unit
val bind_plural : t -> string -> Values.value array -> unit
val bind_global : t -> string -> Values.arr -> unit
val bind_plural_arr : t -> string -> Ast.dtype -> int array -> unit
val find : t -> string -> entry
val find_opt : t -> string -> entry option

(** Copy out a plural scalar (for assertions). *)
val read_plural : t -> string -> Values.value array

(** The storage of a global or plural array. *)
val read_global : t -> string -> Values.arr

(* execution *)

val eval : t -> mask:bool array -> Ast.expr -> Pval.t
val exec : t -> mask:bool array -> Ast.stmt -> unit
val exec_block : t -> mask:bool array -> Ast.block -> unit

(** Allocate declared variables (plural scalars get one slot per lane,
    plural arrays a leading lane dimension); pre-seeded bindings are
    kept. *)
val declare : t -> Ast.decl list -> unit

(** Execution engine: the tree-walking interpreter, the compiled closure
    engine ([Compile] / [Frame]), or the lane-sharded parallel engine
    (the compiled engine dispatching per-lane loops over the [Pool]
    Domain pool) — drop-in replacements producing identical variable
    state, [Metrics], trace events and error messages. *)
type engine = [ `Tree_walk | `Compiled | `Parallel ]

(** Run a program on a fresh VM.  [setup] may pre-bind globals and
    parameters before declarations are processed; [engine] defaults to
    the tree-walker.  [jobs] bounds the [`Parallel] shard count
    (default [Pool.default_jobs ()]; ignored by the serial engines).
    [opt] is the compiled-engine optimizer level (see [Compile.compile];
    default 1, ignored by the tree-walker) — every level is bit-identical
    to every other, only the wall-clock changes.
    [verify] runs the IR verifier after every optimizer phase (compiled
    engines only; see [Compile.compile]); raises [Verify.Error] on a
    broken invariant.
    @raise Invalid_argument when [engine] is [`Parallel] and [jobs < 1]. *)
val run :
  ?fuel:int -> ?engine:engine -> ?jobs:int -> ?opt:int -> ?verify:bool ->
  p:int -> ?setup:(t -> unit) -> Ast.program -> t

(** [run_src] is [run] from source text, optionally through a program
    cache ([Progcache]).  Without [cache] it parses and delegates to
    [run].  With [cache], the run is keyed by [(MD5 of the source,
    dialect, opt, verify, p)]: a cold run parses, lowers and optimizes
    exactly as [run] would and stores the parse plus the post-[Opt] IR
    and its frame layout; a warm run skips the whole front end and goes
    straight to emission (compiled engines) or straight to the parsed
    AST (tree-walk), reusing a pooled frame.  Warm and cold runs are
    bit-identical — state, [Metrics], error strings, trace/profile
    events — on every engine at every [-O] level; only the [opt.*]
    compile-time telemetry (and the wall clock) can differ, because the
    optimizer genuinely does not run again.  [dialect] (default
    ["simd"]) namespaces keys for callers that cache several source
    languages in one cache. *)
val run_src :
  ?fuel:int -> ?engine:engine -> ?jobs:int -> ?opt:int -> ?verify:bool ->
  ?cache:Progcache.t -> ?dialect:string ->
  p:int -> ?setup:(t -> unit) -> string -> t

(** The compiled engine's annotated IR for [prog] as JSON (the
    [--dump-ir] payload), without executing anything: lower against the
    same frame name table [run] would use, run the [Opt] pipeline at
    [opt] (default 1), render with [Ir.to_json]. *)
val dump_ir :
  ?opt:int -> p:int -> ?setup:(t -> unit) -> Ast.program -> Lf_obs.Json.t

(** Per-phase variant (the [--dump-ir-phase] payload): the annotated IR
    after each named [Opt] phase, in execution order ("lower" first). *)
val dump_ir_phases :
  ?opt:int -> p:int -> ?setup:(t -> unit) -> Ast.program ->
  (string * Lf_obs.Json.t) list

(** Standalone verification without executing: lower against the same
    frame name table [run] would use and run the [Opt] pipeline at [opt]
    with [Verify.check_ir] at every phase boundary.
    @raise Verify.Error on a broken invariant. *)
val verify_ir : ?opt:int -> p:int -> ?setup:(t -> unit) -> Ast.program -> unit

(** Same variable table: same names, same entry kinds, equal values.
    Together with [Metrics.equal] this is the engine-equivalence oracle
    used by the differential tests. *)
val state_equal : t -> t -> bool
