(** The optimizer pipeline over the slot-resolved IR ([Ir]).

    [run ~level] is the identity at [-O0].  At [-O1] it applies, in
    order:

    + {b constant folding} — [XBin]/[XUn] over literal operands are
      folded through [Scalar_ops] at compile time; an operation that
      would raise (integer division by zero) is kept, so the error still
      surfaces at run time with the original message;
    + {b elementwise fusion} — maximal subtrees of elementwise
      arithmetic / comparison / logic nodes, unary numeric intrinsics
      and global-array gathers over variable/literal leaves are
      annotated as fused regions ([Ir.FRegion]) {e when the subtree
      applies at least one intrinsic} (the shape the unfused engine can
      only run through its boxed per-lane call path — intrinsic-free
      chains already run as unboxed monomorphic loops and measure
      faster unfused, see [has_intr]); a reduction call whose argument
      is any fusible subtree is annotated [Ir.FReduce] so the fold
      happens inside the chunked merge tree without materializing the
      argument.  Region construction value-numbers its postorder
      program, so a gather or subexpression repeated within one
      statement (CSE) is evaluated once per lane;
    + {b scatter-accumulate} — [a(ix) = a(ix) + e] with a pure
      arithmetic subscript is annotated [s_accum]: the emitter may merge
      the final add into the scatter pass;
    + {b mask simplification} — statements whose context mask is
      provably the full entry mask (never nested under WHERE or a
      plural IF branch) are annotated [s_full], letting fused loops drop
      the per-lane mask test;
    + {b scratch planning} — every buffer-bearing site (binary/unary
      operators, gathers, calls, fused regions) is assigned a recycled
      scratch group in [Frame] by a liveness analysis over the
      linearized evaluation order, reusing [Lf_analysis.Dataflow]'s
      worklist solver: sites whose result buffers are never
      simultaneously live share a group, so steady-state vector-op
      execution allocates nothing even for unfused residue.

    At [-O2] two further phases run off a single value-range abstract
    interpretation ([Lf_analysis.Range]): {b range claims} ([x_range])
    on gather/scatter subscripts, letting the emitter discharge per-lane
    bounds checks, and {b parallel-scatter marking} ([s_par]) on rank-1
    stores with provably lane-disjoint subscripts, letting the parallel
    engine shard global-array scatters it otherwise keeps serial.

    Every annotation is advisory: the emitter re-validates fusibility
    against runtime operand shapes (and range/parallel claims against
    resolved dimensions and the canonical entry [iproc] binding) and
    falls back to the unoptimized evaluation order whenever the typed
    plan does not apply, which is what keeps [-O1]/[-O2] bit-identical
    to [-O0].  Under [?verify] every phase boundary additionally runs
    the independent IR verifier ([Verify]); [?dump] receives each
    phase's annotated IR by name. *)

open Lf_lang
open Ir
module Dataflow = Lf_analysis.Dataflow
module Cfg = Lf_analysis.Cfg
module Range = Lf_analysis.Range

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let const_of e = match e.x_node with XConst v -> Some v | _ -> None

let rec fold_expr (e : expr) : unit =
  (match e.x_node with
  | XConst _ | XVar _ -> ()
  | XRange (a, b) ->
      fold_expr a;
      fold_expr b
  | XUn (op, a) -> (
      fold_expr a;
      match const_of a with
      | Some v -> (
          match Scalar_ops.apply_unop op v with
          | v' -> e.x_node <- XConst v'
          | exception Errors.Runtime_error _ -> ())
      | None -> ())
  | XBin (op, a, b) -> (
      fold_expr a;
      fold_expr b;
      match (const_of a, const_of b) with
      | Some x, Some y -> (
          match Scalar_ops.apply_binop op x y with
          | v -> e.x_node <- XConst v
          | exception Errors.Runtime_error _ -> ())
      | _ -> ())
  | XCall (_, args) -> List.iter fold_expr args
  | XIdx (_, _, args) -> List.iter fold_expr args);
  ()

(* ------------------------------------------------------------------ *)
(* Fusion                                                              *)
(* ------------------------------------------------------------------ *)

(** Number of interior (operator) nodes if the subtree is fusible:
    leaves are slot-resolved variables and literals; interior nodes are
    non-POW binary operators, unary operators, fusible unary intrinsics
    and rank-1/2 gathers.  POW is excluded (its int/real result split is
    per-lane), ranges and general calls break the region. *)
let rec fusible_ops (e : expr) : int option =
  match e.x_node with
  | XConst (Values.VInt _ | Values.VReal _ | Values.VBool _) -> Some 0
  | XConst _ -> None
  | XVar (Some _, _) -> Some 0
  | XVar (None, _) -> None
  | XRange _ -> None
  | XUn (_, a) -> Option.map (fun n -> n + 1) (fusible_ops a)
  | XBin (Ast.Pow, _, _) -> None
  | XBin (_, a, b) -> (
      match (fusible_ops a, fusible_ops b) with
      | Some x, Some y -> Some (x + y + 1)
      | _ -> None)
  | XCall (name, [ a ])
    when List.mem (String.lowercase_ascii name) fusible_intrinsics
         && not (is_reduction name) ->
      Option.map (fun n -> n + 1) (fusible_ops a)
  | XCall _ -> None
  | XIdx (_, _, args) when List.length args >= 1 && List.length args <= 2 ->
      List.fold_left
        (fun acc a ->
          match (acc, fusible_ops a) with
          | Some x, Some y -> Some (x + y)
          | _ -> None)
        (Some 1) args
  | XIdx _ -> None

(** Build the postorder region program for a fusible subtree,
    value-numbering every instruction: a repeated gather, variable read
    or subexpression gets a single slot (CSE within the statement; sound
    because region leaves are pure and nothing can write between two
    occurrences inside one expression). *)
let build_region (e : expr) : region =
  let ops = ref [] in
  let n = ref 0 in
  let tbl = Hashtbl.create 16 in
  let emit (op : rop) : int =
    match Hashtbl.find_opt tbl op with
    | Some id -> id
    | None ->
        let id = !n in
        incr n;
        ops := op :: !ops;
        Hashtbl.add tbl op id;
        id
  in
  let rec go e =
    match e.x_node with
    | XConst v -> emit (OConst v)
    | XVar (Some slot, name) -> emit (OVar (slot, name))
    | XUn (op, a) ->
        let ia = go a in
        emit (OUn (op, ia))
    | XBin (op, a, b) ->
        let ia = go a in
        let ib = go b in
        emit (OBin (op, ia, ib))
    | XCall (name, [ a ]) ->
        let ia = go a in
        emit (OIntr (String.lowercase_ascii name, ia))
    | XIdx (slot, name, args) ->
        let ix = List.map go args in
        emit (OGather (slot, name, Array.of_list ix))
    | _ -> assert false (* excluded by [fusible_ops] *)
  in
  let root = go e in
  assert (root = !n - 1);
  { rg_ops = Array.of_list (List.rev !ops) }

(** Whether a fusible subtree applies an intrinsic.  The unfused engine
    evaluates intrinsics through the boxed per-lane call path — the one
    elementwise shape where a fused loop is a large measured win (no
    [value] boxing, no argument array).  Plain arithmetic, comparisons
    and gathers already run as monomorphic unboxed loops at [-O0];
    fusing those trades a scratch-buffer round-trip for an indirect
    call per operand per lane, which benchmarks as a net loss at every
    chain depth — so intrinsic-free regions are left to the
    per-operator fast paths.  (Reductions are different: folding the
    region into the merge tree also skips materializing and
    renormalizing the argument vector, which pays for the calls; see
    [annotate_expr].) *)
let rec has_intr (e : expr) : bool =
  match e.x_node with
  | XConst _ | XVar _ | XRange _ -> false
  | XCall _ -> true
  | XUn (_, a) -> has_intr a
  | XBin (_, a, b) -> has_intr a || has_intr b
  | XIdx (_, _, args) -> List.exists has_intr args

let rec annotate_expr (e : expr) : unit =
  match fusible_ops e with
  | Some n when n >= 1 && has_intr e ->
      e.x_fused <- Some (FRegion (build_region e))
  | _ -> (
      match e.x_node with
      | XConst _ | XVar _ -> ()
      | XRange (a, b) ->
          annotate_expr a;
          annotate_expr b
      | XUn (_, a) -> annotate_expr a
      | XBin (_, a, b) ->
          annotate_expr a;
          annotate_expr b
      | XCall (name, ([ a ] as args)) when is_reduction name -> (
          match fusible_ops a with
          | Some n when n >= 1 ->
              e.x_fused <-
                Some (FReduce (String.lowercase_ascii name, build_region a))
          | _ -> List.iter annotate_expr args)
      | XCall (_, args) -> List.iter annotate_expr args
      | XIdx (_, _, args) -> List.iter annotate_expr args)

(* ------------------------------------------------------------------ *)
(* Scatter-accumulate                                                  *)
(* ------------------------------------------------------------------ *)

(** Pure, deterministic and frame-only: safe to evaluate once where the
    unoptimized engine evaluates twice (gather subscript and scatter
    subscript are the same expression).  Function calls are excluded
    (impure callees observe invocation counts), as are gathers (a call
    in between could mutate the global being read). *)
let rec pure_arith (e : expr) : bool =
  match e.x_node with
  | XConst _ | XVar (Some _, _) -> true
  | XUn (_, a) -> pure_arith a
  | XBin (_, a, b) -> pure_arith a && pure_arith b
  | _ -> false

let mark_accum (s : stmt) : unit =
  match s.s_node with
  | LAssign ({ l_slot; l_index = [ ix ]; _ }, rhs) when rhs.x_fused = None -> (
      match rhs.x_node with
      | XBin (Ast.Add, g, _rest) -> (
          match g.x_node with
          | XIdx (gslot, _, [ gix ])
            when gslot = l_slot && gix.x_ast = ix.x_ast && pure_arith ix ->
              s.s_accum <- true
          | _ -> ())
      | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Mask simplification                                                 *)
(* ------------------------------------------------------------------ *)

(** [s_full] is sound because [Compile.compile]'s closure is entered
    with the full mask (see [Vm.run_compiled]); WHERE branches and both
    branches of an IF (whose plural dispatch runs them under split
    masks) reset the flag, loop bodies inherit it. *)
let rec mark_full under (s : stmt) : unit =
  s.s_full <- under;
  match s.s_node with
  | LLoc (_, inner) -> mark_full under inner
  | LIf (_, t, f) | LWhere (_, t, f) ->
      Array.iter (mark_full false) t;
      Array.iter (mark_full false) f
  | LWhile (_, b) | LDoWhile (b, _) | LDo (_, _, _, _, _, b) ->
      Array.iter (mark_full under) b
  | LNop | LAssign _ | LScall _ | LGoto -> ()

(* ------------------------------------------------------------------ *)
(* Statement walks                                                     *)
(* ------------------------------------------------------------------ *)

let rec walk_stmt_exprs f (s : stmt) : unit =
  match s.s_node with
  | LLoc (_, inner) -> walk_stmt_exprs f inner
  | LNop | LGoto -> ()
  | LAssign (l, e) ->
      f e;
      List.iter f l.l_index
  | LScall (_, args) -> List.iter (fun (a, _) -> f a) args
  | LIf (c, t, bf) | LWhere (c, t, bf) ->
      f c;
      Array.iter (walk_stmt_exprs f) t;
      Array.iter (walk_stmt_exprs f) bf
  | LWhile (c, b) ->
      f c;
      Array.iter (walk_stmt_exprs f) b
  | LDoWhile (b, c) ->
      Array.iter (walk_stmt_exprs f) b;
      f c
  | LDo (_, _, lo, hi, step, b) ->
      f lo;
      f hi;
      Option.iter f step;
      Array.iter (walk_stmt_exprs f) b

let rec walk_stmts f (s : stmt) : unit =
  f s;
  match s.s_node with
  | LLoc (_, inner) -> walk_stmts f inner
  | LIf (_, t, bf) | LWhere (_, t, bf) ->
      Array.iter (walk_stmts f) t;
      Array.iter (walk_stmts f) bf
  | LWhile (_, b) | LDoWhile (b, _) | LDo (_, _, _, _, _, b) ->
      Array.iter (walk_stmts f) b
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Scratch planning (liveness over the linearized evaluation order)    *)
(* ------------------------------------------------------------------ *)

(** A site is an IR node whose evaluation owns result buffers (the
    per-site [ri]/[rr]/[rb] arrays of the emitter).  The linearized
    evaluation order is exact within a statement (operands before
    operators, right siblings after left, subscripts after an
    assignment's right-hand side) and conservative across statements —
    which is enough, because no site's result survives its statement:
    it is consumed by a store, a mask split, a reduction fold or an
    argument conversion before the next statement runs. *)
type step = {
  st_uses : int list;
  st_def : int option;
}

let plan_scratch (b : block) : int * int =
  let sites : expr list ref = ref [] in
  let nsites = ref 0 in
  let steps : step list ref = ref [] in
  let new_temp (e : expr) =
    let id = !nsites in
    incr nsites;
    sites := e :: !sites;
    id
  in
  let push uses def = steps := { st_uses = uses; st_def = def } :: !steps in
  (* Returns the temp holding the expression's result buffers, if the
     node owns any.  Mirrors the emitter's evaluation order. *)
  let rec ex (e : expr) : int option =
    match e.x_fused with
    | Some (FRegion _) ->
        (* leaves are read inside the fused loop; one step, one temp *)
        let t = new_temp e in
        e.x_scr <- t (* provisional: rewritten to a group below *);
        push [] (Some t);
        Some t
    | Some (FReduce _) ->
        (* folds straight to a front-end scalar: no result buffers *)
        push [] None;
        None
    | None -> (
        match e.x_node with
        | XConst _ | XVar _ -> None
        | XRange (lo, hi) ->
            let a = ex lo in
            let b = ex hi in
            push (List.filter_map Fun.id [ a; b ]) None;
            None
        | XUn (_, a) ->
            let ta = ex a in
            let t = new_temp e in
            e.x_scr <- t;
            push (Option.to_list ta) (Some t);
            Some t
        | XBin (_, a, b) ->
            let ta = ex a in
            let tb = ex b in
            let t = new_temp e in
            e.x_scr <- t;
            push (List.filter_map Fun.id [ ta; tb ]) (Some t);
            Some t
        | XCall (name, args) when is_reduction name ->
            let ts = List.filter_map ex args in
            push ts None;
            None
        | XCall (_, args) ->
            let ts = List.filter_map ex args in
            let t = new_temp e in
            e.x_scr <- t;
            push ts (Some t);
            Some t
        | XIdx (_, _, args) ->
            let ts = List.filter_map ex args in
            let t = new_temp e in
            e.x_scr <- t;
            push ts (Some t);
            Some t)
  in
  let rec st (s : stmt) : unit =
    match s.s_node with
    | LLoc (_, inner) -> st inner
    | LNop | LGoto -> ()
    | LAssign (l, e) ->
        let te = ex e in
        let tix = List.filter_map ex l.l_index in
        (* the merged scatter-accumulate pass additionally reads the
           subscript evaluated inside the gather; it is covered by [te]
           (the gather is part of the right-hand side's subtree and its
           temp is kept live through the final step) *)
        let extra =
          if s.s_accum then
            match e.x_node with
            | XBin (_, g, rest) ->
                let t e = if e.x_scr >= 0 then [ e.x_scr ] else [] in
                t g @ t rest
                @ (match g.x_node with
                  | XIdx (_, _, [ gix ]) -> t gix
                  | _ -> [])
            | _ -> []
          else []
        in
        push (Option.to_list te @ tix @ extra) None
    | LScall (_, args) ->
        let ts = List.filter_map (fun (a, _) -> ex a) args in
        push ts None
    | LIf (c, t, f) | LWhere (c, t, f) ->
        let tc = ex c in
        push (Option.to_list tc) None;
        Array.iter st t;
        Array.iter st f
    | LWhile (c, b) ->
        let tc = ex c in
        push (Option.to_list tc) None;
        Array.iter st b
    | LDoWhile (b, c) ->
        Array.iter st b;
        let tc = ex c in
        push (Option.to_list tc) None
    | LDo (_, _, lo, hi, step, b) ->
        let ts =
          List.filter_map Fun.id
            [ ex lo; ex hi; Option.bind step ex ]
        in
        push ts None;
        Array.iter st b
  in
  Array.iter st b;
  let steps = Array.of_list (List.rev !steps) in
  let sites = Array.of_list (List.rev !sites) in
  let ntemps = !nsites in
  if ntemps = 0 then (0, 0)
  else begin
    (* Linear CFG over the evaluation steps: entry -> s0 -> ... -> exit.
       Liveness is exact within a statement and conservative across
       control flow (no temp is live across a statement boundary, so
       branch and back edges carry no facts). *)
    let nsteps = Array.length steps in
    let nnodes = nsteps + 2 in
    let nodes =
      Array.init nnodes (fun id ->
          {
            Cfg.id;
            kind =
              (if id = 0 then Cfg.Entry
               else if id = nnodes - 1 then Cfg.Exit
               else Cfg.Join);
            loc = None;
            masked = false;
            succ = (if id = nnodes - 1 then [] else [ id + 1 ]);
            pred = (if id = 0 then [] else [ id - 1 ]);
          })
    in
    let cfg = { Cfg.nodes; entry = 0; exit_ = nnodes - 1 } in
    let set_of l = List.fold_left (fun s x -> Dataflow.IntSet.add x s)
        Dataflow.IntSet.empty l
    in
    let gen i =
      if i = 0 || i = nnodes - 1 then Dataflow.IntSet.empty
      else set_of steps.(i - 1).st_uses
    in
    let kill i =
      if i = 0 || i = nnodes - 1 then Dataflow.IntSet.empty
      else
        match steps.(i - 1).st_def with
        | Some d -> Dataflow.IntSet.singleton d
        | None -> Dataflow.IntSet.empty
    in
    let sol =
      Dataflow.solve cfg
        { Dataflow.dir = Dataflow.Backward; nfacts = ntemps; gen; kill }
    in
    (* Interference: a temp defined at a step conflicts with every other
       temp still live after that step. *)
    let conflict = Array.make ntemps Dataflow.IntSet.empty in
    Array.iteri
      (fun i step ->
        match step.st_def with
        | None -> ()
        | Some d ->
            let live = Dataflow.IntSet.remove d sol.Dataflow.out.(i + 1) in
            conflict.(d) <- Dataflow.IntSet.union conflict.(d) live;
            Dataflow.IntSet.iter
              (fun o -> conflict.(o) <- Dataflow.IntSet.add d conflict.(o))
              live)
      steps;
    (* Greedy coloring in definition order: the smallest group not taken
       by an interfering, already-colored temp. *)
    let color = Array.make ntemps (-1) in
    for t = 0 to ntemps - 1 do
      let taken =
        Dataflow.IntSet.fold
          (fun o acc -> if color.(o) >= 0 then color.(o) :: acc else acc)
          conflict.(t) []
      in
      let rec first g = if List.mem g taken then first (g + 1) else g in
      color.(t) <- first 0
    done;
    Array.iteri (fun t site -> site.x_scr <- color.(t)) sites;
    (ntemps, 1 + Array.fold_left max (-1) color)
  end

(* ------------------------------------------------------------------ *)
(* Range analysis and parallel scatters ([-O2])                        *)
(* ------------------------------------------------------------------ *)

(* At [-O2] the value-range abstract interpretation ([Range], over the
   original AST the IR shares physically) runs once; its per-statement
   environments feed two annotation passes:

   - every gather/scatter {e subscript} whose derived interval is not
     top gets an [x_range] claim.  The emitter resolves the claim's
     (possibly symbolic) bounds against the target dimension at run time
     and drops the per-lane bounds branch when [1 <= lo && hi <= dim] —
     claimed ⊇ derived ⊇ concrete per-lane values, so a discharged check
     can never have fired;
   - every rank-1 store whose subscript is provably pairwise
     lane-disjoint (the SIV prover over [iproc], or the flow-sensitive
     lane-affine congruence) is marked [s_par], letting the parallel
     engine shard a global-array scatter it otherwise keeps serial.

   Both claims are advisory and revalidated: the verifier re-derives
   them at the phase boundary, and the emitter additionally validates at
   run time that the entry [iproc] binding is canonical ([1..p]) before
   trusting any lane-indexed fact. *)

let rec claim_ranges res count stmt_ast (e : expr) : unit =
  (match e.x_node with
  | XIdx (_, _, args) ->
      List.iter
        (fun (ix : expr) ->
          match Range.eval_at res stmt_ast ix.x_ast with
          | Some av when av.Range.a_iv <> Range.top_iv ->
              ix.x_range <- Some av.Range.a_iv;
              incr count
          | _ -> ())
        args
  | _ -> ());
  match e.x_node with
  | XConst _ | XVar _ -> ()
  | XRange (a, b) | XBin (_, a, b) ->
      claim_ranges res count stmt_ast a;
      claim_ranges res count stmt_ast b
  | XUn (_, a) -> claim_ranges res count stmt_ast a
  | XCall (_, args) | XIdx (_, _, args) ->
      List.iter (claim_ranges res count stmt_ast) args

let annotate_ranges res (b : block) : int =
  let count = ref 0 in
  let claim_store stmt_ast (ix : expr) =
    match Range.eval_at res stmt_ast ix.x_ast with
    | Some av when av.Range.a_iv <> Range.top_iv ->
        ix.x_range <- Some av.Range.a_iv;
        incr count
    | _ -> ()
  in
  let rec st (s : stmt) : unit =
    match s.s_node with
    | LLoc (_, inner) -> st inner
    | LNop | LGoto -> ()
    | LAssign (l, e) ->
        List.iter (claim_store s.s_ast) l.l_index;
        claim_ranges res count s.s_ast e;
        List.iter (claim_ranges res count s.s_ast) l.l_index
    | LScall (_, args) ->
        List.iter (fun (a, _) -> claim_ranges res count s.s_ast a) args
    | LIf (c, t, f) | LWhere (c, t, f) ->
        claim_ranges res count s.s_ast c;
        Array.iter st t;
        Array.iter st f
    | LWhile (c, b) ->
        claim_ranges res count s.s_ast c;
        Array.iter st b
    | LDoWhile (b, c) ->
        Array.iter st b;
        claim_ranges res count s.s_ast c
    | LDo (_, _, lo, hi, step, b) ->
        claim_ranges res count s.s_ast lo;
        claim_ranges res count s.s_ast hi;
        Option.iter (claim_ranges res count s.s_ast) step;
        Array.iter st b
  in
  Array.iter st b;
  !count

let mark_par_scatters res ~p (b : block) : int =
  let count = ref 0 in
  let rec st (s : stmt) : unit =
    match s.s_node with
    | LLoc (_, inner) -> st inner
    | LAssign ({ l_index = [ ix ]; _ }, _) ->
        if Range.scatter_disjoint res ~p s.s_ast ix.x_ast then begin
          s.s_par <- true;
          incr count
        end
    | LIf (_, t, f) | LWhere (_, t, f) ->
        Array.iter st t;
        Array.iter st f
    | LWhile (_, bl) | LDoWhile (bl, _) | LDo (_, _, _, _, _, bl) ->
        Array.iter st bl
    | LNop | LGoto | LAssign _ | LScall _ -> ()
  in
  Array.iter st b;
  !count

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* Compile-time optimizer telemetry (section [Opt]: deterministic for a
   given program and [-O] level, independent of the engine and jobs).
   Counters accumulate across optimizer invocations — one per compile,
   so one per [Vm.run] with a compiled engine. *)
module Stats = Lf_obs.Stats

let st_fused_regions = Stats.counter ~section:Stats.Opt "opt.fused_regions"

let st_fused_reductions =
  Stats.counter ~section:Stats.Opt "opt.fused_reductions"

let st_accum_marks = Stats.counter ~section:Stats.Opt "opt.accum_marks"
let st_full_mask = Stats.counter ~section:Stats.Opt "opt.full_mask_stmts"
let st_scratch_sites = Stats.counter ~section:Stats.Opt "opt.scratch_sites"
let st_scratch_groups = Stats.counter ~section:Stats.Opt "opt.scratch_groups"

let st_scratch_reused =
  Stats.counter ~section:Stats.Opt "opt.scratch_reused"

let st_range_sites = Stats.counter ~section:Stats.Opt "opt.range_sites"

let st_par_sites =
  Stats.counter ~section:Stats.Opt "opt.par_scatter_sites"

let record_stats (b : block) ~sites ~groups =
  let regions = ref 0 and reduces = ref 0 in
  let rec count_expr (e : expr) =
    (match e.x_fused with
    | Some (FRegion _) -> incr regions
    | Some (FReduce _) -> incr reduces
    | None -> ());
    match e.x_node with
    | XConst _ | XVar _ -> ()
    | XRange (a, b) | XBin (_, a, b) ->
        count_expr a;
        count_expr b
    | XUn (_, a) -> count_expr a
    | XCall (_, args) | XIdx (_, _, args) -> List.iter count_expr args
  in
  Array.iter (walk_stmt_exprs count_expr) b;
  let accums = ref 0 and fulls = ref 0 in
  (* [LLoc] wrappers carry the same [s_full] flag as their payload
     statement; count only the payload to avoid double counting. *)
  Array.iter
    (walk_stmts (fun s ->
         match s.s_node with
         | LLoc _ -> ()
         | _ ->
             if s.s_accum then incr accums;
             if s.s_full then incr fulls))
    b;
  Stats.add st_fused_regions !regions;
  Stats.add st_fused_reductions !reduces;
  Stats.add st_accum_marks !accums;
  Stats.add st_full_mask !fulls;
  Stats.add st_scratch_sites sites;
  Stats.add st_scratch_groups groups;
  Stats.add st_scratch_reused (sites - groups)

(** The named phase sequence: each entry is checked/dumped separately
    under [?verify]/[?dump].  "lower" is the un-optimized input (the
    only phase at [-O0]); "range"/"parscatter" only run at [-O2]. *)
let phases = [ "lower"; "fold"; "fuse"; "accum"; "fullmask"; "scratch";
               "range"; "parscatter" ]

(* Test-only fault injection (the fuzzer's acceptance check and the
   verifier suite drive it): when set to a phase name, the pipeline
   deliberately mis-annotates the IR right after that phase runs —
   claiming every statement's context mask is full, the canonical
   "buggy fullmask pass".  Under [?verify] the injected corruption is
   caught at the same phase boundary; without it, the emitter trusts
   the claim and the engines observably diverge under any non-full
   WHERE mask.  Always [None] in production. *)
let chaos_phase : string option ref = ref None

let rec chaos_corrupt (s : stmt) =
  s.s_full <- true;
  match s.s_node with
  | LLoc (_, inner) -> chaos_corrupt inner
  | LIf (_, t, f) | LWhere (_, t, f) ->
      Array.iter chaos_corrupt t;
      Array.iter chaos_corrupt f
  | LWhile (_, b) | LDoWhile (b, _) | LDo (_, _, _, _, _, b) ->
      Array.iter chaos_corrupt b
  | LNop | LAssign _ | LScall _ | LGoto -> ()

let run ~level ~(frame : Frame.t) ?(verify = false) ?dump (b : block) : block
    =
  let phase name f =
    f ();
    (match !chaos_phase with
    | Some p when p = name -> Array.iter chaos_corrupt b
    | _ -> ());
    (match dump with Some d -> d name b | None -> ());
    if verify then Verify.check_ir ~frame ~phase:name b
  in
  phase "lower" (fun () -> ());
  if level >= 1 then begin
    phase "fold" (fun () -> Array.iter (walk_stmt_exprs fold_expr) b);
    phase "fuse" (fun () -> Array.iter (walk_stmt_exprs annotate_expr) b);
    phase "accum" (fun () -> Array.iter (walk_stmts mark_accum) b);
    phase "fullmask" (fun () -> Array.iter (mark_full true) b);
    let sg = ref (0, 0) in
    phase "scratch" (fun () -> sg := plan_scratch b);
    if level >= 2 then begin
      let ast = Array.to_list (Array.map (fun s -> s.s_ast) b) in
      let res = Range.analyze ~p:frame.Frame.p ast in
      let nranges = ref 0 and npar = ref 0 in
      phase "range" (fun () -> nranges := annotate_ranges res b);
      phase "parscatter" (fun () ->
          npar := mark_par_scatters res ~p:frame.Frame.p b);
      if Stats.enabled () then begin
        Stats.add st_range_sites !nranges;
        Stats.add st_par_sites !npar
      end
    end;
    let sites, groups = !sg in
    if Stats.enabled () then record_stats b ~sites ~groups
  end;
  b
