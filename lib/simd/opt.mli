(** The optimizer pipeline over the slot-resolved IR ([Ir]).

    [run ~level] is the identity at level 0 ([-O0]).  At level 1 and
    above it applies, in order: constant folding, elementwise fusion
    ([Ir.FRegion], only for intrinsic-bearing subtrees — see the
    rationale in the implementation), reduction fusion ([Ir.FReduce]),
    scatter-accumulate marking ([Ir.s_accum]), mask simplification
    ([Ir.s_full]) and scratch planning ([Ir.x_scr], a liveness analysis
    over the linearized evaluation order reusing
    [Lf_analysis.Dataflow]'s worklist solver).

    Every annotation is advisory: the emitter ([Compile]) re-validates
    fusibility against runtime operand shapes and falls back to the
    unoptimized evaluation order whenever a typed plan does not apply,
    which is what keeps [-O1] bit-identical to [-O0] on state, metrics,
    error strings, first-failing-lane semantics and trace events. *)

val run : level:int -> Ir.block -> Ir.block
