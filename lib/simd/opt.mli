(** The optimizer pipeline over the slot-resolved IR ([Ir]).

    [run ~level] is the identity at level 0 ([-O0]).  At level 1 and
    above it applies, in named phases: constant folding ("fold"),
    elementwise fusion ([Ir.FRegion], only for intrinsic-bearing
    subtrees — see the rationale in the implementation) and reduction
    fusion ([Ir.FReduce]) ("fuse"), scatter-accumulate marking
    ([Ir.s_accum], "accum"), mask simplification ([Ir.s_full],
    "fullmask") and scratch planning ([Ir.x_scr], "scratch", a liveness
    analysis over the linearized evaluation order reusing
    [Lf_analysis.Dataflow]'s worklist solver).

    At level 2 a value-range / lane-congruence abstract interpretation
    ([Lf_analysis.Range]) feeds two more phases: "range" claims
    intervals for gather/scatter subscripts ([Ir.x_range], letting the
    emitter discharge per-lane bounds checks) and "parscatter" marks
    rank-1 stores with provably pairwise lane-disjoint subscripts
    ([Ir.s_par], letting the parallel engine shard global-array
    scatters).

    Every annotation is advisory: the emitter ([Compile]) re-validates
    them against runtime shapes, resolved dimensions and the canonical
    entry [iproc] binding, and falls back to checked/serial execution
    whenever a claim does not apply — which is what keeps [-O1]/[-O2]
    bit-identical to [-O0] on state, metrics, error strings,
    first-failing-lane semantics and trace events. *)

(** Phase names, in execution order ("lower" is the un-optimized
    input). *)
val phases : string list

(** Run the pipeline.  [frame] is the frame the block was lowered with
    (name resolution for the verifier, lane count for the range
    analysis).  When [verify] is set, [Verify.check_ir] runs after every
    phase (including "lower") and raises [Verify.Error] on a broken
    invariant; [dump] receives each phase's annotated IR by name. *)
val run :
  level:int ->
  frame:Frame.t ->
  ?verify:bool ->
  ?dump:(string -> Ir.block -> unit) ->
  Ir.block ->
  Ir.block

val chaos_phase : string option ref
(** Test-only fault injection: when set to a phase name, [run]
    deliberately mis-annotates the IR after that phase (it marks every
    statement [Ir.s_full], the canonical buggy mask-simplification
    pass).  The fuzzer's acceptance test sets this to prove the
    differential oracles catch — and the reducer minimizes — a broken
    optimizer phase.  Must be [None] outside tests. *)
