(** The compiled execution engine of the SIMD VM.

    [compile] lowers an F90simd block into a tree of OCaml closures,
    resolving every variable reference to a dense [Frame] slot at compile
    time (no hashtable lookups on the hot path), keeping plural int/real
    scalars unboxed, and threading the activity mask as a reusable
    [Frame.Mask] bitset with a cached active count, so WHERE nesting and
    step accounting allocate nothing per vector instruction.

    The contract is {e bit identity} with the tree-walker ([Vm.exec]): the
    same final variable state, the same [Metrics] counters, the same error
    messages raised at the same program points.  That includes the
    tree-walker's quirks, which are deliberately replicated here:
    - a plural [IF] is executed as [WHERE] {e after} evaluating its
      condition once for dispatch, so the condition is evaluated twice and
      any reductions inside it are counted twice;
    - inactive lanes of freshly bound plurals are inert [VInt 0];
    - scalar subscripts are converted with [as_int] eagerly, per-lane
      subscripts lazily per active lane;
    - user functions are looked up before intrinsics, reductions before
      both.

    One observable relaxation: the tree-walker leaves [VInt 0] in the
    inactive lanes of every {e computed} temporary, while the unboxed fast
    paths here may compute all lanes.  The difference is laundered away at
    every point where a temporary's inactive lanes can escape (fresh
    binds, external-procedure arguments), where the tree-walker's [VInt 0]
    is reinstated.

    The engine is parameterized over a [host] record of callbacks
    (metrics, fuel, procedure/function lookup, frame<->VM
    synchronization), which keeps this module below [Vm] in the
    dependency order. *)

open Lf_lang
open Lf_lang.Ast
open Values

type host = {
  h_p : int;  (** number of lanes *)
  h_tick_vector :
    loc:Errors.pos -> kind:Lf_obs.Trace.kind -> Frame.Mask.t -> unit;
      (** one vector step (may raise on fuel); [loc] and [kind] are static
          per call site, and the active count is cached in the mask, so
          trace emission costs the host one branch when disabled *)
  h_tick_frontend : unit -> unit;  (** one control-unit step *)
  h_reduction : loc:Errors.pos -> Frame.Mask.t -> unit;
      (** count a global reduction tree *)
  h_call_metric : string -> unit;  (** count an external CALL *)
  h_find_proc : string -> (mask:bool array -> Pval.t list -> unit) option;
  h_find_func : string -> ((value list -> value) * bool) option;
      (** user function and its purity: only [pure] functions may be
          applied lane-parallel (impure ones keep the serial ascending
          per-lane application order) *)
  h_observer : unit -> (mask:bool array -> stmt -> unit) option;
  h_flush : unit -> unit;  (** frame -> VM variable table *)
  h_import : unit -> unit;  (** VM variable table -> frame *)
}

let is_reduction = Ir.is_reduction

(* Runtime optimizer telemetry (section [Opt]).  All four counters tick
   on the control thread only, once per fused construct {e executed}
   (not per lane and not per shard), so they are deterministic across
   jobs; they vary with [-O] by construction.  [opt.short_circuits]
   counts executions of short-circuit-{e eligible} fused any/all plans
   (raise-free boolean regions) rather than lanes actually skipped —
   the latter depends on shard geometry. *)
module Stats = Lf_obs.Stats

let st_region_runs = Stats.counter ~section:Stats.Opt "opt.fused_region_runs"
let st_reduce_runs = Stats.counter ~section:Stats.Opt "opt.fused_reduce_runs"
let st_short_circuits = Stats.counter ~section:Stats.Opt "opt.short_circuits"

let st_accum_merged =
  Stats.counter ~section:Stats.Opt "opt.accum_merged_runs"

(* [-O2] range-analysis telemetry, same control-thread discipline:
   [opt.nocheck_runs] counts executions of a gather/scatter loop whose
   bounds checks the claim discharged, [opt.bounds_checks_discharged]
   the per-lane checks those executions skipped (active lanes times
   discharged dimensions), and [opt.par_scatter_runs] executions of a
   scatter whose lane-disjointness claim was honoured — counted
   whenever the claim's runtime guard passes, whether or not the pool
   actually has more than one shard, so the value is jobs-invariant. *)
module Range = Lf_analysis.Range

let st_nocheck_runs = Stats.counter ~section:Stats.Opt "opt.nocheck_runs"

let st_checks_discharged =
  Stats.counter ~section:Stats.Opt "opt.bounds_checks_discharged"

let st_par_scatter_runs =
  Stats.counter ~section:Stats.Opt "opt.par_scatter_runs"

(* ------------------------------------------------------------------ *)
(* Runtime values                                                      *)
(* ------------------------------------------------------------------ *)

(** A compiled expression's result: front-end scalar / array, or a plural
    value in unboxed ([RI]/[RR]/[RB]) or boxed ([RP]) form. *)
type rv =
  | RS of value
  | RA of arr
  | RI of int array
  | RR of float array
  | RB of bool array
  | RP of value array

let rv_is_plural = function RS _ | RA _ -> false | _ -> true

(** Per-lane boxed view; front-end scalars broadcast (cf. [Pval.lane]). *)
let rv_lane v i =
  match v with
  | RS s -> s
  | RI a -> VInt a.(i)
  | RR a -> VReal a.(i)
  | RB a -> VBool a.(i)
  | RP a -> a.(i)
  | RA _ -> Errors.runtime_error "front-end array used as a plural value"

let rv_front_scalar = function
  | RS v -> v
  | RA _ -> Errors.runtime_error "array value in a scalar context"
  | RI _ | RR _ | RB _ | RP _ ->
      Errors.runtime_error "plural value in a front-end context"

let rv_front_int v = as_int (rv_front_scalar v)

(** Boxed [Pval] view of a procedure argument.  [exact] plurals (variable
    references, ranges) expose their true lane contents; computed plurals
    get the tree-walker's inert [VInt 0] outside the mask. *)
let rv_to_pval ~exact (m : Frame.Mask.t) v =
  match v with
  | RS s -> Pval.FScalar s
  | RA a -> Pval.FArr a
  | _ ->
      let p = Frame.Mask.length m in
      Pval.Plural
        (Array.init p (fun i ->
             if exact || Frame.Mask.get m i then rv_lane v i else VInt 0))

(* Typed lane "getters": [Some get] when the operand can be viewed as a
   uniform int/float/bool vector (broadcasting front-end scalars). *)

let int_get = function
  | RI a -> Some (fun i -> Array.unsafe_get a i)
  | RS (VInt n) -> Some (fun _ -> n)
  | _ -> None

let float_get = function
  | RR a -> Some (fun i -> Array.unsafe_get a i)
  | RI a -> Some (fun i -> float_of_int (Array.unsafe_get a i))
  | RS (VReal x) -> Some (fun _ -> x)
  | RS (VInt n) ->
      let x = float_of_int n in
      Some (fun _ -> x)
  | _ -> None

let bool_get = function
  | RB a -> Some (fun i -> Array.unsafe_get a i)
  | RS (VBool b) -> Some (fun _ -> b)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Generic (boxed) fallbacks — the exact [Pval.lift1]/[lift2] semantics *)
(* ------------------------------------------------------------------ *)

let box_lift1 (m : Frame.Mask.t) f v =
  let p = Frame.Mask.length m in
  Array.init p (fun i ->
      if Frame.Mask.get m i then f (rv_lane v i) else VInt 0)

let box_lift2 (m : Frame.Mask.t) f a b =
  let p = Frame.Mask.length m in
  Array.init p (fun i ->
      if Frame.Mask.get m i then f (rv_lane a i) (rv_lane b i) else VInt 0)

(** Re-specialize a boxed lane vector by its {e active} lanes: when every
    active lane holds the same scalar type, return the unboxed typed
    vector so downstream operators stay on their fast paths.  Inactive
    lanes of computed temporaries are unobservable (every escape point
    launders them to inert [VInt 0]), so dropping their boxed
    representation is invisible. *)
let renorm (m : Frame.Mask.t) (vs : value array) : rv =
  let p = Array.length vs in
  let rec first i =
    if i >= p then p else if Frame.Mask.get m i then i else first (i + 1)
  in
  let f = first 0 in
  if f >= p then RP vs
  else
    match vs.(f) with
    | VInt _ ->
        let r = Array.make p 0 in
        let ok = ref true in
        for i = f to p - 1 do
          if Frame.Mask.get m i then
            match vs.(i) with VInt x -> r.(i) <- x | _ -> ok := false
        done;
        if !ok then RI r else RP vs
    | VReal _ ->
        let r = Array.make p 0.0 in
        let ok = ref true in
        for i = f to p - 1 do
          if Frame.Mask.get m i then
            match vs.(i) with VReal x -> r.(i) <- x | _ -> ok := false
        done;
        if !ok then RR r else RP vs
    | VBool _ ->
        let r = Array.make p false in
        let ok = ref true in
        for i = f to p - 1 do
          if Frame.Mask.get m i then
            match vs.(i) with VBool x -> r.(i) <- x | _ -> ok := false
        done;
        if !ok then RB r else RP vs
    | _ -> RP vs

(* ------------------------------------------------------------------ *)
(* Operator fast paths                                                 *)
(* ------------------------------------------------------------------ *)

(** Typed vector kernel for [op], or [None] to fall back to the boxed
    path.  Division and MOD by zero are only checked on active lanes (the
    tree-walker never computes inactive lanes); every other fast path is
    exception-free, so it may compute all lanes.

    Every lane loop dispatches through [exec.x_run]: one inline call for
    the serial engines, one shard per pool worker for the parallel one.
    Shards write disjoint index ranges of the shared result buffers, so
    the loops need no further coordination; a shard that raises (division
    by zero) surfaces as the lowest-shard — i.e. first-failing-lane —
    error, exactly as the serial scan. *)
let fast_binop ?buffers (exec : Pool.exec) op :
    Frame.Mask.t -> rv -> rv -> rv option =
  (* The shapes are matched directly (rather than through the [*_get]
     closures) so the hot combinations run as monomorphic loops with a
     single indirect call per lane.  [ri]/[rr]/[rb] are result buffers —
     per-site by default, or the site's scratch-pool vectors when the
     caller passes them: a site's previous result is always consumed
     (copied into frame storage, a mask, a Pval, ...) before the site
     can evaluate again, so reusing them is invisible — evaluation
     allocates nothing on these paths beyond the dispatch closure. *)
  let p = exec.Pool.x_p in
  let run = exec.Pool.x_run in
  let ri, rr, rb =
    match buffers with
    | Some b -> b
    | None -> (Array.make p 0, Array.make p 0.0, Array.make p false)
  in
  let arith fi fr _m a b =
    match (a, b) with
    | RI x, RI y ->
        let r = ri in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (fi (Array.unsafe_get x i) (Array.unsafe_get y i))
            done);
        Some (RI r)
    | RI x, RS (VInt n) ->
        let r = ri in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (fi (Array.unsafe_get x i) n)
            done);
        Some (RI r)
    | RS (VInt n), RI y ->
        let r = ri in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (fi n (Array.unsafe_get y i))
            done);
        Some (RI r)
    | RR x, RR y ->
        let r = rr in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (fr (Array.unsafe_get x i) (Array.unsafe_get y i))
            done);
        Some (RR r)
    | RR x, RS (VReal c) ->
        let r = rr in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (fr (Array.unsafe_get x i) c)
            done);
        Some (RR r)
    | RS (VReal c), RR y ->
        let r = rr in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (fr c (Array.unsafe_get y i))
            done);
        Some (RR r)
    | _ -> (
        (* remaining mixed promotions (int lanes with real operands, ...) *)
        match (float_get a, float_get b) with
        | Some ga, Some gb ->
            let r = rr in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (fr (ga i) (gb i))
                done);
            Some (RR r)
        | _ -> None)
  in
  let cmp test _m a b =
    match (a, b) with
    | RI x, RI y ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test
                   (Int.compare (Array.unsafe_get x i) (Array.unsafe_get y i)))
            done);
        Some (RB r)
    | RI x, RS (VInt n) ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test (Int.compare (Array.unsafe_get x i) n))
            done);
        Some (RB r)
    | RS (VInt n), RI y ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test (Int.compare n (Array.unsafe_get y i)))
            done);
        Some (RB r)
    | RR x, RR y ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test
                   (Float.compare (Array.unsafe_get x i)
                      (Array.unsafe_get y i)))
            done);
        Some (RB r)
    | RR x, RS (VReal c) ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test (Float.compare (Array.unsafe_get x i) c))
            done);
        Some (RB r)
    | RS (VReal c), RR y ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test (Float.compare c (Array.unsafe_get y i)))
            done);
        Some (RB r)
    | _ -> (
        match (int_get a, int_get b) with
        | Some ga, Some gb ->
            let r = rb in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (test (Int.compare (ga i) (gb i)))
                done);
            Some (RB r)
        | _ -> (
            match (float_get a, float_get b) with
            | Some ga, Some gb ->
                let r = rb in
                run (fun _ lo hi ->
                    for i = lo to hi - 1 do
                      Array.unsafe_set r i
                        (test (Float.compare (ga i) (gb i)))
                    done);
                Some (RB r)
            | _ -> (
                match (bool_get a, bool_get b) with
                | Some ga, Some gb ->
                    let r = rb in
                    run (fun _ lo hi ->
                        for i = lo to hi - 1 do
                          Array.unsafe_set r i
                            (test (Bool.compare (ga i) (gb i)))
                        done);
                    Some (RB r)
                | _ -> None)))
  in
  let logic f _m a b =
    match (bool_get a, bool_get b) with
    | Some ga, Some gb ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (f (ga i) (gb i))
            done);
        Some (RB r)
    | _ -> None
  in
  let div_like name fi fr m a b =
    match (int_get a, int_get b) with
    | Some ga, Some gb ->
        let r = ri in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              if Frame.Mask.get m i then begin
                let y = gb i in
                if y = 0 then Errors.runtime_error "%s" name;
                r.(i) <- fi (ga i) y
              end
            done);
        Some (RI r)
    | _ -> (
        match (float_get a, float_get b) with
        | Some ga, Some gb ->
            let r = rr in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (fr (ga i) (gb i))
                done);
            Some (RR r)
        | _ -> None)
  in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> div_like "integer division by zero" ( / ) ( /. )
  | Mod -> div_like "MOD by zero" (fun x y -> x mod y) Float.rem
  | Eq -> cmp (fun c -> c = 0)
  | Ne -> cmp (fun c -> c <> 0)
  | Lt -> cmp (fun c -> c < 0)
  | Le -> cmp (fun c -> c <= 0)
  | Gt -> cmp (fun c -> c > 0)
  | Ge -> cmp (fun c -> c >= 0)
  | And -> logic ( && )
  | Or -> logic ( || )
  | Pow -> fun _ _ _ -> None (* int/real result split is per-lane: boxed *)

(* ------------------------------------------------------------------ *)
(* Subscripts                                                          *)
(* ------------------------------------------------------------------ *)

(** [(per-lane index, is-plural)] — the compiled [Vm.lane_indices]:
    front-end subscripts convert eagerly, plural ones per lane at use. *)
let rv_sel v : (int -> int) * bool =
  match v with
  | RS s ->
      let n = as_int s in
      ((fun _ -> n), false)
  | RI a -> ((fun i -> Array.unsafe_get a i), true)
  | RR a -> ((fun i -> as_int (VReal a.(i))), true)
  | RB a -> ((fun i -> as_int (VBool a.(i))), true)
  | RP a -> ((fun i -> as_int a.(i)), true)
  | RA _ -> Errors.runtime_error "array-valued subscript"

(* ------------------------------------------------------------------ *)
(* Mask splitting (WHERE / plural IF)                                  *)
(* ------------------------------------------------------------------ *)

let first_active (m : Frame.Mask.t) =
  let n = Frame.Mask.length m in
  let rec go i = if i >= n || Frame.Mask.get m i then i else go (i + 1) in
  go 0

(** Partition [parent] into [mt] (condition holds) and [mf] (does not),
    writing into the preallocated per-site buffers.  Only active lanes
    evaluate the condition, exactly like the tree-walker's [and_mask].
    The unboxed [RB] split shards over [exec]: each shard fills its own
    byte range of the two masks and reports a partial active count,
    summed on the control thread. *)
let split_mask (exec : Pool.exec) (parent : Frame.Mask.t) cv
    (mt : Frame.Mask.t) (mf : Frame.Mask.t) =
  Frame.Mask.clear mt;
  Frame.Mask.clear mf;
  let p = Frame.Mask.length parent in
  match cv with
  | RS s ->
      if Frame.Mask.active parent > 0 then begin
        let dst = if as_bool s then mt else mf in
        Bytes.blit parent.Frame.Mask.bits 0 dst.Frame.Mask.bits 0 p;
        dst.Frame.Mask.active_n <- parent.Frame.Mask.active_n
      end
  | RA _ ->
      if Frame.Mask.active parent > 0 then
        Errors.runtime_error "front-end array used as a plural value"
  | RB a ->
      let bp = parent.Frame.Mask.bits in
      let bt = mt.Frame.Mask.bits and bf = mf.Frame.Mask.bits in
      let ns = Pool.nshards exec in
      if ns = 1 then begin
        let nt = ref 0 and nf = ref 0 in
        for i = 0 to p - 1 do
          if Bytes.unsafe_get bp i <> '\000' then
            if Array.unsafe_get a i then begin
              Bytes.unsafe_set bt i '\001';
              incr nt
            end
            else begin
              Bytes.unsafe_set bf i '\001';
              incr nf
            end
        done;
        mt.Frame.Mask.active_n <- !nt;
        mf.Frame.Mask.active_n <- !nf
      end
      else begin
        let nts = Array.make ns 0 and nfs = Array.make ns 0 in
        exec.Pool.x_run (fun s lo hi ->
            let nt = ref 0 and nf = ref 0 in
            for i = lo to hi - 1 do
              if Bytes.unsafe_get bp i <> '\000' then
                if Array.unsafe_get a i then begin
                  Bytes.unsafe_set bt i '\001';
                  incr nt
                end
                else begin
                  Bytes.unsafe_set bf i '\001';
                  incr nf
                end
            done;
            nts.(s) <- !nt;
            nfs.(s) <- !nf);
        mt.Frame.Mask.active_n <- Array.fold_left ( + ) 0 nts;
        mf.Frame.Mask.active_n <- Array.fold_left ( + ) 0 nfs
      end
  | RP vs ->
      for i = 0 to p - 1 do
        if Frame.Mask.get parent i then
          if as_bool vs.(i) then Frame.Mask.set mt i true
          else Frame.Mask.set mf i true
      done
  | (RI _ | RR _) when Frame.Mask.active parent > 0 ->
      (* as_bool on the first active lane raises the tree-walker's error *)
      ignore (as_bool (rv_lane cv (first_active parent)))
  | RI _ | RR _ -> ()

(* ------------------------------------------------------------------ *)
(* Variable writes                                                     *)
(* ------------------------------------------------------------------ *)

(** Masked store into an existing plural slot.  Type-matched writes go
    straight into the unboxed storage, sharded over [exec] (disjoint
    lane ranges of the destination vector); a type-changing write
    renormalizes through the boxed view on the control thread (producing
    exactly the mixed array the tree-walker would hold, modulo
    re-specialization). *)
let write_plural (exec : Pool.exec) frame si lanes (m : Frame.Mask.t) rhs =
  let p = Frame.Mask.length m in
  let run = exec.Pool.x_run in
  let renorm () =
    let vs = Frame.values_of_lanes lanes in
    for i = 0 to p - 1 do
      if Frame.Mask.get m i then vs.(i) <- rv_lane rhs i
    done;
    Frame.set frame si (Frame.Plural (Frame.lanes_of_values vs))
  in
  match (lanes, rhs) with
  | Frame.LInt d, RI s ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- Array.unsafe_get s i
          done)
  | Frame.LInt d, RS (VInt x) ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- x
          done)
  | Frame.LReal d, RR s ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- Array.unsafe_get s i
          done)
  | Frame.LReal d, RS (VReal x) ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- x
          done)
  | Frame.LBool d, RB s ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- Array.unsafe_get s i
          done)
  | Frame.LBool d, RS (VBool x) ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- x
          done)
  | _ -> renorm ()

(** First assignment to an unbound name: the tree-walker binds a scalar,
    a global, or a fresh plural whose inactive lanes are [VInt 0]. *)
let bind_fresh frame si p (m : Frame.Mask.t) rhs =
  match rhs with
  | RS v -> Frame.set frame si (Frame.Scalar (ref v))
  | RA a -> Frame.set frame si (Frame.Global a)
  | _ ->
      let full = Frame.Mask.active m = p in
      let lanes =
        match rhs with
        | RI a when full -> Frame.LInt (Array.copy a)
        | RR a when full -> Frame.LReal (Array.copy a)
        | RB a when full -> Frame.LBool (Array.copy a)
        | RI a ->
            let d = Array.make p 0 in
            for i = 0 to p - 1 do
              if Frame.Mask.get m i then d.(i) <- a.(i)
            done;
            Frame.LInt d
        | _ ->
            let fresh = Array.make p (VInt 0) in
            for i = 0 to p - 1 do
              if Frame.Mask.get m i then fresh.(i) <- rv_lane rhs i
            done;
            Frame.lanes_of_values fresh
      in
      Frame.set frame si (Frame.Plural lanes)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type env = {
  host : host;
  frame : Frame.t;
  p : int;
  exec : Pool.exec;  (** lane-loop dispatcher: serial or pool-sharded *)
  mutable cur_loc : Errors.pos;
      (** location of the [SLoc] wrapper being compiled; every tick site
          captures it at compile time, so the run-time closures carry
          their source attribution for free *)
  mutable cur_full : bool;
      (** [Ir.s_full] of the statement being compiled: its context mask
          is provably the full entry mask, so fused loops under it may
          skip the per-lane mask test *)
  opt : int;  (** optimizer level; gates the [-O1]-only emitter paths *)
  mutable entry_ok : bool;
      (** set by the [-O2] entry prologue, once per application of the
          compiled body: the frame's [iproc] binding is the canonical
          lane vector [1..P] this run.  Every interval or disjointness
          claim may descend from the analysis' [iproc] seed, so no
          claim-gated fast path fires while this is [false] *)
}
type cexpr = Frame.Mask.t -> rv
type cstmt = Frame.Mask.t -> unit

let observe env (m : Frame.Mask.t) s =
  match env.host.h_observer () with
  | None -> ()
  | Some f ->
      (* observers read VM state (occupancy traces): expose it first *)
      env.host.h_flush ();
      f ~mask:(Frame.Mask.to_bool_array m) s

(** Result buffers for a buffer-owning site: at [-O1] the scratch-pool
    vectors of the site's [Opt.plan_scratch] group ([Ir.x_scr]); fresh
    per-site arrays at [-O0] or for a site the planner did not reach. *)
let site_buffers env (scr : int) : int array * float array * bool array =
  if env.opt >= 1 && scr >= 0 then
    ( Frame.scr_int env.frame scr,
      Frame.scr_real env.frame scr,
      Frame.scr_bool env.frame scr )
  else (Array.make env.p 0, Array.make env.p 0.0, Array.make env.p false)

(* ------------------------------------------------------------------ *)
(* -O2 claim discharge                                                 *)
(* ------------------------------------------------------------------ *)

(** Resolve one symbolic claim bound against the live frame.
    [Sym (v, c)] means "value of front-end scalar [v] at the claim
    site, plus [c]" — and the guard runs exactly at the claim site, so
    reading the current binding is the right evaluation. *)
let resolve_bound env (b : Range.bound) : int option =
  match b with
  | Range.Fin n -> Some n
  | Range.Sym (v, c) -> (
      match Frame.slot_index env.frame v with
      | None -> None
      | Some si -> (
          match Frame.get env.frame si with
          | Frame.Scalar { contents = VInt n } -> Some (Range.sat_add n c)
          | _ -> None))
  | Range.NegInf | Range.PosInf -> None

(** Per-execution discharge test for one subscript dimension: the
    optimizer's interval claim, resolved now, must sit inside [1..dn],
    and the entry prologue must have validated [iproc] this run.  The
    claim is advisory — an unresolvable bound just keeps the checked
    loop, never changes behaviour. *)
let discharges env (claim : Range.iv option) (dn : int) : bool =
  env.entry_ok
  &&
  match claim with
  | None -> false
  | Some iv ->
      (match resolve_bound env iv.Range.lo with
      | Some l -> l >= 1
      | None -> false)
      && (match resolve_bound env iv.Range.hi with
         | Some h -> h <= dn
         | None -> false)

let nocheck_stats m ndims =
  if Stats.enabled () then begin
    Stats.incr st_nocheck_runs;
    Stats.add st_checks_discharged (ndims * Frame.Mask.active m)
  end

(* ------------------------------------------------------------------ *)
(* Fused regions (-O1)                                                 *)
(* ------------------------------------------------------------------ *)

(** Typed per-lane closure over a fused region's postorder program: the
    whole elementwise chain collapses into one [int -> _] evaluated once
    per lane, with no intermediate plural temporaries. *)
type fcell =
  | FI of (int -> int)
  | FR of (int -> float)
  | FB of (int -> bool)

(** A fused op that can raise, by error identity.  A plan admits at most
    one distinct class: every instance of the same class raises the same
    message for the same lane inputs, so the fused per-lane order hits
    the same first-failing-lane (serial and lowest-shard alike) as the
    unfused per-operator passes.  Two distinct classes could surface the
    {e other} error first, so such regions fall back. *)
type rclass =
  | CDiv  (** integer division by zero *)
  | CMod  (** MOD by zero *)
  | CGather of int  (** bounds check of the gather op at this index *)

exception Not_fusible

(** Specialize a region against the current frame bindings.  Returns the
    validation pins and — when the region is fusible under those
    bindings — the root's per-lane closure plus whether the loop must
    run masked (a raising class is present).

    Pins are closures re-checked before every execution: a plural leaf
    pins its binding's physical identity (in-place stores keep it;
    renormalizing or rebinding writes replace it), a scalar leaf
    additionally re-checks the value's type and refreshes the cached
    cell, an intrinsic pins that no user function shadows the name.
    When a pin fails the plan is rebuilt; an unfusible result is cached
    the same way, pinned by the bindings that made it unfusible, so the
    fallback closures run without re-planning until something changes.

    The typing mirrors the unfused operator dispatch exactly: a
    combination is only admitted when the [-O0] engine would take a
    total (exception-free) fast path for it, every type mismatch the
    [-O0] boxed paths would fault on falls back, and a raising op whose
    operands are all front-end scalars falls back (the [-O0] scalar
    path raises unconditionally, even under an empty mask, which a
    masked fused loop would not replicate). *)
let region_plan env (rg : Ir.region) :
    (unit -> bool) array * (fcell * bool) option =
  let frame = env.frame in
  let host = env.host in
  let ops = rg.Ir.rg_ops in
  let nops = Array.length ops in
  let cells = Array.make nops (FI (fun _ -> 0)) in
  let plural = Array.make nops false in
  let checks = ref [] in
  let note c = checks := c :: !checks in
  let classes = ref [] in
  let add_class c =
    if not (List.mem c !classes) then classes := c :: !classes
  in
  let pin_bad slot b0 =
    note (fun () -> Frame.get frame slot == b0);
    raise Not_fusible
  in
  let as_f = function
    | FI f -> Some (fun i -> float_of_int (f i))
    | FR f -> Some f
    | FB _ -> None
  in
  let var_leaf slot =
    match Frame.get frame slot with
    | Frame.Scalar r as b0 -> (
        match !r with
        | VInt x ->
            let c = ref x in
            note (fun () ->
                Frame.get frame slot == b0
                && match !r with
                   | VInt x ->
                       c := x;
                       true
                   | _ -> false);
            (FI (fun _ -> !c), false)
        | VReal x ->
            let c = ref x in
            note (fun () ->
                Frame.get frame slot == b0
                && match !r with
                   | VReal x ->
                       c := x;
                       true
                   | _ -> false);
            (FR (fun _ -> !c), false)
        | VBool x ->
            let c = ref x in
            note (fun () ->
                Frame.get frame slot == b0
                && match !r with
                   | VBool x ->
                       c := x;
                       true
                   | _ -> false);
            (FB (fun _ -> !c), false)
        | VArr _ ->
            note (fun () ->
                Frame.get frame slot == b0
                && match !r with VArr _ -> true | _ -> false);
            raise Not_fusible)
    | Frame.Plural (Frame.LInt a) as b0 ->
        note (fun () -> Frame.get frame slot == b0);
        (FI (fun i -> Array.unsafe_get a i), true)
    | Frame.Plural (Frame.LReal a) as b0 ->
        note (fun () -> Frame.get frame slot == b0);
        (FR (fun i -> Array.unsafe_get a i), true)
    | Frame.Plural (Frame.LBool a) as b0 ->
        note (fun () -> Frame.get frame slot == b0);
        (FB (fun i -> Array.unsafe_get a i), true)
    | (Frame.Plural (Frame.LBox _) | Frame.Global _ | Frame.PluralArr _
      | Frame.Unbound) as b0 ->
        pin_bad slot b0
  in
  let bin_cell op a b =
    let ca = cells.(a) and cb = cells.(b) in
    let pl = plural.(a) || plural.(b) in
    let arith fi fr =
      match (ca, cb) with
      | FI fa, FI fb -> FI (fun i -> fi (fa i) (fb i))
      | _ -> (
          match (as_f ca, as_f cb) with
          | Some fa, Some fb -> FR (fun i -> fr (fa i) (fb i))
          | _ -> raise Not_fusible)
    in
    let cmp test =
      match (ca, cb) with
      | FI fa, FI fb -> FB (fun i -> test (Int.compare (fa i) (fb i)))
      | FB fa, FB fb -> FB (fun i -> test (Bool.compare (fa i) (fb i)))
      | _ -> (
          match (as_f ca, as_f cb) with
          | Some fa, Some fb -> FB (fun i -> test (Float.compare (fa i) (fb i)))
          | _ -> raise Not_fusible)
    in
    let logic f =
      match (ca, cb) with
      | FB fa, FB fb -> FB (fun i -> f (fa i) (fb i))
      | _ -> raise Not_fusible
    in
    let div_like cls cname fi fr =
      match (ca, cb) with
      | FI fa, FI fb ->
          if not pl then raise Not_fusible;
          add_class cls;
          FI
            (fun i ->
              let y = fb i in
              if y = 0 then Errors.runtime_error "%s" cname;
              fi (fa i) y)
      | _ -> (
          match (as_f ca, as_f cb) with
          | Some fa, Some fb -> FR (fun i -> fr (fa i) (fb i))
          | _ -> raise Not_fusible)
    in
    let cell =
      match op with
      | Add -> arith ( + ) ( +. )
      | Sub -> arith ( - ) ( -. )
      | Mul -> arith ( * ) ( *. )
      | Div -> div_like CDiv "integer division by zero" ( / ) ( /. )
      | Mod -> div_like CMod "MOD by zero" (fun x y -> x mod y) Float.rem
      | Eq -> cmp (fun c -> c = 0)
      | Ne -> cmp (fun c -> c <> 0)
      | Lt -> cmp (fun c -> c < 0)
      | Le -> cmp (fun c -> c <= 0)
      | Gt -> cmp (fun c -> c > 0)
      | Ge -> cmp (fun c -> c >= 0)
      | And -> logic ( && )
      | Or -> logic ( || )
      | Pow -> raise Not_fusible
    in
    (cell, pl)
  in
  let un_cell op a =
    let c = cells.(a) in
    let cell =
      match (op, c) with
      | Neg, FI f -> FI (fun i -> -f i)
      | Neg, FR f -> FR (fun i -> -.f i)
      | Not, FB f -> FB (fun i -> not (f i))
      | _ -> raise Not_fusible
    in
    (cell, plural.(a))
  in
  let intr_cell key a =
    (match host.h_find_func key with
    | Some _ ->
        note (fun () ->
            match host.h_find_func key with Some _ -> true | None -> false);
        raise Not_fusible
    | None ->
        note (fun () ->
            match host.h_find_func key with None -> true | Some _ -> false));
    let c = cells.(a) in
    let cell =
      match (key, c) with
      | "abs", FI f -> FI (fun i -> abs (f i))
      | "abs", FR f -> FR (fun i -> Float.abs (f i))
      | _, FB _ -> raise Not_fusible
      | "sqrt", _ -> (
          match as_f c with
          | Some f -> FR (fun i -> Float.sqrt (f i))
          | None -> raise Not_fusible)
      | "exp", _ -> (
          match as_f c with
          | Some f -> FR (fun i -> Float.exp (f i))
          | None -> raise Not_fusible)
      | "real", _ -> (
          match as_f c with Some f -> FR f | None -> raise Not_fusible)
      | "int", _ -> (
          (* [-O0] round-trips through float even for INTEGER operands *)
          match as_f c with
          | Some f -> FI (fun i -> int_of_float (Float.trunc (f i)))
          | None -> raise Not_fusible)
      | "nint", _ -> (
          match as_f c with
          | Some f -> FI (fun i -> int_of_float (Float.round (f i)))
          | None -> raise Not_fusible)
      | _ -> raise Not_fusible
    in
    (cell, plural.(a))
  in
  let gather_cell k slot ixs =
    let nix = Array.length ixs in
    let fis =
      Array.map
        (fun j ->
          match cells.(j) with FI f -> f | _ -> raise Not_fusible)
        ixs
    in
    let pl = Array.exists (fun j -> plural.(j)) ixs in
    match Frame.get frame slot with
    | Frame.Global (AInt d) as b0 when Nd.rank d = 1 && nix = 1 ->
        note (fun () -> Frame.get frame slot == b0);
        if not pl then raise Not_fusible;
        add_class (CGather k);
        let f1 = fis.(0) in
        let d1 = Nd.size d in
        ( FI
            (fun i ->
              let j = f1 i in
              if j < 1 || j > d1 then
                Errors.runtime_error
                  "index %d out of bounds 1..%d in dimension %d" j d1 1;
              Nd.get_flat d (j - 1)),
          true )
    | Frame.Global (AReal d) as b0 when Nd.rank d = 1 && nix = 1 ->
        note (fun () -> Frame.get frame slot == b0);
        if not pl then raise Not_fusible;
        add_class (CGather k);
        let f1 = fis.(0) in
        let d1 = Nd.size d in
        ( FR
            (fun i ->
              let j = f1 i in
              if j < 1 || j > d1 then
                Errors.runtime_error
                  "index %d out of bounds 1..%d in dimension %d" j d1 1;
              Nd.get_flat d (j - 1)),
          true )
    | Frame.Global (AInt d) as b0 when Nd.rank d = 2 && nix = 2 ->
        note (fun () -> Frame.get frame slot == b0);
        if not pl then raise Not_fusible;
        add_class (CGather k);
        let f1 = fis.(0) and f2 = fis.(1) in
        let dims = Nd.dims d in
        let d1 = dims.(0) and d2 = dims.(1) in
        ( FI
            (fun i ->
              let j1 = f1 i in
              if j1 < 1 || j1 > d1 then
                Errors.runtime_error
                  "index %d out of bounds 1..%d in dimension %d" j1 d1 1;
              let j2 = f2 i in
              if j2 < 1 || j2 > d2 then
                Errors.runtime_error
                  "index %d out of bounds 1..%d in dimension %d" j2 d2 2;
              Nd.get_flat d (j1 - 1 + ((j2 - 1) * d1))),
          true )
    | Frame.Global (AReal d) as b0 when Nd.rank d = 2 && nix = 2 ->
        note (fun () -> Frame.get frame slot == b0);
        if not pl then raise Not_fusible;
        add_class (CGather k);
        let f1 = fis.(0) and f2 = fis.(1) in
        let dims = Nd.dims d in
        let d1 = dims.(0) and d2 = dims.(1) in
        ( FR
            (fun i ->
              let j1 = f1 i in
              if j1 < 1 || j1 > d1 then
                Errors.runtime_error
                  "index %d out of bounds 1..%d in dimension %d" j1 d1 1;
              let j2 = f2 i in
              if j2 < 1 || j2 > d2 then
                Errors.runtime_error
                  "index %d out of bounds 1..%d in dimension %d" j2 d2 2;
              Nd.get_flat d (j1 - 1 + ((j2 - 1) * d1))),
          true )
    | b0 -> pin_bad slot b0
  in
  let go () =
    for k = 0 to nops - 1 do
      let cell, pl =
        match ops.(k) with
        | Ir.OConst (VInt n) -> (FI (fun _ -> n), false)
        | Ir.OConst (VReal x) -> (FR (fun _ -> x), false)
        | Ir.OConst (VBool b) -> (FB (fun _ -> b), false)
        | Ir.OConst (VArr _) -> raise Not_fusible
        | Ir.OVar (slot, _) -> var_leaf slot
        | Ir.OUn (op, a) -> un_cell op a
        | Ir.OBin (op, a, b) -> bin_cell op a b
        | Ir.OIntr (key, a) -> intr_cell key a
        | Ir.OGather (slot, _, ixs) -> gather_cell k slot ixs
      in
      cells.(k) <- cell;
      plural.(k) <- pl
    done;
    if List.length !classes > 1 then raise Not_fusible;
    (* a front-end-scalar root means the [-O0] result is an [RS] (one
       [h_tick_frontend] instead of a vector tick downstream) *)
    if not plural.(nops - 1) then raise Not_fusible;
    (cells.(nops - 1), !classes <> [])
  in
  let res = try Some (go ()) with Not_fusible -> None in
  (Array.of_list !checks, res)

let rec compile_expr env (e : Ir.expr) : cexpr =
  match e.Ir.x_fused with
  | Some (Ir.FRegion rg) -> compile_region env e rg
  | Some (Ir.FReduce (key, rg)) -> compile_fused_reduction env e key rg
  | None -> compile_expr_node env e

(** A fused elementwise region: one lane loop over the whole subtree.
    The plan (typed closure tree + validation pins) is cached per site
    and rebuilt when a pin fails; bindings the plan cannot fuse run the
    unoptimized per-operator closures instead, cached the same way.
    Raise-free plans run unmasked over all lanes exactly like the
    unfused arithmetic fast paths (inactive-lane garbage is laundered at
    every escape point); a raising class runs masked — unless the
    statement's context mask is provably full ([Ir.s_full]). *)
and compile_region env (e : Ir.expr) (rg : Ir.region) : cexpr =
  let fallback = compile_expr_node env e in
  let full = env.cur_full in
  let run = env.exec.Pool.x_run in
  let ri, rr, rb = site_buffers env e.Ir.x_scr in
  let make_runner (root, raising) : Frame.Mask.t -> rv =
    if (not raising) || full then
      match root with
      | FI f ->
          fun _ ->
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set ri i (f i)
                done);
            RI ri
      | FR f ->
          fun _ ->
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set rr i (f i)
                done);
            RR rr
      | FB f ->
          fun _ ->
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set rb i (f i)
                done);
            RB rb
    else
      match root with
      | FI f ->
          fun m ->
            let bp = m.Frame.Mask.bits in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Bytes.unsafe_get bp i <> '\000' then
                    Array.unsafe_set ri i (f i)
                done);
            RI ri
      | FR f ->
          fun m ->
            let bp = m.Frame.Mask.bits in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Bytes.unsafe_get bp i <> '\000' then
                    Array.unsafe_set rr i (f i)
                done);
            RR rr
      | FB f ->
          fun m ->
            let bp = m.Frame.Mask.bits in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Bytes.unsafe_get bp i <> '\000' then
                    Array.unsafe_set rb i (f i)
                done);
            RB rb
  in
  let checks = ref [||] in
  let runner = ref None in
  let fresh = ref true in
  fun m ->
    if !fresh || not (Array.for_all (fun c -> c ()) !checks) then begin
      let cks, plan = region_plan env rg in
      checks := cks;
      runner := Option.map make_runner plan;
      fresh := false
    end;
    (match !runner with
    | Some r ->
        Stats.incr st_region_runs;
        r m
    | None -> fallback m)

(** A reduction over a fused region folds the per-lane closure straight
    into the canonical 64-lane-chunk merge tree — the argument vector is
    never materialized.  Chunk grid, first-active initialization and
    ascending merge are ported verbatim from the unfused folds, so the
    result (including non-associative float SUM) stays bitwise identical
    at any shard count. *)
and compile_fused_reduction env (e : Ir.expr) key rg : cexpr =
  let name, arg =
    match e.Ir.x_node with
    | Ir.XCall (n, [ a ]) -> (n, a)
    | _ -> assert false
  in
  let carg = compile_expr env arg in
  let host = env.host in
  let loc = env.cur_loc in
  let exec = env.exec in
  let p = env.p in
  let run = exec.Pool.x_run in
  let ns = Pool.nshards exec in
  let nc = Pool.nchunks p in
  let parts_i = Array.make (max 1 nc) 0 in
  let parts_f = Array.make (max 1 nc) 0.0 in
  let filled = Bytes.make (max 1 nc) '\000' in
  let sh_i = Array.make ns 0 in
  let sh_b = Array.make ns false in
  let float_fold f (ga : int -> float) (m : Frame.Mask.t) =
    Bytes.fill filled 0 (max 1 nc) '\000';
    run (fun _ lo hi ->
        for c = lo / Pool.chunk to ((hi + Pool.chunk - 1) / Pool.chunk) - 1 do
          let l = c * Pool.chunk and h = min hi ((c + 1) * Pool.chunk) in
          let acc = ref 0.0 and seen = ref false in
          for i = l to h - 1 do
            if Frame.Mask.get m i then
              if !seen then acc := f !acc (ga i)
              else begin
                acc := ga i;
                seen := true
              end
          done;
          if !seen then begin
            parts_f.(c) <- !acc;
            Bytes.unsafe_set filled c '\001'
          end
        done);
    let acc = ref 0.0 and seen = ref false in
    for c = 0 to nc - 1 do
      if Bytes.unsafe_get filled c <> '\000' then
        if !seen then acc := f !acc parts_f.(c)
        else begin
          acc := parts_f.(c);
          seen := true
        end
    done;
    (* regions are never bare variable reads, so the empty-mask witness
       is the tree-walker's inert [VInt 0] (lane 0 is inactive there) *)
    if !seen then VReal !acc else Pval.reduction_identity key (VInt 0)
  in
  let int_fold f (ga : int -> int) (m : Frame.Mask.t) =
    Bytes.fill filled 0 (max 1 nc) '\000';
    run (fun _ lo hi ->
        for c = lo / Pool.chunk to ((hi + Pool.chunk - 1) / Pool.chunk) - 1 do
          let l = c * Pool.chunk and h = min hi ((c + 1) * Pool.chunk) in
          let acc = ref 0 and seen = ref false in
          for i = l to h - 1 do
            if Frame.Mask.get m i then
              if !seen then acc := f !acc (ga i)
              else begin
                acc := ga i;
                seen := true
              end
          done;
          if !seen then begin
            parts_i.(c) <- !acc;
            Bytes.unsafe_set filled c '\001'
          end
        done);
    let acc = ref 0 and seen = ref false in
    for c = 0 to nc - 1 do
      if Bytes.unsafe_get filled c <> '\000' then
        if !seen then acc := f !acc parts_i.(c)
        else begin
          acc := parts_i.(c);
          seen := true
        end
    done;
    if !seen then VInt !acc else Pval.reduction_identity key (VInt 0)
  in
  let make_runner ((root : fcell), raising) :
      (Frame.Mask.t -> value) option =
    match (key, root) with
    | "sum", FI f -> Some (int_fold ( + ) f)
    | "sum", FR f -> Some (float_fold ( +. ) f)
    | "maxval", FI f -> Some (int_fold (fun a x -> if a > x then a else x) f)
    | "maxval", FR f ->
        Some (float_fold (fun a x -> if Float.compare a x > 0 then a else x) f)
    | "minval", FI f -> Some (int_fold (fun a x -> if a < x then a else x) f)
    | "minval", FR f ->
        Some (float_fold (fun a x -> if Float.compare a x < 0 then a else x) f)
    | "count", FB f ->
        Some
          (fun m ->
            run (fun s lo hi ->
                let n = ref 0 in
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i && f i then incr n
                done;
                sh_i.(s) <- !n);
            VInt (Array.fold_left ( + ) 0 sh_i))
    | "any", FB f ->
        Some
          (fun m ->
            run (fun s lo hi ->
                let r = ref false in
                if raising then
                  for i = lo to hi - 1 do
                    (* no short-circuit: a raising lane must still raise *)
                    if Frame.Mask.get m i then
                      let x = f i in
                      r := !r || x
                  done
                else begin
                  (* raise-free region: the OR-fold order is
                     unobservable, so stop at the first true lane *)
                  let i = ref lo in
                  while (not !r) && !i < hi do
                    if Frame.Mask.get m !i then r := f !i;
                    incr i
                  done
                end;
                sh_b.(s) <- !r);
            VBool (Array.exists Fun.id sh_b))
    | "all", FB f ->
        Some
          (fun m ->
            run (fun s lo hi ->
                let r = ref true in
                if raising then
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then
                      let x = f i in
                      r := !r && x
                  done
                else begin
                  let i = ref lo in
                  while !r && !i < hi do
                    if Frame.Mask.get m !i then r := f !i;
                    incr i
                  done
                end;
                sh_b.(s) <- !r);
            VBool (Array.for_all Fun.id sh_b))
    | _ -> None
  in
  let fb m =
    let v = carg m in
    match v with
    | RA a -> (
        match Intrinsics.apply key [ VArr a ] with
        | Some r -> RS r
        | None -> Errors.runtime_error "bad reduction %s" name)
    | RS s -> RS (reduce_scalar m name key s)
    | v -> RS (reduce_plural exec ~is_var:false m name key v)
  in
  let checks = ref [||] in
  let runner = ref None in
  let sc_eligible = ref false in
  let fresh = ref true in
  fun m ->
    host.h_reduction ~loc m;
    if !fresh || not (Array.for_all (fun c -> c ()) !checks) then begin
      let cks, plan = region_plan env rg in
      checks := cks;
      runner := Option.bind plan make_runner;
      sc_eligible :=
        Option.is_some !runner
        && (match plan with
           | Some (_, raising) -> (not raising) && (key = "any" || key = "all")
           | None -> false);
      fresh := false
    end;
    (match !runner with
    | Some r ->
        Stats.incr st_reduce_runs;
        if !sc_eligible then Stats.incr st_short_circuits;
        RS (r m)
    | None -> fb m)

and compile_expr_node env (e : Ir.expr) : cexpr =
  match e.Ir.x_node with
  | Ir.XConst v ->
      let v = RS v in
      fun _ -> v
  | Ir.XRange (lo, hi) ->
      let clo = compile_expr env lo and chi = compile_expr env hi in
      let p = env.p in
      fun m ->
        let lo = rv_front_int (clo m) in
        let hi = rv_front_int (chi m) in
        let n = max 0 (hi - lo + 1) in
        if n = p then RI (Array.init n (fun i -> lo + i))
        else RA (AInt (Nd.of_array (Array.init n (fun i -> lo + i))))
  | Ir.XVar (slot, v) -> (
      let frame = env.frame in
      match slot with
      | None -> fun _ -> Errors.runtime_error "undefined variable %s" v
      | Some si -> (
          fun _ ->
            match Frame.get frame si with
            | Frame.Unbound -> Errors.runtime_error "undefined variable %s" v
            | Frame.Scalar r -> RS !r
            | Frame.Plural (Frame.LInt a) -> RI a
            | Frame.Plural (Frame.LReal a) -> RR a
            | Frame.Plural (Frame.LBool a) -> RB a
            | Frame.Plural (Frame.LBox a) -> RP (Array.copy a)
            | Frame.Global a | Frame.PluralArr a -> RA a))
  | Ir.XUn (op, a) -> compile_unop env e.Ir.x_scr op (compile_expr env a)
  | Ir.XBin (op, a, b) ->
      compile_binop env e.Ir.x_scr op (compile_expr env a)
        (compile_expr env b)
  | Ir.XCall (name, args) -> compile_call env e.Ir.x_scr name args
  | Ir.XIdx (si, name, args) -> compile_index env e.Ir.x_scr si name args

and compile_unop env scr op ca : cexpr =
  let gen = Scalar_ops.apply_unop op in
  let run = env.exec.Pool.x_run in
  let ri, rr, rb = site_buffers env scr in
  match op with
  | Neg -> (
      fun m ->
        match ca m with
        | RS x -> RS (gen x)
        | RI a ->
            let r = ri in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (-Array.unsafe_get a i)
                done);
            RI r
        | RR a ->
            let r = rr in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (-.Array.unsafe_get a i)
                done);
            RR r
        | RA _ ->
            Errors.runtime_error "array operand in a lane-wise operation"
        | v -> renorm m (box_lift1 m gen v))
  | Not -> (
      fun m ->
        match ca m with
        | RS x -> RS (gen x)
        | RB a ->
            let r = rb in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (not (Array.unsafe_get a i))
                done);
            RB r
        | RA _ ->
            Errors.runtime_error "array operand in a lane-wise operation"
        | v -> renorm m (box_lift1 m gen v))

and compile_binop env scr op ca cb : cexpr =
  let app = Scalar_ops.apply_binop op in
  let fast = fast_binop ~buffers:(site_buffers env scr) env.exec op in
  fun m ->
    let a = ca m in
    let b = cb m in
    match (a, b) with
    | RS x, RS y -> RS (app x y)
    | RA _, _ | _, RA _ ->
        Errors.runtime_error "array operand in a lane-wise operation"
    | _ -> (
        match fast m a b with
        | Some r -> r
        | None -> renorm m (box_lift2 m app a b))

and compile_call env scr name args : cexpr =
  let key = String.lowercase_ascii name in
  if is_reduction key then compile_reduction env name key args
  else
    let cargs = List.map (compile_expr env) args in
    let p = env.p in
    let host = env.host in
    let run = env.exec.Pool.x_run in
    (* [-O1], serial engine: results of a plural call are almost always
       one scalar type across the active lanes — store them straight
       into per-site unboxed buffers, skipping the boxed staging vector
       and the [renorm] re-specialization pass.  The first active lane's
       result picks the buffer; a mismatching lane falls back mid-loop
       by re-boxing the already-stored prefix (value boxes carry no
       identity, so the rebuilt vector is indistinguishable from the
       staged one) and finishing on the legacy path — still exactly one
       call per active lane, still ascending. *)
    let typed = env.opt >= 1 && Pool.nshards env.exec = 1 in
    let tri, trr, trb =
      if typed then site_buffers env scr else ([||], [||], [||])
    in
    let call_typed (call : int -> value) (m : Frame.Mask.t) : rv =
      let bp = m.Frame.Mask.bits in
      let bail rebox i0 v0 =
        let vs = Array.make p (VInt 0) in
        for k = 0 to i0 - 1 do
          if Bytes.unsafe_get bp k <> '\000' then vs.(k) <- rebox k
        done;
        vs.(i0) <- v0;
        for i = i0 + 1 to p - 1 do
          if Bytes.unsafe_get bp i <> '\000' then
            Array.unsafe_set vs i (call i)
        done;
        renorm m vs
      in
      let rec go_i i =
        if i >= p then RI tri
        else if Bytes.unsafe_get bp i = '\000' then go_i (i + 1)
        else
          match call i with
          | VInt x ->
              Array.unsafe_set tri i x;
              go_i (i + 1)
          | v -> bail (fun k -> VInt tri.(k)) i v
      in
      let rec go_r i =
        if i >= p then RR trr
        else if Bytes.unsafe_get bp i = '\000' then go_r (i + 1)
        else
          match call i with
          | VReal x ->
              Array.unsafe_set trr i x;
              go_r (i + 1)
          | v -> bail (fun k -> VReal trr.(k)) i v
      in
      let rec go_b i =
        if i >= p then RB trb
        else if Bytes.unsafe_get bp i = '\000' then go_b (i + 1)
        else
          match call i with
          | VBool x ->
              Array.unsafe_set trb i x;
              go_b (i + 1)
          | v -> bail (fun k -> VBool trb.(k)) i v
      in
      let rec start i =
        if i >= p then RP (Array.make p (VInt 0))
        else if Bytes.unsafe_get bp i = '\000' then start (i + 1)
        else
          match call i with
          | VInt x ->
              Array.unsafe_set tri i x;
              go_i (i + 1)
          | VReal x ->
              Array.unsafe_set trr i x;
              go_r (i + 1)
          | VBool x ->
              Array.unsafe_set trb i x;
              go_b (i + 1)
          | v -> bail (fun _ -> assert false) i v
      in
      start 0
    in
    fun m ->
      match host.h_find_func key with
      | Some (f, pure) ->
          let vargs = List.map (fun c -> c m) cargs in
          if List.exists rv_is_plural vargs then begin
            (* exactly one call per active lane (callees may count
               invocations); inactive lanes keep the static [VInt 0].
               Only [pure] functions may run lane-parallel — an impure
               callee observes the serial ascending application order. *)
            if typed then
              let call =
                match vargs with
                | [ a; b ] -> fun i -> f [ rv_lane a i; rv_lane b i ]
                | _ -> fun i -> f (List.map (fun v -> rv_lane v i) vargs)
              in
              call_typed call m
            else begin
              let bp = m.Frame.Mask.bits in
              let vs = Array.make p (VInt 0) in
              (match vargs with
              | [ a; b ] when pure ->
                  run (fun _ lo hi ->
                      for i = lo to hi - 1 do
                        if Bytes.unsafe_get bp i <> '\000' then
                          Array.unsafe_set vs i (f [ rv_lane a i; rv_lane b i ])
                      done)
              | [ a; b ] ->
                  for i = 0 to p - 1 do
                    if Bytes.unsafe_get bp i <> '\000' then
                      Array.unsafe_set vs i (f [ rv_lane a i; rv_lane b i ])
                  done
              | _ when pure ->
                  run (fun _ lo hi ->
                      for i = lo to hi - 1 do
                        if Bytes.unsafe_get bp i <> '\000' then
                          Array.unsafe_set vs i
                            (f (List.map (fun v -> rv_lane v i) vargs))
                      done)
              | _ ->
                  for i = 0 to p - 1 do
                    if Bytes.unsafe_get bp i <> '\000' then
                      Array.unsafe_set vs i
                        (f (List.map (fun v -> rv_lane v i) vargs))
                  done);
              renorm m vs
            end
          end
          else RS (f (List.map rv_front_scalar vargs))
      | None -> (
          let vargs = List.map (fun c -> c m) cargs in
          if List.exists rv_is_plural vargs then begin
            (* intrinsics are pure by construction: shardable *)
            let vs = Array.make p (VInt 0) in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i then
                    Array.unsafe_set vs i
                      (match
                         Intrinsics.apply key
                           (List.map (fun v -> rv_lane v i) vargs)
                       with
                      | Some r -> r
                      | None ->
                          Errors.runtime_error "unknown function %s" name)
                done);
            renorm m vs
          end
          else
            let scalar_args =
              List.map
                (function
                  | RS v -> v
                  | RA a -> VArr a
                  | RI _ | RR _ | RB _ | RP _ -> assert false)
                vargs
            in
            match Intrinsics.apply key scalar_args with
            | Some r -> RS r
            | None -> Errors.runtime_error "unknown function %s" name)

and compile_reduction env name key args : cexpr =
  let host = env.host in
  let loc = env.cur_loc in
  let carg =
    match args with [ a ] -> Some (compile_expr env a) | _ -> None
  in
  fun m ->
    host.h_reduction ~loc m;
    let v =
      match carg with
      | Some c -> c m
      | None -> Errors.runtime_error "%s expects one argument" name
    in
    match v with
    | RA a -> (
        match Intrinsics.apply key [ VArr a ] with
        | Some r -> RS r
        | None -> Errors.runtime_error "bad reduction %s" name)
    | RS s -> RS (reduce_scalar m name key s)
    | v ->
        let is_var =
          match args with
          | [ { Ir.x_ast = Ast.EVar _; _ } ] -> true
          | _ -> false
        in
        RS (reduce_plural env.exec ~is_var m name key v)

(** Reduction over a broadcast front-end scalar — [Pval.reduce]'s
    [FScalar] case: the scalar itself if any lane is active, the identity
    otherwise. *)
and reduce_scalar (m : Frame.Mask.t) name key s =
  let some_active = Frame.Mask.active m > 0 in
  match key with
  | "count" -> VInt (if as_bool s then Frame.Mask.active m else 0)
  | "any" -> if some_active then s else VBool false
  | "all" -> if some_active then s else VBool true
  | "maxval" | "minval" | "sum" ->
      if some_active then s else Pval.reduction_identity key s
  | _ -> Errors.runtime_error "unknown reduction %s" name

and reduce_plural (exec : Pool.exec) ~is_var (m : Frame.Mask.t) name key v =
  let p = Frame.Mask.length m in
  let run = exec.Pool.x_run in
  let ns = Pool.nshards exec in
  let nc = Pool.nchunks p in
  (* Typed folds over the canonical chunked merge tree (see [Pool] /
     [Pval.reduce]): one partial per 64-lane chunk, each initialized at
     its first active lane (so e.g. a lone NaN or -0.0 survives
     verbatim), merged left-to-right in ascending chunk order on the
     control thread.  The chunk grid depends only on [p], never on the
     shard layout, so the result — including a non-associative float
     SUM — is bitwise identical at any jobs count, and identical to the
     serial engines.  Shards fold whole chunks (shard boundaries are
     chunk-aligned). *)
  (* The tree-walker's witness reads lane 0 of the evaluated argument
     regardless of activity.  A plural-variable read ([is_var]) exposes
     the stored lane 0; any computed temporary holds the inert [VInt 0]
     in lanes that were masked off during its evaluation.  The witness
     only reaches the result on the empty-mask path (where lane 0 is
     necessarily inactive), so for temporaries that path must yield the
     integer identity even when the register is statically REAL. *)
  let witness () =
    if p = 0 then VInt 0
    else if (not is_var) && not (Frame.Mask.get m 0) then VInt 0
    else rv_lane v 0
  in
  let float_fold f =
    let ga = match float_get v with Some g -> g | None -> assert false in
    let parts = Array.make (max 1 nc) 0.0 in
    let filled = Bytes.make (max 1 nc) '\000' in
    run (fun _ lo hi ->
        for c = lo / Pool.chunk to ((hi + Pool.chunk - 1) / Pool.chunk) - 1 do
          let l = c * Pool.chunk and h = min hi ((c + 1) * Pool.chunk) in
          let acc = ref 0.0 and seen = ref false in
          for i = l to h - 1 do
            if Frame.Mask.get m i then
              if !seen then acc := f !acc (ga i)
              else begin
                acc := ga i;
                seen := true
              end
          done;
          if !seen then begin
            parts.(c) <- !acc;
            Bytes.unsafe_set filled c '\001'
          end
        done);
    let acc = ref 0.0 and seen = ref false in
    for c = 0 to nc - 1 do
      if Bytes.unsafe_get filled c <> '\000' then
        if !seen then acc := f !acc parts.(c)
        else begin
          acc := parts.(c);
          seen := true
        end
    done;
    if !seen then VReal !acc else Pval.reduction_identity key (witness ())
  in
  let int_fold f =
    let ga = match int_get v with Some g -> g | None -> assert false in
    let parts = Array.make (max 1 nc) 0 in
    let filled = Bytes.make (max 1 nc) '\000' in
    run (fun _ lo hi ->
        for c = lo / Pool.chunk to ((hi + Pool.chunk - 1) / Pool.chunk) - 1 do
          let l = c * Pool.chunk and h = min hi ((c + 1) * Pool.chunk) in
          let acc = ref 0 and seen = ref false in
          for i = l to h - 1 do
            if Frame.Mask.get m i then
              if !seen then acc := f !acc (ga i)
              else begin
                acc := ga i;
                seen := true
              end
          done;
          if !seen then begin
            parts.(c) <- !acc;
            Bytes.unsafe_set filled c '\001'
          end
        done);
    let acc = ref 0 and seen = ref false in
    for c = 0 to nc - 1 do
      if Bytes.unsafe_get filled c <> '\000' then
        if !seen then acc := f !acc parts.(c)
        else begin
          acc := parts.(c);
          seen := true
        end
    done;
    if !seen then VInt !acc else Pval.reduction_identity key (witness ())
  in
  (* Boxed fallback: the same chunk grid, folded serially on the control
     thread (mixed-type lanes are the slow path already) — bit-identical
     to [Pval.reduce]'s grouping. *)
  let generic f empty =
    let acc = ref None in
    for c = 0 to nc - 1 do
      let l = c * Pool.chunk and h = min p ((c + 1) * Pool.chunk) in
      let part = ref None in
      for i = l to h - 1 do
        if Frame.Mask.get m i then
          let x = rv_lane v i in
          part := Some (match !part with None -> x | Some a -> f a x)
      done;
      match !part with
      | None -> ()
      | Some pv ->
          acc := Some (match !acc with None -> pv | Some a -> f a pv)
    done;
    match !acc with Some r -> r | None -> empty
  in
  match (key, v) with
  | "count", RB a ->
      let parts = Array.make ns 0 in
      run (fun s lo hi ->
          let n = ref 0 in
          for i = lo to hi - 1 do
            if Frame.Mask.get m i && Array.unsafe_get a i then incr n
          done;
          parts.(s) <- !n);
      VInt (Array.fold_left ( + ) 0 parts)
  | "count", _ ->
      let n = ref 0 in
      for i = 0 to p - 1 do
        if Frame.Mask.get m i && as_bool (rv_lane v i) then incr n
      done;
      VInt !n
  | "any", RB a ->
      let parts = Array.make ns false in
      run (fun s lo hi ->
          let r = ref false in
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then r := !r || Array.unsafe_get a i
          done;
          parts.(s) <- !r);
      VBool (Array.exists Fun.id parts)
  | "all", RB a ->
      let parts = Array.make ns true in
      run (fun s lo hi ->
          let r = ref true in
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then r := !r && Array.unsafe_get a i
          done;
          parts.(s) <- !r);
      VBool (Array.for_all Fun.id parts)
  | "sum", RI _ -> int_fold ( + )
  | "sum", RR _ -> float_fold ( +. )
  | "maxval", RI _ -> int_fold (fun a x -> if a > x then a else x)
  | "maxval", RR _ ->
      float_fold (fun a x -> if Float.compare a x > 0 then a else x)
  | "minval", RI _ -> int_fold (fun a x -> if a < x then a else x)
  | "minval", RR _ ->
      float_fold (fun a x -> if Float.compare a x < 0 then a else x)
  | "any", _ ->
      generic (fun a b -> VBool (as_bool a || as_bool b)) (VBool false)
  | "all", _ ->
      generic (fun a b -> VBool (as_bool a && as_bool b)) (VBool true)
  | "maxval", _ ->
      generic
        (fun a b -> if as_bool (Scalar_ops.apply_binop Gt a b) then a else b)
        (Pval.reduction_identity key (witness ()))
  | "minval", _ ->
      generic
        (fun a b -> if as_bool (Scalar_ops.apply_binop Lt a b) then a else b)
        (Pval.reduction_identity key (witness ()))
  | "sum", _ ->
      generic
        (fun a b -> Scalar_ops.apply_binop Add a b)
        (Pval.reduction_identity key (witness ()))
  | _ -> Errors.runtime_error "unknown reduction %s" name

and compile_index env scr si name args : cexpr =
  let frame = env.frame in
  let cargs = List.map (compile_expr env) args in
  let nargs = List.length args in
  (* [-O2] interval claims on the subscripts ([Opt.annotate_ranges]),
     captured at compile time; [discharges] re-resolves them per
     execution against the live frame *)
  let claim0 =
    match args with a :: _ -> a.Ir.x_range | [] -> None
  and claim1 =
    match args with _ :: a :: _ -> a.Ir.x_range | _ -> None
  in
  let scratch = Array.make nargs 0 in
  let scratch1 = Array.make (nargs + 1) 0 in
  (* the name may turn out to be a function at run time (tree-walker
     falls back to the call path when the slot is unbound) *)
  let ccall = compile_call env scr name args in
  let exec = env.exec in
  let run = exec.Pool.x_run in
  (* gather result buffers, reused like [fast_binop]'s *)
  let ri, rr, rb = site_buffers env scr in
  (* the generic gather paths stage each lane's subscript vector in a
     scratch buffer: the compile-time one serially, a fresh shard-local
     one per shard under the pool *)
  let local_scratch sc n = if Pool.nshards exec = 1 then sc else Array.make n 0
  in
  fun m ->
    match Frame.get frame si with
    | Frame.Scalar _ | Frame.Plural _ ->
        Errors.runtime_error "%s is a scalar but is indexed" name
    | Frame.Unbound -> ccall m
    | Frame.Global a -> (
        let ivs = List.map (fun c -> c m) cargs in
        match (ivs, a) with
        (* rank-1/rank-2 int-vector subscripts: gather via flat offsets,
           replicating [Nd.linear_index]'s bounds checks (same message,
           same dimension order, same first-failing-lane — shards check
           ascending and the pool rethrows the lowest shard's error) *)
        | [ RI ix ], AInt d when Nd.rank d = 1 ->
            let d1 = Nd.size d in
            if discharges env claim0 d1 then begin
              nocheck_stats m 1;
              run (fun _ lo hi ->
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then
                      Array.unsafe_set ri i
                        (Nd.get_flat d (Array.unsafe_get ix i - 1))
                  done)
            end
            else
              run (fun _ lo hi ->
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then begin
                      let j = Array.unsafe_get ix i in
                      if j < 1 || j > d1 then
                        Errors.runtime_error
                          "index %d out of bounds 1..%d in dimension %d" j d1
                          1;
                      Array.unsafe_set ri i (Nd.get_flat d (j - 1))
                    end
                  done);
            RI ri
        | [ RI ix ], AReal d when Nd.rank d = 1 ->
            let d1 = Nd.size d in
            if discharges env claim0 d1 then begin
              nocheck_stats m 1;
              run (fun _ lo hi ->
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then
                      Array.unsafe_set rr i
                        (Nd.get_flat d (Array.unsafe_get ix i - 1))
                  done)
            end
            else
              run (fun _ lo hi ->
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then begin
                      let j = Array.unsafe_get ix i in
                      if j < 1 || j > d1 then
                        Errors.runtime_error
                          "index %d out of bounds 1..%d in dimension %d" j d1
                          1;
                      Array.unsafe_set rr i (Nd.get_flat d (j - 1))
                    end
                  done);
            RR rr
        | [ RI ix1; RI ix2 ], AInt d when Nd.rank d = 2 ->
            let dims = Nd.dims d in
            let d1 = dims.(0) and d2 = dims.(1) in
            (* all-or-nothing: both dimensions must discharge, or the
               checked loop keeps its dimension-ordered error contract *)
            if discharges env claim0 d1 && discharges env claim1 d2 then begin
              nocheck_stats m 2;
              run (fun _ lo hi ->
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then begin
                      let j1 = Array.unsafe_get ix1 i in
                      let j2 = Array.unsafe_get ix2 i in
                      Array.unsafe_set ri i
                        (Nd.get_flat d (j1 - 1 + ((j2 - 1) * d1)))
                    end
                  done)
            end
            else
              run (fun _ lo hi ->
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then begin
                      let j1 = Array.unsafe_get ix1 i in
                      if j1 < 1 || j1 > d1 then
                        Errors.runtime_error
                          "index %d out of bounds 1..%d in dimension %d" j1
                          d1 1;
                      let j2 = Array.unsafe_get ix2 i in
                      if j2 < 1 || j2 > d2 then
                        Errors.runtime_error
                          "index %d out of bounds 1..%d in dimension %d" j2
                          d2 2;
                      Array.unsafe_set ri i
                        (Nd.get_flat d (j1 - 1 + ((j2 - 1) * d1)))
                    end
                  done);
            RI ri
        | [ RI ix1; RI ix2 ], AReal d when Nd.rank d = 2 ->
            let dims = Nd.dims d in
            let d1 = dims.(0) and d2 = dims.(1) in
            if discharges env claim0 d1 && discharges env claim1 d2 then begin
              nocheck_stats m 2;
              run (fun _ lo hi ->
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then begin
                      let j1 = Array.unsafe_get ix1 i in
                      let j2 = Array.unsafe_get ix2 i in
                      Array.unsafe_set rr i
                        (Nd.get_flat d (j1 - 1 + ((j2 - 1) * d1)))
                    end
                  done)
            end
            else
              run (fun _ lo hi ->
                  for i = lo to hi - 1 do
                    if Frame.Mask.get m i then begin
                      let j1 = Array.unsafe_get ix1 i in
                      if j1 < 1 || j1 > d1 then
                        Errors.runtime_error
                          "index %d out of bounds 1..%d in dimension %d" j1
                          d1 1;
                      let j2 = Array.unsafe_get ix2 i in
                      if j2 < 1 || j2 > d2 then
                        Errors.runtime_error
                          "index %d out of bounds 1..%d in dimension %d" j2
                          d2 2;
                      Array.unsafe_set rr i
                        (Nd.get_flat d (j1 - 1 + ((j2 - 1) * d1)))
                    end
                  done);
            RR rr
        | _ ->
        let sels = List.map rv_sel ivs in
        if List.exists snd sels then begin
          (* gather: one element per active lane *)
          let fs = Array.of_list (List.map fst sels) in
          let gather get =
            run (fun _ lo hi ->
                let sc = local_scratch scratch nargs in
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i then begin
                    for k = 0 to nargs - 1 do
                      sc.(k) <- (Array.unsafe_get fs k) i
                    done;
                    get i sc
                  end
                done)
          in
          match a with
          | AInt d ->
              gather (fun i sc -> ri.(i) <- Nd.get d sc);
              RI ri
          | AReal d ->
              gather (fun i sc -> rr.(i) <- Nd.get d sc);
              RR rr
          | ABool d ->
              gather (fun i sc -> rb.(i) <- Nd.get d sc);
              RB rb
        end
        else begin
          List.iteri (fun k (f, _) -> scratch.(k) <- f 0) sels;
          RS (arr_get a scratch)
        end)
    | Frame.PluralArr a -> (
        let sels = List.map (fun c -> rv_sel (c m)) cargs in
        let fs = Array.of_list (List.map fst sels) in
        let gather get =
          run (fun _ lo hi ->
              let sc = local_scratch scratch1 (nargs + 1) in
              for i = lo to hi - 1 do
                if Frame.Mask.get m i then begin
                  sc.(0) <- i + 1;
                  for k = 0 to nargs - 1 do
                    sc.(k + 1) <- (Array.unsafe_get fs k) i
                  done;
                  get i sc
                end
              done)
        in
        match a with
        | AInt d ->
            gather (fun i sc -> ri.(i) <- Nd.get d sc);
            RI ri
        | AReal d ->
            gather (fun i sc -> rr.(i) <- Nd.get d sc);
            RR rr
        | ABool d ->
            gather (fun i sc -> rb.(i) <- Nd.get d sc);
            RB rb)

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)
(* ------------------------------------------------------------------ *)

and compile_assign env ?(par = false) (l : Ir.lv) : Frame.Mask.t -> rv -> unit
    =
  let frame = env.frame in
  let si = l.Ir.l_slot in
  let name = l.Ir.l_name in
  match l.Ir.l_index with
  | [] ->
      let p = env.p in
      fun m rhs -> (
        match Frame.get frame si with
        | Frame.Scalar r -> r := rv_front_scalar rhs
        | Frame.Plural lanes -> write_plural env.exec frame si lanes m rhs
        | Frame.Global a -> (
            match rhs with
            | RS v -> arr_fill a v
            | RA src ->
                if arr_size src <> arr_size a then
                  Errors.runtime_error "shape mismatch assigning to %s" name;
                for i = 0 to arr_size a - 1 do
                  arr_set_flat a i (arr_get_flat src i)
                done
            | RI _ | RR _ | RB _ | RP _ ->
                Errors.runtime_error "plural value assigned to whole array %s"
                  name)
        | Frame.PluralArr a -> (
            match rhs with
            | RS v -> arr_fill a v
            | _ ->
                Errors.runtime_error
                  "unsupported whole-plural-array assignment to %s" name)
        | Frame.Unbound -> bind_fresh frame si p m rhs)
  | idxs ->
      let cidx = List.map (compile_expr env) idxs in
      let nargs = List.length idxs in
      let scratch = Array.make nargs 0 in
      let scratch1 = Array.make (nargs + 1) 0 in
      let p = env.p in
      let exec = env.exec in
      let run = exec.Pool.x_run in
      (* [-O2] interval claim on the store subscript; [par] is the
         statement's [Ir.s_par] (lane-disjoint index set), both gated
         by the entry prologue per execution *)
      let claim0 = match idxs with ix :: _ -> ix.Ir.x_range | [] -> None in
      let scatter a m rhs (fs : (int -> int) array) ~plural_arr =
        (* Several lanes may scatter to the {e same} element of a global
           array, and the machine model resolves the collision in lane
           order (last active lane wins), so global scatters always run
           serially on the control thread.  A plural array's leading
           subscript is the lane itself — element sets are shard-disjoint
           by construction — so that scatter shards, with a fresh
           subscript buffer per shard. *)
        let put sc =
          let off = if plural_arr then 1 else 0 in
          let idx i =
            if plural_arr then sc.(0) <- i + 1;
            for k = 0 to nargs - 1 do
              sc.(k + off) <- (Array.unsafe_get fs k) i
            done;
            sc
          in
          match (a, rhs) with
          | AInt d, RI s -> fun i -> Nd.set d (idx i) (Array.unsafe_get s i)
          | AReal d, RR s -> fun i -> Nd.set d (idx i) (Array.unsafe_get s i)
          | AReal d, RI s ->
              fun i -> Nd.set d (idx i) (float_of_int (Array.unsafe_get s i))
          | ABool d, RB s -> fun i -> Nd.set d (idx i) (Array.unsafe_get s i)
          | _ -> fun i -> arr_set a (idx i) (rv_lane rhs i)
        in
        if plural_arr && Pool.nshards exec > 1 then
          run (fun _ lo hi ->
              let f = put (Array.make (nargs + 1) 0) in
              for i = lo to hi - 1 do
                if Frame.Mask.get m i then f i
              done)
        else begin
          let f = put (if plural_arr then scratch1 else scratch) in
          for i = 0 to p - 1 do
            if Frame.Mask.get m i then f i
          done
        end
      in
      fun m rhs -> (
        match Frame.get frame si with
        | Frame.Unbound ->
            Errors.runtime_error "assignment to undeclared array %s" name
        | Frame.Scalar _ | Frame.Plural _ ->
            Errors.runtime_error "%s is scalar but indexed" name
        | Frame.Global a -> (
            let ivs = List.map (fun c -> c m) cidx in
            match (ivs, a, rhs) with
            (* rank-1 int-vector scatter via flat offsets (bounds checks
               as in [Nd.linear_index]).  A discharged claim drops the
               per-lane check; a validated [Ir.s_par] claim lets the
               store pass shard — the index sets are lane-disjoint, so
               no shard order can differ from the serial lane order
               (and shards check ascending with the pool rethrowing the
               lowest shard, preserving the first-failing-lane error). *)
            | [ RI ix ], AInt d, (RI _ | RS (VInt _)) when Nd.rank d = 1 ->
                let d1 = Nd.size d in
                let nochk = discharges env claim0 d1 in
                if nochk then nocheck_stats m 1;
                let bp = m.Frame.Mask.bits in
                let check j =
                  if j < 1 || j > d1 then
                    Errors.runtime_error
                      "index %d out of bounds 1..%d in dimension %d" j d1 1
                in
                let store : int -> int -> unit =
                  match rhs with
                  | RI s ->
                      if nochk then fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then
                            Nd.set_flat d
                              (Array.unsafe_get ix i - 1)
                              (Array.unsafe_get s i)
                        done
                      else fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then begin
                            let j = Array.unsafe_get ix i in
                            check j;
                            Nd.set_flat d (j - 1) (Array.unsafe_get s i)
                          end
                        done
                  | RS (VInt x) ->
                      if nochk then fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then
                            Nd.set_flat d (Array.unsafe_get ix i - 1) x
                        done
                      else fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then begin
                            let j = Array.unsafe_get ix i in
                            check j;
                            Nd.set_flat d (j - 1) x
                          end
                        done
                  | _ -> assert false
                in
                if par && env.entry_ok then begin
                  Stats.incr st_par_scatter_runs;
                  if Pool.nshards exec > 1 then
                    run (fun _ lo hi -> store lo hi)
                  else store 0 p
                end
                else store 0 p
            | [ RI ix ], AReal d, (RR _ | RI _ | RS (VReal _))
              when Nd.rank d = 1 ->
                let d1 = Nd.size d in
                let nochk = discharges env claim0 d1 in
                if nochk then nocheck_stats m 1;
                let bp = m.Frame.Mask.bits in
                let check j =
                  if j < 1 || j > d1 then
                    Errors.runtime_error
                      "index %d out of bounds 1..%d in dimension %d" j d1 1
                in
                let store : int -> int -> unit =
                  match rhs with
                  | RR s ->
                      if nochk then fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then
                            Nd.set_flat d
                              (Array.unsafe_get ix i - 1)
                              (Array.unsafe_get s i)
                        done
                      else fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then begin
                            let j = Array.unsafe_get ix i in
                            check j;
                            Nd.set_flat d (j - 1) (Array.unsafe_get s i)
                          end
                        done
                  | RI s ->
                      if nochk then fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then
                            Nd.set_flat d
                              (Array.unsafe_get ix i - 1)
                              (float_of_int (Array.unsafe_get s i))
                        done
                      else fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then begin
                            let j = Array.unsafe_get ix i in
                            check j;
                            Nd.set_flat d (j - 1)
                              (float_of_int (Array.unsafe_get s i))
                          end
                        done
                  | RS (VReal x) ->
                      if nochk then fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then
                            Nd.set_flat d (Array.unsafe_get ix i - 1) x
                        done
                      else fun lo hi ->
                        for i = lo to hi - 1 do
                          if Bytes.unsafe_get bp i <> '\000' then begin
                            let j = Array.unsafe_get ix i in
                            check j;
                            Nd.set_flat d (j - 1) x
                          end
                        done
                  | _ -> assert false
                in
                if par && env.entry_ok then begin
                  Stats.incr st_par_scatter_runs;
                  if Pool.nshards exec > 1 then
                    run (fun _ lo hi -> store lo hi)
                  else store 0 p
                end
                else store 0 p
            | _ ->
                let sels = List.map rv_sel ivs in
                if List.exists snd sels || rv_is_plural rhs then
                  scatter a m rhs
                    (Array.of_list (List.map fst sels))
                    ~plural_arr:false
                else begin
                  List.iteri (fun k (f, _) -> scratch.(k) <- f 0) sels;
                  arr_set a scratch (rv_front_scalar rhs)
                end)
        | Frame.PluralArr a ->
            let sels = List.map (fun c -> rv_sel (c m)) cidx in
            scatter a m rhs
              (Array.of_list (List.map fst sels))
              ~plural_arr:true)

(** [-O1] fused store: [v = a op b] over variable/literal operands with
    a total operator, assigned to a typed plural.  The unfused engine
    runs an {e unmasked} compute pass into the operator's buffer and a
    masked copy into the binding; this runs one masked compute-store
    pass straight into the binding's lanes — active lanes get the same
    values, inactive lanes keep their old ones, exactly like the copy.
    Only total operators are admitted (the compute can slide past the
    tick unobserved), and only operand/destination typings the unfused
    path handles without rebinding; anything else — including a
    front-end-scalar result, whose unfused tick is a front-end tick —
    falls back to the factored unfused sequence.  In-place updates
    ([v = v + 1]) alias destination and operand, which is safe: the
    store is elementwise at the same lane. *)
and compile_store_fused env ast (l : Ir.lv) e op ea eb : cstmt =
  let host = env.host in
  let loc = env.cur_loc in
  let frame = env.frame in
  let si = l.Ir.l_slot in
  let run = env.exec.Pool.x_run in
  let ce = compile_expr env e in
  let casgn = compile_assign env l in
  let fii =
    match (op : Ast.binop) with
    | Ast.Add -> ( + )
    | Ast.Sub -> ( - )
    | Ast.Mul -> ( * )
    | _ -> assert false
  in
  let frr =
    match (op : Ast.binop) with
    | Ast.Add -> ( +. )
    | Ast.Sub -> ( -. )
    | Ast.Mul -> ( *. )
    | _ -> assert false
  in
  let resolve o =
    match o with
    | `C (VInt x) -> `KIc x
    | `C (VReal x) -> `KRc x
    | `C _ -> `KBad
    | `V slot -> (
        match Frame.get frame slot with
        | Frame.Plural (Frame.LInt a) -> `KI a
        | Frame.Plural (Frame.LReal a) -> `KR a
        | Frame.Scalar r -> (
            match !r with
            | VInt x -> `KIc x
            | VReal x -> `KRc x
            | _ -> `KBad)
        | _ -> `KBad)
  in
  let oa =
    match ea.Ir.x_node with
    | Ir.XConst v -> `C v
    | Ir.XVar (Some s, _) -> `V s
    | _ -> assert false
  in
  let ob =
    match eb.Ir.x_node with
    | Ir.XConst v -> `C v
    | Ir.XVar (Some s, _) -> `V s
    | _ -> assert false
  in
  (* per-lane float getter; constants broadcast, [float_of_int] promotes *)
  let fget = function
    | `KI a -> Some (fun i -> float_of_int (Array.unsafe_get a i))
    | `KR (a : float array) -> Some (fun i -> Array.unsafe_get a i)
    | `KIc c ->
        let c = float_of_int c in
        Some (fun _ -> c)
    | `KRc c -> Some (fun (_ : int) -> c)
    | `KBad -> None
  in
  let is_arr = function `KI _ | `KR _ -> true | _ -> false in
  let is_real = function `KR _ | `KRc _ -> true | _ -> false in
  fun m ->
    observe env m ast;
    (* resolve a compute-store pass first; the tick fires between the
       decision and the store, exactly where the unfused tick sits
       (a fuel fault at the tick must leave the binding untouched) *)
    let fused : (unit -> unit) option =
      match Frame.get frame si with
      | Frame.Plural (Frame.LInt d) -> (
          let iloop f =
            Some
              (fun () ->
                let bp = m.Frame.Mask.bits in
                run (fun _ lo hi ->
                    for i = lo to hi - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then
                        Array.unsafe_set d i (f i)
                    done))
          in
          match (resolve oa, resolve ob) with
          | `KI a, `KI b ->
              iloop (fun i ->
                  fii (Array.unsafe_get a i) (Array.unsafe_get b i))
          | `KI a, `KIc c -> iloop (fun i -> fii (Array.unsafe_get a i) c)
          | `KIc c, `KI b -> iloop (fun i -> fii c (Array.unsafe_get b i))
          | _ -> None)
      | Frame.Plural (Frame.LReal d) -> (
          let rloop f =
            Some
              (fun () ->
                let bp = m.Frame.Mask.bits in
                run (fun _ lo hi ->
                    for i = lo to hi - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then
                        Array.unsafe_set d i (f i)
                    done))
          in
          let ka = resolve oa and kb = resolve ob in
          match (ka, kb) with
          | `KR a, `KR b ->
              rloop (fun i ->
                  frr (Array.unsafe_get a i) (Array.unsafe_get b i))
          | `KR a, `KRc c -> rloop (fun i -> frr (Array.unsafe_get a i) c)
          | `KRc c, `KR b -> rloop (fun i -> frr c (Array.unsafe_get b i))
          | _ ->
              (* mixed int/real: the unfused op float-promotes whenever a
                 real side is present; both-constant operands stay a
                 front-end scalar there, so they must fall back *)
              if (is_arr ka || is_arr kb) && (is_real ka || is_real kb) then
                match (fget ka, fget kb) with
                | Some fa, Some fb -> rloop (fun i -> frr (fa i) (fb i))
                | _ -> None
              else None)
      | _ -> None
    in
    match fused with
    | Some store ->
        host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Assign m;
        store ()
    | None ->
        let rhs = ce m in
        if rv_is_plural rhs then
          host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Assign m
        else host.h_tick_frontend ();
        casgn m rhs

(** [-O1] scatter-accumulate ([Ir.s_accum]): [a(ix) = a(ix) + rest] with
    a pure arithmetic subscript.  The gather keeps its own pass (both
    for its error order and because the scatter must see the {e
    pre-statement} values — colliding lanes overwrite, they do not
    accumulate), but the final add is folded into the scatter loop, so
    the sum is never materialized.  Evaluation order matches the
    unfused statement exactly: gather, rest, tick, subscript, store
    pass (the add is total on the typed shapes admitted here, so moving
    it across the tick is invisible).  Shapes outside the typed
    rank-1 fast paths — and the scalar-subscript case, whose unfused
    tick is a front-end tick — run the factored unfused sequence. *)
and compile_accum env ast (l : Ir.lv) ~par scr g rest : cstmt =
  let host = env.host in
  let loc = env.cur_loc in
  let frame = env.frame in
  let si = l.Ir.l_slot in
  let p = env.p in
  let exec = env.exec in
  let run = exec.Pool.x_run in
  let cg = compile_expr env g in
  let crest = compile_expr env rest in
  let cix =
    match l.Ir.l_index with [ ix ] -> compile_expr env ix | _ -> assert false
  in
  (* [-O2] claims on the store subscript, as in [compile_assign] *)
  let claim0 =
    match l.Ir.l_index with [ ix ] -> ix.Ir.x_range | _ -> None
  in
  (* the factored unfused add: same dispatch, its own buffer site *)
  let app = Scalar_ops.apply_binop Ast.Add in
  let fast = fast_binop ~buffers:(site_buffers env scr) env.exec Ast.Add in
  let casgn = compile_assign env ~par l in
  let bounds j d1 =
    if j < 1 || j > d1 then
      Errors.runtime_error "index %d out of bounds 1..%d in dimension %d" j d1
        1
  in
  fun m ->
    observe env m ast;
    let gv = cg m in
    let rv = crest m in
    let fallback () =
      let rhs =
        match (gv, rv) with
        | RS x, RS y -> RS (app x y)
        | RA _, _ | _, RA _ ->
            Errors.runtime_error "array operand in a lane-wise operation"
        | _ -> (
            match fast m gv rv with
            | Some r -> r
            | None -> renorm m (box_lift2 m app gv rv))
      in
      if rv_is_plural rhs then
        host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Assign m
      else host.h_tick_frontend ();
      casgn m rhs
    in
    (* the merged add-and-store pass.  [store i j] receives the lane
       and its 1-based subscript; the bounds check stays here so a
       discharged claim can drop it, and a validated [Ir.s_par] claim
       shards the pass — each lane adds into its own element (the
       gathered pre-statement values are already materialized in
       [gv]), so shard order cannot show. *)
    let merged d1 (store : int -> int -> unit) =
      host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Assign m;
      match cix m with
      | RI ix ->
          let bp = m.Frame.Mask.bits in
          let nochk = discharges env claim0 d1 in
          if nochk then nocheck_stats m 1;
          let pass lo hi =
            if nochk then
              for i = lo to hi - 1 do
                if Bytes.unsafe_get bp i <> '\000' then
                  store i (Array.unsafe_get ix i)
              done
            else
              for i = lo to hi - 1 do
                if Bytes.unsafe_get bp i <> '\000' then begin
                  let j = Array.unsafe_get ix i in
                  bounds j d1;
                  store i j
                end
              done
          in
          if par && env.entry_ok then begin
            Stats.incr st_par_scatter_runs;
            if Pool.nshards exec > 1 then run (fun _ lo hi -> pass lo hi)
            else pass 0 p
          end
          else pass 0 p;
          Stats.incr st_accum_merged;
          true
      | _ -> false
    in
    match Frame.get frame si with
    | Frame.Global (AReal d) when Nd.rank d = 1 -> (
        let d1 = Nd.size d in
        let fadd : (int -> float) option =
          match (gv, rv) with
          | RR x, RR y ->
              Some
                (fun i -> Array.unsafe_get x i +. Array.unsafe_get y i)
          | RR x, RI y ->
              Some
                (fun i ->
                  Array.unsafe_get x i +. float_of_int (Array.unsafe_get y i))
          | RR x, RS (VReal c) -> Some (fun i -> Array.unsafe_get x i +. c)
          | RR x, RS (VInt c) ->
              let c = float_of_int c in
              Some (fun i -> Array.unsafe_get x i +. c)
          | _ -> None
        in
        match fadd with
        | Some fadd ->
            if not (merged d1 (fun i j -> Nd.set_flat d (j - 1) (fadd i)))
            then
              (* non-int-vector subscript: finish unfused (the vector
                 tick has fired — the unfused add result is plural) *)
              casgn m
                (match fast m gv rv with
                | Some r -> r
                | None -> renorm m (box_lift2 m app gv rv))
        | None -> fallback ())
    | Frame.Global (AInt d) when Nd.rank d = 1 -> (
        let d1 = Nd.size d in
        let iadd : (int -> int) option =
          match (gv, rv) with
          | RI x, RI y ->
              Some (fun i -> Array.unsafe_get x i + Array.unsafe_get y i)
          | RI x, RS (VInt c) -> Some (fun i -> Array.unsafe_get x i + c)
          | _ -> None
        in
        match iadd with
        | Some iadd ->
            if not (merged d1 (fun i j -> Nd.set_flat d (j - 1) (iadd i)))
            then
              casgn m
                (match fast m gv rv with
                | Some r -> r
                | None -> renorm m (box_lift2 m app gv rv))
        | None -> fallback ())
    | _ -> fallback ()

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and compile_stmt env (s : Ir.stmt) : cstmt =
  let host = env.host in
  let loc = env.cur_loc in
  let ast = s.Ir.s_ast in
  env.cur_full <- s.Ir.s_full;
  match s.Ir.s_node with
  | Ir.LLoc (loc, s) ->
      (* compile the wrapped statement under its location; annotate
         runtime errors escaping the compiled closure (innermost located
         statement wins, already-located errors pass through) *)
      let saved = env.cur_loc in
      env.cur_loc <- loc;
      let cs = compile_stmt env s in
      env.cur_loc <- saved;
      fun m ->
        (try cs m
         with Errors.Runtime_error msg ->
           raise (Errors.Runtime_error_at (loc, msg)))
  | Ir.LNop -> fun _ -> ()
  | Ir.LAssign (l, e) when s.Ir.s_accum -> (
      match e.Ir.x_node with
      | Ir.XBin (Ast.Add, g, rest) ->
          compile_accum env ast l ~par:s.Ir.s_par e.Ir.x_scr g rest
      | _ -> assert false (* [Opt.mark_accum] only marks this shape *))
  | Ir.LAssign (l, e)
    when env.opt >= 1 && l.Ir.l_index = []
         && (match e.Ir.x_node with
            | Ir.XBin ((Ast.Add | Ast.Sub | Ast.Mul), a, b) ->
                let leaf x =
                  match x.Ir.x_node with
                  | Ir.XConst _ | Ir.XVar (Some _, _) -> true
                  | _ -> false
                in
                leaf a && leaf b
            | _ -> false) -> (
      match e.Ir.x_node with
      | Ir.XBin (op, a, b) -> compile_store_fused env ast l e op a b
      | _ -> assert false)
  | Ir.LAssign (l, e) ->
      let ce = compile_expr env e in
      let casgn = compile_assign env ~par:s.Ir.s_par l in
      fun m ->
        observe env m ast;
        let rhs = ce m in
        if rv_is_plural rhs then
          host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Assign m
        else host.h_tick_frontend ();
        casgn m rhs
  | Ir.LScall (name, args) -> (
      let key = String.lowercase_ascii name in
      let cargs =
        List.map (fun (e, exact) -> (compile_expr env e, exact)) args
      in
      fun m ->
        observe env m ast;
        match host.h_find_proc key with
        | None -> Errors.runtime_error "unknown subroutine %s" name
        | Some f ->
            host.h_call_metric key;
            host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Call m;
            let vargs =
              List.map (fun (c, exact) -> rv_to_pval ~exact m (c m)) cargs
            in
            host.h_flush ();
            f ~mask:(Frame.Mask.to_bool_array m) vargs;
            host.h_import ())
  | Ir.LIf (c, t, f) -> (
      let cc = compile_expr env c in
      let ct = compile_block env t and cf = compile_block env f in
      let mt = Frame.Mask.create_empty env.p in
      let mf = Frame.Mask.create_empty env.p in
      let exec = env.exec in
      fun m ->
        match cc m with
        | RS v ->
            host.h_tick_frontend ();
            if as_bool v then ct m else cf m
        | RA _ -> Errors.runtime_error "array condition"
        | _ ->
            (* plural IF runs as WHERE, and like the tree-walker's
               [SWhere] dispatch it re-evaluates the condition *)
            let cv = cc m in
            host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Where m;
            split_mask exec m cv mt mf;
            ct mt;
            cf mf)
  | Ir.LWhere (c, t, f) ->
      let cc = compile_expr env c in
      let ct = compile_block env t and cf = compile_block env f in
      let mt = Frame.Mask.create_empty env.p in
      let mf = Frame.Mask.create_empty env.p in
      let exec = env.exec in
      fun m ->
        let cv = cc m in
        host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Where m;
        split_mask exec m cv mt mf;
        ct mt;
        cf mf
  | Ir.LWhile (c, body) ->
      let cc = compile_expr env c in
      let cb = compile_block env body in
      let p = env.p in
      fun m ->
        let continue_ () =
          match cc m with
          | RS v ->
              host.h_tick_frontend ();
              as_bool v
          | RA _ -> Errors.runtime_error "array condition"
          | RB a ->
              (* vector-controlled WHILE (§2): active lanes must agree;
                 unboxed comparison, no per-lane boxing *)
              host.h_tick_vector ~loc ~kind:Lf_obs.Trace.While m;
              let seen = ref false and v0 = ref false in
              for i = 0 to p - 1 do
                if Frame.Mask.get m i then
                  if not !seen then begin
                    v0 := Array.unsafe_get a i;
                    seen := true
                  end
                  else if Array.unsafe_get a i <> !v0 then
                    Errors.runtime_error
                      "vector-controlled WHILE with divergent lane values"
              done;
              !seen && !v0
          | cv ->
              host.h_tick_vector ~loc ~kind:Lf_obs.Trace.While m;
              let first = ref None in
              for i = 0 to p - 1 do
                if Frame.Mask.get m i then
                  let x = rv_lane cv i in
                  match !first with
                  | None -> first := Some x
                  | Some v0 ->
                      if not (Values.equal_value v0 x) then
                        Errors.runtime_error
                          "vector-controlled WHILE with divergent lane values"
              done;
              (match !first with None -> false | Some v0 -> as_bool v0)
        in
        while continue_ () do
          cb m
        done
  | Ir.LDoWhile (body, c) ->
      let cc = compile_expr env c in
      let cb = compile_block env body in
      fun m ->
        let go = ref true in
        while !go do
          cb m;
          go :=
            (match cc m with
            | RS v ->
                host.h_tick_frontend ();
                as_bool v
            | _ ->
                Errors.runtime_error "DO WHILE condition must be front-end")
        done
  | Ir.LDo (si, vname, lo_e, hi_e, step_e, body) ->
      let clo = compile_expr env lo_e in
      let chi = compile_expr env hi_e in
      let cstep = Option.map (compile_expr env) step_e in
      let cb = compile_block env body in
      let frame = env.frame in
      let set_var v =
        match Frame.get frame si with
        | Frame.Scalar r -> r := v
        | Frame.Unbound -> Frame.set frame si (Frame.Scalar (ref v))
        | _ -> Errors.runtime_error "%s is not a front-end scalar" vname
      in
      fun m ->
        let lo = rv_front_int (clo m) in
        let hi = rv_front_int (chi m) in
        let step =
          match cstep with Some cs -> rv_front_int (cs m) | None -> 1
        in
        if step = 0 then Errors.runtime_error "DO loop with zero step";
        host.h_tick_frontend ();
        let i = ref lo in
        let cont () = if step > 0 then !i <= hi else !i >= hi in
        while cont () do
          set_var (VInt !i);
          cb m;
          host.h_tick_frontend ();
          i := !i + step
        done;
        (* Fortran: the DO variable keeps the first failing value *)
        set_var (VInt !i)
  | Ir.LGoto -> fun _ -> Errors.runtime_error "GOTO is not part of F90simd"

and compile_block env (b : Ir.block) : cstmt =
  let cs = Array.map (compile_stmt env) b in
  let n = Array.length cs in
  fun m ->
    for i = 0 to n - 1 do
      (Array.unsafe_get cs i) m
    done

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Every name a program can bind or reference as a variable, in first-use
    order: declarations, lvalues, DO variables, [EVar] and [EIdx] heads
    (an [EIdx] head that is really a function keeps an unbound slot and
    falls back to the call path at run time). *)
let var_names (prog : program) : string list =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  let add n =
    if not (Hashtbl.mem tbl n) then begin
      Hashtbl.replace tbl n ();
      order := n :: !order
    end
  in
  add "iproc";
  List.iter (fun d -> add d.dc_name) prog.p_decls;
  let rec ex = function
    | EInt _ | EReal _ | EBool _ -> ()
    | EVar v -> add v
    | EIdx (v, es) ->
        add v;
        List.iter ex es
    | EUn (_, a) -> ex a
    | EBin (_, a, b) ->
        ex a;
        ex b
    | ECall (_, es) -> List.iter ex es
    | ERange (a, b) ->
        ex a;
        ex b
  in
  let rec st = function
    | SLoc (_, s) -> st s
    | SComment _ | SLabel _ | SGoto _ -> ()
    | SCondGoto (e, _) -> ex e
    | SAssign (l, e) ->
        add l.lv_name;
        List.iter ex l.lv_index;
        ex e
    | SCall (_, es) -> List.iter ex es
    | SIf (e, t, f) | SWhere (e, t, f) ->
        ex e;
        blk t;
        blk f
    | SWhile (e, b) ->
        ex e;
        blk b
    | SDoWhile (b, e) ->
        blk b;
        ex e
    | SDo (c, b) | SForall (c, b) ->
        add c.d_var;
        ex c.d_lo;
        ex c.d_hi;
        Option.iter ex c.d_step;
        blk b
  and blk b = List.iter st b in
  blk prog.p_body;
  List.rev !order

(* The front half of [compile]: lower to slot-resolved IR and run the
   optimizer/verifier.  Split out so the program cache can pay this once
   per (source, opt, verify, p) and feed the annotated IR back through
   [emit] on every warm run — emission never mutates the IR (annotation
   writes live in [Opt] only), so one lowered block may be re-emitted
   against any frame sharing the layout it was lowered with. *)
let lower ~frame ?(opt = 1) ?(verify = false) (body : block) : Ir.block =
  Opt.run ~level:opt ~frame ~verify (Ir.of_block frame body)

(* The back half: emit OCaml closures from an already-lowered IR. *)
let emit ~host ~frame ~exec ?(opt = 1) (ir : Ir.block) :
    Frame.Mask.t -> unit =
  assert (exec.Pool.x_p = host.h_p);
  let env =
    {
      host;
      frame;
      p = host.h_p;
      exec;
      cur_loc = Errors.no_pos;
      cur_full = false;
      opt;
      entry_ok = false;
    }
  in
  let cbody = compile_block env ir in
  if opt < 2 then cbody
  else begin
    (* [-O2] entry prologue: every interval and disjointness claim may
       descend from the analysis' [iproc = 1..P] seed, so each
       application of the compiled body revalidates that the frame's
       [iproc] binding is still the canonical lane vector before any
       claim-gated fast path may fire.  The engines import the VM's
       variable table before applying the body, so a caller-rebound
       [iproc] is visible here; within a run, claims downstream of a
       CALL never rely on [iproc] (the analysis havocs at calls). *)
    let iproc = Frame.slot_index frame "iproc" in
    fun m ->
      env.entry_ok <-
        (match iproc with
        | None -> false
        | Some si -> (
            match Frame.get frame si with
            | Frame.Plural (Frame.LInt a) ->
                Array.length a = env.p
                &&
                let ok = ref true in
                for i = 0 to env.p - 1 do
                  if Array.unsafe_get a i <> i + 1 then ok := false
                done;
                !ok
            | _ -> false));
      cbody m
  end

let compile ~host ~frame ~exec ?(opt = 1) ?(verify = false)
    (body : block) : Frame.Mask.t -> unit =
  emit ~host ~frame ~exec ~opt (lower ~frame ~opt ~verify body)
