(** The compiled execution engine of the SIMD VM.

    [compile] lowers an F90simd block into a tree of OCaml closures,
    resolving every variable reference to a dense [Frame] slot at compile
    time (no hashtable lookups on the hot path), keeping plural int/real
    scalars unboxed, and threading the activity mask as a reusable
    [Frame.Mask] bitset with a cached active count, so WHERE nesting and
    step accounting allocate nothing per vector instruction.

    The contract is {e bit identity} with the tree-walker ([Vm.exec]): the
    same final variable state, the same [Metrics] counters, the same error
    messages raised at the same program points.  That includes the
    tree-walker's quirks, which are deliberately replicated here:
    - a plural [IF] is executed as [WHERE] {e after} evaluating its
      condition once for dispatch, so the condition is evaluated twice and
      any reductions inside it are counted twice;
    - inactive lanes of freshly bound plurals are inert [VInt 0];
    - scalar subscripts are converted with [as_int] eagerly, per-lane
      subscripts lazily per active lane;
    - user functions are looked up before intrinsics, reductions before
      both.

    One observable relaxation: the tree-walker leaves [VInt 0] in the
    inactive lanes of every {e computed} temporary, while the unboxed fast
    paths here may compute all lanes.  The difference is laundered away at
    every point where a temporary's inactive lanes can escape (fresh
    binds, external-procedure arguments), where the tree-walker's [VInt 0]
    is reinstated.

    The engine is parameterized over a [host] record of callbacks
    (metrics, fuel, procedure/function lookup, frame<->VM
    synchronization), which keeps this module below [Vm] in the
    dependency order. *)

open Lf_lang
open Lf_lang.Ast
open Values

type host = {
  h_p : int;  (** number of lanes *)
  h_tick_vector :
    loc:Errors.pos -> kind:Lf_obs.Trace.kind -> Frame.Mask.t -> unit;
      (** one vector step (may raise on fuel); [loc] and [kind] are static
          per call site, and the active count is cached in the mask, so
          trace emission costs the host one branch when disabled *)
  h_tick_frontend : unit -> unit;  (** one control-unit step *)
  h_reduction : loc:Errors.pos -> Frame.Mask.t -> unit;
      (** count a global reduction tree *)
  h_call_metric : string -> unit;  (** count an external CALL *)
  h_find_proc : string -> (mask:bool array -> Pval.t list -> unit) option;
  h_find_func : string -> ((value list -> value) * bool) option;
      (** user function and its purity: only [pure] functions may be
          applied lane-parallel (impure ones keep the serial ascending
          per-lane application order) *)
  h_observer : unit -> (mask:bool array -> stmt -> unit) option;
  h_flush : unit -> unit;  (** frame -> VM variable table *)
  h_import : unit -> unit;  (** VM variable table -> frame *)
}

let is_reduction f =
  List.mem
    (String.lowercase_ascii f)
    [ "any"; "all"; "maxval"; "minval"; "sum"; "count" ]

(* ------------------------------------------------------------------ *)
(* Runtime values                                                      *)
(* ------------------------------------------------------------------ *)

(** A compiled expression's result: front-end scalar / array, or a plural
    value in unboxed ([RI]/[RR]/[RB]) or boxed ([RP]) form. *)
type rv =
  | RS of value
  | RA of arr
  | RI of int array
  | RR of float array
  | RB of bool array
  | RP of value array

let rv_is_plural = function RS _ | RA _ -> false | _ -> true

(** Per-lane boxed view; front-end scalars broadcast (cf. [Pval.lane]). *)
let rv_lane v i =
  match v with
  | RS s -> s
  | RI a -> VInt a.(i)
  | RR a -> VReal a.(i)
  | RB a -> VBool a.(i)
  | RP a -> a.(i)
  | RA _ -> Errors.runtime_error "front-end array used as a plural value"

let rv_front_scalar = function
  | RS v -> v
  | RA _ -> Errors.runtime_error "array value in a scalar context"
  | RI _ | RR _ | RB _ | RP _ ->
      Errors.runtime_error "plural value in a front-end context"

let rv_front_int v = as_int (rv_front_scalar v)

(** Boxed [Pval] view of a procedure argument.  [exact] plurals (variable
    references, ranges) expose their true lane contents; computed plurals
    get the tree-walker's inert [VInt 0] outside the mask. *)
let rv_to_pval ~exact (m : Frame.Mask.t) v =
  match v with
  | RS s -> Pval.FScalar s
  | RA a -> Pval.FArr a
  | _ ->
      let p = Frame.Mask.length m in
      Pval.Plural
        (Array.init p (fun i ->
             if exact || Frame.Mask.get m i then rv_lane v i else VInt 0))

(** Does the tree-walker leave this expression's inactive lanes intact
    (rather than inert [VInt 0])?  Only variable reads and ranges. *)
let exact_lanes = function EVar _ | ERange _ -> true | _ -> false

(* Typed lane "getters": [Some get] when the operand can be viewed as a
   uniform int/float/bool vector (broadcasting front-end scalars). *)

let int_get = function
  | RI a -> Some (fun i -> Array.unsafe_get a i)
  | RS (VInt n) -> Some (fun _ -> n)
  | _ -> None

let float_get = function
  | RR a -> Some (fun i -> Array.unsafe_get a i)
  | RI a -> Some (fun i -> float_of_int (Array.unsafe_get a i))
  | RS (VReal x) -> Some (fun _ -> x)
  | RS (VInt n) ->
      let x = float_of_int n in
      Some (fun _ -> x)
  | _ -> None

let bool_get = function
  | RB a -> Some (fun i -> Array.unsafe_get a i)
  | RS (VBool b) -> Some (fun _ -> b)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Generic (boxed) fallbacks — the exact [Pval.lift1]/[lift2] semantics *)
(* ------------------------------------------------------------------ *)

let box_lift1 (m : Frame.Mask.t) f v =
  let p = Frame.Mask.length m in
  Array.init p (fun i ->
      if Frame.Mask.get m i then f (rv_lane v i) else VInt 0)

let box_lift2 (m : Frame.Mask.t) f a b =
  let p = Frame.Mask.length m in
  Array.init p (fun i ->
      if Frame.Mask.get m i then f (rv_lane a i) (rv_lane b i) else VInt 0)

(** Re-specialize a boxed lane vector by its {e active} lanes: when every
    active lane holds the same scalar type, return the unboxed typed
    vector so downstream operators stay on their fast paths.  Inactive
    lanes of computed temporaries are unobservable (every escape point
    launders them to inert [VInt 0]), so dropping their boxed
    representation is invisible. *)
let renorm (m : Frame.Mask.t) (vs : value array) : rv =
  let p = Array.length vs in
  let rec first i =
    if i >= p then p else if Frame.Mask.get m i then i else first (i + 1)
  in
  let f = first 0 in
  if f >= p then RP vs
  else
    match vs.(f) with
    | VInt _ ->
        let r = Array.make p 0 in
        let ok = ref true in
        for i = f to p - 1 do
          if Frame.Mask.get m i then
            match vs.(i) with VInt x -> r.(i) <- x | _ -> ok := false
        done;
        if !ok then RI r else RP vs
    | VReal _ ->
        let r = Array.make p 0.0 in
        let ok = ref true in
        for i = f to p - 1 do
          if Frame.Mask.get m i then
            match vs.(i) with VReal x -> r.(i) <- x | _ -> ok := false
        done;
        if !ok then RR r else RP vs
    | VBool _ ->
        let r = Array.make p false in
        let ok = ref true in
        for i = f to p - 1 do
          if Frame.Mask.get m i then
            match vs.(i) with VBool x -> r.(i) <- x | _ -> ok := false
        done;
        if !ok then RB r else RP vs
    | _ -> RP vs

(* ------------------------------------------------------------------ *)
(* Operator fast paths                                                 *)
(* ------------------------------------------------------------------ *)

(** Typed vector kernel for [op], or [None] to fall back to the boxed
    path.  Division and MOD by zero are only checked on active lanes (the
    tree-walker never computes inactive lanes); every other fast path is
    exception-free, so it may compute all lanes.

    Every lane loop dispatches through [exec.x_run]: one inline call for
    the serial engines, one shard per pool worker for the parallel one.
    Shards write disjoint index ranges of the shared result buffers, so
    the loops need no further coordination; a shard that raises (division
    by zero) surfaces as the lowest-shard — i.e. first-failing-lane —
    error, exactly as the serial scan. *)
let fast_binop (exec : Pool.exec) op : Frame.Mask.t -> rv -> rv -> rv option =
  (* The shapes are matched directly (rather than through the [*_get]
     closures) so the hot combinations run as monomorphic loops with a
     single indirect call per lane.  [ri]/[rr]/[rb] are per-site result
     buffers: a site's previous result is always consumed (copied into
     frame storage, a mask, a Pval, ...) before the site can evaluate
     again, so reusing them is invisible — evaluation allocates nothing
     on these paths beyond the dispatch closure. *)
  let p = exec.Pool.x_p in
  let run = exec.Pool.x_run in
  let ri = Array.make p 0 in
  let rr = Array.make p 0.0 in
  let rb = Array.make p false in
  let arith fi fr _m a b =
    match (a, b) with
    | RI x, RI y ->
        let r = ri in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (fi (Array.unsafe_get x i) (Array.unsafe_get y i))
            done);
        Some (RI r)
    | RI x, RS (VInt n) ->
        let r = ri in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (fi (Array.unsafe_get x i) n)
            done);
        Some (RI r)
    | RS (VInt n), RI y ->
        let r = ri in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (fi n (Array.unsafe_get y i))
            done);
        Some (RI r)
    | RR x, RR y ->
        let r = rr in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (fr (Array.unsafe_get x i) (Array.unsafe_get y i))
            done);
        Some (RR r)
    | RR x, RS (VReal c) ->
        let r = rr in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (fr (Array.unsafe_get x i) c)
            done);
        Some (RR r)
    | RS (VReal c), RR y ->
        let r = rr in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (fr c (Array.unsafe_get y i))
            done);
        Some (RR r)
    | _ -> (
        (* remaining mixed promotions (int lanes with real operands, ...) *)
        match (float_get a, float_get b) with
        | Some ga, Some gb ->
            let r = Array.make p 0.0 in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (fr (ga i) (gb i))
                done);
            Some (RR r)
        | _ -> None)
  in
  let cmp test _m a b =
    match (a, b) with
    | RI x, RI y ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test
                   (Int.compare (Array.unsafe_get x i) (Array.unsafe_get y i)))
            done);
        Some (RB r)
    | RI x, RS (VInt n) ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test (Int.compare (Array.unsafe_get x i) n))
            done);
        Some (RB r)
    | RS (VInt n), RI y ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test (Int.compare n (Array.unsafe_get y i)))
            done);
        Some (RB r)
    | RR x, RR y ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test
                   (Float.compare (Array.unsafe_get x i)
                      (Array.unsafe_get y i)))
            done);
        Some (RB r)
    | RR x, RS (VReal c) ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test (Float.compare (Array.unsafe_get x i) c))
            done);
        Some (RB r)
    | RS (VReal c), RR y ->
        let r = rb in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i
                (test (Float.compare c (Array.unsafe_get y i)))
            done);
        Some (RB r)
    | _ -> (
        match (int_get a, int_get b) with
        | Some ga, Some gb ->
            let r = Array.make p false in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (test (Int.compare (ga i) (gb i)))
                done);
            Some (RB r)
        | _ -> (
            match (float_get a, float_get b) with
            | Some ga, Some gb ->
                let r = Array.make p false in
                run (fun _ lo hi ->
                    for i = lo to hi - 1 do
                      Array.unsafe_set r i
                        (test (Float.compare (ga i) (gb i)))
                    done);
                Some (RB r)
            | _ -> (
                match (bool_get a, bool_get b) with
                | Some ga, Some gb ->
                    let r = Array.make p false in
                    run (fun _ lo hi ->
                        for i = lo to hi - 1 do
                          Array.unsafe_set r i
                            (test (Bool.compare (ga i) (gb i)))
                        done);
                    Some (RB r)
                | _ -> None)))
  in
  let logic f _m a b =
    match (bool_get a, bool_get b) with
    | Some ga, Some gb ->
        let r = Array.make p false in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              Array.unsafe_set r i (f (ga i) (gb i))
            done);
        Some (RB r)
    | _ -> None
  in
  let div_like name fi fr m a b =
    match (int_get a, int_get b) with
    | Some ga, Some gb ->
        let r = ri in
        run (fun _ lo hi ->
            for i = lo to hi - 1 do
              if Frame.Mask.get m i then begin
                let y = gb i in
                if y = 0 then Errors.runtime_error "%s" name;
                r.(i) <- fi (ga i) y
              end
            done);
        Some (RI r)
    | _ -> (
        match (float_get a, float_get b) with
        | Some ga, Some gb ->
            let r = Array.make p 0.0 in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (fr (ga i) (gb i))
                done);
            Some (RR r)
        | _ -> None)
  in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> div_like "integer division by zero" ( / ) ( /. )
  | Mod -> div_like "MOD by zero" (fun x y -> x mod y) Float.rem
  | Eq -> cmp (fun c -> c = 0)
  | Ne -> cmp (fun c -> c <> 0)
  | Lt -> cmp (fun c -> c < 0)
  | Le -> cmp (fun c -> c <= 0)
  | Gt -> cmp (fun c -> c > 0)
  | Ge -> cmp (fun c -> c >= 0)
  | And -> logic ( && )
  | Or -> logic ( || )
  | Pow -> fun _ _ _ -> None (* int/real result split is per-lane: boxed *)

(* ------------------------------------------------------------------ *)
(* Subscripts                                                          *)
(* ------------------------------------------------------------------ *)

(** [(per-lane index, is-plural)] — the compiled [Vm.lane_indices]:
    front-end subscripts convert eagerly, plural ones per lane at use. *)
let rv_sel v : (int -> int) * bool =
  match v with
  | RS s ->
      let n = as_int s in
      ((fun _ -> n), false)
  | RI a -> ((fun i -> Array.unsafe_get a i), true)
  | RR a -> ((fun i -> as_int (VReal a.(i))), true)
  | RB a -> ((fun i -> as_int (VBool a.(i))), true)
  | RP a -> ((fun i -> as_int a.(i)), true)
  | RA _ -> Errors.runtime_error "array-valued subscript"

(* ------------------------------------------------------------------ *)
(* Mask splitting (WHERE / plural IF)                                  *)
(* ------------------------------------------------------------------ *)

let first_active (m : Frame.Mask.t) =
  let n = Frame.Mask.length m in
  let rec go i = if i >= n || Frame.Mask.get m i then i else go (i + 1) in
  go 0

(** Partition [parent] into [mt] (condition holds) and [mf] (does not),
    writing into the preallocated per-site buffers.  Only active lanes
    evaluate the condition, exactly like the tree-walker's [and_mask].
    The unboxed [RB] split shards over [exec]: each shard fills its own
    byte range of the two masks and reports a partial active count,
    summed on the control thread. *)
let split_mask (exec : Pool.exec) (parent : Frame.Mask.t) cv
    (mt : Frame.Mask.t) (mf : Frame.Mask.t) =
  Frame.Mask.clear mt;
  Frame.Mask.clear mf;
  let p = Frame.Mask.length parent in
  match cv with
  | RS s ->
      if Frame.Mask.active parent > 0 then begin
        let dst = if as_bool s then mt else mf in
        Bytes.blit parent.Frame.Mask.bits 0 dst.Frame.Mask.bits 0 p;
        dst.Frame.Mask.active_n <- parent.Frame.Mask.active_n
      end
  | RA _ ->
      if Frame.Mask.active parent > 0 then
        Errors.runtime_error "front-end array used as a plural value"
  | RB a ->
      let bp = parent.Frame.Mask.bits in
      let bt = mt.Frame.Mask.bits and bf = mf.Frame.Mask.bits in
      let ns = Pool.nshards exec in
      if ns = 1 then begin
        let nt = ref 0 and nf = ref 0 in
        for i = 0 to p - 1 do
          if Bytes.unsafe_get bp i <> '\000' then
            if Array.unsafe_get a i then begin
              Bytes.unsafe_set bt i '\001';
              incr nt
            end
            else begin
              Bytes.unsafe_set bf i '\001';
              incr nf
            end
        done;
        mt.Frame.Mask.active_n <- !nt;
        mf.Frame.Mask.active_n <- !nf
      end
      else begin
        let nts = Array.make ns 0 and nfs = Array.make ns 0 in
        exec.Pool.x_run (fun s lo hi ->
            let nt = ref 0 and nf = ref 0 in
            for i = lo to hi - 1 do
              if Bytes.unsafe_get bp i <> '\000' then
                if Array.unsafe_get a i then begin
                  Bytes.unsafe_set bt i '\001';
                  incr nt
                end
                else begin
                  Bytes.unsafe_set bf i '\001';
                  incr nf
                end
            done;
            nts.(s) <- !nt;
            nfs.(s) <- !nf);
        mt.Frame.Mask.active_n <- Array.fold_left ( + ) 0 nts;
        mf.Frame.Mask.active_n <- Array.fold_left ( + ) 0 nfs
      end
  | RP vs ->
      for i = 0 to p - 1 do
        if Frame.Mask.get parent i then
          if as_bool vs.(i) then Frame.Mask.set mt i true
          else Frame.Mask.set mf i true
      done
  | (RI _ | RR _) when Frame.Mask.active parent > 0 ->
      (* as_bool on the first active lane raises the tree-walker's error *)
      ignore (as_bool (rv_lane cv (first_active parent)))
  | RI _ | RR _ -> ()

(* ------------------------------------------------------------------ *)
(* Variable writes                                                     *)
(* ------------------------------------------------------------------ *)

(** Masked store into an existing plural slot.  Type-matched writes go
    straight into the unboxed storage, sharded over [exec] (disjoint
    lane ranges of the destination vector); a type-changing write
    renormalizes through the boxed view on the control thread (producing
    exactly the mixed array the tree-walker would hold, modulo
    re-specialization). *)
let write_plural (exec : Pool.exec) frame si lanes (m : Frame.Mask.t) rhs =
  let p = Frame.Mask.length m in
  let run = exec.Pool.x_run in
  let renorm () =
    let vs = Frame.values_of_lanes lanes in
    for i = 0 to p - 1 do
      if Frame.Mask.get m i then vs.(i) <- rv_lane rhs i
    done;
    Frame.set frame si (Frame.Plural (Frame.lanes_of_values vs))
  in
  match (lanes, rhs) with
  | Frame.LInt d, RI s ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- Array.unsafe_get s i
          done)
  | Frame.LInt d, RS (VInt x) ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- x
          done)
  | Frame.LReal d, RR s ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- Array.unsafe_get s i
          done)
  | Frame.LReal d, RS (VReal x) ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- x
          done)
  | Frame.LBool d, RB s ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- Array.unsafe_get s i
          done)
  | Frame.LBool d, RS (VBool x) ->
      run (fun _ lo hi ->
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then d.(i) <- x
          done)
  | _ -> renorm ()

(** First assignment to an unbound name: the tree-walker binds a scalar,
    a global, or a fresh plural whose inactive lanes are [VInt 0]. *)
let bind_fresh frame si p (m : Frame.Mask.t) rhs =
  match rhs with
  | RS v -> Frame.set frame si (Frame.Scalar (ref v))
  | RA a -> Frame.set frame si (Frame.Global a)
  | _ ->
      let full = Frame.Mask.active m = p in
      let lanes =
        match rhs with
        | RI a when full -> Frame.LInt (Array.copy a)
        | RR a when full -> Frame.LReal (Array.copy a)
        | RB a when full -> Frame.LBool (Array.copy a)
        | RI a ->
            let d = Array.make p 0 in
            for i = 0 to p - 1 do
              if Frame.Mask.get m i then d.(i) <- a.(i)
            done;
            Frame.LInt d
        | _ ->
            let fresh = Array.make p (VInt 0) in
            for i = 0 to p - 1 do
              if Frame.Mask.get m i then fresh.(i) <- rv_lane rhs i
            done;
            Frame.lanes_of_values fresh
      in
      Frame.set frame si (Frame.Plural lanes)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type env = {
  host : host;
  frame : Frame.t;
  p : int;
  exec : Pool.exec;  (** lane-loop dispatcher: serial or pool-sharded *)
  mutable cur_loc : Errors.pos;
      (** location of the [SLoc] wrapper being compiled; every tick site
          captures it at compile time, so the run-time closures carry
          their source attribution for free *)
}
type cexpr = Frame.Mask.t -> rv
type cstmt = Frame.Mask.t -> unit

let slot_of env name =
  match Frame.slot_index env.frame name with
  | Some i -> i
  | None -> invalid_arg ("Compile: unresolved variable " ^ name)

let observe env (m : Frame.Mask.t) s =
  match env.host.h_observer () with
  | None -> ()
  | Some f ->
      (* observers read VM state (occupancy traces): expose it first *)
      env.host.h_flush ();
      f ~mask:(Frame.Mask.to_bool_array m) s

let rec compile_expr env (e : expr) : cexpr =
  match e with
  | EInt n ->
      let v = RS (VInt n) in
      fun _ -> v
  | EReal f ->
      let v = RS (VReal f) in
      fun _ -> v
  | EBool b ->
      let v = RS (VBool b) in
      fun _ -> v
  | ERange (lo, hi) ->
      let clo = compile_expr env lo and chi = compile_expr env hi in
      let p = env.p in
      fun m ->
        let lo = rv_front_int (clo m) in
        let hi = rv_front_int (chi m) in
        let n = max 0 (hi - lo + 1) in
        if n = p then RI (Array.init n (fun i -> lo + i))
        else RA (AInt (Nd.of_array (Array.init n (fun i -> lo + i))))
  | EVar v -> (
      let frame = env.frame in
      match Frame.slot_index frame v with
      | None -> fun _ -> Errors.runtime_error "undefined variable %s" v
      | Some si -> (
          fun _ ->
            match Frame.get frame si with
            | Frame.Unbound -> Errors.runtime_error "undefined variable %s" v
            | Frame.Scalar r -> RS !r
            | Frame.Plural (Frame.LInt a) -> RI a
            | Frame.Plural (Frame.LReal a) -> RR a
            | Frame.Plural (Frame.LBool a) -> RB a
            | Frame.Plural (Frame.LBox a) -> RP (Array.copy a)
            | Frame.Global a | Frame.PluralArr a -> RA a))
  | EUn (op, a) -> compile_unop env op (compile_expr env a)
  | EBin (op, a, b) ->
      compile_binop env op (compile_expr env a) (compile_expr env b)
  | ECall (name, args) -> compile_call env name args
  | EIdx (name, args) -> compile_index env name args

and compile_unop env op ca : cexpr =
  let gen = Scalar_ops.apply_unop op in
  let run = env.exec.Pool.x_run in
  let p = env.p in
  match op with
  | Neg -> (
      fun m ->
        match ca m with
        | RS x -> RS (gen x)
        | RI a ->
            let r = Array.make p 0 in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (-Array.unsafe_get a i)
                done);
            RI r
        | RR a ->
            let r = Array.make p 0.0 in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (-.Array.unsafe_get a i)
                done);
            RR r
        | RA _ ->
            Errors.runtime_error "array operand in a lane-wise operation"
        | v -> renorm m (box_lift1 m gen v))
  | Not -> (
      fun m ->
        match ca m with
        | RS x -> RS (gen x)
        | RB a ->
            let r = Array.make p false in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set r i (not (Array.unsafe_get a i))
                done);
            RB r
        | RA _ ->
            Errors.runtime_error "array operand in a lane-wise operation"
        | v -> renorm m (box_lift1 m gen v))

and compile_binop env op ca cb : cexpr =
  let app = Scalar_ops.apply_binop op in
  let fast = fast_binop env.exec op in
  fun m ->
    let a = ca m in
    let b = cb m in
    match (a, b) with
    | RS x, RS y -> RS (app x y)
    | RA _, _ | _, RA _ ->
        Errors.runtime_error "array operand in a lane-wise operation"
    | _ -> (
        match fast m a b with
        | Some r -> r
        | None -> renorm m (box_lift2 m app a b))

and compile_call env name args : cexpr =
  let key = String.lowercase_ascii name in
  if is_reduction key then compile_reduction env name key args
  else
    let cargs = List.map (compile_expr env) args in
    let p = env.p in
    let host = env.host in
    let run = env.exec.Pool.x_run in
    fun m ->
      match host.h_find_func key with
      | Some (f, pure) ->
          let vargs = List.map (fun c -> c m) cargs in
          if List.exists rv_is_plural vargs then begin
            (* exactly one call per active lane (callees may count
               invocations); inactive lanes keep the static [VInt 0].
               Only [pure] functions may run lane-parallel — an impure
               callee observes the serial ascending application order. *)
            let bp = m.Frame.Mask.bits in
            let vs = Array.make p (VInt 0) in
            (match vargs with
            | [ a; b ] when pure ->
                run (fun _ lo hi ->
                    for i = lo to hi - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then
                        Array.unsafe_set vs i (f [ rv_lane a i; rv_lane b i ])
                    done)
            | [ a; b ] ->
                for i = 0 to p - 1 do
                  if Bytes.unsafe_get bp i <> '\000' then
                    Array.unsafe_set vs i (f [ rv_lane a i; rv_lane b i ])
                done
            | _ when pure ->
                run (fun _ lo hi ->
                    for i = lo to hi - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then
                        Array.unsafe_set vs i
                          (f (List.map (fun v -> rv_lane v i) vargs))
                    done)
            | _ ->
                for i = 0 to p - 1 do
                  if Bytes.unsafe_get bp i <> '\000' then
                    Array.unsafe_set vs i
                      (f (List.map (fun v -> rv_lane v i) vargs))
                done);
            renorm m vs
          end
          else RS (f (List.map rv_front_scalar vargs))
      | None -> (
          let vargs = List.map (fun c -> c m) cargs in
          if List.exists rv_is_plural vargs then begin
            (* intrinsics are pure by construction: shardable *)
            let vs = Array.make p (VInt 0) in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i then
                    Array.unsafe_set vs i
                      (match
                         Intrinsics.apply key
                           (List.map (fun v -> rv_lane v i) vargs)
                       with
                      | Some r -> r
                      | None ->
                          Errors.runtime_error "unknown function %s" name)
                done);
            renorm m vs
          end
          else
            let scalar_args =
              List.map
                (function
                  | RS v -> v
                  | RA a -> VArr a
                  | RI _ | RR _ | RB _ | RP _ -> assert false)
                vargs
            in
            match Intrinsics.apply key scalar_args with
            | Some r -> RS r
            | None -> Errors.runtime_error "unknown function %s" name)

and compile_reduction env name key args : cexpr =
  let host = env.host in
  let loc = env.cur_loc in
  let carg =
    match args with [ a ] -> Some (compile_expr env a) | _ -> None
  in
  fun m ->
    host.h_reduction ~loc m;
    let v =
      match carg with
      | Some c -> c m
      | None -> Errors.runtime_error "%s expects one argument" name
    in
    match v with
    | RA a -> (
        match Intrinsics.apply key [ VArr a ] with
        | Some r -> RS r
        | None -> Errors.runtime_error "bad reduction %s" name)
    | RS s -> RS (reduce_scalar m name key s)
    | v ->
        let is_var = match args with [ Ast.EVar _ ] -> true | _ -> false in
        RS (reduce_plural env.exec ~is_var m name key v)

(** Reduction over a broadcast front-end scalar — [Pval.reduce]'s
    [FScalar] case: the scalar itself if any lane is active, the identity
    otherwise. *)
and reduce_scalar (m : Frame.Mask.t) name key s =
  let some_active = Frame.Mask.active m > 0 in
  match key with
  | "count" -> VInt (if as_bool s then Frame.Mask.active m else 0)
  | "any" -> if some_active then s else VBool false
  | "all" -> if some_active then s else VBool true
  | "maxval" | "minval" | "sum" ->
      if some_active then s else Pval.reduction_identity key s
  | _ -> Errors.runtime_error "unknown reduction %s" name

and reduce_plural (exec : Pool.exec) ~is_var (m : Frame.Mask.t) name key v =
  let p = Frame.Mask.length m in
  let run = exec.Pool.x_run in
  let ns = Pool.nshards exec in
  let nc = Pool.nchunks p in
  (* Typed folds over the canonical chunked merge tree (see [Pool] /
     [Pval.reduce]): one partial per 64-lane chunk, each initialized at
     its first active lane (so e.g. a lone NaN or -0.0 survives
     verbatim), merged left-to-right in ascending chunk order on the
     control thread.  The chunk grid depends only on [p], never on the
     shard layout, so the result — including a non-associative float
     SUM — is bitwise identical at any jobs count, and identical to the
     serial engines.  Shards fold whole chunks (shard boundaries are
     chunk-aligned). *)
  (* The tree-walker's witness reads lane 0 of the evaluated argument
     regardless of activity.  A plural-variable read ([is_var]) exposes
     the stored lane 0; any computed temporary holds the inert [VInt 0]
     in lanes that were masked off during its evaluation.  The witness
     only reaches the result on the empty-mask path (where lane 0 is
     necessarily inactive), so for temporaries that path must yield the
     integer identity even when the register is statically REAL. *)
  let witness () =
    if p = 0 then VInt 0
    else if (not is_var) && not (Frame.Mask.get m 0) then VInt 0
    else rv_lane v 0
  in
  let float_fold f =
    let ga = match float_get v with Some g -> g | None -> assert false in
    let parts = Array.make (max 1 nc) 0.0 in
    let filled = Bytes.make (max 1 nc) '\000' in
    run (fun _ lo hi ->
        for c = lo / Pool.chunk to ((hi + Pool.chunk - 1) / Pool.chunk) - 1 do
          let l = c * Pool.chunk and h = min hi ((c + 1) * Pool.chunk) in
          let acc = ref 0.0 and seen = ref false in
          for i = l to h - 1 do
            if Frame.Mask.get m i then
              if !seen then acc := f !acc (ga i)
              else begin
                acc := ga i;
                seen := true
              end
          done;
          if !seen then begin
            parts.(c) <- !acc;
            Bytes.unsafe_set filled c '\001'
          end
        done);
    let acc = ref 0.0 and seen = ref false in
    for c = 0 to nc - 1 do
      if Bytes.unsafe_get filled c <> '\000' then
        if !seen then acc := f !acc parts.(c)
        else begin
          acc := parts.(c);
          seen := true
        end
    done;
    if !seen then VReal !acc else Pval.reduction_identity key (witness ())
  in
  let int_fold f =
    let ga = match int_get v with Some g -> g | None -> assert false in
    let parts = Array.make (max 1 nc) 0 in
    let filled = Bytes.make (max 1 nc) '\000' in
    run (fun _ lo hi ->
        for c = lo / Pool.chunk to ((hi + Pool.chunk - 1) / Pool.chunk) - 1 do
          let l = c * Pool.chunk and h = min hi ((c + 1) * Pool.chunk) in
          let acc = ref 0 and seen = ref false in
          for i = l to h - 1 do
            if Frame.Mask.get m i then
              if !seen then acc := f !acc (ga i)
              else begin
                acc := ga i;
                seen := true
              end
          done;
          if !seen then begin
            parts.(c) <- !acc;
            Bytes.unsafe_set filled c '\001'
          end
        done);
    let acc = ref 0 and seen = ref false in
    for c = 0 to nc - 1 do
      if Bytes.unsafe_get filled c <> '\000' then
        if !seen then acc := f !acc parts.(c)
        else begin
          acc := parts.(c);
          seen := true
        end
    done;
    if !seen then VInt !acc else Pval.reduction_identity key (witness ())
  in
  (* Boxed fallback: the same chunk grid, folded serially on the control
     thread (mixed-type lanes are the slow path already) — bit-identical
     to [Pval.reduce]'s grouping. *)
  let generic f empty =
    let acc = ref None in
    for c = 0 to nc - 1 do
      let l = c * Pool.chunk and h = min p ((c + 1) * Pool.chunk) in
      let part = ref None in
      for i = l to h - 1 do
        if Frame.Mask.get m i then
          let x = rv_lane v i in
          part := Some (match !part with None -> x | Some a -> f a x)
      done;
      match !part with
      | None -> ()
      | Some pv ->
          acc := Some (match !acc with None -> pv | Some a -> f a pv)
    done;
    match !acc with Some r -> r | None -> empty
  in
  match (key, v) with
  | "count", RB a ->
      let parts = Array.make ns 0 in
      run (fun s lo hi ->
          let n = ref 0 in
          for i = lo to hi - 1 do
            if Frame.Mask.get m i && Array.unsafe_get a i then incr n
          done;
          parts.(s) <- !n);
      VInt (Array.fold_left ( + ) 0 parts)
  | "count", _ ->
      let n = ref 0 in
      for i = 0 to p - 1 do
        if Frame.Mask.get m i && as_bool (rv_lane v i) then incr n
      done;
      VInt !n
  | "any", RB a ->
      let parts = Array.make ns false in
      run (fun s lo hi ->
          let r = ref false in
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then r := !r || Array.unsafe_get a i
          done;
          parts.(s) <- !r);
      VBool (Array.exists Fun.id parts)
  | "all", RB a ->
      let parts = Array.make ns true in
      run (fun s lo hi ->
          let r = ref true in
          for i = lo to hi - 1 do
            if Frame.Mask.get m i then r := !r && Array.unsafe_get a i
          done;
          parts.(s) <- !r);
      VBool (Array.for_all Fun.id parts)
  | "sum", RI _ -> int_fold ( + )
  | "sum", RR _ -> float_fold ( +. )
  | "maxval", RI _ -> int_fold (fun a x -> if a > x then a else x)
  | "maxval", RR _ ->
      float_fold (fun a x -> if Float.compare a x > 0 then a else x)
  | "minval", RI _ -> int_fold (fun a x -> if a < x then a else x)
  | "minval", RR _ ->
      float_fold (fun a x -> if Float.compare a x < 0 then a else x)
  | "any", _ ->
      generic (fun a b -> VBool (as_bool a || as_bool b)) (VBool false)
  | "all", _ ->
      generic (fun a b -> VBool (as_bool a && as_bool b)) (VBool true)
  | "maxval", _ ->
      generic
        (fun a b -> if as_bool (Scalar_ops.apply_binop Gt a b) then a else b)
        (Pval.reduction_identity key (witness ()))
  | "minval", _ ->
      generic
        (fun a b -> if as_bool (Scalar_ops.apply_binop Lt a b) then a else b)
        (Pval.reduction_identity key (witness ()))
  | "sum", _ ->
      generic
        (fun a b -> Scalar_ops.apply_binop Add a b)
        (Pval.reduction_identity key (witness ()))
  | _ -> Errors.runtime_error "unknown reduction %s" name

and compile_index env name args : cexpr =
  let frame = env.frame in
  let si = slot_of env name in
  let cargs = List.map (compile_expr env) args in
  let nargs = List.length args in
  let scratch = Array.make nargs 0 in
  let scratch1 = Array.make (nargs + 1) 0 in
  (* the name may turn out to be a function at run time (tree-walker
     falls back to the call path when the slot is unbound) *)
  let ccall = compile_call env name args in
  let p = env.p in
  let exec = env.exec in
  let run = exec.Pool.x_run in
  (* per-site gather result buffers, reused like [fast_binop]'s *)
  let ri = Array.make p 0 in
  let rr = Array.make p 0.0 in
  let rb = Array.make p false in
  (* the generic gather paths stage each lane's subscript vector in a
     scratch buffer: the compile-time one serially, a fresh shard-local
     one per shard under the pool *)
  let local_scratch sc n = if Pool.nshards exec = 1 then sc else Array.make n 0
  in
  fun m ->
    match Frame.get frame si with
    | Frame.Scalar _ | Frame.Plural _ ->
        Errors.runtime_error "%s is a scalar but is indexed" name
    | Frame.Unbound -> ccall m
    | Frame.Global a -> (
        let ivs = List.map (fun c -> c m) cargs in
        match (ivs, a) with
        (* rank-1/rank-2 int-vector subscripts: gather via flat offsets,
           replicating [Nd.linear_index]'s bounds checks (same message,
           same dimension order, same first-failing-lane — shards check
           ascending and the pool rethrows the lowest shard's error) *)
        | [ RI ix ], AInt d when Nd.rank d = 1 ->
            let d1 = Nd.size d in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i then begin
                    let j = Array.unsafe_get ix i in
                    if j < 1 || j > d1 then
                      Errors.runtime_error
                        "index %d out of bounds 1..%d in dimension %d" j d1 1;
                    Array.unsafe_set ri i (Nd.get_flat d (j - 1))
                  end
                done);
            RI ri
        | [ RI ix ], AReal d when Nd.rank d = 1 ->
            let d1 = Nd.size d in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i then begin
                    let j = Array.unsafe_get ix i in
                    if j < 1 || j > d1 then
                      Errors.runtime_error
                        "index %d out of bounds 1..%d in dimension %d" j d1 1;
                    Array.unsafe_set rr i (Nd.get_flat d (j - 1))
                  end
                done);
            RR rr
        | [ RI ix1; RI ix2 ], AInt d when Nd.rank d = 2 ->
            let dims = Nd.dims d in
            let d1 = dims.(0) and d2 = dims.(1) in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i then begin
                    let j1 = Array.unsafe_get ix1 i in
                    if j1 < 1 || j1 > d1 then
                      Errors.runtime_error
                        "index %d out of bounds 1..%d in dimension %d" j1 d1 1;
                    let j2 = Array.unsafe_get ix2 i in
                    if j2 < 1 || j2 > d2 then
                      Errors.runtime_error
                        "index %d out of bounds 1..%d in dimension %d" j2 d2 2;
                    Array.unsafe_set ri i
                      (Nd.get_flat d (j1 - 1 + ((j2 - 1) * d1)))
                  end
                done);
            RI ri
        | [ RI ix1; RI ix2 ], AReal d when Nd.rank d = 2 ->
            let dims = Nd.dims d in
            let d1 = dims.(0) and d2 = dims.(1) in
            run (fun _ lo hi ->
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i then begin
                    let j1 = Array.unsafe_get ix1 i in
                    if j1 < 1 || j1 > d1 then
                      Errors.runtime_error
                        "index %d out of bounds 1..%d in dimension %d" j1 d1 1;
                    let j2 = Array.unsafe_get ix2 i in
                    if j2 < 1 || j2 > d2 then
                      Errors.runtime_error
                        "index %d out of bounds 1..%d in dimension %d" j2 d2 2;
                    Array.unsafe_set rr i
                      (Nd.get_flat d (j1 - 1 + ((j2 - 1) * d1)))
                  end
                done);
            RR rr
        | _ ->
        let sels = List.map rv_sel ivs in
        if List.exists snd sels then begin
          (* gather: one element per active lane *)
          let fs = Array.of_list (List.map fst sels) in
          let gather get =
            run (fun _ lo hi ->
                let sc = local_scratch scratch nargs in
                for i = lo to hi - 1 do
                  if Frame.Mask.get m i then begin
                    for k = 0 to nargs - 1 do
                      sc.(k) <- (Array.unsafe_get fs k) i
                    done;
                    get i sc
                  end
                done)
          in
          match a with
          | AInt d ->
              gather (fun i sc -> ri.(i) <- Nd.get d sc);
              RI ri
          | AReal d ->
              gather (fun i sc -> rr.(i) <- Nd.get d sc);
              RR rr
          | ABool d ->
              gather (fun i sc -> rb.(i) <- Nd.get d sc);
              RB rb
        end
        else begin
          List.iteri (fun k (f, _) -> scratch.(k) <- f 0) sels;
          RS (arr_get a scratch)
        end)
    | Frame.PluralArr a -> (
        let sels = List.map (fun c -> rv_sel (c m)) cargs in
        let fs = Array.of_list (List.map fst sels) in
        let gather get =
          run (fun _ lo hi ->
              let sc = local_scratch scratch1 (nargs + 1) in
              for i = lo to hi - 1 do
                if Frame.Mask.get m i then begin
                  sc.(0) <- i + 1;
                  for k = 0 to nargs - 1 do
                    sc.(k + 1) <- (Array.unsafe_get fs k) i
                  done;
                  get i sc
                end
              done)
        in
        match a with
        | AInt d ->
            gather (fun i sc -> ri.(i) <- Nd.get d sc);
            RI ri
        | AReal d ->
            gather (fun i sc -> rr.(i) <- Nd.get d sc);
            RR rr
        | ABool d ->
            gather (fun i sc -> rb.(i) <- Nd.get d sc);
            RB rb)

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)
(* ------------------------------------------------------------------ *)

and compile_assign env (l : lvalue) : Frame.Mask.t -> rv -> unit =
  let frame = env.frame in
  let si = slot_of env l.lv_name in
  let name = l.lv_name in
  match l.lv_index with
  | [] ->
      let p = env.p in
      fun m rhs -> (
        match Frame.get frame si with
        | Frame.Scalar r -> r := rv_front_scalar rhs
        | Frame.Plural lanes -> write_plural env.exec frame si lanes m rhs
        | Frame.Global a -> (
            match rhs with
            | RS v -> arr_fill a v
            | RA src ->
                if arr_size src <> arr_size a then
                  Errors.runtime_error "shape mismatch assigning to %s" name;
                for i = 0 to arr_size a - 1 do
                  arr_set_flat a i (arr_get_flat src i)
                done
            | RI _ | RR _ | RB _ | RP _ ->
                Errors.runtime_error "plural value assigned to whole array %s"
                  name)
        | Frame.PluralArr a -> (
            match rhs with
            | RS v -> arr_fill a v
            | _ ->
                Errors.runtime_error
                  "unsupported whole-plural-array assignment to %s" name)
        | Frame.Unbound -> bind_fresh frame si p m rhs)
  | idxs ->
      let cidx = List.map (compile_expr env) idxs in
      let nargs = List.length idxs in
      let scratch = Array.make nargs 0 in
      let scratch1 = Array.make (nargs + 1) 0 in
      let p = env.p in
      let exec = env.exec in
      let run = exec.Pool.x_run in
      let scatter a m rhs (fs : (int -> int) array) ~plural_arr =
        (* Several lanes may scatter to the {e same} element of a global
           array, and the machine model resolves the collision in lane
           order (last active lane wins), so global scatters always run
           serially on the control thread.  A plural array's leading
           subscript is the lane itself — element sets are shard-disjoint
           by construction — so that scatter shards, with a fresh
           subscript buffer per shard. *)
        let put sc =
          let off = if plural_arr then 1 else 0 in
          let idx i =
            if plural_arr then sc.(0) <- i + 1;
            for k = 0 to nargs - 1 do
              sc.(k + off) <- (Array.unsafe_get fs k) i
            done;
            sc
          in
          match (a, rhs) with
          | AInt d, RI s -> fun i -> Nd.set d (idx i) (Array.unsafe_get s i)
          | AReal d, RR s -> fun i -> Nd.set d (idx i) (Array.unsafe_get s i)
          | AReal d, RI s ->
              fun i -> Nd.set d (idx i) (float_of_int (Array.unsafe_get s i))
          | ABool d, RB s -> fun i -> Nd.set d (idx i) (Array.unsafe_get s i)
          | _ -> fun i -> arr_set a (idx i) (rv_lane rhs i)
        in
        if plural_arr && Pool.nshards exec > 1 then
          run (fun _ lo hi ->
              let f = put (Array.make (nargs + 1) 0) in
              for i = lo to hi - 1 do
                if Frame.Mask.get m i then f i
              done)
        else begin
          let f = put (if plural_arr then scratch1 else scratch) in
          for i = 0 to p - 1 do
            if Frame.Mask.get m i then f i
          done
        end
      in
      fun m rhs -> (
        match Frame.get frame si with
        | Frame.Unbound ->
            Errors.runtime_error "assignment to undeclared array %s" name
        | Frame.Scalar _ | Frame.Plural _ ->
            Errors.runtime_error "%s is scalar but indexed" name
        | Frame.Global a -> (
            let ivs = List.map (fun c -> c m) cidx in
            match (ivs, a, rhs) with
            (* rank-1 int-vector scatter via flat offsets (bounds checks
               as in [Nd.linear_index]) *)
            | [ RI ix ], AInt d, (RI _ | RS (VInt _)) when Nd.rank d = 1 ->
                let d1 = Nd.size d in
                let bp = m.Frame.Mask.bits in
                let check j =
                  if j < 1 || j > d1 then
                    Errors.runtime_error
                      "index %d out of bounds 1..%d in dimension %d" j d1 1
                in
                (match rhs with
                | RI s ->
                    for i = 0 to p - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then begin
                        let j = Array.unsafe_get ix i in
                        check j;
                        Nd.set_flat d (j - 1) (Array.unsafe_get s i)
                      end
                    done
                | RS (VInt x) ->
                    for i = 0 to p - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then begin
                        let j = Array.unsafe_get ix i in
                        check j;
                        Nd.set_flat d (j - 1) x
                      end
                    done
                | _ -> assert false)
            | [ RI ix ], AReal d, (RR _ | RI _ | RS (VReal _))
              when Nd.rank d = 1 ->
                let d1 = Nd.size d in
                let bp = m.Frame.Mask.bits in
                let check j =
                  if j < 1 || j > d1 then
                    Errors.runtime_error
                      "index %d out of bounds 1..%d in dimension %d" j d1 1
                in
                (match rhs with
                | RR s ->
                    for i = 0 to p - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then begin
                        let j = Array.unsafe_get ix i in
                        check j;
                        Nd.set_flat d (j - 1) (Array.unsafe_get s i)
                      end
                    done
                | RI s ->
                    for i = 0 to p - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then begin
                        let j = Array.unsafe_get ix i in
                        check j;
                        Nd.set_flat d (j - 1)
                          (float_of_int (Array.unsafe_get s i))
                      end
                    done
                | RS (VReal x) ->
                    for i = 0 to p - 1 do
                      if Bytes.unsafe_get bp i <> '\000' then begin
                        let j = Array.unsafe_get ix i in
                        check j;
                        Nd.set_flat d (j - 1) x
                      end
                    done
                | _ -> assert false)
            | _ ->
                let sels = List.map rv_sel ivs in
                if List.exists snd sels || rv_is_plural rhs then
                  scatter a m rhs
                    (Array.of_list (List.map fst sels))
                    ~plural_arr:false
                else begin
                  List.iteri (fun k (f, _) -> scratch.(k) <- f 0) sels;
                  arr_set a scratch (rv_front_scalar rhs)
                end)
        | Frame.PluralArr a ->
            let sels = List.map (fun c -> rv_sel (c m)) cidx in
            scatter a m rhs
              (Array.of_list (List.map fst sels))
              ~plural_arr:true)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and compile_stmt env (s : stmt) : cstmt =
  let host = env.host in
  let loc = env.cur_loc in
  match s with
  | SLoc (loc, s) ->
      (* compile the wrapped statement under its location; annotate
         runtime errors escaping the compiled closure (innermost located
         statement wins, already-located errors pass through) *)
      let saved = env.cur_loc in
      env.cur_loc <- loc;
      let cs = compile_stmt env s in
      env.cur_loc <- saved;
      fun m ->
        (try cs m
         with Errors.Runtime_error msg ->
           raise (Errors.Runtime_error_at (loc, msg)))
  | SComment _ | SLabel _ -> fun _ -> ()
  | SAssign (l, e) ->
      let ce = compile_expr env e in
      let casgn = compile_assign env l in
      fun m ->
        observe env m s;
        let rhs = ce m in
        if rv_is_plural rhs then
          host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Assign m
        else host.h_tick_frontend ();
        casgn m rhs
  | SCall (name, args) -> (
      let key = String.lowercase_ascii name in
      let cargs =
        List.map (fun e -> (compile_expr env e, exact_lanes e)) args
      in
      fun m ->
        observe env m s;
        match host.h_find_proc key with
        | None -> Errors.runtime_error "unknown subroutine %s" name
        | Some f ->
            host.h_call_metric key;
            host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Call m;
            let vargs =
              List.map (fun (c, exact) -> rv_to_pval ~exact m (c m)) cargs
            in
            host.h_flush ();
            f ~mask:(Frame.Mask.to_bool_array m) vargs;
            host.h_import ())
  | SIf (c, t, f) -> (
      let cc = compile_expr env c in
      let ct = compile_block env t and cf = compile_block env f in
      let mt = Frame.Mask.create_empty env.p in
      let mf = Frame.Mask.create_empty env.p in
      let exec = env.exec in
      fun m ->
        match cc m with
        | RS v ->
            host.h_tick_frontend ();
            if as_bool v then ct m else cf m
        | RA _ -> Errors.runtime_error "array condition"
        | _ ->
            (* plural IF runs as WHERE, and like the tree-walker's
               [SWhere] dispatch it re-evaluates the condition *)
            let cv = cc m in
            host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Where m;
            split_mask exec m cv mt mf;
            ct mt;
            cf mf)
  | SWhere (c, t, f) ->
      let cc = compile_expr env c in
      let ct = compile_block env t and cf = compile_block env f in
      let mt = Frame.Mask.create_empty env.p in
      let mf = Frame.Mask.create_empty env.p in
      let exec = env.exec in
      fun m ->
        let cv = cc m in
        host.h_tick_vector ~loc ~kind:Lf_obs.Trace.Where m;
        split_mask exec m cv mt mf;
        ct mt;
        cf mf
  | SWhile (c, body) ->
      let cc = compile_expr env c in
      let cb = compile_block env body in
      let p = env.p in
      fun m ->
        let continue_ () =
          match cc m with
          | RS v ->
              host.h_tick_frontend ();
              as_bool v
          | RA _ -> Errors.runtime_error "array condition"
          | RB a ->
              (* vector-controlled WHILE (§2): active lanes must agree;
                 unboxed comparison, no per-lane boxing *)
              host.h_tick_vector ~loc ~kind:Lf_obs.Trace.While m;
              let seen = ref false and v0 = ref false in
              for i = 0 to p - 1 do
                if Frame.Mask.get m i then
                  if not !seen then begin
                    v0 := Array.unsafe_get a i;
                    seen := true
                  end
                  else if Array.unsafe_get a i <> !v0 then
                    Errors.runtime_error
                      "vector-controlled WHILE with divergent lane values"
              done;
              !seen && !v0
          | cv ->
              host.h_tick_vector ~loc ~kind:Lf_obs.Trace.While m;
              let first = ref None in
              for i = 0 to p - 1 do
                if Frame.Mask.get m i then
                  let x = rv_lane cv i in
                  match !first with
                  | None -> first := Some x
                  | Some v0 ->
                      if not (Values.equal_value v0 x) then
                        Errors.runtime_error
                          "vector-controlled WHILE with divergent lane values"
              done;
              (match !first with None -> false | Some v0 -> as_bool v0)
        in
        while continue_ () do
          cb m
        done
  | SDoWhile (body, c) ->
      let cc = compile_expr env c in
      let cb = compile_block env body in
      fun m ->
        let go = ref true in
        while !go do
          cb m;
          go :=
            (match cc m with
            | RS v ->
                host.h_tick_frontend ();
                as_bool v
            | _ ->
                Errors.runtime_error "DO WHILE condition must be front-end")
        done
  | SDo (c, body) | SForall (c, body) ->
      let clo = compile_expr env c.d_lo in
      let chi = compile_expr env c.d_hi in
      let cstep = Option.map (compile_expr env) c.d_step in
      let cb = compile_block env body in
      let frame = env.frame in
      let si = slot_of env c.d_var in
      let set_var v =
        match Frame.get frame si with
        | Frame.Scalar r -> r := v
        | Frame.Unbound -> Frame.set frame si (Frame.Scalar (ref v))
        | _ ->
            Errors.runtime_error "%s is not a front-end scalar" c.d_var
      in
      fun m ->
        let lo = rv_front_int (clo m) in
        let hi = rv_front_int (chi m) in
        let step =
          match cstep with Some cs -> rv_front_int (cs m) | None -> 1
        in
        if step = 0 then Errors.runtime_error "DO loop with zero step";
        host.h_tick_frontend ();
        let i = ref lo in
        let cont () = if step > 0 then !i <= hi else !i >= hi in
        while cont () do
          set_var (VInt !i);
          cb m;
          host.h_tick_frontend ();
          i := !i + step
        done;
        (* Fortran: the DO variable keeps the first failing value *)
        set_var (VInt !i)
  | SGoto _ | SCondGoto _ ->
      fun _ -> Errors.runtime_error "GOTO is not part of F90simd"

and compile_block env (b : block) : cstmt =
  let cs = Array.of_list (List.map (compile_stmt env) b) in
  let n = Array.length cs in
  fun m ->
    for i = 0 to n - 1 do
      (Array.unsafe_get cs i) m
    done

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Every name a program can bind or reference as a variable, in first-use
    order: declarations, lvalues, DO variables, [EVar] and [EIdx] heads
    (an [EIdx] head that is really a function keeps an unbound slot and
    falls back to the call path at run time). *)
let var_names (prog : program) : string list =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  let add n =
    if not (Hashtbl.mem tbl n) then begin
      Hashtbl.replace tbl n ();
      order := n :: !order
    end
  in
  add "iproc";
  List.iter (fun d -> add d.dc_name) prog.p_decls;
  let rec ex = function
    | EInt _ | EReal _ | EBool _ -> ()
    | EVar v -> add v
    | EIdx (v, es) ->
        add v;
        List.iter ex es
    | EUn (_, a) -> ex a
    | EBin (_, a, b) ->
        ex a;
        ex b
    | ECall (_, es) -> List.iter ex es
    | ERange (a, b) ->
        ex a;
        ex b
  in
  let rec st = function
    | SLoc (_, s) -> st s
    | SComment _ | SLabel _ | SGoto _ -> ()
    | SCondGoto (e, _) -> ex e
    | SAssign (l, e) ->
        add l.lv_name;
        List.iter ex l.lv_index;
        ex e
    | SCall (_, es) -> List.iter ex es
    | SIf (e, t, f) | SWhere (e, t, f) ->
        ex e;
        blk t;
        blk f
    | SWhile (e, b) ->
        ex e;
        blk b
    | SDoWhile (b, e) ->
        blk b;
        ex e
    | SDo (c, b) | SForall (c, b) ->
        add c.d_var;
        ex c.d_lo;
        ex c.d_hi;
        Option.iter ex c.d_step;
        blk b
  and blk b = List.iter st b in
  blk prog.p_body;
  List.rev !order

let compile ~host ~frame ~exec (body : block) : Frame.Mask.t -> unit =
  assert (exec.Pool.x_p = host.h_p);
  let env = { host; frame; p = host.h_p; exec; cur_loc = Errors.no_pos } in
  compile_block env body
