(** Typed verifier for the slot-resolved IR ([Ir]).

    The optimizer's annotations are advisory — the emitter revalidates
    them against runtime shapes — but a wrong annotation can still turn
    into a silently different program (a scratch group shared by two
    live buffers, a full-mask claim inside a WHERE branch, a range claim
    that lets the emitter skip a bounds check that would have fired).
    The verifier independently re-derives every claim after lowering and
    after each optimizer phase, so a broken phase is caught at the phase
    boundary with a located, rule-coded diagnostic instead of surfacing
    as a bad answer three layers later.

    Checks are re-derivations, not replays: the scratch rule re-runs its
    own backward liveness over the linearized evaluation order, the
    range rule re-runs the abstract interpretation ([Lf_analysis.Range])
    and requires each claimed interval to {e contain} the re-derived one
    (claimed ⊇ derived ⊇ actual), and the parallel-scatter rule re-runs
    both disjointness provers.  Diagnostics reuse the [Lint] record so
    the CLIs render them with the same file/line/caret style as
    flattenlint, under a distinct IR-prefixed rule family. *)

open Lf_lang
open Ir
module Lint = Lf_analysis.Lint
module Range = Lf_analysis.Range
module Stats = Lf_obs.Stats

(** Rule codes with one-line summaries, for [flattenlint --rules]. *)
let rules =
  [
    ("IR001", "every slot reference resolves in the frame to the same name");
    ("IR002", "fused regions are postorder: operands precede users, \
               the root is last");
    ("IR003", "fused regions hold only fusible ops (no POW, no \
               non-intrinsic calls; reductions only as FReduce heads)");
    ("IR004", "scratch groups are interference-free: two buffers never \
               share a group while simultaneously live");
    ("IR005", "full-mask claims only outside WHERE/plural-IF branches; \
               location wrappers agree with their payload");
    ("IR006", "scatter-accumulate claims match the a(ix) = a(ix) + e \
               shape with a pure subscript");
    ("IR007", "every range claim contains the interval re-derived by \
               the value-range analysis");
    ("IR008", "every parallel-scatter claim is re-proved pairwise \
               lane-disjoint");
  ]

let rule_doc code = List.assoc_opt code rules

exception Error of Lint.diag list

(* ------------------------------------------------------------------ *)
(* Diagnostic accumulation with nearest enclosing location             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  frame : Frame.t;
  mutable diags : Lint.diag list;  (** reverse order *)
  mutable nchecks : int;
}

let fail ctx ~loc rule fmt =
  Fmt.kstr
    (fun msg ->
      ctx.diags <-
        {
          Lint.d_rule = rule;
          d_severity = Lint.Error;
          d_loc = loc;
          d_msg = msg;
        }
        :: ctx.diags)
    fmt

let check ctx ok ~loc rule fmt =
  ctx.nchecks <- ctx.nchecks + 1;
  if ok then Fmt.kstr (fun _ -> ()) fmt else fail ctx ~loc rule fmt

(* ------------------------------------------------------------------ *)
(* IR001 — slot resolution                                             *)
(* ------------------------------------------------------------------ *)

let check_slot ctx ~loc ~what slot name =
  let n = Frame.n_slots ctx.frame in
  check ctx
    (slot >= 0 && slot < n)
    ~loc "IR001" "%s: slot %d for %s outside frame (0..%d)" what slot name
    (n - 1);
  if slot >= 0 && slot < n then
    check ctx
      (Frame.name_of ctx.frame slot = name)
      ~loc "IR001" "%s: slot %d claims %s but frame holds %s" what slot name
      (Frame.name_of ctx.frame slot)

(* ------------------------------------------------------------------ *)
(* IR002/IR003 — fused-region well-formedness                          *)
(* ------------------------------------------------------------------ *)

let check_region ctx ~loc ~reduce_key rg =
  let n = Array.length rg.rg_ops in
  check ctx (n > 0) ~loc "IR002" "fused region is empty";
  Array.iteri
    (fun i op ->
      let operand what j =
        check ctx
          (j >= 0 && j < i)
          ~loc "IR002" "region op %d: %s operand %d not defined earlier" i
          what j
      in
      match op with
      | OConst _ -> ()
      | OVar (slot, name) -> check_slot ctx ~loc ~what:"region var" slot name
      | OUn (_, a) -> operand "unary" a
      | OBin (bop, a, b) ->
          check ctx (bop <> Ast.Pow) ~loc "IR003"
            "region op %d: POW is not fusible (per-lane int/real split)" i;
          operand "lhs" a;
          operand "rhs" b
      | OIntr (key, a) ->
          check ctx
            (List.mem key fusible_intrinsics)
            ~loc "IR003" "region op %d: %s is not a fusible intrinsic" i key;
          operand "intrinsic" a
      | OGather (slot, name, ix) ->
          check_slot ctx ~loc ~what:"region gather" slot name;
          Array.iter (operand "subscript") ix)
    rg.rg_ops;
  match reduce_key with
  | None -> ()
  | Some key ->
      check ctx (is_reduction key) ~loc "IR003"
        "fused reduction head %s is not a reduction" key

(* ------------------------------------------------------------------ *)
(* IR006 — scatter-accumulate shape                                    *)
(* ------------------------------------------------------------------ *)

(* Independent re-derivation of the pure-subscript predicate: constants,
   resolved variable reads and arithmetic over them (no calls, no
   gathers — evaluating those once where the unoptimized engine
   evaluates twice is observable). *)
let rec pure_subscript (e : expr) : bool =
  match e.x_node with
  | XConst _ | XVar (Some _, _) -> true
  | XUn (_, a) -> pure_subscript a
  | XBin (_, a, b) -> pure_subscript a && pure_subscript b
  | _ -> false

let check_accum ctx ~loc (s : stmt) =
  match s.s_node with
  | LAssign ({ l_slot; l_index = [ ix ]; _ }, rhs) ->
      check ctx (rhs.x_fused = None) ~loc "IR006"
        "accum claim on a fused right-hand side";
      (match rhs.x_node with
      | XBin (Ast.Add, g, _) -> (
          match g.x_node with
          | XIdx (gslot, gname, [ gix ]) ->
              check ctx (gslot = l_slot) ~loc "IR006"
                "accum claim gathers %s but stores slot %d" gname l_slot;
              check ctx
                (gix.x_ast = ix.x_ast)
                ~loc "IR006" "accum claim: gather and store subscripts differ";
              check ctx (pure_subscript ix) ~loc "IR006"
                "accum claim with an impure subscript"
          | _ ->
              fail ctx ~loc "IR006"
                "accum claim: right-hand side does not start with a gather \
                 of the stored array")
      | _ ->
          fail ctx ~loc "IR006" "accum claim on a non-addition right-hand side")
  | _ -> fail ctx ~loc "IR006" "accum claim on a non-scatter statement"

(* ------------------------------------------------------------------ *)
(* Structural walk (IR001/002/003/005/006 + claim collection)          *)
(* ------------------------------------------------------------------ *)

(* The statement's own expression trees, excluding nested blocks. *)
let own_exprs (s : stmt) : expr list =
  match s.s_node with
  | LLoc _ | LNop | LGoto -> []
  | LAssign (l, e) -> (e :: l.l_index)
  | LScall (_, args) -> List.map fst args
  | LIf (c, _, _) | LWhere (c, _, _) | LWhile (c, _) | LDoWhile (_, c) ->
      [ c ]
  | LDo (_, _, lo, hi, step, _) -> lo :: hi :: Option.to_list step

let rec check_expr ctx ~loc (e : expr) : unit =
  (match e.x_fused with
  | Some (FRegion rg) -> check_region ctx ~loc ~reduce_key:None rg
  | Some (FReduce (key, rg)) ->
      check_region ctx ~loc ~reduce_key:(Some key) rg
  | None -> ());
  match e.x_node with
  | XConst _ -> ()
  | XVar (Some slot, name) -> check_slot ctx ~loc ~what:"var" slot name
  | XVar (None, _) -> ()
  | XRange (a, b) | XBin (_, a, b) ->
      check_expr ctx ~loc a;
      check_expr ctx ~loc b
  | XUn (_, a) -> check_expr ctx ~loc a
  | XCall (_, args) -> List.iter (check_expr ctx ~loc) args
  | XIdx (slot, name, args) ->
      check_slot ctx ~loc ~what:"gather" slot name;
      List.iter (check_expr ctx ~loc) args

(** [claims]: per bare statement, the range-claimed subscript sites and
    the parallel-scatter marks, collected during the structural walk so
    the semantic rules (IR007/IR008) re-derive them in one analysis
    pass. *)
type claims = {
  mutable c_range : (Errors.pos option * Ast.stmt * expr) list;
  mutable c_par : (Errors.pos option * Ast.stmt * stmt) list;
}

let rec collect_ranges acc (e : expr) : expr list =
  let acc = if e.x_range <> None then e :: acc else acc in
  match e.x_node with
  | XConst _ | XVar _ -> acc
  | XRange (a, b) | XBin (_, a, b) ->
      collect_ranges (collect_ranges acc a) b
  | XUn (_, a) -> collect_ranges acc a
  | XCall (_, args) | XIdx (_, _, args) ->
      List.fold_left collect_ranges acc args

let rec check_stmt ctx cl ~loc ~full (s : stmt) : unit =
  (match s.s_node with
  | LLoc (_, inner) ->
      check ctx
        (s.s_full = inner.s_full)
        ~loc "IR005" "location wrapper and payload disagree on full-mask";
      check ctx (not s.s_accum) ~loc "IR006"
        "accum claim on a location wrapper";
      check ctx (not s.s_par) ~loc "IR008"
        "parallel-scatter claim on a location wrapper"
  | _ ->
      check ctx
        ((not s.s_full) || full)
        ~loc "IR005"
        "full-mask claim inside a WHERE/plural-IF branch";
      if s.s_accum then check_accum ctx ~loc s;
      List.iter
        (fun e ->
          List.iter
            (fun site -> cl.c_range <- (loc, s.s_ast, site) :: cl.c_range)
            (collect_ranges [] e))
        (own_exprs s);
      if s.s_par then cl.c_par <- (loc, s.s_ast, s) :: cl.c_par);
  List.iter (check_expr ctx ~loc) (own_exprs s);
  match s.s_node with
  | LLoc (pos, inner) -> check_stmt ctx cl ~loc:(Some pos) ~full inner
  | LAssign ({ l_slot; l_name; _ }, _) ->
      check_slot ctx ~loc ~what:"store" l_slot l_name
  | LDo (slot, name, _, _, _, b) ->
      check_slot ctx ~loc ~what:"loop var" slot name;
      Array.iter (check_stmt ctx cl ~loc ~full) b
  | LIf (_, t, f) | LWhere (_, t, f) ->
      Array.iter (check_stmt ctx cl ~loc ~full:false) t;
      Array.iter (check_stmt ctx cl ~loc ~full:false) f
  | LWhile (_, b) | LDoWhile (b, _) ->
      Array.iter (check_stmt ctx cl ~loc ~full) b
  | LNop | LGoto | LScall _ -> ()

(* ------------------------------------------------------------------ *)
(* IR004 — scratch interference                                        *)
(* ------------------------------------------------------------------ *)

(* Re-derivation of the linearized evaluation order (operands before
   operators, right siblings after left, subscripts after a store's
   right-hand side), independent of [Opt.plan_scratch]: buffer-owning
   sites are identified from the annotated tree, liveness is an exact
   backward scan over the linear step list, and a definition whose
   group is simultaneously live in another site is an IR004 error. *)
let check_scratch ctx (b : block) : unit =
  let sites : (expr * Errors.pos option) list ref = ref [] in
  let nsites = ref 0 in
  let steps : (int list * int option * Errors.pos option) list ref =
    ref []
  in
  let site_of : (expr * int) list ref = ref [] in
  let new_site ~loc e =
    let id = !nsites in
    incr nsites;
    sites := (e, loc) :: !sites;
    site_of := (e, id) :: !site_of;
    id
  in
  let site e =
    List.filter_map (fun (e', t) -> if e' == e then Some t else None) !site_of
  in
  let push uses def ~loc = steps := (uses, def, loc) :: !steps in
  let rec ex ~loc (e : expr) : int option =
    match e.x_fused with
    | Some (FRegion _) ->
        let t = new_site ~loc e in
        push [] (Some t) ~loc;
        Some t
    | Some (FReduce _) ->
        push [] None ~loc;
        None
    | None -> (
        match e.x_node with
        | XConst _ | XVar _ -> None
        | XRange (lo, hi) ->
            let a = ex ~loc lo in
            let b = ex ~loc hi in
            push (List.filter_map Fun.id [ a; b ]) None ~loc;
            None
        | XUn (_, a) ->
            let ta = ex ~loc a in
            let t = new_site ~loc e in
            push (Option.to_list ta) (Some t) ~loc;
            Some t
        | XBin (_, a, b) ->
            let ta = ex ~loc a in
            let tb = ex ~loc b in
            let t = new_site ~loc e in
            push (List.filter_map Fun.id [ ta; tb ]) (Some t) ~loc;
            Some t
        | XCall (name, args) when is_reduction name ->
            let ts = List.filter_map (ex ~loc) args in
            push ts None ~loc;
            None
        | XCall (_, args) | XIdx (_, _, args) ->
            let ts = List.filter_map (ex ~loc) args in
            let t = new_site ~loc e in
            push ts (Some t) ~loc;
            Some t)
  in
  let rec st ~loc (s : stmt) : unit =
    match s.s_node with
    | LLoc (pos, inner) -> st ~loc:(Some pos) inner
    | LNop | LGoto -> ()
    | LAssign (l, e) ->
        let te = ex ~loc e in
        let tix = List.filter_map (ex ~loc) l.l_index in
        let extra =
          (* the merged scatter-accumulate pass re-reads the gather, the
             addend and the gather's subscript after the normal
             evaluation steps; their buffers stay live through the
             store *)
          if s.s_accum then
            match e.x_node with
            | XBin (_, g, rest) ->
                site g @ site rest
                @ (match g.x_node with
                  | XIdx (_, _, [ gix ]) -> site gix
                  | _ -> [])
            | _ -> []
          else []
        in
        push (Option.to_list te @ tix @ extra) None ~loc
    | LScall (_, args) ->
        let ts = List.filter_map (fun (a, _) -> ex ~loc a) args in
        push ts None ~loc
    | LIf (c, t, f) | LWhere (c, t, f) ->
        let tc = ex ~loc c in
        push (Option.to_list tc) None ~loc;
        Array.iter (st ~loc) t;
        Array.iter (st ~loc) f
    | LWhile (c, b) ->
        let tc = ex ~loc c in
        push (Option.to_list tc) None ~loc;
        Array.iter (st ~loc) b
    | LDoWhile (b, c) ->
        Array.iter (st ~loc) b;
        let tc = ex ~loc c in
        push (Option.to_list tc) None ~loc
    | LDo (_, _, lo, hi, step, b) ->
        let ts =
          List.filter_map Fun.id
            [ ex ~loc lo; ex ~loc hi; Option.bind step (ex ~loc) ]
        in
        push ts None ~loc;
        Array.iter (st ~loc) b
  in
  Array.iter (st ~loc:None) b;
  let sites = Array.of_list (List.rev !sites) in
  let group t = (fst sites.(t)).x_scr in
  (* exact backward liveness over the linear evaluation order *)
  let live = Hashtbl.create 16 in
  List.iter
    (fun (uses, def, loc) ->
      (match def with
      | Some d when group d >= 0 ->
          Hashtbl.iter
            (fun o () ->
              if o <> d && group o = group d then
                check ctx false ~loc "IR004"
                  "scratch group %d shared by two simultaneously-live \
                   buffers (sites %d and %d)"
                  (group d) d o)
            live
      | _ -> ());
      Option.iter (Hashtbl.remove live) def;
      List.iter (fun u -> Hashtbl.replace live u ()) uses)
    !steps

(* ------------------------------------------------------------------ *)
(* IR007/IR008 — semantic claims against the re-derived analysis       *)
(* ------------------------------------------------------------------ *)

let check_claims ctx ~p (b : block) (cl : claims) : unit =
  if cl.c_range <> [] || cl.c_par <> [] then begin
    let ast = Array.to_list (Array.map (fun s -> s.s_ast) b) in
    let res = Range.analyze ~p ast in
    List.iter
      (fun (loc, stmt, site) ->
        match site.x_range with
        | None -> ()
        | Some claim -> (
            match Range.eval_at res stmt site.x_ast with
            | Some av ->
                check ctx
                  (Range.subsumes claim av.Range.a_iv)
                  ~loc "IR007"
                  "range claim %s does not contain the derived interval %s"
                  (Range.iv_to_string claim)
                  (Range.iv_to_string av.Range.a_iv)
            | None ->
                fail ctx ~loc "IR007"
                  "range claim %s at a statement the analysis cannot reach"
                  (Range.iv_to_string claim)))
      cl.c_range;
    List.iter
      (fun (loc, stmt, s) ->
        match s.s_node with
        | LAssign ({ l_index = [ ix ]; _ }, _) ->
            check ctx
              (Range.scatter_disjoint res ~p stmt ix.x_ast)
              ~loc "IR008"
              "parallel-scatter claim not re-provable lane-disjoint"
        | _ ->
            fail ctx ~loc "IR008"
              "parallel-scatter claim on a non-rank-1 store")
      cl.c_par
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let st_checks = Stats.counter ~section:Stats.Opt "verify.checks"
let st_phases = Stats.counter ~section:Stats.Opt "verify.phases"
let st_time = Stats.timer ~section:Stats.Volatile "verify.time_ns"

let run_checks frame (b : block) : ctx =
  let ctx = { frame; diags = []; nchecks = 0 } in
  let cl = { c_range = []; c_par = [] } in
  Array.iter (check_stmt ctx cl ~loc:None ~full:true) b;
  check_scratch ctx b;
  check_claims ctx ~p:frame.Frame.p b cl;
  ctx

(** Verify one phase's output.  @raise Error with the accumulated
    diagnostics (source order) when any rule fails; [phase] is cited in
    each message so a failure names the pass that broke the IR. *)
let check_ir ~(frame : Frame.t) ~(phase : string) (b : block) : unit =
  let ctx =
    if Stats.enabled () then Stats.span st_time (fun () -> run_checks frame b)
    else run_checks frame b
  in
  if Stats.enabled () then begin
    Stats.add st_checks ctx.nchecks;
    Stats.incr st_phases
  end;
  if ctx.diags <> [] then
    raise
      (Error
         (List.rev_map
            (fun d ->
              { d with Lint.d_msg = d.Lint.d_msg ^ " [after " ^ phase ^ "]" })
            ctx.diags))
