(** Slot-resolved intermediate representation between [Compile] and
    execution.

    Lowering mirrors the AST one-to-one — every [Ast.expr]/[Ast.stmt]
    constructor has a counterpart here — but variable references are
    resolved to dense [Frame] slots once, at lowering time, and every
    node carries its source expression so the emitter can replay the
    tree-walker's exact behaviour (observer callbacks receive original
    statements, [EIdx] heads that turn out to be functions fall back to
    the call path, reduction witnesses distinguish bare variable
    arguments).

    The optimizer ([Opt]) never rewrites the shape of the tree (except
    for constant folding); it {e annotates} it:
    - [x_fused] marks a subtree that may be evaluated as a single
      per-lane fused region ([region]) — or, on a reduction call, folded
      directly into the canonical chunked merge tree ([FReduce]);
    - [x_scr] assigns the node's result buffer to a recycled scratch
      group in [Frame] (set by the liveness pass; [-1] = private
      per-site buffers, the [-O0] behaviour);
    - [s_full] marks statements whose context mask is provably the full
      entry mask (never nested under WHERE / a plural IF), letting fused
      loops drop the per-lane mask test;
    - [s_accum] marks a gather/accumulate/scatter assignment
      [a(ix) = a(ix) + e] whose final add can be merged into the
      scatter pass.

    A fused region is a postorder instruction array: operands precede
    users, the last instruction is the root.  Leaves are restricted to
    slot-resolved variable reads and literals (pure, so the emitter can
    evaluate and type them before committing to a fused loop), interior
    nodes to elementwise arithmetic / comparison / logic, a few unary
    numeric intrinsics, and global-array gathers. *)

open Lf_lang

(** Fused-region instruction; integer operands index earlier entries of
    the region's postorder array. *)
type rop =
  | OConst of Values.value
  | OVar of int * string  (** frame slot, source name *)
  | OUn of Ast.unop * int
  | OBin of Ast.binop * int * int
  | OIntr of string * int
      (** unary numeric intrinsic (abs, sqrt, exp, real, int, nint) by
          its lowercase key; only fusible when no user function shadows
          the name *)
  | OGather of int * string * int array
      (** global-array gather: frame slot, source name, subscript ops *)

type region = {
  rg_ops : rop array;  (** postorder; the last entry is the root *)
}

type fuse =
  | FRegion of region  (** evaluate this subtree as one fused loop *)
  | FReduce of string * region
      (** reduction call [key(arg)]: fold the fused argument region
          inside the chunked merge tree without materializing it *)

type expr = {
  x_ast : Ast.expr;  (** original source expression *)
  mutable x_node : xnode;
  mutable x_fused : fuse option;  (** set by [Opt.run] at [-O1] *)
  mutable x_scr : int;
      (** scratch group for this site's result buffers; [-1] = private *)
  mutable x_range : Lf_analysis.Range.iv option;
      (** claimed interval containing every active-lane integer value of
          this (subscript) expression, set by [Opt.run] at [-O2]; the
          emitter revalidates the resolved bounds against the array
          dimension before dropping per-lane checks *)
}

and xnode =
  | XConst of Values.value
  | XVar of int option * string  (** slot if resolvable *)
  | XRange of expr * expr
  | XUn of Ast.unop * expr
  | XBin of Ast.binop * expr * expr
  | XCall of string * expr list  (** function call, reductions included *)
  | XIdx of int * string * expr list

type lv = {
  l_slot : int;
  l_name : string;
  l_index : expr list;
}

type stmt = {
  s_ast : Ast.stmt;  (** original statement, handed to observers *)
  s_node : snode;
  mutable s_full : bool;  (** context mask provably full (set by [Opt]) *)
  mutable s_accum : bool;  (** scatter-accumulate peephole (set by [Opt]) *)
  mutable s_par : bool;
      (** scatter subscripts proven pairwise lane-disjoint (set by
          [Opt.run] at [-O2]), so the store may be sharded across
          domains; valid only while the entry [iproc] binding is
          canonical, which the emitter validates once per run *)
}

and snode =
  | LLoc of Errors.pos * stmt
  | LNop
  | LAssign of lv * expr
  | LScall of string * (expr * bool) list
      (** argument and its [exact_lanes] flag (variable / range reads
          expose true lane contents to procedures) *)
  | LIf of expr * block * block
  | LWhere of expr * block * block
  | LWhile of expr * block
  | LDoWhile of block * expr
  | LDo of int * string * expr * expr * expr option * block
      (** DO/FORALL: variable slot and name, lo, hi, step, body *)
  | LGoto

and block = stmt array

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let slot_of frame name =
  match Frame.slot_index frame name with
  | Some i -> i
  | None -> invalid_arg ("Compile: unresolved variable " ^ name)

let is_reduction f =
  List.mem
    (String.lowercase_ascii f)
    [ "any"; "all"; "maxval"; "minval"; "sum"; "count" ]

(** Unary numeric intrinsics a fused region may absorb.  All are total
    on numeric operands (no per-lane failure), so they never add a
    raising class to a region; whether a user function shadows the name
    is checked when the region's runtime plan is built. *)
let fusible_intrinsics = [ "abs"; "sqrt"; "exp"; "real"; "int"; "nint" ]

(** Does the tree-walker leave this expression's inactive lanes intact
    (rather than inert [VInt 0])?  Only variable reads and ranges. *)
let exact_lanes = function Ast.EVar _ | Ast.ERange _ -> true | _ -> false

let rec lower_expr frame (e : Ast.expr) : expr =
  let node =
    match e with
    | Ast.EInt n -> XConst (Values.VInt n)
    | Ast.EReal f -> XConst (Values.VReal f)
    | Ast.EBool b -> XConst (Values.VBool b)
    | Ast.EVar v -> XVar (Frame.slot_index frame v, v)
    | Ast.ERange (lo, hi) -> XRange (lower_expr frame lo, lower_expr frame hi)
    | Ast.EUn (op, a) -> XUn (op, lower_expr frame a)
    | Ast.EBin (op, a, b) ->
        XBin (op, lower_expr frame a, lower_expr frame b)
    | Ast.ECall (name, args) ->
        XCall (name, List.map (lower_expr frame) args)
    | Ast.EIdx (name, args) ->
        XIdx (slot_of frame name, name, List.map (lower_expr frame) args)
  in
  { x_ast = e; x_node = node; x_fused = None; x_scr = -1; x_range = None }

let rec lower_stmt frame (s : Ast.stmt) : stmt =
  let node =
    match s with
    | Ast.SLoc (loc, inner) -> LLoc (loc, lower_stmt frame inner)
    | Ast.SComment _ | Ast.SLabel _ -> LNop
    | Ast.SAssign (l, e) ->
        LAssign
          ( {
              l_slot = slot_of frame l.Ast.lv_name;
              l_name = l.Ast.lv_name;
              l_index = List.map (lower_expr frame) l.Ast.lv_index;
            },
            lower_expr frame e )
    | Ast.SCall (name, args) ->
        LScall
          (name, List.map (fun a -> (lower_expr frame a, exact_lanes a)) args)
    | Ast.SIf (c, t, f) ->
        LIf (lower_expr frame c, lower_block frame t, lower_block frame f)
    | Ast.SWhere (c, t, f) ->
        LWhere (lower_expr frame c, lower_block frame t, lower_block frame f)
    | Ast.SWhile (c, b) -> LWhile (lower_expr frame c, lower_block frame b)
    | Ast.SDoWhile (b, c) ->
        LDoWhile (lower_block frame b, lower_expr frame c)
    | Ast.SDo (c, b) | Ast.SForall (c, b) ->
        LDo
          ( slot_of frame c.Ast.d_var,
            c.Ast.d_var,
            lower_expr frame c.Ast.d_lo,
            lower_expr frame c.Ast.d_hi,
            Option.map (lower_expr frame) c.Ast.d_step,
            lower_block frame b )
    | Ast.SGoto _ | Ast.SCondGoto _ -> LGoto
  in
  { s_ast = s; s_node = node; s_full = false; s_accum = false; s_par = false }

and lower_block frame (b : Ast.block) : block =
  Array.of_list (List.map (lower_stmt frame) b)

let of_block = lower_block

(* ------------------------------------------------------------------ *)
(* JSON dump (--dump-ir)                                               *)
(* ------------------------------------------------------------------ *)

module J = Lf_obs.Json

let value_json (v : Values.value) =
  match v with
  | Values.VInt n -> J.Int n
  | Values.VReal f -> J.Float f
  | Values.VBool b -> J.Bool b
  | Values.VArr _ -> J.Str "<array>"

let unop_name = function Ast.Neg -> "neg" | Ast.Not -> "not"

let binop_name = function
  | Ast.Add -> "add"
  | Ast.Sub -> "sub"
  | Ast.Mul -> "mul"
  | Ast.Div -> "div"
  | Ast.Mod -> "mod"
  | Ast.Pow -> "pow"
  | Ast.Eq -> "eq"
  | Ast.Ne -> "ne"
  | Ast.Lt -> "lt"
  | Ast.Le -> "le"
  | Ast.Gt -> "gt"
  | Ast.Ge -> "ge"
  | Ast.And -> "and"
  | Ast.Or -> "or"

let rop_json = function
  | OConst v -> J.Obj [ ("op", J.Str "const"); ("value", value_json v) ]
  | OVar (slot, name) ->
      J.Obj [ ("op", J.Str "var"); ("name", J.Str name); ("slot", J.Int slot) ]
  | OUn (op, a) ->
      J.Obj [ ("op", J.Str (unop_name op)); ("arg", J.Int a) ]
  | OBin (op, a, b) ->
      J.Obj [ ("op", J.Str (binop_name op)); ("lhs", J.Int a); ("rhs", J.Int b) ]
  | OIntr (key, a) ->
      J.Obj [ ("op", J.Str "intrinsic"); ("name", J.Str key); ("arg", J.Int a) ]
  | OGather (slot, name, ix) ->
      J.Obj
        [
          ("op", J.Str "gather");
          ("array", J.Str name);
          ("slot", J.Int slot);
          ("index", J.List (Array.to_list (Array.map (fun i -> J.Int i) ix)));
        ]

let region_json rg =
  J.List (Array.to_list (Array.map rop_json rg.rg_ops))

let with_annots e fields =
  let fields =
    match e.x_fused with
    | None -> fields
    | Some (FRegion rg) -> fields @ [ ("fused", region_json rg) ]
    | Some (FReduce (key, rg)) ->
        fields
        @ [ ("fused_reduce", J.Str key); ("fused", region_json rg) ]
  in
  let fields =
    if e.x_scr >= 0 then fields @ [ ("scratch", J.Int e.x_scr) ] else fields
  in
  let fields =
    match e.x_range with
    | None -> fields
    | Some iv ->
        fields @ [ ("range", J.Str (Lf_analysis.Range.iv_to_string iv)) ]
  in
  J.Obj fields

let rec expr_json e =
  match e.x_node with
  | XConst v -> with_annots e [ ("expr", J.Str "const"); ("value", value_json v) ]
  | XVar (slot, name) ->
      with_annots e
        [
          ("expr", J.Str "var");
          ("name", J.Str name);
          ( "slot",
            match slot with Some i -> J.Int i | None -> J.Null );
        ]
  | XRange (lo, hi) ->
      with_annots e
        [ ("expr", J.Str "range"); ("lo", expr_json lo); ("hi", expr_json hi) ]
  | XUn (op, a) ->
      with_annots e [ ("expr", J.Str (unop_name op)); ("arg", expr_json a) ]
  | XBin (op, a, b) ->
      with_annots e
        [
          ("expr", J.Str (binop_name op));
          ("lhs", expr_json a);
          ("rhs", expr_json b);
        ]
  | XCall (name, args) ->
      with_annots e
        [
          ("expr", J.Str "call");
          ("name", J.Str name);
          ("args", J.List (List.map expr_json args));
        ]
  | XIdx (slot, name, args) ->
      with_annots e
        [
          ("expr", J.Str "index");
          ("name", J.Str name);
          ("slot", J.Int slot);
          ("args", J.List (List.map expr_json args));
        ]

let rec stmt_json s =
  let base =
    match s.s_node with
    | LLoc (loc, inner) ->
        [
          ("stmt", J.Str "loc");
          ("line", J.Int loc.Errors.line);
          ("body", stmt_json inner);
        ]
    | LNop -> [ ("stmt", J.Str "nop") ]
    | LAssign (l, e) ->
        [
          ("stmt", J.Str "assign");
          ("target", J.Str l.l_name);
          ("slot", J.Int l.l_slot);
          ("index", J.List (List.map expr_json l.l_index));
          ("rhs", expr_json e);
        ]
    | LScall (name, args) ->
        [
          ("stmt", J.Str "call");
          ("name", J.Str name);
          ("args", J.List (List.map (fun (a, _) -> expr_json a) args));
        ]
    | LIf (c, t, f) ->
        [
          ("stmt", J.Str "if");
          ("cond", expr_json c);
          ("then", block_json t);
          ("else", block_json f);
        ]
    | LWhere (c, t, f) ->
        [
          ("stmt", J.Str "where");
          ("cond", expr_json c);
          ("then", block_json t);
          ("else", block_json f);
        ]
    | LWhile (c, b) ->
        [ ("stmt", J.Str "while"); ("cond", expr_json c); ("body", block_json b) ]
    | LDoWhile (b, c) ->
        [
          ("stmt", J.Str "dowhile");
          ("body", block_json b);
          ("cond", expr_json c);
        ]
    | LDo (_, v, lo, hi, step, b) ->
        [
          ("stmt", J.Str "do");
          ("var", J.Str v);
          ("lo", expr_json lo);
          ("hi", expr_json hi);
          ( "step",
            match step with Some s -> expr_json s | None -> J.Null );
          ("body", block_json b);
        ]
    | LGoto -> [ ("stmt", J.Str "goto") ]
  in
  let base = if s.s_full then base @ [ ("full_mask", J.Bool true) ] else base in
  let base = if s.s_accum then base @ [ ("accum", J.Bool true) ] else base in
  let base =
    if s.s_par then base @ [ ("par_scatter", J.Bool true) ] else base
  in
  J.Obj base

and block_json b = J.List (Array.to_list (Array.map stmt_json b))

let to_json ~opt (b : block) =
  J.Obj [ ("opt_level", J.Int opt); ("body", block_json b) ]
