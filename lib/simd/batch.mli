(** Batch run driver: execute a list of (program × p × engine × [-O] ×
    jobs) work items through one shared program cache ([Progcache]),
    streaming one jsonlint-valid manifest-style JSONL record per item.

    The driver exists for sweep workloads — bench grids, corpus replays,
    CI smoke matrices — where the same sources are executed many times
    across configurations: items sharing a cache key pay the front end
    once and run warm afterwards.  Items are isolated: a failing item
    (parse/type/runtime/verify error, fuel exhaustion, timeout, missing
    file) produces a `"status":"error"` record and the driver moves on;
    [run] returns whether any item failed so the CLI can exit 1.

    The work-list format ([items_of_json]) is a JSON array — or an
    object [{"jobs": [...]}] — of items:

    {[
      { "program": "path.f",        (required; source file)
        "p": 8,                     (required; lane count)
        "engine": "compiled",       ("tree-walk" | "compiled" | "parallel";
                                     default "compiled")
        "opt": 1,                   (0..2; default 1)
        "jobs": 2,                  (parallel engine shard bound; default
                                     machine count; serial engines: omit)
        "verify": false,
        "fuel": 50000000,
        "timeout_ms": 1000,         (wall-clock cutoff, enforced between
                                     vector steps via the VM observer)
        "repeat": 3,                (run the item N times — repeats > 1
                                     run warm; default 1)
        "kernel": "nbforce",        (opaque to the library; interpreted
                                     by the caller's [setup])
        "set":  {"k": "8"},         (scalar seeds, as on the simdsim CLI)
        "fill": {"l": "4,1,2,1"} }  (1-D array seeds)
    ]}

    A malformed work list raises [Bad_jobs] (the CLI maps it to the
    usage-error exit 124). *)

open Lf_lang

type item = {
  bi_program : string;
  bi_p : int;
  bi_engine : Vm.engine;
  bi_opt : int;
  bi_jobs : int option;
  bi_verify : bool;
  bi_fuel : int option;
  bi_timeout_ms : int option;
  bi_repeat : int;
  bi_kernel : string option;
  bi_sets : (string * string) list;
  bi_fills : (string * string) list;
}

exception Bad_jobs of string
(** Malformed work list (shape, types, ranges). *)

exception Bad_value of string
(** Malformed [set]/[fill] token; the message names the offending
    token.  Also raised by [scalar_value]/[fill_array], which [simdsim]
    shares for its [--set]/[--fill] flags. *)

(** ["8"] -> [VInt], ["0.5"] -> [VReal], ["true"]/["false"] -> [VBool];
    anything else raises [Bad_value] naming the token (the old behavior
    silently coerced unknown tokens to [VBool false]). *)
val scalar_value : string -> Values.value

(** Comma-separated literals -> 1-D int array when every item parses as
    int, else 1-D real array; a token that parses as neither raises
    [Bad_value] naming it (the old behavior was an uncaught [Failure]
    from [float_of_string]). *)
val fill_array : string -> Values.arr

val items_of_json : Lf_obs.Json.t -> item list
val load : string -> item list

(** Run the items in order.  [cache] defaults to a fresh
    [Progcache.create ()] shared across all items; [read] (default
    file-system read, memoized per path) supplies source text; [setup]
    runs on each item's fresh VM before the seeds are bound (the CLI
    uses it to interpret ["kernel"]); [emit] receives one JSONL record
    per item (status, timings, deterministic [Metrics] payload);
    [artifacts] names a directory (created if missing) receiving
    [item-NNN.metrics.json] and [item-NNN.state.txt] from each
    successful item's final repeat — deterministic artifacts that
    warm-vs-cold smoke tests byte-compare.  Returns [true] iff any item
    failed. *)
val run :
  ?cache:Progcache.t ->
  ?read:(string -> string) ->
  ?setup:(item -> Vm.t -> unit) ->
  ?emit:(Lf_obs.Json.t -> unit) ->
  ?artifacts:string ->
  item list ->
  bool
