(** Compile-then-execute engine for the SIMD VM.

    Lowers an F90simd block into OCaml closures over a [Frame]: variables
    are resolved to dense slots at compile time, plural int/real scalars
    stay unboxed, and the activity mask is a reusable bitset with a cached
    active count.  Execution is bit-identical to the tree-walker
    ([Vm.exec]) — same final variable state, same [Metrics], same errors —
    with one documented relaxation: the inactive lanes of {e computed}
    temporaries may hold garbage internally; the tree-walker's inert
    [VInt 0] is reinstated wherever those lanes can escape (fresh binds,
    external-procedure arguments).

    The engine talks to the VM through the [host] callback record, which
    keeps this module below [Vm] in the dependency order. *)

open Lf_lang

type host = {
  h_p : int;  (** number of lanes *)
  h_tick_vector :
    loc:Errors.pos -> kind:Lf_obs.Trace.kind -> Frame.Mask.t -> unit;
      (** account one vector step (may raise on fuel exhaustion); [loc]
          and [kind] are compile-time constants of the issuing site, and
          the mask caches its active count, so the host's trace emission
          is one flat branch when tracing is off *)
  h_tick_frontend : unit -> unit;  (** account one control-unit step *)
  h_reduction : loc:Errors.pos -> Frame.Mask.t -> unit;
      (** count a global reduction tree *)
  h_call_metric : string -> unit;  (** count an external CALL *)
  h_find_proc :
    string -> (mask:bool array -> Pval.t list -> unit) option;
  h_find_func : string -> ((Values.value list -> Values.value) * bool) option;
      (** user function and its purity flag; only pure functions may be
          applied lane-parallel *)
  h_observer : unit -> (mask:bool array -> Ast.stmt -> unit) option;
  h_flush : unit -> unit;  (** frame -> VM variable table *)
  h_import : unit -> unit;  (** VM variable table -> frame *)
}

val is_reduction : string -> bool

(** Every name the program can bind or reference as a variable, in
    first-use order (declarations, lvalues, DO variables, [EVar]/[EIdx]
    heads).  The frame passed to [compile] must cover at least these. *)
val var_names : Ast.program -> string list

(** [compile ~host ~frame ~exec ?opt body] returns the compiled body; run
    it by applying it to a full activity mask.  [exec] dispatches every
    per-lane loop: [Pool.serial_exec] gives the serial compiled engine,
    [Pool.parallel_exec] the lane-sharded parallel one — same closures,
    same bit-identical results (reductions fold the canonical chunked
    merge tree of [Pool] in every case).

    [opt] (default 1) selects the optimizer level applied to the
    slot-resolved IR ([Ir] / [Opt]) before emission: 0 compiles each AST
    node to its own lane loop; 1 fuses elementwise chains and reductions,
    recycles scratch buffers and simplifies provably-full masks; 2 adds
    range-analysis bounds-check discharge and parallel-scatter sharding
    — all with the same bit-identity contract as the engine itself.

    [verify] (default false) runs the independent IR verifier
    ([Verify.check_ir]) after lowering and after every optimizer phase;
    a broken invariant raises [Verify.Error] before emission. *)
val compile :
  host:host -> frame:Frame.t -> exec:Pool.exec -> ?opt:int -> ?verify:bool ->
  Ast.block -> Frame.Mask.t -> unit

(** The two halves of [compile], exposed for the program cache
    ([Progcache]): [lower] pays the front end (AST -> slot-resolved IR ->
    [Opt.run] at [opt], with [Verify.check_ir] at every phase boundary
    when [verify] is set); [emit] turns an already-lowered IR into the
    executable closure.  Emission never mutates the IR, so one lowered
    block may be emitted repeatedly — against the lowering frame or any
    other frame created with the identical name list and [p] (slot
    numbering is a function of the name list alone). *)
val lower : frame:Frame.t -> ?opt:int -> ?verify:bool -> Ast.block -> Ir.block

val emit :
  host:host -> frame:Frame.t -> exec:Pool.exec -> ?opt:int ->
  Ir.block -> Frame.Mask.t -> unit
