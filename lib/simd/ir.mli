(** Slot-resolved intermediate representation between [Compile] and
    execution: the AST with every variable reference resolved to a dense
    [Frame] slot, carrying the optimizer's annotations.

    Lowering mirrors the AST one-to-one and keeps each node's source
    expression/statement, so the emitter can replay the tree-walker's
    exact behaviour (observer callbacks receive original statements,
    index heads that turn out to be functions fall back to the call
    path, reduction witnesses distinguish bare variable arguments).

    [Opt.run] never rewrites the tree's shape (except constant folding);
    it {e annotates} it: [x_fused] (fused region / fused reduction),
    [x_scr] (scratch-pool group for the site's result buffers),
    [s_full] (context mask provably full) and [s_accum]
    (scatter-accumulate assignment). *)

open Lf_lang

(** Fused-region instruction; integer operands index earlier entries of
    the region's postorder array. *)
type rop =
  | OConst of Values.value
  | OVar of int * string  (** frame slot, source name *)
  | OUn of Ast.unop * int
  | OBin of Ast.binop * int * int
  | OIntr of string * int
      (** unary numeric intrinsic by its lowercase key; only fusible
          when no user function shadows the name *)
  | OGather of int * string * int array
      (** global-array gather: frame slot, source name, subscript ops *)

type region = {
  rg_ops : rop array;  (** postorder; the last entry is the root *)
}

type fuse =
  | FRegion of region  (** evaluate this subtree as one fused loop *)
  | FReduce of string * region
      (** reduction call [key(arg)]: fold the fused argument region
          inside the chunked merge tree without materializing it *)

type expr = {
  x_ast : Ast.expr;  (** original source expression *)
  mutable x_node : xnode;
  mutable x_fused : fuse option;  (** set by [Opt.run] at [-O1] *)
  mutable x_scr : int;
      (** scratch group for this site's result buffers; [-1] = private *)
  mutable x_range : Lf_analysis.Range.iv option;
      (** claimed interval containing every active-lane integer value of
          this (subscript) expression, set by [Opt.run] at [-O2] *)
}

and xnode =
  | XConst of Values.value
  | XVar of int option * string  (** slot if resolvable *)
  | XRange of expr * expr
  | XUn of Ast.unop * expr
  | XBin of Ast.binop * expr * expr
  | XCall of string * expr list  (** function call, reductions included *)
  | XIdx of int * string * expr list

type lv = {
  l_slot : int;
  l_name : string;
  l_index : expr list;
}

type stmt = {
  s_ast : Ast.stmt;  (** original statement, handed to observers *)
  s_node : snode;
  mutable s_full : bool;  (** context mask provably full (set by [Opt]) *)
  mutable s_accum : bool;  (** scatter-accumulate peephole (set by [Opt]) *)
  mutable s_par : bool;
      (** scatter subscripts proven pairwise lane-disjoint (set by
          [Opt.run] at [-O2]); valid only while the entry [iproc]
          binding is canonical *)
}

and snode =
  | LLoc of Errors.pos * stmt
  | LNop
  | LAssign of lv * expr
  | LScall of string * (expr * bool) list
      (** argument and its [exact_lanes] flag (variable / range reads
          expose true lane contents to procedures) *)
  | LIf of expr * block * block
  | LWhere of expr * block * block
  | LWhile of expr * block
  | LDoWhile of block * expr
  | LDo of int * string * expr * expr * expr option * block
      (** DO/FORALL: variable slot and name, lo, hi, step, body *)
  | LGoto

and block = stmt array

val is_reduction : string -> bool

(** Unary numeric intrinsics a fused region may absorb; all total on
    numeric operands. *)
val fusible_intrinsics : string list

(** Does the tree-walker leave this expression's inactive lanes intact
    (rather than inert [VInt 0])?  Only variable reads and ranges. *)
val exact_lanes : Ast.expr -> bool

(** Lower an AST block against a frame's name resolution.
    @raise Invalid_argument on a name absent from the frame. *)
val of_block : Frame.t -> Ast.block -> block

(** The [--dump-ir] rendering: the annotated tree as JSON, tagged with
    the optimizer level that produced the annotations. *)
val to_json : opt:int -> block -> Lf_obs.Json.t
