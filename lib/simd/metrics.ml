(** Execution counters of the SIMD VM.

    The central quantity is [steps]: the number of vector instructions
    issued by the (single) control unit.  Because every processor steps
    through every instruction — masked or not — [steps] is the SIMD time
    bound of the paper's Equation 2; [busy_lanes] measures how many of
    those lane-slots did useful work, so
    [utilization = busy_lanes / (steps * P)] quantifies the control-flow
    waste that loop flattening removes. *)

type t = {
  mutable steps : int;  (** vector instructions issued *)
  mutable busy_lanes : int;  (** sum over instructions of active lanes *)
  mutable lane_slots : int;  (** sum over instructions of P *)
  mutable frontend_steps : int;  (** scalar (control-unit-only) instructions *)
  mutable reductions : int;  (** global OR/MAX trees (ANY, MAXVAL, ...) *)
  calls : (string, int) Hashtbl.t;  (** per-subroutine call counts *)
}

let create () =
  {
    steps = 0;
    busy_lanes = 0;
    lane_slots = 0;
    frontend_steps = 0;
    reductions = 0;
    calls = Hashtbl.create 8;
  }

let vector_step m ~active ~p =
  m.steps <- m.steps + 1;
  m.busy_lanes <- m.busy_lanes + active;
  m.lane_slots <- m.lane_slots + p

let frontend_step m = m.frontend_steps <- m.frontend_steps + 1
let reduction m = m.reductions <- m.reductions + 1

let call m name =
  Hashtbl.replace m.calls name
    (1 + Option.value ~default:0 (Hashtbl.find_opt m.calls name))

let call_count m name = Option.value ~default:0 (Hashtbl.find_opt m.calls name)

let equal a b =
  let calls t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.calls [] |> List.sort compare
  in
  a.steps = b.steps && a.busy_lanes = b.busy_lanes
  && a.lane_slots = b.lane_slots
  && a.frontend_steps = b.frontend_steps
  && a.reductions = b.reductions
  && calls a = calls b

let utilization m =
  if m.lane_slots = 0 then 1.0
  else float_of_int m.busy_lanes /. float_of_int m.lane_slots

let to_json ?engine ?opt ?jobs m : Lf_obs.Json.t =
  let run =
    let field name f v = Option.map (fun v -> (name, f v)) v in
    List.filter_map Fun.id
      [
        field "engine" (fun e -> Lf_obs.Json.Str e) engine;
        field "opt" (fun o -> Lf_obs.Json.Int o) opt;
        field "jobs" (fun j -> Lf_obs.Json.Int j) jobs;
      ]
  in
  Lf_obs.Json.Obj
    ((if run = [] then [] else [ ("run", Lf_obs.Json.Obj run) ])
    @ [
      ("steps", Lf_obs.Json.Int m.steps);
      ("busy_lanes", Lf_obs.Json.Int m.busy_lanes);
      ("lane_slots", Lf_obs.Json.Int m.lane_slots);
      ("frontend_steps", Lf_obs.Json.Int m.frontend_steps);
      ("reductions", Lf_obs.Json.Int m.reductions);
      ("utilization", Lf_obs.Json.Float (utilization m));
      ( "calls",
        Lf_obs.Json.Obj
          (Hashtbl.fold (fun k v acc -> (k, Lf_obs.Json.Int v) :: acc) m.calls []
          |> List.sort compare) );
    ])

let pp ppf m =
  Fmt.pf ppf
    "steps=%d frontend=%d reductions=%d utilization=%.3f calls=[%a]" m.steps
    m.frontend_steps m.reductions (utilization m)
    Fmt.(
      list ~sep:(any "; ") (fun ppf (k, v) -> Fmt.pf ppf "%s:%d" k v))
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.calls []
    |> List.sort compare)
