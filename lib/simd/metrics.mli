(** Execution counters of the SIMD VM.  [steps] counts vector instructions
    issued by the single control unit — the paper's SIMD time unit
    (Eq. 2); [busy_lanes / lane_slots] measures how much of that lockstep
    work was useful, i.e. the control-flow waste flattening removes. *)

type t = {
  mutable steps : int;  (** vector instructions issued *)
  mutable busy_lanes : int;  (** active lanes summed over instructions *)
  mutable lane_slots : int;  (** P summed over instructions *)
  mutable frontend_steps : int;  (** scalar control-unit instructions *)
  mutable reductions : int;  (** global OR/MAX trees (ANY, MAXVAL, ...) *)
  calls : (string, int) Hashtbl.t;  (** per-subroutine vector-call counts *)
}

val create : unit -> t
val vector_step : t -> active:int -> p:int -> unit
val frontend_step : t -> unit
val reduction : t -> unit
val call : t -> string -> unit
val call_count : t -> string -> int

(** Counter-for-counter equality (including per-subroutine call counts);
    the engine-equivalence oracle for step accounting. *)
val equal : t -> t -> bool

(** [busy_lanes / lane_slots]; 1.0 when nothing ran. *)
val utilization : t -> float

(** All counters (including per-subroutine calls) as a JSON object — the
    payload of [simdsim --metrics-json]. *)
val to_json : t -> Lf_obs.Json.t

val pp : t Fmt.t
