(** Execution counters of the SIMD VM.  [steps] counts vector instructions
    issued by the single control unit — the paper's SIMD time unit
    (Eq. 2); [busy_lanes / lane_slots] measures how much of that lockstep
    work was useful, i.e. the control-flow waste flattening removes.

    {b Fusion invariance.}  Counters tick per {e source} operation, never
    per compiled closure: one [vector_step] per vector statement
    execution, one [frontend_step] per scalar statement, one [reduction]
    per reduction call, one [call] per vector CALL.  Expression
    evaluation itself never ticks.  The optimizer ([Opt], [-O1]) only
    merges and reorders {e expression-level} work — fused regions, fused
    reductions, direct stores — so an optimized run increments every
    counter exactly as the unoptimized run would, operator for original
    operator.  Any new fused path must preserve this: decide the tick
    (and its activity mask) from the source statement being executed,
    not from the number of closures that remain after fusion.  The
    [-O0]/[-O1] differential suite and the profile tie-out tests check
    the equality counter for counter. *)

type t = {
  mutable steps : int;  (** vector instructions issued *)
  mutable busy_lanes : int;  (** active lanes summed over instructions *)
  mutable lane_slots : int;  (** P summed over instructions *)
  mutable frontend_steps : int;  (** scalar control-unit instructions *)
  mutable reductions : int;  (** global OR/MAX trees (ANY, MAXVAL, ...) *)
  calls : (string, int) Hashtbl.t;  (** per-subroutine vector-call counts *)
}

val create : unit -> t
val vector_step : t -> active:int -> p:int -> unit
val frontend_step : t -> unit
val reduction : t -> unit
val call : t -> string -> unit
val call_count : t -> string -> int

(** Counter-for-counter equality (including per-subroutine call counts);
    the engine-equivalence oracle for step accounting. *)
val equal : t -> t -> bool

(** [busy_lanes / lane_slots]; 1.0 when nothing ran. *)
val utilization : t -> float

(** All counters (including per-subroutine calls) as a JSON object — the
    payload of [simdsim --metrics-json].  When any of [engine]/[opt]/
    [jobs] is given, a leading ["run"] object records that provenance;
    the counter fields themselves are identical across engines, opt
    levels and jobs counts (the fusion-invariance contract above), so
    two dumps from different configurations differ only in ["run"]. *)
val to_json :
  ?engine:string -> ?opt:int -> ?jobs:int -> t -> Lf_obs.Json.t

val pp : t Fmt.t
