(** The SIMD virtual machine: a lockstep interpreter for F90simd programs.

    One control unit issues every instruction; [p] lanes execute it under
    the current activity mask (the WHERE mask stack).  This reproduces the
    paper's execution model exactly: a masked-out processor still "steps
    through the operation ... in an idle state until all processors have
    completed the operation" — which is why [Metrics.steps] counts every
    vector instruction once regardless of how many lanes are active, and
    why the unflattened and flattened versions of a program differ in
    step count exactly as Equations 2 and 1′ predict.

    Data model:
    - plural scalars: one value per lane ([Pval.Plural]);
    - plural arrays (declared [PLURAL t a(d)]): per-lane storage, realized
      as a global array with a leading lane dimension;
    - front-end scalars and global (distributed) arrays: shared storage;
      a reference through a plural subscript is a gather, an assignment a
      scatter.

    The predefined plural variable [iproc] holds 1..P. *)

open Lf_lang
open Lf_lang.Ast
open Values

type entry =
  | VScalar of value ref
  | VPlural of value array
  | VGlobal of arr
  | VPluralArr of arr  (** leading dimension is the lane index *)

type proc = t -> mask:bool array -> Pval.t list -> unit

and t = {
  p : int;  (** number of lanes *)
  vars : (string, entry) Hashtbl.t;
  metrics : Metrics.t;
  mutable fuel : int;
  procs : (string, proc) Hashtbl.t;
  funcs : (string, (value list -> value) * bool) Hashtbl.t;
      (** per-lane functions, with a purity flag: only functions
          registered [~pure:true] may be applied lane-parallel *)
  mutable observer : (t -> mask:bool array -> Ast.stmt -> unit) option;
      (** called before every vector-step statement with its mask *)
  trace : Lf_obs.Trace.t;
      (** per-vector-step event collector; disabled (one flat branch per
          step, no allocation) until a sink is attached *)
  mutable cur_loc : Errors.pos;
      (** source location of the innermost [SLoc]-wrapped statement *)
}

let default_fuel = 50_000_000

let create ?(fuel = default_fuel) ~p () =
  let vm =
    {
      p;
      vars = Hashtbl.create 64;
      metrics = Metrics.create ();
      fuel;
      procs = Hashtbl.create 8;
      funcs = Hashtbl.create 8;
      observer = None;
      trace = Lf_obs.Trace.create ();
      cur_loc = Errors.no_pos;
    }
  in
  (* the predefined plural processor index, matching Lf_core.Simdize.iproc *)
  Hashtbl.replace vm.vars "iproc"
    (VPlural (Array.init p (fun i -> VInt (i + 1))));
  vm

let register_proc vm name f =
  Hashtbl.replace vm.procs (String.lowercase_ascii name) f

(** Install a per-statement observer (tracing, occupancy measurements). *)
let set_observer vm f = vm.observer <- Some f

let observe vm ~mask s =
  match vm.observer with Some f -> f vm ~mask s | None -> ()

let register_func vm ?(pure = false) name f =
  Hashtbl.replace vm.funcs (String.lowercase_ascii name) (f, pure)

let full_mask vm = Array.make vm.p true
let active_count mask = Array.fold_left (fun n b -> if b then n + 1 else n) 0 mask

(** Attach a trace sink (see [Lf_obs.Trace]); arms event emission. *)
let add_trace_sink vm sink = Lf_obs.Trace.attach vm.trace sink

(* Telemetry handles (all recording is behind one flat [Stats.enabled]
   branch, mirroring the trace sinks).  Dispatch counts and mask-density
   buckets are [Counters] — stable across engines, jobs and opt levels
   by the Metrics fusion-invariance contract; GC deltas and run timers
   are [Volatile]. *)
module Stats = Lf_obs.Stats

let st_run_wall = Stats.timer "vm.run_wall"
let st_run_cpu = Stats.gauge "vm.run_cpu_s"
let st_minor_words = Stats.gauge "gc.minor_words"
let st_promoted_words = Stats.gauge "gc.promoted_words"
let st_major_words = Stats.gauge "gc.major_words"
let st_minor_colls = Stats.counter ~section:Stats.Volatile "gc.minor_collections"
let st_major_colls = Stats.counter ~section:Stats.Volatile "gc.major_collections"

let stats_vector_step ~active ~p ~kind =
  if Stats.enabled () then begin
    Stats.incr (Stats.dispatch_counter kind);
    Stats.incr (Stats.mask_counter ~active ~p)
  end

let stats_reduction () =
  if Stats.enabled () then
    Stats.incr (Stats.dispatch_counter Lf_obs.Trace.Reduce)

let tick_vector vm ~mask ~kind =
  let active = active_count mask in
  Metrics.vector_step vm.metrics ~active ~p:vm.p;
  stats_vector_step ~active ~p:vm.p ~kind;
  if vm.trace.Lf_obs.Trace.enabled then
    Lf_obs.Trace.emit vm.trace
      {
        loc = vm.cur_loc;
        step = vm.metrics.Metrics.steps;
        active;
        p = vm.p;
        kind;
        mask = Array.copy mask;
      };
  vm.fuel <- vm.fuel - 1;
  if vm.fuel <= 0 then Errors.runtime_error "SIMD VM fuel exhausted"

(** Emit a [Reduce] trace event (reductions do not consume a step). *)
let trace_reduction vm ~mask =
  if vm.trace.Lf_obs.Trace.enabled then
    Lf_obs.Trace.emit vm.trace
      {
        loc = vm.cur_loc;
        step = vm.metrics.Metrics.steps;
        active = active_count mask;
        p = vm.p;
        kind = Lf_obs.Trace.Reduce;
        mask = Array.copy mask;
      }

let tick_frontend vm =
  Metrics.frontend_step vm.metrics;
  if Stats.enabled () then Stats.incr Stats.frontend_counter;
  vm.fuel <- vm.fuel - 1;
  if vm.fuel <= 0 then Errors.runtime_error "SIMD VM fuel exhausted"

(* ------------------------------------------------------------------ *)
(* Variable binding                                                    *)
(* ------------------------------------------------------------------ *)

let bind_scalar vm name v = Hashtbl.replace vm.vars name (VScalar (ref v))

let bind_plural vm name vs =
  if Array.length vs <> vm.p then
    Errors.runtime_error "plural %s has %d lanes, machine has %d" name
      (Array.length vs) vm.p;
  Hashtbl.replace vm.vars name (VPlural vs)

let bind_global vm name a = Hashtbl.replace vm.vars name (VGlobal a)

let bind_plural_arr vm name ty dims =
  let dims = Array.append [| vm.p |] dims in
  Hashtbl.replace vm.vars name (VPluralArr (alloc_arr ty dims))

let find vm name =
  match Hashtbl.find_opt vm.vars name with
  | Some e -> e
  | None -> Errors.runtime_error "undefined variable %s" name

let find_opt vm name = Hashtbl.find_opt vm.vars name

(** Read back a plural variable (e.g. for assertions in tests). *)
let read_plural vm name =
  match find vm name with
  | VPlural vs -> Array.copy vs
  | _ -> Errors.runtime_error "%s is not a plural scalar" name

let read_global vm name =
  match find vm name with
  | VGlobal a -> a
  | VPluralArr a -> a
  | _ -> Errors.runtime_error "%s is not an array" name

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let is_reduction f =
  List.mem (String.lowercase_ascii f)
    [ "any"; "all"; "maxval"; "minval"; "sum"; "count" ]

let rec eval vm ~(mask : bool array) (e : expr) : Pval.t =
  match e with
  | EInt n -> Pval.FScalar (VInt n)
  | EReal f -> Pval.FScalar (VReal f)
  | EBool b -> Pval.FScalar (VBool b)
  | ERange (lo, hi) -> (
      let lo = front_int vm ~mask lo in
      let hi = front_int vm ~mask hi in
      (* [1:P]-style ranges of exactly P elements denote plural vectors
         (Figure 7's i = [1,5]); other ranges are front-end arrays *)
      let n = max 0 (hi - lo + 1) in
      if n = vm.p then Pval.Plural (Array.init n (fun i -> VInt (lo + i)))
      else Pval.FArr (AInt (Nd.of_array (Array.init n (fun i -> lo + i)))))
  | EVar v -> (
      match find vm v with
      | VScalar r -> Pval.FScalar !r
      | VPlural vs -> Pval.Plural (Array.copy vs)
      | VGlobal a | VPluralArr a -> Pval.FArr a)
  | EUn (op, a) ->
      Pval.lift1 ~mask (Interp.apply_unop op) (eval vm ~mask a)
  | EBin (op, a, b) ->
      (* left to right, matching the compiled engine: error order (which
         undefined variable is reported first) is observable *)
      let va = eval vm ~mask a in
      let vb = eval vm ~mask b in
      Pval.lift2 ~mask (Interp.apply_binop op) va vb
  | ECall (name, args) -> eval_call vm ~mask name args
  | EIdx (name, args) -> (
      match find_opt vm name with
      | Some (VGlobal a) -> index_global vm ~mask a args
      | Some (VPluralArr a) -> index_plural_arr vm ~mask a args
      | Some _ ->
          Errors.runtime_error "%s is a scalar but is indexed" name
      | None -> eval_call vm ~mask name args)

and front_int vm ~mask e = Pval.as_front_int (eval vm ~mask e)

(** Per-lane integer view of an index expression. *)
and lane_indices vm ~mask (e : expr) : (int -> int) * bool =
  match eval vm ~mask e with
  | Pval.FScalar v ->
      let n = as_int v in
      ((fun _ -> n), false)
  | Pval.Plural vs -> ((fun i -> as_int vs.(i)), true)
  | Pval.FArr _ -> Errors.runtime_error "array-valued subscript"

and index_global vm ~mask (a : arr) (args : expr list) : Pval.t =
  let sels = List.map (lane_indices vm ~mask) args in
  if List.exists snd sels then
    (* gather: one element per active lane *)
    Pval.Plural
      (Array.init vm.p (fun i ->
           if mask.(i) then
             arr_get a (Array.of_list (List.map (fun (f, _) -> f i) sels))
           else VInt 0))
  else
    let idx = Array.of_list (List.map (fun (f, _) -> f 0) sels) in
    Pval.FScalar (arr_get a idx)

and index_plural_arr vm ~mask (a : arr) (args : expr list) : Pval.t =
  let sels = List.map (lane_indices vm ~mask) args in
  Pval.Plural
    (Array.init vm.p (fun i ->
         if mask.(i) then
           arr_get a
             (Array.of_list ((i + 1) :: List.map (fun (f, _) -> f i) sels))
         else VInt 0))

and eval_call vm ~mask name args : Pval.t =
  let key = String.lowercase_ascii name in
  if is_reduction key then begin
    Metrics.reduction vm.metrics;
    stats_reduction ();
    trace_reduction vm ~mask;
    let v =
      match args with
      | [ a ] -> eval vm ~mask a
      | _ -> Errors.runtime_error "%s expects one argument" name
    in
    match v with
    | Pval.FArr a -> (
        match Intrinsics.apply key [ VArr a ] with
        | Some r -> Pval.FScalar r
        | None -> Errors.runtime_error "bad reduction %s" name)
    | v ->
        let r =
          match key with
          | "any" ->
              Pval.reduce ~mask ~empty:(VBool false)
                (fun a b -> VBool (as_bool a || as_bool b))
                v
          | "all" ->
              Pval.reduce ~mask ~empty:(VBool true)
                (fun a b -> VBool (as_bool a && as_bool b))
                v
          | "count" -> (
              match v with
              | Pval.Plural vs ->
                  let n = ref 0 in
                  Array.iteri
                    (fun i active ->
                      if active && as_bool vs.(i) then incr n)
                    mask;
                  VInt !n
              | Pval.FScalar s ->
                  VInt (if as_bool s then active_count mask else 0)
              | _ -> Errors.runtime_error "count: bad operand")
          | "maxval" ->
              Pval.reduce ~mask
                ~empty:(Pval.reduction_identity "maxval" (Pval.witness v))
                (fun a b -> Interp.apply_binop Gt a b |> as_bool |> fun g ->
                            if g then a else b)
                v
          | "minval" ->
              Pval.reduce ~mask
                ~empty:(Pval.reduction_identity "minval" (Pval.witness v))
                (fun a b -> Interp.apply_binop Lt a b |> as_bool |> fun g ->
                            if g then a else b)
                v
          | "sum" ->
              Pval.reduce ~mask
                ~empty:(Pval.reduction_identity "sum" (Pval.witness v))
                (fun a b -> Interp.apply_binop Add a b)
                v
          | _ -> Errors.runtime_error "unknown reduction %s" name
        in
        Pval.FScalar r
  end
  else
    match Hashtbl.find_opt vm.funcs key with
    | Some (f, _pure) ->
        let vargs = List.map (eval vm ~mask) args in
        if List.exists Pval.is_plural vargs then
          Pval.Plural
            (Array.init vm.p (fun i ->
                 if mask.(i) then
                   f (List.map (fun v -> Pval.lane v i) vargs)
                 else VInt 0))
        else Pval.FScalar (f (List.map Pval.as_front_scalar vargs))
    | None -> (
        let vargs = List.map (eval vm ~mask) args in
        if List.exists Pval.is_plural vargs then
          (* lane-wise intrinsic (max, abs, mod, ...) *)
          Pval.Plural
            (Array.init vm.p (fun i ->
                 if mask.(i) then
                   match
                     Intrinsics.apply key
                       (List.map (fun v -> Pval.lane v i) vargs)
                   with
                   | Some r -> r
                   | None ->
                       Errors.runtime_error "unknown function %s" name
                 else VInt 0))
        else
          let scalar_args =
            List.map
              (function
                | Pval.FScalar v -> v
                | Pval.FArr a -> VArr a
                | Pval.Plural _ -> assert false)
              vargs
          in
          match Intrinsics.apply key scalar_args with
          | Some r -> Pval.FScalar r
          | None -> Errors.runtime_error "unknown function %s" name)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let assign vm ~mask (l : lvalue) (rhs : Pval.t) =
  match (find_opt vm l.lv_name, l.lv_index) with
  | Some (VScalar r), [] -> r := Pval.as_front_scalar rhs
  | Some (VPlural vs), [] ->
      Array.iteri
        (fun i active -> if active then vs.(i) <- Pval.lane rhs i)
        mask
  | Some (VGlobal a), [] -> (
      (* whole-array assignment, e.g. F = 0 *)
      match rhs with
      | Pval.FScalar v -> arr_fill a v
      | Pval.FArr src ->
          if arr_size src <> arr_size a then
            Errors.runtime_error "shape mismatch assigning to %s" l.lv_name;
          for i = 0 to arr_size a - 1 do
            arr_set_flat a i (arr_get_flat src i)
          done
      | Pval.Plural _ ->
          Errors.runtime_error "plural value assigned to whole array %s"
            l.lv_name)
  | Some (VPluralArr a), [] -> (
      match rhs with
      | Pval.FScalar v -> arr_fill a v
      | _ ->
          Errors.runtime_error "unsupported whole-plural-array assignment to %s"
            l.lv_name)
  | Some (VGlobal a), idxs ->
      let sels = List.map (fun e -> lane_indices vm ~mask e) idxs in
      if List.exists snd sels || Pval.is_plural rhs then
        (* scatter per active lane *)
        Array.iteri
          (fun i active ->
            if active then
              arr_set a
                (Array.of_list (List.map (fun (f, _) -> f i) sels))
                (Pval.lane rhs i))
          mask
      else
        arr_set a
          (Array.of_list (List.map (fun (f, _) -> f 0) sels))
          (Pval.as_front_scalar rhs)
  | Some (VPluralArr a), idxs ->
      let sels = List.map (fun e -> lane_indices vm ~mask e) idxs in
      Array.iteri
        (fun i active ->
          if active then
            arr_set a
              (Array.of_list ((i + 1) :: List.map (fun (f, _) -> f i) sels))
              (Pval.lane rhs i))
        mask
  | None, [] ->
      (* implicit front-end scalar, or plural if the value is plural *)
      (match rhs with
      | Pval.FScalar v -> bind_scalar vm l.lv_name v
      | Pval.Plural vs ->
          let fresh = Array.make vm.p (VInt 0) in
          Array.iteri (fun i active -> if active then fresh.(i) <- vs.(i)) mask;
          bind_plural vm l.lv_name fresh
      | Pval.FArr a -> bind_global vm l.lv_name a)
  | None, _ :: _ ->
      Errors.runtime_error "assignment to undeclared array %s" l.lv_name
  | Some (VScalar _), _ :: _ | Some (VPlural _), _ :: _ ->
      Errors.runtime_error "%s is scalar but indexed" l.lv_name

let and_mask mask cond_lane =
  Array.mapi (fun i a -> a && cond_lane i) mask

let rec exec vm ~(mask : bool array) (s : stmt) : unit =
  match s with
  | SLoc (loc, s) ->
      (* set the location for event attribution; locate runtime errors
         raised inside (innermost located statement wins, [Jump]-free
         engine so nothing else escapes normally) *)
      let saved = vm.cur_loc in
      vm.cur_loc <- loc;
      (try exec vm ~mask s
       with e -> (
         vm.cur_loc <- saved;
         match e with
         | Errors.Runtime_error m -> raise (Errors.Runtime_error_at (loc, m))
         | e -> raise e));
      vm.cur_loc <- saved
  | SComment _ | SLabel _ -> ()
  | SAssign (l, e) ->
      observe vm ~mask s;
      let rhs = eval vm ~mask e in
      (match rhs with
      | Pval.Plural _ -> tick_vector vm ~mask ~kind:Lf_obs.Trace.Assign
      | _ -> tick_frontend vm);
      assign vm ~mask l rhs
  | SCall (name, args) -> (
      observe vm ~mask s;
      let key = String.lowercase_ascii name in
      match Hashtbl.find_opt vm.procs key with
      | Some f ->
          Metrics.call vm.metrics key;
          tick_vector vm ~mask ~kind:Lf_obs.Trace.Call;
          f vm ~mask (List.map (eval vm ~mask) args)
      | None -> Errors.runtime_error "unknown subroutine %s" name)
  | SIf (c, t, f) -> (
      match eval vm ~mask c with
      | Pval.FScalar v ->
          tick_frontend vm;
          exec_block vm ~mask (if as_bool v then t else f)
      | Pval.Plural _ ->
          (* an IF over plural state behaves as WHERE (the paper's
             SIMDizing step replaces IF with WHERE) *)
          exec vm ~mask (SWhere (c, t, f))
      | Pval.FArr _ -> Errors.runtime_error "array condition")
  | SWhere (c, t, f) ->
      let cv = eval vm ~mask c in
      tick_vector vm ~mask ~kind:Lf_obs.Trace.Where;
      let cond_lane i = as_bool (Pval.lane cv i) in
      let mt = and_mask mask cond_lane in
      let mf = and_mask mask (fun i -> not (cond_lane i)) in
      if t <> [] then exec_block vm ~mask:mt t;
      if f <> [] then exec_block vm ~mask:mf f
  | SWhile (c, body) ->
      let continue_ () =
        match eval vm ~mask c with
        | Pval.FScalar v ->
            tick_frontend vm;
            as_bool v
        | Pval.Plural vs ->
            (* vector-controlled WHILE (§2): all active lanes must agree *)
            tick_vector vm ~mask ~kind:Lf_obs.Trace.While;
            let vals =
              List.filteri (fun i _ -> mask.(i)) (Array.to_list vs)
            in
            (match vals with
            | [] -> false
            | v :: rest ->
                if List.for_all (Values.equal_value v) rest then as_bool v
                else
                  Errors.runtime_error
                    "vector-controlled WHILE with divergent lane values")
        | Pval.FArr _ -> Errors.runtime_error "array condition"
      in
      while continue_ () do
        exec_block vm ~mask body
      done
  | SDoWhile (body, c) ->
      let go = ref true in
      while !go do
        exec_block vm ~mask body;
        go :=
          (match eval vm ~mask c with
          | Pval.FScalar v ->
              tick_frontend vm;
              as_bool v
          | _ -> Errors.runtime_error "DO WHILE condition must be front-end")
      done
  | SDo (c, body) | SForall (c, body) ->
      let lo = front_int vm ~mask c.d_lo in
      let hi = front_int vm ~mask c.d_hi in
      let step =
        match c.d_step with
        | Some s -> front_int vm ~mask s
        | None -> 1
      in
      if step = 0 then Errors.runtime_error "DO loop with zero step";
      tick_frontend vm;
      let i = ref lo in
      let cont () = if step > 0 then !i <= hi else !i >= hi in
      while cont () do
        bind_scalar_or_update vm c.d_var (VInt !i);
        exec_block vm ~mask body;
        tick_frontend vm;
        i := !i + step
      done;
      bind_scalar_or_update vm c.d_var (VInt !i)
  | SGoto _ | SCondGoto _ ->
      Errors.runtime_error "GOTO is not part of F90simd"

and bind_scalar_or_update vm name v =
  match find_opt vm name with
  | Some (VScalar r) -> r := v
  | Some _ -> Errors.runtime_error "%s is not a front-end scalar" name
  | None -> bind_scalar vm name v

and exec_block vm ~mask (b : block) = List.iter (exec vm ~mask) b

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)
(* ------------------------------------------------------------------ *)

(** Allocate declared variables; plural scalars get one slot per lane,
    plural arrays a leading lane dimension.  Pre-seeded bindings (via
    [bind_*]) are kept. *)
let declare vm (decls : decl list) =
  List.iter
    (fun d ->
      if not (Hashtbl.mem vm.vars d.dc_name) then
        let mask = full_mask vm in
        let dims () =
          Array.of_list
            (List.map (fun e -> front_int vm ~mask e) d.dc_dims)
        in
        match (d.dc_plural, d.dc_dims) with
        | false, [] -> bind_scalar vm d.dc_name (zero_of d.dc_type)
        | false, _ -> bind_global vm d.dc_name (alloc_arr d.dc_type (dims ()))
        | true, [] ->
            bind_plural vm d.dc_name (Array.make vm.p (zero_of d.dc_type))
        | true, _ -> bind_plural_arr vm d.dc_name d.dc_type (dims ()))
    decls

(* ------------------------------------------------------------------ *)
(* The compiled engine                                                 *)
(* ------------------------------------------------------------------ *)

type engine = [ `Tree_walk | `Compiled | `Parallel ]

(** VM variable table -> frame.  Names absent from the table keep their
    current slot (at run start every slot is [Unbound]). *)
let import_frame vm (frame : Frame.t) =
  for si = 0 to Frame.n_slots frame - 1 do
    match Hashtbl.find_opt vm.vars (Frame.name_of frame si) with
    | None -> ()
    | Some (VScalar r) -> Frame.set frame si (Frame.Scalar r)
    | Some (VPlural vs) ->
        Frame.set frame si (Frame.Plural (Frame.lanes_of_values (Array.copy vs)))
    | Some (VGlobal a) -> Frame.set frame si (Frame.Global a)
    | Some (VPluralArr a) -> Frame.set frame si (Frame.PluralArr a)
  done

(** Frame -> VM variable table: plural slots are boxed back, array and
    scalar storage is shared. *)
let flush_frame vm (frame : Frame.t) =
  for si = 0 to Frame.n_slots frame - 1 do
    let name = Frame.name_of frame si in
    match Frame.get frame si with
    | Frame.Unbound -> ()
    | Frame.Scalar r -> Hashtbl.replace vm.vars name (VScalar r)
    | Frame.Plural lanes ->
        Hashtbl.replace vm.vars name (VPlural (Frame.values_of_lanes lanes))
    | Frame.Global a -> Hashtbl.replace vm.vars name (VGlobal a)
    | Frame.PluralArr a -> Hashtbl.replace vm.vars name (VPluralArr a)
  done

(** Frame name table: every variable the program mentions plus every
    pre-seeded VM binding (setup-bound globals, parameters). *)
let frame_names vm (prog : program) =
  let from_ast = Compile.var_names prog in
  let seen = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace seen n ()) from_ast;
  let extra =
    Hashtbl.fold
      (fun n _ acc -> if Hashtbl.mem seen n then acc else n :: acc)
      vm.vars []
  in
  from_ast @ List.sort compare extra

(* Compile [prog.p_body] against a frame covering the program's names
   plus anything pre-seeded in [vm.vars] — or, on the cache's warm path
   ([prepared]), re-emit an already-lowered IR against a frame built
   with the layout it was lowered for — then run it under a full mask.
   State is imported at the start and after every external CALL, and
   flushed back at the end (also on the error path, so a failing
   compiled run leaves the same partial state as a failing tree-walk).

   [exec] dispatches the per-lane loops: [Pool.serial_exec] is the
   serial compiled engine, [Pool.parallel_exec] shards the lanes over
   the Domain pool while everything sequential — control flow, metrics,
   fuel, trace emission, front-end state — stays on this thread. *)
(** The host callback record tying a compiled body to this VM and
    [frame] (shared by the cold compile path and the cache's re-emission
    path). *)
let make_host vm (frame : Frame.t) =
  {
      Compile.h_p = vm.p;
      h_tick_vector =
        (fun ~loc ~kind m ->
          let active = Frame.Mask.active m in
          Metrics.vector_step vm.metrics ~active ~p:vm.p;
          stats_vector_step ~active ~p:vm.p ~kind;
          if vm.trace.Lf_obs.Trace.enabled then
            Lf_obs.Trace.emit vm.trace
              {
                loc;
                step = vm.metrics.Metrics.steps;
                active;
                p = vm.p;
                kind;
                mask = Frame.Mask.to_bool_array m;
              };
          vm.fuel <- vm.fuel - 1;
          if vm.fuel <= 0 then Errors.runtime_error "SIMD VM fuel exhausted");
      h_tick_frontend = (fun () -> tick_frontend vm);
      h_reduction =
        (fun ~loc m ->
          Metrics.reduction vm.metrics;
          stats_reduction ();
          if vm.trace.Lf_obs.Trace.enabled then
            Lf_obs.Trace.emit vm.trace
              {
                loc;
                step = vm.metrics.Metrics.steps;
                active = Frame.Mask.active m;
                p = vm.p;
                kind = Lf_obs.Trace.Reduce;
                mask = Frame.Mask.to_bool_array m;
              });
      h_call_metric = (fun name -> Metrics.call vm.metrics name);
      h_find_proc =
        (fun key ->
          match Hashtbl.find_opt vm.procs key with
          | Some f -> Some (fun ~mask args -> f vm ~mask args)
          | None -> None);
      h_find_func = (fun key -> Hashtbl.find_opt vm.funcs key);
      h_observer =
        (fun () ->
          match vm.observer with
          | Some f -> Some (fun ~mask s -> f vm ~mask s)
          | None -> None);
      h_flush = (fun () -> flush_frame vm frame);
      h_import = (fun () -> import_frame vm frame);
  }

let run_compiled vm ~(exec : Pool.exec) ?opt ?verify ?prepared
    (prog : program) =
  let frame, compiled =
    match prepared with
    | Some (frame, ir) ->
        (* Warm path: the front end already ran when the cache entry was
           built; re-emit the cached IR against a (pooled) frame created
           with the exact layout it was lowered for.  [verify] is
           irrelevant here — it gates [Opt.run], which is skipped. *)
        (frame, Compile.emit ~host:(make_host vm frame) ~frame ~exec ?opt ir)
    | None ->
        let frame = Frame.create ~p:vm.p (frame_names vm prog) in
        ( frame,
          Compile.compile ~host:(make_host vm frame) ~frame ~exec ?opt
            ?verify prog.p_body )
  in
  import_frame vm frame;
  Fun.protect
    ~finally:(fun () -> flush_frame vm frame)
    (fun () -> compiled (Frame.Mask.create_full vm.p))

(* Run a program on the VM.  [setup] may pre-bind globals and parameters
   (problem sizes, input arrays) before declarations are processed.
   [engine] selects the tree-walking interpreter (default), the serial
   compiled closure engine, or the lane-sharded parallel engine; all
   three produce bit-identical state, metrics and errors.  [jobs] (only
   meaningful — and only validated — with [`Parallel]) bounds the shard
   count; it defaults to [Pool.default_jobs ()]. *)
(** Engine dispatch plus the telemetry bracket, on an already-created,
    already-declared VM ([run] and [run_src] both funnel here). *)
let run_on vm ?(engine = `Tree_walk) ?jobs ?opt ?verify ?prepared
    (prog : program) : unit =
  let p = vm.p in
  let exec_engine () =
    match engine with
    | `Tree_walk -> exec_block vm ~mask:(full_mask vm) prog.p_body
    | `Compiled ->
        run_compiled vm ~exec:(Pool.serial_exec ~p) ?opt ?verify ?prepared
          prog
    | `Parallel ->
        let jobs =
          match jobs with Some j -> j | None -> Pool.default_jobs ()
        in
        if jobs < 1 then invalid_arg "Vm.run: jobs must be >= 1";
        run_compiled vm
          ~exec:(Pool.parallel_exec ~p ~jobs)
          ?opt ?verify ?prepared prog
  in
  (if not (Stats.enabled ()) then exec_engine ()
   else
     (* GC and wall/CPU telemetry bracket the whole engine dispatch; the
        [finally] records even when the run dies (fuel, runtime error) so
        manifests of failing runs still carry the cost up to the fault. *)
     let g0 = Gc.quick_stat () in
     let c0 = Sys.time () in
     let t0 = Stats.now_ns () in
     Fun.protect
       ~finally:(fun () ->
         let t1 = Stats.now_ns () in
         let c1 = Sys.time () in
         let g1 = Gc.quick_stat () in
         Stats.add_span_ns st_run_wall (Int64.sub t1 t0);
         Stats.add_gauge st_run_cpu (c1 -. c0);
         Stats.add_gauge st_minor_words (g1.minor_words -. g0.minor_words);
         Stats.add_gauge st_promoted_words
           (g1.promoted_words -. g0.promoted_words);
         Stats.add_gauge st_major_words (g1.major_words -. g0.major_words);
         Stats.add st_minor_colls
           (g1.minor_collections - g0.minor_collections);
         Stats.add st_major_colls
           (g1.major_collections - g0.major_collections))
       exec_engine)

let run ?fuel ?engine ?jobs ?opt ?verify ~p ?(setup = fun _ -> ())
    (prog : program) : t =
  let vm = create ?fuel ~p () in
  setup vm;
  declare vm prog.p_decls;
  run_on vm ?engine ?jobs ?opt ?verify prog;
  vm

(* ------------------------------------------------------------------ *)
(* Source-level entry with the program cache                           *)
(* ------------------------------------------------------------------ *)

(** [frame_names] reusing the entry's precomputed AST name list (the
    warm path must not re-walk the AST). *)
let layout_of vm (entry : Progcache.entry) =
  let from_ast = entry.Progcache.e_ast_names in
  let seen = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace seen n ()) from_ast;
  let extra =
    Hashtbl.fold
      (fun n _ acc -> if Hashtbl.mem seen n then acc else n :: acc)
      vm.vars []
  in
  from_ast @ List.sort compare extra

let run_src ?fuel ?(engine = `Tree_walk) ?jobs ?(opt = 1) ?(verify = false)
    ?cache ?(dialect = "simd") ~p ?(setup = fun _ -> ()) (src : string) : t =
  match cache with
  | None ->
      run ?fuel ~engine ?jobs ~opt ~verify ~p ~setup
        (Lf_lang.Parser.program_of_string src)
  | Some cache ->
      let entry, hit =
        match Progcache.find cache ~src ~dialect ~opt ~verify ~p with
        | Some e -> (e, true)
        | None ->
            let t0 = Stats.now_ns () in
            let prog = Lf_lang.Parser.program_of_string src in
            let front_ns = Int64.sub (Stats.now_ns ()) t0 in
            ( Progcache.insert cache ~src ~dialect ~opt ~verify ~p ~front_ns
                prog,
              false )
      in
      let prog = entry.Progcache.e_prog in
      let vm = create ?fuel ~p () in
      setup vm;
      declare vm prog.p_decls;
      (match engine with
      | `Tree_walk ->
          if hit then Progcache.credit_warm entry;
          run_on vm ~engine ?jobs ~opt ~verify prog
      | `Compiled | `Parallel ->
          let layout = layout_of vm entry in
          let ir, warm =
            match entry.Progcache.e_lowered with
            | Some (lay, ir) when lay = layout -> (ir, true)
            | _ ->
                (* First compiled-engine run under this key (or the
                   setup seeded a different extras set): pay the front
                   end once, against a frame created with this exact
                   layout, and remember it.  A [Verify.Error] or type
                   error propagates before anything is stored, so every
                   warm retry fails with the identical message. *)
                let t0 = Stats.now_ns () in
                let f = Frame.create ~p layout in
                let ir = Compile.lower ~frame:f ~opt ~verify prog.p_body in
                Progcache.add_front_ns entry (Int64.sub (Stats.now_ns ()) t0);
                entry.Progcache.e_lowered <- Some (layout, ir);
                entry.Progcache.e_frames <- [ f ];
                (ir, false)
          in
          if hit && warm then Progcache.credit_warm entry;
          let frame = Progcache.take_frame entry ~p layout in
          Fun.protect
            ~finally:(fun () -> Progcache.release_frame entry frame)
            (fun () ->
              run_on vm ~engine ?jobs ~opt ~verify ~prepared:(frame, ir)
                prog));
      vm

let dump_ir ?(opt = 1) ~p ?(setup = fun _ -> ()) (prog : program) :
    Lf_obs.Json.t =
  let vm = create ~p () in
  setup vm;
  declare vm prog.p_decls;
  let frame = Frame.create ~p (frame_names vm prog) in
  Ir.to_json ~opt (Opt.run ~level:opt ~frame (Ir.of_block frame prog.p_body))

let dump_ir_phases ?(opt = 1) ~p ?(setup = fun _ -> ()) (prog : program) :
    (string * Lf_obs.Json.t) list =
  let vm = create ~p () in
  setup vm;
  declare vm prog.p_decls;
  let frame = Frame.create ~p (frame_names vm prog) in
  let acc = ref [] in
  (* the pipeline annotates one mutable tree in place; converting to
     JSON inside the callback snapshots each phase's state *)
  ignore
    (Opt.run ~level:opt ~frame
       ~dump:(fun name b -> acc := (name, Ir.to_json ~opt b) :: !acc)
       (Ir.of_block frame prog.p_body));
  List.rev !acc

(** Standalone verification without executing: lower against the same
    frame name table [run] would use and run the [Opt] pipeline at [opt]
    with the IR verifier enabled at every phase boundary.
    @raise Verify.Error on a broken invariant. *)
let verify_ir ?(opt = 1) ~p ?(setup = fun _ -> ()) (prog : program) : unit =
  let vm = create ~p () in
  setup vm;
  declare vm prog.p_decls;
  let frame = Frame.create ~p (frame_names vm prog) in
  ignore
    (Opt.run ~level:opt ~frame ~verify:true (Ir.of_block frame prog.p_body))

(* ------------------------------------------------------------------ *)
(* Engine-equivalence checks                                           *)
(* ------------------------------------------------------------------ *)

let entry_equal a b =
  match (a, b) with
  | VScalar r1, VScalar r2 -> Values.equal_value !r1 !r2
  | VPlural v1, VPlural v2 ->
      Array.length v1 = Array.length v2
      && Array.for_all2 Values.equal_value v1 v2
  | VGlobal a1, VGlobal a2 | VPluralArr a1, VPluralArr a2 ->
      Values.equal_value (VArr a1) (VArr a2)
  | _ -> false

(** Same variable table: same names bound to the same kind of entry with
    equal values (used by the differential tests to prove the two engines
    interchangeable). *)
let state_equal vma vmb =
  Hashtbl.length vma.vars = Hashtbl.length vmb.vars
  && Hashtbl.fold
       (fun k e acc ->
         acc
         &&
         match Hashtbl.find_opt vmb.vars k with
         | Some e' -> entry_equal e e'
         | None -> false)
       vma.vars true
