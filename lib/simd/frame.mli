(** Execution frame of the compiled SIMD engine: variables resolved to
    dense integer slots, plural scalars stored unboxed ([int array] /
    [float array] / [bool array]) with a boxed fallback for mixed-type
    lanes, and reusable activity masks with a cached active count.

    Conversions between the unboxed lane vectors and the tree-walker's
    boxed [Values.value array]s are value-preserving in both directions,
    which is what makes the two engines bit-identical on variable
    state. *)

open Lf_lang

type lanes =
  | LInt of int array
  | LReal of float array
  | LBool of bool array
  | LBox of Values.value array  (** mixed-type fallback *)

type slot =
  | Unbound
  | Scalar of Values.value ref
  | Plural of lanes
  | Global of Values.arr
  | PluralArr of Values.arr

type t = {
  p : int;
  names : string array;
  slots : slot array;
  index : (string, int) Hashtbl.t;
  mutable scr_i : int array array;
  mutable scr_r : float array array;
  mutable scr_b : bool array array;
}

val create : p:int -> string list -> t

(** Reset every slot to [Unbound] while keeping the name table and the
    lazily-grown scratch pools, so a cached frame can be reused across
    warm runs without reallocating.  Stale scratch contents are safe by
    the engine's documented relaxation (inactive computed-temporary lanes
    may hold garbage until rewritten). *)
val reset : t -> unit

val slot_index : t -> string -> int option
val name_of : t -> int -> string
val n_slots : t -> int
val get : t -> int -> slot
val set : t -> int -> slot -> unit

(** Scratch lane vectors, shared between operator sites whose result
    buffers [Opt.plan_scratch] proved never simultaneously live (sites
    carry their group in [Ir.x_scr]).  Allocated on first demand, one
    vector per (group, element type), reused for the frame's lifetime:
    steady-state vector-op execution allocates nothing.  Sharing is safe
    because every consumer of an operator result either folds it or
    copies it before the next site of the same group runs, and the
    parallel engine's shards write disjoint lane ranges. *)

val scr_int : t -> int -> int array

val scr_real : t -> int -> float array
val scr_bool : t -> int -> bool array

(** Unbox a boxed lane vector when type-uniform; retains (does not copy)
    the boxed array otherwise. *)
val lanes_of_values : Values.value array -> lanes

(** Boxed view of a lane vector (fresh array). *)
val values_of_lanes : lanes -> Values.value array

(** Boxed view of one lane. *)
val lane_value : lanes -> int -> Values.value

module Mask : sig
  type t = {
    bits : Bytes.t;
    mutable active_n : int;
  }

  val create_full : int -> t
  val create_empty : int -> t
  val length : t -> int

  (** Cached population count: O(1). *)
  val active : t -> int

  val get : t -> int -> bool
  val set : t -> int -> bool -> unit
  val clear : t -> unit
  val to_bool_array : t -> bool array
  val of_bool_array : bool array -> t
end
