(** Content-addressed cache of compiled-program front ends.

    A [Vm.run] pays parse -> lower -> [Opt.run] -> [Verify.check] on
    every invocation, which dominates wall time for small programs that
    are executed repeatedly (bench sweeps, fuzz corpora, batch grids).
    This cache keys that work by {e content}: [(source MD5, dialect, opt
    level, verify flag, p)].  A hit returns the parsed AST plus — once
    lowered — the post-[Opt]/post-[Verify] IR and the frame layout it
    was lowered against, so a warm run skips the entire front end and
    goes straight to emission/execution.  Emission never mutates the IR
    (all annotation writes live in [Opt]), which is what makes one
    cached IR safe to re-emit on every warm run.

    Entries also pool frames: a released frame is [Frame.reset] and
    handed back on the next warm run, so steady-state warm execution is
    allocation-free up to lane data (scratch vectors persist inside the
    frame).

    Replacement is LRU, bounded by both entry count and an estimated
    byte budget.  The cache is confined to the control thread (the
    parallel engine shards lanes internally; it never touches the
    cache), so there is no locking.

    Telemetry ([Lf_obs.Stats], recorded only while stats are enabled):
    [cache.hits]/[cache.misses]/[cache.evictions] counters and the
    [cache.bytes] gauge live in the jobs-invariant [Opt] section (their
    values depend on the run mix and cache configuration, not on the
    shard count); [cache.warm_saved_ns] is a timer in the volatile
    section crediting, per hit, the front-end nanoseconds measured when
    the entry was built. *)

open Lf_lang

type entry = {
  e_prog : Ast.program;  (** parse result for the cached source *)
  e_ast_names : string list;  (** [Compile.var_names e_prog], precomputed *)
  mutable e_lowered : (string list * Ir.block) option;
      (** (frame layout, post-[Opt] IR): present once a compiled-engine
          run lowered the program; the layout records the exact frame
          name list (AST names plus setup-seeded extras) the IR's slot
          numbering is valid for *)
  mutable e_front_ns : int64;
      (** measured front-end cost (parse + lower) paid building this
          entry; credited to [cache.warm_saved_ns] on every hit *)
  mutable e_frames : Frame.t list;  (** reusable frame pool *)
  e_bytes : int;  (** deterministic size estimate used for the budget *)
}

type t

(** [create ()] makes an empty cache.  [max_entries] (default 128)
    bounds the entry count; [max_bytes] (default 64 MiB) bounds the sum
    of the entries' size estimates.  Whichever is exceeded first evicts
    least-recently-used entries. *)
val create : ?max_entries:int -> ?max_bytes:int -> unit -> t

val length : t -> int
val bytes : t -> int

(** Lookup by content key; bumps recency and the hit/miss counters. *)
val find :
  t -> src:string -> dialect:string -> opt:int -> verify:bool -> p:int ->
  entry option

(** Insert a freshly parsed program (replacing any entry under the same
    key), evicting LRU entries as needed.  [front_ns] is the measured
    parse cost so far; lowering cost is added later via [add_front_ns]. *)
val insert :
  t -> src:string -> dialect:string -> opt:int -> verify:bool -> p:int ->
  front_ns:int64 -> Ast.program -> entry

val add_front_ns : entry -> int64 -> unit

(** Credit [e_front_ns] to the [cache.warm_saved_ns] timer (stats-gated). *)
val credit_warm : entry -> unit

(** Pop a pooled frame (resetting its slots) or create a fresh one for
    [layout]; the caller must [release_frame] it after flushing. *)
val take_frame : entry -> p:int -> string list -> Frame.t

val release_frame : entry -> Frame.t -> unit
