(** Content-addressed compiled-program cache (see progcache.mli).

    The store is one hashtable keyed by the content tuple plus a logical
    clock for LRU: each touch stamps the entry with the next tick and
    eviction scans for the minimum stamp.  Scanning is O(entries) but
    eviction is rare and the entry bound is small (default 128), which
    keeps the implementation free of intrusive lists.  Nothing here
    locks: the cache lives on the control thread only. *)

open Lf_lang
module Stats = Lf_obs.Stats

type entry = {
  e_prog : Ast.program;
  e_ast_names : string list;
  mutable e_lowered : (string list * Ir.block) option;
  mutable e_front_ns : int64;
  mutable e_frames : Frame.t list;
  e_bytes : int;
}

type key = {
  k_md5 : string;  (** [Digest.string] of the source bytes *)
  k_dialect : string;
  k_opt : int;
  k_verify : bool;
  k_p : int;
}

type slot = { s_entry : entry; mutable s_tick : int }

type t = {
  max_entries : int;
  max_bytes : int;
  tbl : (key, slot) Hashtbl.t;
  mutable clock : int;
  mutable cur_bytes : int;
}

(* -- telemetry ----------------------------------------------------- *)

let st_hits = Stats.counter ~section:Stats.Opt "cache.hits"
let st_misses = Stats.counter ~section:Stats.Opt "cache.misses"
let st_evictions = Stats.counter ~section:Stats.Opt "cache.evictions"
let st_bytes = Stats.gauge ~section:Stats.Opt "cache.bytes"
let st_warm_saved = Stats.timer "cache.warm_saved_ns"

(* ------------------------------------------------------------------ *)

let create ?(max_entries = 128) ?(max_bytes = 64 * 1024 * 1024) () =
  if max_entries < 1 then invalid_arg "Progcache.create: max_entries < 1";
  {
    max_entries;
    max_bytes;
    tbl = Hashtbl.create 64;
    clock = 0;
    cur_bytes = 0;
  }

let length c = Hashtbl.length c.tbl
let bytes c = c.cur_bytes

let key ~src ~dialect ~opt ~verify ~p =
  {
    k_md5 = Digest.string src;
    k_dialect = dialect;
    k_opt = opt;
    k_verify = verify;
    k_p = p;
  }

let touch c s =
  c.clock <- c.clock + 1;
  s.s_tick <- c.clock

let find c ~src ~dialect ~opt ~verify ~p =
  match Hashtbl.find_opt c.tbl (key ~src ~dialect ~opt ~verify ~p) with
  | Some s ->
      touch c s;
      Stats.incr st_hits;
      Some s.s_entry
  | None ->
      Stats.incr st_misses;
      None

let evict_lru c =
  let victim =
    Hashtbl.fold
      (fun k s acc ->
        match acc with
        | Some (_, best) when best.s_tick <= s.s_tick -> acc
        | _ -> Some (k, s))
      c.tbl None
  in
  match victim with
  | None -> ()
  | Some (k, s) ->
      Hashtbl.remove c.tbl k;
      c.cur_bytes <- c.cur_bytes - s.s_entry.e_bytes;
      Stats.incr st_evictions

(* Deterministic size estimate: the AST/IR/frame footprint scales with
   the source, so charge a fixed overhead plus a multiple of the source
   length.  Exact accounting is not worth a traversal — the budget only
   needs to rank entries consistently and cap growth. *)
let estimate_bytes src = 512 + (8 * String.length src)

let insert c ~src ~dialect ~opt ~verify ~p ~front_ns prog =
  let k = key ~src ~dialect ~opt ~verify ~p in
  (match Hashtbl.find_opt c.tbl k with
  | Some old ->
      Hashtbl.remove c.tbl k;
      c.cur_bytes <- c.cur_bytes - old.s_entry.e_bytes
  | None -> ());
  let entry =
    {
      e_prog = prog;
      e_ast_names = Compile.var_names prog;
      e_lowered = None;
      e_front_ns = front_ns;
      e_frames = [];
      e_bytes = estimate_bytes src;
    }
  in
  (* Make room before inserting so the new entry is never its own
     victim; the byte budget can still be exceeded by one oversized
     entry, which beats refusing to cache it at all. *)
  while Hashtbl.length c.tbl >= c.max_entries do
    evict_lru c
  done;
  while Hashtbl.length c.tbl > 0 && c.cur_bytes + entry.e_bytes > c.max_bytes do
    evict_lru c
  done;
  let s = { s_entry = entry; s_tick = 0 } in
  touch c s;
  Hashtbl.replace c.tbl k s;
  c.cur_bytes <- c.cur_bytes + entry.e_bytes;
  Stats.set_gauge st_bytes (float_of_int c.cur_bytes);
  entry

let add_front_ns e ns = e.e_front_ns <- Int64.add e.e_front_ns ns
let credit_warm e = Stats.add_span_ns st_warm_saved e.e_front_ns

(* A pooled frame is only reusable if its name table is exactly the
   requested layout — setup-seeded extras can differ between runs of the
   same source, and slot numbering is positional. *)
let layout_matches (f : Frame.t) ~p layout =
  f.Frame.p = p
  &&
  let n = Array.length f.Frame.names in
  let rec go i = function
    | [] -> i = n
    | x :: rest -> i < n && String.equal f.Frame.names.(i) x && go (i + 1) rest
  in
  go 0 layout

let take_frame e ~p layout =
  match e.e_frames with
  | f :: rest when layout_matches f ~p layout ->
      e.e_frames <- rest;
      Frame.reset f;
      f
  | _ -> Frame.create ~p layout

let release_frame e f = e.e_frames <- f :: e.e_frames
