(** Plural values: the data model of the SIMD VM.

    A value is either a front-end scalar (living on the array control
    unit), a front-end array, or a {e plural} value with one component per
    processor (paper §2: "scalars of the F77 version will be replicated in
    the F90simd version").  Plural components on lanes that are masked out
    are unspecified; operations only compute on active lanes. *)

open Lf_lang

type t =
  | FScalar of Values.value
  | FArr of Values.arr
  | Plural of Values.value array

let pp ppf = function
  | FScalar v -> Values.pp ppf v
  | FArr a -> Values.pp ppf (Values.VArr a)
  | Plural vs ->
      Fmt.pf ppf "<%a>"
        Fmt.(list ~sep:(any ", ") Values.pp)
        (Array.to_list vs)

let to_string v = Fmt.str "%a" pp v

(** Broadcast a front-end scalar to all lanes. *)
let broadcast p v = Plural (Array.make p v)

(** Per-lane view of any value: lane [i] of a front-end scalar is the
    scalar itself. *)
let lane v i =
  match v with
  | FScalar s -> s
  | Plural vs -> vs.(i)
  | FArr _ -> Errors.runtime_error "front-end array used as a plural value"

let is_plural = function Plural _ -> true | _ -> false

let as_front_scalar = function
  | FScalar v -> v
  | Plural _ -> Errors.runtime_error "plural value in a front-end context"
  | FArr _ -> Errors.runtime_error "array value in a scalar context"

let as_front_bool v = Values.as_bool (as_front_scalar v)
let as_front_int v = Values.as_int (as_front_scalar v)

(** Lift a scalar binary operation lane-wise; computes only active lanes,
    leaving an inert zero elsewhere. *)
let lift2 ~(mask : bool array) f a b =
  match (a, b) with
  | FScalar x, FScalar y -> FScalar (f x y)
  | (Plural _ | FScalar _), (Plural _ | FScalar _) ->
      let p = Array.length mask in
      Plural
        (Array.init p (fun i ->
             if mask.(i) then f (lane a i) (lane b i) else Values.VInt 0))
  | _ -> Errors.runtime_error "array operand in a lane-wise operation"

let lift1 ~(mask : bool array) f a =
  match a with
  | FScalar x -> FScalar (f x)
  | Plural _ ->
      let p = Array.length mask in
      Plural
        (Array.init p (fun i ->
             if mask.(i) then f (lane a i) else Values.VInt 0))
  | FArr _ -> Errors.runtime_error "array operand in a lane-wise operation"

(** Witness value used to type a reduction's identity element: the first
    lane of a plural, the scalar itself otherwise. *)
let witness = function
  | FScalar s -> s
  | Plural vs -> if Array.length vs = 0 then Values.VInt 0 else vs.(0)
  | FArr _ -> Values.VInt 0

(** Type-correct identity for the MAXVAL / MINVAL / SUM reductions,
    matching the witness's type.  (Historically the VM used the integer
    sentinels [VInt min_int] / [VInt max_int] / [VInt 0] even for real
    lanes, so an all-masked MAXVAL over a REAL plural produced an
    INTEGER.) *)
let reduction_identity key (witness : Values.value) : Values.value =
  match witness with
  | Values.VReal _ -> (
      match key with
      | "maxval" -> Values.VReal neg_infinity
      | "minval" -> Values.VReal infinity
      | _ -> Values.VReal 0.0)
  | Values.VBool _ -> (
      match key with
      | "maxval" -> Values.VBool false
      | "minval" -> Values.VBool true
      | _ -> Values.VInt 0)
  | _ -> (
      match key with
      | "maxval" -> Values.VInt min_int
      | "minval" -> Values.VInt max_int
      | _ -> Values.VInt 0)

(** Reduce a plural value over the active lanes.  [empty] is returned when
    no lane is active.

    The fold follows the canonical chunked merge tree shared by all
    engines (see [Pool]): one partial per [Pool.chunk]-lane chunk, each
    initialized at its first active lane, then the non-empty partials are
    merged left-to-right in ascending chunk order.  The chunk grid
    depends only on [p], so a float SUM is bitwise identical whether the
    lanes are folded here, by the serial compiled engine, or by the
    parallel engine at any jobs count. *)
let reduce ~(mask : bool array) ~empty f v =
  match v with
  | Plural vs ->
      let p = Array.length mask in
      let acc = ref None in
      for c = 0 to Pool.nchunks p - 1 do
        let l = c * Pool.chunk and h = min p ((c + 1) * Pool.chunk) in
        let part = ref None in
        for i = l to h - 1 do
          if mask.(i) then
            part :=
              Some (match !part with None -> vs.(i) | Some a -> f a vs.(i))
        done;
        match !part with
        | None -> ()
        | Some pv ->
            acc := Some (match !acc with None -> pv | Some a -> f a pv)
      done;
      Option.value ~default:empty !acc
  | FScalar s -> if Array.exists Fun.id mask then s else empty
  | FArr _ -> Errors.runtime_error "array operand in a plural reduction"
