(** Typed verifier for the slot-resolved IR: independently re-derives
    every optimizer annotation after lowering and after each [Opt]
    phase, raising rule-coded located diagnostics (rendered by the CLIs
    in the flattenlint style) when a phase broke the IR.

    Rules:
    - IR001 — slot references resolve in the frame to the claimed name
    - IR002 — fused regions are postorder (operands precede users)
    - IR003 — fused regions hold only fusible operations
    - IR004 — scratch groups are interference-free under a re-derived
      backward liveness over the linearized evaluation order
    - IR005 — full-mask claims only outside WHERE/plural-IF branches
    - IR006 — scatter-accumulate claims match the required shape
    - IR007 — range claims contain the re-derived abstract interval
      (claimed ⊇ derived ⊇ concrete per-lane values)
    - IR008 — parallel-scatter claims re-prove pairwise lane-disjoint *)

(** Rule codes with one-line summaries, for [flattenlint --rules]. *)
val rules : (string * string) list

val rule_doc : string -> string option

exception Error of Lf_analysis.Lint.diag list

(** Check the IR against the frame it was lowered with; [phase] names
    the optimizer pass whose output is being checked and is cited in
    every diagnostic.  @raise Error on any violation.  Records
    [verify.checks]/[verify.phases] (section [Opt]) and a Volatile
    span timer when [Stats] is enabled. *)
val check_ir : frame:Frame.t -> phase:string -> Ir.block -> unit
