(** Lane-sharded execution for the compiled SIMD engine: a persistent
    Domain pool plus the [exec] dispatch record.

    Control flow, scalar state, [Metrics], fuel and trace emission stay
    on the calling domain (the paper's single control unit); only the
    per-lane loop of each vector instruction fans out, over contiguous
    chunk-aligned shards of the [p] lanes.

    All reductions — in every engine — fold one partial per 64-lane
    {e chunk} and merge partials in ascending chunk order.  The chunk
    grid depends only on [p], never on [jobs], so a float SUM is bitwise
    identical across the tree-walker, the serial compiled engine and the
    parallel engine at any jobs count. *)

val chunk : int
(** Reduction chunk width (64 lanes); shard boundaries are multiples. *)

val nchunks : int -> int
(** [nchunks p] = number of chunks covering [0, p) (0 when [p = 0]). *)

val ranges : p:int -> jobs:int -> (int * int) array
(** Partition [0, p) into at most [jobs] contiguous chunk-aligned
    non-empty half-open shards [(lo, hi)], ascending, disjoint,
    covering.  A single (possibly empty) shard when [p <= chunk] or
    [jobs = 1].  @raise Invalid_argument when [jobs < 1]. *)

type exec = {
  x_p : int;  (** number of lanes *)
  x_ranges : (int * int) array;  (** the shard partition of [0, p) *)
  x_run : (int -> int -> int -> unit) -> unit;
      (** [x_run f] applies [f shard lo hi] to every shard, concurrently
          when pool-backed.  All shards complete before [x_run] returns;
          if several raise, the lowest shard's exception is rethrown —
          the error of the globally first failing lane, matching the
          serial engines. *)
}

val nshards : exec -> int

val serial_exec : p:int -> exec
(** One shard, run inline — the serial compiled engine's executor. *)

val parallel_exec : p:int -> jobs:int -> exec
(** Shard over the persistent pool ([jobs - 1] workers grown on demand;
    the caller runs shard 0).  Degenerates to [serial_exec] when the
    partition has a single shard ([jobs = 1] or [p <= chunk]).  Workers
    block on a condition variable between dispatches and are joined at
    process exit.  @raise Invalid_argument when [jobs < 1]. *)

val default_jobs : unit -> int
(** [min 8 (Domain.recommended_domain_count ())], at least 1. *)

val shutdown : unit -> unit
(** Quit and join all pool workers (registered [at_exit]; idempotent). *)
