(** Lane-sharded execution: a persistent Domain pool and the [exec]
    dispatch record threaded through the compiled engine.

    The parallel engine keeps the paper's machine model intact: one
    control unit (the caller's domain) issues every vector instruction,
    accounts [Metrics], burns fuel and emits trace events; only the
    per-lane loop of each instruction is fanned out, with the [p] lanes
    partitioned into contiguous shards — exactly a CM-2 sequencer
    broadcasting one instruction to banks of independent PEs.

    Shard boundaries are aligned to the reduction [chunk] (64 lanes), so
    every shard folds whole chunks.  Reductions compute one partial per
    {e chunk} (not per shard) and merge the partials left-to-right in
    ascending chunk order; because the chunk grid is independent of
    [jobs], a float SUM is bitwise identical at any jobs count, and the
    serial compiled engine (which folds the same grid with one shard) and
    the tree-walker (see [Pval.reduce]) agree bit-for-bit.

    Workers hand off through a [Mutex]/[Condition] per worker (blocking,
    not spinning — correct even when the host has fewer cores than
    jobs).  Shards are not pre-assigned to workers: every participant —
    the control domain included — pulls shard indices from a per-dispatch
    atomic counter.  On an oversubscribed host the control domain
    typically drains every shard itself before a worker is even
    scheduled, so a dispatch degrades to the serial loop plus a few
    condition signals instead of a context-switch round trip per vector
    instruction; on a machine with spare cores the workers wake and
    steal the remaining shards.  Which domain runs a shard is
    irrelevant to determinism: shard [k] always executes thunk [k], so
    reduction merge order, error ordering and trace-buffer assignment
    depend only on the partition.  A shard that raises is recorded;
    after the join the exception of the {e lowest} shard index is
    rethrown, which is the error of the globally first failing lane —
    the same error the serial engines raise. *)

(* ------------------------------------------------------------------ *)
(* Pool-health telemetry                                               *)
(* ------------------------------------------------------------------ *)

(* All pool metrics live in the [Volatile] section: which participant
   drains a shard — and how long it stays busy — depends on the OS
   scheduler, so none of these are deterministic across runs.  The
   sharded accumulators give every dispatch participant a private cell
   (cell 0 = the control domain draining inline, cells 1.. = pool
   workers, bounded by [max_jobs] < [Stats.max_cells]); the pool join
   orders the workers' plain writes before the control thread's merge. *)
module Stats = Lf_obs.Stats

let st_dispatches = Stats.counter ~section:Stats.Volatile "pool.dispatches"

let st_reentrant =
  Stats.counter ~section:Stats.Volatile "pool.reentrant_dispatches"

let st_shards_drained = Stats.sharded "pool.shards_drained"
let st_busy_ns = Stats.sharded "pool.busy_ns"
let st_imbalance = Stats.gauge "pool.shard_imbalance"

(* ------------------------------------------------------------------ *)
(* Chunked lane partitioning                                           *)
(* ------------------------------------------------------------------ *)

let chunk = 64
let nchunks p = (p + chunk - 1) / chunk

(** Partition [0, p) into at most [jobs] contiguous, chunk-aligned,
    non-empty shards (a single possibly-empty shard when [p = 0]).
    Ascending, disjoint, covering. *)
let ranges ~p ~jobs =
  if jobs < 1 then invalid_arg "Pool.ranges: jobs must be >= 1";
  let nc = nchunks p in
  if nc <= 1 then [| (0, p) |]
  else
    let n = min jobs nc in
    Array.init n (fun k ->
        let lo_c = k * nc / n and hi_c = (k + 1) * nc / n in
        (lo_c * chunk, min p (hi_c * chunk)))

(* ------------------------------------------------------------------ *)
(* Persistent worker pool                                              *)
(* ------------------------------------------------------------------ *)

type job = Idle | Run of (unit -> unit) | Quit

type worker = {
  w_mu : Mutex.t;
  w_cv : Condition.t;
  mutable w_job : job;
  mutable w_dom : unit Domain.t option;  (** filled right after spawn *)
}

type pool = {
  p_mu : Mutex.t;  (** guards [p_workers] growth and [p_busy] *)
  mutable p_workers : worker list;  (** newest first *)
  mutable p_busy : bool;  (** a dispatch is in flight *)
  done_mu : Mutex.t;
  done_cv : Condition.t;
}

let the_pool =
  {
    p_mu = Mutex.create ();
    p_workers = [];
    p_busy = false;
    done_mu = Mutex.create ();
    done_cv = Condition.create ();
  }

let rec worker_loop (w : worker) =
  Mutex.lock w.w_mu;
  while w.w_job = Idle do
    Condition.wait w.w_cv w.w_mu
  done;
  let job = w.w_job in
  w.w_job <- Idle;
  Mutex.unlock w.w_mu;
  match job with
  | Idle -> assert false
  | Quit -> ()
  | Run f ->
      (* [f] traps its own exception into the dispatch's error slots; a
         leak here must never kill the worker. *)
      (try f () with _ -> ());
      worker_loop w

let shutdown () =
  Mutex.lock the_pool.p_mu;
  let ws = the_pool.p_workers in
  the_pool.p_workers <- [];
  Mutex.unlock the_pool.p_mu;
  List.iter
    (fun w ->
      Mutex.lock w.w_mu;
      w.w_job <- Quit;
      Condition.signal w.w_cv;
      Mutex.unlock w.w_mu)
    ws;
  List.iter (fun w -> Option.iter Domain.join w.w_dom) ws

let at_exit_registered = ref false

(* Helpers beyond the host's spare cores cannot run concurrently anyway;
   waking them only buys scheduler round trips (and every transiently
   awake domain must be rendezvoused by each stop-the-world minor GC).
   Shards are decoupled from workers by the stealing counter, so
   [min (nshards - 1) (cores - 1)] helpers suffice for any partition —
   on a single-core host that is zero, and a dispatch degrades to the
   caller draining every shard inline. *)
let spare_cores = lazy (max 0 (Domain.recommended_domain_count () - 1))

(** Grow the pool to at least [n] workers (idempotent). *)
let ensure_workers n =
  Mutex.lock the_pool.p_mu;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Stdlib.at_exit shutdown
  end;
  let have = List.length the_pool.p_workers in
  for _ = have + 1 to n do
    let w =
      { w_mu = Mutex.create (); w_cv = Condition.create (); w_job = Idle;
        w_dom = None }
    in
    w.w_dom <- Some (Domain.spawn (fun () -> worker_loop w));
    the_pool.p_workers <- w :: the_pool.p_workers
  done;
  Mutex.unlock the_pool.p_mu

(** Run every thunk once, shared between the calling domain and the
    pool workers; returns after all complete.  Every participant pulls
    indices from a per-dispatch atomic counter, so whichever domains the
    scheduler actually runs, each thunk executes exactly once and the
    caller never blocks unless a worker is mid-thunk.  The per-dispatch
    closure captures its own counters: a worker waking up late (after
    the caller has already drained the counter) finds it exhausted and
    goes back to sleep, and can never touch a later dispatch's thunks.
    Falls back to running everything inline on the caller when a
    dispatch is already in flight (re-entrant use, e.g. a per-lane
    callback that itself spins up a VM) — slower, never wrong. *)
let dispatch (thunks : (unit -> unit) array) =
  let n = Array.length thunks in
  Mutex.lock the_pool.p_mu;
  let workers =
    if the_pool.p_busy then None
    else begin
      the_pool.p_busy <- true;
      (* newest-first list: any subset of workers will do *)
      Some (Array.of_list the_pool.p_workers)
    end
  in
  Mutex.unlock the_pool.p_mu;
  match workers with
  | None ->
      let stats_on = Stats.enabled () in
      let t0 = if stats_on then Stats.now_ns () else 0L in
      Array.iter (fun t -> t ()) thunks;
      if stats_on then begin
        Stats.incr st_reentrant;
        Stats.cell_add st_shards_drained ~cell:0 n;
        Stats.cell_add st_busy_ns ~cell:0
          (Int64.to_int (Int64.sub (Stats.now_ns ()) t0))
      end
  | Some ws ->
      Stats.incr st_dispatches;
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock the_pool.p_mu;
          the_pool.p_busy <- false;
          Mutex.unlock the_pool.p_mu)
        (fun () ->
          let next = Atomic.make 0 in
          let completed = Atomic.make 0 in
          (* [pid] is the participant's private telemetry cell: 0 for
             the control domain, the 1-based helper index otherwise. *)
          let drain pid =
            let stats_on = Stats.enabled () in
            let t0 = if stats_on then Stats.now_ns () else 0L in
            let mine = ref 0 in
            let rec go () =
              let k = Atomic.fetch_and_add next 1 in
              if k < n then begin
                thunks.(k) ();
                Atomic.incr completed;
                incr mine;
                go ()
              end
            in
            go ();
            if stats_on then begin
              Stats.cell_add st_shards_drained ~cell:pid !mine;
              Stats.cell_add st_busy_ns ~cell:pid
                (Int64.to_int (Int64.sub (Stats.now_ns ()) t0))
            end;
            (* wake the caller iff we just finished the last thunk and
               it may be waiting; signalling under [done_mu] pairs with
               the caller's check-then-wait and cannot be lost *)
            if Atomic.get completed = n then begin
              Mutex.lock the_pool.done_mu;
              Condition.signal the_pool.done_cv;
              Mutex.unlock the_pool.done_mu
            end
          in
          let helpers = min (n - 1) (Array.length ws) in
          for k = 1 to helpers do
            let w = ws.(k - 1) in
            Mutex.lock w.w_mu;
            w.w_job <- Run (fun () -> drain k);
            Condition.signal w.w_cv;
            Mutex.unlock w.w_mu
          done;
          drain 0;
          Mutex.lock the_pool.done_mu;
          while Atomic.get completed < n do
            Condition.wait the_pool.done_cv the_pool.done_mu
          done;
          Mutex.unlock the_pool.done_mu)

(* ------------------------------------------------------------------ *)
(* The exec record                                                     *)
(* ------------------------------------------------------------------ *)

type exec = {
  x_p : int;  (** number of lanes *)
  x_ranges : (int * int) array;
      (** the shard partition of [0, p); singleton for serial execution *)
  x_run : (int -> int -> int -> unit) -> unit;
      (** [x_run f] applies [f shard lo hi] to every shard; shards run
          concurrently when pool-backed.  If several shards raise, the
          lowest shard's exception is rethrown after the join. *)
}

let nshards e = Array.length e.x_ranges

let serial_exec ~p =
  { x_p = p; x_ranges = [| (0, p) |]; x_run = (fun f -> f 0 0 p) }

let run_sharded ranges f =
  let n = Array.length ranges in
  let errs = Array.make n None in
  let thunk k () =
    let lo, hi = ranges.(k) in
    try f k lo hi with e -> errs.(k) <- Some e
  in
  dispatch (Array.init n thunk);
  Array.iter (function Some e -> raise e | None -> ()) errs

let max_jobs = 64

let parallel_exec ~p ~jobs =
  if jobs < 1 then invalid_arg "Pool.parallel_exec: jobs must be >= 1";
  let jobs = min jobs max_jobs in
  let rs = ranges ~p ~jobs in
  if Array.length rs = 1 then
    (* jobs = 1, or too few chunks to split: the serial fast path — no
       pool traffic, no error-slot allocation. *)
    { (serial_exec ~p) with x_ranges = rs }
  else begin
    if Stats.enabled () && p > 0 then begin
      let mx =
        Array.fold_left (fun acc (lo, hi) -> max acc (hi - lo)) 0 rs
      in
      let mean = float_of_int p /. float_of_int (Array.length rs) in
      Stats.set_gauge st_imbalance (float_of_int mx /. mean)
    end;
    ensure_workers (min (Array.length rs - 1) (Lazy.force spare_cores));
    { x_p = p; x_ranges = rs; x_run = (fun f -> run_sharded rs f) }
  end

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))
