(** Plural values: the data model of the SIMD VM — front-end scalars and
    arrays on the control unit, plural values with one component per
    processor (paper §2).  Components on masked-out lanes are unspecified;
    operations compute only on active lanes. *)

open Lf_lang

type t =
  | FScalar of Values.value
  | FArr of Values.arr
  | Plural of Values.value array

val pp : t Fmt.t
val to_string : t -> string

(** Broadcast a front-end scalar to all [p] lanes. *)
val broadcast : int -> Values.value -> t

(** Per-lane view: lane [i] of a front-end scalar is the scalar itself;
    raises on arrays. *)
val lane : t -> int -> Values.value

val is_plural : t -> bool

(** Raise unless the value is a front-end scalar. *)
val as_front_scalar : t -> Values.value

val as_front_bool : t -> bool
val as_front_int : t -> int

(** Lift a scalar binary operation lane-wise under the mask. *)
val lift2 :
  mask:bool array ->
  (Values.value -> Values.value -> Values.value) ->
  t ->
  t ->
  t

val lift1 : mask:bool array -> (Values.value -> Values.value) -> t -> t

(** Witness used to type a reduction's identity: the first lane of a
    plural, the scalar itself for a front-end scalar. *)
val witness : t -> Values.value

(** Type-correct identity element for ["maxval"] / ["minval"] / ["sum"],
    keyed by the witness's type (REAL reductions get real infinities /
    0.0 rather than the historical integer sentinels). *)
val reduction_identity : string -> Values.value -> Values.value

(** Reduce a plural value over the active lanes; [empty] when none are. *)
val reduce :
  mask:bool array ->
  empty:Values.value ->
  (Values.value -> Values.value -> Values.value) ->
  t ->
  Values.value
