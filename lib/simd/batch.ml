(** Batch run driver (see batch.mli).

    Everything sequential runs on the control thread: the cache is
    touched between items only, the parallel engine shards lanes
    internally, and source reads are memoized per path — a grid of
    items over the same few programs reads and parses each source
    once. *)

open Lf_lang
module Json = Lf_obs.Json
module Stats = Lf_obs.Stats

type item = {
  bi_program : string;
  bi_p : int;
  bi_engine : Vm.engine;
  bi_opt : int;
  bi_jobs : int option;
  bi_verify : bool;
  bi_fuel : int option;
  bi_timeout_ms : int option;
  bi_repeat : int;
  bi_kernel : string option;
  bi_sets : (string * string) list;
  bi_fills : (string * string) list;
}

exception Bad_jobs of string
exception Bad_value of string

(* -- seed-value parsing (shared with simdsim's --set/--fill) -------- *)

let scalar_value v =
  match int_of_string_opt v with
  | Some n -> Values.VInt n
  | None -> (
      match float_of_string_opt v with
      | Some f -> Values.VReal f
      | None -> (
          match String.lowercase_ascii v with
          | "true" -> Values.VBool true
          | "false" -> Values.VBool false
          | _ ->
              raise
                (Bad_value
                   (Printf.sprintf
                      "invalid scalar value %S: expected int, real, true \
                       or false"
                      v))))

let fill_array v =
  let items = String.split_on_char ',' v in
  let ints = List.filter_map int_of_string_opt items in
  if List.length ints = List.length items then
    Values.AInt (Nd.of_array (Array.of_list ints))
  else
    Values.AReal
      (Nd.of_array
         (Array.of_list
            (List.map
               (fun tok ->
                 match float_of_string_opt tok with
                 | Some f -> f
                 | None ->
                     raise
                       (Bad_value
                          (Printf.sprintf
                             "invalid array element %S: expected int or \
                              real"
                             tok)))
               items)))

(* -- work-list parsing --------------------------------------------- *)

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_jobs m)) fmt

let field obj k = Json.member k obj

let get_int ~what = function
  | Some (Json.Int n) -> Some n
  | Some _ -> bad "%s: expected an integer" what
  | None -> None

let get_bool ~what = function
  | Some (Json.Bool b) -> Some b
  | Some _ -> bad "%s: expected a boolean" what
  | None -> None

let get_str ~what = function
  | Some (Json.Str s) -> Some s
  | Some _ -> bad "%s: expected a string" what
  | None -> None

let get_bindings ~what = function
  | None -> []
  | Some (Json.Obj fields) ->
      List.map
        (fun (k, v) ->
          match v with
          | Json.Str s -> (String.lowercase_ascii k, s)
          | Json.Int n -> (String.lowercase_ascii k, string_of_int n)
          | Json.Float f ->
              (String.lowercase_ascii k, Printf.sprintf "%.17g" f)
          | _ -> bad "%s.%s: expected a string or number" what k)
        fields
  | Some _ -> bad "%s: expected an object of name -> value" what

let item_of_json i j =
  let what k = Printf.sprintf "item %d: %s" i k in
  match j with
  | Json.Obj _ ->
      let program =
        match get_str ~what:(what "program") (field j "program") with
        | Some s -> s
        | None -> bad "item %d: missing required field \"program\"" i
      in
      let p =
        match get_int ~what:(what "p") (field j "p") with
        | Some n when n >= 1 -> n
        | Some n -> bad "item %d: p = %d: must be >= 1" i n
        | None -> bad "item %d: missing required field \"p\"" i
      in
      let engine =
        match get_str ~what:(what "engine") (field j "engine") with
        | None | Some "compiled" -> `Compiled
        | Some "tree-walk" -> `Tree_walk
        | Some "parallel" -> `Parallel
        | Some s ->
            bad
              "item %d: engine %S: expected tree-walk, compiled or parallel"
              i s
      in
      let opt =
        match get_int ~what:(what "opt") (field j "opt") with
        | None -> 1
        | Some n when n >= 0 && n <= 2 -> n
        | Some n -> bad "item %d: opt = %d: expected 0, 1 or 2" i n
      in
      let jobs =
        match get_int ~what:(what "jobs") (field j "jobs") with
        | Some n when n < 1 -> bad "item %d: jobs = %d: must be >= 1" i n
        | v ->
            if v <> None && engine <> `Parallel then
              bad "item %d: jobs requires \"engine\": \"parallel\"" i
            else v
      in
      let fuel =
        match get_int ~what:(what "fuel") (field j "fuel") with
        | Some n when n < 1 -> bad "item %d: fuel = %d: must be >= 1" i n
        | v -> v
      in
      let timeout_ms =
        match get_int ~what:(what "timeout_ms") (field j "timeout_ms") with
        | Some n when n < 1 ->
            bad "item %d: timeout_ms = %d: must be >= 1" i n
        | v -> v
      in
      let repeat =
        match get_int ~what:(what "repeat") (field j "repeat") with
        | None -> 1
        | Some n when n >= 1 -> n
        | Some n -> bad "item %d: repeat = %d: must be >= 1" i n
      in
      {
        bi_program = program;
        bi_p = p;
        bi_engine = engine;
        bi_opt = opt;
        bi_jobs = jobs;
        bi_verify =
          Option.value ~default:false
            (get_bool ~what:(what "verify") (field j "verify"));
        bi_fuel = fuel;
        bi_timeout_ms = timeout_ms;
        bi_repeat = repeat;
        bi_kernel = get_str ~what:(what "kernel") (field j "kernel");
        bi_sets = get_bindings ~what:(what "set") (field j "set");
        bi_fills = get_bindings ~what:(what "fill") (field j "fill");
      }
  | _ -> bad "item %d: expected an object" i

let items_of_json = function
  | Json.List items -> List.mapi item_of_json items
  | Json.Obj _ as obj -> (
      match Json.member "jobs" obj with
      | Some (Json.List items) -> List.mapi item_of_json items
      | Some _ -> bad "\"jobs\": expected an array of items"
      | None -> bad "expected an array of items or {\"jobs\": [...]}")
  | _ -> bad "expected an array of items or {\"jobs\": [...]}"

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse text with
  | Ok j -> items_of_json j
  | Error msg -> bad "%s: %s" path msg

(* -- execution ------------------------------------------------------ *)

let engine_name = function
  | `Tree_walk -> "tree-walk"
  | `Compiled -> "compiled"
  | `Parallel -> "parallel"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One VM state line per variable, sorted by name — the deterministic
   state artifact warm-vs-cold smokes byte-compare. *)
let dump_state ppf (vm : Vm.t) =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) vm.Vm.vars []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, e) ->
         match e with
         | Vm.VScalar r -> Fmt.pf ppf "%s = %a@." name Values.pp !r
         | Vm.VPlural vs ->
             Fmt.pf ppf "%s = %a@." name Pval.pp (Pval.Plural vs)
         | Vm.VGlobal a | Vm.VPluralArr a ->
             Fmt.pf ppf "%s = %a@." name Values.pp (Values.VArr a))

let run_item ~cache ~read ~setup (it : item) : (Vm.t, string) result =
  try
    let src = read it.bi_program in
    let deadline =
      Option.map
        (fun ms ->
          Int64.add (Stats.now_ns ()) (Int64.of_int (ms * 1_000_000)))
        it.bi_timeout_ms
    in
    let vm_setup vm =
      Vm.bind_scalar vm "p" (Values.VInt it.bi_p);
      setup it vm;
      List.iter
        (fun (k, v) -> Vm.bind_scalar vm k (scalar_value v))
        it.bi_sets;
      List.iter
        (fun (k, v) -> Vm.bind_global vm k (fill_array v))
        it.bi_fills;
      Option.iter
        (fun dl ->
          Vm.set_observer vm (fun _ ~mask:_ _ ->
              if Int64.compare (Stats.now_ns ()) dl > 0 then
                Errors.runtime_error "batch item timeout after %d ms"
                  (Option.get it.bi_timeout_ms)))
        deadline
    in
    let vm = ref None in
    for _ = 1 to it.bi_repeat do
      vm :=
        Some
          (Vm.run_src ?fuel:it.bi_fuel ~engine:it.bi_engine ?jobs:it.bi_jobs
             ~opt:it.bi_opt ~verify:it.bi_verify ~cache ~p:it.bi_p
             ~setup:vm_setup src)
    done;
    Ok (Option.get !vm)
  with
  | Sys_error msg -> Error msg
  | Bad_value msg -> Error msg
  | Verify.Error diags ->
      Error
        (String.concat "; "
           ("IR verification failed"
           :: List.map
                (fun d ->
                  Printf.sprintf "%s: %s" d.Lf_analysis.Lint.d_rule
                    d.Lf_analysis.Lint.d_msg)
                diags))
  | ( Errors.Lex_error _ | Errors.Parse_error _ | Errors.Type_error _
    | Errors.Runtime_error _ | Errors.Runtime_error_at _ ) as e ->
      Error (Errors.to_message e)

let record ~index (it : item) ~src_opt ~wall_ns outcome =
  let jobs_used =
    match it.bi_engine with
    | `Parallel -> Option.value it.bi_jobs ~default:(Pool.default_jobs ())
    | _ -> 1
  in
  let opt_used = match it.bi_engine with `Tree_walk -> 0 | _ -> it.bi_opt in
  let base =
    [
      ("schema", Json.Int 1);
      ("index", Json.Int index);
      ("program", Json.Str it.bi_program);
    ]
    @ (match src_opt with
      | Some src ->
          [
            ("program_md5", Json.Str (Digest.to_hex (Digest.string src)));
            ("program_bytes", Json.Int (String.length src));
          ]
      | None -> [])
    @ [
        ("engine", Json.Str (engine_name it.bi_engine));
        ("opt", Json.Int opt_used);
        ("jobs", Json.Int jobs_used);
        ("p", Json.Int it.bi_p);
        ("repeat", Json.Int it.bi_repeat);
        ("wall_ns", Json.Int (Int64.to_int wall_ns));
      ]
  in
  match outcome with
  | Ok (vm : Vm.t) ->
      Json.Obj
        (base
        @ [
            ("status", Json.Str "ok");
            ( "metrics",
              Metrics.to_json ~engine:(engine_name it.bi_engine)
                ~opt:opt_used ~jobs:jobs_used vm.Vm.metrics );
          ])
  | Error msg ->
      Json.Obj (base @ [ ("status", Json.Str "error"); ("error", Json.Str msg) ])

let write_artifacts dir ~index (vm : Vm.t) (it : item) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let jobs_used =
    match it.bi_engine with
    | `Parallel -> Option.value it.bi_jobs ~default:(Pool.default_jobs ())
    | _ -> 1
  in
  let opt_used = match it.bi_engine with `Tree_walk -> 0 | _ -> it.bi_opt in
  let mpath = Filename.concat dir (Printf.sprintf "item-%03d.metrics.json" index) in
  let oc = open_out mpath in
  output_string oc
    (Json.to_string
       (Metrics.to_json ~engine:(engine_name it.bi_engine) ~opt:opt_used
          ~jobs:jobs_used vm.Vm.metrics));
  output_char oc '\n';
  close_out oc;
  let spath = Filename.concat dir (Printf.sprintf "item-%03d.state.txt" index) in
  let oc = open_out spath in
  let ppf = Format.formatter_of_out_channel oc in
  dump_state ppf vm;
  Format.pp_print_flush ppf ();
  close_out oc

let run ?cache ?read ?(setup = fun _ _ -> ()) ?(emit = fun _ -> ())
    ?artifacts items =
  let cache = match cache with Some c -> c | None -> Progcache.create () in
  let read =
    match read with
    | Some f -> f
    | None ->
        (* Memoize source reads: a sweep over one program re-reads it
           zero times after the first item (the cache dedupes the parse
           by content; this dedupes the IO by path). *)
        let memo : (string, string) Hashtbl.t = Hashtbl.create 8 in
        fun path ->
          match Hashtbl.find_opt memo path with
          | Some s -> s
          | None ->
              let s = read_file path in
              Hashtbl.add memo path s;
              s
  in
  let any_failed = ref false in
  List.iteri
    (fun index it ->
      let t0 = Stats.now_ns () in
      let outcome = run_item ~cache ~read ~setup it in
      let wall_ns = Int64.sub (Stats.now_ns ()) t0 in
      let src_opt =
        try Some (read it.bi_program) with Sys_error _ -> None
      in
      (match outcome with
      | Ok vm -> Option.iter (fun d -> write_artifacts d ~index vm it) artifacts
      | Error _ -> any_failed := true);
      emit (record ~index it ~src_opt ~wall_ns outcome))
    items;
  !any_failed
