(* Benchmark harness.

   With no arguments: regenerate every table and figure of the paper
   (experiments E1-E11 of DESIGN.md) plus the ablations, then run the
   Bechamel micro-benchmarks quantifying the cost of the transformation
   itself (paper §6: the flattening overhead is "negligible").

   With [--experiment NAME]: run one experiment (see DESIGN.md's index:
   fig4 fig6 bounds transforms fig18 table1 table2 fig19 sparc nmax
   ablation-variants ablation-layout ablation-workloads all).

   With [--no-micro]: skip the Bechamel micro-benchmarks.
   With [--csv DIR]: additionally write table1.csv / table2.csv /
   fig18.csv into DIR for external plotting.
   With [--json FILE]: write the Bechamel estimates (test name -> ns per
   run) to FILE as JSON; implies running the micro-benchmarks even when
   an experiment is selected.  The dump leads with a "header" object
   (engine p, sweep p, jobs list, experiment, build profile, quick) that
   the baseline loader skips.  See EXPERIMENTS.md for the format.
   With [--quick]: run only the parse/transform micro subset with a
   short quota, and skip the paper experiments — the fast configuration
   the bench-gate smoke uses.
   With [--check --baseline FILE [--tolerance PCT]]: regression gate —
   after the run, compare every row against the baseline by name and
   exit 2 if any row is slower than baseline * (1 + PCT/100), or if no
   row matches the baseline at all.  Default tolerance 25%. *)

open Lf_lang

let example_nest_src =
  {|
  DO i = 1, k
    DO j = 1, l(i)
      x(i,j) = i * j
    ENDDO
  ENDDO
|}

(* The small repeat workload for the program-cache study: a handful of
   vector statements, so the parse -> lower -> optimize front end
   dominates a cold run and the cache's warm path has the most to
   amortize — the shape of a fuzz/bench sweep re-running one source
   across a grid. *)
let small_src =
  let b = Buffer.create 1024 in
  Buffer.add_string b "PROGRAM resweep\n";
  Buffer.add_string b "  u = iproc * 3\n";
  Buffer.add_string b "  r = u * 0.5\n";
  Buffer.add_string b "  s = u - u\n";
  for i = 1 to 8 do
    Buffer.add_string b
      (Printf.sprintf "  t%d = (u + %d) * (u - %d) + iproc * %d\n" i i i
         (i + 1));
    Buffer.add_string b
      (Printf.sprintf "  WHERE (t%d > %d * 2 + 1)\n" i i);
    Buffer.add_string b (Printf.sprintf "    s = s + t%d - %d\n" i i);
    Buffer.add_string b (Printf.sprintf "    r = r + t%d * 0.25\n" i);
    Buffer.add_string b "  ENDWHERE\n"
  done;
  Buffer.add_string b "END\n";
  Buffer.contents b

let small_p = 64

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let block = Parser.block_of_string example_nest_src in
  let nbforce_prog = Lf_kernels.Nbforce_src.program () in
  let mol = Lf_md.Workload.sod ~n:512 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  let machine = Lf_simd.Machine.decmpp ~p:64 in
  let flatten_opts =
    { Lf_core.Pipeline.default_options with assume_inner_nonempty = true }
  in
  let simd_opts =
    {
      flatten_opts with
      Lf_core.Pipeline.target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt 64 };
    }
  in
  [
    Test.make ~name:"parse-example"
      (Staged.stage (fun () -> Parser.block_of_string example_nest_src));
    Test.make ~name:"normalize+flatten (Fig. 12)"
      (Staged.stage (fun () ->
           let fresh = Lf_core.Fresh.of_block block in
           match Lf_core.Normalize.of_nest ~fresh (List.hd block) with
           | Ok nest ->
               Lf_core.Flatten.flatten ~fresh ~assume_inner_nonempty:true
                 Lf_core.Flatten.DoneTest nest
               |> Result.is_ok
           | Error _ -> false));
    Test.make ~name:"full pipeline: flatten NBFORCE (seq)"
      (Staged.stage (fun () ->
           Lf_core.Pipeline.flatten_program ~opts:flatten_opts nbforce_prog
           |> Result.is_ok));
    Test.make ~name:"full pipeline: flatten+SIMDize NBFORCE"
      (Staged.stage (fun () ->
           Lf_core.Pipeline.flatten_program ~opts:simd_opts nbforce_prog
           |> Result.is_ok));
    Test.make ~name:"safety analysis (dependence test)"
      (Staged.stage (fun () ->
           Lf_analysis.Parallel.check_loop (List.hd block)));
    Test.make ~name:"kernel Lf (N=512, Gran=64, 8A)"
      (Staged.stage (fun () ->
           Lf_kernels.Nbforce.run ~compute_forces:false Lf_kernels.Nbforce.Flat
             machine mol pl ~nmax:512));
    Test.make ~name:"kernel Lu2 (N=512, Gran=64, 8A)"
      (Staged.stage (fun () ->
           Lf_kernels.Nbforce.run ~compute_forces:false Lf_kernels.Nbforce.L2
             machine mol pl ~nmax:512));
    Test.make ~name:"pairlist build (N=512, 8A)"
      (Staged.stage (fun () -> Lf_md.Pairlist.build mol ~cutoff:8.0));
  ]

(* Execution-engine comparison: the same derived SIMD programs run
   end-to-end on the lockstep VM under the tree-walking reference engine
   and the compiled (slot-resolved) engine.  The registered force
   function is made trivially cheap so the measurement isolates
   interpreter overhead, which is what the compiled engine attacks.
   The lane count is MasPar-scale (the paper's DECmpp sports 1K-16K
   PEs); the workload keeps ~2 atoms per lane so the masked-WHERE
   utilization pattern matches the smaller Table 1/2 configurations. *)
(* Build a closure running the derived flat SIMD NBFORCE at a given lane
   count (~2 atoms per lane, like the Table 1/2 configurations). *)
let nbforce_runner ~p =
  let mol = Lf_md.Workload.sod ~n:(2 * p) () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  let n, maxp = Lf_kernels.Nbforce_src.params pl in
  let simd_opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p };
    }
  in
  let nbforce_flat =
    match
      Lf_core.Pipeline.flatten_program ~opts:simd_opts
        (Lf_kernels.Nbforce_src.program ())
    with
    | Ok o -> o.Lf_core.Pipeline.program
    | Error e -> Fmt.failwith "cannot derive SIMD NBFORCE: %s" e
  in
  fun ?jobs ?opt engine () ->
    Lf_simd.Vm.run ~engine ?jobs ?opt ~p
      ~setup:(fun vm ->
        Lf_simd.Vm.register_func vm ~pure:true "force" (fun _ -> Values.VReal 1.0);
        Lf_simd.Vm.bind_scalar vm "n" (Values.VInt n);
        Lf_simd.Vm.bind_scalar vm "maxp" (Values.VInt maxp);
        Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p);
        Lf_kernels.Nbforce_src.bind_arrays pl ~n ~maxp
          ~set_global:(fun name a -> Lf_simd.Vm.bind_global vm name a))
      nbforce_flat

let engine_p = 1024

(* A scatter-dominated kernel in the flattened shape: a strided
   induction vector walking a global array with a gather-modify-scatter
   in the guarded body.  The subscript is loop-carried, so the syntactic
   SIV prover cannot see it; only the flow-sensitive congruence domain
   ([i ≡ lane (mod p)]) proves the lanes disjoint.  Under the parallel
   engine the store is serial at -O1 and sharded at -O2; the WHERE
   guard's [i <= n] bound also discharges both per-lane bounds checks. *)
let scatter_runner ~p =
  let n = 64 * p in
  let src =
    Printf.sprintf
      "i = 1 + (iproc - 1)\n\
       WHILE (any(i <= n))\n\
      \  WHERE (i <= n)\n\
      \    g(i) = g(i) * 3 + i\n\
      \    i = i + %d\n\
      \  ENDWHERE\n\
       ENDWHILE"
      p
  in
  let prog = Ast.program "scatter" (Parser.block_of_string src) in
  fun ?jobs ?opt engine () ->
    Lf_simd.Vm.run ~engine ?jobs ?opt ~p
      ~setup:(fun vm ->
        Lf_simd.Vm.bind_scalar vm "n" (Values.VInt n);
        Lf_simd.Vm.bind_global vm "g" (Values.AInt (Nd.create [| n |] 0)))
      prog

let engine_tests () =
  let open Bechamel in
  let p = engine_p in
  let run_nbforce = nbforce_runner ~p in
  let run_scatter = scatter_runner ~p in
  let simd_opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p };
    }
  in
  (* the Fig. 7 shape: naive SIMDization of the ragged example nest *)
  let k = 4 * p in
  let ls = Array.init k (fun i -> 1 + (i mod 4)) in
  let maxl = Array.fold_left max 1 ls in
  let example_naive =
    let prog = Ast.program "example" (Parser.block_of_string example_nest_src) in
    match Lf_core.Pipeline.simdize_program_naive ~opts:simd_opts prog with
    | Ok o -> o.Lf_core.Pipeline.program
    | Error e -> Fmt.failwith "cannot derive naive SIMD example: %s" e
  in
  let run_example ?jobs ?opt engine () =
    Lf_simd.Vm.run ~engine ?jobs ?opt ~p
      ~setup:(fun vm ->
        Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p);
        Lf_simd.Vm.bind_scalar vm "k" (Values.VInt k);
        Lf_simd.Vm.bind_global vm "l" (Values.AInt (Nd.of_array ls));
        Lf_simd.Vm.bind_global vm "x"
          (Values.AInt (Nd.create [| k; maxl |] 0)))
      example_naive
  in
  (* the un-suffixed compiled/parallel rows run at the default -O1; the
     -O0 rows pin the optimizer off so the fusion win is measurable from
     one sweep (and comparable against pre-fusion baseline files, whose
     un-suffixed rows were effectively -O0) *)
  [
    Test.make ~name:"vm NBFORCE flat (tree-walk)"
      (Staged.stage (run_nbforce `Tree_walk));
    Test.make ~name:"vm NBFORCE flat (compiled)"
      (Staged.stage (run_nbforce `Compiled));
    Test.make ~name:"vm NBFORCE flat (compiled -O0)"
      (Staged.stage (run_nbforce ~opt:0 `Compiled));
    (* -O2: range-analysis claims discharge the per-lane bounds checks
       on the f/partners gathers and the f scatter-accumulate *)
    Test.make ~name:"vm NBFORCE flat (compiled -O2)"
      (Staged.stage (run_nbforce ~opt:2 `Compiled));
    (* the telemetry cost-model guard: the same run with the stats
       registry armed (per-opcode counters, mask buckets, GC deltas) *)
    Test.make ~name:"vm NBFORCE flat (compiled, stats)"
      (Staged.stage (fun () ->
           Lf_obs.Stats.enable ();
           Fun.protect ~finally:Lf_obs.Stats.disable (run_nbforce `Compiled)));
    Test.make ~name:"vm NBFORCE flat (parallel j4)"
      (Staged.stage (run_nbforce ~jobs:4 `Parallel));
    Test.make ~name:"vm NBFORCE flat (parallel j4 -O0)"
      (Staged.stage (run_nbforce ~jobs:4 ~opt:0 `Parallel));
    Test.make ~name:"vm NBFORCE flat (parallel j4 -O2)"
      (Staged.stage (run_nbforce ~jobs:4 ~opt:2 `Parallel));
    (* the scatter kernel: the global-array store serializes on the
       control thread at -O1 and shards at -O2 once the congruence
       domain proves the index sets pairwise lane-disjoint *)
    Test.make ~name:"vm scatter stride (compiled)"
      (Staged.stage (run_scatter `Compiled));
    Test.make ~name:"vm scatter stride (compiled -O2)"
      (Staged.stage (run_scatter ~opt:2 `Compiled));
    Test.make ~name:"vm scatter stride (parallel j4)"
      (Staged.stage (run_scatter ~jobs:4 `Parallel));
    Test.make ~name:"vm scatter stride (parallel j4 -O2)"
      (Staged.stage (run_scatter ~jobs:4 ~opt:2 `Parallel));
    Test.make ~name:"vm example naive (tree-walk)"
      (Staged.stage (run_example `Tree_walk));
    Test.make ~name:"vm example naive (compiled)"
      (Staged.stage (run_example `Compiled));
    Test.make ~name:"vm example naive (compiled -O0)"
      (Staged.stage (run_example ~opt:0 `Compiled));
    Test.make ~name:"vm example naive (parallel j4)"
      (Staged.stage (run_example ~jobs:4 `Parallel));
    (* the program cache: the same small source re-run from text, once
       paying the full front end every iteration and once through a
       shared cache (the first iteration fills it, the rest are warm) *)
    Test.make ~name:"vm repeat small (run_src cold)"
      (Staged.stage (fun () ->
           Lf_simd.Vm.run_src ~engine:`Compiled ~p:small_p small_src));
    (let cache = Lf_simd.Progcache.create () in
     Test.make ~name:"vm repeat small (run_src warm)"
       (Staged.stage (fun () ->
            Lf_simd.Vm.run_src ~engine:`Compiled ~cache ~p:small_p small_src)));
  ]

(* The --jobs sweep: flat NBFORCE at MasPar scale (p = 4096) on the
   serial compiled engine vs the lane-sharded parallel engine at each
   requested shard count.  The chunk-aligned shard grid guarantees the
   results are bitwise identical at every point of the sweep; only the
   wall-clock changes. *)
let sweep_p = 4096

let sweep_tests ~jobs () =
  let open Bechamel in
  let run_nbforce = nbforce_runner ~p:sweep_p in
  Test.make
    ~name:(Printf.sprintf "vm NBFORCE flat p%d (compiled)" sweep_p)
    (Staged.stage (run_nbforce `Compiled))
  :: List.map
       (fun j ->
         Test.make
           ~name:
             (Printf.sprintf "vm NBFORCE flat p%d (parallel j%d)" sweep_p j)
           (Staged.stage (run_nbforce ~jobs:j `Parallel)))
       jobs

let run_micro ~jobs ~quick ppf =
  let open Bechamel in
  Fmt.pf ppf "@.=== Micro-benchmarks (Bechamel; ns per run) ===@.@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    if quick then
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.125) ~stabilize:true ()
    else
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  (* a single tree-walk run of the engine comparison takes ~0.2 s; give
     that group a larger quota so the OLS fit sees enough samples *)
  let cfg_engine =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 3.0) ~stabilize:true ()
  in
  let rows_of cfg tests =
    let raw =
      Benchmark.all cfg [ instance ]
        (Test.make_grouped ~name:"lf" ~fmt:"%s %s" tests)
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> Some e
          | _ -> None
        in
        (name, est) :: acc)
      results []
  in
  let rows =
    (if quick then rows_of cfg (micro_tests ())
     else
       rows_of cfg (micro_tests ())
       @ rows_of cfg_engine (engine_tests ())
       @ rows_of cfg_engine (sweep_tests ~jobs ()))
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      let txt =
        match est with Some e -> Printf.sprintf "%.0f" e | None -> "-"
      in
      Fmt.pf ppf "  %-45s %12s ns@." name txt)
    rows;
  let est_of suffix =
    List.find_map
      (fun (name, est) ->
        if String.ends_with ~suffix name then est else None)
      rows
  in
  List.iter
    (fun kernel ->
      match
        ( est_of (Printf.sprintf "vm %s (tree-walk)" kernel),
          est_of (Printf.sprintf "vm %s (compiled)" kernel) )
      with
      | Some tree, Some comp when comp > 0.0 ->
          Fmt.pf ppf "  engine speedup on %s: %.1fx@." kernel (tree /. comp)
      | _ -> ())
    [ "NBFORCE flat"; "example naive" ];
  List.iter
    (fun kernel ->
      match
        ( est_of (Printf.sprintf "vm %s (compiled -O0)" kernel),
          est_of (Printf.sprintf "vm %s (compiled)" kernel) )
      with
      | Some o0, Some o1 when o1 > 0.0 ->
          Fmt.pf ppf "  fusion speedup (-O0 vs -O1) on %s: %.2fx@." kernel
            (o0 /. o1)
      | _ -> ())
    [ "NBFORCE flat"; "example naive" ];
  List.iter
    (fun kernel ->
      match
        ( est_of (Printf.sprintf "vm %s (compiled)" kernel),
          est_of (Printf.sprintf "vm %s (compiled -O2)" kernel) )
      with
      | Some o1, Some o2 when o2 > 0.0 ->
          Fmt.pf ppf
            "  bounds-check discharge speedup (-O1 vs -O2) on %s: %.2fx@."
            kernel (o1 /. o2)
      | _ -> ())
    [ "NBFORCE flat"; "scatter stride" ];
  (match
     ( est_of "vm scatter stride (parallel j4)",
       est_of "vm scatter stride (parallel j4 -O2)" )
   with
  | Some o1, Some o2 when o2 > 0.0 ->
      Fmt.pf ppf
        "  scatter sharding speedup (parallel j4, -O1 vs -O2): %.2fx@."
        (o1 /. o2)
  | _ -> ());
  (match
     ( est_of "vm NBFORCE flat (compiled)",
       est_of "vm NBFORCE flat (compiled, stats)" )
   with
  | Some off, Some on when off > 0.0 ->
      Fmt.pf ppf "  stats overhead on NBFORCE flat (compiled): %+.2f%%@."
        (100.0 *. (on -. off) /. off)
  | _ -> ());
  (match est_of (Printf.sprintf "vm NBFORCE flat p%d (compiled)" sweep_p) with
  | Some serial when serial > 0.0 ->
      List.iter
        (fun j ->
          match
            est_of
              (Printf.sprintf "vm NBFORCE flat p%d (parallel j%d)" sweep_p j)
          with
          | Some par when par > 0.0 ->
              Fmt.pf ppf
                "  parallel speedup on NBFORCE flat p%d, jobs=%d: %.2fx@."
                sweep_p j (serial /. par)
          | _ -> ())
        jobs
  | _ -> ());
  rows

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--baseline FILE)                               *)
(* ------------------------------------------------------------------ *)

(* The speedup table: every current row matched against the baseline by
   test name; speedup > 1 means the current run is faster. *)
let print_baseline_table ppf ~baseline_file baseline rows =
  Fmt.pf ppf "@.=== Comparison vs baseline %s ===@.@." baseline_file;
  Fmt.pf ppf "  %-45s %14s %14s %9s@." "" "baseline ns" "current ns"
    "speedup";
  let matched = ref 0 in
  List.iter
    (fun (name, est) ->
      match (est, List.assoc_opt name baseline) with
      | Some cur, Some base when cur > 0.0 ->
          incr matched;
          Fmt.pf ppf "  %-45s %14.1f %14.1f %8.2fx@." name base cur
            (base /. cur)
      | Some cur, None -> Fmt.pf ppf "  %-45s %14s %14.1f@." name "-" cur
      | _ -> ())
    rows;
  if !matched = 0 then
    Fmt.pf ppf "  (no test names in common with the baseline)@.";
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name rows) then
        Fmt.pf ppf "  %-45s (baseline only)@." name)
    baseline

(* The dump header: which configuration produced these numbers.  The
   baseline loader keeps only numeric fields, so a "header" object is
   invisible to --baseline / --check and older dumps without one load
   unchanged. *)
let dump_header ~experiment ~jobs ~quick =
  Lf_obs.Json.Obj
    [
      ("p", Lf_obs.Json.Int engine_p);
      ("sweep_p", Lf_obs.Json.Int sweep_p);
      ("jobs", Lf_obs.Json.List (List.map (fun j -> Lf_obs.Json.Int j) jobs));
      ( "experiment",
        match experiment with
        | Some e -> Lf_obs.Json.Str e
        | None -> Lf_obs.Json.Null );
      ( "profile",
        Lf_obs.Json.Str
          (Option.value ~default:"unknown" (Sys.getenv_opt "DUNE_PROFILE")) );
      ("quick", Lf_obs.Json.Bool quick);
    ]

(* one decimal, like the historical hand-rolled dumps *)
let round1 ns = Float.round (ns *. 10.0) /. 10.0

(* With --baseline, --json records the deltas instead of the flat
   estimates: {"name": {"ns": .., "baseline_ns": .., "speedup": ..}};
   rows absent from the baseline carry only "ns".  Without --baseline the
   flat {"name": ns_per_run} format is kept (that is what --baseline
   loads back).  Both begin with the header object. *)
let write_json_deltas ~header file baseline rows =
  let fields =
    List.filter_map
      (fun (name, est) ->
        Option.map
          (fun ns ->
            let deltas =
              match List.assoc_opt name baseline with
              | Some base when ns > 0.0 ->
                  [
                    ("baseline_ns", Lf_obs.Json.Float base);
                    ("speedup", Lf_obs.Json.Float (base /. ns));
                  ]
              | _ -> []
            in
            (name, Lf_obs.Json.Obj (("ns", Lf_obs.Json.Float ns) :: deltas)))
          est)
      rows
  in
  let oc = open_out file in
  Lf_obs.Json.to_channel oc (Lf_obs.Json.Obj (("header", header) :: fields));
  output_char oc '\n';
  close_out oc

(* flat estimates dump: {"header": {...}, "name": ns_per_run, ...};
   estimates that did not converge are omitted *)
let write_json ~header file rows =
  let fields =
    List.filter_map
      (fun (name, est) ->
        Option.map (fun e -> (name, Lf_obs.Json.Float (round1 e))) est)
      rows
  in
  let oc = open_out file in
  Lf_obs.Json.to_channel oc (Lf_obs.Json.Obj (("header", header) :: fields));
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Regression gate (--check)                                           *)
(* ------------------------------------------------------------------ *)

(* Compare every current row against the baseline by name; a row is a
   regression when it is slower than baseline * (1 + tolerance/100).
   An empty intersection also fails: a gate that silently compares
   nothing would pass forever.  Returns [true] when the gate failed. *)
let check_gate ppf ~tolerance ~baseline_file base rows =
  let limit = 1.0 +. (tolerance /. 100.0) in
  Fmt.pf ppf "@.=== Regression gate vs %s (tolerance %.1f%%) ===@.@."
    baseline_file tolerance;
  let matched = ref 0 in
  let regressed = ref 0 in
  List.iter
    (fun (name, est) ->
      match (est, List.assoc_opt name base) with
      | Some cur, Some b when b > 0.0 && cur > 0.0 ->
          incr matched;
          let ratio = cur /. b in
          if ratio > limit then begin
            incr regressed;
            Fmt.pf ppf "  FAIL %-45s %12.1f -> %12.1f ns  (%.2fx > %.2fx)@."
              name b cur ratio limit
          end
          else
            Fmt.pf ppf "  ok   %-45s %12.1f -> %12.1f ns  (%.2fx)@." name b
              cur ratio
      | _ -> ())
    rows;
  if !matched = 0 then begin
    Fmt.pf ppf "@.  no rows in common with the baseline: failing the gate@.";
    true
  end
  else if !regressed > 0 then begin
    Fmt.pf ppf "@.  %d of %d rows regressed beyond %.1f%%@." !regressed
      !matched tolerance;
    true
  end
  else begin
    Fmt.pf ppf "@.  all %d matched rows within %.1f%% of baseline@." !matched
      tolerance;
    false
  end

(* ------------------------------------------------------------------ *)
(* Paired telemetry-overhead measurement (--stats-overhead)            *)
(* ------------------------------------------------------------------ *)

(* Wall-clock noise between separate sweeps on this host swings far
   above the effect being measured (see EXPERIMENTS.md, fusion study),
   so the telemetry cost-model claim is taken the same way the fusion
   tuning decisions were: paired interleaved best-of-N runs within one
   process.  Each round times the compiled NBFORCE kernel once with the
   registry disabled and once enabled; the overhead is the ratio of the
   two minima. *)
let run_stats_overhead ppf ~rounds =
  let run = nbforce_runner ~p:engine_p in
  let time f =
    let t0 = Lf_obs.Stats.now_ns () in
    ignore (f ());
    Int64.to_float (Int64.sub (Lf_obs.Stats.now_ns ()) t0)
  in
  (* warm-up: fault in code and heap for both arms *)
  ignore (run `Compiled ());
  Lf_obs.Stats.enable ();
  ignore (run `Compiled ());
  Lf_obs.Stats.disable ();
  let best_off = ref infinity and best_on = ref infinity in
  let ratios =
    Array.init rounds (fun _ ->
        let off = time (run `Compiled) in
        let on =
          Lf_obs.Stats.enable ();
          Fun.protect ~finally:Lf_obs.Stats.disable (fun () ->
              time (run `Compiled))
        in
        if off < !best_off then best_off := off;
        if on < !best_on then best_on := on;
        on /. off)
  in
  Array.sort compare ratios;
  let median = ratios.(rounds / 2) in
  Fmt.pf ppf
    "stats overhead on NBFORCE flat (compiled, p=%d), %d paired rounds:@.  \
     median of on/off ratios %+.2f%%   best-of-%d %.0f -> %.0f ns (%+.2f%%)@."
    engine_p rounds
    (100.0 *. (median -. 1.0))
    rounds !best_off !best_on
    (100.0 *. (!best_on -. !best_off) /. !best_off)

(* Paired -O1/-O2 measurement (--rangeopt-overhead): same methodology —
   the bounds-check-discharge and scatter-sharding effects are a few
   percent, below this host's cross-process sweep noise, so each round
   times -O1 then -O2 within one process and the claim is the median of
   the per-round ratios (ratio > 1 = -O2 faster). *)
let run_rangeopt_overhead ppf ~rounds =
  let time f =
    let t0 = Lf_obs.Stats.now_ns () in
    ignore (f ());
    Int64.to_float (Int64.sub (Lf_obs.Stats.now_ns ()) t0)
  in
  let paired name run =
    (* warm-up both arms *)
    ignore (run ~opt:1 ());
    ignore (run ~opt:2 ());
    let best1 = ref infinity and best2 = ref infinity in
    let ratios =
      Array.init rounds (fun _ ->
          let o1 = time (run ~opt:1) in
          let o2 = time (run ~opt:2) in
          if o1 < !best1 then best1 := o1;
          if o2 < !best2 then best2 := o2;
          o1 /. o2)
    in
    Array.sort compare ratios;
    Fmt.pf ppf
      "%s, %d paired rounds:@.  median -O1/-O2 ratio %.2fx   best-of-%d \
       %.0f -> %.0f ns (%.2fx)@."
      name rounds
      ratios.(rounds / 2)
      rounds !best1 !best2 (!best1 /. !best2)
  in
  let nbforce = nbforce_runner ~p:engine_p in
  let scatter = scatter_runner ~p:engine_p in
  paired
    (Printf.sprintf "NBFORCE flat (compiled, p=%d)" engine_p)
    (fun ~opt () -> nbforce ~opt `Compiled ());
  paired
    (Printf.sprintf "scatter stride (compiled, p=%d)" engine_p)
    (fun ~opt () -> scatter ~opt `Compiled ());
  paired
    (Printf.sprintf "scatter stride (parallel j4, p=%d)" engine_p)
    (fun ~opt () -> scatter ~jobs:4 ~opt `Parallel ())

(* Paired cold-vs-warm measurement (--cache-overhead): same paired
   interleaved best-of-N methodology.  Each round runs the small repeat
   workload once from source with no cache (full parse -> lower ->
   optimize front end) and once through a shared pre-filled cache (warm:
   MD5 lookup + pooled frame + straight to emission).  Execution is
   bit-identical between the arms, so the total-time ratio is a LOWER
   bound on the front-end-overhead ratio: subtracting the common
   execution time from both sides only increases it. *)
let run_cache_overhead ppf ~rounds =
  let time f =
    let t0 = Lf_obs.Stats.now_ns () in
    ignore (f ());
    Int64.to_float (Int64.sub (Lf_obs.Stats.now_ns ()) t0)
  in
  let cold () = Lf_simd.Vm.run_src ~engine:`Compiled ~p:small_p small_src in
  let cache = Lf_simd.Progcache.create () in
  let warm () =
    Lf_simd.Vm.run_src ~engine:`Compiled ~cache ~p:small_p small_src
  in
  (* warm-up: fault in code and heap, and fill the cache so every
     measured warm run is a hit *)
  ignore (cold ());
  ignore (warm ());
  ignore (warm ());
  let best_cold = ref infinity and best_warm = ref infinity in
  let ratios =
    Array.init rounds (fun _ ->
        let c = time cold in
        let w = time warm in
        if c < !best_cold then best_cold := c;
        if w < !best_warm then best_warm := w;
        c /. w)
  in
  Array.sort compare ratios;
  let median = ratios.(rounds / 2) in
  Fmt.pf ppf
    "cold vs warm on the small repeat workload (compiled, p=%d), %d paired \
     rounds:@.  median cold/warm ratio %.2fx   best-of-%d %.0f -> %.0f ns \
     (%.2fx)@.  per-run front-end overhead saved by a warm hit: ~%.0f ns@."
    small_p rounds median rounds !best_cold !best_warm
    (!best_cold /. !best_warm)
    (!best_cold -. !best_warm)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let usage =
  "usage: bench [--experiment NAME] [--no-micro] [--quick] [--csv DIR] \
   [--json FILE] [--baseline FILE] [--check] [--tolerance PCT] \
   [--jobs N[,N...]] [--stats-overhead] [--rangeopt-overhead] \
   [--cache-overhead]"

(* Located usage error: name the offending option, print the usage line,
   exit 124 (the CLI-error convention simdsim inherits from cmdliner). *)
let usage_error fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "bench: %s@.%s@." msg usage;
      exit 124)
    fmt

(* Load a prior --json estimates file ({"name": ns_per_run, ...}) as an
   assoc list; an unreadable or malformed baseline is a usage error
   (exit 124), like any other bad option argument. *)
let load_baseline file =
  let contents =
    try
      let ic = open_in file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with Sys_error msg -> usage_error "option '--baseline': %s" msg
  in
  match Lf_obs.Json.parse contents with
  | Error msg ->
      usage_error "option '--baseline': %s: invalid JSON (%s)" file msg
  | Ok (Lf_obs.Json.Obj fields) ->
      List.filter_map
        (fun (name, v) ->
          match v with
          | Lf_obs.Json.Float f -> Some (name, f)
          | Lf_obs.Json.Int n -> Some (name, float_of_int n)
          (* a deltas dump (recorded with --baseline) wraps the estimate
             in an object; unwrap its "ns" so such dumps chain as the
             next run's baseline *)
          | Lf_obs.Json.Obj sub -> (
              match List.assoc_opt "ns" sub with
              | Some (Lf_obs.Json.Float f) -> Some (name, f)
              | Some (Lf_obs.Json.Int n) -> Some (name, float_of_int n)
              | _ -> None)
          | _ -> None)
        fields
  | Ok _ ->
      usage_error "option '--baseline': %s: expected a top-level JSON object"
        file

let () =
  let ppf = Fmt.stdout in
  let experiment = ref None in
  let no_micro = ref false in
  let quick = ref false in
  let csv_dir = ref None in
  let json_file = ref None in
  let baseline_file = ref None in
  let check = ref false in
  let tolerance = ref None in
  let jobs = ref [ 1; 2; 4 ] in
  let stats_overhead = ref false in
  let rangeopt_overhead = ref false in
  let cache_overhead = ref false in
  let parse_jobs s =
    String.split_on_char ',' s
    |> List.map (fun tok ->
           match int_of_string_opt (String.trim tok) with
           | Some n when n >= 1 -> n
           | Some n ->
               usage_error
                 "option '--jobs': invalid jobs count %d: must be >= 1" n
           | None -> usage_error "option '--jobs': invalid jobs count %S" tok)
  in
  let rec parse = function
    | [] -> ()
    | "--no-micro" :: rest ->
        no_micro := true;
        parse rest
    | "--experiment" :: v :: rest ->
        experiment := Some v;
        parse rest
    | "--csv" :: v :: rest ->
        csv_dir := Some v;
        parse rest
    | "--json" :: v :: rest ->
        json_file := Some v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline_file := Some v;
        parse rest
    | "--check" :: rest ->
        check := true;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 -> tolerance := Some t
        | Some t ->
            usage_error
              "option '--tolerance': invalid tolerance %g: must be > 0" t
        | None -> usage_error "option '--tolerance': invalid tolerance %S" v);
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := parse_jobs v;
        parse rest
    | "--stats-overhead" :: rest ->
        stats_overhead := true;
        parse rest
    | "--rangeopt-overhead" :: rest ->
        rangeopt_overhead := true;
        parse rest
    | "--cache-overhead" :: rest ->
        cache_overhead := true;
        parse rest
    | [ flag ]
      when List.mem flag
             [
               "--experiment"; "--csv"; "--json"; "--baseline"; "--tolerance";
               "--jobs";
             ] ->
        usage_error "option '%s' needs an argument" flag
    | flag :: _ -> usage_error "unknown option %S" flag
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !stats_overhead then begin
    run_stats_overhead ppf ~rounds:15;
    Fmt.flush ppf ();
    exit 0
  end;
  if !rangeopt_overhead then begin
    run_rangeopt_overhead ppf ~rounds:15;
    Fmt.flush ppf ();
    exit 0
  end;
  if !cache_overhead then begin
    run_cache_overhead ppf ~rounds:25;
    Fmt.flush ppf ();
    exit 0
  end;
  if Option.is_some !tolerance && not !check then
    usage_error "option '--tolerance' requires --check";
  if !check && Option.is_none !baseline_file then
    usage_error "option '--check' requires --baseline";
  let experiment = !experiment in
  let no_micro = !no_micro in
  let quick = !quick in
  let csv_dir = !csv_dir in
  let json_file = !json_file in
  let check = !check in
  let tolerance = Option.value ~default:25.0 !tolerance in
  let jobs = !jobs in
  (* load eagerly so a bad --baseline argument fails before the (slow)
     benchmark run, with the usual usage-error exit *)
  let baseline =
    Option.map (fun file -> (file, load_baseline file)) !baseline_file
  in
  Option.iter
    (fun dir ->
      Lf_report.Experiments.write_csvs ~dir;
      Fmt.pf ppf "wrote table1.csv, table2.csv, fig18.csv to %s@." dir)
    csv_dir;
  (match experiment with
  | Some name -> (
      match List.assoc_opt name Lf_report.Experiments.by_name with
      | Some f -> f ppf
      | None ->
          Fmt.pf ppf "unknown experiment %s; available: %s@." name
            (String.concat ", " (List.map fst Lf_report.Experiments.by_name));
          exit 1)
  | None -> if not quick then Lf_report.Experiments.all ppf);
  (* --json and --baseline imply the micro-benchmarks even under
     --experiment *)
  let gate_failed =
    if
      ((not no_micro) && experiment = None)
      || json_file <> None || baseline <> None
    then begin
      let rows = run_micro ~jobs ~quick ppf in
      Option.iter
        (fun (file, base) ->
          print_baseline_table ppf ~baseline_file:file base rows)
        baseline;
      let header = dump_header ~experiment ~jobs ~quick in
      Option.iter
        (fun file ->
          (match baseline with
          | Some (_, base) -> write_json_deltas ~header file base rows
          | None -> write_json ~header file rows);
          Fmt.pf ppf "wrote micro-benchmark estimates to %s@." file)
        json_file;
      match (check, baseline) with
      | true, Some (file, base) ->
          check_gate ppf ~tolerance ~baseline_file:file base rows
      | _ -> false
    end
    else false
  in
  Fmt.flush ppf ();
  if gate_failed then exit 2
