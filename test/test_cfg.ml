(** Statement-grained CFG tests: structured edges, loop back edges, GOTO
    edges, WHERE masking, and the defs/uses classification used by the
    dataflow framework. *)

open Helpers
open Lf_lang.Ast
module Cfg = Lf_analysis.Cfg

let build src = Cfg.build (parse_block src)

let find cfg pred =
  let hit = ref None in
  Array.iter
    (fun n -> if !hit = None && pred n then hit := Some n)
    cfg.Cfg.nodes;
  match !hit with
  | Some n -> n
  | None -> Alcotest.fail "expected node not found in CFG"

let assign_to cfg name =
  find cfg (fun n ->
      match n.Cfg.kind with
      | Cfg.Stmt (SAssign (l, _)) -> l.lv_name = name
      | _ -> false)

let t_straight_line () =
  let cfg = build "a = 1\nb = a + 2" in
  checki "entry + two statements + exit" 4 (Cfg.size cfg);
  let entry = Cfg.node cfg cfg.Cfg.entry in
  let exit_ = Cfg.node cfg cfg.Cfg.exit_ in
  checki "entry fans out to one node" 1 (List.length entry.Cfg.succ);
  checki "exit has one predecessor" 1 (List.length exit_.Cfg.pred);
  let a = assign_to cfg "a" and b = assign_to cfg "b" in
  checkb "a flows to b" (a.Cfg.succ = [ b.Cfg.id ]);
  checkb "b flows to exit" (b.Cfg.succ = [ cfg.Cfg.exit_ ]);
  (* the parser located both statements *)
  checkb "statements carry locations" (a.Cfg.loc <> None && b.Cfg.loc <> None)

let t_if_diamond () =
  let cfg = build "IF (a > 0) THEN\n  b = 1\nELSE\n  b = 2\nENDIF" in
  checki "entry test two-arms join exit" 6 (Cfg.size cfg);
  let test =
    find cfg (fun n ->
        match n.Cfg.kind with Cfg.Test _ -> true | _ -> false)
  in
  let join =
    find cfg (fun n -> match n.Cfg.kind with Cfg.Join -> true | _ -> false)
  in
  checki "test branches both ways" 2 (List.length test.Cfg.succ);
  checki "join merges both arms" 2 (List.length join.Cfg.pred)

let t_do_back_edge () =
  let cfg = build "DO i = 1, k\n  s = s + i\nENDDO" in
  let head =
    find cfg (fun n ->
        match n.Cfg.kind with Cfg.Head (c, false) -> c.d_var = "i" | _ -> false)
  in
  let body = assign_to cfg "s" in
  checkb "head enters the body" (List.mem body.Cfg.id head.Cfg.succ);
  checkb "head can fall through to exit"
    (List.mem cfg.Cfg.exit_ head.Cfg.succ);
  checkb "body loops back to the head" (body.Cfg.succ = [ head.Cfg.id ]);
  checkb "back edge recorded as a head predecessor"
    (List.mem body.Cfg.id head.Cfg.pred)

let t_goto_edges () =
  let cfg =
    build "  i = 1\n10 i = i + 1\n  IF (i <= k) GOTO 10\n  t = i"
  in
  let label =
    find cfg (fun n ->
        match n.Cfg.kind with Cfg.Stmt (SLabel "10") -> true | _ -> false)
  in
  let cgoto =
    find cfg (fun n ->
        match n.Cfg.kind with Cfg.Stmt (SCondGoto _) -> true | _ -> false)
  in
  checkb "conditional jump targets the label"
    (List.mem label.Cfg.id cgoto.Cfg.succ);
  let t = assign_to cfg "t" in
  checkb "conditional jump also falls through"
    (List.mem t.Cfg.id cgoto.Cfg.succ);
  checki "jump has exactly the two successors" 2 (List.length cgoto.Cfg.succ)

let t_where_masked () =
  let cfg =
    build "WHERE (x(i) > 0)\n  x(i) = 1\nELSEWHERE\n  y(i) = 2\nENDWHERE"
  in
  let xs = assign_to cfg "x" and ys = assign_to cfg "y" in
  checkb "WHERE stores are masked" (xs.Cfg.masked && ys.Cfg.masked);
  (* vector semantics: both branches execute, in order *)
  checkb "branches are sequential, not alternatives"
    (xs.Cfg.succ = [ ys.Cfg.id ]);
  (match Cfg.defs xs with
  | [ { Cfg.def_var = "x"; def_must = false } ] -> ()
  | _ -> Alcotest.fail "masked element store must be a may-def");
  let plain = build "s = 1" in
  (match Cfg.defs (assign_to plain "s") with
  | [ { Cfg.def_var = "s"; def_must = true } ] -> ()
  | _ -> Alcotest.fail "unmasked scalar assignment must kill")

let t_defs_uses () =
  let cfg = build "x(i) = y + 1" in
  let n = assign_to cfg "x" in
  (match Cfg.defs n with
  | [ { Cfg.def_var = "x"; def_must = false } ] -> ()
  | _ -> Alcotest.fail "element store is a may-def");
  checkb "element store reads index, rhs and the array itself"
    (Cfg.uses n = [ "i"; "x"; "y" ]);
  let callg = build "CALL foo(a, b + c)" in
  let cn =
    find callg (fun n ->
        match n.Cfg.kind with Cfg.Stmt (SCall _) -> true | _ -> false)
  in
  checkb "call arguments are may-defs"
    (List.for_all (fun d -> not d.Cfg.def_must) (Cfg.defs cn));
  checkb "call arguments are uses" (Cfg.uses cn = [ "a"; "b"; "c" ]);
  match Cfg.calls callg with
  | [ ("foo", Some _) ] -> ()
  | _ -> Alcotest.fail "calls must report the callee with its location"

let suite =
  [
    case "straight-line blocks" t_straight_line;
    case "IF builds a diamond" t_if_diamond;
    case "DO header with back edge" t_do_back_edge;
    case "GOTO and label edges" t_goto_edges;
    case "WHERE branches are sequential and masked" t_where_masked;
    case "defs and uses classification" t_defs_uses;
  ]
