(** The value-range / lane-congruence analysis ([Lf_analysis.Range]).

    Three layers:
    - lattice units: join widens, refinement meet keeps the established
      bound on incomparable facts, subsumption and symbolic membership;
    - driver units on a flattened-style loop: the claims the [-O2]
      optimizer consumes ([at1 ∈ [1, n]] inside the [WHERE (at1 <= n)]
      guard, the stride-[P] lane congruence, scatter disjointness);
    - the soundness property, as QCheck over random SIMD programs: the
      abstract interval (and congruence class) recorded before every
      assignment contains each concrete active-lane value the tree-walk
      engine observes there, resolving symbolic bounds against the live
      front-end scalars — the exact contract the compiled engine's
      bounds-check discharge relies on. *)

open Helpers
open Lf_lang
module Range = Lf_analysis.Range
module Vm = Lf_simd.Vm

(* ------------------------------------------------------------------ *)
(* Lattice units                                                       *)
(* ------------------------------------------------------------------ *)

let t_bounds () =
  let open Range in
  checkb "join of comparable lows takes the min"
    (join_lo (Fin 1) (Fin 3) = Fin 1);
  checkb "join of incomparable lows drops to -inf"
    (join_lo (Fin 1) (Sym ("n", 1)) = NegInf);
  checkb "join of same-symbol highs takes the max"
    (join_hi (Sym ("n", 0)) (Sym ("n", 2)) = Sym ("n", 2));
  (* the refinement meet keeps the established bound when the fresh
     fact is incomparable: an else-arm [x > n] must not clobber the
     constant lower bound the then-arm still carries *)
  checkb "meet keeps the established low on incomparable facts"
    (meet_lo (Fin 1) (Sym ("n", 1)) = Fin 1);
  checkb "meet refines an infinite high with a symbol"
    (meet_hi PosInf (Sym ("n", 0)) = Sym ("n", 0));
  checkb "meet of comparable highs takes the min"
    (meet_hi (Fin 9) (Fin 4) = Fin 4);
  checkb "saturating add does not wrap" (sat_add max_int 1 = max_int);
  checkb "saturating mul does not wrap"
    (sat_mul max_int 2 = max_int && sat_mul max_int (-2) = min_int)

let t_subsumes_mem () =
  let open Range in
  let iv lo hi = { lo; hi } in
  checkb "wider interval subsumes"
    (subsumes (iv (Fin 1) PosInf) (iv (Fin 3) (Fin 5)));
  checkb "same-symbol bounds compare by offset"
    (subsumes (iv (Fin 1) (Sym ("n", 1))) (iv (Fin 2) (Sym ("n", 0))));
  checkb "incomparable bounds answer false"
    (not (subsumes (iv (Sym ("n", 0)) PosInf) (iv (Fin 1) (Fin 2))));
  let resolve = function "n" -> Some 8 | _ -> None in
  checkb "mem resolves symbols" (mem ~resolve 8 (iv (Fin 1) (Sym ("n", 0))));
  checkb "mem rejects past a resolved bound"
    (not (mem ~resolve 9 (iv (Fin 1) (Sym ("n", 0)))));
  checkb "unresolvable symbols are vacuous"
    (mem ~resolve 1000 (iv (Fin 1) (Sym ("m", 0))))

let t_congruence () =
  let open Range in
  let c coeff base m = { co_coeff = coeff; co_base = base; co_mod = m } in
  checkb "stride-P class is lane-disjoint up to P lanes"
    (cg_lane_disjoint ~p:8 (c 1 0 8));
  checkb "but collides past P lanes (lanes 1 and 9 agree mod 8)"
    (not (cg_lane_disjoint ~p:64 (c 1 0 8)));
  checkb "coeff 0 collides" (not (cg_lane_disjoint ~p:8 (c 0 3 8)));
  checkb "coeff sharing a factor with the modulus collides"
    (not (cg_lane_disjoint ~p:8 (c 2 0 4)));
  checkb "exact affine (mod 0) is disjoint when coeff <> 0"
    (cg_lane_disjoint ~p:1024 (c 3 7 0));
  checkb "p <= 1 is trivially disjoint" (cg_lane_disjoint ~p:1 (c 0 0 0))

(* ------------------------------------------------------------------ *)
(* Driver units: the flattened-loop shape                              *)
(* ------------------------------------------------------------------ *)

(* the first physical assignment to [name], unwrapping SLoc — the
   statement identity [Range.eval_at] keys on *)
let rec find_assign name (s : Ast.stmt) : Ast.stmt option =
  match s with
  | Ast.SLoc (_, inner) -> find_assign name inner
  | Ast.SAssign (lv, _) when lv.Ast.lv_name = name -> Some s
  | Ast.SIf (_, t, f) | Ast.SWhere (_, t, f) ->
      (match find_assign_block name t with
      | Some s -> Some s
      | None -> find_assign_block name f)
  | Ast.SWhile (_, b)
  | Ast.SDoWhile (b, _)
  | Ast.SDo (_, b)
  | Ast.SForall (_, b) ->
      find_assign_block name b
  | _ -> None

and find_assign_block name b =
  List.fold_left
    (fun acc s -> match acc with Some _ -> acc | None -> find_assign name s)
    None b

let flat_loop =
  {|
at1 = 1 + (iproc - 1)
WHILE (any(at1 <= n))
  WHERE (at1 <= n)
    f(at1) = f(at1) + 1.0
    at1 = at1 + 8
  ENDWHERE
ENDWHILE
|}

let t_flattened_claims () =
  let block = parse_block flat_loop in
  let r = Range.analyze ~p:8 block in
  let site =
    match find_assign_block "f" block with
    | Some s -> s
    | None -> Alcotest.fail "no store to f in the flattened loop"
  in
  match Range.eval_at r site (Ast.EVar "at1") with
  | None -> Alcotest.fail "analysis reached no fact at the store"
  | Some av ->
      (* the guard's symbolic upper bound survives loop widening: this
         is the claim that discharges the bounds check on f(at1) *)
      checks "interval inside the WHERE guard" "[1, n]"
        (Range.iv_to_string av.Range.a_iv);
      (match av.Range.a_cg with
      | Some c ->
          checks "stride-8 lane congruence" "1*lane+0 mod 8"
            (Range.cong_to_string c)
      | None -> Alcotest.fail "no congruence fact on at1");
      checkb "store subscript proves pairwise lane-disjoint"
        (Range.scatter_disjoint r ~p:8 site (Ast.EVar "at1"))

let t_scatter_disjoint_negative () =
  let block = parse_block "i = iproc\ng(1) = i\ng(i - i + 2) = i" in
  let r = Range.analyze ~p:8 block in
  List.iter
    (fun (what, ix) ->
      let site = List.nth block 1 in
      checkb what (not (Range.scatter_disjoint r ~p:8 site ix)))
    [
      ("constant subscript collides", Ast.EInt 1);
      ( "lane-independent subscript collides",
        Ast.EBin (Ast.Add, Ast.EBin (Ast.Sub, Ast.EVar "i", Ast.EVar "i"),
                  Ast.EInt 2) );
    ];
  checkb "iproc-affine subscript is disjoint"
    (Range.affine_disjoint ~p:8
       (Ast.EBin (Ast.Add, Ast.EVar "iproc", Ast.EInt 3)))

let t_call_havocs () =
  let block = parse_block "i = iproc\nCALL foo(i)\nj = i" in
  let r = Range.analyze ~p:4 block in
  let site =
    match find_assign_block "j" block with
    | Some s -> s
    | None -> Alcotest.fail "no assignment to j"
  in
  match Range.eval_at r site (Ast.EVar "i") with
  | None -> Alcotest.fail "analysis reached no fact after the call"
  | Some av ->
      (* the [1, 4] interval and the lane congruence from [i = iproc]
         are gone; what remains is the vacuous symbolic self-value that
         expression evaluation substitutes for an unconstrained name *)
      checkb "CALL havocs the lane congruence" (av.Range.a_cg = None);
      checkb "CALL havocs the interval"
        (av.Range.a_iv
        = Range.{ lo = Sym ("i", 0); hi = Sym ("i", 0) })

(* ------------------------------------------------------------------ *)
(* Soundness property                                                  *)
(* ------------------------------------------------------------------ *)

let fuel = 20_000
let prop_p = 8

(* check one concrete active-lane value of [v] against its abstract
   fact, resolving symbolic bounds through the live front-end scalars *)
let check_value ~resolve v (av : Range.av) ~lane n : string option =
  if not (Range.mem ~resolve n av.Range.a_iv) then
    Some
      (Fmt.str "%s = %d escapes %s at lane %d" v n
         (Range.iv_to_string av.Range.a_iv)
         lane)
  else
    match av.Range.a_cg with
    | None -> None
    | Some c ->
        let anchor =
          Range.sat_add (Range.sat_mul c.Range.co_coeff lane) c.Range.co_base
        in
        let ok =
          if c.Range.co_mod = 0 then n = anchor
          else (n - anchor) mod c.Range.co_mod = 0
        in
        if ok then None
        else
          Some
            (Fmt.str "%s = %d escapes congruence %s at lane %d" v n
               (Range.cong_to_string c) lane)

let prop_intervals_sound prog =
  let r = Range.analyze ~p:prop_p prog.Ast.p_body in
  if r.Range.r_envs = [] then true (* GOTO programs carry no facts *)
  else begin
    let violation = ref None in
    let note v = if !violation = None then violation := Some v in
    let observer vm ~mask stmt =
      match
        List.find_opt (fun (s, _) -> s == stmt) r.Range.r_envs
      with
      | None | Some (_, Range.Bot) -> ()
      | Some (_, Range.Env m) ->
          (* facts hold over the active lanes of the statement's mask
             context; an empty mask makes every claim vacuous *)
          if Array.exists Fun.id mask then begin
            let resolve v =
              match Vm.find_opt vm v with
              | Some (Vm.VScalar { contents = Values.VInt n }) -> Some n
              | _ -> None
            in
            Range.SMap.iter
              (fun v av ->
                match Vm.find_opt vm v with
                | Some (Vm.VPlural lanes) ->
                    Array.iteri
                      (fun i x ->
                        match x with
                        | Values.VInt n when i < Array.length mask && mask.(i)
                          ->
                            Option.iter note
                              (check_value ~resolve v av ~lane:(i + 1) n)
                        | _ -> ())
                      lanes
                | Some (Vm.VScalar { contents = Values.VInt n }) ->
                    Array.iteri
                      (fun i active ->
                        if active then
                          Option.iter note
                            (check_value ~resolve v av ~lane:(i + 1) n))
                      mask
                | _ -> ())
              m
          end
    in
    (match
       Vm.run ~fuel ~p:prop_p
         ~setup:(fun vm ->
           Gen.simd_prog_setup ~p:prop_p vm;
           Vm.set_observer vm observer)
         prog
     with
    | (_ : Vm.t) -> ()
    | exception (Errors.Runtime_error _ | Errors.Runtime_error_at _) ->
        (* aborted runs still validated every observation before the
           abort *)
        ());
    match !violation with
    | None -> true
    | Some msg ->
        QCheck.Test.fail_reportf "range analysis unsound: %s on@.%s" msg
          (Pretty.program_to_string prog)
  end

let t_soundness =
  qcheck_case ~count:500
    "abstract facts contain every observed active-lane value"
    Gen.simd_prog_gen prop_intervals_sound

let suite =
  [
    case "bound lattice: join widens, meet keeps established" t_bounds;
    case "subsumption and symbolic membership" t_subsumes_mem;
    case "lane-congruence disjointness" t_congruence;
    case "flattened loop: [1, n] claim, stride congruence" t_flattened_claims;
    case "scatter disjointness rejects colliding subscripts"
      t_scatter_disjoint_negative;
    case "CALL havocs" t_call_havocs;
    t_soundness;
  ]
