(** Parallelizability tests (the safety condition of paper §6). *)

open Helpers
open Lf_lang
module P = Lf_analysis.Parallel

let loop1 src =
  match parse_block src with
  | [ s ] -> s
  | _ -> Alcotest.fail "expected one loop"

let par ?pure_subroutines s =
  (P.check_loop ?pure_subroutines (loop1 s)).P.parallel

let t_example () =
  checkb "EXAMPLE outer loop parallel"
    (P.check_loop (List.hd (example_block ()))).P.parallel

let t_privatizable () =
  checkb "scalar defined before use is private"
    (par "DO i = 1, n\n  t = i * 2\n  a(i) = t\nENDDO");
  checkb "upward-exposed scalar blocks"
    (not (par "DO i = 1, n\n  a(i) = t\n  t = i\nENDDO"));
  checkb "reduction-style accumulator blocks"
    (not (par "DO i = 1, n\n  s = s + a(i)\nENDDO"));
  checkb "inner loop variable is private"
    (par "DO i = 1, n\n  DO j = 1, l(i)\n    x(i,j) = i\n  ENDDO\nENDDO");
  checkb "scalar defined in one branch only blocks"
    (not
       (par
          "DO i = 1, n\n  IF (i > 2) THEN\n    t = i\n  ENDIF\n  a(i) = t\nENDDO"));
  checkb "scalar defined in both branches ok"
    (par
       "DO i = 1, n\n  IF (i > 2) THEN\n    t = i\n  ELSE\n    t = 0\n  ENDIF\n  a(i) = t\nENDDO")

let t_arrays () =
  checkb "distinct rows parallel"
    (par "DO i = 1, n\n  x(i, 1) = x(i, 2)\nENDDO");
  checkb "carried array blocks"
    (not (par "DO i = 2, n\n  a(i) = a(i - 1)\nENDDO"));
  checkb "indirect write blocks"
    (not (par "DO i = 1, n\n  f(p(i)) = f(p(i)) + 1\nENDDO"))

let t_calls () =
  checkb "unknown call blocks" (not (par "DO i = 1, n\n  CALL f(i)\nENDDO"));
  checkb "certified call ok"
    (par ~pure_subroutines:[ "f" ] "DO i = 1, n\n  CALL f(i)\nENDDO")

let t_forall_trusted () =
  checkb "FORALL asserted parallel"
    (P.check_loop (loop1 "FORALL (i = 1:n)\n  s = s + 1\nENDFORALL")).P.parallel;
  checkb "trusted flag overrides"
    (P.check_loop ~trusted:true (loop1 "DO i = 1, n\n  s = s + 1\nENDDO")).P.parallel;
  checkb "while loop with induction variable analyzed"
    (P.check_loop
       (loop1 "WHILE (i <= k)\n  a(i) = i\n  i = i + 1\nENDWHILE")).P.parallel;
  checkb "while loop with carried scalar rejected"
    (not
       (P.check_loop
          (loop1 "WHILE (i <= k)\n  s = s + i\n  i = i + 1\nENDWHILE")).P.parallel);
  checkb "while loop without induction variable rejected"
    (not (P.check_loop (loop1 "WHILE (any(m))\n  CALL step()\nENDWHILE")).P.parallel)

let t_obstacle_reporting () =
  let r = P.check_loop (loop1 "DO i = 1, n\n  s = s + a(i)\n  CALL f(i)\nENDDO") in
  checkb "not parallel" (not r.P.parallel);
  checkb "reports carried scalar"
    (List.exists (function P.CarriedScalar "s" -> true | _ -> false) r.P.obstacles);
  checkb "reports unknown call"
    (List.exists (function P.UnknownCall "f" -> true | _ -> false) r.P.obstacles)

let t_goto_in_body () =
  let r =
    P.check_loop
      (loop1 "DO i = 1, n\n  IF (a(i) > 0) GOTO 10\n10 CONTINUE\nENDDO")
  in
  checkb "gotos block" (not r.P.parallel)

let t_nbforce_safety () =
  (* the paper's Figure 13 kernel: safe because F is only written at the
     owner subscript and force is a pure function *)
  let p = Lf_kernels.Nbforce_src.program () in
  let loop =
    List.find
      (fun s -> match Ast.strip_loc s with Ast.SDo _ -> true | _ -> false)
      p.Ast.p_body
  in
  let r = P.check_loop loop in
  checkb "NBFORCE outer loop parallel" r.P.parallel;
  (* scattering into partner entries instead would be rejected *)
  let bad =
    loop1
      "DO at1 = 1, n\n\
      \  DO pr = 1, pcnt(at1)\n\
      \    at2 = partners(at1, pr)\n\
      \    f(at2) = f(at2) + 1.0\n\
      \  ENDDO\n\
       ENDDO"
  in
  checkb "indirect scatter rejected" (not (P.check_loop bad).P.parallel)

let suite =
  [
    case "EXAMPLE safety" t_example;
    case "scalar privatization" t_privatizable;
    case "array dependences" t_arrays;
    case "subroutine calls" t_calls;
    case "FORALL and trusted assertions" t_forall_trusted;
    case "obstacle reporting" t_obstacle_reporting;
    case "unstructured control" t_goto_in_body;
    case "NBFORCE safety (Figure 13)" t_nbforce_safety;
  ]
