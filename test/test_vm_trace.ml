(** Cross-validation of the paper's trace figures against actual VM
    execution: observing the body statement's activity mask while the
    compiled EXAMPLE runs reproduces Figures 4/6 cell for cell. *)

open Helpers
open Lf_lang
open Ast
module E = Lf_kernels.Example_kernel

(** Run a SIMDized EXAMPLE program on a 2-lane VM, recording, at every
    execution of the body statement (the assignment to x), each active
    lane's (local i, j). *)
let record_body_trace prog =
  let trace : (int * int) option list list ref = ref [] in
  let vm = Lf_simd.Vm.create ~p:2 () in
  Lf_simd.Vm.bind_scalar vm "k" (Values.VInt 8);
  Lf_simd.Vm.bind_scalar vm "p" (Values.VInt 2);
  Lf_simd.Vm.bind_global vm "l" (Values.AInt (Nd.of_array paper_l));
  Lf_simd.Vm.bind_global vm "x" (Values.AInt (Nd.create [| 8; 4 |] 0));
  Lf_simd.Vm.set_observer vm (fun vm ~mask s ->
      match s with
      | SAssign ({ lv_name = "x"; _ }, _) ->
          let lane_val name lane =
            match Lf_simd.Vm.find vm name with
            | Lf_simd.Vm.VPlural vs -> Values.as_int vs.(lane)
            | Lf_simd.Vm.VScalar r -> Values.as_int !r
            | _ -> Alcotest.fail (name ^ " has unexpected shape")
          in
          let row =
            List.init 2 (fun lane ->
                if mask.(lane) then
                  let gi =
                    (* the flattened code uses the global index i; the
                       naive code uses the auxiliary i_p *)
                    if Lf_simd.Vm.find_opt vm "i_p" <> None then
                      lane_val "i_p" lane
                    else lane_val "i" lane
                  in
                  Some (gi - (lane * 4), lane_val "j" lane)
                else None)
          in
          trace := row :: !trace
      | _ -> ());
  Lf_simd.Vm.declare vm prog.p_decls;
  Lf_simd.Vm.exec_block vm ~mask:(Lf_simd.Vm.full_mask vm) prog.p_body;
  List.rev !trace

let cells_of_trace rows =
  let n = List.length rows in
  Array.init 2 (fun lane ->
      Array.init n (fun t -> List.nth (List.nth rows t) lane))

let derive target =
  let p = Parser.program_of_string Lf_report.Experiments.example_source in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Block; p = EVar "p" };
    }
  in
  match
    if target = `Flat then Lf_core.Pipeline.flatten_program ~opts p
    else Lf_core.Pipeline.simdize_program_naive ~opts p
  with
  | Ok o -> o.Lf_core.Pipeline.program
  | Error e -> Alcotest.fail e

let t_flattened_vm_trace () =
  let rows = record_body_trace (derive `Flat) in
  checki "8 body steps" 8 (List.length rows);
  let cells = cells_of_trace rows in
  let expected = (E.paper_flattened ()).E.cells in
  checkb "VM occupancy equals Figure 4's schedule" (cells = expected)

let t_naive_vm_trace () =
  let rows = record_body_trace (derive `Naive) in
  checki "12 body steps" 12 (List.length rows);
  let cells = cells_of_trace rows in
  let expected = (E.paper_simd ()).E.cells in
  checkb "VM occupancy equals Figure 6's schedule" (cells = expected)

(* ------------------------------------------------------------------ *)
(* Observability layer: trace streams, sinks, profiles                 *)
(* ------------------------------------------------------------------ *)

module Trace = Lf_obs.Trace

(** The flattened EXAMPLE (P = 2), parsed from text so every statement
    carries a source location for the trace events to report. *)
let traced_src =
  {|PROGRAM example
  INTEGER k
  PLURAL INTEGER i
  PLURAL INTEGER j
  INTEGER l(k)
  REAL x(k)
  i = 1 + (iproc - 1)
  j = 1
  WHILE (any(i <= k))
    WHERE (i <= k)
      x(i) = x(i) + i * 10 + j
      WHERE (j == l(i))
        i = i + 2
        j = 1
      ELSEWHERE
        j = j + 1
      ENDWHERE
    ENDWHERE
  ENDWHILE
END|}

let run_traced ?jobs ?(p = 2) ?opt engine sinks =
  let prog = Parser.program_of_string traced_src in
  Lf_simd.Vm.run ~engine ?jobs ?opt ~p
    ~setup:(fun vm ->
      Lf_simd.Vm.bind_scalar vm "k" (Values.VInt 8);
      Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p);
      Lf_simd.Vm.bind_global vm "l" (Values.AInt (Nd.of_array paper_l));
      List.iter (Lf_simd.Vm.add_trace_sink vm) sinks)
    prog

(* differential: all three engines emit the exact same event stream *)
let t_engines_trace_identical () =
  let log_t = Trace.Log.create () and log_c = Trace.Log.create () in
  let vm_t = run_traced `Tree_walk [ Trace.Log.sink log_t ] in
  let vm_c = run_traced `Compiled [ Trace.Log.sink log_c ] in
  checkb "states equal" (Lf_simd.Vm.state_equal vm_t vm_c);
  checkb "metrics equal"
    (Lf_simd.Metrics.equal vm_t.Lf_simd.Vm.metrics vm_c.Lf_simd.Vm.metrics);
  let et = Trace.Log.to_list log_t and ec = Trace.Log.to_list log_c in
  checki "same number of events" (List.length et) (List.length ec);
  List.iter2
    (fun a b ->
      checkb
        (Fmt.str "event %a = %a" Trace.pp_event a Trace.pp_event b)
        (Trace.equal_event a b))
    et ec;
  checkb "every event carries a source line"
    (List.for_all (fun e -> e.Trace.loc.Errors.line > 0) et);
  (* the event stream reproduces the aggregate counters exactly *)
  let m = vm_t.Lf_simd.Vm.metrics in
  checki "one event per vector step" m.Lf_simd.Metrics.steps
    (List.length (List.filter Trace.is_step et));
  checki "one event per reduction" m.Lf_simd.Metrics.reductions
    (List.length (List.filter (fun e -> not (Trace.is_step e)) et));
  (* the parallel engine emits from its control thread: same stream *)
  let log_p = Trace.Log.create () in
  let vm_p = run_traced ~jobs:3 `Parallel [ Trace.Log.sink log_p ] in
  checkb "parallel state equal" (Lf_simd.Vm.state_equal vm_t vm_p);
  let ep = Trace.Log.to_list log_p in
  checki "parallel stream same length" (List.length et) (List.length ep);
  List.iter2
    (fun a b ->
      checkb "parallel events identical" (Trace.equal_event a b))
    et ep

(* the per-line profile's totals reproduce the metrics, on every engine *)
let t_profile_ties_out () =
  List.iter
    (fun (engine, jobs) ->
      let prof = Lf_obs.Profile.create () in
      let vm = run_traced ?jobs engine [ Lf_obs.Profile.sink prof ] in
      checkb "profile totals reproduce the metrics"
        (Lf_report.Obs_report.check_totals prof vm.Lf_simd.Vm.metrics);
      let rows = Lf_obs.Profile.rows_by_line prof in
      checkb "profile has per-line rows" (List.length rows > 3);
      let n_lines =
        List.length (String.split_on_char '\n' traced_src)
      in
      checkb "every row is a real source line"
        (List.for_all
           (fun (s : Lf_obs.Profile.line_stat) ->
             s.Lf_obs.Profile.line >= 1 && s.Lf_obs.Profile.line <= n_lines)
           rows);
      (* and the rendered table carries a totals row *)
      let buf = Buffer.create 512 in
      let ppf = Fmt.with_buffer buf in
      Lf_report.Obs_report.profile_table ~source:traced_src ppf prof;
      Fmt.flush ppf ();
      checkb "table has a totals row"
        (Astring_contains.contains (Buffer.contents buf) "total"))
    [ (`Tree_walk, None); (`Compiled, None); (`Parallel, Some 3) ]

(* fused execution still ticks Metrics per original operator: at -O1
   (fused reductions, scatter-accumulate, scratch reuse all fire on this
   program) the profile totals tie out against the metrics exactly as
   they do at -O0, and the two levels agree on metrics, state and the
   full event stream — on the serial and the parallel engine *)
let t_profile_ties_out_optimized () =
  let log0 = Trace.Log.create () and log1 = Trace.Log.create () in
  let vm0 = run_traced ~opt:0 `Compiled [ Trace.Log.sink log0 ] in
  let prof = Lf_obs.Profile.create () in
  let vm1 =
    run_traced ~opt:1 `Compiled
      [ Trace.Log.sink log1; Lf_obs.Profile.sink prof ]
  in
  checkb "-O1 profile totals reproduce the -O1 metrics"
    (Lf_report.Obs_report.check_totals prof vm1.Lf_simd.Vm.metrics);
  checkb "-O1 metrics = -O0 metrics"
    (Lf_simd.Metrics.equal vm0.Lf_simd.Vm.metrics vm1.Lf_simd.Vm.metrics);
  checkb "-O1 state = -O0 state" (Lf_simd.Vm.state_equal vm0 vm1);
  let e0 = Trace.Log.to_list log0 and e1 = Trace.Log.to_list log1 in
  checki "-O1 emits the -O0 event stream" (List.length e0) (List.length e1);
  List.iter2
    (fun a b -> checkb "-O0/-O1 events identical" (Trace.equal_event a b))
    e0 e1;
  let prof_p = Lf_obs.Profile.create () in
  let vm_p =
    run_traced ~jobs:3 ~opt:1 `Parallel [ Lf_obs.Profile.sink prof_p ]
  in
  checkb "parallel -O1 profile ties out"
    (Lf_report.Obs_report.check_totals prof_p vm_p.Lf_simd.Vm.metrics);
  checkb "parallel -O1 metrics = -O0 metrics"
    (Lf_simd.Metrics.equal vm0.Lf_simd.Vm.metrics vm_p.Lf_simd.Vm.metrics)

(* at a multi-shard width the profile still ties out against the metrics
   under parallel execution, and both are invariant in the jobs count *)
let t_parallel_profile_multishard () =
  let p = 200 in
  let ref_vm = run_traced ~p `Compiled [] in
  List.iter
    (fun jobs ->
      let prof = Lf_obs.Profile.create () in
      let vm = run_traced ~jobs ~p `Parallel [ Lf_obs.Profile.sink prof ] in
      checkb
        (Fmt.str "profile ties out at jobs=%d" jobs)
        (Lf_report.Obs_report.check_totals prof vm.Lf_simd.Vm.metrics);
      checkb
        (Fmt.str "metrics = serial compiled at jobs=%d" jobs)
        (Lf_simd.Metrics.equal ref_vm.Lf_simd.Vm.metrics
           vm.Lf_simd.Vm.metrics);
      checkb
        (Fmt.str "state = serial compiled at jobs=%d" jobs)
        (Lf_simd.Vm.state_equal ref_vm vm))
    [ 1; 2; 3; 7 ]

(* ring buffer: keeps the last [capacity] events, reports the drop count *)
let t_ring_buffer () =
  let log = Trace.Log.create () in
  let ring = Trace.Ring.create 8 in
  let _vm = run_traced `Compiled [ Trace.Log.sink log; Trace.Ring.sink ring ] in
  let all = Trace.Log.to_list log in
  let total = List.length all in
  checkb "enough events to overflow the ring" (total > 8);
  checki "ring is full" 8 (Trace.Ring.length ring);
  checki "ring reports drops" (total - 8) (Trace.Ring.dropped ring);
  let kept = Trace.Ring.to_list ring in
  let expected =
    List.filteri (fun i _ -> i >= total - 8) all
  in
  checki "ring keeps 8 events" 8 (List.length kept);
  List.iter2
    (fun a b -> checkb "ring keeps the newest events" (Trace.equal_event a b))
    expected kept

(* occupancy: streaming downsampling keeps its invariants even when the
   run overflows the bucket array many times *)
let t_occupancy_downsampling () =
  let occ = Lf_obs.Occupancy.create ~width:3 ~p:2 () in
  let vm = run_traced `Compiled [ Lf_obs.Occupancy.sink occ ] in
  checki "every vector step recorded"
    vm.Lf_simd.Vm.metrics.Lf_simd.Metrics.steps
    occ.Lf_obs.Occupancy.steps;
  checkb "bucket count bounded by 2*width"
    (occ.Lf_obs.Occupancy.nbuckets <= 6);
  let covered =
    Array.fold_left ( + ) 0
      (Array.sub occ.Lf_obs.Occupancy.steps_in_bucket 0
         occ.Lf_obs.Occupancy.nbuckets)
  in
  checki "buckets cover all steps" occ.Lf_obs.Occupancy.steps covered;
  let m = Lf_obs.Occupancy.matrix occ in
  checki "one row per lane" 2 (Array.length m);
  Array.iter
    (Array.iter
       (fun frac -> checkb "occupancy fraction in [0,1]" (frac >= 0.0 && frac <= 1.0)))
    m

(* JSON printer/parser round-trip, including the event serialization *)
let t_json_roundtrip () =
  let module J = Lf_obs.Json in
  let v =
    J.Obj
      [
        ("a", J.Int 42);
        ("b", J.List [ J.Float 0.5; J.Str "x\"y\n"; J.Bool true; J.Null ]);
        ("c", J.Obj [ ("nested", J.Int (-7)) ]);
      ]
  in
  (match J.parse (J.to_string v) with
  | Ok v' -> checkb "round-trip preserves the value" (v = v')
  | Error m -> Alcotest.fail m);
  let log = Trace.Log.create () in
  let _vm = run_traced `Compiled [ Trace.Log.sink log ] in
  List.iter
    (fun ev ->
      match J.parse (J.to_string (Trace.event_to_json ev)) with
      | Ok (J.Obj fields) ->
          checkb "event JSON has the line field"
            (List.assoc_opt "line" fields
            = Some (J.Int ev.Trace.loc.Errors.line))
      | Ok _ -> Alcotest.fail "event JSON is not an object"
      | Error m -> Alcotest.fail m)
    (Trace.Log.to_list log)

(* with no sink attached the collector stays disarmed *)
let t_trace_disabled_by_default () =
  let prog = Parser.program_of_string traced_src in
  let vm =
    Lf_simd.Vm.run ~p:2
      ~setup:(fun vm ->
        Lf_simd.Vm.bind_scalar vm "k" (Values.VInt 8);
        Lf_simd.Vm.bind_scalar vm "p" (Values.VInt 2);
        Lf_simd.Vm.bind_global vm "l" (Values.AInt (Nd.of_array paper_l)))
      prog
  in
  checkb "collector disarmed" (not vm.Lf_simd.Vm.trace.Trace.enabled)

(* MIMD per-line attribution: per-processor step counts sum per line *)
let t_mimd_line_steps () =
  let prog =
    Parser.program_of_string
      "PROGRAM count\n  INTEGER n, i, s\n  s = 0\n  DO i = 1, n\n    s = s + \
       i\n  ENDDO\nEND"
  in
  let setup proc ctx =
    Env.set ctx.Interp.env "n" (Values.VInt ((proc + 1) * 3))
  in
  let res = Lf_mimd.Mimd_vm.run ~p:2 ~profile:true ~setup prog in
  checkb "profiled run reports lines"
    (res.Lf_mimd.Mimd_vm.line_steps <> []);
  checkb "per-line arrays are per-processor"
    (List.for_all
       (fun (_, a) -> Array.length a = 2)
       res.Lf_mimd.Mimd_vm.line_steps);
  (* summing a processor's column over all lines gives its step count *)
  Array.iteri
    (fun proc steps ->
      let total =
        List.fold_left
          (fun acc (_, a) -> acc + a.(proc))
          0 res.Lf_mimd.Mimd_vm.line_steps
      in
      checki (Fmt.str "processor %d fully attributed" proc) steps total)
    res.Lf_mimd.Mimd_vm.steps;
  checkb "unequal partitions give unequal times"
    (res.Lf_mimd.Mimd_vm.steps.(0) < res.Lf_mimd.Mimd_vm.steps.(1));
  checki "time is the max" res.Lf_mimd.Mimd_vm.steps.(1)
    res.Lf_mimd.Mimd_vm.time;
  let plain = Lf_mimd.Mimd_vm.run ~p:2 ~setup prog in
  checkb "profiling is off by default"
    (plain.Lf_mimd.Mimd_vm.line_steps = [])

(* QCheck: on random flattened programs, the two engines emit identical
   trace streams — also on the error path, where the prefixes up to the
   failure must agree *)
let run_engine_traced engine (en : Gen.exec_nest) p_lanes prog =
  let log = Trace.Log.create () in
  let maxl = Array.fold_left max 1 en.Gen.l in
  match
    Lf_simd.Vm.run ~engine ~p:p_lanes
      ~setup:(fun vm ->
        Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p_lanes);
        Lf_simd.Vm.bind_scalar vm "k" (Values.VInt en.Gen.k);
        Lf_simd.Vm.bind_scalar vm "acc" (Values.VInt 0);
        Lf_simd.Vm.bind_global vm "l" (Values.AInt (Nd.of_array en.Gen.l));
        Lf_simd.Vm.bind_global vm "x"
          (Values.AInt (Nd.create [| en.Gen.k; maxl |] 0));
        Lf_simd.Vm.add_trace_sink vm (Trace.Log.sink log))
      prog
  with
  | _vm -> Ok (Trace.Log.to_list log)
  | exception (Errors.Runtime_error _ | Errors.Runtime_error_at _) ->
      Error (Trace.Log.to_list log)

let t_trace_streams_random =
  qcheck_case ~count:100
    "differential: engines emit identical trace streams (random nests)"
    Test_fuzz.simd_gen
    (fun ((en : Gen.exec_nest), p_lanes) ->
      let prog = Ast.program "fuzz" en.Gen.src_block in
      let opts =
        {
          Lf_core.Pipeline.default_options with
          assume_inner_nonempty = en.Gen.inner_nonempty;
          trusted_parallel = true;
          target =
            Lf_core.Pipeline.Simd
              { decomp = Lf_core.Simdize.Block; p = EInt p_lanes };
        }
      in
      match Lf_core.Pipeline.flatten_program ~opts prog with
      | Error _ -> true
      | Ok o -> (
          let simd = o.Lf_core.Pipeline.program in
          let t = run_engine_traced `Tree_walk en p_lanes simd in
          let c = run_engine_traced `Compiled en p_lanes simd in
          let streams_equal a b =
            List.length a = List.length b
            && List.for_all2 Trace.equal_event a b
          in
          match (t, c) with
          | Ok a, Ok b | Error a, Error b ->
              streams_equal a b
              || QCheck.Test.fail_reportf "trace streams diverged on@.%s"
                   (Pretty.program_to_string simd)
          | Ok _, Error _ | Error _, Ok _ ->
              QCheck.Test.fail_reportf
                "engines disagreed on success on@.%s"
                (Pretty.program_to_string simd)))

let suite =
  [
    case "flattened VM trace = Figure 4" t_flattened_vm_trace;
    case "naive VM trace = Figure 6" t_naive_vm_trace;
    case "engines emit identical trace streams" t_engines_trace_identical;
    case "profile totals reproduce the metrics" t_profile_ties_out;
    case "profile ties out and stream is identical at -O1"
      t_profile_ties_out_optimized;
    case "parallel profile ties out at multi-shard widths"
      t_parallel_profile_multishard;
    case "ring buffer keeps the newest events" t_ring_buffer;
    case "occupancy downsampling invariants" t_occupancy_downsampling;
    case "JSON round-trip (values and events)" t_json_roundtrip;
    case "trace collector disarmed by default" t_trace_disabled_by_default;
    case "MIMD per-line step attribution" t_mimd_line_steps;
    t_trace_streams_random;
  ]
