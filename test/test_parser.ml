(** Parser tests: every statement form, expression precedence, labels and
    GOTOs, declarations and directives, and parse errors. *)

open Helpers
open Lf_lang
open Ast

let expr_t =
  Alcotest.testable (fun ppf e -> Fmt.string ppf (Pretty.expr_to_string e)) ( = )

let t_precedence () =
  check expr_t "mul binds tighter than add"
    (EBin (Add, EVar "a", EBin (Mul, EVar "b", EVar "c")))
    (parse_expr "a + b * c");
  check expr_t "left associativity of sub"
    (EBin (Sub, EBin (Sub, EVar "a", EVar "b"), EVar "c"))
    (parse_expr "a - b - c");
  check expr_t "power is right-associative"
    (EBin (Pow, EVar "a", EBin (Pow, EVar "b", EVar "c")))
    (parse_expr "a ** b ** c");
  check expr_t "comparison below arithmetic"
    (EBin (Le, EBin (Add, EVar "a", EInt 1), EVar "b"))
    (parse_expr "a + 1 <= b");
  check expr_t "and binds tighter than or"
    (EBin (Or, EVar "a", EBin (And, EVar "b", EVar "c")))
    (parse_expr "a .OR. b .AND. c");
  check expr_t "not under and"
    (EBin (And, EVar "a", EUn (Not, EVar "b")))
    (parse_expr "a .AND. .NOT. b");
  check expr_t "parens override"
    (EBin (Mul, EBin (Add, EVar "a", EVar "b"), EVar "c"))
    (parse_expr "(a + b) * c");
  check expr_t "unary minus"
    (EBin (Add, EUn (Neg, EVar "a"), EVar "b"))
    (parse_expr "-a + b")

let t_calls_and_arrays () =
  check expr_t "array / call reference"
    (EIdx ("l", [ EVar "i" ]))
    (parse_expr "l(i)");
  check expr_t "two-dimensional"
    (EIdx ("x", [ EVar "i"; EVar "j" ]))
    (parse_expr "x(i, j)");
  check expr_t "nested"
    (EIdx ("partners", [ EVar "at1"; EIdx ("pr", [ EVar "i" ]) ]))
    (parse_expr "partners(at1, pr(i))");
  check expr_t "section range"
    (EIdx ("l", [ ERange (EInt 1, EInt 4) ]))
    (parse_expr "l(1:4)");
  check expr_t "vector literal"
    (ERange (EInt 1, EVar "p"))
    (parse_expr "[1:p]")

(* shape tests assert bare statement structure: strip source locations *)
let stmt1 src =
  match strip_locs_block (parse_block src) with
  | [ s ] -> s
  | ss -> Alcotest.failf "expected one statement, got %d" (List.length ss)

let t_statements () =
  (match stmt1 "x(i,j) = i * j" with
  | SAssign ({ lv_name = "x"; lv_index = [ EVar "i"; EVar "j" ] }, _) -> ()
  | _ -> Alcotest.fail "assignment shape");
  (match stmt1 "DO i = 1, k\n  a = 1\nENDDO" with
  | SDo ({ d_var = "i"; d_step = None; _ }, [ _ ]) -> ()
  | _ -> Alcotest.fail "do shape");
  (match stmt1 "DO i = 10, 1, -2\nENDDO" with
  | SDo ({ d_step = Some (EUn (Neg, EInt 2)); _ }, []) -> ()
  | _ -> Alcotest.fail "do with stride");
  (match stmt1 "WHILE (i <= k)\n  i = i + 1\nENDWHILE" with
  | SWhile (EBin (Le, _, _), [ _ ]) -> ()
  | _ -> Alcotest.fail "while shape");
  (match stmt1 "DO WHILE (a .AND. b)\n  c = 1\nENDDO" with
  | SWhile (EBin (And, _, _), [ _ ]) -> ()
  | _ -> Alcotest.fail "do-while-pre shape");
  (match stmt1 "REPEAT\n  i = i + 1\nUNTIL (i > 5)" with
  | SDoWhile ([ _ ], EBin (Gt, _, _)) -> ()
  | _ -> Alcotest.fail "repeat-until shape");
  (match stmt1 "IF (a) THEN\n  b = 1\nELSE\n  b = 2\nENDIF" with
  | SIf (EVar "a", [ _ ], [ _ ]) -> ()
  | _ -> Alcotest.fail "if-else shape");
  (match stmt1 "IF (a > 0) b = 1" with
  | SIf (_, [ SAssign _ ], []) -> ()
  | _ -> Alcotest.fail "one-line if shape");
  (match stmt1 "FORALL (i = 1:n)\n  a(i) = i\nENDFORALL" with
  | SForall ({ d_var = "i"; _ }, [ _ ]) -> ()
  | _ -> Alcotest.fail "forall shape");
  (match stmt1 "WHERE (m)\n  a = 1\nELSEWHERE\n  a = 2\nENDWHERE" with
  | SWhere (EVar "m", [ _ ], [ _ ]) -> ()
  | _ -> Alcotest.fail "where shape");
  (match stmt1 "WHERE (j <= l(i)) x(i,j) = i" with
  | SWhere (_, [ SAssign _ ], []) -> ()
  | _ -> Alcotest.fail "one-line where shape");
  (match stmt1 "CALL onef(force, at1, at2)" with
  | SCall ("onef", [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "call shape")

let t_goto () =
  let b =
    parse_block
      {|
  i = 1
10 CONTINUE
  IF (i > 5) GOTO 20
  i = i + 1
  GOTO 10
20 CONTINUE
|}
  in
  let kinds =
    List.map
      (fun s ->
        match strip_loc s with
        | SAssign _ -> "a"
        | SLabel _ -> "L"
        | SCondGoto _ -> "c"
        | SGoto _ -> "g"
        | _ -> "?")
      b
  in
  checks "goto-loop statement kinds" "a L c a g L" (String.concat " " kinds)

let t_program () =
  let p =
    parse_program
      {|
PROGRAM demo
  INTEGER k, x(8,4)
  PLURAL INTEGER pr
  PLURAL REAL force(maxlrs)
  DECOMPOSITION xd(8,4)
  ALIGN x WITH xd
  DISTRIBUTE xd(BLOCK, *)
  k = 8
END
|}
  in
  checks "name" "demo" p.p_name;
  checki "decls" 4 (List.length p.p_decls);
  checki "directives" 3 (List.length p.p_directives);
  checki "body" 1 (List.length p.p_body);
  let pr = List.find (fun d -> d.dc_name = "pr") p.p_decls in
  checkb "plural scalar" pr.dc_plural;
  let force = List.find (fun d -> d.dc_name = "force") p.p_decls in
  checkb "plural array" (force.dc_plural && force.dc_dims <> []);
  (match List.nth p.p_directives 2 with
  | DDistribute ("xd", [ DistBlock; DistSerial ]) -> ()
  | _ -> Alcotest.fail "distribute shape");
  (* headerless fragments parse as program "main" *)
  let q = parse_program "a = 1" in
  checks "default name" "main" q.p_name

let t_errors () =
  let fails s =
    match parse_block s with
    | exception Errors.Parse_error _ -> true
    | _ -> false
  in
  checkb "unclosed do" (fails "DO i = 1, 2\n a = 1\n");
  checkb "missing then-body terminator" (fails "IF (a) THEN\nb = 1\n");
  checkb "two statements on one line" (fails "a = 1 b = 2");
  checkb "stray endif" (fails "ENDIF");
  checkb "expression where statement expected" (fails "1 + 2");
  let efails s =
    match parse_expr s with
    | exception Errors.Parse_error _ -> true
    | _ -> false
  in
  checkb "trailing junk in expr" (efails "a + b c");
  checkb "unbalanced paren" (efails "(a + b")

let t_example () =
  (* the paper's Figure 1 parses to the expected nest *)
  match strip_locs_block (example_block ()) with
  | [ SDo ({ d_var = "i"; _ }, [ SDo ({ d_var = "j"; d_hi = EIdx ("l", [ EVar "i" ]); _ }, [ SAssign _ ]) ]) ] ->
      ()
  | _ -> Alcotest.fail "EXAMPLE shape"

let t_locations () =
  (* every parsed statement carries its source line *)
  let b = parse_block "i = 1\nDO j = 1, 3\n  a(j) = j\nENDDO\ns = 2" in
  let lines =
    List.map
      (fun s ->
        match Ast.loc_of s with
        | Some p -> p.Errors.line
        | None -> -1)
      b
  in
  check Alcotest.(list int) "top-level statement lines" [ 1; 2; 5 ] lines;
  (match List.map strip_loc b with
  | [ _; SDo (_, [ inner ]); _ ] ->
      (match Ast.loc_of inner with
      | Some p ->
          checki "nested statement line" 3 p.Errors.line;
          checkb "nested statement col" (p.Errors.col > 1)
      | None -> Alcotest.fail "nested statement lost its location")
  | _ -> Alcotest.fail "unexpected block shape");
  (* equality and pretty-printing look through locations *)
  checkb "located equals bare"
    (Ast.equal_block b (strip_locs_block b));
  checks "pretty ignores locations"
    (Pretty.block_to_string (strip_locs_block b))
    (Pretty.block_to_string b)

let suite =
  [
    case "expression precedence" t_precedence;
    case "statement source locations" t_locations;
    case "calls and array refs" t_calls_and_arrays;
    case "statement forms" t_statements;
    case "labels and gotos" t_goto;
    case "programs, decls, directives" t_program;
    case "parse errors" t_errors;
    case "the paper's EXAMPLE" t_example;
  ]
