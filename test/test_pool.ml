(** Unit tests for the Domain pool and the shard partition: edge cases
    of [Pool.ranges] (p not divisible by jobs, jobs > p, jobs = 1,
    p = 0), the partition invariants as a QCheck property, exception
    ordering across shards (lowest shard wins = globally first failing
    lane), empty-mask reductions with empty per-shard partials, and the
    [Trace.Sharded] buffer under genuinely concurrent emission. *)

open Helpers
module Pool = Lf_simd.Pool
module Vm = Lf_simd.Vm
module Trace = Lf_obs.Trace
open Lf_lang

let pp_ranges ppf rs =
  Fmt.pf ppf "%a"
    Fmt.(array ~sep:(any ";") (pair ~sep:(any ",") int int))
    rs

let check_ranges msg expected actual =
  checkb
    (Fmt.str "%s: expected %a, got %a" msg pp_ranges expected pp_ranges actual)
    (expected = actual)

let t_ranges_edges () =
  (* p = 0: one empty shard *)
  check_ranges "p=0" [| (0, 0) |] (Pool.ranges ~p:0 ~jobs:4);
  (* p below one chunk: a single shard regardless of jobs *)
  check_ranges "p=5 jobs=3" [| (0, 5) |] (Pool.ranges ~p:5 ~jobs:3);
  check_ranges "p=64 jobs=8" [| (0, 64) |] (Pool.ranges ~p:64 ~jobs:8);
  (* jobs = 1 degenerates to the serial partition *)
  check_ranges "p=1000 jobs=1" [| (0, 1000) |] (Pool.ranges ~p:1000 ~jobs:1);
  (* p not divisible by jobs: chunk-aligned boundaries, ragged tail *)
  check_ranges "p=100 jobs=2" [| (0, 64); (64, 100) |]
    (Pool.ranges ~p:100 ~jobs:2);
  check_ranges "p=1024 jobs=3"
    [| (0, 320); (320, 640); (640, 1024) |]
    (Pool.ranges ~p:1024 ~jobs:3);
  (* jobs > number of chunks: one shard per chunk, never an empty shard *)
  check_ranges "p=130 jobs=64"
    [| (0, 64); (64, 128); (128, 130) |]
    (Pool.ranges ~p:130 ~jobs:64);
  (* invalid jobs *)
  (match Pool.ranges ~p:8 ~jobs:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 must be rejected");
  match Pool.ranges ~p:8 ~jobs:(-3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative jobs must be rejected"

(* the partition invariants, for arbitrary p and jobs *)
let t_ranges_invariants =
  qcheck_case ~count:500 "ranges: ascending, disjoint, covering, aligned"
    QCheck.Gen.(pair (0 -- 5000) (1 -- 100))
    (fun (p, jobs) ->
      let rs = Pool.ranges ~p ~jobs in
      let n = Array.length rs in
      n >= 1
      && n <= jobs
      && fst rs.(0) = 0
      && snd rs.(n - 1) = p
      && Array.for_all (fun (lo, hi) -> lo <= hi) rs
      && (n = 1 || Array.for_all (fun (lo, hi) -> lo < hi) rs)
      (* contiguous: each shard starts where the previous ended *)
      && List.for_all
           (fun i -> snd rs.(i) = fst rs.(i + 1))
           (List.init (n - 1) Fun.id)
      (* interior boundaries are chunk multiples *)
      && List.for_all
           (fun i -> fst rs.(i) mod Pool.chunk = 0)
           (List.init n Fun.id)
      (* the grid depends only on p: refining jobs never moves a
         boundary off the chunk grid *)
      && Array.for_all
           (fun (lo, hi) -> hi - lo <= Pool.chunk * Pool.nchunks p)
           rs)

(* jobs = 1 degenerates to the serial executor: same single shard,
   inline execution *)
let t_degenerate_serial () =
  let par = Pool.parallel_exec ~p:1000 ~jobs:1 in
  let ser = Pool.serial_exec ~p:1000 in
  checkb "same partition" (par.Pool.x_ranges = ser.Pool.x_ranges);
  let seen = ref [] in
  par.Pool.x_run (fun s lo hi -> seen := (s, lo, hi) :: !seen);
  checkb "one inline shard" (!seen = [ (0, 0, 1000) ])

(* every shard of a pool-backed executor runs exactly once, covering
   the whole range *)
let t_pool_dispatch_covers () =
  let p = 1024 in
  let exec = Pool.parallel_exec ~p ~jobs:4 in
  checki "four shards" 4 (Pool.nshards exec);
  let hits = Array.make p 0 in
  exec.Pool.x_run (fun _ lo hi ->
      for i = lo to hi - 1 do
        (* each lane belongs to exactly one shard: no racing writes *)
        hits.(i) <- hits.(i) + 1
      done);
  checkb "every lane executed exactly once"
    (Array.for_all (fun c -> c = 1) hits)

(* when several shards raise, the lowest shard's exception wins — the
   globally first failing lane, matching the serial scan order *)
let t_exception_ordering () =
  let exec = Pool.parallel_exec ~p:1024 ~jobs:7 in
  checkb "enough shards for the test" (Pool.nshards exec >= 3);
  (match
     exec.Pool.x_run (fun s _ _ ->
         if s >= 1 then failwith (Printf.sprintf "shard %d" s))
   with
  | exception Failure m -> checks "lowest failing shard wins" "shard 1" m
  | () -> Alcotest.fail "expected a rethrown shard failure");
  (* and the pool survives for the next dispatch *)
  let total = ref 0 in
  let mu = Mutex.create () in
  exec.Pool.x_run (fun _ lo hi ->
      Mutex.lock mu;
      total := !total + (hi - lo);
      Mutex.unlock mu);
  checki "pool usable after a failure" 1024 !total

(* dividing by (iproc - c) fails first on lane c-1; at jobs > 1 that
   lane sits in shard 0 while later shards also fail — the reported
   error must still be lane c-1's, identically to the serial engines *)
let t_first_failing_lane () =
  let src = "u = 1 / (iproc - 2)\n" in
  let prog = Ast.program "t" (parse_block src) in
  let msg ?jobs engine =
    match Vm.run ~engine ?jobs ~p:1024 prog with
    | _ -> Alcotest.fail "expected a division error"
    | exception ((Errors.Runtime_error _ | Errors.Runtime_error_at _) as e) ->
        Errors.to_message e
  in
  let reference = msg `Tree_walk in
  checks "compiled error" reference (msg `Compiled);
  List.iter
    (fun jobs -> checks "parallel error" reference (msg ~jobs `Parallel))
    [ 1; 2; 7; 16 ]

(* empty-mask reductions at multi-chunk widths: some shards (and some
   chunks inside a shard) have no active lane, so their partials are
   absent and must not perturb the merge *)
let t_empty_partials () =
  let src =
    {|
  r = iproc * 0.125
  WHERE (iproc >= 900)
    s = sum(r)
    m = maxval(r)
    c = count(iproc > 0)
    t = any(iproc > 1000)
    a = all(iproc >= 900)
  ENDWHERE
  WHERE (iproc > 9999)
    z = sum(r)
  ENDWHERE
|}
  in
  let prog = Ast.program "t" (parse_block src) in
  let run ?jobs engine = Vm.run ~engine ?jobs ~p:1024 prog in
  let tree = run `Tree_walk in
  List.iter
    (fun (what, vm) ->
      checkb (what ^ " state") (Vm.state_equal tree vm);
      checkb (what ^ " metrics")
        (Lf_simd.Metrics.equal tree.Vm.metrics vm.Vm.metrics))
    [
      ("compiled", run `Compiled);
      ("parallel j2", run ~jobs:2 `Parallel);
      ("parallel j7", run ~jobs:7 `Parallel);
      ("parallel j16", run ~jobs:16 `Parallel);
    ];
  (* the fully-empty reduction yields the identity on every engine *)
  match Vm.find tree "z" with
  | Vm.VScalar { contents = Values.VReal z } -> checkb "empty sum" (z = 0.0)
  | _ -> Alcotest.fail "z shape"

(* Vm.run rejects invalid jobs *)
let t_vm_jobs_validation () =
  let prog = Ast.program "t" (parse_block "u = iproc") in
  match Vm.run ~engine:`Parallel ~jobs:0 ~p:4 prog with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 must be rejected"

(* Trace.Sharded: concurrent emission from several domains, flushed in
   deterministic shard order *)
let t_sharded_trace () =
  let mk_ev shard i =
    {
      Trace.loc = { Errors.line = shard; col = i };
      step = i;
      active = 1;
      p = 4;
      kind = Trace.Assign;
      mask = [| true |];
    }
  in
  (match Trace.Sharded.create ~shards:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards=0 must be rejected");
  let b = Trace.Sharded.create ~shards:3 in
  checki "shard count" 3 (Trace.Sharded.n_shards b);
  (try
     let _sink : Trace.sink = Trace.Sharded.sink b ~shard:3 in
     Alcotest.fail "out-of-range shard must be rejected"
   with Invalid_argument _ -> ());
  let domains =
    List.init 3 (fun shard ->
        let sink = Trace.Sharded.sink b ~shard in
        Domain.spawn (fun () ->
            for i = 0 to 9 do
              sink (mk_ev shard i)
            done))
  in
  List.iter Domain.join domains;
  let evs = Trace.Sharded.to_list b in
  checki "all events buffered" 30 (List.length evs);
  (* flush order: ascending shard, then emission order within a shard *)
  let expected =
    List.concat_map
      (fun shard -> List.init 10 (fun i -> mk_ev shard i))
      [ 0; 1; 2 ]
  in
  List.iter2
    (fun a b -> checkb "deterministic flush order" (Trace.equal_event a b))
    expected evs;
  let log = Trace.Log.create () in
  Trace.Sharded.flush b (Trace.Log.sink log);
  checki "flush replays everything" 30 (List.length (Trace.Log.to_list log));
  checki "flush clears the buffers" 0 (List.length (Trace.Sharded.to_list b))

let suite =
  [
    case "ranges: edge cases" t_ranges_edges;
    t_ranges_invariants;
    case "jobs=1 degenerates to serial" t_degenerate_serial;
    case "pool dispatch covers every lane once" t_pool_dispatch_covers;
    case "lowest shard's exception wins" t_exception_ordering;
    case "first failing lane reported at any jobs" t_first_failing_lane;
    case "empty per-shard reduction partials" t_empty_partials;
    case "Vm.run validates jobs" t_vm_jobs_validation;
    case "Trace.Sharded concurrent emission" t_sharded_trace;
  ]
