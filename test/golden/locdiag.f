      PROGRAM sweep
      DO i = 1, n
        DO j = 1, m
          a(i) = a(i-1) + b(j)
        ENDDO
      ENDDO
      END
