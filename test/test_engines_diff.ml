(** Differential engine-equivalence harness.

    The three execution engines — the tree-walking reference, the
    compiled closure engine, and the lane-sharded parallel engine — are
    drop-in replacements: same final variable state, same [Metrics],
    same error messages.  This suite drives that contract with random
    SIMD-dialect programs ([Gen.simd_prog_gen]) replayed on every engine
    across a sweep of lane counts (including the degenerate [p = 0] and
    the multi-chunk [p = 1024]) and shard counts, plus a fixed corpus
    (the paper's flattened EXAMPLE and the flattened NBFORCE kernel).

    The float-sum contract is checked {e bitwise}: every engine folds
    the same canonical chunked merge tree ([Pool.chunk]-sized chunks,
    merged in ascending order), so REAL sums are identical down to the
    last bit at any jobs count — not merely within tolerance. *)

open Helpers
open Lf_lang
module Vm = Lf_simd.Vm
module Metrics = Lf_simd.Metrics

(* a modest fuel: termination is by construction, fuel exhaustion is
   only a backstop — and must itself be engine-identical *)
let fuel = 20_000
let ps = [ 0; 1; 5; 64; 1024 ]
let jobs_sweep = [ 1; 2; 3; 7 ]

let run_one ?jobs ?opt ?verify engine ~p prog : (Vm.t, string) result =
  match
    Vm.run ~fuel ~engine ?jobs ?opt ?verify ~p
      ~setup:(Gen.simd_prog_setup ~p)
      prog
  with
  | vm -> Ok vm
  | exception ((Errors.Runtime_error _ | Errors.Runtime_error_at _) as e) ->
      Error (Errors.to_message e)

(* the oracle: both succeed with equal state and metrics, or both fail
   with the identical message — anything else is a counterexample *)
let pair_agrees ~what ~prog a b =
  match (a, b) with
  | Ok vm_a, Ok vm_b ->
      (Vm.state_equal vm_a vm_b
      && Metrics.equal vm_a.Vm.metrics vm_b.Vm.metrics)
      || QCheck.Test.fail_reportf "%s: state/metrics diverged on@.%s" what
           (Pretty.program_to_string prog)
  | Error m_a, Error m_b ->
      m_a = m_b
      || QCheck.Test.fail_reportf "%s: errors differ (%S vs %S) on@.%s" what
           m_a m_b
           (Pretty.program_to_string prog)
  | Ok _, Error m ->
      QCheck.Test.fail_reportf "%s: only the second engine failed (%S) on@.%s"
        what m
        (Pretty.program_to_string prog)
  | Error m, Ok _ ->
      QCheck.Test.fail_reportf "%s: only the first engine failed (%S) on@.%s"
        what m
        (Pretty.program_to_string prog)

(* the optimizer sweep crosses the tree-walker against the compiled
   engine at every optimizer level, the levels against each other, and
   the parallel engine at -O0 (the -O1/-O2 parallel legs run the full
   jobs sweep below) — fusion, fused reductions, scatter-accumulate,
   scratch reuse, discharged bounds checks and sharded scatters must
   all be unobservable.  The -O2 compiled leg runs under the verifier,
   so every random program also checks the optimizer never emits IR the
   verifier rejects. *)
let prop_engines_equivalent prog =
  List.for_all
    (fun p ->
      let tree = run_one `Tree_walk ~p prog in
      let compiled0 = run_one ~opt:0 `Compiled ~p prog in
      let compiled = run_one ~opt:1 `Compiled ~p prog in
      let compiled2 = run_one ~opt:2 ~verify:true `Compiled ~p prog in
      pair_agrees ~what:(Fmt.str "tree vs compiled -O1, p=%d" p) ~prog tree
        compiled
      && pair_agrees
           ~what:(Fmt.str "compiled -O0 vs -O1, p=%d" p)
           ~prog compiled0 compiled
      && pair_agrees
           ~what:(Fmt.str "compiled -O1 vs -O2+verify, p=%d" p)
           ~prog compiled compiled2
      && pair_agrees
           ~what:(Fmt.str "parallel -O0 vs tree, p=%d jobs=3" p)
           ~prog tree
           (run_one ~jobs:3 ~opt:0 `Parallel ~p prog)
      && List.for_all
           (fun jobs ->
             let par = run_one ~jobs ~opt:1 `Parallel ~p prog in
             let par2 = run_one ~jobs ~opt:2 `Parallel ~p prog in
             pair_agrees
               ~what:(Fmt.str "tree vs parallel -O1, p=%d jobs=%d" p jobs)
               ~prog tree par
             && pair_agrees
                  ~what:
                    (Fmt.str "tree vs parallel -O2, p=%d jobs=%d" p jobs)
                  ~prog tree par2)
           jobs_sweep)
    ps

let t_random_programs =
  qcheck_case ~count:500
    "differential: 3 engines, p in {0,1,5,64,1024}, jobs in {1,2,3,7}"
    Gen.simd_prog_gen prop_engines_equivalent

(* ------------------------------------------------------------------ *)
(* Bitwise float-sum identity                                          *)
(* ------------------------------------------------------------------ *)

(* 0.1 is not representable, so naive left-to-right vs shard-partial
   summation of iproc * 0.1 WOULD differ in the low bits at large p; the
   canonical chunked merge tree makes every engine produce the same
   bits at every jobs count *)
let t_float_sum_bitwise () =
  let src = "r = iproc * 0.1\nWHERE (iproc - (iproc / 3) * 3 >= 1)\n  s = sum(r)\nENDWHERE\nt = sum(r)" in
  let prog = Ast.program "fsum" (Parser.block_of_string src) in
  let bits_of ?jobs ?opt engine p name =
    let vm = Vm.run ~engine ?jobs ?opt ~p prog in
    match Vm.find vm name with
    | Vm.VScalar { contents = Values.VReal f } -> Int64.bits_of_float f
    | Vm.VScalar { contents = Values.VInt i } -> Int64.of_int i
    | _ -> Alcotest.fail (name ^ " is not scalar")
  in
  (* at -O1 the masked [sum(r)] folds as a fused reduction without
     materializing r's operand chain; the bits must not notice *)
  List.iter
    (fun p ->
      List.iter
        (fun name ->
          let reference = bits_of `Tree_walk p name in
          List.iter
            (fun opt ->
              checkb
                (Fmt.str "compiled -O%d %s bitwise at p=%d" opt name p)
                (Int64.equal reference (bits_of ~opt `Compiled p name));
              List.iter
                (fun jobs ->
                  checkb
                    (Fmt.str "parallel -O%d %s bitwise at p=%d jobs=%d" opt
                       name p jobs)
                    (Int64.equal reference
                       (bits_of ~jobs ~opt `Parallel p name)))
                [ 1; 2; 3; 7; 16 ])
            [ 0; 1; 2 ])
        [ "s"; "t" ])
    [ 1; 5; 64; 65; 128; 1000; 1024 ]

(* ------------------------------------------------------------------ *)
(* Fixed corpus: the paper's kernels                                   *)
(* ------------------------------------------------------------------ *)

let derive_example () =
  let p = Parser.program_of_string Lf_report.Experiments.example_source in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Block; p = Ast.EVar "p" };
    }
  in
  match Lf_core.Pipeline.flatten_program ~opts p with
  | Ok o -> o.Lf_core.Pipeline.program
  | Error e -> Alcotest.fail e

let t_example_corpus () =
  let prog = derive_example () in
  let run ?jobs engine p =
    Vm.run ~engine ?jobs ~p
      ~setup:(fun vm ->
        Vm.bind_scalar vm "k" (Values.VInt 8);
        Vm.bind_scalar vm "p" (Values.VInt p);
        Vm.bind_global vm "l" (Values.AInt (Nd.of_array paper_l));
        Vm.bind_global vm "x" (Values.AInt (Nd.create [| 8; 4 |] 0)))
      prog
  in
  List.iter
    (fun p ->
      let tree = run `Tree_walk p in
      List.iter
        (fun (what, vm) ->
          checkb (Fmt.str "EXAMPLE %s state at p=%d" what p)
            (Vm.state_equal tree vm);
          checkb
            (Fmt.str "EXAMPLE %s metrics at p=%d" what p)
            (Metrics.equal tree.Vm.metrics vm.Vm.metrics))
        [
          ("compiled", run `Compiled p);
          ("parallel j1", run ~jobs:1 `Parallel p);
          ("parallel j4", run ~jobs:4 `Parallel p);
        ])
    [ 1; 2; 8 ]

let t_nbforce_corpus () =
  let p = 8 in
  let mol = Lf_md.Workload.sod ~n:32 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p };
    }
  in
  let prog =
    match
      Lf_core.Pipeline.flatten_program ~opts
        (Lf_kernels.Nbforce_src.program ())
    with
    | Ok o -> o.Lf_core.Pipeline.program
    | Error e -> Alcotest.fail e
  in
  let f_tree, m_tree =
    Lf_kernels.Nbforce_src.run_simd ~engine:`Tree_walk prog mol pl ~p
  in
  List.iter
    (fun (what, engine, jobs, opt) ->
      let f, m =
        Lf_kernels.Nbforce_src.run_simd ~engine ?jobs ?opt
          ~verify:(opt = Some 2 && engine = `Compiled)
          prog mol pl ~p
      in
      checkb (Fmt.str "NBFORCE %s metrics" what) (Metrics.equal m_tree m);
      checki (Fmt.str "NBFORCE %s force count" what) (Array.length f_tree)
        (Array.length f);
      Array.iteri
        (fun i x ->
          checkb
            (Fmt.str "NBFORCE %s force %d bitwise" what i)
            (Int64.equal (Int64.bits_of_float f_tree.(i))
               (Int64.bits_of_float x)))
        f)
    [
      ("compiled", `Compiled, None, None);
      ("compiled -O2+verify", `Compiled, None, Some 2);
      ("parallel j1", `Parallel, Some 1, None);
      ("parallel j4", `Parallel, Some 4, None);
      ("parallel -O2 j4", `Parallel, Some 4, Some 2);
    ]

let suite =
  [
    t_random_programs;
    case "REAL sums are bitwise engine-identical" t_float_sum_bitwise;
    case "fixed corpus: flattened EXAMPLE" t_example_corpus;
    case "fixed corpus: flattened NBFORCE" t_nbforce_corpus;
  ]
