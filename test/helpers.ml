(** Shared helpers for the test suite. *)

open Lf_lang

(** The shared program generators now live in [lib/testgen] so the
    fuzzer ([lib/fuzz]) can drive them too; this alias keeps the
    suite's historical [Gen.*] references working unchanged. *)
module Gen = Lf_testgen.Gen

let check = Alcotest.check
let checkb msg b = Alcotest.check Alcotest.bool msg true b
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let case name f = Alcotest.test_case name `Quick f

let parse_block = Parser.block_of_string
let parse_expr = Parser.expr_of_string
let parse_program = Parser.program_of_string

(** The paper's EXAMPLE as a block (Figure 1). *)
let example_block () =
  parse_block
    {|
  DO i = 1, k
    DO j = 1, l(i)
      x(i,j) = i * j
    ENDDO
  ENDDO
|}

(** The paper's data: K = 8, L = 4,1,2,1,1,3,1,3. *)
let paper_l = [| 4; 1; 2; 1; 1; 3; 1; 3 |]

let example_setup ?(k = 8) ?(l = paper_l) ctx =
  let maxl = Array.fold_left max 1 l in
  Env.set ctx.Interp.env "k" (Values.VInt k);
  Env.set ctx.Interp.env "l" (Values.VArr (Values.AInt (Nd.of_array l)));
  Env.set ctx.Interp.env "x"
    (Values.VArr (Values.AInt (Nd.create [| Array.length l; maxl |] 0)))

let get_x ctx =
  match Env.find ctx.Interp.env "x" with
  | Values.VArr (Values.AInt a) -> a
  | _ -> Alcotest.fail "x is not an INTEGER array"

(** Run the reference EXAMPLE and return the resulting x. *)
let example_x ?k ?l () =
  get_x (Interp.run_block ~setup:(example_setup ?k ?l) (example_block ()))

let int_nd = Alcotest.testable (fun ppf a ->
    Fmt.pf ppf "%a" Fmt.(array ~sep:(any ";") int) (Nd.to_array a))
    (Nd.equal Int.equal)

(** Normalize the EXAMPLE nest. *)
let example_nest () =
  let b = example_block () in
  let fresh = Lf_core.Fresh.of_block b in
  match Lf_core.Normalize.of_nest ~fresh (List.hd b) with
  | Ok n -> n
  | Error e -> Alcotest.fail ("EXAMPLE did not normalize: " ^ e)

(** QCheck generator for small trip-count vectors (K, L arrays). *)
let trips_gen =
  QCheck.Gen.(
    let* k = 1 -- 6 in
    let* p = oneofl [ 1; 2; 3 ] in
    let k = k * p in
    let* l = array_size (return k) (0 -- 5) in
    return (p, l))

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name (QCheck.make gen) prop)
