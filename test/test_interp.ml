(** Sequential interpreter tests: evaluation, arrays and sections, every
    loop form, GOTO, external procedures/functions, observations, fuel. *)

open Helpers
open Lf_lang
open Values

let eval_str ?(setup = fun _ -> ()) s =
  let ctx = Interp.create () in
  setup ctx;
  Interp.eval ctx (parse_expr s)

let run ?setup src = Interp.run_block ?setup (parse_block src)

let geti ctx v = as_int (Env.find ctx.Interp.env v)
let getf ctx v = as_float (Env.find ctx.Interp.env v)

let t_arith () =
  checki "add" 7 (as_int (eval_str "3 + 4"));
  checki "precedence" 14 (as_int (eval_str "2 + 3 * 4"));
  checki "int division truncates" 3 (as_int (eval_str "7 / 2"));
  checki "mod" 1 (as_int (eval_str "7 - 2 * 3"));
  checki "pow" 81 (as_int (eval_str "3 ** 4"));
  checki "unary minus" (-5) (as_int (eval_str "-(2 + 3)"));
  checkb "mixed promotes to real"
    (Float.abs (as_float (eval_str "1 + 0.5") -. 1.5) < 1e-12);
  checkb "comparison" (as_bool (eval_str "2 + 2 <= 4"));
  checkb "logic" (as_bool (eval_str ".NOT. (1 > 2) .AND. .TRUE."))

let t_intrinsics () =
  checki "max" 9 (as_int (eval_str "max(3, 9, 4)"));
  checki "min" 3 (as_int (eval_str "min(3, 9, 4)"));
  checki "abs" 5 (as_int (eval_str "abs(-5)"));
  checki "mod fn" 2 (as_int (eval_str "mod(17, 5)"));
  let setup ctx =
    Env.set ctx.Interp.env "l"
      (VArr (AInt (Nd.of_array [| 4; 1; 2; 1 |])))
  in
  checki "maxval" 4 (as_int (eval_str ~setup "maxval(l)"));
  checki "minval" 1 (as_int (eval_str ~setup "minval(l)"));
  checki "sum" 8 (as_int (eval_str ~setup "sum(l)"));
  checki "size" 4 (as_int (eval_str ~setup "size(l)"));
  checki "maxval of section" 2 (as_int (eval_str ~setup "maxval(l(2:4))"));
  let bsetup ctx =
    Env.set ctx.Interp.env "m"
      (VArr (ABool (Nd.of_array [| true; false; true |])))
  in
  checkb "any" (as_bool (eval_str ~setup:bsetup "any(m)"));
  checkb "not all" (not (as_bool (eval_str ~setup:bsetup "all(m)")));
  checki "count" 2 (as_int (eval_str ~setup:bsetup "count(m)"))

let t_arrays () =
  let ctx =
    run
      ~setup:(fun ctx ->
        Env.set ctx.Interp.env "a" (VArr (AInt (Nd.create [| 5 |] 0))))
      {|
  DO i = 1, 5
    a(i) = i * i
  ENDDO
  s = a(2) + a(4)
|}
  in
  checki "element read" 20 (geti ctx "s");
  (* whole-array and section assignment *)
  let ctx2 =
    run
      ~setup:(fun ctx ->
        Env.set ctx.Interp.env "a" (VArr (AInt (Nd.create [| 6 |] 9))))
      {|
  a = 0
  a(2:4) = 7
  s = sum(a)
|}
  in
  checki "section assign" 21 (geti ctx2 "s");
  (* out-of-bounds is an error *)
  match
    run
      ~setup:(fun ctx ->
        Env.set ctx.Interp.env "a" (VArr (AInt (Nd.create [| 3 |] 0))))
      "a(4) = 1"
  with
  | exception (Errors.Runtime_error _ | Errors.Runtime_error_at _) -> ()
  | _ -> Alcotest.fail "expected bounds error"

let t_loops () =
  let ctx = run "s = 0\nDO i = 1, 10, 2\n  s = s + i\nENDDO" in
  checki "strided do" 25 (geti ctx "s");
  checki "do var after loop" 11 (geti ctx "i");
  let ctx = run "s = 0\nDO i = 5, 1\n  s = s + 1\nENDDO" in
  checki "zero-trip do" 0 (geti ctx "s");
  let ctx = run "s = 0\nDO i = 10, 2, -3\n  s = s + i\nENDDO" in
  checki "negative stride" 21 (geti ctx "s");
  let ctx = run "i = 1\ns = 0\nWHILE (i <= 4)\n  s = s + i\n  i = i + 1\nENDWHILE" in
  checki "while" 10 (geti ctx "s");
  let ctx = run "i = 10\ns = 0\nREPEAT\n  s = s + 1\n  i = i + 1\nUNTIL (i < 5)" in
  checki "repeat runs at least once" 1 (geti ctx "s");
  let ctx = run "s = 0\nFORALL (i = 1:4)\n  s = s + i\nENDFORALL" in
  checki "forall (sequential semantics)" 10 (geti ctx "s")

let t_goto () =
  let ctx =
    run
      {|
  i = 1
  s = 0
10 CONTINUE
  IF (i > 5) GOTO 20
  s = s + i
  i = i + 1
  GOTO 10
20 CONTINUE
  s = s * 2
|}
  in
  checki "goto loop" 30 (geti ctx "s");
  (* a jump to a label that is not visible from the executing statement
     is an ordinary runtime error, never an escaped control exception *)
  (match run "GOTO 99" with
  | exception Errors.Runtime_error m ->
      checkb "names the label" (Astring_contains.contains m "99")
  | _ -> Alcotest.fail "expected a runtime error");
  match
    run
      {|
  i = 0
  IF (i > 1) THEN
30 CONTINUE
  ENDIF
  GOTO 30
|}
  with
  | exception (Errors.Runtime_error _ | Errors.Runtime_error_at _) -> ()
  | _ -> Alcotest.fail "expected a runtime error for an out-of-scope label"

let t_procs () =
  let calls = ref [] in
  let ctx = Interp.create () in
  Interp.register_proc ctx "trace" (fun _ args ->
      calls := List.map as_int args :: !calls);
  Interp.register_func ctx "twice" (function
    | [ v ] -> VInt (2 * as_int v)
    | _ -> Alcotest.fail "arity");
  Interp.exec_block ctx
    (parse_block "DO i = 1, 3\n  CALL trace(i, twice(i))\nENDDO");
  checkb "calls recorded" (!calls = [ [ 3; 6 ]; [ 2; 4 ]; [ 1; 2 ] ]);
  checki "observations" 3 (List.length (Interp.observations ctx));
  match run "CALL nosuch(1)" with
  | exception (Errors.Runtime_error _ | Errors.Runtime_error_at _) -> ()
  | _ -> Alcotest.fail "unknown subroutine must fail"

let t_fuel () =
  match Interp.run_block ~fuel:1000 (parse_block "i = 1\nWHILE (i > 0)\n  i = i + 1\nENDWHILE") with
  | exception Errors.Runtime_error_at (p, _) ->
      checkb "fuel error carries a source line" (p.Errors.line >= 2)
  | exception Errors.Runtime_error _ ->
      Alcotest.fail "fuel error lost its source location"
  | _ -> Alcotest.fail "expected fuel exhaustion"

let t_example_semantics () =
  (* the reference EXAMPLE: x(i, j) = i*j exactly where j <= L(i) *)
  let x = example_x () in
  Array.iteri
    (fun i0 li ->
      for j = 1 to 4 do
        let expected = if j <= li then (i0 + 1) * j else 0 in
        checki (Printf.sprintf "x(%d,%d)" (i0 + 1) j) expected
          (Nd.get x [| i0 + 1; j |])
      done)
    paper_l

let t_elementwise () =
  let setup ctx =
    Env.set ctx.Interp.env "a" (VArr (AInt (Nd.of_array [| 1; 2; 3 |])));
    Env.set ctx.Interp.env "b" (VArr (AInt (Nd.of_array [| 10; 20; 30 |])))
  in
  let ctx = run ~setup "c = a + b * 2" in
  (match Env.find ctx.Interp.env "c" with
  | VArr (AInt c) ->
      checkb "elementwise" (Nd.to_array c = [| 21; 42; 63 |])
  | _ -> Alcotest.fail "c not array");
  let ctx2 = run ~setup "s = sum(a * b)" in
  checki "dot" 140 (geti ctx2 "s")

let t_reals () =
  let ctx = run "x = 2.0\ny = sqrt(x * 8.0)" in
  checkb "sqrt" (Float.abs (getf ctx "y" -. 4.0) < 1e-12)

let suite =
  [
    case "arithmetic and logic" t_arith;
    case "intrinsics" t_intrinsics;
    case "arrays and sections" t_arrays;
    case "loop forms" t_loops;
    case "goto" t_goto;
    case "external procedures" t_procs;
    case "fuel bound" t_fuel;
    case "EXAMPLE reference semantics" t_example_semantics;
    case "elementwise array ops" t_elementwise;
    case "real arithmetic" t_reals;
  ]
