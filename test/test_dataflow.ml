(** Dataflow-framework tests: reaching definitions (must-kill vs may-def),
    liveness, and use-def/def-use chains on small blocks. *)

open Helpers
open Lf_lang.Ast
module Cfg = Lf_analysis.Cfg
module D = Lf_analysis.Dataflow
module Ch = Lf_analysis.Chains

let build src = Cfg.build (parse_block src)

let node_of cfg pred =
  let hit = ref None in
  Array.iter
    (fun n -> if !hit = None && pred n.Cfg.kind then hit := Some n.Cfg.id)
    cfg.Cfg.nodes;
  match !hit with
  | Some id -> id
  | None -> Alcotest.fail "expected node not found"

let assign_to cfg name =
  node_of cfg (function
    | Cfg.Stmt (SAssign (l, _)) -> l.lv_name = name
    | _ -> false)

let t_reaching_kill () =
  let cfg = build "a = 1\na = 2\nb = a" in
  let r = D.reaching_definitions cfg in
  let at_b = D.reaching_defs_of r ~node:(assign_to cfg "b") ~var:"a" in
  checki "the second assignment kills the first" 1 (List.length at_b);
  let d = List.hd at_b in
  checkb "the reaching def is the must-def of a" (d.D.ds_must && d.D.ds_var = "a");
  (* and it is the *later* definition *)
  checkb "it is the downstream definition"
    (match (Cfg.node cfg d.D.ds_node).Cfg.kind with
    | Cfg.Stmt (SAssign (_, EInt 2)) -> true
    | _ -> false)

let t_reaching_element_stores () =
  let cfg = build "x(i) = 1\nx(j) = 2\ns = x(k)" in
  let r = D.reaching_definitions cfg in
  let at_s = D.reaching_defs_of r ~node:(assign_to cfg "s") ~var:"x" in
  checki "element stores never kill: both reach" 2 (List.length at_s);
  checkb "both are may-defs" (List.for_all (fun d -> not d.D.ds_must) at_s)

let t_reaching_around_loop () =
  let cfg = build "s = 0\nDO i = 1, k\n  s = s + 1\nENDDO\nt = s" in
  let r = D.reaching_definitions cfg in
  let at_t = D.reaching_defs_of r ~node:(assign_to cfg "t") ~var:"s" in
  (* the zero-trip path keeps the initialisation alive alongside the
     in-loop update *)
  checki "init and loop update both reach past the loop" 2
    (List.length at_t)

let t_liveness () =
  let cfg = build "a = 1\nb = a + k\nc = 2" in
  let l = D.liveness cfg in
  checkb "only the never-defined input is live at entry"
    (D.live_at_entry l = [ "k" ]);
  checkb "a is live into its use"
    (List.mem "a" (D.live_in l (assign_to cfg "b")))

let t_liveness_loop () =
  let cfg = build "DO i = 1, k\n  s = s + 1\nENDDO" in
  let l = D.liveness cfg in
  let live = D.live_at_entry l in
  checkb "loop-carried scalar is live at entry" (List.mem "s" live);
  checkb "the bound is live at entry" (List.mem "k" live);
  checkb "the induction variable is not (the header kills it)"
    (not (List.mem "i" live))

let t_chains () =
  let cfg = build "a = 1\nIF (p) THEN\n  a = 2\nENDIF\nb = a" in
  let ch = Ch.build cfg in
  let use_b = assign_to cfg "b" in
  checki "both branches' definitions reach the merged use" 2
    (List.length (Ch.defs_reaching ch ~node:use_b ~var:"a"));
  (* def-use: the initial a = 1 feeds the use after the IF *)
  let d1 =
    List.find
      (fun d ->
        match (Cfg.node cfg d.D.ds_node).Cfg.kind with
        | Cfg.Stmt (SAssign (_, EInt 1)) -> true
        | _ -> false)
      (Ch.defs_of_var ch "a")
  in
  checkb "def-use chain links a = 1 to the use"
    (List.exists (fun u -> u.Ch.us_node = use_b) (Ch.uses_of_def ch d1.D.ds_id));
  checkb "p has an upward-exposed use (never defined)"
    (Ch.upward_exposed ch "p" <> []);
  checkb "a has no upward-exposed use (defined on every path)"
    (Ch.upward_exposed ch "a" = [])

let suite =
  [
    case "reaching defs: must-defs kill" t_reaching_kill;
    case "reaching defs: element stores are may-defs" t_reaching_element_stores;
    case "reaching defs: zero-trip loop path" t_reaching_around_loop;
    case "liveness on straight-line code" t_liveness;
    case "liveness across a loop" t_liveness_loop;
    case "use-def and def-use chains" t_chains;
  ]
