(* Test entry point: one Alcotest suite per module. *)

let () =
  Alcotest.run "loop-flattening"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("interp", Test_interp.suite);
      ("simplify", Test_simplify.suite);
      ("ast-util", Test_ast_util.suite);
      ("typecheck", Test_typecheck.suite);
      ("analysis", Test_analysis.suite);
      ("depend", Test_depend.suite);
      ("cfg", Test_cfg.suite);
      ("dataflow", Test_dataflow.suite);
      ("range", Test_range.suite);
      ("lint", Test_lint.suite);
      ("parallel", Test_parallel.suite);
      ("normalize", Test_normalize.suite);
      ("flatten", Test_flatten.suite);
      ("simdize", Test_simdize.suite);
      ("pipeline", Test_pipeline.suite);
      ("simd-vm", Test_simd_vm.suite);
      ("opt", Test_opt.suite);
      ("verify", Test_verify.suite);
      ("pool", Test_pool.suite);
      ("engines-diff", Test_engines_diff.suite);
      ("vm-trace", Test_vm_trace.suite);
      ("stats", Test_stats.suite);
      ("manifest", Test_manifest.suite);
      ("mimd", Test_mimd.suite);
      ("mimdize", Test_mimdize.suite);
      ("layout", Test_layout.suite);
      ("bounds", Test_bounds.suite);
      ("md", Test_md.suite);
      ("decomp", Test_decomp.suite);
      ("runtime", Test_runtime.suite);
      ("kernels", Test_kernels.suite);
      ("deep", Test_deep.suite);
      ("coalesce", Test_coalesce.suite);
      ("layered", Test_layered.suite);
      ("e2e", Test_e2e.suite);
      ("fuzz", Test_fuzz.suite);
      ("report", Test_report.suite);
      ("progcache", Test_progcache.suite);
    ]
