(** AST utility tests: variable queries, substitution, renaming,
    structural measures. *)

open Helpers
open Lf_lang
open Ast

let sl = Alcotest.(check (list string))

let t_vars () =
  let e = parse_expr "x(i, j) + l(i) * k" in
  sl "expr vars" [ "i"; "j"; "k"; "l"; "x" ] (Ast_util.expr_vars e);
  let b = example_block () in
  sl "assigned" [ "i"; "j"; "x" ] (Ast_util.assigned_vars b);
  sl "read" [ "i"; "j"; "k"; "l" ] (Ast_util.read_vars b)

let t_subst () =
  let b = example_block () in
  let b' = Ast_util.subst_block "i" (EVar "ip") b in
  (* binding occurrences (the DO variable) are untouched by subst *)
  sl "subst leaves binder" [ "i"; "j"; "x" ] (Ast_util.assigned_vars b');
  checkb "subst rewrites uses"
    (List.mem "ip" (Ast_util.read_vars b'));
  let b'' = Ast_util.rename_block "i" "ip" b in
  sl "rename rewrites binder" [ "ip"; "j"; "x" ]
    (Ast_util.assigned_vars b'');
  checkb "rename removes old name"
    (not (List.mem "i" (Ast_util.read_vars b'')))

let t_subst_semantics () =
  (* substituting a constant for the bound then evaluating agrees with
     evaluating then projecting *)
  let b = parse_block "y = n * 2 + 1" in
  let b' = Ast_util.subst_block "n" (EInt 5) b in
  let ctx = Interp.run_block b' in
  checki "subst value" 11 (Values.as_int (Env.find ctx.Interp.env "y"))

let t_measures () =
  let b = example_block () in
  checki "loop depth" 2 (Ast_util.loop_depth b);
  checki "stmt count" 3 (Ast_util.stmt_count b);
  let b2 = parse_block "a = 1\n! note\nb = 2" in
  checki "comments not counted" 2 (Ast_util.stmt_count b2);
  sl "called subroutines" [ "onef" ]
    (Ast_util.called_subroutines (parse_block "CALL onef(x)"));
  sl "expr calls" [ "force" ]
    (Ast_util.expr_calls (parse_expr "f + force(a, b)"))

let t_map_exprs () =
  let b = parse_block "x(i) = i + 1\nIF (i < n) THEN\n  y = i\nENDIF" in
  let b' =
    Ast_util.map_block_exprs
      (Ast_util.map_expr (function EVar "i" -> EInt 3 | e -> e))
      b
  in
  let b' = Ast.strip_locs_block b' in
  checkb "condition rewritten"
    (match b' with
    | [ _; SIf (EBin (Lt, EInt 3, EVar "n"), _, _) ] -> true
    | _ -> false);
  checkb "index rewritten"
    (match b' with
    | SAssign ({ lv_index = [ EInt 3 ]; _ }, _) :: _ -> true
    | _ -> false)

let prop_rename_roundtrip (b : block) =
  (* renaming to a fresh name and back is the identity when the fresh name
     does not occur *)
  let fresh = "zz_fresh" in
  let vars = Ast_util.assigned_vars b @ Ast_util.read_vars b in
  if List.mem fresh vars then true
  else
    List.for_all
      (fun v ->
        let back = Ast_util.rename_block fresh v (Ast_util.rename_block v fresh b) in
        Ast.equal_block b back)
      vars

let suite =
  [
    case "variable queries" t_vars;
    case "substitution vs renaming" t_subst;
    case "substitution semantics" t_subst_semantics;
    case "structural measures" t_measures;
    case "expression mapping" t_map_exprs;
    qcheck_case ~count:300 "rename round-trip" Gen.block prop_rename_roundtrip;
  ]
