(** The telemetry registry ([Lf_obs.Stats]).

    Three layers of checks:
    - registry units: interning (find-or-create), kind mismatches,
      reset, the mask-density bucketing shared by every engine;
    - the disabled path: with the registry off, every recording entry
      point must be a no-op (the cost-model contract that lets the
      instrumentation stay compiled into the hot paths);
    - the determinism schema, as a QCheck property: for random
      SIMD-dialect programs the [counters] section of the JSON dump is
      byte-identical across engines, [--jobs] and [-O] levels, and the
      [opt] section is byte-identical across [--jobs] at a fixed [-O].
      Only [volatile] is exempt. *)

open Helpers
open Lf_lang
module Stats = Lf_obs.Stats
module Json = Lf_obs.Json
module Vm = Lf_simd.Vm

(* every test leaves the registry disabled and zeroed so suites running
   after this one see the default (cold) state *)
let clean f () =
  Fun.protect
    ~finally:(fun () ->
      Stats.disable ();
      Stats.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Registry units                                                      *)
(* ------------------------------------------------------------------ *)

let t_intern () =
  Stats.enable ();
  let a = Stats.counter "test.intern" in
  let b = Stats.counter "test.intern" in
  Stats.incr a;
  Stats.add b 4;
  checki "interned counter is shared" 5 (Stats.counter_value a);
  checki "both handles read the same cell" 5 (Stats.counter_value b);
  Stats.reset ();
  checki "reset zeroes the counter" 0 (Stats.counter_value a)

let t_kind_mismatch () =
  let (_ : Stats.counter) = Stats.counter "test.kind" in
  Alcotest.check_raises "re-registering with another kind"
    (Invalid_argument "Stats: test.kind already registered with another kind")
    (fun () -> ignore (Stats.gauge "test.kind"))

let t_gauge_timer_sharded () =
  Stats.enable ();
  let g = Stats.gauge "test.gauge" in
  Stats.set_gauge g 2.5;
  Stats.add_gauge g 0.5;
  checkb "gauge set+add" (Stats.gauge_value g = 3.0);
  let t = Stats.timer "test.timer" in
  Stats.add_span_ns t 10L;
  Stats.add_span_ns t 30L;
  let v = Stats.span t (fun () -> 42) in
  checki "span returns the thunk's value" 42 v;
  let s = Stats.sharded "test.sharded" in
  Stats.cell_add s ~cell:0 3;
  Stats.cell_add s ~cell:7 4;
  (* out-of-range cells fold into the last cell instead of raising *)
  Stats.cell_add s ~cell:1000 5;
  Stats.cell_add s ~cell:(-2) 1;
  checki "sharded merge sums every cell" 13 (Stats.merged_value s)

let t_span_exception () =
  Stats.enable ();
  let t = Stats.timer "test.span_exn" in
  (try Stats.span t (fun () -> raise Exit) with Exit -> ());
  (* the span is still recorded: read it back through the dump *)
  match Json.member "volatile" (Stats.to_json ()) with
  | Some vol -> (
      match Json.member "test.span_exn" vol with
      | Some (Json.Obj fields) ->
          checkb "span count recorded despite the exception"
            (List.assoc_opt "count" fields = Some (Json.Int 1))
      | _ -> Alcotest.fail "test.span_exn missing from the volatile section")
  | None -> Alcotest.fail "dump has no volatile section"

let t_mask_bucket () =
  let bucket active p = Stats.mask_bucket ~active ~p in
  checki "empty" 0 (bucket 0 8);
  checki "1/8 -> q1" 1 (bucket 1 8);
  checki "2/8 -> q1" 1 (bucket 2 8);
  checki "3/8 -> q2" 2 (bucket 3 8);
  checki "4/8 -> q2" 2 (bucket 4 8);
  checki "5/8 -> q3" 3 (bucket 5 8);
  checki "6/8 -> q3" 3 (bucket 6 8);
  checki "7/8 -> q4" 4 (bucket 7 8);
  checki "8/8 -> full" 5 (bucket 8 8);
  checki "p=0 counts as full" 5 (bucket 0 0);
  checki "1/1024 -> q1" 1 (bucket 1 1024);
  checki "1023/1024 -> q4" 4 (bucket 1023 1024)

let t_dump_shape () =
  let j = Stats.to_json () in
  checkb "version 1" (Json.member "version" j = Some (Json.Int 1));
  (match Json.member "stability" j with
  | Some (Json.Obj fields) ->
      checkb "stability marks volatile as exempt"
        (match List.assoc_opt "volatile" fields with
        | Some (Json.Str s) -> String.length s > 0
        | _ -> false)
  | _ -> Alcotest.fail "dump has no stability object");
  List.iter
    (fun sec ->
      match Json.member sec j with
      | Some (Json.Obj fields) ->
          let keys = List.map fst fields in
          checkb (sec ^ " keys sorted") (keys = List.sort compare keys)
      | _ -> Alcotest.fail ("dump has no " ^ sec ^ " section"))
    [ "counters"; "opt"; "volatile" ]

(* ------------------------------------------------------------------ *)
(* Disabled path: every recording call is a no-op                      *)
(* ------------------------------------------------------------------ *)

let t_disabled_noop () =
  Stats.disable ();
  Stats.reset ();
  let c = Stats.counter "test.off.c" in
  let g = Stats.gauge "test.off.g" in
  let t = Stats.timer "test.off.t" in
  let s = Stats.sharded "test.off.s" in
  Stats.incr c;
  Stats.add c 100;
  Stats.set_gauge g 9.0;
  Stats.add_gauge g 1.0;
  Stats.add_span_ns t 1_000L;
  checki "span still runs the thunk" 7 (Stats.span t (fun () -> 7));
  Stats.cell_add s ~cell:0 5;
  checki "disabled counter stays 0" 0 (Stats.counter_value c);
  checkb "disabled gauge stays 0" (Stats.gauge_value g = 0.0);
  checki "disabled sharded stays 0" 0 (Stats.merged_value s);
  (* and the interpreter hook is not installed *)
  checkb "dispatch hook uninstalled when disabled"
    (!Interp.dispatch_hook = None);
  Stats.enable ();
  checkb "dispatch hook installed when enabled"
    (Option.is_some !Interp.dispatch_hook)

(* ------------------------------------------------------------------ *)
(* Determinism schema over random programs                             *)
(* ------------------------------------------------------------------ *)

let fuel = 20_000
let prop_p = 64

let section_string name =
  match Json.member name (Stats.to_json ()) with
  | Some j -> Json.to_string j
  | None -> QCheck.Test.fail_reportf "stats dump has no %S section" name

(* one configuration, with a fresh registry: run the program (runtime
   errors allowed — the engines abort at the same source operation, so
   the counters accumulated up to the abort must still agree) and
   return the serialized [counters] and [opt] sections *)
let run_config ?jobs ?opt engine prog =
  Stats.reset ();
  Stats.enable ();
  let ok =
    match
      Vm.run ~fuel ~engine ?jobs ?opt ~p:prop_p
        ~setup:(Gen.simd_prog_setup ~p:prop_p)
        prog
    with
    | (_ : Vm.t) -> true
    | exception (Errors.Runtime_error _ | Errors.Runtime_error_at _) -> false
  in
  let counters = section_string "counters" in
  let opt_s = section_string "opt" in
  Stats.disable ();
  (ok, counters, opt_s)

let prop_counters_deterministic prog =
  let configs =
    [
      ("tree-walk", run_config `Tree_walk prog);
      ("compiled -O0", run_config ~opt:0 `Compiled prog);
      ("compiled -O1", run_config ~opt:1 `Compiled prog);
      ("compiled -O2", run_config ~opt:2 `Compiled prog);
      ("parallel -O1 j1", run_config ~jobs:1 ~opt:1 `Parallel prog);
      ("parallel -O1 j2", run_config ~jobs:2 ~opt:1 `Parallel prog);
      ("parallel -O1 j7", run_config ~jobs:7 ~opt:1 `Parallel prog);
      ("parallel -O2 j2", run_config ~jobs:2 ~opt:2 `Parallel prog);
      ("parallel -O2 j7", run_config ~jobs:7 ~opt:2 `Parallel prog);
    ]
  in
  let name_ref, (ok_ref, counters_ref, _) = List.hd configs in
  List.iter
    (fun (name, (ok, counters, _)) ->
      if ok <> ok_ref then
        QCheck.Test.fail_reportf "%s vs %s: outcome diverged on@.%s" name_ref
          name
          (Pretty.program_to_string prog);
      if counters <> counters_ref then
        QCheck.Test.fail_reportf
          "%s vs %s: counters section diverged on@.%s@.%s@.vs@.%s" name_ref
          name
          (Pretty.program_to_string prog)
          counters_ref counters)
    configs;
  (* the [opt] section is jobs-invariant at a fixed -O level — at -O2
     that includes the discharge counters [opt.nocheck_runs],
     [opt.bounds_checks_discharged] and [opt.par_scatter_runs], whose
     recording sites must count claim applications on the control
     thread, never per shard *)
  let opt_of name = match List.assoc name configs with _, _, o -> o in
  let check_opt ref_name others =
    let o_ref = opt_of ref_name in
    List.iter
      (fun name ->
        if opt_of name <> o_ref then
          QCheck.Test.fail_reportf "%s vs %s: opt section diverged on@.%s"
            ref_name name
            (Pretty.program_to_string prog))
      others
  in
  check_opt "compiled -O1"
    [ "parallel -O1 j1"; "parallel -O1 j2"; "parallel -O1 j7" ];
  check_opt "compiled -O2" [ "parallel -O2 j2"; "parallel -O2 j7" ];
  true

(* ------------------------------------------------------------------ *)
(* The -O2 discharge counters on the flattened-loop shape              *)
(* ------------------------------------------------------------------ *)

(* a stride-8 flattened loop whose store provably stays in [1, n]: the
   range phase discharges its bounds checks and proves the scatter
   lane-disjoint, so every new [opt] counter moves — and must move by
   the same amount on every engine and jobs count *)
let flat_src =
  "at1 = 1 + (iproc - 1)\n\
   WHILE (any(at1 <= n))\n\
  \  WHERE (at1 <= n)\n\
  \    f(at1) = f(at1) + 1.0\n\
  \    at1 = at1 + 8\n\
  \  ENDWHERE\n\
   ENDWHILE"

let t_opt2_counters () =
  let prog = Ast.program "flat" (Parser.block_of_string flat_src) in
  let setup vm =
    Vm.bind_scalar vm "n" (Values.VInt 8);
    Vm.bind_global vm "f" (Values.AReal (Nd.create [| 8 |] 0.0))
  in
  let snapshot ?jobs engine =
    Stats.reset ();
    Stats.enable ();
    ignore (Vm.run ~engine ?jobs ~opt:2 ~verify:true ~p:8 ~setup prog : Vm.t);
    let v name = Stats.counter_value (Stats.counter ~section:Stats.Opt name) in
    let r =
      ( v "opt.nocheck_runs",
        v "opt.bounds_checks_discharged",
        v "opt.par_scatter_runs",
        v "opt.par_scatter_sites",
        v "opt.range_sites",
        v "verify.phases",
        v "verify.checks" )
    in
    Stats.disable ();
    r
  in
  let (nruns, nchecks, pruns, psites, rsites, vphases, vchecks) as compiled =
    snapshot `Compiled
  in
  checkb "bounds checks discharged" (nruns > 0 && nchecks > 0);
  checki "one scatter site proven lane-disjoint" 1 psites;
  checkb "the proven scatter executed" (pruns > 0);
  checkb "range claims annotated" (rsites > 0);
  checkb "the verifier checked every phase boundary" (vphases >= 8);
  checkb "the verifier discharged checks" (vchecks > 0);
  List.iter
    (fun jobs ->
      checkb
        (Fmt.str "opt counters jobs-invariant at jobs=%d" jobs)
        (snapshot ~jobs `Parallel = compiled))
    [ 1; 2; 7 ]

let t_determinism =
  qcheck_case ~count:60
    "counters byte-identical across engines/jobs/-O; opt across jobs"
    Gen.simd_prog_gen
    (fun prog ->
      Fun.protect
        ~finally:(fun () ->
          Stats.disable ();
          Stats.reset ())
        (fun () -> prop_counters_deterministic prog))

let suite =
  [
    case "interning finds-or-creates; reset zeroes" (clean t_intern);
    case "kind mismatch raises" (clean t_kind_mismatch);
    case "gauges, timers, sharded cells" (clean t_gauge_timer_sharded);
    case "span records through exceptions" (clean t_span_exception);
    case "mask-density bucketing" t_mask_bucket;
    case "JSON dump shape and key order" (clean t_dump_shape);
    case "disabled path is a no-op" (clean t_disabled_noop);
    case "-O2 discharge counters move and are jobs-invariant"
      (clean t_opt2_counters);
    t_determinism;
  ]
