(** Dependence-analysis tests: affine extraction, ZIV/SIV verdicts, and
    loop-carried array dependence decisions. *)

open Helpers
open Lf_lang
module D = Lf_analysis.Depend

let inv_all _ = true
let inv_none _ = false

let extract s = D.extract "i" inv_all (parse_expr s)

let t_extract () =
  (match extract "i" with
  | Some { D.coeff = 1; const = 0; sym = None } -> ()
  | _ -> Alcotest.fail "i");
  (match extract "2 * i + 3" with
  | Some { D.coeff = 2; const = 3; sym = None } -> ()
  | _ -> Alcotest.fail "2i+3");
  (match extract "i - 1" with
  | Some { D.coeff = 1; const = -1; _ } -> ()
  | _ -> Alcotest.fail "i-1");
  (match extract "-i" with
  | Some { D.coeff = -1; _ } -> ()
  | _ -> Alcotest.fail "-i");
  (match extract "n + i" with
  | Some { D.coeff = 1; const = 0; sym = Some _ } -> ()
  | _ -> Alcotest.fail "n+i");
  checkb "i*i is not affine" (extract "i * i" = None);
  checkb "a(i) is not affine in i" (extract "a(i)" = None);
  (match extract "a(n)" with
  | Some { D.coeff = 0; sym = Some _; _ } -> ()
  | _ -> Alcotest.fail "invariant lookup allowed");
  checkb "non-invariant var rejected"
    (D.extract "i" inv_none (parse_expr "n + i") = None)

let aff c k = { D.coeff = c; const = k; sym = None }

let t_siv () =
  checkb "ziv equal" (D.siv_test (aff 0 3) (aff 0 3) = D.Unknown);
  checkb "ziv different" (D.siv_test (aff 0 3) (aff 0 4) = D.Independent);
  checkb "strong siv distance"
    (D.siv_test (aff 1 0) (aff 1 (-2)) = D.Distance (-2));
  checkb "strong siv same" (D.siv_test (aff 1 5) (aff 1 5) = D.Distance 0);
  checkb "strong siv non-integer"
    (D.siv_test (aff 2 0) (aff 2 1) = D.Independent);
  checkb "gcd independent" (D.siv_test (aff 2 0) (aff 4 1) = D.Independent);
  checkb "gcd feasible unknown" (D.siv_test (aff 2 0) (aff 4 2) = D.Unknown);
  checkb "different symbols unknown"
    (D.siv_test
       { D.coeff = 1; const = 0; sym = Some (Ast.EVar "n") }
       (aff 1 0)
    = D.Unknown)

(* a(3) against a(c*i + k): the invariant reference collides with exactly
   one iteration, i = (3 - k)/c *)
let t_weak_zero () =
  checkb "fractional solution independent"
    (D.siv_test (aff 0 3) (aff 2 0) = D.Independent);
  checkb "integral solution unknown without bounds"
    (D.siv_test (aff 0 3) (aff 1 0) = D.Unknown);
  checkb "solution inside the iteration space unknown"
    (D.siv_test ~bounds:(1, 8) (aff 0 3) (aff 1 0) = D.Unknown);
  checkb "solution outside the iteration space independent"
    (D.siv_test ~bounds:(4, 8) (aff 0 3) (aff 1 0) = D.Independent);
  checkb "symmetric in argument order"
    (D.siv_test ~bounds:(4, 8) (aff 1 0) (aff 0 3) = D.Independent);
  checkb "negative coefficient handled"
    (D.siv_test ~bounds:(1, 8) (aff 0 3) (aff (-1) 0) = D.Independent)

(* a(c*i + k1) against a(-c*i + k2): collisions need i1 + i2 = (k2-k1)/c,
   which two iterations can only form inside [2*lo, 2*hi] *)
let t_weak_crossing () =
  checkb "fractional crossing independent"
    (D.siv_test (aff 2 0) (aff (-2) 3) = D.Independent);
  checkb "integral crossing unknown without bounds"
    (D.siv_test (aff 1 0) (aff (-1) 4) = D.Unknown);
  checkb "crossing inside the iteration space unknown"
    (D.siv_test ~bounds:(1, 8) (aff 1 0) (aff (-1) 4) = D.Unknown);
  checkb "crossing below the iteration space independent"
    (D.siv_test ~bounds:(3, 8) (aff 1 0) (aff (-1) 4) = D.Independent);
  checkb "crossing above the iteration space independent"
    (D.siv_test ~bounds:(1, 8) (aff 1 0) (aff (-1) 20) = D.Independent);
  checkb "boundary sum still unknown"
    (D.siv_test ~bounds:(1, 8) (aff 1 0) (aff (-1) 16) = D.Unknown)

let t_combine () =
  checkb "any independent wins"
    (D.combine [ D.Unknown; D.Independent ] = D.Independent);
  checkb "consistent distances"
    (D.combine [ D.Distance 2; D.Distance 2 ] = D.Distance 2);
  checkb "contradictory distances independent"
    (D.combine [ D.Distance 1; D.Distance 2 ] = D.Independent);
  checkb "unknown absorbs" (D.combine [ D.Unknown; D.Unknown ] = D.Unknown)

let carried src =
  let body = parse_block src in
  let assigned = Lf_lang.Ast_util.assigned_vars body in
  let invariant v = v <> "i" && not (List.mem v assigned) in
  D.loop_carried_array_dependence "i" invariant body

let t_loop_carried () =
  checkb "disjoint writes per iteration" (not (carried "a(i) = i"));
  checkb "read-modify-write same element"
    (not (carried "a(i) = a(i) + 1"));
  checkb "offset read carries" (carried "a(i) = a(i - 1) + 1");
  checkb "constant cell carries" (carried "a(1) = a(1) + i");
  checkb "reads alone never carry" (not (carried "b = a(i) + a(i - 1)"));
  checkb "indirect write is unknown (conservative)"
    (carried "a(p(i)) = 1");
  checkb "invariant-table read beside subscript write ok"
    (not (carried "a(i) = t(i) * 2"));
  checkb "two-dim distance 0"
    (not (carried "x(i, j) = x(i, j) + 1"));
  checkb "write to other row carries" (carried "x(i + 1, j) = x(i, j)");
  checkb "different columns independent"
    (not (carried "x(i, 1) = x(i, 2) + 1"))

let t_references () =
  let refs = D.references (parse_block "a(i) = b(i - 1) + a(i)") in
  checki "reference count" 3 (List.length refs);
  checki "write count" 1
    (List.length (List.filter (fun r -> r.D.r_is_write) refs))

let suite =
  [
    case "affine extraction" t_extract;
    case "ZIV and SIV tests" t_siv;
    case "weak-zero SIV" t_weak_zero;
    case "weak-crossing SIV" t_weak_crossing;
    case "verdict combination" t_combine;
    case "loop-carried decisions" t_loop_carried;
    case "reference collection" t_references;
  ]
