(** The program cache ([Lf_simd.Progcache] / [Vm.run_src]) and the
    batch driver ([Lf_simd.Batch]).

    Units: content keying (identical bytes under different dialect/-O/
    verify/p are distinct entries), LRU eviction order, both budget
    axes, and frame-pool layout safety.  The QCheck property is the
    tentpole contract: warm (cache-hit) runs are bit-identical to cold
    runs — state, [Metrics], error strings — on tree-walk/compiled/
    parallel at -O0/-O1/-O2.  Batch cases: failing-item isolation, the
    any-failed flag the CLI turns into exit 1, JSONL record schema, and
    malformed work lists / seed tokens. *)

open Helpers
open Lf_lang
module Vm = Lf_simd.Vm
module Metrics = Lf_simd.Metrics
module Progcache = Lf_simd.Progcache
module Batch = Lf_simd.Batch
module Stats = Lf_obs.Stats
module Json = Lf_obs.Json

let fuel = 20_000

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Record cache counters around [f]: the registry only records while
   enabled, and other suites expect it off, so bracket and reset. *)
let with_stats f =
  Stats.reset ();
  Stats.enable ();
  Fun.protect
    ~finally:(fun () ->
      Stats.disable ();
      Stats.reset ())
    f

let cache_counters () =
  let snap = Stats.snapshot ~sections:[ Stats.Opt ] () in
  let get k = Option.value ~default:0 (List.assoc_opt k snap) in
  (get "cache.hits", get "cache.misses", get "cache.evictions")

(* ------------------------------------------------------------------ *)
(* Keying / LRU units                                                  *)
(* ------------------------------------------------------------------ *)

let src_a = "PROGRAM a\n  PLURAL INTEGER u\n  u = iproc * 2\nEND\n"
let src_b = "PROGRAM b\n  PLURAL INTEGER v\n  v = iproc + 1\nEND\n"
let src_c = "PROGRAM c\n  PLURAL INTEGER w\n  w = iproc - 1\nEND\n"

let insert c ~src ?(dialect = "simd") ?(opt = 1) ?(verify = false) ?(p = 4) ()
    =
  Progcache.insert c ~src ~dialect ~opt ~verify ~p ~front_ns:1L
    (parse_program src)

let find c ~src ?(dialect = "simd") ?(opt = 1) ?(verify = false) ?(p = 4) () =
  Progcache.find c ~src ~dialect ~opt ~verify ~p

let t_content_keys () =
  with_stats (fun () ->
      let c = Progcache.create () in
      ignore (insert c ~src:src_a ());
      (* identical bytes under a different dialect, -O, verify flag or p
         are different programs as far as the cache is concerned *)
      checkb "other dialect misses" (find c ~src:src_a ~dialect:"nest" () = None);
      checkb "other -O misses" (find c ~src:src_a ~opt:2 () = None);
      checkb "verify flag misses" (find c ~src:src_a ~verify:true () = None);
      checkb "other p misses" (find c ~src:src_a ~p:8 () = None);
      checkb "exact key hits" (find c ~src:src_a () <> None);
      ignore (insert c ~src:src_a ~dialect:"nest" ());
      ignore (insert c ~src:src_a ~opt:2 ());
      ignore (insert c ~src:src_a ~p:8 ());
      checki "distinct entries per key" 4 (Progcache.length c);
      (* and the key is the content, not the identity, of the bytes *)
      checkb "fresh equal bytes hit"
        (find c ~src:(String.concat "" [ src_a ]) () <> None);
      let hits, misses, _ = cache_counters () in
      checki "hits counted" 2 hits;
      checki "misses counted" 4 misses)

let t_lru_eviction () =
  with_stats (fun () ->
      let c = Progcache.create ~max_entries:2 () in
      ignore (insert c ~src:src_a ());
      ignore (insert c ~src:src_b ());
      (* touch A so B becomes the LRU victim *)
      checkb "A hits" (find c ~src:src_a () <> None);
      ignore (insert c ~src:src_c ());
      checki "capacity respected" 2 (Progcache.length c);
      checkb "recently-used survived" (find c ~src:src_a () <> None);
      checkb "LRU evicted" (find c ~src:src_b () = None);
      let _, _, evictions = cache_counters () in
      checki "eviction counted" 1 evictions;
      (* re-inserting an existing key replaces, never duplicates *)
      ignore (insert c ~src:src_a ());
      checki "replacement keeps length" 2 (Progcache.length c))

let t_byte_budget () =
  (* each entry is estimated at 512 + 8 * |src| ≈ 900 bytes, so a 1000
     byte budget admits exactly one of them *)
  let c = Progcache.create ~max_bytes:1000 () in
  ignore (insert c ~src:src_a ());
  checki "first entry fits" 1 (Progcache.length c);
  ignore (insert c ~src:src_b ());
  (* the budget only holds one entry of this size: A must have been
     evicted to admit B *)
  checki "budget enforced" 1 (Progcache.length c);
  checkb "newest survives" (find c ~src:src_b () <> None);
  checkb "bytes tracked" (Progcache.bytes c > 0)

let t_frame_pool () =
  let c = Progcache.create () in
  let e = insert c ~src:src_a ~p:4 () in
  let layout = [ "u"; "iproc" ] in
  let f1 = Progcache.take_frame e ~p:4 layout in
  Progcache.release_frame e f1;
  let f2 = Progcache.take_frame e ~p:4 layout in
  checkb "pooled frame reused" (f1 == f2);
  Progcache.release_frame e f2;
  (* a different layout must never receive the pooled frame: slot
     numbering is positional *)
  let f3 = Progcache.take_frame e ~p:4 [ "u"; "iproc"; "extra" ] in
  checkb "layout mismatch gets a fresh frame" (f3 != f2);
  (* reset cleared the slots of the reused frame *)
  checkb "reused frame slots unbound"
    (Lf_simd.Frame.get f2 0 = Lf_simd.Frame.Unbound)

(* ------------------------------------------------------------------ *)
(* Warm = cold (the tentpole contract)                                 *)
(* ------------------------------------------------------------------ *)

let run_src_one ?cache ?jobs ?opt ?verify engine ~p src :
    (Vm.t, string) result =
  match
    Vm.run_src ~fuel ~engine ?jobs ?opt ?verify ?cache ~p
      ~setup:(Gen.simd_prog_setup ~p) src
  with
  | vm -> Ok vm
  | exception ((Errors.Runtime_error _ | Errors.Runtime_error_at _) as e) ->
      Error (Errors.to_message e)

let agrees ~what ~src a b =
  match (a, b) with
  | Ok vm_a, Ok vm_b ->
      (Vm.state_equal vm_a vm_b
      && Metrics.equal vm_a.Vm.metrics vm_b.Vm.metrics)
      || QCheck.Test.fail_reportf "%s: state/metrics diverged on@.%s" what src
  | Error m_a, Error m_b ->
      m_a = m_b
      || QCheck.Test.fail_reportf "%s: errors differ (%S vs %S) on@.%s" what
           m_a m_b src
  | Ok _, Error m ->
      QCheck.Test.fail_reportf "%s: only warm failed (%S) on@.%s" what m src
  | Error m, Ok _ ->
      QCheck.Test.fail_reportf "%s: only cold failed (%S) on@.%s" what m src

let prop_warm_equals_cold prog =
  let src = Pretty.program_to_string prog in
  List.for_all
    (fun p ->
      List.for_all
        (fun (engine, jobs, opts) ->
          List.for_all
            (fun opt ->
              let what =
                Fmt.str "warm vs cold, %s -O%d p=%d"
                  (match engine with
                  | `Tree_walk -> "tree-walk"
                  | `Compiled -> "compiled"
                  | `Parallel -> "parallel")
                  opt p
              in
              (* a plain (cache-less) run is the reference; then a cold
                 run through a fresh cache, then two warm runs — the
                 second warm run additionally exercises the pooled
                 frame released by the first *)
              let plain = run_src_one ?jobs ~opt engine ~p src in
              let cache = Progcache.create () in
              let cold = run_src_one ~cache ?jobs ~opt engine ~p src in
              let warm1 = run_src_one ~cache ?jobs ~opt engine ~p src in
              let warm2 = run_src_one ~cache ?jobs ~opt engine ~p src in
              agrees ~what:(what ^ " (cold vs plain)") ~src cold plain
              && agrees ~what:(what ^ " (warm1)") ~src warm1 cold
              && agrees ~what:(what ^ " (warm2)") ~src warm2 cold)
            opts)
        [
          (`Tree_walk, None, [ 0 ]);
          (`Compiled, None, [ 0; 1; 2 ]);
          (`Parallel, Some 2, [ 0; 1; 2 ]);
        ])
    [ 0; 3; 64 ]

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)
(* ------------------------------------------------------------------ *)

let batch_item ?(program = "good.f") ?(p = 4) ?(engine = `Compiled)
    ?(opt = 1) ?jobs ?(verify = false) ?bfuel ?timeout_ms ?(repeat = 1)
    ?kernel ?(sets = []) ?(fills = []) () =
  {
    Batch.bi_program = program;
    bi_p = p;
    bi_engine = engine;
    bi_opt = opt;
    bi_jobs = jobs;
    bi_verify = verify;
    bi_fuel = bfuel;
    bi_timeout_ms = timeout_ms;
    bi_repeat = repeat;
    bi_kernel = kernel;
    bi_sets = sets;
    bi_fills = fills;
  }

let batch_read path =
  match path with
  | "good.f" -> src_a
  | "loop.f" ->
      (* long enough that a 1 ms deadline fires mid-run, short enough to
         stay inside the default fuel if the deadline machinery broke *)
      "PROGRAM loop\n  PLURAL INTEGER u\n  u = 0\n\
      \  WHILE (any(u < 10000000))\n    u = u + 1\n  ENDWHILE\nEND\n"
  | "bad-parse.f" -> "PROGRAM bad\n  u = (\nEND\n"
  | "div0.f" ->
      "PROGRAM div\n  PLURAL INTEGER u\n  u = 1 / (iproc - iproc)\nEND\n"
  | p -> raise (Sys_error (p ^ ": No such file or directory"))

let run_batch items =
  let records = ref [] in
  let any_failed =
    Batch.run ~read:batch_read ~emit:(fun j -> records := j :: !records) items
  in
  (any_failed, List.rev !records)

let str_field r k =
  match Json.member k r with Some (Json.Str s) -> Some s | _ -> None

let t_batch_isolation () =
  let any_failed, records =
    run_batch
      [
        batch_item ();
        batch_item ~program:"bad-parse.f" ();
        batch_item ~program:"div0.f" ();
        batch_item ~program:"missing.f" ();
        batch_item ~program:"loop.f" ~engine:`Tree_walk ~bfuel:10 ();
        (* and a healthy item AFTER the failures proves isolation *)
        batch_item ~engine:`Parallel ~jobs:2 ~opt:2 ~repeat:2 ();
      ]
  in
  checkb "any_failed set" any_failed;
  checki "one record per item" 6 (List.length records);
  let statuses = List.filter_map (fun r -> str_field r "status") records in
  checkb "statuses"
    (statuses = [ "ok"; "error"; "error"; "error"; "error"; "ok" ]);
  (* every failure message is carried in the record *)
  List.iteri
    (fun i r ->
      match str_field r "status" with
      | Some "error" ->
          checkb
            (Fmt.str "item %d has an error message" i)
            (match str_field r "error" with
            | Some m -> String.length m > 0
            | None -> false)
      | _ -> ())
    records

let t_batch_ok_all () =
  let any_failed, records =
    run_batch [ batch_item (); batch_item ~engine:`Tree_walk () ]
  in
  checkb "no failures" (not any_failed);
  checki "records" 2 (List.length records)

let t_batch_schema () =
  let _, records = run_batch [ batch_item ~repeat:3 () ] in
  let r = List.hd records in
  let has k = Json.member k r <> None in
  List.iter
    (fun k -> checkb ("record has " ^ k) (has k))
    [
      "schema"; "index"; "program"; "program_md5"; "program_bytes";
      "engine"; "opt"; "jobs"; "p"; "repeat"; "wall_ns"; "status";
      "metrics";
    ];
  checkb "repeat echoed" (Json.member "repeat" r = Some (Json.Int 3));
  (* the record must itself be jsonlint-valid JSON *)
  match Json.parse (Json.to_string r) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("record does not re-parse: " ^ e)

let t_batch_timeout () =
  let _, records =
    run_batch [ batch_item ~program:"loop.f" ~engine:`Tree_walk ~timeout_ms:1 () ]
  in
  match records with
  | [ r ] -> (
      checkb "timeout fails the item" (str_field r "status" = Some "error");
      match str_field r "error" with
      | Some m -> checkb "message names the timeout" (contains_sub m "timeout")
      | None -> Alcotest.fail "no error message")
  | _ -> Alcotest.fail "expected one record"

let t_batch_warm_metrics () =
  (* repeats run warm through the shared cache; the driver's metrics
     must come out identical to a fresh cold driver's *)
  let _, cold = run_batch [ batch_item () ] in
  let _, warm = run_batch [ batch_item ~repeat:4 () ] in
  let metrics r = Json.member "metrics" (List.hd r) in
  checkb "warm metrics identical"
    (Option.map Json.to_string (metrics cold)
    = Option.map Json.to_string (metrics warm))

let t_items_of_json () =
  let ok_json =
    {|[{"program": "a.f", "p": 4},
       {"program": "b.f", "p": 8, "engine": "parallel", "jobs": 2,
        "opt": 2, "verify": true, "repeat": 3, "timeout_ms": 100,
        "set": {"k": 8}, "fill": {"l": "1,2,3"}}]|}
  in
  (match Json.parse ok_json with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Batch.items_of_json j with
      | [ a; b ] ->
          checkb "defaults" (a.Batch.bi_engine = `Compiled && a.Batch.bi_opt = 1 && a.Batch.bi_repeat = 1);
          checkb "fields"
            (b.Batch.bi_engine = `Parallel && b.Batch.bi_jobs = Some 2
           && b.Batch.bi_verify
            && b.Batch.bi_sets = [ ("k", "8") ]
            && b.Batch.bi_fills = [ ("l", "1,2,3") ]);
          (* the wrapped form parses to the same list *)
          checkb "wrapped form"
            (match Json.parse ({|{"jobs": |} ^ ok_json ^ "}") with
            | Ok j' -> Batch.items_of_json j' = [ a; b ]
            | Error _ -> false)
      | _ -> Alcotest.fail "expected two items"));
  let rejects what text =
    match Json.parse text with
    | Error _ -> Alcotest.fail (what ^ ": test JSON malformed")
    | Ok j -> (
        match Batch.items_of_json j with
        | exception Batch.Bad_jobs m ->
            checkb (what ^ ": message set") (String.length m > 0)
        | _ -> Alcotest.fail (what ^ ": accepted"))
  in
  rejects "non-list" {|"zap"|};
  rejects "missing program" {|[{"p": 4}]|};
  rejects "missing p" {|[{"program": "a.f"}]|};
  rejects "bad engine" {|[{"program": "a.f", "p": 4, "engine": "warp"}]|};
  rejects "bad opt" {|[{"program": "a.f", "p": 4, "opt": 7}]|};
  rejects "jobs without parallel" {|[{"program": "a.f", "p": 4, "jobs": 2}]|};
  rejects "bad repeat" {|[{"program": "a.f", "p": 4, "repeat": 0}]|}

let t_seed_tokens () =
  checkb "int" (Batch.scalar_value "8" = Values.VInt 8);
  checkb "real" (Batch.scalar_value "0.5" = Values.VReal 0.5);
  checkb "bool" (Batch.scalar_value "TRUE" = Values.VBool true);
  (match Batch.scalar_value "yes" with
  | exception Batch.Bad_value m ->
      checkb "scalar message names token" (contains_sub m "yes")
  | _ -> Alcotest.fail "bad scalar accepted");
  (match Batch.fill_array "1,2,bogus" with
  | exception Batch.Bad_value m ->
      checkb "fill message names token" (contains_sub m "bogus")
  | _ -> Alcotest.fail "bad fill accepted");
  match Batch.fill_array "1,2.5,3" with
  | Values.AReal _ -> ()
  | _ -> Alcotest.fail "mixed fill should be real"

let suite =
  [
    case "content-addressed keys" t_content_keys;
    case "LRU eviction" t_lru_eviction;
    case "byte budget" t_byte_budget;
    case "frame pool layout safety" t_frame_pool;
    qcheck_case ~count:60 "warm runs bit-identical to cold"
      Gen.simd_prog_gen prop_warm_equals_cold;
    case "batch: failing-item isolation" t_batch_isolation;
    case "batch: all-green returns false" t_batch_ok_all;
    case "batch: JSONL record schema" t_batch_schema;
    case "batch: per-item timeout" t_batch_timeout;
    case "batch: warm repeats keep metrics" t_batch_warm_metrics;
    case "batch: work-list parsing" t_items_of_json;
    case "seed-token parsing" t_seed_tokens;
  ]
