(** SIMD VM tests: plural values, WHERE masking, reductions under masks,
    gather/scatter, plural arrays, vector-controlled WHILE, metrics. *)

open Helpers
open Lf_lang
open Values
module Vm = Lf_simd.Vm
module Pv = Lf_simd.Pval

let run_vm ?(p = 4) ?(setup = fun _ -> ()) src =
  let vm = Vm.create ~p () in
  setup vm;
  Vm.exec_block vm ~mask:(Vm.full_mask vm) (parse_block src);
  vm

let plural_ints vm name = Array.map as_int (Vm.read_plural vm name)

let t_iproc () =
  let vm = run_vm "i = iproc * 10" in
  checkb "iproc broadcast" (plural_ints vm "i" = [| 10; 20; 30; 40 |])

let t_where () =
  let vm =
    run_vm
      "i = iproc\nWHERE (i >= 3)\n  i = i * 100\nELSEWHERE\n  i = 0 - i\nENDWHERE"
  in
  checkb "where/elsewhere" (plural_ints vm "i" = [| -1; -2; 300; 400 |])

let t_nested_where () =
  let vm =
    run_vm
      {|
  i = iproc
  WHERE (i >= 2)
    WHERE (i >= 4)
      i = 1000
    ELSEWHERE
      i = 500
    ENDWHERE
  ENDWHERE
|}
  in
  checkb "nested masks" (plural_ints vm "i" = [| 1; 500; 500; 1000 |])

let t_reductions () =
  let vm = run_vm "i = iproc\nt = any(i > 3)\nu = any(i > 4)\nm = maxval(i)\ns = sum(i)" in
  checkb "any true" (as_bool (match Vm.find vm "t" with Vm.VScalar r -> !r | _ -> assert false));
  checkb "any false" (not (as_bool (match Vm.find vm "u" with Vm.VScalar r -> !r | _ -> assert false)));
  checki "maxval" 4 (as_int (match Vm.find vm "m" with Vm.VScalar r -> !r | _ -> assert false));
  checki "sum" 10 (as_int (match Vm.find vm "s" with Vm.VScalar r -> !r | _ -> assert false))

let t_masked_reduction () =
  (* reductions see only active lanes *)
  let vm =
    run_vm
      "i = iproc\nWHERE (i <= 2)\n  m = maxval(i)\n  i = m\nENDWHERE"
  in
  checkb "masked maxval" (plural_ints vm "i" = [| 2; 2; 3; 4 |])

let t_gather_scatter () =
  let setup vm =
    Vm.bind_global vm "a" (AInt (Nd.of_array [| 10; 20; 30; 40 |]));
    Vm.bind_global vm "b" (AInt (Nd.create [| 4 |] 0))
  in
  let vm = run_vm ~setup "i = iproc\nv = a(5 - i)\nb(i) = v * 2" in
  checkb "gather reversed" (plural_ints vm "v" = [| 40; 30; 20; 10 |]);
  (match Vm.read_global vm "b" with
  | AInt b -> checkb "scatter" (Nd.to_array b = [| 80; 60; 40; 20 |])
  | _ -> Alcotest.fail "b type");
  (* masked scatter leaves inactive elements alone *)
  let vm2 =
    run_vm ~setup "i = iproc\nWHERE (i <= 2)\n  b(i) = 7\nENDWHERE"
  in
  match Vm.read_global vm2 "b" with
  | AInt b -> checkb "masked scatter" (Nd.to_array b = [| 7; 7; 0; 0 |])
  | _ -> Alcotest.fail "b type"

let t_plural_array () =
  let vm =
    run_vm
      ~setup:(fun vm -> Vm.bind_plural_arr vm "f" Ast.TInt [| 3 |])
      "i = iproc\nDO ly = 1, 3\n  f(ly) = i * ly\nENDDO\nv = f(2)"
  in
  checkb "per-lane storage" (plural_ints vm "v" = [| 2; 4; 6; 8 |])

let t_vector_while () =
  (* §2: WHILE controlled by an array of booleans whose elements agree *)
  let vm = run_vm "i = iproc * 0\nWHILE (i < 3)\n  i = i + 1\nENDWHILE" in
  checkb "uniform vector while" (plural_ints vm "i" = [| 3; 3; 3; 3 |]);
  match
    run_vm "i = iproc\nWHILE (i < 3)\n  i = i + 1\nENDWHILE"
  with
  | exception (Errors.Runtime_error _ | Errors.Runtime_error_at _) -> ()
  | _ -> Alcotest.fail "divergent vector WHILE must be rejected"

let t_while_any () =
  let vm =
    run_vm
      "i = iproc\nWHILE (any(i <= 3))\n  WHERE (i <= 3)\n    i = i + 10\n  ENDWHERE\nENDWHILE"
  in
  checkb "while-any" (plural_ints vm "i" = [| 11; 12; 13; 4 |])

let t_declarations () =
  let prog =
    Parser.program_of_string
      {|
PROGRAM t
  INTEGER n
  PLURAL INTEGER i
  PLURAL REAL acc(2)
  INTEGER g(n)
  i = iproc
  g(i) = i
END
|}
  in
  let vm =
    Vm.run ~p:4
      ~setup:(fun vm -> Vm.bind_scalar vm "n" (VInt 4))
      prog
  in
  (match Vm.read_global vm "g" with
  | AInt g -> checkb "declared global" (Nd.to_array g = [| 1; 2; 3; 4 |])
  | _ -> Alcotest.fail "g type");
  match Vm.find vm "acc" with
  | Vm.VPluralArr (AReal a) -> checkb "plural array dims" (Nd.dims a = [| 4; 2 |])
  | _ -> Alcotest.fail "acc shape"

let t_metrics () =
  let vm = run_vm "i = iproc\nWHERE (i <= 1)\n  i = i + 1\nENDWHERE" in
  let m = vm.Vm.metrics in
  checkb "vector steps counted" (m.Lf_simd.Metrics.steps >= 2);
  checkb "utilization below 1 with masking"
    (Lf_simd.Metrics.utilization m < 1.0);
  (* the example kernel counts: unflattened needs 12, flattened 8 body steps *)
  ()

let t_procs () =
  let record = ref [] in
  let vm = Vm.create ~p:2 () in
  Vm.register_proc vm "probe" (fun _ ~mask args ->
      record := (Array.to_list mask, List.length args) :: !record);
  Vm.exec_block vm ~mask:(Vm.full_mask vm)
    (parse_block "i = iproc\nWHERE (i == 2)\n  CALL probe(i)\nENDWHERE");
  (match !record with
  | [ ([ false; true ], 1) ] -> ()
  | _ -> Alcotest.fail "proc mask");
  checki "call metric" 1 (Lf_simd.Metrics.call_count vm.Vm.metrics "probe")

let t_fuel () =
  match run_vm "i = 0\nWHILE (i < 1)\n  j = iproc\nENDWHILE" with
  | exception Errors.Runtime_error_at (p, _) ->
      checkb "fuel error carries a source line" (p.Errors.line >= 2)
  | exception Errors.Runtime_error _ ->
      Alcotest.fail "fuel error lost its source location"
  | _ -> Alcotest.fail "expected fuel exhaustion"

let t_lift_errors () =
  (match run_vm "i = iproc\nk = 1\nk = i" with
  | exception (Errors.Runtime_error _ | Errors.Runtime_error_at _) -> ()
  | _ -> Alcotest.fail "plural into front-end scalar must fail")

let scalar_of vm name =
  match Vm.find vm name with Vm.VScalar r -> !r | _ -> Alcotest.fail name

let t_reduction_identity () =
  (* regression: MAXVAL/MINVAL/SUM over REAL lanes with no active lane
     must return a REAL identity, not the integer sentinels *)
  let vm =
    run_vm
      {|
  x = iproc * 1.5
  WHERE (iproc > 99)
    m = maxval(x)
    n = minval(x)
    s = sum(x)
  ENDWHERE
|}
  in
  checkb "empty maxval over REAL" (scalar_of vm "m" = VReal neg_infinity);
  checkb "empty minval over REAL" (scalar_of vm "n" = VReal infinity);
  checkb "empty sum over REAL" (scalar_of vm "s" = VReal 0.0);
  (* integer lanes keep the historical sentinels *)
  let vm2 =
    run_vm "WHERE (iproc > 99)\n  m = maxval(iproc)\n  n = minval(iproc)\nENDWHERE"
  in
  checkb "empty maxval over INTEGER" (scalar_of vm2 "m" = VInt min_int);
  checkb "empty minval over INTEGER" (scalar_of vm2 "n" = VInt max_int)

(* ------------------------------------------------------------------ *)
(* Compiled engine                                                     *)
(* ------------------------------------------------------------------ *)

let run_both ?(p = 4) ?(setup = fun _ -> ()) src =
  let prog = Ast.program "t" (parse_block src) in
  ( Vm.run ~engine:`Tree_walk ~p ~setup prog,
    Vm.run ~engine:`Compiled ~p ~setup prog,
    Vm.run ~engine:`Parallel ~jobs:3 ~p ~setup prog )

let check_agree name (t, c, par) =
  checkb (name ^ ": state") (Vm.state_equal t c);
  checkb (name ^ ": metrics")
    (Lf_simd.Metrics.equal t.Vm.metrics c.Vm.metrics);
  checkb (name ^ ": parallel state") (Vm.state_equal t par);
  checkb (name ^ ": parallel metrics")
    (Lf_simd.Metrics.equal t.Vm.metrics par.Vm.metrics);
  c

let t_compiled_basics () =
  let setup vm =
    Vm.bind_global vm "a" (AInt (Nd.of_array [| 10; 20; 30; 40 |]));
    Vm.bind_global vm "b" (AInt (Nd.create [| 4 |] 0))
  in
  let c =
    check_agree "where+gather+scatter"
      (run_both ~setup
         {|
  i = iproc
  v = a(5 - i)
  b(i) = v
  WHERE (i >= 3)
    i = i * 100
  ELSEWHERE
    i = 0 - i
  ENDWHERE
  s = sum(v)
  t = any(i > 100)
|})
  in
  checkb "compiled where" (plural_ints c "i" = [| -1; -2; 300; 400 |]);
  checkb "compiled gather" (plural_ints c "v" = [| 40; 30; 20; 10 |]);
  checki "compiled sum" 100 (as_int (scalar_of c "s"))

let t_compiled_loops () =
  let c =
    check_agree "do+while+plural if"
      (run_both
         {|
  i = iproc * 0
  WHILE (any(i < 3))
    WHERE (i < 3)
      i = i + 1
    ENDWHERE
  ENDWHILE
  acc = 0
  DO k = 1, 4
    acc = acc + k
  ENDDO
  IF (i > 2) THEN
    i = i + 10
  ENDIF
|})
  in
  checkb "compiled while result" (plural_ints c "i" = [| 13; 13; 13; 13 |]);
  checki "compiled do" 10 (as_int (scalar_of c "acc"))

let t_compiled_plural_array () =
  let c =
    check_agree "plural arrays"
      (run_both
         ~setup:(fun vm -> Vm.bind_plural_arr vm "f" Ast.TInt [| 3 |])
         "i = iproc\nDO ly = 1, 3\n  f(ly) = i * ly\nENDDO\nv = f(2)")
  in
  checkb "compiled per-lane storage" (plural_ints c "v" = [| 2; 4; 6; 8 |])

let t_compiled_type_changes () =
  (* a plural that changes element type under a partial mask must degrade
     to the same mixed representation the tree-walker holds *)
  let c =
    check_agree "mixed lanes"
      (run_both
         {|
  x = iproc
  WHERE (iproc >= 3)
    x = x * 0.5
  ENDWHERE
  WHERE (iproc >= 3)
    y = x + 0.25
  ENDWHERE
|})
  in
  ignore c

let t_compiled_procs () =
  let record = ref [] in
  let prog =
    Ast.program "t"
      (parse_block "i = iproc\nWHERE (i == 2)\n  CALL probe(i)\nENDWHERE")
  in
  let vm =
    Vm.run ~engine:`Compiled ~p:2
      ~setup:(fun vm ->
        Vm.register_proc vm "probe" (fun _ ~mask args ->
            record := (Array.to_list mask, args) :: !record))
      prog
  in
  (match !record with
  | [ ([ false; true ], [ Pv.Plural lanes ]) ] ->
      (* the inactive lane of a variable argument keeps its true value *)
      checkb "proc arg lanes" (Array.map as_int lanes = [| 1; 2 |])
  | _ -> Alcotest.fail "proc mask/args");
  checki "compiled call metric" 1
    (Lf_simd.Metrics.call_count vm.Vm.metrics "probe")

let t_compiled_errors () =
  (* all engines fail identically: same error, same message *)
  let src = "i = iproc\nWHILE (i < 3)\n  i = i + 1\nENDWHILE" in
  let msg ?jobs engine =
    let prog = Ast.program "t" (parse_block src) in
    match Vm.run ~engine ?jobs ~p:4 prog with
    | _ -> Alcotest.fail "divergent vector WHILE must be rejected"
    | exception ((Errors.Runtime_error _ | Errors.Runtime_error_at _) as e) ->
        Errors.to_message e
  in
  Alcotest.(check string) "same error" (msg `Tree_walk) (msg `Compiled);
  Alcotest.(check string)
    "same error (parallel)" (msg `Tree_walk) (msg ~jobs:3 `Parallel)

let suite =
  [
    case "iproc and broadcast" t_iproc;
    case "where/elsewhere" t_where;
    case "nested where" t_nested_where;
    case "reductions" t_reductions;
    case "masked reductions" t_masked_reduction;
    case "gather/scatter" t_gather_scatter;
    case "plural arrays" t_plural_array;
    case "vector-controlled while" t_vector_while;
    case "while-any idiom" t_while_any;
    case "declaration handling" t_declarations;
    case "metrics" t_metrics;
    case "plural procedures" t_procs;
    case "fuel" t_fuel;
    case "type discipline" t_lift_errors;
    case "reduction identities are type-correct" t_reduction_identity;
    case "compiled: where/gather/scatter/reductions" t_compiled_basics;
    case "compiled: loops and plural IF" t_compiled_loops;
    case "compiled: plural arrays" t_compiled_plural_array;
    case "compiled: lanes changing element type" t_compiled_type_changes;
    case "compiled: vector subroutine calls" t_compiled_procs;
    case "compiled: identical runtime errors" t_compiled_errors;
  ]
