(** Normalization tests (paper Figure 8): phase extraction for every loop
    form, and semantic preservation of the normal form. *)

open Helpers
open Lf_lang
open Ast
module N = Lf_core.Normalize

let of_loop s =
  let b = parse_block s in
  let fresh = Lf_core.Fresh.of_block b in
  match N.of_loop ~fresh (List.hd b) with
  | Some n -> n
  | None -> Alcotest.fail "did not normalize"

let t_do () =
  let n = of_loop "DO i = 1, k\n  a(i) = i\nENDDO" in
  checkb "init" (n.N.n_init = [ Ast.assign "i" (EInt 1) ]);
  checkb "test" (n.N.n_test = EBin (Le, EVar "i", EVar "k"));
  checkb "increment"
    (n.N.n_increment = [ Ast.assign "i" (EBin (Add, EVar "i", EInt 1)) ]);
  checkb "done test is var = hi" (n.N.n_done = Some (EBin (Eq, EVar "i", EVar "k")));
  checkb "var" (n.N.n_var = Some "i");
  checkb "not parallel" (not n.N.n_parallel)

let t_do_stride () =
  let n = of_loop "DO i = 1, k, 2\nENDDO" in
  checkb "stride increment"
    (n.N.n_increment = [ Ast.assign "i" (EBin (Add, EVar "i", EInt 2)) ]);
  checkb "done uses overshoot"
    (n.N.n_done = Some (EBin (Gt, EBin (Add, EVar "i", EInt 2), EVar "k")));
  let n2 = of_loop "DO i = k, 1, -1\nENDDO" in
  checkb "negative stride test" (n2.N.n_test = EBin (Ge, EVar "i", EInt 1))

let t_forall () =
  let n = of_loop "FORALL (i = 1:k)\n  a(i) = i\nENDFORALL" in
  checkb "parallel flag" n.N.n_parallel

let t_while () =
  let n = of_loop "WHILE (i <= k)\n  a(i) = i\n  i = i + 1\nENDWHILE" in
  checkb "empty init" (n.N.n_init = []);
  checkb "peeled increment"
    (n.N.n_increment = [ Ast.assign "i" (EBin (Add, EVar "i", EInt 1)) ]);
  checkb "induction var recovered" (n.N.n_var = Some "i");
  checki "body without increment" 1 (List.length n.N.n_body);
  (* increment not peeled when the variable is updated twice *)
  let n2 = of_loop "WHILE (i <= k)\n  i = i + 1\n  i = i + 1\nENDWHILE" in
  checkb "no peel on double update" (n2.N.n_increment = [])

let t_dowhile () =
  let n = of_loop "REPEAT\n  i = i + 1\nUNTIL (i < 5)" in
  checkb "first-iteration flag in init" (List.length n.N.n_init = 1);
  (* reconstructed loop behaves like the original *)
  let setup ctx = Env.set ctx.Interp.env "i" (Values.VInt 10) in
  let orig = parse_block "REPEAT\n  i = i + 1\nUNTIL (i < 5)" in
  let c1 = Interp.run_block ~setup orig in
  let c2 = Interp.run_block ~setup (N.to_while n) in
  checkb "post-test loop runs once"
    (Env.equal_on [ "i" ] c1.Interp.env c2.Interp.env)

let t_to_while_semantics () =
  List.iter
    (fun src ->
      let b = parse_block src in
      let is_loop s =
        match strip_loc s with
        | SDo _ | SWhile _ | SDoWhile _ | SForall _ -> true
        | _ -> false
      in
      let pre = List.filter (fun s -> not (is_loop s)) b in
      let loop = List.find is_loop b in
      let fresh = Lf_core.Fresh.of_block b in
      let n = Option.get (N.of_loop ~fresh loop) in
      let setup ctx =
        Env.set ctx.Interp.env "k" (Values.VInt 5);
        Env.set ctx.Interp.env "s" (Values.VInt 0);
        Env.set ctx.Interp.env "a"
          (Values.VArr (Values.AInt (Nd.create [| 10 |] 0)))
      in
      let c1 = Interp.run_block ~setup b in
      let c2 = Interp.run_block ~setup (pre @ N.to_while n) in
      checkb ("to_while: " ^ src)
        (Env.equal_on [ "s"; "a" ] c1.Interp.env c2.Interp.env))
    [
      "DO i = 1, k\n  s = s + i\nENDDO";
      "DO i = 1, k, 2\n  s = s + i\nENDDO";
      "DO i = k, 1, -1\n  a(i) = s\n  s = s + 1\nENDDO";
      "i = 1\nWHILE (i <= k)\n  s = s + i * i\n  i = i + 1\nENDWHILE";
    ]

let t_nest () =
  let nest = example_nest () in
  checkb "outer body emptied" (nest.N.outer.N.n_body = []);
  checkb "inner init is j = 1"
    (nest.N.inner.N.n_init = [ Ast.assign "j" (EInt 1) ]);
  checki "body is the assignment" 1 (List.length nest.N.body);
  (* pre/post statements fold into the phases *)
  let b =
    parse_block
      "DO i = 1, k\n  f(i) = 0\n  DO j = 1, l(i)\n    f(i) = f(i) + j\n  ENDDO\n  g(i) = f(i)\nENDDO"
  in
  let fresh = Lf_core.Fresh.of_block b in
  (match N.of_nest ~fresh (List.hd b) with
  | Ok n ->
      checki "pre joins inner init" 2 (List.length n.N.inner.N.n_init);
      checki "post joins outer increment" 2
        (List.length n.N.outer.N.n_increment)
  | Error e -> Alcotest.fail e);
  (* reconstruction is semantics-preserving *)
  let setup ctx =
    Env.set ctx.Interp.env "k" (Values.VInt 4);
    Env.set ctx.Interp.env "l"
      (Values.VArr (Values.AInt (Nd.of_array [| 2; 0; 3; 1 |])));
    Env.set ctx.Interp.env "f"
      (Values.VArr (Values.AInt (Nd.create [| 4 |] 0)));
    Env.set ctx.Interp.env "g"
      (Values.VArr (Values.AInt (Nd.create [| 4 |] 0)))
  in
  let fresh2 = Lf_core.Fresh.of_block b in
  let n = Result.get_ok (N.of_nest ~fresh:fresh2 (List.hd b)) in
  let c1 = Interp.run_block ~setup b in
  let c2 = Interp.run_block ~setup (N.nest_to_block n) in
  checkb "nest reconstruction" (Env.equal_on [ "f"; "g" ] c1.Interp.env c2.Interp.env)

let t_nest_rejections () =
  let fresh = Lf_core.Fresh.of_names [] in
  checkb "not a loop"
    (Result.is_error (N.of_nest ~fresh (List.hd (parse_block "a = 1"))));
  checkb "no inner loop"
    (Result.is_error
       (N.of_nest ~fresh (List.hd (parse_block "DO i = 1, 2\n  a = 1\nENDDO"))));
  checkb "two inner loops"
    (Result.is_error
       (N.of_nest ~fresh
          (List.hd
             (parse_block
                "DO i = 1, 2\n  DO j = 1, 2\n  ENDDO\n  DO q = 1, 2\n  ENDDO\nENDDO"))))

let prop_nest_roundtrip (en : Gen.exec_nest) =
  let fresh = Lf_core.Fresh.of_block en.Gen.src_block in
  let loop = List.nth en.Gen.src_block (List.length en.Gen.src_block - 1) in
  match N.of_nest ~fresh loop with
  | Error _ -> true  (* generator may produce non-loop heads; skip *)
  | Ok n ->
      let pre =
        List.filteri
          (fun i _ -> i < List.length en.Gen.src_block - 1)
          en.Gen.src_block
      in
      let c1 = Interp.run_block ~setup:(Gen.exec_setup en) en.Gen.src_block in
      let c2 =
        Interp.run_block ~setup:(Gen.exec_setup en) (pre @ N.nest_to_block n)
      in
      Env.equal_on Gen.exec_observables c1.Interp.env c2.Interp.env

let t_recognize_counted () =
  let b =
    parse_block
      "i = 1\nWHILE (.NOT. i > k)\n  a(i) = i\n  i = i + 1\nENDWHILE"
  in
  let pre = [ List.hd b ] and loop = List.nth b 1 in
  (match N.recognize_counted ~pre loop with
  | Some ([], SDo (c, [ SAssign _ ])) ->
      checkb "bounds" (c.d_lo = EInt 1 && c.d_hi = EVar "k");
      checks "variable" "i" c.d_var
  | _ -> Alcotest.fail "counted while not recognized");
  (* strict bound: i < k becomes hi = k - 1 *)
  let b2 =
    parse_block "i = 1\nWHILE (i < k)\n  i = i + 1\nENDWHILE"
  in
  (match N.recognize_counted ~pre:[ List.hd b2 ] (List.nth b2 1) with
  | Some (_, SDo (c, _)) ->
      checkb "strict bound" (c.d_hi = EBin (Sub, EVar "k", EInt 1))
  | _ -> Alcotest.fail "strict bound not recognized");
  (* not recognized: bound depends on the induction variable *)
  let b3 =
    parse_block "i = 1\nWHILE (i <= a(i))\n  i = i + 1\nENDWHILE"
  in
  checkb "self-referential bound rejected"
    (N.recognize_counted ~pre:[ List.hd b3 ] (List.nth b3 1) = None);
  (* not recognized: no init in the prefix *)
  checkb "missing init rejected"
    (N.recognize_counted ~pre:[] loop = None)

let suite =
  [
    case "DO phases" t_do;
    case "counted-while recognition" t_recognize_counted;
    case "strided DO phases" t_do_stride;
    case "FORALL phases" t_forall;
    case "WHILE phases and increment peeling" t_while;
    case "post-test loop normalization" t_dowhile;
    case "to_while preserves semantics" t_to_while_semantics;
    case "nest normalization (GENNEST)" t_nest;
    case "nest rejections" t_nest_rejections;
    qcheck_case ~count:200 "random nest reconstruction" Gen.exec_nest_gen
      prop_nest_roundtrip;
  ]
