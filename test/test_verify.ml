(** The typed IR verifier ([Lf_simd.Verify]).

    The verifier's job is catching an optimizer phase that broke the IR,
    so each test here plays the broken phase: build a well-formed
    annotated IR, corrupt one annotation the way a buggy pass would
    (full-mask inside a branch, a range claim that no longer contains
    the derived interval, a parallel-scatter mark on a colliding
    subscript, a dangling slot), and assert [Verify.check_ir] raises a
    located diagnostic carrying the right rule code and the phase name.
    Clean IR at every level must verify silently — that contract is also
    exercised end-to-end by the [--verify-ir] legs of the dune smoke
    tests and the [?verify] runs in the differential suite. *)

open Helpers
open Lf_lang
module Ir = Lf_simd.Ir
module Opt = Lf_simd.Opt
module Verify = Lf_simd.Verify
module Vm = Lf_simd.Vm
module Lint = Lf_analysis.Lint

let ir_of ?(level = 2) ?(p = 8) src =
  let prog = parse_program src in
  let frame = Lf_simd.Frame.create ~p (Lf_simd.Compile.var_names prog) in
  (frame, Opt.run ~level ~frame (Ir.of_block frame prog.Ast.p_body))

let rec unloc (s : Ir.stmt) =
  match s.Ir.s_node with Ir.LLoc (_, inner) -> unloc inner | _ -> s

(* set a statement flag on a wrapper and its payload together, as a
   (buggy) optimizer phase would via [Opt]'s located walks *)
let rec set_full (s : Ir.stmt) =
  s.Ir.s_full <- true;
  match s.Ir.s_node with Ir.LLoc (_, inner) -> set_full inner | _ -> ()

(* the rule codes of the diagnostics a mutation provokes *)
let rules_of (frame, b) =
  match Verify.check_ir ~frame ~phase:"test-mutation" b with
  | () -> []
  | exception Verify.Error diags ->
      List.map (fun d -> d.Lint.d_rule) diags

let expect_rule what rule (frame, b) =
  match Verify.check_ir ~frame ~phase:"test-mutation" b with
  | () -> Alcotest.fail (what ^ ": verifier accepted the broken IR")
  | exception Verify.Error diags ->
      checkb
        (what ^ ": diagnostic carries " ^ rule)
        (List.exists (fun d -> d.Lint.d_rule = rule) diags);
      checkb
        (what ^ ": diagnostic is located")
        (List.exists
           (fun d -> d.Lint.d_rule = rule && d.Lint.d_loc <> None)
           diags);
      checkb
        (what ^ ": diagnostic cites the phase")
        (List.exists
           (fun d -> Astring_contains.contains d.Lint.d_msg "test-mutation")
           diags)

(* ------------------------------------------------------------------ *)
(* The rules table                                                     *)
(* ------------------------------------------------------------------ *)

let t_rules_table () =
  checki "eight IR rules" 8 (List.length Verify.rules);
  List.iteri
    (fun i (code, doc) ->
      checks "codes are dense and ordered"
        (Fmt.str "IR%03d" (i + 1))
        code;
      checkb "every rule has a summary" (String.length doc > 10);
      checkb "rule_doc finds it" (Verify.rule_doc code = Some doc))
    Verify.rules;
  checkb "unknown rules answer None" (Verify.rule_doc "IR999" = None);
  checkb "LF rules belong to the lint table" (Verify.rule_doc "LF001" = None)

(* ------------------------------------------------------------------ *)
(* Clean IR verifies                                                   *)
(* ------------------------------------------------------------------ *)

let clean_src =
  "PROGRAM t\n\
  \  PLURAL INTEGER i\n\
  \  PLURAL REAL r\n\
  \  REAL x(8)\n\
  \  i = iproc\n\
  \  WHERE (i <= 4)\n\
  \    r = sqrt(x(i)) + 1.0\n\
  \    x(i) = x(i) + r\n\
  \  ENDWHERE\n\
   END"

let t_clean_ir () =
  List.iter
    (fun level ->
      let frame, b = ir_of ~level clean_src in
      match Verify.check_ir ~frame ~phase:"unit" b with
      | () -> ()
      | exception Verify.Error diags ->
          Alcotest.fail
            (Fmt.str "clean -O%d IR rejected: %a" level
               Fmt.(list ~sep:(any "; ") (fun ppf d ->
                        Fmt.string ppf d.Lint.d_msg))
               diags))
    [ 0; 1; 2 ];
  (* the pipeline self-check: every phase output verifies *)
  let prog = parse_program clean_src in
  Vm.verify_ir ~opt:2 ~p:8 prog;
  (* and the executing entry point accepts ?verify on every engine *)
  List.iter
    (fun engine ->
      ignore (Vm.run ~engine ~opt:2 ~verify:true ~p:8 prog : Vm.t))
    [ `Tree_walk; `Compiled; `Parallel ]

(* ------------------------------------------------------------------ *)
(* Broken-phase mutations                                              *)
(* ------------------------------------------------------------------ *)

let t_broken_fullmask () =
  let frame, b = ir_of clean_src in
  (match (unloc b.(1)).Ir.s_node with
  | Ir.LWhere (_, t, _) -> set_full b.(1); Array.iter set_full t
  | _ -> Alcotest.fail "statement 1 is not the WHERE");
  expect_rule "full-mask inside a branch" "IR005" (frame, b)

let t_broken_range_claim () =
  let frame, b = ir_of clean_src in
  let hit = ref 0 in
  let rec poison (e : Ir.expr) =
    (match e.Ir.x_node with
    | Ir.XIdx (_, _, args) ->
        List.iter
          (fun (a : Ir.expr) ->
            (* a claim the derived interval [1, p] cannot live in *)
            a.Ir.x_range <-
              Some Lf_analysis.Range.{ lo = Fin 2; hi = Fin 2 };
            incr hit)
          args
    | _ -> ());
    match e.Ir.x_node with
    | Ir.XConst _ | Ir.XVar _ -> ()
    | Ir.XRange (a, b) | Ir.XBin (_, a, b) -> poison a; poison b
    | Ir.XUn (_, a) -> poison a
    | Ir.XCall (_, args) | Ir.XIdx (_, _, args) -> List.iter poison args
  in
  let rec walk (s : Ir.stmt) =
    match s.Ir.s_node with
    | Ir.LLoc (_, inner) -> walk inner
    | Ir.LAssign (lv, e) -> List.iter poison lv.Ir.l_index; poison e
    | Ir.LWhere (c, t, f) | Ir.LIf (c, t, f) ->
        poison c; Array.iter walk t; Array.iter walk f
    | _ -> ()
  in
  Array.iter walk b;
  checkb "mutation reached at least one gather subscript" (!hit > 0);
  expect_rule "range claim excludes the derived interval" "IR007" (frame, b)

let t_broken_parscatter () =
  let frame, b =
    ir_of "PROGRAM t\n  PLURAL INTEGER i\n  INTEGER g(8)\n  i = iproc\n  g(1) = i\nEND"
  in
  (unloc b.(1)).Ir.s_par <- true;
  expect_rule "parallel-scatter claim on a colliding subscript" "IR008"
    (frame, b)

let t_broken_slot () =
  let frame, b = ir_of "PROGRAM t\n  PLURAL INTEGER i\n  i = iproc + 1\nEND" in
  let rec clobber (e : Ir.expr) =
    match e.Ir.x_node with
    | Ir.XVar (Some _, name) -> e.Ir.x_node <- Ir.XVar (Some 9999, name)
    | Ir.XBin (_, a, b) -> clobber a; clobber b
    | Ir.XUn (_, a) -> clobber a
    | _ -> ()
  in
  (match (unloc b.(0)).Ir.s_node with
  | Ir.LAssign (_, e) -> clobber e
  | _ -> Alcotest.fail "statement 0 is not the assignment");
  expect_rule "slot outside the frame" "IR001" (frame, b)

(* a healthy -O2 NBFORCE-shaped loop keeps exactly its own claims: the
   mutations above are the only way to make the verifier speak *)
let t_no_spurious_diags () =
  let frame, b =
    ir_of
      "at1 = 1 + (iproc - 1)\n\
       WHILE (any(at1 <= n))\n\
      \  WHERE (at1 <= n)\n\
      \    f(at1) = f(at1) + 1.0\n\
      \    at1 = at1 + 8\n\
      \  ENDWHERE\n\
       ENDWHILE"
  in
  checkb "flattened loop verifies at -O2" (rules_of (frame, b) = [])

let suite =
  [
    case "rules table: IR001..IR008, rule_doc" t_rules_table;
    case "clean IR verifies at every level and engine" t_clean_ir;
    case "broken phase: full-mask inside a branch" t_broken_fullmask;
    case "broken phase: stale range claim" t_broken_range_claim;
    case "broken phase: bogus parallel-scatter mark" t_broken_parscatter;
    case "broken phase: dangling slot" t_broken_slot;
    case "flattened -O2 loop is diagnostic-free" t_no_spurious_diags;
  ]
