(** Reporting tests: table rendering and smoke tests of the light
    experiment drivers (the heavy full-SOD tables run in the bench). *)

open Helpers

let t_table_render () =
  let t =
    Lf_report.Table.make ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Lf_report.Table.to_string t in
  checkb "header present" (Astring_contains.contains s "bb");
  checkb "alignment padding" (Astring_contains.contains s "333");
  checkb "separators" (Astring_contains.contains s "+=")

let runs_quietly name =
  case ("experiment " ^ name) (fun () ->
      match List.assoc_opt name Lf_report.Experiments.by_name with
      | None -> Alcotest.failf "experiment %s not registered" name
      | Some f ->
          let buf = Buffer.create 1024 in
          let ppf = Fmt.with_buffer buf in
          f ppf;
          Fmt.flush ppf ();
          checkb "produced output" (Buffer.length buf > 100))

let t_paper_data_consistency () =
  (* the embedded Table 2 data reproduces the paper's stated bound:
     every ratio is below the corresponding pCnt_max/pCnt_avg ratio *)
  List.iter
    (fun (row : Lf_report.Paper_data.row2) ->
      Array.iteri
        (fun i cell ->
          match cell with
          | Some lu, Some lf ->
              let cutoff = Lf_report.Paper_data.cutoffs.(i) in
              let bound =
                List.assoc cutoff Lf_report.Paper_data.pcnt_ratios
              in
              checkb
                (Printf.sprintf "Gran %d cutoff %.0f" row.Lf_report.Paper_data.gran2 cutoff)
                (float_of_int lu /. float_of_int lf <= bound +. 1e-3)
          | _ -> ())
        row.Lf_report.Paper_data.counts)
    Lf_report.Paper_data.table2

let t_ascii_plot () =
  let buf = Buffer.create 256 in
  let ppf = Fmt.with_buffer buf in
  Lf_report.Ascii_plot.render ~width:20 ~height:5 ppf
    [
      Lf_report.Ascii_plot.series ~label:"a" ~mark:'a'
        [ (1.0, 1.0); (10.0, 10.0) ];
      Lf_report.Ascii_plot.series ~label:"b" ~mark:'b' [ (1.0, 10.0) ];
    ];
  Fmt.flush ppf ();
  let s = Buffer.contents buf in
  checkb "marks present"
    (Astring_contains.contains s "a" && Astring_contains.contains s "b");
  checkb "legend" (Astring_contains.contains s "a = a");
  (* empty input *)
  let buf2 = Buffer.create 16 in
  let ppf2 = Fmt.with_buffer buf2 in
  Lf_report.Ascii_plot.render ppf2 [];
  Fmt.flush ppf2 ();
  checkb "empty handled" (Astring_contains.contains (Buffer.contents buf2) "(empty)");
  (* non-positive points dropped under log scales *)
  let buf3 = Buffer.create 16 in
  let ppf3 = Fmt.with_buffer buf3 in
  Lf_report.Ascii_plot.render ppf3
    [ Lf_report.Ascii_plot.series ~label:"z" ~mark:'z' [ (0.0, -1.0) ] ];
  Fmt.flush ppf3 ();
  checkb "all-invalid handled"
    (Astring_contains.contains (Buffer.contents buf3) "(empty)");
  (* non-finite coordinates must not poison the axis bounds: a +inf
     point passes a naive positivity filter, makes the max fold return
     inf and the scale garbage.  All-non-finite renders "(empty)"; a
     mixed series plots only the finite points with finite bounds. *)
  let buf4 = Buffer.create 16 in
  let ppf4 = Fmt.with_buffer buf4 in
  Lf_report.Ascii_plot.render ppf4
    [
      Lf_report.Ascii_plot.series ~label:"w" ~mark:'w'
        [ (Float.infinity, 1.0); (1.0, Float.nan) ];
    ];
  Fmt.flush ppf4 ();
  checkb "all-non-finite handled"
    (Astring_contains.contains (Buffer.contents buf4) "(empty)");
  let buf5 = Buffer.create 256 in
  let ppf5 = Fmt.with_buffer buf5 in
  Lf_report.Ascii_plot.render ~width:20 ~height:5 ppf5
    [
      Lf_report.Ascii_plot.series ~label:"v" ~mark:'v'
        [ (1.0, 2.0); (Float.infinity, 4.0); (8.0, Float.neg_infinity) ];
    ];
  Fmt.flush ppf5 ();
  let s5 = Buffer.contents buf5 in
  checkb "finite points still plotted" (Astring_contains.contains s5 "v = v");
  checkb "axis stays finite" (not (Astring_contains.contains s5 "inf"))

let suite =
  [
    case "table rendering" t_table_render;
    case "ascii plots" t_ascii_plot;
    case "paper data internal consistency" t_paper_data_consistency;
    runs_quietly "fig4";
    runs_quietly "fig6";
    runs_quietly "bounds";
    runs_quietly "transforms";
    runs_quietly "ablation-variants";
    runs_quietly "obs-nbforce";
  ]
