(** Flatten-safety lint tests: the paper's §6 preconditions as rules.

    The safe programs (EXAMPLE, NBFORCE) must come out clean; each rule
    has a small program it fires on, with a located diagnostic; and the
    QCheck property ties the lint to the dynamic semantics: whenever the
    lint reports a random nest safe, the flattened program agrees with
    the original on all observables. *)

open Helpers
open Lf_lang
module L = Lf_analysis.Lint

let lint ?pure_subroutines src = L.check_block ?pure_subroutines (parse_block src)

let has_rule (r : L.report) id =
  List.exists (fun d -> d.L.d_rule = id) r.L.diags

let t_safe_example () =
  let r = lint "DO i = 1, k\n  DO j = 1, l(i)\n    x(i,j) = i * j\n  ENDDO\nENDDO" in
  checkb "EXAMPLE is applicable" r.L.applicable;
  checkb "EXAMPLE is safe" r.L.safe;
  checkb "EXAMPLE has no diagnostics at all" (r.L.diags = [])

let t_safe_nbforce () =
  let p = Parser.program_of_string Lf_kernels.Nbforce_src.source in
  let r = L.check_program p in
  checkb "NBFORCE is applicable" r.L.applicable;
  checkb "NBFORCE is safe" r.L.safe

let t_carried_array () =
  let r =
    lint
      {|
  DO i = 2, k
    DO j = 1, l(i)
      x(i) = x(i - 1) + j
    ENDDO
  ENDDO
|}
  in
  checkb "recurrence is rejected" (not r.L.safe);
  match L.first_error r with
  | Some d ->
      checks "rule" "LF004" d.L.d_rule;
      (match d.L.d_loc with
      | Some p -> checki "diagnostic cites the store" 4 p.Errors.line
      | None -> Alcotest.fail "carried-array diagnostic must be located");
      checkb "citation names rule and position"
        (Astring_contains.contains (L.cite d) "LF004 at 4:")
  | None -> Alcotest.fail "expected an LF004 error"

let t_carried_scalar () =
  let r = lint "DO i = 1, k\n  DO j = 1, l(i)\n    s = s * 2\n  ENDDO\nENDDO" in
  checkb "non-reduction carried scalar is rejected" (not r.L.safe);
  checkb "as LF003" (has_rule r "LF003")

let t_reduction_allowed () =
  let r =
    lint "DO i = 1, k\n  DO j = 1, l(i)\n    acc = acc + x(j)\n  ENDDO\nENDDO"
  in
  checkb "sum reduction is safe" r.L.safe;
  checkb "no LF003 for the accumulator" (not (has_rule r "LF003"))

let t_unknown_call () =
  let src = "DO i = 1, k\n  DO j = 1, l(i)\n    CALL foo(i)\n  ENDDO\nENDDO" in
  let r = lint src in
  checkb "unknown subroutine is rejected" (not r.L.safe);
  checkb "as LF005" (has_rule r "LF005");
  let r2 = lint ~pure_subroutines:[ "foo" ] src in
  checkb "certified-pure subroutine is allowed" r2.L.safe

let t_irregular_control () =
  let r = lint "REPEAT\n  DO j = 1, l(i)\n    x(j) = j\n  ENDDO\nUNTIL (i > k)" in
  checkb "post-test receiving loop is rejected" (not r.L.safe);
  checkb "as LF002" (has_rule r "LF002")

let t_not_applicable () =
  let r = lint "s = 1" in
  checkb "no loop: not applicable" (not r.L.applicable);
  checkb "but only a warning, not an error" r.L.safe;
  checkb "as LF001" (has_rule r "LF001")

let t_forall () =
  let race = lint "FORALL (i = 1:k)\n  x(i + 1) = x(i)\nENDFORALL" in
  checkb "FORALL race on x is an error" (not race.L.safe);
  checkb "as LF007" (has_rule race "LF007");
  let scalar = lint "FORALL (i = 1:k)\n  s = i\n  x(i) = s\nENDFORALL" in
  checkb "scalar write in FORALL is only a warning" scalar.L.safe;
  checkb "still reported as LF007" (has_rule scalar "LF007")

let t_where () =
  let r =
    lint "WHERE (x(i) > 0)\n  x(i + 1) = x(i)\nENDWHERE"
  in
  checkb "shifted masked store warns" (has_rule r "LF008");
  checkb "but stays safe (warning severity)" r.L.safe;
  let ok = lint "WHERE (x(i) > 0)\n  x(i) = x(i) + 1\nENDWHERE" in
  checkb "same-element masked update is clean" (not (has_rule ok "LF008"))

let t_rule_docs () =
  List.iter
    (fun rule ->
      checkb (rule ^ " is documented")
        (not
           (Astring_contains.contains (L.rule_doc rule) "unknown rule")))
    [ "LF001"; "LF002"; "LF003"; "LF004"; "LF005"; "LF006"; "LF007"; "LF008" ]

(* Soundness: the lint is at least as strict as the pipeline's own safety
   analysis, so a lint-safe nest must flatten (no "not safe" refusal) and
   the flattened program must agree with the original on the observables. *)
let t_lint_sound =
  qcheck_case ~count:150 "lint-safe nests flatten and preserve semantics"
    Gen.exec_nest_gen
    (fun en ->
      let report = L.check_block en.Gen.src_block in
      if not (report.L.safe && report.L.applicable) then true
      else
        let prog = Ast.program "lintfuzz" en.Gen.src_block in
        let opts =
          {
            Lf_core.Pipeline.default_options with
            assume_inner_nonempty = en.Gen.inner_nonempty;
          }
        in
        match Lf_core.Pipeline.flatten_program ~opts prog with
        | Error e when Astring_contains.contains e "not safe" ->
            QCheck.Test.fail_reportf
              "lint said safe but the pipeline refused: %s on@.%s" e
              (Pretty.block_to_string en.Gen.src_block)
        | Error _ -> true (* applicability refusals are not safety claims *)
        | Ok o ->
            let run p = Interp.run ~setup:(Gen.exec_setup en) p in
            let c1 = run prog and c2 = run o.Lf_core.Pipeline.program in
            Env.equal_on Gen.exec_observables c1.Interp.env c2.Interp.env
            || QCheck.Test.fail_reportf "lint-safe flattening diverged on@.%s"
                 (Pretty.program_to_string o.Lf_core.Pipeline.program))

let suite =
  [
    case "EXAMPLE is clean" t_safe_example;
    case "NBFORCE is clean" t_safe_nbforce;
    case "LF004 carried array recurrence" t_carried_array;
    case "LF003 carried scalar" t_carried_scalar;
    case "sum reductions stay safe" t_reduction_allowed;
    case "LF005 unknown subroutine" t_unknown_call;
    case "LF002 irregular receiving loop" t_irregular_control;
    case "LF001 applicability" t_not_applicable;
    case "LF007 FORALL races" t_forall;
    case "LF008 WHERE shifted stores" t_where;
    case "every rule is documented" t_rule_docs;
    t_lint_sound;
  ]
