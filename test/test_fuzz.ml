(** Robustness properties: the front end never escapes its own exception
    vocabulary, the simplifier is idempotent, and the whole pipeline
    preserves semantics on random programs. *)

open Helpers
open Lf_lang

(* random byte soup: the lexer/parser may reject, but only with their own
   exceptions *)
let t_frontend_total =
  qcheck_case ~count:1000 "front end rejects garbage gracefully"
    QCheck.Gen.(string_size (0 -- 60))
    (fun src ->
      match Parser.program_of_string src with
      | _ -> true
      | exception (Errors.Lex_error _ | Errors.Parse_error _) -> true
      | exception e ->
          QCheck.Test.fail_reportf "escaped exception %s on %S"
            (Printexc.to_string e) src)

(* printable soup that looks more like Fortran *)
let fortranish =
  QCheck.Gen.(
    string_size (0 -- 80)
      ~gen:
        (oneofl
           [ 'a'; 'i'; 'x'; '1'; '2'; '('; ')'; '='; '+'; '*'; ','; ' ';
             '\n'; 'D'; 'O'; 'E'; 'N'; 'I'; 'F'; '.'; ':'; '<'; '-' ]))

let t_frontend_fortranish =
  qcheck_case ~count:1000 "front end rejects near-Fortran gracefully"
    fortranish
    (fun src ->
      match Parser.program_of_string src with
      | _ -> true
      | exception (Errors.Lex_error _ | Errors.Parse_error _) -> true
      | exception e ->
          QCheck.Test.fail_reportf "escaped exception %s on %S"
            (Printexc.to_string e) src)

let t_simplify_idempotent =
  qcheck_case ~count:500 "simplify is idempotent" Gen.expr (fun e ->
      let s1 = Simplify.simplify e in
      let s2 = Simplify.simplify s1 in
      s1 = s2
      || QCheck.Test.fail_reportf "%s -> %s -> %s" (Pretty.expr_to_string e)
           (Pretty.expr_to_string s1) (Pretty.expr_to_string s2))

let t_typecheck_total =
  qcheck_case ~count:300 "typechecker is total on random ASTs" Gen.block
    (fun b ->
      match Typecheck.check_block_standalone b with
      | _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "typechecker raised %s on@.%s"
            (Printexc.to_string e) (Pretty.block_to_string b))

(* full pipeline property: program-level flattening preserves semantics *)
let t_pipeline_preserves =
  qcheck_case ~count:150 "pipeline flattening preserves program semantics"
    Gen.exec_nest_gen
    (fun en ->
      let prog = Ast.program "fuzz" en.Gen.src_block in
      let opts =
        {
          Lf_core.Pipeline.default_options with
          assume_inner_nonempty = en.Gen.inner_nonempty;
          trusted_parallel = true;
        }
      in
      match Lf_core.Pipeline.flatten_program ~opts prog with
      | Error _ -> true  (* e.g. no perfect nest in the generated block *)
      | Ok o ->
          let run p = Interp.run ~setup:(Gen.exec_setup en) p in
          let c1 = run prog and c2 = run o.Lf_core.Pipeline.program in
          Env.equal_on Gen.exec_observables c1.Interp.env c2.Interp.env
          || QCheck.Test.fail_reportf "diverged on@.%s"
               (Pretty.program_to_string o.Lf_core.Pipeline.program))

let suite =
  [
    t_frontend_total;
    t_frontend_fortranish;
    t_simplify_idempotent;
    t_typecheck_total;
    t_pipeline_preserves;
  ]

(* SIMD end-to-end property: for random nests, both SIMD derivations
   (naive and flattened), run on the lockstep VM, agree with the
   sequential interpreter on every observable *)
let vm_setup (en : Gen.exec_nest) p_lanes vm =
  let maxl = Array.fold_left max 1 en.Gen.l in
  Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p_lanes);
  Lf_simd.Vm.bind_scalar vm "k" (Values.VInt en.Gen.k);
  Lf_simd.Vm.bind_scalar vm "acc" (Values.VInt 0);
  Lf_simd.Vm.bind_global vm "l" (Values.AInt (Nd.of_array en.Gen.l));
  Lf_simd.Vm.bind_global vm "x"
    (Values.AInt (Nd.create [| en.Gen.k; maxl |] 0))

let observables_match ?(with_acc = true) vm seq_ctx =
  let x_vm = Values.VArr (Lf_simd.Vm.read_global vm "x") in
  let x_seq = Env.find seq_ctx.Interp.env "x" in
  Values.equal_value x_vm x_seq
  && (not with_acc
     ||
     match Lf_simd.Vm.find_opt vm "acc" with
     | Some (Lf_simd.Vm.VScalar r) ->
         Values.equal_value !r (Env.find seq_ctx.Interp.env "acc")
     | _ -> false)

(* the naive SIMD baseline has no reduction lowering; restrict it to
   nests whose only observable is the array *)
let array_only (en : Gen.exec_nest) =
  not (List.mem "acc" (Ast_util.assigned_vars en.Gen.src_block))

(* classify the accumulator: absent, a true sum reduction (lowered by the
   pipeline), or a carried scalar that is also read — the latter is not
   parallelizable at all, and forcing it with trusted_parallel would
   (correctly) diverge *)
let acc_status (en : Gen.exec_nest) =
  if array_only en then `None
  else
    let body =
      List.concat_map
        (function
          | Ast.SDo (_, b) | Ast.SForall (_, b) | Ast.SWhile (_, b)
          | Ast.SDoWhile (b, _) ->
              b
          | _ -> [])
        en.Gen.src_block
    in
    if
      List.mem "acc"
        (Lf_core.Simdize.sum_reduction_candidates ~exclude:[] body)
    then `Reduction
    else `Carried

let simd_gen =
  QCheck.Gen.(
    let* en = Gen.exec_nest_gen in
    let* p = oneofl [ 1; 2; 4 ] in
    (* pad K to a multiple of the lane count for the partitioners *)
    let k = ((en.Gen.k + p - 1) / p) * p in
    let l =
      Array.init k (fun i ->
          if i < Array.length en.Gen.l then en.Gen.l.(i) else 1)
    in
    return ({ en with Gen.k = k; l }, p))

let prop_simd_roundtrip decomp naive ((en : Gen.exec_nest), p_lanes) =
  let status = acc_status en in
  if status = `Carried || (naive && status <> `None) then true
  else begin
    let prog = Ast.program "fuzz" en.Gen.src_block in
    let opts =
      {
        Lf_core.Pipeline.default_options with
        assume_inner_nonempty = en.Gen.inner_nonempty;
        trusted_parallel = true;
        target = Lf_core.Pipeline.Simd { decomp; p = Ast.EInt p_lanes };
      }
    in
    let derived =
      if naive then Lf_core.Pipeline.simdize_program_naive ~opts prog
      else Lf_core.Pipeline.flatten_program ~opts prog
    in
    match derived with
    | Error _ -> true  (* e.g. WHILE outer loop for the SIMD target *)
    | Ok o -> (
        let seq = Interp.run_block ~setup:(Gen.exec_setup en) en.Gen.src_block in
        match
          Lf_simd.Vm.run ~p:p_lanes ~setup:(vm_setup en p_lanes)
            o.Lf_core.Pipeline.program
        with
        | vm ->
            (* acc is comparable whenever the reduction lowering ran,
               i.e. on the flattened paths *)
            let with_acc = (not naive) && status = `Reduction in
            observables_match ~with_acc vm seq
            || QCheck.Test.fail_reportf "diverged on@.%s"
                 (Pretty.program_to_string o.Lf_core.Pipeline.program)
        | exception e ->
            QCheck.Test.fail_reportf "VM raised %s on@.%s"
              (Printexc.to_string e)
              (Pretty.program_to_string o.Lf_core.Pipeline.program))
  end

(* differential property: the tree-walking and compiled engines are
   bit-identical — same final variable table, same metrics counters, and
   on the error path the same runtime error *)
let run_engine engine (en : Gen.exec_nest) p_lanes prog :
    (Lf_simd.Vm.t, string) result =
  match Lf_simd.Vm.run ~engine ~p:p_lanes ~setup:(vm_setup en p_lanes) prog with
  | vm -> Ok vm
  | exception Errors.Runtime_error m -> Error m

let prop_engines_agree decomp naive ((en : Gen.exec_nest), p_lanes) =
  (* unlike the roundtrip property there is no need to exclude carried
     scalars etc. here: whatever program comes out, both engines must
     treat it identically — including identical runtime errors *)
  begin
    let prog = Ast.program "fuzz" en.Gen.src_block in
    let opts =
      {
        Lf_core.Pipeline.default_options with
        assume_inner_nonempty = en.Gen.inner_nonempty;
        trusted_parallel = true;
        target = Lf_core.Pipeline.Simd { decomp; p = Ast.EInt p_lanes };
      }
    in
    let derived =
      if naive then Lf_core.Pipeline.simdize_program_naive ~opts prog
      else Lf_core.Pipeline.flatten_program ~opts prog
    in
    match derived with
    | Error _ -> true
    | Ok o -> (
        let simd = o.Lf_core.Pipeline.program in
        let tree = run_engine `Tree_walk en p_lanes simd in
        let compiled = run_engine `Compiled en p_lanes simd in
        match (tree, compiled) with
        | Ok vm_t, Ok vm_c ->
            (Lf_simd.Vm.state_equal vm_t vm_c
            && Lf_simd.Metrics.equal vm_t.Lf_simd.Vm.metrics
                 vm_c.Lf_simd.Vm.metrics)
            || QCheck.Test.fail_reportf
                 "engines diverged (tree %a vs compiled %a) on@.%s"
                 Lf_simd.Metrics.pp vm_t.Lf_simd.Vm.metrics
                 Lf_simd.Metrics.pp vm_c.Lf_simd.Vm.metrics
                 (Pretty.program_to_string simd)
        | Error m_t, Error m_c ->
            m_t = m_c
            || QCheck.Test.fail_reportf
                 "engines raised different errors (%S vs %S) on@.%s" m_t m_c
                 (Pretty.program_to_string simd)
        | Ok _, Error m ->
            QCheck.Test.fail_reportf
              "only the compiled engine failed (%S) on@.%s" m
              (Pretty.program_to_string simd)
        | Error m, Ok _ ->
            QCheck.Test.fail_reportf
              "only the tree-walker failed (%S) on@.%s" m
              (Pretty.program_to_string simd))
  end

let t_engines_agree_flat =
  qcheck_case ~count:150 "differential: engines agree (flattened programs)"
    simd_gen
    (prop_engines_agree Lf_core.Simdize.Block false)

let t_engines_agree_naive =
  qcheck_case ~count:150 "differential: engines agree (naive SIMD programs)"
    simd_gen
    (prop_engines_agree Lf_core.Simdize.Cyclic true)

let t_simd_flat_block =
  qcheck_case ~count:100 "random nests: flatten+SIMDize (block) on the VM"
    simd_gen
    (prop_simd_roundtrip Lf_core.Simdize.Block false)

let t_simd_flat_cyclic =
  qcheck_case ~count:100 "random nests: flatten+SIMDize (cyclic) on the VM"
    simd_gen
    (prop_simd_roundtrip Lf_core.Simdize.Cyclic false)

let t_simd_naive =
  qcheck_case ~count:100 "random nests: naive SIMDize on the VM" simd_gen
    (prop_simd_roundtrip Lf_core.Simdize.Cyclic true)

let suite =
  suite
  @ [
      t_simd_flat_block;
      t_simd_flat_cyclic;
      t_simd_naive;
      t_engines_agree_flat;
      t_engines_agree_naive;
    ]

(* ------------------------------------------------------------------ *)
(* The lf_fuzz subsystem itself: oracle battery, campaign driver,      *)
(* reducer, fault injection and the persisted regression corpus        *)
(* ------------------------------------------------------------------ *)

module Input = Lf_fuzz.Input
module Oracle = Lf_fuzz.Oracle
module Fuzz = Lf_fuzz.Fuzz
module Reduce = Lf_fuzz.Reduce

let verdict_name = function
  | Oracle.Pass -> "pass"
  | Oracle.Fuel -> "fuel"
  | Oracle.Fail { oracle; detail } -> Fmt.str "FAIL [%s] %s" oracle detail

let contains_sub = Astring_contains.contains

(* every checked-in reproducer must replay clean: these are minimized
   witnesses of fixed bugs, so a Fail here is a regression *)
let t_corpus_replay =
  case "regression corpus replays clean" (fun () ->
      let files =
        Sys.readdir "corpus" |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".f")
        |> List.sort compare
      in
      checkb "corpus has the seeded reproducers" (List.length files >= 4);
      List.iter
        (fun f ->
          match Input.of_file (Filename.concat "corpus" f) with
          | Error m -> Alcotest.failf "%s failed to parse: %s" f m
          | Ok i -> (
              match (Oracle.run i).Oracle.verdict with
              | Oracle.Pass | Oracle.Fuel -> ()
              | Oracle.Fail _ as v ->
                  Alcotest.failf "%s regressed: %s" f (verdict_name v)))
        files)

(* a campaign is a pure function of its seed: same seed, same report *)
let t_campaign_deterministic =
  case "campaign is deterministic for a fixed seed" (fun () ->
      let cfg = { Fuzz.default_config with seed = 11; count = 40 } in
      let digest (r : Fuzz.report) =
        ( r.Fuzz.r_executed,
          r.Fuzz.r_coverage,
          r.Fuzz.r_fuel_outs,
          r.Fuzz.r_coverage_log,
          List.map Input.to_string r.Fuzz.r_corpus,
          List.map
            (fun f -> (f.Fuzz.f_oracle, f.Fuzz.f_detail))
            r.Fuzz.r_failures )
      in
      let r1 = digest (Fuzz.run cfg) and r2 = digest (Fuzz.run cfg) in
      checkb "identical reports" (r1 = r2);
      let _, cov, _, log, corpus, _ = r1 in
      checkb "campaign accumulated coverage" (cov > 0);
      checkb "campaign kept coverage-increasing inputs" (corpus <> []);
      checkb "coverage log covers every step" (List.length log = 40))

(* the ISSUE's acceptance test: with a deliberately broken optimizer
   phase the campaign finds a failure and the reducer shrinks the
   reproducer to at most 10 statements *)
let t_chaos_phase_found_and_minimized =
  case "broken optimizer phase is found and minimized" (fun () ->
      let uninstall = Fuzz.install_chaos "fullmask" in
      Fun.protect ~finally:uninstall (fun () ->
          let cfg =
            {
              Fuzz.default_config with
              seed = 7;
              count = 60;
              minimize = true;
              dialects = [ Input.Simd ];
            }
          in
          let r = Fuzz.run cfg in
          let hits =
            List.filter (fun f -> f.Fuzz.f_oracle = "verify-ir")
              r.Fuzz.r_failures
          in
          checkb "the mis-annotation was caught within 60 inputs"
            (hits <> []);
          List.iter
            (fun f ->
              match f.Fuzz.f_minimized with
              | None -> Alcotest.fail "failure was not minimized"
              | Some m ->
                  let n = Input.stmt_count m in
                  checkb
                    (Fmt.str "minimized to <= 10 statements (got %d)" n)
                    (n <= 10))
            hits);
      (* with the fault removed the same campaign must come back clean *)
      let r' =
        Fuzz.run
          {
            Fuzz.default_config with
            seed = 7;
            count = 60;
            dialects = [ Input.Simd ];
          }
      in
      checkb "clean campaign after uninstalling the fault"
        (r'.Fuzz.r_failures = []))

(* same discipline for a broken oracle: a bad verdict — even from a
   deliberately wrong oracle — is reported and minimized normally *)
let t_chaos_oracle_found_and_minimized =
  case "broken oracle verdicts are caught and minimized" (fun () ->
      let uninstall = Fuzz.install_chaos "oracle" in
      Fun.protect ~finally:uninstall (fun () ->
          let cfg =
            {
              Fuzz.default_config with
              seed = 7;
              count = 60;
              minimize = true;
            }
          in
          let r = Fuzz.run cfg in
          let hits =
            List.filter (fun f -> f.Fuzz.f_oracle = "chaos-oracle")
              r.Fuzz.r_failures
          in
          checkb "the broken oracle fired" (hits <> []);
          List.iter
            (fun f ->
              match f.Fuzz.f_minimized with
              | None -> Alcotest.fail "failure was not minimized"
              | Some m ->
                  checkb "shrunk to a bare WHERE skeleton"
                    (Input.stmt_count m <= 2);
                  checkb "the minimized repro still has the WHERE"
                    (match Fuzz.broken_where_oracle m with
                    | Oracle.Fail _ -> true
                    | _ -> false))
            hits))

let t_chaos_unknown_target =
  case "unknown chaos targets are rejected" (fun () ->
      Alcotest.check_raises "invalid_arg"
        (Invalid_argument "unknown chaos target: nonsense") (fun () ->
          let _uninstall = Fuzz.install_chaos "nonsense" in
          ()))

(* a diverging input must yield the distinct Fuel verdict, not a
   failure: non-termination of a random program is not a bug finding *)
let t_fuel_guard =
  case "diverging inputs get the Fuel verdict" (fun () ->
      let src =
        "! simdfuzz dialect=nest\n\
         PROGRAM spin\n\
         10 CONTINUE\n\
         acc = acc + 1\n\
         GOTO 10\n\
         END\n"
      in
      match Input.of_string src with
      | Error m -> Alcotest.fail m
      | Ok i -> (
          match (Oracle.run ~fuel:2_000 i).Oracle.verdict with
          | Oracle.Fuel -> ()
          | v -> Alcotest.failf "expected Fuel, got %s" (verdict_name v)))

(* inputs survive the print/parse trip through the corpus format *)
let t_input_roundtrip =
  case "corpus serialization round-trips dialect and program" (fun () ->
      let rand = Random.State.make [| 3 |] in
      List.iter
        (fun d ->
          for _ = 1 to 20 do
            let i = Fuzz.fresh_input rand d in
            match Input.of_string (Input.to_string i) with
            | Error m -> Alcotest.fail m
            | Ok i' ->
                checkb "dialect preserved" (i'.Input.dialect = d);
                checks "program preserved"
                  (Pretty.program_to_string i.Input.prog)
                  (Pretty.program_to_string i'.Input.prog)
          done)
        [ Input.Simd; Input.Nest ])

(* the reducer only ever shrinks, and its result still satisfies the
   caller's predicate *)
let t_reducer_shrinks =
  case "reducer output is smaller and still failing" (fun () ->
      let rand = Random.State.make [| 5 |] in
      for _ = 1 to 15 do
        let i = Fuzz.fresh_input rand Input.Simd in
        (* an artificial predicate: program mentions iproc at all *)
        let check i' = contains_sub (Input.to_string i') "iproc" in
        if check i then begin
          let m = Reduce.minimize ~check i in
          checkb "still satisfies the predicate" (check m);
          checkb "did not grow" (Input.stmt_count m <= Input.stmt_count i)
        end
      done)

(* the dune fuzz-smoke rule ran the chaos campaign through the real CLI
   before this binary started; its captured transcript must show the
   failure being found and shrunk *)
let t_chaos_cli_transcript =
  case "chaos CLI transcript shows find + minimize" (fun () ->
      let ic = open_in "fuzz_chaos.txt" in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      let mem = contains_sub s in
      checkb "a chaos-oracle failure was reported" (mem "[chaos-oracle]");
      checkb "the reducer ran" (mem "minimized to");
      checkb "the summary line is present" (mem "simdfuzz:"))

let suite =
  suite
  @ [
      t_corpus_replay;
      t_campaign_deterministic;
      t_chaos_phase_found_and_minimized;
      t_chaos_oracle_found_and_minimized;
      t_chaos_unknown_target;
      t_fuel_guard;
      t_input_roundtrip;
      t_reducer_shrinks;
      t_chaos_cli_transcript;
    ]
