(** Run manifests ([Lf_obs.Manifest]): the JSON artifact round-trips
    exactly ([of_json (to_json m) = Ok m]), survives a write-to-disk
    cycle, and rejects malformed input with a message naming the
    problem. *)

open Helpers
module Manifest = Lf_obs.Manifest
module Json = Lf_obs.Json

let sample () =
  Manifest.make ~program:"examples/fortran/example_flat_simd.f"
    ~source:"DO i = 1, k\n  x(i) = i\nENDDO\n" ~engine:"parallel" ~opt:1
    ~jobs:4 ~p:128 ~wall_ns:123_456_789L ~cpu_s:0.042
    ~metrics:(Json.Obj [ ("vector_steps", Json.Int 17) ])
    ~stats:
      (Json.Obj
         [
           ("version", Json.Int 1);
           ("counters", Json.Obj [ ("dispatch.assign", Json.Int 9) ]);
         ])

let t_round_trip () =
  let m = sample () in
  match Manifest.of_json (Manifest.to_json m) with
  | Ok m' -> checkb "of_json (to_json m) = m" (m = m')
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)

let t_md5 () =
  let m = sample () in
  let m2 =
    Manifest.make ~program:"other.f" ~source:"DO i = 1, k\n  x(i) = i\nENDDO\n"
      ~engine:"seq" ~opt:0 ~jobs:1 ~p:1 ~wall_ns:1L ~cpu_s:0.0
      ~metrics:(Json.Obj []) ~stats:(Json.Obj [])
  in
  (match Manifest.to_json m with
  | Json.Obj fields ->
      (match List.assoc_opt "program_md5" fields with
      | Some (Json.Str hex) ->
          checki "md5 is 32 hex chars" 32 (String.length hex);
          checkb "md5 is derived from the source bytes, not the path"
            (match Manifest.to_json m2 with
            | Json.Obj f2 -> List.assoc_opt "program_md5" f2 = Some (Json.Str hex)
            | _ -> false)
      | _ -> Alcotest.fail "manifest has no program_md5");
      checkb "byte count recorded"
        (List.assoc_opt "program_bytes" fields
        = Some (Json.Int (String.length "DO i = 1, k\n  x(i) = i\nENDDO\n")))
  | _ -> Alcotest.fail "to_json is not an object")

let t_write_read () =
  let m = sample () in
  let path = Filename.temp_file "lf_manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Manifest.write path m;
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.parse text with
      | Error e -> Alcotest.fail ("written manifest does not parse: " ^ e)
      | Ok j -> (
          match Manifest.of_json j with
          | Ok m' -> checkb "disk round trip" (m = m')
          | Error e -> Alcotest.fail ("written manifest rejected: " ^ e)))

let expect_error what j =
  match Manifest.of_json j with
  | Ok _ -> Alcotest.fail (what ^ ": malformed manifest accepted")
  | Error e -> checkb (what ^ ": error names the problem") (String.length e > 0)

let t_rejects () =
  expect_error "non-object" (Json.Int 3);
  expect_error "empty object" (Json.Obj []);
  (match Manifest.to_json (sample ()) with
  | Json.Obj fields ->
      expect_error "missing engine"
        (Json.Obj (List.remove_assoc "engine" fields));
      expect_error "wrong schema version"
        (Json.Obj
           (("schema", Json.Int 99) :: List.remove_assoc "schema" fields));
      expect_error "jobs not an integer"
        (Json.Obj
           (("jobs", Json.Str "four") :: List.remove_assoc "jobs" fields))
  | _ -> Alcotest.fail "to_json is not an object");
  (* a specific message spot-check so the errors stay actionable *)
  match Manifest.of_json (Json.Obj [ ("schema", Json.Int 1) ]) with
  | Error e -> checks "missing-field message names the field"
      "manifest: missing field \"program\"" e
  | Ok _ -> Alcotest.fail "manifest with only a schema accepted"

(* Regression: non-finite metric values used to serialize as [null],
   so a manifest whose metrics held an inf/nan payload failed its own
   round trip.  They now print as the strings "inf"/"-inf"/"nan", which
   the parser maps back to floats.  NaN never compares equal to itself
   (structural [=]), so equality here is on the serialized form. *)
let t_non_finite () =
  List.iter
    (fun (label, f) ->
      let j = Json.Float f in
      let text = Json.to_string j in
      checkb (label ^ " does not serialize as null")
        (not (String.equal text "null"));
      match Json.parse text with
      | Error e -> Alcotest.fail (label ^ " does not re-parse: " ^ e)
      | Ok j' ->
          checks (label ^ " round-trips") text (Json.to_string j'))
    [
      ("inf", Float.infinity);
      ("-inf", Float.neg_infinity);
      ("nan", Float.nan);
    ];
  let m =
    Manifest.make ~program:"bench.f" ~source:"x = x\n" ~engine:"compiled"
      ~opt:2 ~jobs:1 ~p:8 ~wall_ns:1L ~cpu_s:0.0
      ~metrics:
        (Json.Obj
           [
             ("ratio", Json.Float Float.infinity);
             ("skew", Json.Float Float.nan);
           ])
      ~stats:(Json.Obj [])
  in
  match Manifest.of_json (Manifest.to_json m) with
  | Error e -> Alcotest.fail ("non-finite manifest rejected: " ^ e)
  | Ok m' ->
      checks "manifest with non-finite metrics round-trips"
        (Json.to_string (Manifest.to_json m))
        (Json.to_string (Manifest.to_json m'))

let suite =
  [
    case "JSON round trip" t_round_trip;
    case "non-finite floats survive the round trip" t_non_finite;
    case "program identity: md5 + byte count" t_md5;
    case "disk write/read round trip" t_write_read;
    case "malformed input rejected" t_rejects;
  ]
