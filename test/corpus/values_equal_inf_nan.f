! simdfuzz dialect=simd
! Historical bug: Values.equal_value compared REAL array elements by
! |a - b| < eps only, so identical non-finite elements (inf, nan)
! compared UNEQUAL (their difference is nan) and the differential
! harness reported a phantom state divergence.  Fixed by trying
! Float.equal first.  This input stores inf and nan into the global h
! and reduces over them, so every engine-equivalence check walks the
! non-finite comparison path.
PROGRAM repro
  r = 1.0 / 0.0
  h(mod(iproc, 8) + 1) = r - r
  s = sum(r)
END
