! simdfuzz dialect=simd
! Found by simdfuzz (seed 7 campaign): with several undefined variables
! in one expression, the engines disagreed on WHICH one the runtime
! error named.  The tree-walker and the scalar interpreter passed both
! operands of a binary op as function arguments, which OCaml evaluates
! right to left; the compiled engine evaluates left to right.  Operand
! order is observable on the error path, so all engines now evaluate
! left to right: every leg must report v, never u.
PROGRAM repro
  w = v * (v + u)
END
