! simdfuzz dialect=simd
! Historical bug: the -O2 value-range analysis scaled interval bounds
! with a lower bound that was wrong for negated/descending affine
! subscripts, so a bounds check was discharged that -O0 still (rightly)
! failed: the engines then differed in error behavior.  10 - 2*iproc
! walks out of g's [1..8] domain from below once p >= 5; the error must
! be identical at every optimizer level.
PROGRAM repro
  u = iproc * 2
  g(10 - u) = u
END
