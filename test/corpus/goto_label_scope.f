! simdfuzz dialect=nest
! Found by simdfuzz (statement-wrap mutation): a GOTO whose target
! label sits inside another block's body.  Labels resolve in the
! executing block and its enclosing blocks only, so the jump is
! unresolvable — the interpreter used to leak its internal Jump
! control exception out of Interp.run instead of reporting a runtime
! error.  Keep replaying it: the verdict must stay an ordinary
! located error, never a crash.
PROGRAM repro
  i = 0
  IF (k < 1) THEN
10  CONTINUE
  ENDIF
  IF (i > k) GOTO 20
  j = 1
  i = i + 1
  GOTO 10
20 CONTINUE
END
