! simdfuzz dialect=simd
! Historical bug: reductions evaluated under an everywhere-false WHERE
! mask disagreed between the tree-walker and the compiled engine on the
! witness value (empty MAXVAL/MINVAL) and on whether the assignment
! happened at all.  iproc < 1 is false on every lane, so each reduction
! below runs under the empty mask on every engine leg.
PROGRAM repro
  u = iproc
  r = iproc * 0.5
  s = 0
  WHERE (iproc < 1)
    s = maxval(u)
    s = minval(u)
    s = sum(u)
    r = sum(r)
  ENDWHERE
END
