(** Unit tests for the slot-resolved IR ([Ir]) and the optimizer
    pipeline ([Opt]): where each annotation lands (constant folding,
    fusion policy, fused reductions, scatter-accumulate, full-mask
    marking, scratch planning) plus targeted [-O0]/[-O1] behavioural
    equalities for the emitter's fused fast paths and their documented
    fallbacks — cases the differential suite only reaches
    statistically. *)

open Helpers
open Lf_lang
module Ir = Lf_simd.Ir
module Opt = Lf_simd.Opt
module Vm = Lf_simd.Vm

let ir_of ?(level = 1) ?(p = 4) ?verify src =
  let prog = parse_program src in
  let frame = Lf_simd.Frame.create ~p (Lf_simd.Compile.var_names prog) in
  Opt.run ~level ~frame ?verify (Ir.of_block frame prog.Ast.p_body)

let rec unloc (s : Ir.stmt) =
  match s.Ir.s_node with Ir.LLoc (_, inner) -> unloc inner | _ -> s

(** The [n]th top-level statement, location wrappers stripped. *)
let nth (b : Ir.block) n = unloc b.(n)

let rhs_of (s : Ir.stmt) =
  match (unloc s).Ir.s_node with
  | Ir.LAssign (_, e) -> e
  | _ -> Alcotest.fail "statement is not an assignment"

(* ------------------------------------------------------------------ *)
(* Annotation placement                                                *)
(* ------------------------------------------------------------------ *)

let t_const_fold () =
  let src = "PROGRAM t\n  PLURAL INTEGER i\n  i = 2 + 3 * 4\nEND" in
  (match (rhs_of (nth (ir_of src) 0)).Ir.x_node with
  | Ir.XConst (Values.VInt 14) -> ()
  | _ -> Alcotest.fail "constant expression did not fold at -O1");
  match (rhs_of (nth (ir_of ~level:0 src) 0)).Ir.x_node with
  | Ir.XBin _ -> ()
  | _ -> Alcotest.fail "-O0 must leave the tree untouched"

(* FRegion only on intrinsic-bearing subtrees: intrinsic-free chains
   already run as monomorphic unboxed loops at -O0 and measure faster
   unfused (see [Opt]'s has_intr rationale) *)
let t_fusion_policy () =
  checkb "sqrt is a fusible intrinsic"
    (List.mem "sqrt" Ir.fusible_intrinsics);
  let b =
    ir_of
      "PROGRAM t\n\
      \  PLURAL REAL r\n\
      \  PLURAL REAL a\n\
      \  r = sqrt(a * a) + 1.0\n\
      \  r = a * a + a\n\
       END"
  in
  (match (rhs_of (nth b 0)).Ir.x_fused with
  | Some (Ir.FRegion _) -> ()
  | _ -> Alcotest.fail "intrinsic-bearing subtree must fuse");
  checkb "pure-arithmetic chain stays unfused"
    ((rhs_of (nth b 1)).Ir.x_fused = None)

(* region construction value-numbers its postorder program: a gather
   (and the intrinsic applied to it) repeated within one statement is
   emitted once *)
let t_region_cse () =
  let b =
    ir_of
      "PROGRAM t\n\
      \  PLURAL INTEGER i\n\
      \  PLURAL REAL r\n\
      \  REAL x(8)\n\
      \  i = iproc\n\
      \  r = sqrt(x(i)) + sqrt(x(i))\n\
       END"
  in
  match (rhs_of (nth b 1)).Ir.x_fused with
  | Some (Ir.FRegion { rg_ops }) ->
      let count p = Array.to_list rg_ops |> List.filter p |> List.length in
      checki "one gather after CSE" 1
        (count (function Ir.OGather _ -> true | _ -> false));
      checki "one sqrt after CSE" 1
        (count (function Ir.OIntr _ -> true | _ -> false))
  | _ -> Alcotest.fail "repeated-gather statement must fuse"

(* a reduction fuses any fusible argument — including intrinsic-free
   chains, where skipping the materialized argument still pays *)
let t_fused_reduction () =
  let b =
    ir_of
      "PROGRAM t\n\
      \  PLURAL REAL r\n\
      \  REAL s\n\
      \  r = iproc * 0.5\n\
      \  s = sum(r * r)\n\
       END"
  in
  match (rhs_of (nth b 1)).Ir.x_fused with
  | Some (Ir.FReduce ("sum", _)) -> ()
  | _ -> Alcotest.fail "sum over a fusible argument must fuse"

let t_scatter_accumulate () =
  let b =
    ir_of
      "PROGRAM t\n\
      \  PLURAL INTEGER i\n\
      \  PLURAL REAL r\n\
      \  REAL x(8)\n\
      \  i = iproc\n\
      \  x(i) = x(i) + r\n\
      \  x(i) = r + x(i)\n\
       END"
  in
  checkb "x(i) = x(i) + e is scatter-accumulate" (nth b 1).Ir.s_accum;
  checkb "x(i) = e + x(i) is not (gather must be the left operand)"
    (not (nth b 2).Ir.s_accum)

let t_full_mask () =
  let b =
    ir_of
      "PROGRAM t\n\
      \  PLURAL INTEGER i\n\
      \  i = 1\n\
      \  WHERE (i > 0)\n\
      \    i = 2\n\
      \  ENDWHERE\n\
       END"
  in
  checkb "top-level statement runs under the full mask" (nth b 0).Ir.s_full;
  checkb "the WHERE itself runs under the full mask" (nth b 1).Ir.s_full;
  (match (nth b 1).Ir.s_node with
  | Ir.LWhere (_, t, _) ->
      checkb "WHERE-body statement does not" (not (unloc t.(0)).Ir.s_full)
  | _ -> Alcotest.fail "expected a WHERE");
  let b0 =
    ir_of ~level:0 "PROGRAM t\n  PLURAL INTEGER i\n  i = 1\nEND"
  in
  checkb "-O0 never marks full masks" (not (nth b0 0).Ir.s_full)

(* scratch planning: result buffers of sites whose values are dead
   across statements share a pool group; -O0 plans nothing *)
let t_scratch_plan () =
  let src =
    "PROGRAM t\n\
    \  PLURAL REAL r\n\
    \  PLURAL REAL q\n\
    \  PLURAL REAL a\n\
    \  PLURAL REAL b\n\
    \  r = sqrt(a) + 1.0\n\
    \  q = sqrt(b) + 1.0\n\
     END"
  in
  let b = ir_of src in
  let s0 = (rhs_of (nth b 0)).Ir.x_scr
  and s1 = (rhs_of (nth b 1)).Ir.x_scr in
  checkb "first region site gets a scratch group" (s0 >= 0);
  checkb "dead-across-statements sites share the group" (s0 = s1);
  let b0 = ir_of ~level:0 src in
  checki "-O0 leaves every site private" (-1) (rhs_of (nth b0 0)).Ir.x_scr

(* ------------------------------------------------------------------ *)
(* -O2 annotation placement                                            *)
(* ------------------------------------------------------------------ *)

let t_range_annotations () =
  let src =
    "PROGRAM t\n\
    \  PLURAL INTEGER i\n\
    \  PLURAL REAL r\n\
    \  REAL x(8)\n\
    \  i = iproc\n\
    \  r = x(i)\n\
    \  x(i) = r + 1.0\n\
    \  x(2) = r\n\
     END"
  in
  let sub_of_gather s =
    match (rhs_of s).Ir.x_node with
    | Ir.XIdx (_, _, [ sub ]) -> sub
    | _ -> Alcotest.fail "not a rank-1 gather"
  in
  let store_sub s =
    match (unloc s).Ir.s_node with
    | Ir.LAssign ({ Ir.l_index = [ sub ]; _ }, _) -> sub
    | _ -> Alcotest.fail "not a rank-1 scatter"
  in
  let b = ir_of ~level:2 ~p:8 src in
  (match (sub_of_gather (nth b 1)).Ir.x_range with
  | Some iv ->
      checks "gather subscript claims the iproc interval" "[1, 8]"
        (Lf_analysis.Range.iv_to_string iv)
  | None -> Alcotest.fail "gather subscript carries no claim at -O2");
  (match (store_sub b.(2)).Ir.x_range with
  | Some iv ->
      checks "store subscript claims the iproc interval" "[1, 8]"
        (Lf_analysis.Range.iv_to_string iv)
  | None -> Alcotest.fail "store subscript carries no claim at -O2");
  checkb "iproc-indexed scatter marked lane-disjoint" (nth b 2).Ir.s_par;
  checkb "constant-indexed scatter never marked" (not (nth b 3).Ir.s_par);
  (* -O1 leaves the -O2 annotations unset *)
  let b1 = ir_of ~level:1 ~p:8 src in
  checkb "-O1 sets no range claims"
    ((sub_of_gather (nth b1 1)).Ir.x_range = None
    && (store_sub b1.(2)).Ir.x_range = None);
  checkb "-O1 marks no parallel scatters" (not (nth b1 2).Ir.s_par)

(* ------------------------------------------------------------------ *)
(* Targeted -O0/-O1/-O2 behavioural equalities                         *)
(* ------------------------------------------------------------------ *)

let check_levels ?setup name src =
  let prog = parse_program src in
  let go opt = Vm.run ~engine:`Compiled ~opt ~p:8 ?setup prog in
  let a = go 0 and b = go 1 and c = go 2 in
  checkb (name ^ ": state -O0 = -O1") (Vm.state_equal a b);
  checkb
    (name ^ ": metrics -O0 = -O1")
    (Lf_simd.Metrics.equal a.Vm.metrics b.Vm.metrics);
  checkb (name ^ ": state -O1 = -O2") (Vm.state_equal b c);
  checkb
    (name ^ ": metrics -O1 = -O2")
    (Lf_simd.Metrics.equal b.Vm.metrics c.Vm.metrics)

(* the direct-store fast path (v = a op b over resolved leaves) and
   every documented fallback: mixed int/real promotion, in-place
   updates, masked stores, a scalar-only rhs (front-end tick at -O0)
   and a dest whose binding type the assignment changes *)
let t_direct_store_shapes () =
  check_levels "direct store"
    "PROGRAM t\n\
    \  PLURAL INTEGER a\n\
    \  PLURAL INTEGER b\n\
    \  PLURAL INTEGER v\n\
    \  PLURAL REAL x\n\
    \  PLURAL REAL y\n\
    \  PLURAL REAL w\n\
    \  PLURAL INTEGER v2\n\
    \  INTEGER k\n\
    \  k = 7\n\
    \  a = iproc\n\
    \  b = a * 2\n\
    \  v = a + b\n\
    \  v = v + 1\n\
    \  x = iproc * 0.5\n\
    \  y = x - 1.5\n\
    \  w = x * y\n\
    \  w = a + x\n\
    \  v = k + 1\n\
    \  WHERE (a > 3)\n\
    \    v = a - b\n\
    \  ENDWHERE\n\
    \  v2 = x + y\n\
     END"

(* a raising fused reduction must not short-circuit: lane 1 satisfies
   the predicate before lane 2 divides by zero, yet both levels must
   raise the identical error *)
let t_reduction_raises_like_o0 () =
  let prog =
    parse_program
      "PROGRAM t\n\
      \  PLURAL INTEGER z\n\
      \  z = iproc - 2\n\
      \  WHILE (any(10 / z > -100))\n\
      \    z = z + 100\n\
      \  ENDWHILE\n\
       END"
  in
  let err opt =
    match Vm.run ~engine:`Compiled ~opt ~p:8 prog with
    | _ -> None
    | exception ((Errors.Runtime_error _ | Errors.Runtime_error_at _) as e)
      ->
        Some (Errors.to_message e)
  in
  match (err 0, err 1) with
  | Some m0, Some m1 ->
      checks "identical division-by-zero message across levels" m0 m1
  | _ -> Alcotest.fail "both levels must raise"

(* the typed per-lane call path re-boxes and bails when a user function
   changes its return type mid-vector *)
let t_typed_call_bail () =
  let setup vm =
    Vm.register_func vm ~pure:true "mix" (fun args ->
        match args with
        | [ Values.VInt n ] ->
            if n <= 2 then Values.VInt n
            else Values.VReal (float_of_int n)
        | _ -> Values.VInt 0)
  in
  check_levels ~setup "typed call bail"
    "PROGRAM t\n\
    \  PLURAL REAL r\n\
    \  r = mix(iproc)\n\
     END"

let suite =
  [
    case "constant folding (and -O0 identity)" t_const_fold;
    case "fusion only on intrinsic-bearing regions" t_fusion_policy;
    case "region CSE: repeated gathers evaluate once" t_region_cse;
    case "reductions fuse fusible arguments" t_fused_reduction;
    case "scatter-accumulate marking" t_scatter_accumulate;
    case "full-mask marking" t_full_mask;
    case "scratch planning shares dead buffers" t_scratch_plan;
    case "-O2 range claims and parallel-scatter marks" t_range_annotations;
    case "direct-store shapes and fallbacks" t_direct_store_shapes;
    case "raising fused reduction never short-circuits"
      t_reduction_raises_like_o0;
    case "typed call path bails on mixed return types" t_typed_call_bail;
  ]
